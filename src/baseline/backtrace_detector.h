// Baseline cycle detector: distributed back-tracing in the style of
// Maheshwari & Liskov (PODC'97), simplified.
//
// To decide whether a suspect scion protects garbage, trace *backwards*:
// the scion is reachable iff its matching stub (at the holder) is locally
// reachable there, or some scion converging on that stub (ScionsTo) is
// itself reachable — recursively. The recursion is a chain of remote
// request/reply pairs, and — exactly the drawback the paper's §5 points out —
// every intermediate process must keep per-trace state (the pending-children
// records) until the trace completes.
//
// Used for the comparison benches (messages, chain depth, state held); it
// reuses each process's summarized snapshot so the comparison with the DCDA
// is apples-to-apples.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/net/message.h"

namespace adgc {

class Process;

class BacktraceDetector {
 public:
  BacktraceDetector(Process& proc, Metrics& metrics);

  /// Origin side: start a trace on a suspect scion this process owns.
  void start(RefId candidate);

  void on_request(ProcessId src, const BacktraceRequestMsg& msg);
  void on_reply(ProcessId src, const BacktraceReplyMsg& msg);

  /// Drops state for traces older than `max_age` (loss tolerance).
  void expire(SimTime now, SimTime max_age);

  std::size_t state_records() const { return nodes_.size() + traces_.size(); }
  std::uint32_t max_depth_seen() const { return max_depth_seen_; }

 private:
  struct Trace {  // origin-side record
    std::uint64_t trace_id = 0;
    RefId candidate = kNoRef;
    std::uint64_t start_ic = 0;
    SimTime started_at = 0;
  };
  struct Node {  // intermediate-side record (one per forwarded fan-out)
    std::uint64_t trace_id = 0;
    std::uint64_t parent_req = 0;   // req_id to echo upstream
    ProcessId reply_to = kNoProcess;
    std::size_t pending = 0;
    std::vector<std::uint64_t> children;  // child req ids (for cleanup)
    SimTime created_at = 0;
  };

  void reply_up(const Node& node, bool reachable);
  void drop_node(std::uint64_t key);
  void finish_trace(std::uint64_t req_id, bool reachable);

  Process& proc_;
  Metrics& metrics_;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_req_ = 1;
  std::map<std::uint64_t, Trace> traces_;        // keyed by root req_id
  std::map<std::uint64_t, Node> nodes_;          // keyed by child req_id... see .cpp
  std::map<std::uint64_t, std::uint64_t> child_to_node_;  // child req → node key
  std::uint64_t next_node_key_ = 1;
  std::uint32_t max_depth_seen_ = 0;
};

}  // namespace adgc
