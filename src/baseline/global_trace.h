// Baseline complete DGC #2: synchronized global tracing ("garbage
// collecting the world", Lang/Queinnec/Piquer '92 family, simplified).
//
// A coordinator starts an epoch; every process marks from its local roots,
// propagating marks across remote references (GtMark). Termination is
// detected by counting: the coordinator polls all members and ends the
// epoch when Σsent == Σprocessed, stable across two consecutive complete
// polls (a simplified Safra-style detection — getting this fully right in
// an asynchronous faulty system is exactly the §5 critique, cf. FLP).
// On GtFinish every process deletes its unmarked scions.
//
// Deliberate limitations (it is a *baseline*, run on quiescent systems in
// benches/tests): requires every member to participate — one slow or
// partitioned process stalls the world; mutation during an epoch is handled
// conservatively (scions touched or created after the epoch start survive),
// not precisely; message loss stalls the epoch (no retries).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/net/message.h"

namespace adgc {

class Process;

class GlobalTraceCollector {
 public:
  GlobalTraceCollector(Process& proc, Metrics& metrics);

  /// Coordinator side: starts an epoch over `members` (should include the
  /// coordinator itself). Returns false if one is already running.
  bool start_epoch(std::vector<ProcessId> members, SimTime poll_interval_us = 20'000);

  bool coordinating() const { return coordinating_; }
  std::uint64_t completed_epochs() const { return completed_; }

  /// Coordinator side: gives up on a stalled epoch (e.g. a member is
  /// partitioned away — the scenario this baseline cannot survive).
  void abort_epoch() { coordinating_ = false; }

  // Message handlers (wired from Process::deliver).
  void on_start(ProcessId src, const GtStartMsg& msg);
  void on_mark(ProcessId src, const GtMarkMsg& msg);
  void on_poll(ProcessId src, const GtPollMsg& msg);
  void on_status(ProcessId src, const GtStatusMsg& msg);
  void on_finish(ProcessId src, const GtFinishMsg& msg);

 private:
  void local_mark(ObjectSeq seed);
  void send_poll();

  Process& proc_;
  Metrics& metrics_;

  // --- participant state (one epoch at a time) ---
  std::uint64_t epoch_ = 0;
  SimTime epoch_start_time_ = 0;
  bool participating_ = false;
  std::unordered_set<ObjectSeq> marked_objects_;
  std::unordered_set<RefId> marked_stubs_;   // propagated already
  std::unordered_set<RefId> marked_scions_;  // proven reachable this epoch
  std::uint64_t sent_ = 0;
  std::uint64_t processed_ = 0;

  // --- coordinator state ---
  bool coordinating_ = false;
  std::vector<ProcessId> members_;
  SimTime poll_interval_us_ = 20'000;
  std::uint64_t poll_seq_ = 0;
  std::uint64_t next_epoch_ = 1;
  std::map<ProcessId, GtStatusMsg> poll_replies_;  // for the current poll
  std::uint64_t prev_sent_total_ = ~0ULL;
  std::uint64_t prev_processed_total_ = ~0ULL;
  std::uint64_t completed_ = 0;
};

}  // namespace adgc
