#include "src/baseline/backtrace_detector.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/rt/process.h"

namespace adgc {

BacktraceDetector::BacktraceDetector(Process& proc, Metrics& metrics)
    : proc_(proc), metrics_(metrics) {}

void BacktraceDetector::start(RefId candidate) {
  const ScionEntry* scion = proc_.scions_.find(candidate);
  if (!scion || scion->target_root_reachable) return;

  Trace tr;
  tr.trace_id = next_trace_++;
  tr.candidate = candidate;
  tr.start_ic = scion->ic;
  tr.started_at = proc_.env_.now();

  const std::uint64_t req = next_req_++;
  traces_.emplace(req, tr);

  BacktraceRequestMsg msg;
  msg.trace_id = tr.trace_id;
  msg.req_id = req;
  msg.subject_ref = candidate;
  msg.visited = {candidate};
  msg.depth = 1;
  metrics_.backtrace_requests.add();
  proc_.send(scion->holder, msg);
}

void BacktraceDetector::on_request(ProcessId src, const BacktraceRequestMsg& msg) {
  max_depth_seen_ = std::max(max_depth_seen_, msg.depth);
  auto reply = [&](bool reachable) {
    BacktraceReplyMsg out;
    out.trace_id = msg.trace_id;
    out.req_id = msg.req_id;
    out.reachable = reachable;
    metrics_.backtrace_replies.add();
    proc_.send(src, out);
  };

  const auto summary = proc_.current_summary();
  if (!summary) {
    reply(true);  // cannot prove anything: conservatively "reachable"
    return;
  }
  const StubSummary* stub = summary->stub(msg.subject_ref);
  if (!stub) {
    // Not in our snapshot: unknown state, stay conservative.
    reply(true);
    return;
  }
  if (stub->local_reach) {
    reply(true);
    return;
  }
  // Recurse into every scion converging on this stub that the trace has not
  // visited yet. A dependency already on the path closes a loop: it cannot
  // make the subject reachable by itself.
  std::vector<RefId> deps;
  for (RefId d : stub->scions_to) {
    if (std::find(msg.visited.begin(), msg.visited.end(), d) == msg.visited.end()) {
      deps.push_back(d);
    }
  }
  if (deps.empty()) {
    reply(false);
    return;
  }

  const std::uint64_t key = next_node_key_++;
  Node node;
  node.trace_id = msg.trace_id;
  node.parent_req = msg.req_id;
  node.reply_to = src;
  node.created_at = proc_.env_.now();

  for (RefId d : deps) {
    const ScionSummary* dep = summary->scion(d);
    if (!dep || dep->holder == kNoProcess) continue;  // unknown: skip branch
    const std::uint64_t child = next_req_++;
    node.children.push_back(child);
    child_to_node_.emplace(child, key);
    ++node.pending;

    BacktraceRequestMsg fwd;
    fwd.trace_id = msg.trace_id;
    fwd.req_id = child;
    fwd.subject_ref = d;
    fwd.visited = msg.visited;
    fwd.visited.push_back(d);
    fwd.depth = msg.depth + 1;
    metrics_.backtrace_requests.add();
    proc_.send(dep->holder, fwd);
  }
  if (node.pending == 0) {
    reply(false);
    return;
  }
  nodes_.emplace(key, std::move(node));
}

void BacktraceDetector::on_reply(ProcessId /*src*/, const BacktraceReplyMsg& msg) {
  // Root of a trace?
  if (traces_.contains(msg.req_id)) {
    finish_trace(msg.req_id, msg.reachable);
    return;
  }
  auto cit = child_to_node_.find(msg.req_id);
  if (cit == child_to_node_.end()) return;  // late/duplicate reply
  const std::uint64_t key = cit->second;
  child_to_node_.erase(cit);
  auto nit = nodes_.find(key);
  if (nit == nodes_.end()) return;
  Node& node = nit->second;
  if (msg.reachable) {
    reply_up(node, true);  // short-circuit: one live path suffices
    drop_node(key);
    return;
  }
  if (--node.pending == 0) {
    reply_up(node, false);
    drop_node(key);
  }
}

void BacktraceDetector::reply_up(const Node& node, bool reachable) {
  BacktraceReplyMsg out;
  out.trace_id = node.trace_id;
  out.req_id = node.parent_req;
  out.reachable = reachable;
  metrics_.backtrace_replies.add();
  proc_.send(node.reply_to, out);
}

void BacktraceDetector::drop_node(std::uint64_t key) {
  auto it = nodes_.find(key);
  if (it == nodes_.end()) return;
  for (std::uint64_t child : it->second.children) child_to_node_.erase(child);
  nodes_.erase(it);
}

void BacktraceDetector::finish_trace(std::uint64_t req_id, bool reachable) {
  auto it = traces_.find(req_id);
  if (it == traces_.end()) return;
  const Trace tr = it->second;
  traces_.erase(it);
  if (reachable) return;

  // Trace proved the candidate unreachable; revalidate the live scion
  // before acting (simplified stand-in for the baseline's transfer barrier).
  ScionEntry* scion = proc_.scions_.find(tr.candidate);
  if (!scion || scion->ic != tr.start_ic || scion->target_root_reachable) return;
  ADGC_INFO("P" << proc_.id() << " backtrace deletes scion " << ref_to_string(tr.candidate));
  proc_.scions_.erase(tr.candidate);
  metrics_.backtrace_cycles_found.add();
  metrics_.scions_deleted_cyclic.add();
}

void BacktraceDetector::expire(SimTime now, SimTime max_age) {
  for (auto it = traces_.begin(); it != traces_.end();) {
    if (it->second.started_at + max_age <= now) {
      it = traces_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<std::uint64_t> stale;
  for (const auto& [key, node] : nodes_) {
    if (node.created_at + max_age <= now) stale.push_back(key);
  }
  for (std::uint64_t key : stale) drop_node(key);
}

}  // namespace adgc
