#include "src/baseline/global_trace.h"

#include <algorithm>
#include <deque>

#include "src/common/log.h"
#include "src/rt/process.h"

namespace adgc {

GlobalTraceCollector::GlobalTraceCollector(Process& proc, Metrics& metrics)
    : proc_(proc), metrics_(metrics) {}

bool GlobalTraceCollector::start_epoch(std::vector<ProcessId> members,
                                       SimTime poll_interval_us) {
  if (coordinating_) return false;
  coordinating_ = true;
  members_ = std::move(members);
  // The coordinator is always a participant.
  if (std::find(members_.begin(), members_.end(), proc_.id()) == members_.end()) {
    members_.push_back(proc_.id());
  }
  poll_interval_us_ = poll_interval_us;
  poll_replies_.clear();
  prev_sent_total_ = ~0ULL;
  prev_processed_total_ = ~0ULL;

  GtStartMsg msg;
  msg.epoch = next_epoch_++;
  msg.epoch_start = proc_.env_.now();
  metrics_.gt_epochs_started.add();
  for (ProcessId pid : members_) proc_.send(pid, msg);

  const SimTime interval = poll_interval_us_;
  proc_.env_.schedule(interval, [this] { send_poll(); });
  return true;
}

void GlobalTraceCollector::send_poll() {
  if (!coordinating_) return;
  poll_replies_.clear();
  GtPollMsg msg;
  msg.epoch = epoch_;  // coordinator participates, so epoch_ is current
  msg.poll_seq = ++poll_seq_;
  for (ProcessId pid : members_) proc_.send(pid, msg);
  proc_.env_.schedule(poll_interval_us_, [this] { send_poll(); });
}

void GlobalTraceCollector::on_start(ProcessId /*src*/, const GtStartMsg& msg) {
  epoch_ = msg.epoch;
  epoch_start_time_ = msg.epoch_start;
  participating_ = true;
  marked_objects_.clear();
  marked_stubs_.clear();
  marked_scions_.clear();
  sent_ = 0;
  processed_ = 0;
  for (ObjectSeq root : proc_.heap_.roots()) local_mark(root);
}

void GlobalTraceCollector::local_mark(ObjectSeq seed) {
  std::deque<ObjectSeq> frontier;
  if (proc_.heap_.exists(seed) && marked_objects_.insert(seed).second) {
    frontier.push_back(seed);
  }
  while (!frontier.empty()) {
    const ObjectSeq cur = frontier.front();
    frontier.pop_front();
    const HeapObject* obj = proc_.heap_.find(cur);
    if (!obj) continue;
    for (ObjectSeq next : obj->local_fields) {
      if (proc_.heap_.exists(next) && marked_objects_.insert(next).second) {
        frontier.push_back(next);
      }
    }
    for (RefId ref : obj->remote_fields) {
      if (!marked_stubs_.insert(ref).second) continue;
      const StubEntry* stub = proc_.stubs_.find(ref);
      if (!stub) continue;
      GtMarkMsg mark;
      mark.epoch = epoch_;
      mark.ref = ref;
      ++sent_;
      metrics_.gt_marks_sent.add();
      proc_.send(stub->target.owner, mark);
    }
  }
}

void GlobalTraceCollector::on_mark(ProcessId /*src*/, const GtMarkMsg& msg) {
  if (!participating_ || msg.epoch != epoch_) return;  // stale epoch
  ++processed_;
  if (!marked_scions_.insert(msg.ref).second) return;  // already marked
  const ScionEntry* scion = proc_.scions_.find(msg.ref);
  if (!scion) return;
  local_mark(scion->target);
}

void GlobalTraceCollector::on_poll(ProcessId src, const GtPollMsg& msg) {
  if (!participating_ || msg.epoch != epoch_) return;
  GtStatusMsg status;
  status.epoch = epoch_;
  status.poll_seq = msg.poll_seq;
  status.marks_sent = sent_;
  status.marks_processed = processed_;
  metrics_.gt_status_msgs.add();
  proc_.send(src, status);
}

void GlobalTraceCollector::on_status(ProcessId src, const GtStatusMsg& msg) {
  if (!coordinating_ || msg.poll_seq != poll_seq_) return;  // stale poll
  poll_replies_[src] = msg;
  if (poll_replies_.size() < members_.size()) return;

  std::uint64_t sent_total = 0, processed_total = 0;
  for (const auto& [pid, st] : poll_replies_) {
    sent_total += st.marks_sent;
    processed_total += st.marks_processed;
  }
  const bool balanced = sent_total == processed_total;
  const bool stable =
      sent_total == prev_sent_total_ && processed_total == prev_processed_total_;
  prev_sent_total_ = sent_total;
  prev_processed_total_ = processed_total;
  if (!balanced || !stable) return;

  // Terminated: the global trace is complete.
  coordinating_ = false;
  ++completed_;
  GtFinishMsg fin;
  fin.epoch = epoch_;
  for (ProcessId pid : members_) proc_.send(pid, fin);
  ADGC_INFO("P" << proc_.id() << " global trace epoch " << epoch_ << " terminated ("
                << sent_total << " marks)");
}

void GlobalTraceCollector::on_finish(ProcessId /*src*/, const GtFinishMsg& msg) {
  if (!participating_ || msg.epoch != epoch_) return;
  participating_ = false;
  std::vector<RefId> doomed;
  for (const auto& [ref, scion] : proc_.scions_) {
    if (marked_scions_.contains(ref)) continue;
    // Conservative mutation guards: anything created or invoked during the
    // epoch survives until the next epoch.
    if (scion.created_at >= epoch_start_time_) continue;
    if (scion.last_ic_change >= epoch_start_time_) continue;
    doomed.push_back(ref);
  }
  for (RefId ref : doomed) {
    proc_.scions_.erase(ref);
    metrics_.gt_scions_deleted.add();
  }
  if (!doomed.empty()) {
    ADGC_DEBUG("P" << proc_.id() << " global trace deleted " << doomed.size()
                   << " scions");
  }
}

}  // namespace adgc
