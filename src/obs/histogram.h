// Log-bucketed, lock-free latency/size histogram.
//
// Fixed memory (kBuckets atomic counters plus a sum), relaxed-atomic
// recording so the hot paths of every runtime — including the threaded one —
// can record without locks, and mergeable/copyable exactly like Counter so a
// Histogram can live inside Metrics and ride through merge()/report()/
// snapshot copies unchanged.
//
// Bucketing: bucket b holds values whose bit width is b, i.e. the range
// [2^(b-1), 2^b - 1]; bucket 0 holds exactly 0 and the last bucket absorbs
// everything at or above 2^(kBuckets-2). Upper bounds therefore form the
// series 0, 1, 3, 7, 15, ... — one comparison-free `std::bit_width` per
// record. Quantiles interpolate linearly inside the landing bucket, which
// bounds the relative error by the bucket width (a factor of 2).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace adgc {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram& other) { copy_from(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

  /// Bucket index a value lands in.
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (the Prometheus `le`); the last
  /// bucket is unbounded.
  static constexpr std::uint64_t bucket_le(std::size_t i) {
    if (i + 1 >= kBuckets) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  /// Inclusive lower bound of bucket `i`.
  static constexpr std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Approximate value at quantile `q` in [0,1] (linear interpolation within
  /// the landing bucket). Returns 0 for an empty histogram.
  std::uint64_t quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the sample we are after, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t in_bucket = bucket(i);
      if (in_bucket == 0) continue;
      if (seen + in_bucket < rank) {
        seen += in_bucket;
        continue;
      }
      const std::uint64_t lo = bucket_lo(i);
      // The unbounded tail bucket has no meaningful width; report its floor.
      if (i + 1 >= kBuckets) return lo;
      const std::uint64_t width = bucket_le(i) - lo;
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
      return lo + static_cast<std::uint64_t>(frac * static_cast<double>(width));
    }
    return bucket_lo(kBuckets - 1);  // unreachable with a consistent count
  }

  /// Adds every bucket (and the sum) of `other` into this.
  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
    }
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  void copy_from(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].store(other.bucket(i), std::memory_order_relaxed);
    }
    sum_.store(other.sum(), std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace adgc
