// Minimal HTTP/1.0 machinery for the node admin endpoint.
//
// The parser is a pure function over a byte buffer — no sockets, no
// allocation beyond the extracted strings — so it can be driven by the
// TcpTransport poll loop on real connections and by the fuzz_http_request
// libFuzzer harness on arbitrary input. Only the request line and the
// header terminator matter: the endpoint serves GET with no body, ignores
// all request headers, and closes the connection after one response
// (Connection: close, HTTP/1.0 semantics even for 1.1 clients).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace adgc::obs {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // "/metrics"
  int minor_version = 0;
};

enum class HttpParse {
  kNeedMore,  // no terminating blank line yet; feed more bytes
  kOk,        // parsed one request head; *consumed bytes were used
  kBad,       // malformed or over limits; close the connection
};

/// Hard limits: anything beyond them parses as kBad (a socket peer can not
/// make the admin server buffer unboundedly).
inline constexpr std::size_t kMaxRequestBytes = 8192;
inline constexpr std::size_t kMaxMethodBytes = 16;
inline constexpr std::size_t kMaxTargetBytes = 2048;

/// Parses one request head ("METHOD target HTTP/1.x\r\n...headers...\r\n\r\n")
/// from the front of `buf`. A bare-LF line terminator is accepted. On kOk,
/// `*out` holds the request line and `*consumed` the head's length.
HttpParse parse_http_request(std::string_view buf, HttpRequest* out,
                             std::size_t* consumed);

/// Serialized HTTP/1.0 response with Content-Length and Connection: close.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

/// Content a handler returns for one admin request.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Installed into the TcpTransport; invoked on its IO thread, so handlers
/// must only touch thread-safe state (atomics, mutex-guarded caches).
using AdminHandler = std::function<AdminResponse(const HttpRequest&)>;

/// Blocking one-shot HTTP GET against a local admin endpoint (tests and the
/// cluster harness's scrape leg). Returns the response body on HTTP 200,
/// std::nullopt on connect/timeout/non-200.
std::optional<std::string> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& target,
                                    int timeout_ms = 5000);

}  // namespace adgc::obs
