#include "src/obs/prom.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>

namespace adgc::obs {

namespace {

/// Counters that are semantically gauges (sampled table sizes, reset+add
/// each LGC): exported as `gauge` and without the `_total` suffix.
const std::set<std::string_view>& gauge_names() {
  static const std::set<std::string_view> kGauges = {"peer_health_slots"};
  return kGauges;
}

}  // namespace

std::string render_prometheus(const Metrics& m) {
  std::ostringstream os;
  m.for_each_counter([&os](const char* name, std::uint64_t v) {
    if (gauge_names().contains(name)) {
      os << "# TYPE adgc_" << name << " gauge\n";
      os << "adgc_" << name << " " << v << "\n";
    } else {
      os << "# TYPE adgc_" << name << "_total counter\n";
      os << "adgc_" << name << "_total " << v << "\n";
    }
  });
  m.for_each_histogram([&os](const char* name, const Histogram& h) {
    os << "# TYPE adgc_" << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cum += h.bucket(i);
      if (i + 1 == Histogram::kBuckets) {
        os << "adgc_" << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
      } else {
        // Skip trailing empty buckets (everything recorded already sits at
        // or below this bound) to keep the exposition compact; le="0" and
        // +Inf are always emitted so the series stays well-formed.
        if (h.bucket(i) == 0 && i != 0 && cum == h.count()) continue;
        os << "adgc_" << name << "_bucket{le=\"" << Histogram::bucket_le(i)
           << "\"} " << cum << "\n";
      }
    }
    os << "adgc_" << name << "_sum " << h.sum() << "\n";
    os << "adgc_" << name << "_count " << h.count() << "\n";
  });
  return os.str();
}

bool parse_prometheus(std::string_view text, std::map<std::string, double>* out,
                      std::string* err) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& why) {
    if (err) *err = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  while (pos < text.size()) {
    ++line_no;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) != 0 && line.rfind("# HELP ", 0) != 0) {
        return fail("malformed comment");
      }
      continue;
    }
    // name{labels} value
    std::size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) || line[i] == '_')) {
      ++i;
    }
    if (i == 0) return fail("sample line does not start with a metric name");
    std::string name(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) return fail("unterminated label set");
      name += std::string(line.substr(i, close - i + 1));
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') return fail("missing value separator");
    ++i;
    const std::string value_str(line.substr(i));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || (end && *end != '\0')) {
      return fail("unparseable sample value '" + value_str + "'");
    }
    if (out) (*out)[name] = value;
  }
  return true;
}

}  // namespace adgc::obs
