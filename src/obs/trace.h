// Structured protocol-event tracing.
//
// Every process owns one bounded TraceRing (capacity from
// ProcessConfig::trace_ring_capacity, reachable through Env::trace()) into
// which the runtime, the detector and the eviction machinery record compact
// binary events: detection launched / CDM hop / matched / aborted-with-
// reason, eviction decisions, crash/restart, NewSetStubs rounds, LGC and
// snapshot passes. Timestamps come from the Env clock, so a simulator trace
// is a pure function of (config, seed) — recording never feeds back into any
// scheduling or protocol decision, which keeps sim determinism and model-
// checker replay byte-identical with tracing on or off.
//
// The ring serializes over common/bytes into a small versioned file format
// (adgc_node --trace-file, adgc_sim --obs-dump) and exports to Chrome
// trace-event JSON, loadable in Perfetto: detections become async spans
// ("b"/"e" pairs keyed by the DetectionId) with one instant per CDM hop, so
// a complete detection renders as a span whose hops walk across processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc::obs {

enum class EventType : std::uint8_t {
  kDetectionStart = 1,   // a32=initiator a64=seq b64=candidate ref
  kCdmHop = 2,           // a32=initiator a64=seq b64=hop count (at this proc)
  kDetectionMatched = 3,  // a32=initiator a64=seq b64=hop count
  kDetectionAborted = 4,  // arg=AbortReason a32=initiator a64=seq
  kDetectionExpired = 5,  // a32=initiator a64=seq b64=lifetime us
  kEviction = 6,          // a32=evicted peer a64=tombstoned incarnation
  kCrash = 7,             // a32=crashed pid
  kRestart = 8,           // a32=restarted pid a64=new incarnation b64=recovered
  kNssRound = 9,          // a64=NewSetStubs messages sent this LGC round
  kLgcRun = 10,           // a64=objects reclaimed b64=Env-clock pause us (0 in sim)
  kSnapshot = 11,         // capture: a64=snapshot version b64=Env-clock capture us (0 in sim)
  kSnapshotPersist = 12,    // arg=1 on persist failure, a64=version b64=Env-clock us
  kSnapshotSummarize = 13,  // a64=version b64=Env-clock us
  kSnapshotPublish = 14,    // summary adopted: a64=version b64=Env-clock us since capture
};

/// Why a detection (branch) terminated without proving a cycle.
enum class AbortReason : std::uint8_t {
  kNone = 0,
  kNoScion = 1,     // rule 1: via reference absent from current snapshot
  kViaIc = 2,       // rule 3: sender stub IC != our scion IC
  kMatchIc = 3,     // §3.2: same ref, different counters in the algebra
  kLocalReach = 4,  // followed stub held by a root-reachable object
  kHopLimit = 5,    // CDM hop cap
  kNoProgress = 6,  // launch produced no viable branch
  kCrash = 7,       // a peer crashed while the detection was in flight
  kEviction = 8,    // a peer was evicted while the detection was in flight
  kTimeout = 9,     // initiator deadline passed
};

const char* to_string(EventType t);
const char* to_string(AbortReason r);

/// One recorded protocol event. 32 bytes; field meaning per EventType above.
struct Event {
  SimTime ts = 0;
  ProcessId proc = kNoProcess;
  EventType type = EventType::kDetectionStart;
  std::uint8_t arg = 0;
  std::uint32_t a32 = 0;
  std::uint64_t a64 = 0;
  std::uint64_t b64 = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Bounded ring of recent events. record() overwrites the oldest entry when
/// full and never allocates after construction; a capacity of 0 turns the
/// ring off entirely (record becomes a no-op). Thread-safe: recording is
/// normally confined to the owning actor thread, but the admin endpoint's
/// /tracez reads from the transport IO thread.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {
    buf_.reserve(capacity_);
  }

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  void record(const Event& ev) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    if (buf_.size() < capacity_) {
      buf_.push_back(ev);
    } else {
      buf_[next_ % capacity_] = ev;
      ++overwritten_;
    }
    ++next_;
  }

  /// Events currently retained, oldest first.
  std::vector<Event> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<Event> out;
    out.reserve(buf_.size());
    if (buf_.size() < capacity_ || capacity_ == 0) {
      out = buf_;
    } else {
      const std::size_t head = next_ % capacity_;
      out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head), buf_.end());
      out.insert(out.end(), buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head));
    }
    return out;
  }

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_;
  }

  /// Events lost to wraparound.
  std::uint64_t overwritten() const {
    std::lock_guard<std::mutex> lk(mu_);
    return overwritten_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Event> buf_;
  std::uint64_t next_ = 0;         // total recorded; next_ % capacity = write slot
  std::uint64_t overwritten_ = 0;
};

/// Null-safe recording helper for Env::trace() call sites.
inline void emit(TraceRing* ring, const Event& ev) {
  if (ring) ring->record(ev);
}

/// Versioned binary encoding over common/bytes (magic + version + count +
/// fixed-width events). parse_trace throws DecodeError on anything
/// malformed, including a truncated event list.
std::vector<std::byte> serialize_trace(const std::vector<Event>& events);
std::vector<Event> parse_trace(std::span<const std::byte> bytes);

/// Chrome trace-event JSON ("traceEvents" array, timestamps in microseconds)
/// viewable in Perfetto / chrome://tracing. Detections render as async spans
/// keyed by DetectionId with an instant per CDM hop; crashes, restarts,
/// evictions and collector passes render as instants on their process track.
std::string to_chrome_json(const std::vector<Event>& events);

}  // namespace adgc::obs
