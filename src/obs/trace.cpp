#include "src/obs/trace.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/common/bytes.h"

namespace adgc::obs {

namespace {

constexpr std::uint32_t kTraceMagic = 0x54434441;  // "ADCT" little-endian
constexpr std::uint16_t kTraceVersion = 1;
// 8 ts + 4 proc + 1 type + 1 arg + 4 a32 + 8 a64 + 8 b64.
constexpr std::size_t kEventBytes = 34;

bool detection_event(EventType t) {
  switch (t) {
    case EventType::kDetectionStart:
    case EventType::kCdmHop:
    case EventType::kDetectionMatched:
    case EventType::kDetectionAborted:
    case EventType::kDetectionExpired:
      return true;
    default:
      return false;
  }
}

/// Async-span key: one Perfetto track per detection.
std::string detection_key(const Event& ev) {
  std::ostringstream os;
  os << "d" << ev.a32 << ":" << ev.a64;
  return os.str();
}

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kDetectionStart: return "detection_start";
    case EventType::kCdmHop: return "cdm_hop";
    case EventType::kDetectionMatched: return "detection_matched";
    case EventType::kDetectionAborted: return "detection_aborted";
    case EventType::kDetectionExpired: return "detection_expired";
    case EventType::kEviction: return "eviction";
    case EventType::kCrash: return "crash";
    case EventType::kRestart: return "restart";
    case EventType::kNssRound: return "nss_round";
    case EventType::kLgcRun: return "lgc_run";
    case EventType::kSnapshot: return "snapshot";
    case EventType::kSnapshotPersist: return "snapshot_persist";
    case EventType::kSnapshotSummarize: return "snapshot_summarize";
    case EventType::kSnapshotPublish: return "snapshot_publish";
  }
  return "unknown";
}

const char* to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kNoScion: return "no_scion";
    case AbortReason::kViaIc: return "via_ic";
    case AbortReason::kMatchIc: return "match_ic";
    case AbortReason::kLocalReach: return "local_reach";
    case AbortReason::kHopLimit: return "hop_limit";
    case AbortReason::kNoProgress: return "no_progress";
    case AbortReason::kCrash: return "crash";
    case AbortReason::kEviction: return "eviction";
    case AbortReason::kTimeout: return "timeout";
  }
  return "unknown";
}

std::vector<std::byte> serialize_trace(const std::vector<Event>& events) {
  ByteWriter w;
  w.u32(kTraceMagic);
  w.u16(kTraceVersion);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const Event& ev : events) {
    w.u64(ev.ts);
    w.u32(ev.proc);
    w.u8(static_cast<std::uint8_t>(ev.type));
    w.u8(ev.arg);
    w.u32(ev.a32);
    w.u64(ev.a64);
    w.u64(ev.b64);
  }
  return w.take();
}

std::vector<Event> parse_trace(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kTraceMagic) throw DecodeError("trace: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kTraceVersion) {
    throw DecodeError("trace: unsupported version " + std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  if (static_cast<std::size_t>(count) * kEventBytes != r.remaining()) {
    throw DecodeError("trace: count does not match payload size");
  }
  std::vector<Event> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Event ev;
    ev.ts = r.u64();
    ev.proc = r.u32();
    ev.type = static_cast<EventType>(r.u8());
    ev.arg = r.u8();
    ev.a32 = r.u32();
    ev.a64 = r.u64();
    ev.b64 = r.u64();
    out.push_back(ev);
  }
  r.expect_done();
  return out;
}

std::string to_chrome_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto entry = [&](const Event& ev, char ph, std::string_view name,
                   std::string_view id, std::string_view args) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"" << ph << "\",\"ts\":" << ev.ts << ",\"pid\":" << ev.proc
       << ",\"tid\":" << ev.proc << ",\"cat\":\""
       << (detection_event(ev.type) ? "detection" : "runtime") << "\",\"name\":\"";
    json_escape(os, name);
    os << "\"";
    if (!id.empty()) os << ",\"id\":\"" << id << "\"";
    if (ph == 'i' || ph == 'n') os << ",\"s\":\"t\"";
    if (!args.empty()) os << ",\"args\":{" << args << "}";
    os << "}";
  };

  std::set<ProcessId> procs;
  for (const Event& ev : events) {
    procs.insert(ev.proc);
    std::ostringstream args;
    switch (ev.type) {
      case EventType::kDetectionStart: {
        args << "\"initiator\":" << ev.a32 << ",\"seq\":" << ev.a64
             << ",\"candidate\":\"" << ref_to_string(ev.b64) << "\"";
        const std::string key = detection_key(ev);
        entry(ev, 'b', "detection " + key, key, args.str());
        break;
      }
      case EventType::kCdmHop: {
        args << "\"hops\":" << ev.b64;
        const std::string key = detection_key(ev);
        entry(ev, 'n', "cdm hop", key, args.str());
        break;
      }
      case EventType::kDetectionMatched:
      case EventType::kDetectionAborted:
      case EventType::kDetectionExpired: {
        const std::string key = detection_key(ev);
        const char* outcome = ev.type == EventType::kDetectionMatched ? "matched"
                              : ev.type == EventType::kDetectionExpired
                                  ? "expired"
                                  : "aborted";
        args << "\"outcome\":\"" << outcome << "\"";
        if (ev.type == EventType::kDetectionAborted) {
          args << ",\"reason\":\"" << to_string(static_cast<AbortReason>(ev.arg))
               << "\"";
        }
        if (ev.type == EventType::kDetectionExpired) {
          args << ",\"lifetime_us\":" << ev.b64;
        }
        entry(ev, 'e', "detection " + key, key, args.str());
        break;
      }
      case EventType::kEviction:
        args << "\"peer\":" << ev.a32 << ",\"incarnation\":" << ev.a64;
        entry(ev, 'i', "evict peer", "", args.str());
        break;
      case EventType::kCrash:
        args << "\"pid\":" << ev.a32;
        entry(ev, 'i', "crash", "", args.str());
        break;
      case EventType::kRestart:
        args << "\"pid\":" << ev.a32 << ",\"incarnation\":" << ev.a64
             << ",\"recovered\":" << (ev.b64 ? "true" : "false");
        entry(ev, 'i', "restart", "", args.str());
        break;
      case EventType::kNssRound:
        args << "\"nss_sent\":" << ev.a64;
        entry(ev, 'i', "nss round", "", args.str());
        break;
      case EventType::kLgcRun:
        args << "\"reclaimed\":" << ev.a64 << ",\"pause_us\":" << ev.b64;
        entry(ev, 'i', "lgc", "", args.str());
        break;
      case EventType::kSnapshot:
        args << "\"version\":" << ev.a64 << ",\"duration_us\":" << ev.b64;
        entry(ev, 'i', "snapshot", "", args.str());
        break;
      case EventType::kSnapshotPersist:
        args << "\"version\":" << ev.a64 << ",\"duration_us\":" << ev.b64
             << ",\"ok\":" << (ev.arg == 0 ? "true" : "false");
        entry(ev, 'i', "snapshot persist", "", args.str());
        break;
      case EventType::kSnapshotSummarize:
        args << "\"version\":" << ev.a64 << ",\"duration_us\":" << ev.b64;
        entry(ev, 'i', "snapshot summarize", "", args.str());
        break;
      case EventType::kSnapshotPublish:
        args << "\"version\":" << ev.a64 << ",\"latency_us\":" << ev.b64;
        entry(ev, 'i', "snapshot publish", "", args.str());
        break;
    }
  }
  // Name the per-process tracks so Perfetto shows "P<n>" instead of bare ids.
  for (ProcessId p : procs) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << p << ",\"name\":\"process_name\","
       << "\"args\":{\"name\":\"P" << p << "\"}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace adgc::obs
