#include "src/obs/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace adgc::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// A token of printable non-space ASCII, length-bounded. Control bytes in
/// the request line are always malformed.
bool valid_token(std::string_view s, std::size_t max) {
  if (s.empty() || s.size() > max) return false;
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f) return false;
  }
  return true;
}

}  // namespace

HttpParse parse_http_request(std::string_view buf, HttpRequest* out,
                             std::size_t* consumed) {
  // Find the end of the head: CRLFCRLF or bare LFLF.
  std::size_t head_end = std::string_view::npos;
  std::size_t head_len = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != '\n') continue;
    // "\n" directly after the previous line's "\n" (with or without '\r'
    // in between) terminates the head.
    std::size_t prev = i;
    if (prev > 0 && buf[prev - 1] == '\r') --prev;
    if (prev == 0 || buf[prev - 1] == '\n') {
      head_end = i;
      head_len = i + 1;
      break;
    }
  }
  if (head_end == std::string_view::npos) {
    return buf.size() > kMaxRequestBytes ? HttpParse::kBad : HttpParse::kNeedMore;
  }
  if (head_len > kMaxRequestBytes) return HttpParse::kBad;

  // Request line = up to the first LF (trim a trailing CR).
  std::size_t line_end = buf.find('\n');
  std::string_view line = buf.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return HttpParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return HttpParse::kBad;
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!valid_token(method, kMaxMethodBytes)) return HttpParse::kBad;
  if (!valid_token(target, kMaxTargetBytes)) return HttpParse::kBad;
  if (target[0] != '/') return HttpParse::kBad;
  if (version.size() != 8 || version.rfind("HTTP/1.", 0) != 0 ||
      (version[7] != '0' && version[7] != '1')) {
    return HttpParse::kBad;
  }
  if (out) {
    out->method = std::string(method);
    out->target = std::string(target);
    out->minor_version = version[7] - '0';
  }
  if (consumed) *consumed = head_len;
  return HttpParse::kOk;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << " " << status_text(status) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n";
  std::string head = os.str();
  head.append(body);
  return head;
}

std::optional<std::string> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& target, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;  // timeout or error
    }
    if (n == 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (resp.rfind("HTTP/1.0 200", 0) != 0 && resp.rfind("HTTP/1.1 200", 0) != 0) {
    return std::nullopt;
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return resp.substr(body + 4);
}

}  // namespace adgc::obs
