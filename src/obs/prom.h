// Prometheus text exposition of the Metrics counters and histograms.
//
// Naming follows the Prometheus conventions at export time so the in-code
// names (already `[a-z0-9_]`) stay short: every sample gains the `adgc_`
// namespace prefix, monotone counters gain the `_total` suffix, and the few
// table-size gauges are typed `gauge` without it. Histograms render as the
// standard `_bucket{le=...}` / `_sum` / `_count` triplet with cumulative
// bucket counts over the log-bucket upper bounds. Output order is the
// deterministic sorted order of Metrics::for_each_*.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/metrics.h"

namespace adgc::obs {

/// Renders every counter (including zero-valued ones — scrape consumers need
/// the full series) and every histogram.
std::string render_prometheus(const Metrics& m);

/// Minimal exposition-text parser for tests and the cluster harness's scrape
/// validation: collects `name{labels}` → value for every sample line, checks
/// comment lines are well-formed. Returns false (with *err set) on any
/// syntactically invalid line.
bool parse_prometheus(std::string_view text, std::map<std::string, double>* out,
                      std::string* err);

}  // namespace adgc::obs
