// Concurrent mailbox network used by the real multi-threaded runtime.
//
// One bounded-unbounded MPSC-style mailbox per process (mutex + condvar —
// contention is per-process and light). Messages are delivered immediately
// (thread scheduling provides the asynchrony); loss and duplication are
// still injectable so the loss-tolerance properties can be exercised under
// true concurrency.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/message.h"

namespace adgc {

/// Work delivered to a process's thread: a network message or a posted
/// closure (how external drivers inject mutator actions into the actor).
using WorkItem = std::variant<Envelope, std::function<void()>>;

class ThreadedNetwork {
 public:
  ThreadedNetwork(std::size_t num_processes, NetworkConfig cfg, std::uint64_t seed,
                  Metrics* metrics);

  /// Sends a message; may drop or duplicate per the config. Stamps the
  /// envelope with the sender's incarnation and the current view of the
  /// destination's; drops it outright when the destination is down.
  void send(Envelope env);

  // ---- membership (crash/restart fault model) ----
  /// Marks a process down/up. While down, send() drops messages to it.
  void set_down(ProcessId pid, bool down);
  bool is_down(ProcessId pid) const;
  /// Bumps the incarnation (restart); returns the new value.
  Incarnation bump_incarnation(ProcessId pid);
  Incarnation incarnation(ProcessId pid) const;

  // ---- link faults (omission/partition fault model) ----
  /// Blocks/unblocks the directed link a→b (network partition). Blocked
  /// messages count as lost — a partition IS sustained omission.
  void set_link_blocked(ProcessId a, ProcessId b, bool blocked);
  bool link_blocked(ProcessId a, ProcessId b) const;
  /// Retunes loss/duplication mid-run (chaos harness phases).
  void set_loss_probability(double p);
  void set_duplicate_probability(double p);

  /// Posts a closure to run on `pid`'s thread.
  void post(ProcessId pid, std::function<void()> fn);

  /// Blocks up to `wait_us` for the next work item for `pid`.
  /// Returns nullopt on timeout or shutdown with an empty queue.
  std::optional<WorkItem> poll(ProcessId pid, SimTime wait_us);

  /// Wakes all waiters; poll() drains remaining items then returns nullopt.
  void shutdown();

  bool shut_down() const;

 private:
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> q;
  };

  /// Lock-free membership entry; read on every send, written only by the
  /// runtime's crash/restart paths.
  struct PeerState {
    std::atomic<Incarnation> inc{0};
    std::atomic<bool> down{false};
  };

  void enqueue(ProcessId pid, WorkItem item);

  NetworkConfig cfg_;
  Metrics* metrics_;
  mutable std::mutex rng_mu_;  // guards rng_, cfg_ fault knobs and blocked_
  Rng rng_;
  std::set<std::pair<ProcessId, ProcessId>> blocked_;
  std::vector<std::unique_ptr<Box>> boxes_;
  std::vector<std::unique_ptr<PeerState>> peers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace adgc
