// Concurrent mailbox network used by the real multi-threaded runtime.
//
// One bounded-unbounded MPSC-style mailbox per process (mutex + condvar —
// contention is per-process and light). Messages are delivered immediately
// (thread scheduling provides the asynchrony); loss and duplication are
// still injectable so the loss-tolerance properties can be exercised under
// true concurrency.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/message.h"

namespace adgc {

/// Work delivered to a process's thread: a network message or a posted
/// closure (how external drivers inject mutator actions into the actor).
using WorkItem = std::variant<Envelope, std::function<void()>>;

class ThreadedNetwork {
 public:
  ThreadedNetwork(std::size_t num_processes, NetworkConfig cfg, std::uint64_t seed,
                  Metrics* metrics);

  /// Sends a message; may drop or duplicate per the config.
  void send(Envelope env);

  /// Posts a closure to run on `pid`'s thread.
  void post(ProcessId pid, std::function<void()> fn);

  /// Blocks up to `wait_us` for the next work item for `pid`.
  /// Returns nullopt on timeout or shutdown with an empty queue.
  std::optional<WorkItem> poll(ProcessId pid, SimTime wait_us);

  /// Wakes all waiters; poll() drains remaining items then returns nullopt.
  void shutdown();

  bool shut_down() const;

 private:
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> q;
  };

  void enqueue(ProcessId pid, WorkItem item);

  NetworkConfig cfg_;
  Metrics* metrics_;
  mutable std::mutex rng_mu_;
  Rng rng_;
  std::vector<std::unique_ptr<Box>> boxes_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace adgc
