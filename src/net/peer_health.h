// Per-peer link-health estimation and adaptive retry policy.
//
// One PeerHealthTracker per process, maintained from that process's own
// observations: round-trip samples from acked handshakes and invocation
// replies, *any* inbound message as a liveness signal, and retry timers
// firing unanswered as failures. From these it derives a lightweight
// phi-accrual-style suspicion verdict per peer:
//
//   suspected(peer)  ⇔  consecutive_failures ≥ suspect_after_failures
//                    ∨  (outstanding > 0 ∧ silence > phi · max(srtt, floor))
//
// where `silence` is the time since the peer was last heard from and
// `outstanding` counts messages sent to the peer since then (so an idle but
// healthy peer is never suspected — accrual only runs while we are actually
// trying to talk to it).
//
// The tracker also carries the per-peer outgoing-window bound used for
// priority load shedding: `outstanding` is the sender-side estimate of
// queued/in-flight traffic toward the peer, reset by any sign of life.
// Everything is deterministic; the backoff jitter draws from the caller's
// seeded Rng.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"

namespace adgc {

/// Exponential backoff with deterministic "equal jitter": the delay for
/// `attempt` (0-based) is uniform in [d/2, d) where d = min(cap, base·2^a).
/// Drawing from a seeded Rng keeps runs reproducible while de-phasing
/// retries across processes (synchronized retry bursts are exactly what a
/// congested link does not need).
SimTime backoff_delay(SimTime base_us, SimTime cap_us, int attempt, Rng& rng);

class PeerHealthTracker {
 public:
  struct Peer {
    /// EWMA of observed ack/reply round-trip latency, microseconds.
    double srtt_us = 0.0;          // 0 = no sample yet
    /// Retry timers that fired without the peer answering since it was
    /// last heard from.
    std::uint32_t consecutive_failures = 0;
    /// Last time anything arrived from the peer (0 = never).
    SimTime last_heard = 0;
    /// When the current unanswered-send window opened: the timestamp of the
    /// first on_send() after the peer was last heard from (0 = no window).
    /// The accrual baseline is max(last_heard, window_start) — NOT plain
    /// last_heard — so that under wall clocks (where `now` never restarts at
    /// 0) a long-idle peer is not declared silent the instant we resume
    /// sending to it.
    SimTime window_start = 0;
    /// Messages sent to the peer since it was last heard from — the
    /// sender-side outgoing-window estimate the shedding bound applies to.
    std::uint32_t outstanding = 0;
    /// Sticky flag for metrics: whether the last verdict was "suspected".
    /// Cleared by any sign of life, so a recovered peer leaves the
    /// suspected count even if nobody re-queries its verdict.
    bool suspected = false;
    /// When the sticky flag last rose (0 = not suspected). The permanent-
    /// failure escalation requires suspicion to be *sustained* for
    /// peer_death_timeout before committing the peer dead.
    SimTime suspected_since = 0;
    /// Last send/hear/timeout activity on this slot; idle slots past
    /// peer_health_idle_prune are reclaimed so the table stays bounded
    /// under peer churn.
    SimTime last_activity = 0;
  };

  PeerHealthTracker(const ProcessConfig& cfg, Metrics& metrics)
      : cfg_(cfg), metrics_(metrics) {}

  /// A message was handed to the transport for `peer` at time `now` (take
  /// it from Env::now(); it anchors the suspicion accrual window).
  void on_send(ProcessId peer, SimTime now);

  /// Anything arrived from `peer` (liveness signal: resets the failure count
  /// and the outgoing window).
  void on_heard(ProcessId peer, SimTime now);

  /// An ack/reply arrived whose send time is known: liveness plus an RTT
  /// sample folded into the EWMA.
  void on_response(ProcessId peer, SimTime rtt_us, SimTime now);

  /// A retry timer fired without an answer from `peer`.
  void on_timeout(ProcessId peer, SimTime now);

  /// Current suspicion verdict. Updates the sticky flag and bumps the
  /// suspect-transition counter, so call sites need no extra bookkeeping.
  bool suspected(ProcessId peer, SimTime now);

  /// Accrual value: silence toward an actively-contacted peer, in units of
  /// the smoothed RTT (0 when idle or never contacted). Diagnostics.
  double phi(ProcessId peer, SimTime now) const;

  /// Smoothed RTT estimate (0 when no sample yet).
  double srtt_us(ProcessId peer) const;

  /// Sender-side outgoing-window estimate toward `peer`.
  std::uint32_t outstanding(ProcessId peer) const;

  std::uint32_t consecutive_failures(ProcessId peer) const;

  /// Number of peers currently in the suspected state (diagnostics).
  std::size_t suspected_count() const;

  /// When the current uninterrupted suspicion episode began (0 = the peer is
  /// not suspected, or suspected() was never queried since it rose).
  SimTime suspected_since(ProcessId peer) const;

  /// Last time anything arrived from `peer` (0 = never heard).
  SimTime last_heard(ProcessId peer) const;

  /// Peers with a live health slot (eviction candidate enumeration).
  std::set<ProcessId> known_peers() const;

  /// Number of tracked slots (the peer_health_slots gauge).
  std::size_t size() const { return peers_.size(); }

  /// Drops the health slot for `peer` (evicted peers must not keep a slot —
  /// survivor memory is bounded under churn). The eviction tombstone, if
  /// any, is kept: tombstones outlive slots by design.
  void erase_peer(ProcessId peer);

  /// Reclaims slots with no activity for `idle_us` that are not currently
  /// suspected (a suspected slot is evidence, not garbage). Returns the
  /// number pruned.
  std::size_t prune_idle(SimTime now, SimTime idle_us);

  // --- eviction tombstones ---
  // A tombstone {peer → incarnation} records a committed local eviction:
  // every incarnation of `peer` up to and including the recorded one is
  // dead to this process and its traffic is rejected with an Evicted NACK.
  // A strictly higher incarnation clears the tombstone (the peer restarted
  // as demanded). Tombstones are volatile — they die with this process —
  // which is safe: after our own restart the zombie's stale traffic is
  // filtered by the ordinary incarnation checks or re-handshakes from zero.

  /// Records `peer`'s eviction at `incarnation` (the highest one ever seen).
  void record_eviction(ProcessId peer, Incarnation incarnation);

  /// The tombstoned incarnation, or nullopt if `peer` is not evicted.
  std::optional<Incarnation> evicted_incarnation(ProcessId peer) const;

  /// Readmits `peer` (a strictly newer incarnation showed up).
  void clear_tombstone(ProcessId peer);

  const std::map<ProcessId, Incarnation>& eviction_tombstones() const {
    return tombstones_;
  }

 private:
  Peer& slot(ProcessId peer) { return peers_[peer]; }
  const Peer* find(ProcessId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? nullptr : &it->second;
  }
  bool compute_suspected(const Peer& p, SimTime now) const;

  const ProcessConfig& cfg_;
  Metrics& metrics_;
  std::unordered_map<ProcessId, Peer> peers_;
  std::map<ProcessId, Incarnation> tombstones_;
};

}  // namespace adgc
