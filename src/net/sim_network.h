// Deterministic simulated network with fault injection.
//
// The network itself does not own an event loop; the runtime hands it a
// scheduler callback, and SimNetwork decides, per message, whether it is
// lost, duplicated, and when each copy arrives. All randomness comes from
// the injected Rng, so a run is a pure function of the seed.
#pragma once

#include <functional>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/message.h"

namespace adgc {

class SimNetwork {
 public:
  /// `deliver(when, envelope)` schedules one delivery at absolute time `when`.
  using Scheduler = std::function<void(SimTime when, Envelope env)>;

  SimNetwork(NetworkConfig cfg, Rng rng, Scheduler deliver, Metrics* metrics);

  /// Injects a message at absolute time `now`.
  void send(SimTime now, Envelope env);

  /// Externally decided fate of one message — what the RNG normally draws.
  struct Fate {
    bool lose = false;
    bool duplicate = false;
    SimTime latency_us = 0;  // one-way latency of the primary copy
  };
  using FateHook = std::function<Fate(const Envelope&)>;

  /// Model-checking hook: when set, the hook (not the RNG) decides loss,
  /// duplication and latency for every message, making the network a pure
  /// function of the hook's answers. Link blocks still apply; FIFO
  /// watermarks still order the chosen latencies when fifo_links is on.
  void set_fate_hook(FateHook hook) { fate_hook_ = std::move(hook); }

  // --- dynamic fault injection (tests/benches flip these mid-run) ---
  void set_loss_probability(double p) { cfg_.loss_probability = p; }
  void set_duplicate_probability(double p) { cfg_.duplicate_probability = p; }

  /// Blocks/unblocks the directed link a→b (network partition).
  void set_link_blocked(ProcessId a, ProcessId b, bool blocked);
  bool link_blocked(ProcessId a, ProcessId b) const;

  const NetworkConfig& config() const { return cfg_; }

 private:
  SimTime draw_latency(SimTime now, ProcessId src, ProcessId dst);
  SimTime apply_fifo(SimTime when, ProcessId src, ProcessId dst);

  NetworkConfig cfg_;
  Rng rng_;
  FateHook fate_hook_;
  Scheduler deliver_;
  Metrics* metrics_;
  std::set<std::pair<ProcessId, ProcessId>> blocked_;
  // Per-link watermark used when fifo_links is on.
  std::unordered_map<std::uint64_t, SimTime> link_watermark_;
};

}  // namespace adgc
