// Environment a Process runs against.
//
// A Process is an actor: all of its state is confined to one logical thread
// of execution. Everything it needs from the outside world — the clock,
// message sending, timers, randomness — comes through Env. The deterministic
// simulator (rt/runtime.h) and the real multi-threaded runtime
// (rt/threaded_runtime.h) provide the two implementations.
#pragma once

#include <functional>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/message.h"
#include "src/obs/trace.h"

namespace adgc {

class Env {
 public:
  virtual ~Env() = default;

  /// Current time in microseconds (simulated or wall-clock).
  virtual SimTime now() const = 0;

  /// Sends a payload from this process to `dst`. Asynchronous, may be lost,
  /// duplicated or reordered depending on the network configuration.
  virtual void send(ProcessId dst, const MessagePayload& msg) = 0;

  /// Sends an already-encoded payload (the batcher's flush path: the batch
  /// was serialized into one contiguous buffer, re-encoding it would defeat
  /// the point). The default decodes and falls back to send() so bare-bones
  /// Env implementations (test fakes) stay correct; the real runtimes
  /// override it to move the buffer straight into the Envelope.
  virtual void send_encoded(ProcessId dst, std::vector<std::byte> bytes) {
    send(dst, decode_message(bytes));
  }

  /// Runs `fn` on this process's execution context after `delay`.
  /// Timers fire at-least-once, in time order w.r.t. other local events.
  /// Must be called from the process's own execution context.
  virtual void schedule(SimTime delay, std::function<void()> fn) = 0;

  /// Enqueues `fn` onto this process's execution context. Unlike schedule(),
  /// callable from any thread — the completion channel for background work
  /// (the snapshot pipeline's publish hop). The default routes through
  /// schedule(0, ...), which is correct for single-threaded Envs (the
  /// deterministic simulator, test fakes); the real runtimes override it
  /// with their thread-safe cross-thread queues.
  virtual void post(std::function<void()> fn) { schedule(0, std::move(fn)); }

  /// True when this Env is backed by real OS threads: heavy work may be
  /// offloaded to a background worker and completions arrive via post().
  /// False in the deterministic simulator, where offloaded work runs inline
  /// and only its completion is deferred (a scheduled self-event after
  /// ProcessConfig::snapshot_pipeline_latency_us).
  virtual bool real_time() const { return false; }

  /// Deterministic per-process random stream.
  virtual Rng& rng() = 0;

  /// This process's metric counters.
  virtual Metrics& metrics() = 0;

  /// This process's structured-event trace ring, or nullptr when tracing is
  /// disabled (obs::emit is null-safe, so recording sites never branch).
  virtual obs::TraceRing* trace() { return nullptr; }
};

}  // namespace adgc
