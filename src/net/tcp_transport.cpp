#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/common/log.h"
#include "src/net/peer_health.h"

namespace adgc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

PeerAddr parse_peer_addr(const std::string& s, bool allow_port_zero) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    throw std::invalid_argument("peer address must be host:port, got '" + s + "'");
  }
  PeerAddr a;
  a.host = s.substr(0, colon);
  const long port = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (port < (allow_port_zero ? 0 : 1) || port > 65535) {
    throw std::invalid_argument("peer address has bad port: '" + s + "'");
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

TcpTransport::TcpTransport(Options opts, Metrics& metrics)
    : opts_(std::move(opts)), metrics_(metrics), rng_(opts_.seed ^ 0x7c73u) {}

TcpTransport::~TcpTransport() { stop(0); }

SimTime TcpTransport::steady_now() const {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count());
}

void TcpTransport::start() {
  if (running_.load()) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.listen_port);
  if (::inet_pton(AF_INET, opts_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad listen host '" + opts_.listen_host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + opts_.listen_host + ":" +
                             std::to_string(opts_.listen_port) + " failed: " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  if (opts_.admin_enabled) {
    admin_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in aaddr{};
    aaddr.sin_family = AF_INET;
    aaddr.sin_port = htons(opts_.admin_port);
    if (admin_listen_fd_ < 0 ||
        ::inet_pton(AF_INET, opts_.admin_host.c_str(), &aaddr.sin_addr) != 1 ||
        ::setsockopt(admin_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0 ||
        ::bind(admin_listen_fd_, reinterpret_cast<sockaddr*>(&aaddr), sizeof aaddr) != 0 ||
        ::listen(admin_listen_fd_, 16) != 0) {
      const std::string err = std::strerror(errno);
      if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
      admin_listen_fd_ = -1;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("admin bind/listen on " + opts_.admin_host + ":" +
                               std::to_string(opts_.admin_port) + " failed: " + err);
    }
    socklen_t alen = sizeof aaddr;
    ::getsockname(admin_listen_fd_, reinterpret_cast<sockaddr*>(&aaddr), &alen);
    admin_port_ = ntohs(aaddr.sin_port);
    set_nonblocking(admin_listen_fd_);
  }

  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
    admin_listen_fd_ = -1;
    throw std::runtime_error("pipe() failed");
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
}

void TcpTransport::stop(SimTime drain_us) {
  if (!running_.load()) return;
  drain_us_.store(drain_us);
  stopping_.store(true);
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  running_.store(false, std::memory_order_release);
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  peer_state_.clear();
  for (auto& c : admin_conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  admin_conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
  admin_listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TcpTransport::wake() {
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void TcpTransport::send(Envelope env) {
  if (env.dst == opts_.self || !opts_.peers.count(env.dst)) {
    metrics_.messages_lost.add();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    send_inbox_.push_back(std::move(env));
  }
  wake();
}

void TcpTransport::drop_peer(ProcessId peer) {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    drop_inbox_.push_back(peer);
  }
  wake();
}

Incarnation TcpTransport::last_known_incarnation(ProcessId peer) const {
  std::lock_guard<std::mutex> lk(inc_mu_);
  auto it = peer_incarnation_.find(peer);
  return it == peer_incarnation_.end() ? kUnknownIncarnation : it->second;
}

// ------------------------------------------------------------ IO thread side

void TcpTransport::enqueue_frame(PeerState& ps, std::vector<std::byte> frame,
                                 std::uint8_t msg_tag) {
  // Priority shedding on the pending queue (no live connection, or the
  // connection's own buffer already absorbed the limit). CDMs go first,
  // NewSetStubs at twice the bound; everything else is never shed here.
  const std::size_t queued =
      ps.pending.size() + (ps.conn ? ps.conn->writeq.size() : 0);
  const bool cdm = msg_tag == static_cast<std::uint8_t>(MessageTag::kCdm);
  const bool nss = msg_tag == static_cast<std::uint8_t>(MessageTag::kNewSetStubs);
  if (opts_.peer_queue_limit > 0 && queued >= opts_.peer_queue_limit) {
    if (cdm) {
      metrics_.cdms_shed.add();
      return;
    }
    if (nss && queued >= 2 * opts_.peer_queue_limit) {
      metrics_.new_set_stubs_shed.add();
      return;
    }
  }
  metrics_.tcp_writeq_depth.record(queued + 1);
  if (ps.conn && !ps.conn->connecting) {
    ps.conn->writeq.push_back(std::move(frame));
  } else {
    ps.pending.push_back(std::move(frame));
  }
}

// ------------------------------------------------------------ admin endpoint

void TcpTransport::admin_accept_ready() {
  for (;;) {
    const int fd = ::accept(admin_listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    auto conn = std::make_unique<AdminConn>();
    conn->fd = fd;
    admin_conns_.push_back(std::move(conn));
  }
}

void TcpTransport::close_admin(AdminConn* conn) {
  if (conn->fd < 0) return;
  ::close(conn->fd);
  conn->fd = -1;
}

void TcpTransport::admin_readable(AdminConn* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      if (!conn->responding) conn->in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF before a complete request (or hard error): nothing to answer.
    if (!conn->responding) {
      close_admin(conn);
      return;
    }
    break;
  }
  if (conn->responding || conn->fd < 0) return;

  obs::HttpRequest req;
  std::size_t consumed = 0;
  switch (obs::parse_http_request(conn->in, &req, &consumed)) {
    case obs::HttpParse::kNeedMore:
      return;
    case obs::HttpParse::kBad:
      conn->out = obs::http_response(400, "text/plain", "bad request\n");
      break;
    case obs::HttpParse::kOk:
      if (req.method != "GET") {
        conn->out = obs::http_response(405, "text/plain", "only GET is served\n");
      } else if (!admin_handler_) {
        conn->out = obs::http_response(503, "text/plain", "no admin handler\n");
      } else {
        const obs::AdminResponse resp = admin_handler_(req);
        conn->out = obs::http_response(resp.status, resp.content_type, resp.body);
      }
      break;
  }
  conn->in.clear();
  conn->in.shrink_to_fit();
  conn->responding = true;
  admin_writable(conn);
}

void TcpTransport::admin_writable(AdminConn* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_admin(conn);
      return;
    }
    conn->out_off += static_cast<std::size_t>(n);
  }
  close_admin(conn);  // one response per connection (HTTP/1.0)
}

void TcpTransport::drain_sends() {
  std::vector<Envelope> batch;
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    batch.swap(send_inbox_);
  }
  const SimTime now = steady_now();
  for (Envelope& env : batch) {
    PeerState& ps = peer_state_[env.dst];
    const std::uint8_t tag = peek_message_tag(env.bytes);
    metrics_.messages_sent.add();
    metrics_.bytes_sent.add(env.bytes.size() + kFrameHeaderSize);
    enqueue_frame(ps, encode_data_frame(env), tag);
    if (!ps.conn && now >= ps.next_connect_us) start_connect(env.dst, now);
  }
}

void TcpTransport::start_connect(ProcessId peer, SimTime now) {
  auto it = opts_.peers.find(peer);
  if (it == opts_.peers.end()) return;
  PeerState& ps = peer_state_[peer];
  if (ps.conn) return;

  metrics_.tcp_connects.add();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = peer;
  conn->outbound = true;
  conn->connecting = (rc != 0 && errno == EINPROGRESS);
  if (rc != 0 && !conn->connecting) {
    // Immediate failure (e.g. ECONNREFUSED on loopback): back off.
    ::close(fd);
    ++ps.attempts;
    ps.next_connect_us = now + backoff_delay(opts_.reconnect_base_us,
                                             opts_.reconnect_cap_us, ps.attempts, rng_);
    metrics_.tcp_reconnect_backoffs.add();
    if (connect_failed_) connect_failed_(peer);
    return;
  }
  ps.conn = conn.get();
  conns_.push_back(std::move(conn));
  if (!ps.conn->connecting) on_connect_ready(ps.conn);
}

void TcpTransport::flush_pending_into_conn(ProcessId peer) {
  PeerState& ps = peer_state_[peer];
  if (!ps.conn) return;
  while (!ps.pending.empty()) {
    ps.conn->writeq.push_back(std::move(ps.pending.front()));
    ps.pending.pop_front();
  }
}

void TcpTransport::on_connect_ready(Conn* conn) {
  conn->connecting = false;
  PeerState& ps = peer_state_[conn->peer];
  ps.attempts = 0;
  // Hello goes out first on every new connection, then the queued traffic.
  conn->writeq.push_front(encode_hello_frame(opts_.self, opts_.incarnation));
  metrics_.tcp_hello_sent.add();
  flush_pending_into_conn(conn->peer);
}

void TcpTransport::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    set_nodelay(fd);
    metrics_.tcp_accepts.add();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->outbound = false;
    // Greet inbound connections too: this is how the dialing side learns OUR
    // incarnation (it may have dialed a dead one).
    conn->writeq.push_back(encode_hello_frame(opts_.self, opts_.incarnation));
    metrics_.tcp_hello_sent.add();
    conns_.push_back(std::move(conn));
  }
}

void TcpTransport::close_conn(Conn* conn, const char* why) {
  if (conn->fd < 0) return;
  ADGC_TRACE("tcp P" << opts_.self << ": closing conn to P" << conn->peer << " ("
                     << why << ")");
  metrics_.tcp_disconnects.add();
  ::close(conn->fd);
  conn->fd = -1;
  const bool was_connecting = conn->connecting;
  if (conn->outbound && conn->peer != kNoProcess) {
    PeerState& ps = peer_state_[conn->peer];
    if (ps.conn == conn) {
      // Unsent frames stay queued for the next connection.
      for (auto it = conn->writeq.begin(); it != conn->writeq.end(); ++it) {
        ps.pending.push_back(std::move(*it));
      }
      conn->writeq.clear();
      ps.conn = nullptr;
      ++ps.attempts;
      ps.next_connect_us =
          steady_now() + backoff_delay(opts_.reconnect_base_us, opts_.reconnect_cap_us,
                                       ps.attempts, rng_);
      metrics_.tcp_reconnect_backoffs.add();
    }
    // A socket that died while still connecting never reached the peer at
    // all — surface it as a connect failure for suspicion accounting.
    if (was_connecting && connect_failed_) connect_failed_(conn->peer);
  }
}

void TcpTransport::apply_drops() {
  std::vector<ProcessId> drops;
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    drops.swap(drop_inbox_);
  }
  for (ProcessId peer : drops) {
    for (auto& c : conns_) {
      if (c->fd >= 0 && c->peer == peer) {
        c->connecting = false;  // an eviction is not a connect failure
        close_conn(c.get(), "peer evicted");
      }
    }
    // After close_conn requeued unsent frames into pending, drop the whole
    // slot: queued frames, sheddable counts, backoff state. Survivor memory
    // toward a dead peer must not grow — or even persist.
    peer_state_.erase(peer);
  }
}

void TcpTransport::on_readable(Conn* conn) {
  std::byte buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->decoder.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: process what we have, then drop the connection.
    close_conn(conn, n == 0 ? "peer closed" : "recv error");
    break;
  }

  while (auto frame = conn->decoder.next()) {
    if (frame->kind == FrameKind::kHello) {
      metrics_.tcp_hello_received.add();
      conn->peer = frame->src;
      Incarnation prev = kUnknownIncarnation;
      {
        std::lock_guard<std::mutex> lk(inc_mu_);
        auto [it, fresh] = peer_incarnation_.emplace(frame->src, frame->src_inc);
        if (!fresh) {
          prev = it->second;
          if (frame->src_inc > it->second) it->second = frame->src_inc;
        }
      }
      if (prev != kUnknownIncarnation && frame->src_inc > prev && peer_restart_) {
        peer_restart_(frame->src, frame->src_inc);
      }
      continue;
    }
    metrics_.tcp_frames_received.add();
    if (deliver_) {
      Envelope env;
      env.src = frame->src;
      env.dst = frame->dst;
      env.src_inc = frame->src_inc;
      env.dst_inc = frame->dst_inc;
      env.bytes = std::move(frame->payload);
      deliver_(std::move(env));
    }
  }
  if (conn->decoder.failed() && conn->fd >= 0) {
    // Framing desynchronization: the stream is unusable. Reject gracefully —
    // count it, drop the connection, let reconnect start clean.
    metrics_.tcp_frames_rejected.add();
    ADGC_WARN("tcp P" << opts_.self << ": " << conn->decoder.error_detail()
                      << " from P" << conn->peer << "; dropping connection");
    close_conn(conn, "frame error");
  }
}

void TcpTransport::on_writable(Conn* conn) {
  if (conn->connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_conn(conn, "connect failed");
      return;
    }
    on_connect_ready(conn);
  }
  while (!conn->writeq.empty()) {
    const std::vector<std::byte>& front = conn->writeq.front();
    const ssize_t n = ::send(conn->fd, front.data() + conn->write_off,
                             front.size() - conn->write_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(conn, "send error");
      return;
    }
    conn->write_off += static_cast<std::size_t>(n);
    if (conn->write_off == front.size()) {
      conn->writeq.pop_front();
      conn->write_off = 0;
      metrics_.tcp_frames_sent.add();
    }
  }
}

void TcpTransport::io_loop() {
  std::vector<pollfd> fds;
  std::vector<Conn*> fd_conns;
  std::vector<AdminConn*> fd_admin;
  SimTime drain_deadline = 0;

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    const SimTime now = steady_now();
    if (stopping && drain_deadline == 0) {
      drain_sends();  // pick up anything queued before stop()
      drain_deadline = now + drain_us_.load();
    }
    if (stopping) {
      // Drained everything (or ran out of time) → leave.
      bool writes_left = false;
      for (auto& c : conns_) {
        if (c->fd >= 0 && !c->writeq.empty()) writes_left = true;
      }
      if (!writes_left || now >= drain_deadline) return;
    }

    // Kick reconnects whose backoff expired and that still have traffic.
    SimTime next_deadline = stopping ? drain_deadline : now + 50'000;
    if (!stopping) {
      for (auto& [pid, ps] : peer_state_) {
        if (!ps.conn && !ps.pending.empty()) {
          if (now >= ps.next_connect_us) {
            start_connect(pid, now);
          } else {
            next_deadline = std::min(next_deadline, ps.next_connect_us);
          }
        }
      }
    }

    fds.clear();
    fd_conns.clear();
    fd_admin.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    std::size_t idx_listen = 0, idx_admin = 0;  // 0 = absent (slot 0 is wake)
    if (!stopping) {
      idx_listen = fds.size();
      fds.push_back({listen_fd_, POLLIN, 0});
      if (admin_listen_fd_ >= 0) {
        idx_admin = fds.size();
        fds.push_back({admin_listen_fd_, POLLIN, 0});
      }
    }
    const std::size_t base = fds.size();
    for (auto& c : conns_) {
      if (c->fd < 0) continue;
      short ev = POLLIN;
      if (c->connecting || !c->writeq.empty()) ev |= POLLOUT;
      fds.push_back({c->fd, ev, 0});
      fd_conns.push_back(c.get());
    }
    const std::size_t admin_base = fds.size();
    if (!stopping) {
      for (auto& a : admin_conns_) {
        if (a->fd < 0) continue;
        short ev = a->responding ? POLLOUT : POLLIN;
        fds.push_back({a->fd, ev, 0});
        fd_admin.push_back(a.get());
      }
    }

    const SimTime wait_us = next_deadline > now ? next_deadline - now : 0;
    const int timeout_ms = static_cast<int>(std::min<SimTime>(wait_us / 1000 + 1, 1000));
    const int nready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (nready < 0 && errno != EINTR) return;

    if (fds[0].revents & POLLIN) {
      char scratch[256];
      while (::read(wake_fds_[0], scratch, sizeof scratch) > 0) {
      }
    }
    if (idx_listen && (fds[idx_listen].revents & POLLIN)) accept_ready();
    if (idx_admin && (fds[idx_admin].revents & POLLIN)) admin_accept_ready();
    for (std::size_t i = base; i < admin_base; ++i) {
      Conn* conn = fd_conns[i - base];
      if (conn->fd < 0) continue;
      if (fds[i].revents & (POLLOUT)) on_writable(conn);
      if (conn->fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        on_readable(conn);
      }
    }
    for (std::size_t i = admin_base; i < fds.size(); ++i) {
      AdminConn* conn = fd_admin[i - admin_base];
      if (conn->fd < 0) continue;
      if (fds[i].revents & POLLOUT) admin_writable(conn);
      if (conn->fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        admin_readable(conn);
      }
    }
    if (!stopping) {
      apply_drops();
      drain_sends();
    }

    // Reap closed connections.
    std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) { return c->fd < 0; });
    std::erase_if(admin_conns_,
                  [](const std::unique_ptr<AdminConn>& a) { return a->fd < 0; });
  }
}

}  // namespace adgc
