// Real-socket transport: length-prefixed frames over nonblocking TCP.
//
// One TcpTransport per OS process (per ADGC node). It owns:
//   * a nonblocking listening socket,
//   * one outbound connection per peer, established on demand the first
//     time a message is queued toward that peer, re-established after
//     failures under the equal-jitter exponential backoff from PR 2,
//   * any number of inbound connections (peers connecting to us),
//   * a single IO thread running a poll(2) event loop over all of them.
//
// Identity is carried in-band: the first frame on every connection, in both
// directions, is a hello announcing (ProcessId, incarnation). That is how a
// node learns its peers' current incarnations — the runtime stamps outgoing
// envelopes with them and drops inbound envelopes whose stamps are stale,
// exactly as the in-memory runtimes do with their omniscient membership
// tables. An incarnation increase observed in a hello IS the crash
// notification of the real-network fault model (see docs/DEPLOY.md).
//
// Write queues apply the PR 2 sender-side priority shedding: when the queue
// toward a peer exceeds its bound (connection down or receiver slow), CDMs
// are dropped first, then NewSetStubs at twice the bound; invocations,
// replies and AddScion handshake traffic are never shed. Both shed kinds
// are loss-tolerant by protocol design, so shedding degrades collection
// latency, never safety.
//
// Delivery and peer events are invoked on the IO thread; the NodeRuntime
// bridges them onto the process's single logical thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/obs/admin_http.h"

namespace adgc {

/// "host:port" endpoint of one node.
struct PeerAddr {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port"; throws std::invalid_argument on malformed input.
/// `allow_port_zero` admits ":0" — meaningful only for bind addresses
/// (kernel-assigned listen/admin ports), never for a peer map entry.
PeerAddr parse_peer_addr(const std::string& s, bool allow_port_zero = false);

class TcpTransport {
 public:
  struct Options {
    ProcessId self = 0;
    Incarnation incarnation = 0;
    std::string listen_host = "127.0.0.1";
    std::uint16_t listen_port = 0;  // 0 = kernel-assigned; see port()
    /// Static address map: every peer this node may talk to.
    std::map<ProcessId, PeerAddr> peers;
    /// Per-peer write-queue bound (frames) before priority shedding starts.
    std::size_t peer_queue_limit = 512;
    /// Reconnect backoff series (equal jitter, like every retry in PR 2).
    SimTime reconnect_base_us = 50'000;
    SimTime reconnect_cap_us = 2'000'000;
    std::uint64_t seed = 1;
    /// Admin HTTP endpoint (/metrics, /healthz, /tracez), folded into the
    /// same poll loop as the data sockets. Off unless enabled; a port of 0
    /// binds kernel-assigned (see admin_port()).
    bool admin_enabled = false;
    std::string admin_host = "127.0.0.1";
    std::uint16_t admin_port = 0;
  };

  /// Called on the IO thread for every inbound data frame.
  using DeliverFn = std::function<void(Envelope&&)>;
  /// Called on the IO thread when a hello reveals a NEW (higher) incarnation
  /// for a peer that was previously known under a lower one — i.e. the peer
  /// crashed and restarted since we last heard from it.
  using PeerRestartFn = std::function<void(ProcessId peer, Incarnation inc)>;
  /// Called on the IO thread when an outbound connect attempt toward a peer
  /// fails (immediately, or asynchronously on a still-connecting socket).
  /// Feeds failure-count suspicion: a SIGKILLed peer whose host refuses our
  /// connections accrues suspicion even though no request/reply traffic is
  /// in flight toward it.
  using ConnectFailedFn = std::function<void(ProcessId peer)>;

  TcpTransport(Options opts, Metrics& metrics);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_peer_restart(PeerRestartFn fn) { peer_restart_ = std::move(fn); }
  void set_connect_failed(ConnectFailedFn fn) { connect_failed_ = std::move(fn); }
  /// Content handler for admin requests; runs on the IO thread, so it must
  /// only touch thread-safe state. Install before start().
  void set_admin_handler(obs::AdminHandler fn) { admin_handler_ = std::move(fn); }

  /// Binds + listens + spawns the IO thread. Throws std::runtime_error when
  /// the listen address is unusable.
  void start();

  /// Stops the IO thread, first spending up to `drain_us` flushing queued
  /// writes (the SIGTERM clean-drain path). Idempotent.
  void stop(SimTime drain_us = 200'000);

  /// Queues an envelope toward env.dst. Thread-safe. Messages to unknown
  /// peers or to self are dropped (counted).
  void send(Envelope env);

  /// Severs every connection to `peer` and discards all frames queued toward
  /// it, plus its reconnect/backoff state — the transport-level half of peer
  /// eviction. Thread-safe, applied asynchronously on the IO thread. A later
  /// send() toward the peer starts from a clean slate (readmission path).
  void drop_peer(ProcessId peer);

  /// Actual listening port (resolves a requested port of 0).
  std::uint16_t port() const { return port_; }

  /// Actual admin endpoint port; 0 when the endpoint is disabled.
  std::uint16_t admin_port() const { return admin_port_; }

  /// Last incarnation announced by `peer` in a hello, or kUnknownIncarnation
  /// when we never heard from it. Thread-safe.
  Incarnation last_known_incarnation(ProcessId peer) const;

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Conn {
    int fd = -1;
    ProcessId peer = kNoProcess;   // kNoProcess until the hello arrives (inbound)
    bool outbound = false;
    bool connecting = false;       // nonblocking connect() in flight
    FrameDecoder decoder;
    std::deque<std::vector<std::byte>> writeq;  // encoded frames
    std::size_t write_off = 0;                  // offset into writeq.front()
  };

  /// Per-peer outbound state: the connection (if any), frames waiting for
  /// one, and the reconnect backoff series.
  struct PeerState {
    Conn* conn = nullptr;
    std::deque<std::vector<std::byte>> pending;  // encoded frames, no conn yet
    std::size_t pending_sheddable = 0;           // CDM/NSS frames among pending
    int attempts = 0;                            // consecutive failed connects
    SimTime next_connect_us = 0;                 // backoff deadline (steady clock)
  };

  /// One admin HTTP connection: buffer the request head, hand it to the
  /// handler, stream the response out, close. Strictly nonblocking; a slow
  /// or malicious client can only stall its own connection.
  struct AdminConn {
    int fd = -1;
    std::string in;            // request bytes until the head parses
    std::string out;           // serialized response
    std::size_t out_off = 0;
    bool responding = false;   // request parsed; draining `out`
  };

  void io_loop();
  void wake();
  SimTime steady_now() const;

  void admin_accept_ready();
  void admin_readable(AdminConn* conn);
  void admin_writable(AdminConn* conn);
  void close_admin(AdminConn* conn);

  void start_connect(ProcessId peer, SimTime now);
  void on_connect_ready(Conn* conn);
  void on_readable(Conn* conn);
  void on_writable(Conn* conn);
  void close_conn(Conn* conn, const char* why);
  void accept_ready();
  void drain_sends();
  void apply_drops();
  void enqueue_frame(PeerState& ps, std::vector<std::byte> frame,
                     std::uint8_t msg_tag);
  void flush_pending_into_conn(ProcessId peer);

  Options opts_;
  Metrics& metrics_;
  DeliverFn deliver_;
  PeerRestartFn peer_restart_;
  ConnectFailedFn connect_failed_;
  obs::AdminHandler admin_handler_;
  Rng rng_;

  int listen_fd_ = -1;
  int admin_listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;
  std::vector<std::unique_ptr<AdminConn>> admin_conns_;  // IO thread only

  std::thread io_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<SimTime> drain_us_{0};

  std::mutex send_mu_;
  std::vector<Envelope> send_inbox_;   // handed to the IO thread via wake()
  std::vector<ProcessId> drop_inbox_;  // peers to sever; guarded by send_mu_

  std::map<ProcessId, PeerState> peer_state_;          // IO thread only
  std::vector<std::unique_ptr<Conn>> conns_;           // IO thread only
  mutable std::mutex inc_mu_;
  std::map<ProcessId, Incarnation> peer_incarnation_;  // guarded by inc_mu_
};

}  // namespace adgc
