#include "src/net/batcher.h"

#include <utility>

#include "src/net/frame.h"

namespace adgc {

namespace {

constexpr std::size_t kBatchHeaderBytes = 5;   // u8 tag + u32 item count
constexpr std::size_t kItemPrefixBytes = 4;    // u32 item length

}  // namespace

bool Batcher::batchable(const MessagePayload& msg) {
  return std::holds_alternative<CdmMsg>(msg) ||
         std::holds_alternative<NewSetStubsMsg>(msg) ||
         std::holds_alternative<AddScionAckMsg>(msg);
}

bool Batcher::offer(ProcessId dst, const MessagePayload& msg) {
  if (!cfg_.batching_enabled) return false;
  if (!batchable(msg)) return false;

  auto it = open_.find(dst);
  if (it == open_.end()) {
    OpenBatch b;
    const std::uint64_t reuses_before = arena_.reuses();
    b.w = ByteWriter(arena_.acquire());
    env_.metrics().arena_acquires.add();
    if (arena_.reuses() > reuses_before) env_.metrics().arena_reuses.add();
    b.w.u8(static_cast<std::uint8_t>(MessageTag::kBatch));
    b.w.u32(0);  // item count, patched at flush
    b.epoch = next_epoch_++;
    it = open_.emplace(dst, std::move(b)).first;
    const std::uint64_t epoch = it->second.epoch;
    env_.schedule(cfg_.batch_flush_us, [this, dst, epoch] {
      auto cur = open_.find(dst);
      if (cur != open_.end() && cur->second.epoch == epoch) {
        flush_peer(dst, FlushReason::kDeadline);
      }
    });
  }

  OpenBatch& b = it->second;
  const std::size_t len_offset = b.w.size();
  b.w.u32(0);  // item length, patched below
  const std::size_t body_start = b.w.size();
  encode_message_into(b.w, msg);
  b.w.patch_u32(len_offset, static_cast<std::uint32_t>(b.w.size() - body_start));
  ++b.count;
  b.has_cdm = b.has_cdm || std::holds_alternative<CdmMsg>(msg);
  env_.metrics().batched_messages.add();

  if (b.count >= cfg_.batch_max_msgs) {
    flush_peer(dst, FlushReason::kCount);
  } else if (b.w.size() >= cfg_.batch_max_bytes) {
    flush_peer(dst, FlushReason::kSize);
  }
  return true;
}

void Batcher::note_reason(FlushReason reason) {
  Metrics& m = env_.metrics();
  switch (reason) {
    case FlushReason::kSize: m.batch_flush_size.add(); break;
    case FlushReason::kCount: m.batch_flush_count.add(); break;
    case FlushReason::kDeadline: m.batch_flush_deadline.add(); break;
    case FlushReason::kPriority: m.batch_flush_priority.add(); break;
    case FlushReason::kBurst: m.batch_flush_burst.add(); break;
    case FlushReason::kDrain: m.batch_flush_drain.add(); break;
  }
}

void Batcher::flush_peer(ProcessId dst, FlushReason reason) {
  auto it = open_.find(dst);
  if (it == open_.end()) return;
  OpenBatch b = std::move(it->second);
  open_.erase(it);
  note_reason(reason);
  env_.metrics().batch_flush_msgs.record(b.count);

  b.w.patch_u32(1, b.count);
  std::vector<std::byte> bytes = b.w.take();
  arena_.note_capacity(bytes.capacity());
  if (b.count == 1) {
    // A lone message gains nothing from batch framing; strip it back to a
    // plain encoded payload (drop batch tag + count + the item's length
    // prefix) so the wire never carries pointless overhead.
    bytes.erase(bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(kBatchHeaderBytes +
                                                            kItemPrefixBytes));
    env_.metrics().batch_singletons.add();
  } else {
    env_.metrics().batches_sent.add();
    // Each coalesced message after the first rides without its own frame
    // header (and Envelope/CRC/write); count the headers as the honest,
    // transport-independent part of the saving.
    env_.metrics().batch_bytes_saved.add(
        static_cast<std::uint64_t>(b.count - 1) * kFrameHeaderSize);
  }
  env_.send_encoded(dst, std::move(bytes));
}

void Batcher::flush_all(FlushReason reason) {
  while (!open_.empty()) {
    flush_peer(open_.begin()->first, reason);
  }
}

void Batcher::flush_cdm_batches(FlushReason reason) {
  for (auto it = open_.begin(); it != open_.end();) {
    const ProcessId dst = it->first;
    const bool has_cdm = it->second.has_cdm;
    ++it;  // flush_peer erases; advance first
    if (has_cdm) flush_peer(dst, reason);
  }
}

void Batcher::discard_peer(ProcessId dst) {
  auto it = open_.find(dst);
  if (it == open_.end()) return;
  arena_.release(it->second.w.take());
  open_.erase(it);
}

}  // namespace adgc
