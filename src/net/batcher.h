// Per-peer coalescing of outbound DGC control messages.
//
// The control plane (CDMs, NewSetStubs, AddScion acks) is many small
// messages, each paying an Envelope, a frame header, a CRC and a write() of
// its own. The Batcher queues these per destination and serializes them
// directly into one contiguous arena-backed buffer (an encoded BatchMsg);
// a flush puts the whole batch on the wire as ONE transport message.
//
// A batch flushes when it reaches `batch_max_msgs` messages or
// `batch_max_bytes` payload bytes, when the oldest queued message has waited
// `batch_flush_us` (a deadline timer armed at batch open), when a
// higher-priority message (invocation, reply, AddScion request) is about to
// be sent to the same peer (preserving relative order on the link), at the
// end of a CDM burst (so batching never adds per-hop detection latency),
// or on drain.
//
// Interaction with the PR 2 degradation layer: shedding runs BEFORE the
// batcher in Process::send, so priorities are unchanged — a shed CDM never
// enters a batch, and batches are never shed (they may carry acks, which
// sit above the shedding line). Incarnation stamps are per-Envelope; a
// batch shares one stamp pair, and the delivery path drops stale envelopes
// whole — exactly the required "batch dropped as a unit" semantics. A
// crash discards open batches with the Process; queued control messages are
// loss-tolerant by protocol design, so nothing is retransmitted from here.
//
// Single-threaded: owned by a Process, used only from its execution context.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/arena.h"
#include "src/common/config.h"
#include "src/net/transport.h"

namespace adgc {

class Batcher {
 public:
  enum class FlushReason {
    kSize,      // batch_max_bytes reached
    kCount,     // batch_max_msgs reached
    kDeadline,  // batch_flush_us timer fired
    kPriority,  // unbatchable message to the same peer is about to go out
    kBurst,     // end of a CDM scan/forward burst
    kDrain,     // shutdown / explicit drain
  };

  Batcher(const ProcessConfig& cfg, Env& env) : cfg_(cfg), env_(env) {}

  /// True for message kinds that may ride in a batch. Invocations and
  /// replies are latency-critical; AddScion requests gate invocation sends
  /// (their retry path tolerates delay but gains nothing from batching —
  /// each retry is a lone message); the baseline collectors are kept on
  /// their own wire behavior so bench comparisons stay honest.
  static bool batchable(const MessagePayload& msg);

  /// Queues `msg` toward `dst` if batching is on and the kind is batchable.
  /// Returns false when the caller must send the message itself (after a
  /// flush_peer(kPriority) — offer() does NOT flush in that case).
  bool offer(ProcessId dst, const MessagePayload& msg);

  /// Sends the open batch toward `dst`, if any.
  void flush_peer(ProcessId dst, FlushReason reason);

  /// Sends every open batch.
  void flush_all(FlushReason reason);

  /// Sends every open batch that carries at least one CDM. Called at the
  /// end of a detection burst: CDMs coalesce within the burst but never
  /// wait out the deadline, so detection latency is unaffected by batching.
  void flush_cdm_batches(FlushReason reason);

  /// Drops the open batch toward a crashed peer. Its messages were all
  /// loss-tolerant control traffic addressed to a dead incarnation; the
  /// runtimes would drop the envelope anyway (stale stamps), this merely
  /// saves the wire bytes. The buffer returns to the arena.
  void discard_peer(ProcessId dst);

  std::size_t open_batches() const { return open_.size(); }
  std::uint32_t queued(ProcessId dst) const {
    auto it = open_.find(dst);
    return it == open_.end() ? 0 : it->second.count;
  }

 private:
  struct OpenBatch {
    ByteWriter w;
    std::uint32_t count = 0;
    bool has_cdm = false;
    /// Identity of this batch for the deadline timer: the timer closure
    /// captures (dst, epoch) and fires only if the SAME batch is still
    /// open — a batch flushed for another reason and reopened later must
    /// not inherit the stale deadline.
    std::uint64_t epoch = 0;
  };

  void note_reason(FlushReason reason);

  const ProcessConfig& cfg_;
  Env& env_;
  BufferArena arena_;
  std::map<ProcessId, OpenBatch> open_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace adgc
