// Wire framing for the TCP transport.
//
// TCP is a byte stream; the ADGC wire protocol is message-oriented. A frame
// is a fixed 32-byte header followed by the payload (an encoded
// MessagePayload for data frames, empty for hello frames):
//
//   offset  size  field
//   0       4     magic 0x43474441 ("ADGC" little-endian)
//   4       2     frame-format version (kFrameVersion)
//   6       2     frame kind (FrameKind)
//   8       4     source ProcessId
//   12      4     destination ProcessId
//   16      4     source incarnation
//   20      4     destination incarnation as known by the sender, or
//                 kUnknownIncarnation when the sender has not yet heard from
//                 the destination in its current lifetime
//   24      4     payload length (bytes; bounded by kMaxFramePayload)
//   28      4     CRC-32 of the payload bytes
//   32      ...   payload
//
// The decoder is incremental (feed whatever recv() produced, pop complete
// frames) and *rejecting*: a bad magic, unsupported version, oversized
// length or CRC mismatch poisons the stream — the only safe response to
// framing desynchronization on a byte stream is to drop the connection and
// let the reconnect path re-establish it. Message-level decode errors
// (payload bytes that are not a valid MessagePayload) are NOT the frame
// layer's business; they surface later in Process::deliver, which already
// tolerates undecodable messages.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/net/message.h"

namespace adgc {

inline constexpr std::uint32_t kFrameMagic = 0x43474441u;  // "ADGC"
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 32;
/// Hard bound on a frame payload. The largest legitimate messages (CDMs over
/// huge algebras, invocations with big marshalled arguments) stay far below
/// this; anything larger is framing corruption or an attack.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Sentinel destination incarnation: "sender does not know yet". Receivers
/// accept such frames against any local incarnation (the payload protocols
/// are all loss- and stale-tolerant; the handshake converges immediately
/// after the first hello exchange).
inline constexpr Incarnation kUnknownIncarnation = ~Incarnation{0};

enum class FrameKind : std::uint16_t {
  /// Connection greeting: announces (src pid, src incarnation). First frame
  /// on every freshly established connection, in both directions. Empty
  /// payload.
  kHello = 1,
  /// One Envelope: the payload is the encoded MessagePayload.
  kData = 2,
  /// One Envelope whose payload is an encoded BatchMsg: several coalesced
  /// control messages sharing this frame's header and CRC. The decoder
  /// additionally walks the nested length structure up front, so a frame
  /// that passed the CRC but has inconsistent inner lengths still poisons
  /// the stream instead of surfacing garbage item slices downstream.
  kBatch = 3,
};

/// A decoded frame header plus its payload.
struct Frame {
  FrameKind kind = FrameKind::kData;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  Incarnation src_inc = 0;
  Incarnation dst_inc = kUnknownIncarnation;
  std::vector<std::byte> payload;
};

/// Serializes a frame (header + payload + CRC).
std::vector<std::byte> encode_frame(const Frame& frame);

/// Convenience: wraps an Envelope as a data frame.
std::vector<std::byte> encode_data_frame(const Envelope& env);

/// Convenience: a hello frame for (pid, incarnation).
std::vector<std::byte> encode_hello_frame(ProcessId self, Incarnation inc);

/// Incremental frame decoder over a TCP byte stream.
class FrameDecoder {
 public:
  enum class Error {
    kNone = 0,
    kBadMagic,
    kBadVersion,
    kBadKind,
    kOversized,
    kBadCrc,
    kBadBatch,
  };

  /// Appends raw bytes from the stream.
  void feed(std::span<const std::byte> bytes);

  /// Pops the next complete frame, or nullopt when more bytes are needed or
  /// the stream is poisoned. After an error, next() never yields again.
  std::optional<Frame> next();

  Error error() const { return error_; }
  bool failed() const { return error_ != Error::kNone; }
  /// Human-readable description of the failure ("" when healthy).
  std::string error_detail() const;

  /// Bytes buffered but not yet consumed (diagnostics / backpressure).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::byte> buf_;
  std::size_t consumed_ = 0;
  Error error_ = Error::kNone;
};

/// Peeks the message type tag of an encoded MessagePayload without decoding
/// it (first byte of the codec's output). Returns 0 for an empty buffer.
/// The TCP write queue uses this for priority shedding without paying a full
/// decode per queued message.
std::uint8_t peek_message_tag(std::span<const std::byte> payload);

/// True when the encoded payload is a CDM / NewSetStubs message — the two
/// sheddable kinds under the PR 2 priority rules.
bool is_cdm_payload(std::span<const std::byte> payload);
bool is_new_set_stubs_payload(std::span<const std::byte> payload);

/// True when the encoded payload is a coalesced batch. Batch frames are
/// never shed by the TCP write queue: a batch may carry AddScion acks,
/// which sit above the shedding line.
bool is_batch_payload(std::span<const std::byte> payload);

/// Structural check of an encoded BatchMsg: batch tag, item count, and
/// nested item lengths must tile the payload exactly, with no empty and no
/// nested-batch items. Used by the frame decoder on kBatch frames and by
/// the fuzz harness; message-level item decoding still happens later in
/// Process::deliver.
bool validate_batch_payload(std::span<const std::byte> payload);

}  // namespace adgc
