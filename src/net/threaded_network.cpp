#include "src/net/threaded_network.h"

#include <chrono>

namespace adgc {

ThreadedNetwork::ThreadedNetwork(std::size_t num_processes, NetworkConfig cfg,
                                 std::uint64_t seed, Metrics* metrics)
    : cfg_(cfg), metrics_(metrics), rng_(seed) {
  boxes_.reserve(num_processes);
  peers_.reserve(num_processes);
  for (std::size_t i = 0; i < num_processes; ++i) {
    boxes_.push_back(std::make_unique<Box>());
    peers_.push_back(std::make_unique<PeerState>());
  }
}

void ThreadedNetwork::set_down(ProcessId pid, bool down) {
  peers_.at(pid)->down.store(down, std::memory_order_release);
}

bool ThreadedNetwork::is_down(ProcessId pid) const {
  return peers_.at(pid)->down.load(std::memory_order_acquire);
}

Incarnation ThreadedNetwork::bump_incarnation(ProcessId pid) {
  return peers_.at(pid)->inc.fetch_add(1, std::memory_order_acq_rel) + 1;
}

Incarnation ThreadedNetwork::incarnation(ProcessId pid) const {
  return peers_.at(pid)->inc.load(std::memory_order_acquire);
}

void ThreadedNetwork::set_link_blocked(ProcessId a, ProcessId b, bool blocked) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  if (blocked) {
    blocked_.insert({a, b});
  } else {
    blocked_.erase({a, b});
  }
}

bool ThreadedNetwork::link_blocked(ProcessId a, ProcessId b) const {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return blocked_.contains({a, b});
}

void ThreadedNetwork::set_loss_probability(double p) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  cfg_.loss_probability = p;
}

void ThreadedNetwork::set_duplicate_probability(double p) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  cfg_.duplicate_probability = p;
}

void ThreadedNetwork::enqueue(ProcessId pid, WorkItem item) {
  Box& box = *boxes_.at(pid);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.q.push_back(std::move(item));
  }
  box.cv.notify_one();
}

void ThreadedNetwork::send(Envelope env) {
  env.src_inc = incarnation(env.src);
  env.dst_inc = incarnation(env.dst);
  if (metrics_) {
    metrics_->messages_sent.add();
    metrics_->bytes_sent.add(env.bytes.size());
  }
  if (is_down(env.dst)) {
    if (metrics_) metrics_->messages_dropped_crashed.add();
    return;
  }
  bool lost = false;
  bool dup = false;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    // A blocked link drops everything: a partition IS sustained omission.
    lost = blocked_.contains({env.src, env.dst}) || rng_.chance(cfg_.loss_probability);
    if (!lost) dup = rng_.chance(cfg_.duplicate_probability);
  }
  if (lost) {
    if (metrics_) metrics_->messages_lost.add();
    return;
  }
  const ProcessId dst = env.dst;
  if (dup) {
    if (metrics_) metrics_->messages_duplicated.add();
    enqueue(dst, env);  // copy
  }
  enqueue(dst, std::move(env));
}

void ThreadedNetwork::post(ProcessId pid, std::function<void()> fn) {
  enqueue(pid, std::move(fn));
}

std::optional<WorkItem> ThreadedNetwork::poll(ProcessId pid, SimTime wait_us) {
  Box& box = *boxes_.at(pid);
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait_for(lock, std::chrono::microseconds(wait_us),
                  [&] { return !box.q.empty() || shutdown_.load(); });
  if (box.q.empty()) return std::nullopt;
  WorkItem item = std::move(box.q.front());
  box.q.pop_front();
  return item;
}

void ThreadedNetwork::shutdown() {
  shutdown_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

bool ThreadedNetwork::shut_down() const { return shutdown_.load(); }

}  // namespace adgc
