// Wire protocol of the distributed runtime.
//
// Every inter-process interaction is one of the payload structs below,
// wrapped in an Envelope. Payloads are always round-tripped through the
// binary codec (encode at send, decode at delivery) so byte counts are real
// and codec bugs cannot hide behind in-memory shortcuts.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ids.h"

namespace adgc {

/// A reference being exported inside an invocation: the exporter has already
/// secured a scion for `ref` at `target.owner` (scion-first handshake), so
/// the importer may install a stub immediately.
struct ExportedRef {
  RefId ref = kNoRef;
  ObjectId target;

  friend bool operator==(const ExportedRef&, const ExportedRef&) = default;
};

/// What a remote invocation does at the callee. Real systems run arbitrary
/// code; the reproduction needs only the reachability-relevant effects.
enum class InvokeEffect : std::uint8_t {
  kTouch = 0,      // plain call: bumps invocation counters, nothing else
  kPinRoot = 1,    // callee adds the invoked object to its local roots
  kUnpinRoot = 2,  // callee removes the invoked object from its local roots
  kStoreArgs = 3,  // callee stores the exported arg references in the object
  kDropFields = 4, // callee clears the invoked object's outgoing references
};

/// Remote method invocation through the remote reference `ref`.
struct InvokeMsg {
  RefId ref = kNoRef;     // reference invoked through (stub at caller)
  std::uint64_t ic = 0;   // piggy-backed invocation counter (post-increment)
  ObjectId target;        // invoked object (the proxy's endpoint id)
  ObjectId caller;        // invoking object (diagnostics)
  InvokeEffect effect = InvokeEffect::kTouch;
  std::vector<ExportedRef> args;
  /// Marshalled by-value argument data (what real remoting spends most of
  /// its wire bytes on); opaque to the runtime.
  std::vector<std::byte> payload;
  bool want_reply = true;
  std::uint64_t call_id = 0;

  friend bool operator==(const InvokeMsg&, const InvokeMsg&) = default;
};

/// Reply to an invocation; also bumps the reference's invocation counters.
struct ReplyMsg {
  RefId ref = kNoRef;
  std::uint64_t ic = 0;
  std::uint64_t call_id = 0;

  friend bool operator==(const ReplyMsg&, const ReplyMsg&) = default;
};

/// Reference-listing message: the complete set of live stubs the sender
/// holds toward the receiver, stamped with the sender's export sequence so
/// references exported after the sender's LGC ran are not collected.
struct NewSetStubsMsg {
  std::uint64_t export_seq = 0;
  std::vector<RefId> live;

  friend bool operator==(const NewSetStubsMsg&, const NewSetStubsMsg&) = default;
};

/// Scion-first handshake: ask the owner of `target` to create a scion for a
/// reference about to be handed to `holder`. Idempotent; retried until acked.
struct AddScionMsg {
  RefId ref = kNoRef;
  ObjectSeq target_seq = kNoObject;
  ProcessId holder = kNoProcess;
  std::uint64_t handshake = 0;

  friend bool operator==(const AddScionMsg&, const AddScionMsg&) = default;
};

struct AddScionAckMsg {
  RefId ref = kNoRef;
  std::uint64_t handshake = 0;

  friend bool operator==(const AddScionAckMsg&, const AddScionAckMsg&) = default;
};

/// One element of a CDM algebra set: a remote reference plus the invocation
/// counter it had in the snapshot that contributed it.
struct AlgebraElem {
  RefId ref = kNoRef;
  std::uint64_t ic = 0;

  friend bool operator==(const AlgebraElem&, const AlgebraElem&) = default;
  friend auto operator<=>(const AlgebraElem&, const AlgebraElem&) = default;
};

/// Cycle Detection Message. `via` is the reference whose stub the CDM was
/// forwarded along; delivery is to the scion of the same RefId.
struct CdmMsg {
  DetectionId detection;
  RefId candidate = kNoRef;   // candidate scion at the initiator
  RefId via = kNoRef;
  std::uint64_t via_ic = 0;   // the stub's IC in the sender's snapshot
  std::uint32_t hops = 0;
  std::vector<AlgebraElem> source;  // dependencies (scions), sorted by ref
  std::vector<AlgebraElem> target;  // traversed stubs, sorted by ref

  friend bool operator==(const CdmMsg&, const CdmMsg&) = default;
};

/// Baseline (Maheshwari-Liskov style) distributed back-tracing request:
/// "is the object behind scion `scion_ref` reachable, other than through the
/// path already visited?". Synchronous chains of these model the related
/// work's remote-procedure-call recursion.
struct BacktraceRequestMsg {
  std::uint64_t trace_id = 0;
  std::uint64_t req_id = 0;     // allocated by the requester; echoed in reply
  RefId subject_ref = kNoRef;   // stub at the receiver to examine
  std::vector<RefId> visited;   // references already on the back-trace path
  std::uint32_t depth = 0;

  friend bool operator==(const BacktraceRequestMsg&, const BacktraceRequestMsg&) = default;
};

struct BacktraceReplyMsg {
  std::uint64_t trace_id = 0;
  std::uint64_t req_id = 0;
  bool reachable = false;  // some local root reaches the subject

  friend bool operator==(const BacktraceReplyMsg&, const BacktraceReplyMsg&) = default;
};

// --- Global-trace baseline (Lang/Queinnec/Piquer-style "GC the world") ---
// A coordinator starts synchronized epochs; marks propagate along remote
// references; a counting-based termination detection (sent == processed,
// stable across two polls) ends the epoch; unmarked scions are collected.
// The whole point of carrying this baseline: it needs EVERY process to
// participate and synchronize — the cost the paper's DCDA avoids.

struct GtStartMsg {
  std::uint64_t epoch = 0;
  std::uint64_t epoch_start = 0;  // coordinator clock (SimTime)

  friend bool operator==(const GtStartMsg&, const GtStartMsg&) = default;
};

/// Mark request: "the object behind scion `ref` is globally reachable".
struct GtMarkMsg {
  std::uint64_t epoch = 0;
  RefId ref = kNoRef;

  friend bool operator==(const GtMarkMsg&, const GtMarkMsg&) = default;
};

struct GtPollMsg {
  std::uint64_t epoch = 0;
  std::uint64_t poll_seq = 0;

  friend bool operator==(const GtPollMsg&, const GtPollMsg&) = default;
};

struct GtStatusMsg {
  std::uint64_t epoch = 0;
  std::uint64_t poll_seq = 0;
  std::uint64_t marks_sent = 0;
  std::uint64_t marks_processed = 0;

  friend bool operator==(const GtStatusMsg&, const GtStatusMsg&) = default;
};

struct GtFinishMsg {
  std::uint64_t epoch = 0;

  friend bool operator==(const GtFinishMsg&, const GtFinishMsg&) = default;
};

/// A coalesced per-peer batch of control messages (CDMs, NewSetStubs,
/// AddScion acks). Items are complete encoded MessagePayloads, each carried
/// behind a u32 length prefix; a batch may never contain another batch.
/// The whole batch shares one Envelope — one incarnation stamp pair, one
/// frame header, one CRC, one write() — and is applied or dropped as a unit:
/// any undecodable item poisons the entire batch (see decode_batch_items).
struct BatchMsg {
  std::vector<std::vector<std::byte>> items;

  friend bool operator==(const BatchMsg&, const BatchMsg&) = default;
};

/// Permanent-failure rejection: the receiver has committed the sender's
/// `evicted_incarnation` dead (eviction tombstone) and refuses its traffic.
/// The only valid reaction is to stop and restart under a fresh incarnation,
/// re-exporting references through the normal AddScion handshake — which is
/// exactly the crash/restart path the system already tolerates, so a false
/// eviction (partition misdiagnosed as death) degrades to a forced restart,
/// never to a dangling reference. A NACK is never answered with a NACK.
struct EvictedNackMsg {
  Incarnation evicted_incarnation = 0;

  friend bool operator==(const EvictedNackMsg&, const EvictedNackMsg&) = default;
};

/// Lease probe from an owner to a scion holder that has been silent past
/// `peer_death_timeout`: "send me your NewSetStubs now". A live holder
/// answers unconditionally — an empty set is the answer that lets the owner
/// expire scions the holder no longer (or never) backs, e.g. after the
/// holder restarted from a snapshot predating the stub. A dead holder
/// leaves the solicit unanswered, which feeds the suspicion escalation
/// toward eviction. Either way scions only ever die through a holder-
/// asserted NewSetStubs or a committed eviction — never on silence alone.
struct NssSolicitMsg {
  friend bool operator==(const NssSolicitMsg&, const NssSolicitMsg&) = default;
};

using MessagePayload =
    std::variant<InvokeMsg, ReplyMsg, NewSetStubsMsg, AddScionMsg, AddScionAckMsg,
                 CdmMsg, BacktraceRequestMsg, BacktraceReplyMsg, GtStartMsg, GtMarkMsg,
                 GtPollMsg, GtStatusMsg, GtFinishMsg, BatchMsg, EvictedNackMsg,
                 NssSolicitMsg>;

/// On-wire type tag: the first byte of encode_message() output. Exposed so
/// transport-level code (the TCP write queue's priority shedding) can
/// classify an already-encoded message without paying a full decode.
enum class MessageTag : std::uint8_t {
  kInvoke = 1,
  kReply = 2,
  kNewSetStubs = 3,
  kAddScion = 4,
  kAddScionAck = 5,
  kCdm = 6,
  kBacktraceRequest = 7,
  kBacktraceReply = 8,
  kGtStart = 9,
  kGtMark = 10,
  kGtPoll = 11,
  kGtStatus = 12,
  kGtFinish = 13,
  kBatch = 14,
  kEvictedNack = 15,
  kNssSolicit = 16,
};

/// A message in flight.
///
/// Incarnation stamps implement the crash/restart fault model: `src_inc` is
/// the sender's incarnation at send time, `dst_inc` the sender's view (from
/// the runtime's membership table) of the destination's incarnation. The
/// delivery path drops any envelope whose stamps no longer match the current
/// incarnations — a message from a dead incarnation reflects state that was
/// rolled back by the restart and must not be applied; one addressed to a
/// dead incarnation may reference identifiers the restarted process never
/// knew. Dropping is always safe: the protocols are message-loss tolerant.
struct Envelope {
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  Incarnation src_inc = 0;
  Incarnation dst_inc = 0;
  std::vector<std::byte> bytes;  // encoded MessagePayload
};

/// Encodes a payload (type tag + body).
std::vector<std::byte> encode_message(const MessagePayload& m);

/// Appends the encoding of `m` to an existing writer. The batch encoder uses
/// this to serialize message bodies directly into one contiguous arena
/// buffer instead of paying one allocation per queued message.
void encode_message_into(ByteWriter& w, const MessagePayload& m);

/// Decodes; throws DecodeError on malformed input.
MessagePayload decode_message(std::span<const std::byte> bytes);

/// Decodes every item of a batch. Throws DecodeError if ANY item is
/// malformed or is itself a batch — the receiver must then drop the whole
/// batch (batch-level poisoning: a batch is applied as a unit or not at
/// all, so a corrupt slice can never apply a prefix of its messages).
std::vector<MessagePayload> decode_batch_items(const BatchMsg& batch);

/// Short human-readable tag for logging ("Invoke", "Cdm", ...).
const char* message_kind(const MessagePayload& m);

}  // namespace adgc
