#include "src/net/message.h"

namespace adgc {

namespace {

// The canonical tag values live in message.h (MessageTag) so the transport
// can peek them; this alias keeps the codec bodies unchanged.
using Tag = MessageTag;

void put_refs(ByteWriter& w, const std::vector<RefId>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (RefId r : v) w.u64(r);
}

std::vector<RefId> get_refs(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 8) throw DecodeError("ref vector length too large");
  std::vector<RefId> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

void put_elems(ByteWriter& w, const std::vector<AlgebraElem>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) {
    w.u64(e.ref);
    w.u64(e.ic);
  }
}

std::vector<AlgebraElem> get_elems(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 16) throw DecodeError("algebra vector length too large");
  std::vector<AlgebraElem> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    AlgebraElem e;
    e.ref = r.u64();
    e.ic = r.u64();
    v.push_back(e);
  }
  return v;
}

struct Encoder {
  ByteWriter& w;

  void operator()(const InvokeMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInvoke));
    w.u64(m.ref);
    w.u64(m.ic);
    w.object_id(m.target);
    w.object_id(m.caller);
    w.u8(static_cast<std::uint8_t>(m.effect));
    w.u32(static_cast<std::uint32_t>(m.args.size()));
    for (const auto& a : m.args) {
      w.u64(a.ref);
      w.object_id(a.target);
    }
    w.bytes(m.payload);
    w.boolean(m.want_reply);
    w.u64(m.call_id);
  }

  void operator()(const ReplyMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kReply));
    w.u64(m.ref);
    w.u64(m.ic);
    w.u64(m.call_id);
  }

  void operator()(const NewSetStubsMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kNewSetStubs));
    w.u64(m.export_seq);
    put_refs(w, m.live);
  }

  void operator()(const AddScionMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAddScion));
    w.u64(m.ref);
    w.u64(m.target_seq);
    w.u32(m.holder);
    w.u64(m.handshake);
  }

  void operator()(const AddScionAckMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAddScionAck));
    w.u64(m.ref);
    w.u64(m.handshake);
  }

  void operator()(const CdmMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kCdm));
    w.detection_id(m.detection);
    w.u64(m.candidate);
    w.u64(m.via);
    w.u64(m.via_ic);
    w.u32(m.hops);
    put_elems(w, m.source);
    put_elems(w, m.target);
  }

  void operator()(const BacktraceRequestMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kBacktraceRequest));
    w.u64(m.trace_id);
    w.u64(m.req_id);
    w.u64(m.subject_ref);
    put_refs(w, m.visited);
    w.u32(m.depth);
  }

  void operator()(const BacktraceReplyMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kBacktraceReply));
    w.u64(m.trace_id);
    w.u64(m.req_id);
    w.boolean(m.reachable);
  }

  void operator()(const GtStartMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGtStart));
    w.u64(m.epoch);
    w.u64(m.epoch_start);
  }

  void operator()(const GtMarkMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGtMark));
    w.u64(m.epoch);
    w.u64(m.ref);
  }

  void operator()(const GtPollMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGtPoll));
    w.u64(m.epoch);
    w.u64(m.poll_seq);
  }

  void operator()(const GtStatusMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGtStatus));
    w.u64(m.epoch);
    w.u64(m.poll_seq);
    w.u64(m.marks_sent);
    w.u64(m.marks_processed);
  }

  void operator()(const GtFinishMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGtFinish));
    w.u64(m.epoch);
  }

  void operator()(const BatchMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kBatch));
    w.u32(static_cast<std::uint32_t>(m.items.size()));
    for (const auto& item : m.items) {
      w.u32(static_cast<std::uint32_t>(item.size()));
      w.raw(item.data(), item.size());
    }
  }

  void operator()(const EvictedNackMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kEvictedNack));
    w.u32(m.evicted_incarnation);
  }

  void operator()(const NssSolicitMsg&) {
    w.u8(static_cast<std::uint8_t>(Tag::kNssSolicit));
  }
};

}  // namespace

std::vector<std::byte> encode_message(const MessagePayload& m) {
  ByteWriter w;
  std::visit(Encoder{w}, m);
  return w.take();
}

void encode_message_into(ByteWriter& w, const MessagePayload& m) {
  std::visit(Encoder{w}, m);
}

MessagePayload decode_message(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const auto tag = static_cast<Tag>(r.u8());
  switch (tag) {
    case Tag::kInvoke: {
      InvokeMsg m;
      m.ref = r.u64();
      m.ic = r.u64();
      m.target = r.object_id();
      m.caller = r.object_id();
      m.effect = static_cast<InvokeEffect>(r.u8());
      if (static_cast<std::uint8_t>(m.effect) > 4) throw DecodeError("bad invoke effect");
      const std::uint32_t n = r.u32();
      if (n > r.remaining() / 20) throw DecodeError("arg vector length too large");
      m.args.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ExportedRef a;
        a.ref = r.u64();
        a.target = r.object_id();
        m.args.push_back(a);
      }
      m.payload = r.bytes();
      m.want_reply = r.boolean();
      m.call_id = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kReply: {
      ReplyMsg m;
      m.ref = r.u64();
      m.ic = r.u64();
      m.call_id = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kNewSetStubs: {
      NewSetStubsMsg m;
      m.export_seq = r.u64();
      m.live = get_refs(r);
      r.expect_done();
      return m;
    }
    case Tag::kAddScion: {
      AddScionMsg m;
      m.ref = r.u64();
      m.target_seq = r.u64();
      m.holder = r.u32();
      m.handshake = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kAddScionAck: {
      AddScionAckMsg m;
      m.ref = r.u64();
      m.handshake = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kCdm: {
      CdmMsg m;
      m.detection = r.detection_id();
      m.candidate = r.u64();
      m.via = r.u64();
      m.via_ic = r.u64();
      m.hops = r.u32();
      m.source = get_elems(r);
      m.target = get_elems(r);
      r.expect_done();
      return m;
    }
    case Tag::kBacktraceRequest: {
      BacktraceRequestMsg m;
      m.trace_id = r.u64();
      m.req_id = r.u64();
      m.subject_ref = r.u64();
      m.visited = get_refs(r);
      m.depth = r.u32();
      r.expect_done();
      return m;
    }
    case Tag::kBacktraceReply: {
      BacktraceReplyMsg m;
      m.trace_id = r.u64();
      m.req_id = r.u64();
      m.reachable = r.boolean();
      r.expect_done();
      return m;
    }
    case Tag::kGtStart: {
      GtStartMsg m;
      m.epoch = r.u64();
      m.epoch_start = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kGtMark: {
      GtMarkMsg m;
      m.epoch = r.u64();
      m.ref = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kGtPoll: {
      GtPollMsg m;
      m.epoch = r.u64();
      m.poll_seq = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kGtStatus: {
      GtStatusMsg m;
      m.epoch = r.u64();
      m.poll_seq = r.u64();
      m.marks_sent = r.u64();
      m.marks_processed = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kGtFinish: {
      GtFinishMsg m;
      m.epoch = r.u64();
      r.expect_done();
      return m;
    }
    case Tag::kBatch: {
      BatchMsg m;
      const std::uint32_t n = r.u32();
      if (n == 0) throw DecodeError("empty batch");
      // Each item costs at least its 4-byte length prefix plus a 1-byte tag.
      if (n > r.remaining() / 5) throw DecodeError("batch item count too large");
      m.items.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t len = r.u32();
        if (len == 0) throw DecodeError("empty batch item");
        if (len > r.remaining()) throw DecodeError("batch item length truncated");
        std::vector<std::byte> item = r.raw(len);
        if (item[0] == static_cast<std::byte>(Tag::kBatch)) {
          throw DecodeError("nested batch");
        }
        m.items.push_back(std::move(item));
      }
      r.expect_done();
      return m;
    }
    case Tag::kEvictedNack: {
      EvictedNackMsg m;
      m.evicted_incarnation = r.u32();
      r.expect_done();
      return m;
    }
    case Tag::kNssSolicit: {
      NssSolicitMsg m;
      r.expect_done();
      return m;
    }
  }
  throw DecodeError("unknown message tag");
}

std::vector<MessagePayload> decode_batch_items(const BatchMsg& batch) {
  std::vector<MessagePayload> out;
  out.reserve(batch.items.size());
  for (const auto& item : batch.items) {
    MessagePayload m = decode_message(item);
    if (std::holds_alternative<BatchMsg>(m)) throw DecodeError("nested batch");
    out.push_back(std::move(m));
  }
  return out;
}

const char* message_kind(const MessagePayload& m) {
  struct Kind {
    const char* operator()(const InvokeMsg&) const { return "Invoke"; }
    const char* operator()(const ReplyMsg&) const { return "Reply"; }
    const char* operator()(const NewSetStubsMsg&) const { return "NewSetStubs"; }
    const char* operator()(const AddScionMsg&) const { return "AddScion"; }
    const char* operator()(const AddScionAckMsg&) const { return "AddScionAck"; }
    const char* operator()(const CdmMsg&) const { return "Cdm"; }
    const char* operator()(const BacktraceRequestMsg&) const { return "BacktraceReq"; }
    const char* operator()(const BacktraceReplyMsg&) const { return "BacktraceRep"; }
    const char* operator()(const GtStartMsg&) const { return "GtStart"; }
    const char* operator()(const GtMarkMsg&) const { return "GtMark"; }
    const char* operator()(const GtPollMsg&) const { return "GtPoll"; }
    const char* operator()(const GtStatusMsg&) const { return "GtStatus"; }
    const char* operator()(const GtFinishMsg&) const { return "GtFinish"; }
    const char* operator()(const BatchMsg&) const { return "Batch"; }
    const char* operator()(const EvictedNackMsg&) const { return "EvictedNack"; }
    const char* operator()(const NssSolicitMsg&) const { return "NssSolicit"; }
  };
  return std::visit(Kind{}, m);
}

}  // namespace adgc
