#include "src/net/peer_health.h"

#include <algorithm>

namespace adgc {

SimTime backoff_delay(SimTime base_us, SimTime cap_us, int attempt, Rng& rng) {
  if (base_us == 0) base_us = 1;
  SimTime d = base_us;
  for (int i = 0; i < attempt && d < cap_us; ++i) d <<= 1;
  d = std::min(d, std::max<SimTime>(cap_us, 1));
  // Equal jitter: [d/2, d). Always at least 1us so schedule() makes progress.
  const SimTime half = std::max<SimTime>(d / 2, 1);
  return half + rng.below(std::max<SimTime>(d - half, 1));
}

void PeerHealthTracker::on_send(ProcessId peer, SimTime now) {
  Peer& p = slot(peer);
  if (p.outstanding == 0) p.window_start = now;
  if (p.outstanding < ~std::uint32_t{0}) ++p.outstanding;
  p.last_activity = now;
}

void PeerHealthTracker::on_heard(ProcessId peer, SimTime now) {
  Peer& p = slot(peer);
  p.last_heard = now;
  p.consecutive_failures = 0;
  p.outstanding = 0;
  p.window_start = 0;
  p.last_activity = now;
  // Any sign of life clears the sticky flag immediately: a recovered peer
  // must leave the suspected count (and restart its death-timeout clock)
  // even if nobody queries its verdict again.
  p.suspected = false;
  p.suspected_since = 0;
}

void PeerHealthTracker::on_response(ProcessId peer, SimTime rtt_us, SimTime now) {
  Peer& p = slot(peer);
  const double sample = static_cast<double>(rtt_us);
  if (p.srtt_us <= 0.0) {
    p.srtt_us = sample;
  } else {
    const double a = std::clamp(cfg_.health_ewma_alpha, 0.0, 1.0);
    p.srtt_us = a * sample + (1.0 - a) * p.srtt_us;
  }
  p.last_heard = now;
  p.consecutive_failures = 0;
  p.outstanding = 0;
  p.window_start = 0;
  p.last_activity = now;
  p.suspected = false;
  p.suspected_since = 0;
}

void PeerHealthTracker::on_timeout(ProcessId peer, SimTime now) {
  Peer& p = slot(peer);
  if (p.consecutive_failures < ~std::uint32_t{0}) ++p.consecutive_failures;
  p.last_activity = now;
}

bool PeerHealthTracker::compute_suspected(const Peer& p, SimTime now) const {
  if (p.consecutive_failures >= cfg_.suspect_after_failures) return true;
  // Accrual half: only while we are actively trying to reach the peer, and
  // only once the peer has been heard from at least once — phi over an RTT
  // we never observed is noise, and treating every cold peer as suspect
  // measurably delays collection (the failure-count half above covers peers
  // that are down from the start, via explicit retry timeouts). Silence is
  // measured from when the current unanswered window opened (the first send
  // after the peer was last heard), never across idle gaps.
  if (p.outstanding == 0) return false;
  if (p.last_heard == 0) return false;
  const SimTime baseline = std::max(p.last_heard, p.window_start);
  if (baseline == 0 || now <= baseline) return false;
  const double floor_us = static_cast<double>(std::max<SimTime>(cfg_.suspect_rtt_floor_us, 1));
  const double srtt = std::max(p.srtt_us, floor_us);
  const double silence = static_cast<double>(now - baseline);
  return silence > cfg_.suspect_phi * srtt;
}

bool PeerHealthTracker::suspected(ProcessId peer, SimTime now) {
  Peer& p = slot(peer);
  const bool s = compute_suspected(p, now);
  if (s && !p.suspected) {
    metrics_.peer_suspect_transitions.add();
    p.suspected_since = now;  // rising edge: the sustained-suspicion clock
  } else if (!s) {
    p.suspected_since = 0;
  }
  p.suspected = s;
  return s;
}

double PeerHealthTracker::phi(ProcessId peer, SimTime now) const {
  const Peer* p = find(peer);
  if (!p || p->outstanding == 0 || p->last_heard == 0) return 0.0;
  const SimTime baseline = std::max(p->last_heard, p->window_start);
  if (baseline == 0 || now <= baseline) return 0.0;
  const double floor_us = static_cast<double>(std::max<SimTime>(cfg_.suspect_rtt_floor_us, 1));
  const double srtt = std::max(p->srtt_us, floor_us);
  return static_cast<double>(now - baseline) / srtt;
}

double PeerHealthTracker::srtt_us(ProcessId peer) const {
  const Peer* p = find(peer);
  return p ? p->srtt_us : 0.0;
}

std::uint32_t PeerHealthTracker::outstanding(ProcessId peer) const {
  const Peer* p = find(peer);
  return p ? p->outstanding : 0;
}

std::uint32_t PeerHealthTracker::consecutive_failures(ProcessId peer) const {
  const Peer* p = find(peer);
  return p ? p->consecutive_failures : 0;
}

std::size_t PeerHealthTracker::suspected_count() const {
  std::size_t n = 0;
  for (const auto& [pid, p] : peers_) {
    (void)pid;
    if (p.suspected) ++n;
  }
  return n;
}

SimTime PeerHealthTracker::suspected_since(ProcessId peer) const {
  const Peer* p = find(peer);
  return p ? p->suspected_since : 0;
}

SimTime PeerHealthTracker::last_heard(ProcessId peer) const {
  const Peer* p = find(peer);
  return p ? p->last_heard : 0;
}

std::set<ProcessId> PeerHealthTracker::known_peers() const {
  std::set<ProcessId> out;
  for (const auto& [pid, p] : peers_) {
    (void)p;
    out.insert(pid);
  }
  return out;
}

void PeerHealthTracker::erase_peer(ProcessId peer) { peers_.erase(peer); }

std::size_t PeerHealthTracker::prune_idle(SimTime now, SimTime idle_us) {
  std::size_t pruned = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    const Peer& p = it->second;
    if (!p.suspected && now >= p.last_activity && now - p.last_activity >= idle_us) {
      it = peers_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

void PeerHealthTracker::record_eviction(ProcessId peer, Incarnation incarnation) {
  auto [it, fresh] = tombstones_.try_emplace(peer, incarnation);
  if (!fresh && incarnation > it->second) it->second = incarnation;
}

std::optional<Incarnation> PeerHealthTracker::evicted_incarnation(ProcessId peer) const {
  auto it = tombstones_.find(peer);
  if (it == tombstones_.end()) return std::nullopt;
  return it->second;
}

void PeerHealthTracker::clear_tombstone(ProcessId peer) { tombstones_.erase(peer); }

}  // namespace adgc
