#include "src/net/frame.h"

#include <cstring>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace adgc {

namespace {

std::uint32_t load_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint16_t load_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(const Frame& frame) {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u16(kFrameVersion);
  w.u16(static_cast<std::uint16_t>(frame.kind));
  w.u32(frame.src);
  w.u32(frame.dst);
  w.u32(frame.src_inc);
  w.u32(frame.dst_inc);
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u32(crc32(frame.payload));
  w.raw(frame.payload.data(), frame.payload.size());
  return w.take();
}

std::vector<std::byte> encode_data_frame(const Envelope& env) {
  Frame f;
  f.kind = is_batch_payload(env.bytes) ? FrameKind::kBatch : FrameKind::kData;
  f.src = env.src;
  f.dst = env.dst;
  f.src_inc = env.src_inc;
  f.dst_inc = env.dst_inc;
  f.payload = env.bytes;
  return encode_frame(f);
}

std::vector<std::byte> encode_hello_frame(ProcessId self, Incarnation inc) {
  Frame f;
  f.kind = FrameKind::kHello;
  f.src = self;
  f.dst = kNoProcess;
  f.src_inc = inc;
  f.dst_inc = kUnknownIncarnation;
  return encode_frame(f);
}

void FrameDecoder::feed(std::span<const std::byte> bytes) {
  if (failed() || bytes.empty()) return;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::compact() {
  // Drop consumed prefix once it dominates the buffer; amortized O(1).
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<Frame> FrameDecoder::next() {
  if (failed()) return std::nullopt;
  if (buf_.size() - consumed_ < kFrameHeaderSize) return std::nullopt;
  const std::byte* h = buf_.data() + consumed_;

  if (load_u32(h + 0) != kFrameMagic) {
    error_ = Error::kBadMagic;
    return std::nullopt;
  }
  if (load_u16(h + 4) != kFrameVersion) {
    error_ = Error::kBadVersion;
    return std::nullopt;
  }
  const std::uint16_t kind = load_u16(h + 6);
  if (kind != static_cast<std::uint16_t>(FrameKind::kHello) &&
      kind != static_cast<std::uint16_t>(FrameKind::kData) &&
      kind != static_cast<std::uint16_t>(FrameKind::kBatch)) {
    error_ = Error::kBadKind;
    return std::nullopt;
  }
  const std::uint32_t len = load_u32(h + 24);
  if (len > kMaxFramePayload) {
    error_ = Error::kOversized;
    return std::nullopt;
  }
  if (buf_.size() - consumed_ < kFrameHeaderSize + len) return std::nullopt;

  Frame f;
  f.kind = static_cast<FrameKind>(kind);
  f.src = load_u32(h + 8);
  f.dst = load_u32(h + 12);
  f.src_inc = load_u32(h + 16);
  f.dst_inc = load_u32(h + 20);
  f.payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + len);
  if (crc32(f.payload) != load_u32(h + 28)) {
    error_ = Error::kBadCrc;
    return std::nullopt;
  }
  if (f.kind == FrameKind::kBatch && !validate_batch_payload(f.payload)) {
    // The CRC matched but the nested lengths do not tile the payload: the
    // sender is mis-framing batches. No prefix of the batch may be applied,
    // and nothing after this point in the stream can be trusted either.
    error_ = Error::kBadBatch;
    return std::nullopt;
  }
  consumed_ += kFrameHeaderSize + len;
  compact();
  return f;
}

std::string FrameDecoder::error_detail() const {
  switch (error_) {
    case Error::kNone: return "";
    case Error::kBadMagic: return "bad frame magic";
    case Error::kBadVersion: return "unsupported frame version";
    case Error::kBadKind: return "unknown frame kind";
    case Error::kOversized: return "frame payload length over limit";
    case Error::kBadCrc: return "frame payload CRC mismatch";
    case Error::kBadBatch: return "batch frame nested lengths inconsistent";
  }
  return "unknown frame error";
}

std::uint8_t peek_message_tag(std::span<const std::byte> payload) {
  return payload.empty() ? 0 : static_cast<std::uint8_t>(payload[0]);
}

bool is_cdm_payload(std::span<const std::byte> payload) {
  return peek_message_tag(payload) == static_cast<std::uint8_t>(MessageTag::kCdm);
}

bool is_new_set_stubs_payload(std::span<const std::byte> payload) {
  return peek_message_tag(payload) == static_cast<std::uint8_t>(MessageTag::kNewSetStubs);
}

bool is_batch_payload(std::span<const std::byte> payload) {
  return peek_message_tag(payload) == static_cast<std::uint8_t>(MessageTag::kBatch);
}

bool validate_batch_payload(std::span<const std::byte> payload) {
  constexpr std::size_t kBatchHeader = 5;  // u8 tag + u32 item count
  if (payload.size() < kBatchHeader || !is_batch_payload(payload)) return false;
  const std::uint32_t count = load_u32(payload.data() + 1);
  if (count == 0) return false;
  std::size_t pos = kBatchHeader;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - pos < 4) return false;
    const std::uint32_t len = load_u32(payload.data() + pos);
    pos += 4;
    if (len == 0 || len > payload.size() - pos) return false;
    if (payload[pos] == static_cast<std::byte>(MessageTag::kBatch)) return false;
    pos += len;
  }
  return pos == payload.size();
}

}  // namespace adgc
