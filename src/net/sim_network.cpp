#include "src/net/sim_network.h"

#include <algorithm>

#include "src/common/log.h"

namespace adgc {

namespace {
std::uint64_t link_key(ProcessId a, ProcessId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

SimNetwork::SimNetwork(NetworkConfig cfg, Rng rng, Scheduler deliver, Metrics* metrics)
    : cfg_(cfg), rng_(rng), deliver_(std::move(deliver)), metrics_(metrics) {}

void SimNetwork::set_link_blocked(ProcessId a, ProcessId b, bool blocked) {
  if (blocked) {
    blocked_.insert({a, b});
  } else {
    blocked_.erase({a, b});
  }
}

bool SimNetwork::link_blocked(ProcessId a, ProcessId b) const {
  return blocked_.contains({a, b});
}

SimTime SimNetwork::apply_fifo(SimTime when, ProcessId src, ProcessId dst) {
  if (cfg_.fifo_links) {
    SimTime& mark = link_watermark_[link_key(src, dst)];
    when = std::max(when, mark + 1);
    mark = when;
  }
  return when;
}

SimTime SimNetwork::draw_latency(SimTime now, ProcessId src, ProcessId dst) {
  const double mean = static_cast<double>(cfg_.mean_latency_us);
  SimTime lat = cfg_.min_latency_us + static_cast<SimTime>(rng_.exponential(mean));
  return apply_fifo(now + lat, src, dst);
}

void SimNetwork::send(SimTime now, Envelope env) {
  if (metrics_) {
    metrics_->messages_sent.add();
    metrics_->bytes_sent.add(env.bytes.size());
  }
  if (fate_hook_) {
    // The model checker owns every nondeterministic draw; the RNG is not
    // consulted at all, so the schedule alone determines the run.
    const Fate fate = fate_hook_(env);
    if (link_blocked(env.src, env.dst) || fate.lose) {
      if (metrics_) metrics_->messages_lost.add();
      ADGC_TRACE("net: dropped " << env.src << "->" << env.dst);
      return;
    }
    const SimTime when = apply_fifo(now + fate.latency_us, env.src, env.dst);
    if (fate.duplicate) {
      if (metrics_) metrics_->messages_duplicated.add();
      const SimTime when2 = apply_fifo(now + fate.latency_us, env.src, env.dst);
      deliver_(when2, env);  // copy
    }
    deliver_(when, std::move(env));
    return;
  }
  if (link_blocked(env.src, env.dst) || rng_.chance(cfg_.loss_probability)) {
    if (metrics_) metrics_->messages_lost.add();
    ADGC_TRACE("net: dropped " << env.src << "->" << env.dst);
    return;
  }
  const bool duplicate = rng_.chance(cfg_.duplicate_probability);
  const SimTime when = draw_latency(now, env.src, env.dst);
  if (duplicate) {
    if (metrics_) metrics_->messages_duplicated.add();
    const SimTime when2 = draw_latency(now, env.src, env.dst);
    deliver_(when2, env);  // copy
  }
  deliver_(when, std::move(env));
}

}  // namespace adgc
