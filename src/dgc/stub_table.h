// Stub table: outgoing remote references held by this process.
//
// One StubEntry per remote reference (RefId); several heap objects may hold
// the same reference — the holder count is maintained by the Process as
// fields are added/removed and corrected by the LGC sweep.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc {

struct StubEntry {
  RefId ref = kNoRef;
  /// The remote object this reference designates.
  ObjectId target;
  /// Invocation counter; incremented on every call/reply through the ref.
  std::uint64_t ic = 0;
  /// Number of heap objects currently holding this reference.
  std::uint32_t holders = 0;
  /// Whether some holder is reachable from the local root (set by the LGC).
  bool local_reach = false;
  SimTime created_at = 0;
};

class StubTable {
 public:
  /// Inserts or returns the existing entry for `ref`.
  StubEntry& ensure(RefId ref, ObjectId target, SimTime now);

  StubEntry* find(RefId ref);
  const StubEntry* find(RefId ref) const;
  bool contains(RefId ref) const { return entries_.contains(ref); }
  void erase(RefId ref) { entries_.erase(ref); }

  std::size_t size() const { return entries_.size(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// All live refs grouped by target owner process (NewSetStubs payloads).
  std::map<ProcessId, std::vector<RefId>> live_refs_by_owner() const;

 private:
  std::map<RefId, StubEntry> entries_;  // ordered: deterministic iteration
};

}  // namespace adgc
