#include "src/dgc/reference_listing.h"

#include <unordered_set>
#include <vector>

namespace adgc {

NewSetStubsMsg build_new_set_stubs(const StubTable& stubs, ProcessId owner,
                                   std::uint64_t export_seq) {
  NewSetStubsMsg msg;
  msg.export_seq = export_seq;
  for (const auto& [ref, stub] : stubs) {
    if (stub.target.owner == owner) msg.live.push_back(ref);
  }
  return msg;
}

std::map<ProcessId, NewSetStubsMsg> build_all_new_set_stubs(
    const StubTable& stubs, const std::set<ProcessId>& contacts) {
  std::map<ProcessId, NewSetStubsMsg> out;
  for (ProcessId dst : contacts) out[dst];  // empty sets are meaningful
  for (const auto& [ref, stub] : stubs) {
    auto it = out.find(stub.target.owner);
    if (it != out.end()) it->second.live.push_back(ref);
  }
  return out;
}

ApplyNssResult apply_new_set_stubs(ScionTable& scions, ProcessId holder,
                                   const NewSetStubsMsg& msg, SimTime now,
                                   SimTime pending_grace) {
  ApplyNssResult res;
  if (!scions.accept_export_seq(holder, msg.export_seq)) {
    res.stale = true;
    return res;
  }
  const std::unordered_set<RefId> live(msg.live.begin(), msg.live.end());
  std::vector<RefId> doomed;
  for (auto& [ref, scion] : scions) {
    if (scion.holder != holder) continue;
    if (live.contains(ref)) {
      if (!scion.confirmed) {
        scion.confirmed = true;
        ++res.confirmed;
      }
      continue;
    }
    if (scion.confirmed) {
      // The holder's live stub set is authoritative once confirmed.
      doomed.push_back(ref);
    } else if (now >= scion.created_at + pending_grace) {
      // Never confirmed and the in-flight window has long closed: the
      // exported reference was lost or dropped before arrival.
      doomed.push_back(ref);
    }
  }
  for (RefId ref : doomed) scions.erase(ref);
  res.deleted = doomed.size();
  return res;
}

}  // namespace adgc
