#include "src/dgc/stub_table.h"

namespace adgc {

StubEntry& StubTable::ensure(RefId ref, ObjectId target, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(ref);
  if (inserted) {
    it->second.ref = ref;
    it->second.target = target;
    it->second.created_at = now;
  }
  return it->second;
}

StubEntry* StubTable::find(RefId ref) {
  auto it = entries_.find(ref);
  return it == entries_.end() ? nullptr : &it->second;
}

const StubEntry* StubTable::find(RefId ref) const {
  auto it = entries_.find(ref);
  return it == entries_.end() ? nullptr : &it->second;
}

std::map<ProcessId, std::vector<RefId>> StubTable::live_refs_by_owner() const {
  std::map<ProcessId, std::vector<RefId>> out;
  for (const auto& [ref, entry] : entries_) {
    out[entry.target.owner].push_back(ref);
  }
  return out;
}

}  // namespace adgc
