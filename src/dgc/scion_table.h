// Scion table: incoming remote references protecting local objects.
//
// A scion pins its target object against the local GC. Scions are created by
// the scion-first handshake (AddScion) or locally when this process exports
// one of its own objects, and die either through the acyclic reference-
// listing protocol (NewSetStubs) or through a DCDA cycle-found verdict.
//
// Confirmation state machine (loss/reorder safety of NewSetStubs):
//   pending   — created, the holder process has never mentioned the ref yet.
//               Deletable by NewSetStubs only after a grace period (covers
//               the window where the reference is still in flight).
//   confirmed — the holder invoked through the ref or listed it in a
//               NewSetStubs; from then on NewSetStubs from the holder is
//               authoritative (stale messages are rejected by export_seq).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc {

struct ScionEntry {
  RefId ref = kNoRef;
  /// Process holding (or about to hold) the matching stub.
  ProcessId holder = kNoProcess;
  /// The local object this scion protects.
  ObjectSeq target = kNoObject;
  /// Invocation counter mirror of the stub's.
  std::uint64_t ic = 0;
  bool confirmed = false;
  SimTime created_at = 0;
  /// Last time `ic` changed; drives the DCDA candidate quarantine.
  SimTime last_ic_change = 0;
  /// Whether the target was reachable from local roots at the last LGC.
  bool target_root_reachable = true;
};

class ScionTable {
 public:
  /// Inserts (idempotently) a scion. Returns the entry.
  ScionEntry& ensure(RefId ref, ProcessId holder, ObjectSeq target, SimTime now);

  ScionEntry* find(RefId ref);
  const ScionEntry* find(RefId ref) const;
  bool contains(RefId ref) const { return entries_.contains(ref); }
  void erase(RefId ref) { entries_.erase(ref); }

  std::size_t size() const { return entries_.size(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Scions held by `holder` (the subject of one NewSetStubs message).
  std::vector<RefId> refs_from_holder(ProcessId holder) const;

  /// Highest NewSetStubs export_seq accepted from `holder` so far.
  std::uint64_t last_export_seq(ProcessId holder) const;
  /// Records an accepted export_seq; returns false if `seq` is stale
  /// (≤ the recorded one), in which case the message must be ignored.
  bool accept_export_seq(ProcessId holder, std::uint64_t seq);

  /// Drops all per-holder bookkeeping (the export_seq watermark) for an
  /// evicted peer. Its fresh incarnation restarts the series from an
  /// incarnation-epoched value that sorts above everything anyway; keeping
  /// the entry would only leak a map slot per evicted peer.
  void forget_holder(ProcessId holder) { export_seq_.erase(holder); }

 private:
  std::map<RefId, ScionEntry> entries_;  // ordered: deterministic iteration
  std::map<ProcessId, std::uint64_t> export_seq_;
};

}  // namespace adgc
