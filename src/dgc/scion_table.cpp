#include "src/dgc/scion_table.h"

namespace adgc {

ScionEntry& ScionTable::ensure(RefId ref, ProcessId holder, ObjectSeq target, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(ref);
  if (inserted) {
    it->second.ref = ref;
    it->second.holder = holder;
    it->second.target = target;
    it->second.created_at = now;
    it->second.last_ic_change = now;
  }
  return it->second;
}

ScionEntry* ScionTable::find(RefId ref) {
  auto it = entries_.find(ref);
  return it == entries_.end() ? nullptr : &it->second;
}

const ScionEntry* ScionTable::find(RefId ref) const {
  auto it = entries_.find(ref);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<RefId> ScionTable::refs_from_holder(ProcessId holder) const {
  std::vector<RefId> out;
  for (const auto& [ref, entry] : entries_) {
    if (entry.holder == holder) out.push_back(ref);
  }
  return out;
}

std::uint64_t ScionTable::last_export_seq(ProcessId holder) const {
  auto it = export_seq_.find(holder);
  return it == export_seq_.end() ? 0 : it->second;
}

bool ScionTable::accept_export_seq(ProcessId holder, std::uint64_t seq) {
  std::uint64_t& cur = export_seq_[holder];
  if (seq <= cur) return false;
  cur = seq;
  return true;
}

}  // namespace adgc
