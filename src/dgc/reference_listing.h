// Acyclic distributed GC: the reference-listing protocol (Shapiro et al.).
//
// After each LGC run a process sends, to every process it has ever held a
// reference into, the complete set of its surviving stubs toward that
// process (NewSetStubs). The receiver deletes scions no longer backed by a
// stub. Messages are cumulative and idempotent; a per-holder export sequence
// rejects stale (reordered) messages, and pending scions (reference still in
// flight toward its future holder) are protected by a grace period.
#pragma once

#include <map>
#include <set>

#include "src/common/config.h"
#include "src/dgc/scion_table.h"
#include "src/dgc/stub_table.h"
#include "src/net/message.h"

namespace adgc {

/// Builds the NewSetStubs payload for destination `owner`: all live stubs
/// whose target lives at `owner` (pinned in-flight exports included —
/// StubTable deletion already spares them, so they are simply present).
NewSetStubsMsg build_new_set_stubs(const StubTable& stubs, ProcessId owner,
                                   std::uint64_t export_seq);

/// Grouped build for the post-LGC fan-out: ONE pass over the stub table
/// produces the NewSetStubs payload for every contact in `contacts`
/// (including empty payloads for contacts with no surviving stubs — an
/// empty set is meaningful: it deletes the peer's remaining scions).
/// O(stubs + contacts) instead of build_new_set_stubs's O(stubs × contacts);
/// `export_seq` is left 0 for the caller to stamp per destination. Stub
/// order per destination matches the per-owner builder (table order).
std::map<ProcessId, NewSetStubsMsg> build_all_new_set_stubs(
    const StubTable& stubs, const std::set<ProcessId>& contacts);

struct ApplyNssResult {
  bool stale = false;          // rejected: export_seq not newer than last seen
  std::size_t deleted = 0;     // scions removed
  std::size_t confirmed = 0;   // pending scions confirmed by this message
};

/// Applies a NewSetStubs from `holder` to the local scion table.
ApplyNssResult apply_new_set_stubs(ScionTable& scions, ProcessId holder,
                                   const NewSetStubsMsg& msg, SimTime now,
                                   SimTime pending_grace);

}  // namespace adgc
