#include "src/snapshot/pipeline.h"

#include <chrono>
#include <exception>
#include <utility>

#include "src/common/log.h"

namespace adgc {

namespace {

std::uint64_t wall_us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

SnapshotPipeline::SnapshotPipeline(ProcessId pid, const ProcessConfig& cfg, Env& env,
                                   Serializer& serializer, Summarizer& summarizer,
                                   SnapshotStore* store, PublishFn publish)
    : pid_(pid),
      cfg_(cfg),
      env_(env),
      serializer_(serializer),
      summarizer_(summarizer),
      store_(store),
      publish_(std::move(publish)),
      ctl_(std::make_shared<Ctl>()) {}

SnapshotPipeline::~SnapshotPipeline() {
  {
    std::lock_guard<std::mutex> lk(ctl_->mu);
    ctl_->dead = true;
    ctl_->cancelled = ctl_->gen;
    ctl_->has_job = false;
    ctl_->job_snap = {};
  }
  ctl_->cv.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool SnapshotPipeline::in_flight() const {
  std::lock_guard<std::mutex> lk(ctl_->mu);
  return ctl_->busy;
}

void SnapshotPipeline::mark_pending() {
  std::lock_guard<std::mutex> lk(ctl_->mu);
  ctl_->pending = true;
}

bool SnapshotPipeline::consume_pending() {
  std::lock_guard<std::mutex> lk(ctl_->mu);
  return std::exchange(ctl_->pending, false);
}

SnapshotPipeline::Stages SnapshotPipeline::run_now(SnapshotData snap,
                                                   std::uint64_t version,
                                                   SimTime requested_at) {
  Stages out;
  out.version = version;
  out.requested_at = requested_at;
  Metrics& m = env_.metrics();
  if (cfg_.roundtrip_snapshots || store_) {
    const auto wall0 = std::chrono::steady_clock::now();
    const SimTime vt0 = env_.now();
    const std::vector<std::byte> bytes = serializer_.serialize(snap);
    out.bytes = bytes.size();
    m.snapshot_bytes.add(bytes.size());
    if (store_) {
      try {
        store_->write(pid_, version, bytes);
      } catch (const std::exception& e) {
        // Surface, don't abort: the summary is still valid for detection,
        // only durability suffered (recovery falls back to an older version).
        out.persisted = false;
        m.snapshot_persist_failures.add();
        ADGC_ERROR("P" << pid_ << " snapshot v" << version
                       << " persist failed: " << e.what());
      }
    }
    if (cfg_.roundtrip_snapshots) snap = serializer_.deserialize(bytes);
    m.snapshot_persist_us.record(wall_us_since(wall0));
    obs::emit(env_.trace(),
              {env_.now(), pid_, obs::EventType::kSnapshotPersist,
               static_cast<std::uint8_t>(out.persisted ? 0 : 1), 0, version,
               static_cast<std::uint64_t>(env_.now() - vt0)});
  }
  const auto wall1 = std::chrono::steady_clock::now();
  const SimTime vt1 = env_.now();
  SummarizedGraph sum = summarizer_.summarize(snap);
  sum.version = version;
  m.snapshot_summarize_us.record(wall_us_since(wall1));
  obs::emit(env_.trace(),
            {env_.now(), pid_, obs::EventType::kSnapshotSummarize, 0, 0, version,
             static_cast<std::uint64_t>(env_.now() - vt1)});
  out.summary = std::make_shared<const SummarizedGraph>(std::move(sum));
  return out;
}

void SnapshotPipeline::submit(SnapshotData snap, std::uint64_t version,
                              SimTime requested_at) {
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lk(ctl_->mu);
    ctl_->busy = true;
    gen = ++ctl_->gen;
  }
  if (!env_.real_time()) {
    // Deterministic simulator: the stages run inline (no concurrency to
    // model); only the publication is deferred, as a self-event the sim —
    // and the model checker's explicit schedule — orders like any other.
    Stages s = run_now(std::move(snap), version, requested_at);
    auto ctl = ctl_;
    env_.schedule(cfg_.snapshot_pipeline_latency_us,
                  [self = this, ctl, s = std::move(s), gen]() mutable {
                    {
                      std::lock_guard<std::mutex> lk(ctl->mu);
                      if (ctl->dead || gen <= ctl->cancelled) return;
                    }
                    self->finish(std::move(s), gen);
                  });
    return;
  }
  {
    std::lock_guard<std::mutex> lk(ctl_->mu);
    ctl_->job_snap = std::move(snap);
    ctl_->job_version = version;
    ctl_->job_requested_at = requested_at;
    ctl_->has_job = true;
  }
  if (!worker_.joinable()) worker_ = std::thread([this] { worker_loop(); });
  ctl_->cv.notify_all();
}

void SnapshotPipeline::worker_loop() {
  for (;;) {
    SnapshotData snap;
    std::uint64_t version = 0;
    SimTime requested_at = 0;
    {
      std::unique_lock<std::mutex> lk(ctl_->mu);
      ctl_->cv.wait(lk, [&] { return ctl_->dead || ctl_->has_job; });
      if (ctl_->dead) return;
      snap = std::move(ctl_->job_snap);
      ctl_->job_snap = {};
      version = ctl_->job_version;
      requested_at = ctl_->job_requested_at;
      ctl_->has_job = false;
      ctl_->working = true;
    }
    Stages s;
    try {
      s = run_now(std::move(snap), version, requested_at);
    } catch (const std::exception& e) {
      // A stage threw past run_now's own handling (serializer bug): report
      // and deliver an empty result so the in-flight state still clears.
      ADGC_ERROR("P" << pid_ << " snapshot v" << version
                     << " pipeline stage failed: " << e.what());
      s.version = version;
      s.requested_at = requested_at;
      s.persisted = false;
    }
    std::uint64_t gen = 0;
    bool dead = false;
    {
      std::lock_guard<std::mutex> lk(ctl_->mu);
      ctl_->working = false;
      gen = ctl_->gen;
      dead = ctl_->dead;
    }
    ctl_->cv.notify_all();
    if (dead) return;
    auto ctl = ctl_;
    env_.post([self = this, ctl, s = std::move(s), gen]() mutable {
      {
        std::lock_guard<std::mutex> lk(ctl->mu);
        // `dead` flips only on the actor thread (pipeline destruction), and
        // this closure runs on the actor thread — observing dead==false
        // therefore proves `self` is still alive.
        if (ctl->dead || gen <= ctl->cancelled) return;
      }
      self->finish(std::move(s), gen);
    });
  }
}

void SnapshotPipeline::finish(Stages s, std::uint64_t gen) {
  {
    std::lock_guard<std::mutex> lk(ctl_->mu);
    if (gen <= ctl_->cancelled) return;
    ctl_->busy = false;
  }
  publish_(std::move(s));
}

void SnapshotPipeline::cancel_in_flight() {
  std::unique_lock<std::mutex> lk(ctl_->mu);
  ctl_->cancelled = ctl_->gen;
  ctl_->pending = false;
  ctl_->has_job = false;
  ctl_->job_snap = {};
  // Let a mid-stage worker finish its pass (bounded); its completion is
  // already invalidated above. The wait also serializes summarizer/store
  // access for the synchronous caller.
  ctl_->cv.wait(lk, [&] { return !ctl_->working; });
  ctl_->busy = false;
}

}  // namespace adgc
