// Deliberately slow text serializer modelling Rotor's reflective one.
//
// Every value goes through iostream formatting into a per-record
// ostringstream (fresh allocations per record), payloads are hex-encoded
// byte-by-byte, and parsing reads the same format back with istream
// extraction. The point is not to be bad gratuitously — this is the
// classic shape of a reflective, format-per-field serializer, and it is
// what the paper measured on Rotor.
#include <charconv>
#include <sstream>
#include <string>

#include "src/common/bytes.h"
#include "src/snapshot/serializer.h"

namespace adgc {

namespace {

void hex_encode(std::ostringstream& os, const std::vector<std::byte>& data) {
  static const char* kHex = "0123456789abcdef";
  for (std::byte b : data) {
    const auto v = static_cast<unsigned>(b);
    os << kHex[v >> 4] << kHex[v & 0xF];
  }
}

std::vector<std::byte> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) throw DecodeError("odd hex payload");
  auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    throw DecodeError("bad hex digit");
  };
  std::vector<std::byte> out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<std::byte>((nibble(s[i]) << 4) | nibble(s[i + 1])));
  }
  return out;
}

class LineReader {
 public:
  explicit LineReader(std::span<const std::byte> bytes)
      : text_(reinterpret_cast<const char*>(bytes.data()), bytes.size()) {}

  std::string line() {
    if (pos_ >= text_.size()) throw DecodeError("unexpected end of text snapshot");
    const std::size_t nl = text_.find('\n', pos_);
    const std::size_t end = (nl == std::string_view::npos) ? text_.size() : nl;
    std::string out(text_.substr(pos_, end - pos_));
    pos_ = (nl == std::string_view::npos) ? text_.size() : nl + 1;
    return out;
  }

  bool done() const { return pos_ >= text_.size(); }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t field_u64(std::istringstream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) throw DecodeError(std::string("missing field: ") + what);
  std::uint64_t v = 0;
  const auto* first = tok.data();
  const auto* last = tok.data() + tok.size();
  auto [p, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || p != last) throw DecodeError(std::string("bad number: ") + what);
  return v;
}

}  // namespace

std::vector<std::byte> NaiveSerializer::serialize(const SnapshotData& snap) const {
  std::string out;
  {
    std::ostringstream hdr;
    hdr << "snapshot pid " << snap.pid << " at " << snap.taken_at << "\n";
    out += hdr.str();
  }
  {
    std::ostringstream os;
    os << "roots " << snap.roots.size();
    for (ObjectSeq r : snap.roots) os << " " << r;
    os << "\n";
    out += os.str();
  }
  {
    std::ostringstream os;
    os << "objects " << snap.objects.size() << "\n";
    out += os.str();
  }
  for (const auto& o : snap.objects) {
    // One fresh stream per record — the reflective-serializer allocation
    // pattern the benchmark is meant to expose.
    std::ostringstream os;
    os << "object seq " << o.seq;
    os << " locals " << o.local_fields.size();
    for (ObjectSeq f : o.local_fields) os << " " << f;
    os << " remotes " << o.remote_fields.size();
    for (RefId f : o.remote_fields) os << " " << f;
    os << " payload ";
    hex_encode(os, o.payload);
    os << "\n";
    out += os.str();
  }
  {
    std::ostringstream os;
    os << "stubs " << snap.stubs.size() << "\n";
    out += os.str();
  }
  for (const auto& s : snap.stubs) {
    std::ostringstream os;
    os << "stub ref " << s.ref << " owner " << s.target.owner << " seq " << s.target.seq
       << " ic " << s.ic << "\n";
    out += os.str();
  }
  {
    std::ostringstream os;
    os << "scions " << snap.scions.size() << "\n";
    out += os.str();
  }
  for (const auto& s : snap.scions) {
    std::ostringstream os;
    os << "scion ref " << s.ref << " holder " << s.holder << " target " << s.target
       << " ic " << s.ic << "\n";
    out += os.str();
  }
  const auto* p = reinterpret_cast<const std::byte*>(out.data());
  return {p, p + out.size()};
}

SnapshotData NaiveSerializer::deserialize(std::span<const std::byte> bytes) const {
  LineReader lines(bytes);
  SnapshotData snap;
  {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "snapshot") throw DecodeError("bad snapshot header");
    is >> kw;  // "pid"
    snap.pid = static_cast<ProcessId>(field_u64(is, "pid"));
    is >> kw;  // "at"
    snap.taken_at = field_u64(is, "taken_at");
  }
  {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "roots") throw DecodeError("expected roots line");
    const std::uint64_t n = field_u64(is, "roots count");
    for (std::uint64_t i = 0; i < n; ++i) snap.roots.push_back(field_u64(is, "root"));
  }
  std::uint64_t nobjs = 0;
  {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "objects") throw DecodeError("expected objects line");
    nobjs = field_u64(is, "objects count");
  }
  snap.objects.reserve(nobjs);
  for (std::uint64_t i = 0; i < nobjs; ++i) {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "object") throw DecodeError("expected object record");
    SnapshotData::Obj o;
    is >> kw;  // "seq"
    o.seq = field_u64(is, "seq");
    is >> kw;  // "locals"
    const std::uint64_t nl = field_u64(is, "locals count");
    for (std::uint64_t k = 0; k < nl; ++k) o.local_fields.push_back(field_u64(is, "local"));
    is >> kw;  // "remotes"
    const std::uint64_t nr = field_u64(is, "remotes count");
    for (std::uint64_t k = 0; k < nr; ++k) o.remote_fields.push_back(field_u64(is, "remote"));
    is >> kw;  // "payload"
    std::string hex;
    is >> hex;
    o.payload = hex_decode(hex);
    snap.objects.push_back(std::move(o));
  }
  std::uint64_t nstubs = 0;
  {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "stubs") throw DecodeError("expected stubs line");
    nstubs = field_u64(is, "stubs count");
  }
  snap.stubs.reserve(nstubs);
  for (std::uint64_t i = 0; i < nstubs; ++i) {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw >> kw;  // "stub" "ref"
    SnapshotData::Stub s;
    s.ref = field_u64(is, "stub ref");
    is >> kw;  // "owner"
    s.target.owner = static_cast<ProcessId>(field_u64(is, "owner"));
    is >> kw;  // "seq"
    s.target.seq = field_u64(is, "target seq");
    is >> kw;  // "ic"
    s.ic = field_u64(is, "ic");
    snap.stubs.push_back(s);
  }
  std::uint64_t nscions = 0;
  {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw;
    if (kw != "scions") throw DecodeError("expected scions line");
    nscions = field_u64(is, "scions count");
  }
  snap.scions.reserve(nscions);
  for (std::uint64_t i = 0; i < nscions; ++i) {
    std::istringstream is(lines.line());
    std::string kw;
    is >> kw >> kw;  // "scion" "ref"
    SnapshotData::Scion s;
    s.ref = field_u64(is, "scion ref");
    is >> kw;  // "holder"
    s.holder = static_cast<ProcessId>(field_u64(is, "holder"));
    is >> kw;  // "target"
    s.target = field_u64(is, "target");
    is >> kw;  // "ic"
    s.ic = field_u64(is, "ic");
    snap.scions.push_back(s);
  }
  return snap;
}

}  // namespace adgc
