// Incremental summarizer (§4: summarization "is performed, lazily and
// incrementally").
//
// Soundness argument for the reuse rule: a scion's forward traversal visits
// a set V of objects and reads only their fields. If, in the new snapshot,
// every object of V exists with identical fields, the traversal would visit
// exactly V again and produce the same stub set: newly added objects can
// only become reachable through a *changed* field of some visited object,
// and deletions of visited objects are changes by definition. Hence the
// memoized result is reused iff V ∩ changed = ∅ (and the scion itself is
// unchanged apart from its IC, which is copied fresh). The stub-table
// membership of the encountered remote references is NOT part of V's
// fingerprints, so it is never baked into the memo: the memo keeps every
// encountered ref and StubsFrom is re-derived per snapshot as the
// intersection with the stubs present in that snapshot.
#include <algorithm>
#include <unordered_set>

#include "src/snapshot/summarizer.h"
#include "src/snapshot/summarizer_internal.h"

namespace adgc {

std::uint64_t IncrementalSummarizer::object_fingerprint(const SnapshotData::Obj& o) {
  // FNV-1a over the reachability-relevant content (payload excluded: it
  // carries no references).
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(o.seq);
  mix(o.local_fields.size());
  for (ObjectSeq f : o.local_fields) mix(f);
  mix(0x5ca1ab1eULL);
  for (RefId f : o.remote_fields) mix(f);
  return h;
}

SummarizedGraph IncrementalSummarizer::summarize(const SnapshotData& snap) {
  SummarizedGraph out;
  detail::init_summary_entries(snap, out);
  detail::SnapshotIndex ix(snap);
  last_recomputed_ = 0;
  last_reused_ = 0;

  // Diff the object population against the previous snapshot.
  std::unordered_map<ObjectSeq, std::uint64_t> cur_objects;
  cur_objects.reserve(snap.objects.size());
  std::unordered_set<ObjectSeq> changed;
  for (const auto& o : snap.objects) {
    const std::uint64_t fp = object_fingerprint(o);
    cur_objects.emplace(o.seq, fp);
    auto it = prev_objects_.find(o.seq);
    if (it == prev_objects_.end() || it->second != fp) changed.insert(o.seq);
  }
  for (const auto& [seq, fp] : prev_objects_) {
    if (!cur_objects.contains(seq)) changed.insert(seq);  // deleted
  }

  // Local.Reach: always recomputed (one cheap BFS; root churn is common).
  const std::vector<bool> from_root = detail::snapshot_bfs(ix, snap.roots);
  for (std::size_t i = 0; i < snap.objects.size(); ++i) {
    if (!from_root[i]) continue;
    for (RefId ref : snap.objects[i].remote_fields) {
      auto it = out.stubs.find(ref);
      if (it != out.stubs.end()) it->second.local_reach = true;
    }
  }

  // A memo records every remote reference the traversal *encountered*, not
  // just those whose stub existed at memo time. StubsFrom is then derived
  // per snapshot as the intersection with the currently-present stub set —
  // so a stub-table entry appearing (or vanishing) between snapshots is
  // reflected without invalidating the memo. Filtering at memo time instead
  // was unsound: an appearing stub left every visited object's fingerprint
  // unchanged, and the reused summary silently dropped its StubsFrom edge.
  auto present_stubs = [&](const std::vector<RefId>& remote_refs) {
    std::vector<RefId> out_refs;
    out_refs.reserve(remote_refs.size());
    for (RefId r : remote_refs) {
      if (out.stubs.contains(r)) out_refs.push_back(r);
    }
    return out_refs;  // sorted: remote_refs is sorted
  };

  for (const auto& s : snap.scions) {
    auto& sum = out.scions.at(s.ref);
    auto mit = memo_.find(s.ref);
    bool reusable = mit != memo_.end();
    if (reusable) {
      for (ObjectSeq v : mit->second.visited) {
        if (changed.contains(v)) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      sum.stubs_from = present_stubs(mit->second.remote_refs);
      ++last_reused_;
      continue;
    }

    // Full forward traversal; record the visited set and every encountered
    // remote reference for next time.
    ++last_recomputed_;
    Memo memo;
    std::vector<std::size_t> stack;
    std::vector<bool> seen(snap.objects.size(), false);
    auto push = [&](ObjectSeq seq) {
      auto it = ix.obj_index.find(seq);
      if (it != ix.obj_index.end() && !seen[it->second]) {
        seen[it->second] = true;
        stack.push_back(it->second);
      }
    };
    push(s.target);
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      const auto& obj = snap.objects[cur];
      memo.visited.push_back(obj.seq);
      for (RefId ref : obj.remote_fields) memo.remote_refs.push_back(ref);
      for (ObjectSeq next : obj.local_fields) push(next);
    }
    std::sort(memo.visited.begin(), memo.visited.end());
    std::sort(memo.remote_refs.begin(), memo.remote_refs.end());
    memo.remote_refs.erase(
        std::unique(memo.remote_refs.begin(), memo.remote_refs.end()),
        memo.remote_refs.end());
    sum.stubs_from = present_stubs(memo.remote_refs);
    memo_[s.ref] = std::move(memo);
  }

  // Drop memos for scions that no longer exist.
  for (auto it = memo_.begin(); it != memo_.end();) {
    if (out.scions.contains(it->first)) {
      ++it;
    } else {
      it = memo_.erase(it);
    }
  }

  prev_objects_ = std::move(cur_objects);
  finalize_summary(out);
  return out;
}

}  // namespace adgc
