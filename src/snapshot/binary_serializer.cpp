#include "src/common/bytes.h"
#include "src/snapshot/serializer.h"

namespace adgc {

namespace {
constexpr std::uint32_t kMagic = 0x41444742;  // "ADGB"
}

std::vector<std::byte> BinarySerializer::serialize(const SnapshotData& snap) const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(snap.pid);
  w.u64(snap.taken_at);

  w.u32(static_cast<std::uint32_t>(snap.roots.size()));
  for (ObjectSeq r : snap.roots) w.u64(r);

  w.u32(static_cast<std::uint32_t>(snap.objects.size()));
  for (const auto& o : snap.objects) {
    w.u64(o.seq);
    w.u32(static_cast<std::uint32_t>(o.local_fields.size()));
    if (!o.local_fields.empty()) {
      w.raw(o.local_fields.data(), o.local_fields.size() * sizeof(ObjectSeq));
    }
    w.u32(static_cast<std::uint32_t>(o.remote_fields.size()));
    if (!o.remote_fields.empty()) {
      w.raw(o.remote_fields.data(), o.remote_fields.size() * sizeof(RefId));
    }
    w.bytes(o.payload);
  }

  w.u32(static_cast<std::uint32_t>(snap.stubs.size()));
  for (const auto& s : snap.stubs) {
    w.u64(s.ref);
    w.object_id(s.target);
    w.u64(s.ic);
  }

  w.u32(static_cast<std::uint32_t>(snap.scions.size()));
  for (const auto& s : snap.scions) {
    w.u64(s.ref);
    w.u32(s.holder);
    w.u64(s.target);
    w.u64(s.ic);
  }
  return w.take();
}

SnapshotData BinarySerializer::deserialize(std::span<const std::byte> bytes) const {
  ByteReader r(bytes);
  if (r.u32() != kMagic) throw DecodeError("bad snapshot magic");
  SnapshotData snap;
  snap.pid = r.u32();
  snap.taken_at = r.u64();

  const std::uint32_t nroots = r.u32();
  snap.roots.reserve(nroots);
  for (std::uint32_t i = 0; i < nroots; ++i) snap.roots.push_back(r.u64());

  const std::uint32_t nobjs = r.u32();
  snap.objects.reserve(nobjs);
  for (std::uint32_t i = 0; i < nobjs; ++i) {
    SnapshotData::Obj o;
    o.seq = r.u64();
    const std::uint32_t nl = r.u32();
    if (nl > r.remaining() / sizeof(ObjectSeq)) throw DecodeError("local fields overrun");
    o.local_fields.reserve(nl);
    for (std::uint32_t k = 0; k < nl; ++k) o.local_fields.push_back(r.u64());
    const std::uint32_t nr = r.u32();
    if (nr > r.remaining() / sizeof(RefId)) throw DecodeError("remote fields overrun");
    o.remote_fields.reserve(nr);
    for (std::uint32_t k = 0; k < nr; ++k) o.remote_fields.push_back(r.u64());
    o.payload = r.bytes();
    snap.objects.push_back(std::move(o));
  }

  const std::uint32_t nstubs = r.u32();
  snap.stubs.reserve(nstubs);
  for (std::uint32_t i = 0; i < nstubs; ++i) {
    SnapshotData::Stub s;
    s.ref = r.u64();
    s.target = r.object_id();
    s.ic = r.u64();
    snap.stubs.push_back(s);
  }

  const std::uint32_t nscions = r.u32();
  snap.scions.reserve(nscions);
  for (std::uint32_t i = 0; i < nscions; ++i) {
    SnapshotData::Scion s;
    s.ref = r.u64();
    s.holder = r.u32();
    s.target = r.u64();
    s.ic = r.u64();
    snap.scions.push_back(s);
  }
  r.expect_done();
  return snap;
}

}  // namespace adgc
