// Heap snapshots and their DCDA summarization.
//
// Per the paper (§2.2, §3 "Graph Summarization"): each process periodically,
// and with no coordination whatsoever, serializes its object graph; the
// snapshot is then *summarized* into just the scion/stub relations the cycle
// detector needs:
//    StubsFrom(scion)  — stubs reachable from the scion's target object
//    ScionsTo(stub)    — scions whose target reaches some holder of the stub
//    Local.Reach(stub) — some holder is reachable from the local root
// plus the invocation counters frozen at snapshot time.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/dgc/scion_table.h"
#include "src/dgc/stub_table.h"
#include "src/rt/heap.h"

namespace adgc {

/// Logical content of one process snapshot (pre-summarization).
struct SnapshotData {
  struct Obj {
    ObjectSeq seq = kNoObject;
    std::vector<ObjectSeq> local_fields;
    std::vector<RefId> remote_fields;
    std::vector<std::byte> payload;
  };
  struct Stub {
    RefId ref = kNoRef;
    ObjectId target;
    std::uint64_t ic = 0;
  };
  struct Scion {
    RefId ref = kNoRef;
    ProcessId holder = kNoProcess;
    ObjectSeq target = kNoObject;
    std::uint64_t ic = 0;
  };

  ProcessId pid = kNoProcess;
  SimTime taken_at = 0;
  std::vector<ObjectSeq> roots;
  std::vector<Obj> objects;
  std::vector<Stub> stubs;
  std::vector<Scion> scions;
};

/// Captures the current heap + DGC tables into a SnapshotData.
SnapshotData capture_snapshot(ProcessId pid, SimTime now, const Heap& heap,
                              const StubTable& stubs, const ScionTable& scions);

/// Rebuilds heap + DGC tables from a snapshot (crash recovery). The caller
/// provides empty tables. Restored scions come back unconfirmed with a fresh
/// grace window and `target_root_reachable = true`, and stub holder counts
/// are recomputed from the restored heap — conservative defaults that can
/// delay collection but never delete a live reference. The acyclic protocol
/// (NewSetStubs / AddScion retry) and the next LGC re-derive the exact state.
void restore_snapshot(const SnapshotData& snap, Heap& heap, StubTable& stubs,
                      ScionTable& scions, SimTime now);

/// Summarized form consumed by the DCDA.
struct ScionSummary {
  RefId ref = kNoRef;
  std::uint64_t ic = 0;
  ProcessId holder = kNoProcess;  // process holding the matching stub
  ObjectSeq target = kNoObject;
  std::vector<RefId> stubs_from;  // sorted
};

struct StubSummary {
  RefId ref = kNoRef;
  std::uint64_t ic = 0;
  ObjectId target;
  bool local_reach = false;
  std::vector<RefId> scions_to;  // sorted
};

struct SummarizedGraph {
  ProcessId pid = kNoProcess;
  SimTime taken_at = 0;
  std::uint64_t version = 0;  // monotonically increasing per process
  std::unordered_map<RefId, ScionSummary> scions;
  std::unordered_map<RefId, StubSummary> stubs;

  const ScionSummary* scion(RefId ref) const {
    auto it = scions.find(ref);
    return it == scions.end() ? nullptr : &it->second;
  }
  const StubSummary* stub(RefId ref) const {
    auto it = stubs.find(ref);
    return it == stubs.end() ? nullptr : &it->second;
  }
};

}  // namespace adgc
