#include "src/snapshot/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/common/bytes.h"
#include "src/common/log.h"

namespace adgc {

namespace {

constexpr std::uint32_t kFileMagic = 0x41444753;  // "ADGS"

// FNV-1a over the payload; cheap integrity check against truncation.
std::uint64_t checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SnapshotStore::SnapshotStore(std::filesystem::path dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(std::max<std::size_t>(retain, 1)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path SnapshotStore::path_for(ProcessId pid, std::uint64_t version) const {
  char name[64];
  std::snprintf(name, sizeof name, "snapshot_p%u_v%020llu.bin", pid,
                static_cast<unsigned long long>(version));
  return dir_ / name;
}

std::filesystem::path SnapshotStore::write(ProcessId pid, std::uint64_t version,
                                           std::span<const std::byte> bytes) {
  const std::filesystem::path path = path_for(pid, version);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    ByteWriter header;
    header.u32(kFileMagic);
    header.u32(pid);
    header.u64(version);
    header.u64(bytes.size());
    header.u64(checksum(bytes));

    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::error_code rm;
      std::filesystem::remove(tmp, rm);
      throw std::runtime_error("snapshot store: write failed: " + tmp.string());
    }
  }
  // Atomic publish: readers only ever see complete files. A failed rename
  // must not fall through to prune() — pruning after a failed publish could
  // delete the only readable versions.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw std::runtime_error("snapshot store: publish failed: " + path.string() +
                             ": " + ec.message());
  }
  ensure_scanned();
  std::vector<std::uint64_t>& vs = cache_[pid];
  auto it = std::lower_bound(vs.begin(), vs.end(), version);
  if (it == vs.end() || *it != version) vs.insert(it, version);
  prune(pid);
  return path;
}

void SnapshotStore::ensure_scanned() const {
  if (scanned_) return;
  scanned_ = true;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    // snapshot_p<pid>_v<digits>.bin — anything else (including names whose
    // version run is empty, non-numeric or absurdly long) is skipped, never
    // parsed: strtoull on "garbage" would alias it to version 0.
    unsigned pid_val = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "snapshot_p%u_v%n", &pid_val, &consumed) != 1 ||
        consumed <= 0) {
      continue;
    }
    if (name.size() < static_cast<std::size_t>(consumed) + 4 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    const std::string digits =
        name.substr(static_cast<std::size_t>(consumed),
                    name.size() - static_cast<std::size_t>(consumed) - 4);
    const bool valid = !digits.empty() && digits.size() <= 20 &&
                       std::all_of(digits.begin(), digits.end(), [](char c) {
                         return c >= '0' && c <= '9';
                       });
    if (!valid) {
      ++malformed_skipped_;
      ADGC_WARN("snapshot store: ignoring malformed snapshot name " << name);
      continue;
    }
    cache_[static_cast<ProcessId>(pid_val)].push_back(
        std::strtoull(digits.c_str(), nullptr, 10));
  }
  for (auto& [pid, vs] : cache_) {
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
  }
}

std::vector<std::uint64_t> SnapshotStore::versions(ProcessId pid) const {
  ensure_scanned();
  auto it = cache_.find(pid);
  return it == cache_.end() ? std::vector<std::uint64_t>{} : it->second;
}

void SnapshotStore::prune(ProcessId pid) {
  ensure_scanned();
  auto it = cache_.find(pid);
  if (it == cache_.end()) return;
  std::vector<std::uint64_t>& vs = it->second;
  while (vs.size() > retain_) {
    std::error_code ec;
    std::filesystem::remove(path_for(pid, vs.front()), ec);
    vs.erase(vs.begin());
  }
}

std::optional<SnapshotStore::Stored> SnapshotStore::read_latest(ProcessId pid) {
  std::vector<std::uint64_t> vs = versions(pid);
  for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
    const std::filesystem::path path = path_for(pid, *it);
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    const std::string raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    const auto* p = reinterpret_cast<const std::byte*>(raw.data());
    std::vector<std::byte> file(p, p + raw.size());
    // Validate the header + checksum.
    try {
      ByteReader r(file);
      if (r.u32() != kFileMagic) throw DecodeError("bad store magic");
      if (r.u32() != pid) throw DecodeError("wrong pid");
      const std::uint64_t version = r.u64();
      const std::uint64_t size = r.u64();
      const std::uint64_t sum = r.u64();
      if (r.remaining() != size) throw DecodeError("truncated snapshot file");
      std::vector<std::byte> payload(file.end() - static_cast<std::ptrdiff_t>(size),
                                     file.end());
      if (checksum(payload) != sum) throw DecodeError("checksum mismatch");
      return Stored{version, std::move(payload)};
    } catch (const DecodeError& e) {
      ++corrupt_skipped_;
      ADGC_WARN("snapshot store: skipping corrupt " << path.string() << ": " << e.what());
    }
  }
  return std::nullopt;
}

}  // namespace adgc
