// Graph summarization: SnapshotData → SummarizedGraph.
//
// Two interchangeable implementations:
//  * BfsSummarizer — one forward BFS per scion; simple, O(|scions|·|E|).
//  * SccSummarizer — Tarjan condensation + one bottom-up DP over the
//    condensation DAG with bitset stub sets; O(|E| + |V|·|stubs|/64).
// They must produce identical summaries (enforced by property tests); the
// ablation benchmark compares their cost on large snapshots.
#pragma once

#include <memory>
#include <string>

#include "src/snapshot/snapshot.h"

namespace adgc {

class Summarizer {
 public:
  virtual ~Summarizer() = default;
  virtual std::string name() const = 0;
  /// Non-const: implementations may keep memoization state across calls
  /// (the incremental summarizer does).
  virtual SummarizedGraph summarize(const SnapshotData& snap) = 0;
};

class BfsSummarizer final : public Summarizer {
 public:
  std::string name() const override { return "bfs"; }
  SummarizedGraph summarize(const SnapshotData& snap) override;
};

class SccSummarizer final : public Summarizer {
 public:
  std::string name() const override { return "scc"; }
  SummarizedGraph summarize(const SnapshotData& snap) override;
};

/// Incremental summarizer (§4: summarization "is performed, lazily and
/// incrementally, in each process, after a new object graph has been
/// serialized").
///
/// Remembers, per scion, the exact set of objects its forward traversal
/// visited. On the next snapshot only scions whose visited set intersects
/// the changed-object set (field edits, deletions; additions only become
/// reachable through a changed object) are re-traversed — sound because a
/// scion's StubsFrom depends exclusively on the fields of its visited
/// objects. Local.Reach is recomputed each time (one BFS); ScionsTo is an
/// inversion of StubsFrom.
class IncrementalSummarizer final : public Summarizer {
 public:
  std::string name() const override { return "incremental"; }
  SummarizedGraph summarize(const SnapshotData& snap) override;

  /// Scions re-traversed on the last call (ablation metric).
  std::size_t last_recomputed() const { return last_recomputed_; }
  std::size_t last_reused() const { return last_reused_; }

 private:
  struct Memo {
    std::vector<ObjectSeq> visited;  // sorted
    /// Every remote reference the traversal encountered, whether or not a
    /// stub-table entry existed for it at memo time — StubsFrom is derived
    /// per snapshot by intersecting with the stubs present *then*. Recording
    /// only present stubs is unsound: a stub appearing later changes no
    /// visited fingerprint, so the memo would be reused while missing it.
    std::vector<RefId> remote_refs;  // sorted, unique
  };

  // Compact fingerprint of one object's identity-relevant content.
  static std::uint64_t object_fingerprint(const SnapshotData::Obj& o);

  std::unordered_map<ObjectSeq, std::uint64_t> prev_objects_;  // seq → fingerprint
  std::unordered_map<RefId, Memo> memo_;
  std::size_t last_recomputed_ = 0;
  std::size_t last_reused_ = 0;
};

/// Sorts set vectors and fills the inverse relation (ScionsTo from
/// StubsFrom); shared tail of both summarizers.
void finalize_summary(SummarizedGraph& out);

}  // namespace adgc
