// Helpers shared by the summarizer implementations. Internal header.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/snapshot/snapshot.h"

namespace adgc::detail {

/// Index over snapshot objects (seq → dense index).
struct SnapshotIndex {
  std::unordered_map<ObjectSeq, std::size_t> obj_index;
  const SnapshotData* snap;

  explicit SnapshotIndex(const SnapshotData& s) : snap(&s) {
    obj_index.reserve(s.objects.size());
    for (std::size_t i = 0; i < s.objects.size(); ++i) {
      obj_index.emplace(s.objects[i].seq, i);
    }
  }
};

/// Objects reachable from `seeds` through local fields (dense bool vector).
std::vector<bool> snapshot_bfs(const SnapshotIndex& ix, const std::vector<ObjectSeq>& seeds);

/// Seeds scion/stub summary entries (ids, ICs, targets; relations empty).
void init_summary_entries(const SnapshotData& snap, SummarizedGraph& out);

}  // namespace adgc::detail
