#include "src/snapshot/snapshot.h"

#include <algorithm>

namespace adgc {

SnapshotData capture_snapshot(ProcessId pid, SimTime now, const Heap& heap,
                              const StubTable& stubs, const ScionTable& scions) {
  SnapshotData snap;
  snap.pid = pid;
  snap.taken_at = now;
  snap.roots.assign(heap.roots().begin(), heap.roots().end());

  snap.objects.reserve(heap.size());
  for (const auto& [seq, obj] : heap.objects()) {
    SnapshotData::Obj o;
    o.seq = seq;
    o.local_fields = obj.local_fields;
    o.remote_fields = obj.remote_fields;
    o.payload = obj.payload;
    snap.objects.push_back(std::move(o));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(snap.objects.begin(), snap.objects.end(),
            [](const auto& a, const auto& b) { return a.seq < b.seq; });

  snap.stubs.reserve(stubs.size());
  for (const auto& [ref, stub] : stubs) {
    snap.stubs.push_back({ref, stub.target, stub.ic});
  }
  snap.scions.reserve(scions.size());
  for (const auto& [ref, scion] : scions) {
    snap.scions.push_back({ref, scion.holder, scion.target, scion.ic});
  }
  return snap;
}

}  // namespace adgc
