#include "src/snapshot/snapshot.h"

#include <algorithm>

namespace adgc {

SnapshotData capture_snapshot(ProcessId pid, SimTime now, const Heap& heap,
                              const StubTable& stubs, const ScionTable& scions) {
  SnapshotData snap;
  snap.pid = pid;
  snap.taken_at = now;
  snap.roots.assign(heap.roots().begin(), heap.roots().end());

  snap.objects.reserve(heap.size());
  for (const auto& [seq, obj] : heap.objects()) {
    SnapshotData::Obj o;
    o.seq = seq;
    o.local_fields = obj.local_fields;
    o.remote_fields = obj.remote_fields;
    o.payload = obj.payload;
    snap.objects.push_back(std::move(o));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(snap.objects.begin(), snap.objects.end(),
            [](const auto& a, const auto& b) { return a.seq < b.seq; });

  snap.stubs.reserve(stubs.size());
  for (const auto& [ref, stub] : stubs) {
    snap.stubs.push_back({ref, stub.target, stub.ic});
  }
  snap.scions.reserve(scions.size());
  for (const auto& [ref, scion] : scions) {
    snap.scions.push_back({ref, scion.holder, scion.target, scion.ic});
  }
  return snap;
}

void restore_snapshot(const SnapshotData& snap, Heap& heap, StubTable& stubs,
                      ScionTable& scions, SimTime now) {
  for (const auto& o : snap.objects) {
    HeapObject obj;
    obj.seq = o.seq;
    obj.local_fields = o.local_fields;
    obj.remote_fields = o.remote_fields;
    obj.payload = o.payload;
    obj.last_access = now;
    heap.adopt(std::move(obj));
  }
  for (ObjectSeq root : snap.roots) heap.add_root(root);

  for (const auto& s : snap.stubs) {
    StubEntry& e = stubs.ensure(s.ref, s.target, now);
    e.ic = s.ic;
    e.holders = 0;           // recomputed from the heap below
    e.local_reach = true;    // conservative until the first LGC runs
  }
  // Holder counts are not serialized; they are derivable from the heap.
  for (const auto& [seq, obj] : heap.objects()) {
    (void)seq;
    for (RefId ref : obj.remote_fields) {
      if (StubEntry* e = stubs.find(ref)) ++e->holders;
    }
  }

  for (const auto& s : snap.scions) {
    ScionEntry& e = scions.ensure(s.ref, s.holder, s.target, now);
    e.ic = s.ic;
    e.confirmed = false;     // fresh grace window; holder will re-confirm
    e.created_at = now;
    e.last_ic_change = now;  // re-quarantine against in-flight detections
    e.target_root_reachable = true;
  }
}

}  // namespace adgc
