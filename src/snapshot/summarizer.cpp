#include "src/snapshot/summarizer.h"

#include <algorithm>
#include <vector>

#include "src/snapshot/summarizer_internal.h"

namespace adgc {

namespace detail {

std::vector<bool> snapshot_bfs(const SnapshotIndex& ix, const std::vector<ObjectSeq>& seeds) {
  std::vector<bool> seen(ix.snap->objects.size(), false);
  std::vector<std::size_t> stack;
  for (ObjectSeq s : seeds) {
    auto it = ix.obj_index.find(s);
    if (it != ix.obj_index.end() && !seen[it->second]) {
      seen[it->second] = true;
      stack.push_back(it->second);
    }
  }
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    for (ObjectSeq next : ix.snap->objects[cur].local_fields) {
      auto it = ix.obj_index.find(next);
      if (it != ix.obj_index.end() && !seen[it->second]) {
        seen[it->second] = true;
        stack.push_back(it->second);
      }
    }
  }
  return seen;
}

void init_summary_entries(const SnapshotData& snap, SummarizedGraph& out) {
  out.pid = snap.pid;
  out.taken_at = snap.taken_at;
  for (const auto& s : snap.scions) {
    ScionSummary sum;
    sum.ref = s.ref;
    sum.ic = s.ic;
    sum.holder = s.holder;
    sum.target = s.target;
    out.scions.emplace(s.ref, std::move(sum));
  }
  for (const auto& s : snap.stubs) {
    StubSummary sum;
    sum.ref = s.ref;
    sum.ic = s.ic;
    sum.target = s.target;
    out.stubs.emplace(s.ref, std::move(sum));
  }
}

}  // namespace detail

void finalize_summary(SummarizedGraph& out) {
  for (auto& [ref, scion] : out.scions) {
    auto& v = scion.stubs_from;
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  // Invert StubsFrom into ScionsTo.
  for (auto& [ref, stub] : out.stubs) stub.scions_to.clear();
  for (const auto& [sref, scion] : out.scions) {
    for (RefId stub_ref : scion.stubs_from) {
      auto it = out.stubs.find(stub_ref);
      if (it != out.stubs.end()) it->second.scions_to.push_back(sref);
    }
  }
  for (auto& [ref, stub] : out.stubs) {
    auto& v = stub.scions_to;
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
}

SummarizedGraph BfsSummarizer::summarize(const SnapshotData& snap) {
  SummarizedGraph out;
  detail::init_summary_entries(snap, out);
  detail::SnapshotIndex ix(snap);

  // Local.Reach: one BFS from the roots.
  const std::vector<bool> from_root = detail::snapshot_bfs(ix, snap.roots);
  for (std::size_t i = 0; i < snap.objects.size(); ++i) {
    if (!from_root[i]) continue;
    for (RefId ref : snap.objects[i].remote_fields) {
      auto it = out.stubs.find(ref);
      if (it != out.stubs.end()) it->second.local_reach = true;
    }
  }

  // StubsFrom: one BFS per scion.
  for (const auto& s : snap.scions) {
    auto& sum = out.scions.at(s.ref);
    const std::vector<bool> reach = detail::snapshot_bfs(ix, {s.target});
    for (std::size_t i = 0; i < snap.objects.size(); ++i) {
      if (!reach[i]) continue;
      for (RefId ref : snap.objects[i].remote_fields) {
        if (out.stubs.contains(ref)) sum.stubs_from.push_back(ref);
      }
    }
  }

  finalize_summary(out);
  return out;
}

}  // namespace adgc
