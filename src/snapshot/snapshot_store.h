// Persistent snapshot store.
//
// The paper's processes serialize their object graph snapshots to disk
// (§2.2: "each process stores a snapshot of its internal object graph on
// disk"); summarization then reads them back. This store implements that
// path: versioned snapshot files per process, bounded retention, checksum
// validation on read, and recovery of the latest usable snapshot after a
// restart.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "src/common/ids.h"

namespace adgc {

class SnapshotStore {
 public:
  /// Creates/opens a store rooted at `dir` (created if absent), keeping at
  /// most `retain` snapshot files per process.
  explicit SnapshotStore(std::filesystem::path dir, std::size_t retain = 2);

  /// Persists one serialized snapshot; prunes old versions past the
  /// retention count. Returns the file path.
  std::filesystem::path write(ProcessId pid, std::uint64_t version,
                              std::span<const std::byte> bytes);

  struct Stored {
    std::uint64_t version = 0;
    std::vector<std::byte> bytes;
  };

  /// Loads the newest snapshot of `pid` whose checksum validates; corrupt
  /// or truncated files are skipped (and reported via corrupt_skipped()).
  std::optional<Stored> read_latest(ProcessId pid);

  /// Versions currently on disk for `pid`, ascending.
  std::vector<std::uint64_t> versions(ProcessId pid) const;

  std::size_t corrupt_skipped() const { return corrupt_skipped_; }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path path_for(ProcessId pid, std::uint64_t version) const;
  void prune(ProcessId pid);

  std::filesystem::path dir_;
  std::size_t retain_;
  std::size_t corrupt_skipped_ = 0;
};

}  // namespace adgc
