// Persistent snapshot store.
//
// The paper's processes serialize their object graph snapshots to disk
// (§2.2: "each process stores a snapshot of its internal object graph on
// disk"); summarization then reads them back. This store implements that
// path: versioned snapshot files per process, bounded retention, checksum
// validation on read, and recovery of the latest usable snapshot after a
// restart.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/common/ids.h"

namespace adgc {

class SnapshotStore {
 public:
  /// Creates/opens a store rooted at `dir` (created if absent), keeping at
  /// most `retain` snapshot files per process.
  explicit SnapshotStore(std::filesystem::path dir, std::size_t retain = 2);

  /// Persists one serialized snapshot; prunes old versions past the
  /// retention count. Returns the file path. Throws std::runtime_error when
  /// the write or the atomic rename-publish fails; a failed publish skips
  /// pruning, so the previously retained versions stay readable.
  std::filesystem::path write(ProcessId pid, std::uint64_t version,
                              std::span<const std::byte> bytes);

  struct Stored {
    std::uint64_t version = 0;
    std::vector<std::byte> bytes;
  };

  /// Loads the newest snapshot of `pid` whose checksum validates; corrupt
  /// or truncated files are skipped (and reported via corrupt_skipped()).
  std::optional<Stored> read_latest(ProcessId pid);

  /// Versions this store knows for `pid`, ascending. The directory is
  /// scanned once, lazily, on first use; afterwards write()/prune() maintain
  /// the cached list so the hot path never re-lists the directory. Files
  /// added behind the store's back after that first scan are not observed
  /// (open a fresh SnapshotStore to re-scan).
  std::vector<std::uint64_t> versions(ProcessId pid) const;

  std::size_t corrupt_skipped() const { return corrupt_skipped_; }
  std::size_t malformed_skipped() const { return malformed_skipped_; }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path path_for(ProcessId pid, std::uint64_t version) const;
  void prune(ProcessId pid);
  /// One-time directory scan populating the version cache.
  void ensure_scanned() const;

  std::filesystem::path dir_;
  std::size_t retain_;
  std::size_t corrupt_skipped_ = 0;
  /// Directory entries that look like snapshots but fail name validation
  /// (e.g. "snapshot_p1_vgarbage.bin"); skipped, never aliased to a version.
  mutable std::size_t malformed_skipped_ = 0;
  mutable bool scanned_ = false;
  mutable std::map<ProcessId, std::vector<std::uint64_t>> cache_;  // ascending
};

}  // namespace adgc
