// Asynchronous snapshot pipeline: serialize → store-write → summarize off
// the mutator path.
//
// The paper's detector is built to tolerate stale views (§4: summarization
// is "performed, lazily and incrementally"; the IC rules reject anything the
// mutator has touched since the snapshot), so nothing but the capture itself
// has to run on the actor thread. The pipeline exploits that: the Process
// captures SnapshotData synchronously, hands it over, and keeps serving RMIs
// with the *previous* summary until the new one publishes back through an
// Env completion event.
//
// Execution model per Env:
//   * real_time() Envs (ThreadedRuntime / NodeRuntime): one lazily-started
//     background worker per process runs the stages; the completion hops
//     back to the actor thread via Env::post(). Single-in-flight with
//     coalescing — a request while one is in flight marks `pending`, and the
//     owner re-captures when the publish lands. In-flight work dies with
//     crash(): destroying the pipeline poisons the shared control block, so
//     a completion already sitting in the actor queue becomes a no-op.
//   * the deterministic simulator: the stages run inline at request time
//     (there is no real concurrency to model) and only the *publication* is
//     deferred, as a scheduled self-event after
//     ProcessConfig::snapshot_pipeline_latency_us. Traces stay a pure
//     function of (config, seed), and the model checker sees the publish
//     timer as an ordinary pending event — a new choice point where a
//     detection races a summary publish.
//
// The synchronous path (Process::take_snapshot) also funnels through
// run_now(), so both paths share one implementation of the stages and the
// stage histograms/trace events.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/config.h"
#include "src/net/transport.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/snapshot_store.h"
#include "src/snapshot/summarizer.h"

namespace adgc {

class SnapshotPipeline {
 public:
  /// What one pipeline pass produced. `summary` is null only if a stage
  /// threw (serializer bug); `persisted` is false when the store write or
  /// its atomic rename-publish failed (surfaced via the
  /// snapshot_persist_failures counter and the kSnapshotPersist trace arg —
  /// the summary still publishes, the detector does not need the disk).
  struct Stages {
    std::uint64_t version = 0;
    SimTime requested_at = 0;  // Env clock at capture
    std::shared_ptr<const SummarizedGraph> summary;
    bool persisted = true;
    std::uint64_t bytes = 0;  // serialized size (0 when serialization is off)
  };

  /// Publish hop, invoked on the owning process's execution context.
  using PublishFn = std::function<void(Stages)>;

  SnapshotPipeline(ProcessId pid, const ProcessConfig& cfg, Env& env,
                   Serializer& serializer, Summarizer& summarizer,
                   SnapshotStore* store, PublishFn publish);
  /// Poisons the control block and joins the worker; a completion already
  /// queued on the actor thread then no-ops. Safe to run mid-flight (crash).
  ~SnapshotPipeline();

  SnapshotPipeline(const SnapshotPipeline&) = delete;
  SnapshotPipeline& operator=(const SnapshotPipeline&) = delete;

  /// True from submit() until the publish hop ran (or was cancelled).
  bool in_flight() const;

  /// Remembers that a snapshot was requested while one is in flight; the
  /// owner consumes this on publish and re-captures.
  void mark_pending();
  bool consume_pending();

  /// Hands one captured snapshot to the pipeline. Must not be called while
  /// in_flight() — coalesce via mark_pending() instead.
  void submit(SnapshotData snap, std::uint64_t version, SimTime requested_at);

  /// Runs the stages synchronously on the caller's thread (the legacy
  /// take_snapshot path) and returns the result for immediate adoption.
  Stages run_now(SnapshotData snap, std::uint64_t version, SimTime requested_at);

  /// Discards any in-flight work: waits (real_time Envs) for the worker to
  /// finish its current job, drops an unstarted one, clears `pending`, and
  /// invalidates not-yet-delivered completions. Called by the synchronous
  /// snapshot path so stage state (summarizer memo, store) is never touched
  /// from two threads.
  void cancel_in_flight();

 private:
  /// State shared with queued completion closures and the worker. The
  /// pipeline owner sets `dead` on destruction (on the actor thread), which
  /// is exactly where completions run — so a completion observing
  /// dead==false may safely touch the pipeline object.
  struct Ctl {
    std::mutex mu;
    std::condition_variable cv;
    bool dead = false;
    bool busy = false;     // submit() .. publish/cancel
    bool working = false;  // worker executing stages right now
    bool pending = false;  // coalesced request
    bool has_job = false;  // job handed over, worker not started on it yet
    std::uint64_t gen = 0;        // submissions
    std::uint64_t cancelled = 0;  // completions at or below this are dropped
    SnapshotData job_snap;
    std::uint64_t job_version = 0;
    SimTime job_requested_at = 0;
  };

  void worker_loop();
  void finish(Stages s, std::uint64_t gen);  // publish hop body (actor thread)

  ProcessId pid_;
  const ProcessConfig& cfg_;
  Env& env_;
  Serializer& serializer_;
  Summarizer& summarizer_;
  SnapshotStore* store_;  // null when persistence is off
  PublishFn publish_;
  std::shared_ptr<Ctl> ctl_;
  std::thread worker_;  // lazily started, real_time Envs only
};

}  // namespace adgc
