// SCC-condensation summarizer.
//
// Tarjan's algorithm emits strongly connected components sinks-first
// (reverse topological order of the condensation), so a single pass over
// SCCs in emission order can union successor stub sets into each component:
// by the time component c is processed every successor has a complete set.
// Stub sets are dense bitsets; the per-scion answer is the bitset of the
// scion target's component.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/snapshot/summarizer.h"
#include "src/snapshot/summarizer_internal.h"

namespace adgc {

SummarizedGraph SccSummarizer::summarize(const SnapshotData& snap) {
  SummarizedGraph out;
  detail::init_summary_entries(snap, out);
  detail::SnapshotIndex ix(snap);
  const std::size_t n = snap.objects.size();

  // Resolved adjacency as dense indices (skip dangling references).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    adj[i].reserve(snap.objects[i].local_fields.size());
    for (ObjectSeq next : snap.objects[i].local_fields) {
      auto it = ix.obj_index.find(next);
      if (it != ix.obj_index.end()) adj[i].push_back(static_cast<std::uint32_t>(it->second));
    }
  }

  // --- Tarjan SCC, iterative ---
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_of(n, kUnvisited);
  std::vector<std::size_t> tarjan_stack;
  std::uint32_t next_index = 0;
  std::uint32_t num_sccs = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  std::vector<Frame> call_stack;

  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    call_stack.push_back({start, 0});
    index[start] = low[start] = next_index++;
    tarjan_stack.push_back(start);
    on_stack[start] = true;
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.edge < adj[f.node].size()) {
        const std::uint32_t next = adj[f.node][f.edge++];
        if (index[next] == kUnvisited) {
          index[next] = low[next] = next_index++;
          tarjan_stack.push_back(next);
          on_stack[next] = true;
          call_stack.push_back({next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], index[next]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          while (true) {
            const std::size_t w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[w] = false;
            scc_of[w] = num_sccs;
            if (w == f.node) break;
          }
          ++num_sccs;
        }
        const std::size_t done = f.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          Frame& parent = call_stack.back();
          low[parent.node] = std::min(low[parent.node], low[done]);
        }
      }
    }
  }

  // --- per-SCC stub bitsets, unioned bottom-up ---
  std::vector<RefId> stub_ids;
  stub_ids.reserve(snap.stubs.size());
  for (const auto& s : snap.stubs) stub_ids.push_back(s.ref);
  std::sort(stub_ids.begin(), stub_ids.end());
  stub_ids.erase(std::unique(stub_ids.begin(), stub_ids.end()), stub_ids.end());
  std::unordered_map<RefId, std::size_t> stub_index;
  stub_index.reserve(stub_ids.size());
  for (std::size_t i = 0; i < stub_ids.size(); ++i) stub_index.emplace(stub_ids[i], i);

  const std::size_t words = (stub_ids.size() + 63) / 64;
  std::vector<std::uint64_t> sets(static_cast<std::size_t>(num_sccs) * words, 0);
  auto set_of = [&](std::uint32_t scc) {
    return sets.data() + static_cast<std::size_t>(scc) * words;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (RefId ref : snap.objects[i].remote_fields) {
      auto it = stub_index.find(ref);
      if (it == stub_index.end()) continue;
      std::uint64_t* s = set_of(scc_of[i]);
      s[it->second / 64] |= (std::uint64_t{1} << (it->second % 64));
    }
  }

  // Cross-SCC successor edges; successors always have smaller SCC ids
  // (emitted earlier), so one pass in increasing id completes the sets.
  std::vector<std::vector<std::uint32_t>> scc_succs(num_sccs);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::uint32_t v : adj[u]) {
      if (scc_of[u] != scc_of[v]) scc_succs[scc_of[u]].push_back(scc_of[v]);
    }
  }
  for (std::uint32_t c = 0; c < num_sccs; ++c) {
    auto& succs = scc_succs[c];
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    std::uint64_t* mine = set_of(c);
    for (std::uint32_t sv : succs) {
      const std::uint64_t* theirs = set_of(sv);
      for (std::size_t w = 0; w < words; ++w) mine[w] |= theirs[w];
    }
  }

  for (const auto& s : snap.scions) {
    auto it = ix.obj_index.find(s.target);
    if (it == ix.obj_index.end()) continue;  // dangling scion: empty relation
    const std::uint64_t* bits = set_of(scc_of[it->second]);
    auto& sum = out.scions.at(s.ref);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        word &= word - 1;
        sum.stubs_from.push_back(stub_ids[w * 64 + static_cast<std::size_t>(bit)]);
      }
    }
  }

  const std::vector<bool> from_root = detail::snapshot_bfs(ix, snap.roots);
  for (std::size_t i = 0; i < n; ++i) {
    if (!from_root[i]) continue;
    for (RefId ref : snap.objects[i].remote_fields) {
      auto it = out.stubs.find(ref);
      if (it != out.stubs.end()) it->second.local_reach = true;
    }
  }

  finalize_summary(out);
  return out;
}

}  // namespace adgc
