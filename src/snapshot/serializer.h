// Snapshot serializers.
//
// The paper's evaluation hinges on serializer quality: Rotor's reflective,
// allocation-heavy serializer took ~26 s for a 10k-object graph, while
// production .NET took 250-350 ms (~100×). We model both ends:
//
//  * NaiveSerializer — field-by-field textual encoding with per-value
//    string formatting and hex-encoded payloads (the Rotor stand-in);
//  * BinarySerializer — length-prefixed little-endian bulk encoding
//    (the production .NET stand-in).
//
// Both are lossless; round-trip equality is enforced by tests, and the
// serialization benchmark (bench_serialization) reproduces the paper's
// comparison shape.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"  // serializers throw DecodeError
#include "src/snapshot/snapshot.h"

namespace adgc {

class Serializer {
 public:
  virtual ~Serializer() = default;
  virtual std::string name() const = 0;
  virtual std::vector<std::byte> serialize(const SnapshotData& snap) const = 0;
  virtual SnapshotData deserialize(std::span<const std::byte> bytes) const = 0;
};

/// Slow, reflective-style text serializer (models Rotor).
class NaiveSerializer final : public Serializer {
 public:
  std::string name() const override { return "naive"; }
  std::vector<std::byte> serialize(const SnapshotData& snap) const override;
  SnapshotData deserialize(std::span<const std::byte> bytes) const override;
};

/// Fast bulk binary serializer (models production .NET).
class BinarySerializer final : public Serializer {
 public:
  std::string name() const override { return "binary"; }
  std::vector<std::byte> serialize(const SnapshotData& snap) const override;
  SnapshotData deserialize(std::span<const std::byte> bytes) const override;
};

}  // namespace adgc
