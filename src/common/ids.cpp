#include "src/common/ids.h"

#include <sstream>

namespace adgc {

std::string to_string(ObjectId id) {
  std::ostringstream os;
  os << "obj(" << id.owner << ":" << id.seq << ")";
  return os.str();
}

std::string to_string(DetectionId id) {
  std::ostringstream os;
  os << "det(" << id.initiator << ":" << id.seq << ")";
  return os.str();
}

std::string ref_to_string(RefId id) {
  if (id == kNoRef) return "ref(none)";
  std::ostringstream os;
  os << "ref(" << ref_id_creator(id) << ":" << (id & ((RefId{1} << 40) - 1)) << ")";
  return os.str();
}

}  // namespace adgc
