#include "src/common/bytes.h"

namespace adgc {

namespace {
// Length prefixes above this are treated as corruption rather than honest
// payloads; keeps fuzzed/truncated input from triggering huge allocations.
constexpr std::uint32_t kMaxLen = 1u << 30;
}  // namespace

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void ByteWriter::bytes(std::span<const std::byte> b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b.data(), b.size());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(buf_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (n > kMaxLen) throw DecodeError("string length prefix too large");
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::byte> ByteReader::bytes() {
  const std::uint32_t n = u32();
  if (n > kMaxLen) throw DecodeError("blob length prefix too large");
  need(n);
  std::vector<std::byte> b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                           buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace adgc
