// Little-endian binary buffer reader/writer used by the wire protocol and
// by the binary snapshot serializer.
//
// The writer appends into a growable std::vector<std::byte>; the reader is a
// non-owning view with bounds checking. Decoding failures throw
// adgc::DecodeError: the simulated network may corrupt nothing, but tests
// feed truncated buffers on purpose.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"

namespace adgc {

/// Thrown when decoding runs past the end of a buffer or reads a value that
/// violates a protocol invariant (e.g. absurd length prefix).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Takes ownership of `reuse` as the backing buffer (cleared, capacity
  /// kept). Lets an arena hand out pre-sized buffers so a batch encode does
  /// not pay incremental reallocation.
  explicit ByteWriter(std::vector<std::byte> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void object_id(ObjectId id) {
    u32(id.owner);
    u64(id.seq);
  }

  void detection_id(DetectionId id) {
    u32(id.initiator);
    u64(id.seq);
  }

  /// Length-prefixed string (u32 length).
  void str(std::string_view s);

  /// Length-prefixed blob (u32 length).
  void bytes(std::span<const std::byte> b);

  /// Raw append, no length prefix. resize+memcpy rather than a ranged
  /// insert: GCC 12 at -O3 flags the insert path with a spurious
  /// -Wstringop-overflow, which would break -Werror builds.
  void raw(const void* data, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  /// Overwrites 4 already-written bytes at `offset` — back-patching for
  /// length/count prefixes whose value is only known after the body is
  /// serialized (the batch encoder's nested-length framing).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    if (offset + sizeof v > buf_.size()) {
      throw std::logic_error("patch_u32 past end of buffer");
    }
    std::memcpy(buf_.data() + offset, &v, sizeof v);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean() { return u8() != 0; }

  ObjectId object_id() {
    ObjectId id;
    id.owner = u32();
    id.seq = u64();
    return id;
  }

  DetectionId detection_id() {
    DetectionId id;
    id.initiator = u32();
    id.seq = u64();
    return id;
  }

  std::string str();
  std::vector<std::byte> bytes();

  /// Reads `n` raw bytes (no length prefix) — the counterpart of
  /// ByteWriter::raw, used by the batch decoder to slice out nested items.
  std::vector<std::byte> raw(std::size_t n) {
    need(n);
    std::vector<std::byte> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Number of bytes not yet consumed.
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

  /// Requires that the whole buffer was consumed; guards against protocol
  /// version skew going unnoticed.
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after decode");
  }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n) throw DecodeError("buffer underrun");
  }

  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace adgc
