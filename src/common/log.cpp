#include "src/common/log.h"

#include <atomic>
#include <cstdio>

namespace adgc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

std::mutex Log::mu_;

void Log::set_level(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::write(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", to_string(lvl), msg.c_str());
}

const char* to_string(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace adgc
