// Small sample-statistics accumulator for benches and reports:
// count/min/max/mean/stddev and exact percentiles (keeps all samples).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adgc {

class SampleStats {
 public:
  void add(double v);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;

  /// "n=12 mean=4.2 p50=4.0 p95=7.9 max=8.8" (units are the caller's).
  std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace adgc
