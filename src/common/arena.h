// Buffer arena backing the batch encode path.
//
// A flush-oriented pool of byte buffers: acquire() hands out a cleared
// vector whose capacity is pre-reserved to the high-water mark of past
// batches, so serializing a whole batch into one contiguous buffer performs
// (amortized) zero reallocations; release() returns a buffer — capacity
// intact — for reuse when a batch is discarded instead of sent (peer crash,
// drain of an empty queue). Buffers that leave through the transport are
// simply not returned; the arena then only provides the sizing hint, which
// is still the bulk of the win over a default-constructed writer.
//
// Single-threaded by design: one arena per Process, used only from that
// process's execution context (the Process is an actor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adgc {

class BufferArena {
 public:
  /// `initial_reserve` seeds the capacity hint before any batch has been
  /// observed; `max_pooled` bounds the free list (crash bursts can return
  /// many buffers at once — keep a few, drop the rest).
  explicit BufferArena(std::size_t initial_reserve = 1024,
                       std::size_t max_pooled = 8)
      : reserve_hint_(initial_reserve), max_pooled_(max_pooled) {}

  /// A cleared buffer with capacity >= the largest buffer seen so far.
  std::vector<std::byte> acquire() {
    ++acquires_;
    if (!free_.empty()) {
      ++reuses_;
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();
      if (buf.capacity() < reserve_hint_) buf.reserve(reserve_hint_);
      return buf;
    }
    std::vector<std::byte> buf;
    buf.reserve(reserve_hint_);
    return buf;
  }

  /// Returns a buffer to the pool and folds its capacity into the sizing
  /// hint. Call with the buffer of an abandoned batch; buffers handed to the
  /// transport never come back, which is fine.
  void release(std::vector<std::byte> buf) {
    note_capacity(buf.capacity());
    if (free_.size() < max_pooled_) free_.push_back(std::move(buf));
  }

  /// Folds an observed final batch size into the hint without pooling the
  /// buffer (the sent-batch path: the buffer itself is gone downstream).
  void note_capacity(std::size_t cap) {
    if (cap > reserve_hint_) reserve_hint_ = cap;
  }

  std::size_t reserve_hint() const { return reserve_hint_; }
  std::size_t pooled() const { return free_.size(); }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::vector<std::byte>> free_;
  std::size_t reserve_hint_;
  std::size_t max_pooled_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace adgc
