#include "src/common/config.h"

#include <sstream>

namespace adgc {

std::string RuntimeConfig::describe() const {
  std::ostringstream os;
  os << "net{latency=" << net.min_latency_us << "+exp(" << net.mean_latency_us
     << ")us, loss=" << net.loss_probability << ", dup=" << net.duplicate_probability
     << ", fifo=" << (net.fifo_links ? "y" : "n") << "} "
     << "proc{lgc=" << proc.lgc_period_us << "us, snap=" << proc.snapshot_period_us
     << "us, scan=" << proc.dcda_scan_period_us
     << "us, quarantine=" << proc.candidate_quarantine_us
     << "us, dgc=" << (proc.dgc_enabled ? "on" : "off")
     << ", dcda=" << (proc.dcda_enabled ? "on" : "off")
     << ", adaptive=" << (proc.adaptive_faults ? "on" : "off")
     << ", batch=" << (proc.batching_enabled ? "on" : "off");
  if (proc.batching_enabled) {
    os << "(" << proc.batch_max_msgs << "msg/" << proc.batch_max_bytes << "B/"
       << proc.batch_flush_us << "us)";
  }
  os << "} seed=" << seed;
  return os.str();
}

}  // namespace adgc
