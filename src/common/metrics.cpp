#include "src/common/metrics.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

namespace adgc {

namespace {

// Single table driving merge/report/reset so a new counter only needs one
// entry here besides the struct field.
struct Field {
  const char* name;
  Counter Metrics::* member;
};

struct HistField {
  const char* name;
  Histogram Metrics::* member;
};

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      {"invocations_sent", &Metrics::invocations_sent},
      {"invocations_received", &Metrics::invocations_received},
      {"invocations_dropped", &Metrics::invocations_dropped},
      {"replies_sent", &Metrics::replies_sent},
      {"replies_received", &Metrics::replies_received},
      {"refs_exported", &Metrics::refs_exported},
      {"refs_imported", &Metrics::refs_imported},
      {"stubs_created", &Metrics::stubs_created},
      {"stubs_deleted", &Metrics::stubs_deleted},
      {"scions_created", &Metrics::scions_created},
      {"scions_deleted_acyclic", &Metrics::scions_deleted_acyclic},
      {"scions_deleted_cyclic", &Metrics::scions_deleted_cyclic},
      {"new_set_stubs_sent", &Metrics::new_set_stubs_sent},
      {"new_set_stubs_received", &Metrics::new_set_stubs_received},
      {"add_scion_sent", &Metrics::add_scion_sent},
      {"add_scion_retries", &Metrics::add_scion_retries},
      {"add_scion_abandoned", &Metrics::add_scion_abandoned},
      {"lgc_runs", &Metrics::lgc_runs},
      {"objects_allocated", &Metrics::objects_allocated},
      {"objects_reclaimed", &Metrics::objects_reclaimed},
      {"snapshots_taken", &Metrics::snapshots_taken},
      {"snapshot_bytes", &Metrics::snapshot_bytes},
      {"summarizations", &Metrics::summarizations},
      {"snapshots_coalesced", &Metrics::snapshots_coalesced},
      {"snapshot_persist_failures", &Metrics::snapshot_persist_failures},
      {"detections_started", &Metrics::detections_started},
      {"detections_cycle_found", &Metrics::detections_cycle_found},
      {"detections_aborted_ic", &Metrics::detections_aborted_ic},
      {"detections_aborted_local", &Metrics::detections_aborted_local},
      {"detections_dropped_no_scion", &Metrics::detections_dropped_no_scion},
      {"detections_dropped_dup", &Metrics::detections_dropped_dup},
      {"cdms_deduped", &Metrics::cdms_deduped},
      {"detections_timed_out", &Metrics::detections_timed_out},
      {"detections_aborted_crash", &Metrics::detections_aborted_crash},
      {"cdms_sent", &Metrics::cdms_sent},
      {"cdms_received", &Metrics::cdms_received},
      {"cdm_bytes", &Metrics::cdm_bytes},
      {"backtrace_requests", &Metrics::backtrace_requests},
      {"backtrace_replies", &Metrics::backtrace_replies},
      {"backtrace_cycles_found", &Metrics::backtrace_cycles_found},
      {"gt_epochs_started", &Metrics::gt_epochs_started},
      {"gt_marks_sent", &Metrics::gt_marks_sent},
      {"gt_status_msgs", &Metrics::gt_status_msgs},
      {"gt_scions_deleted", &Metrics::gt_scions_deleted},
      {"messages_sent", &Metrics::messages_sent},
      {"messages_delivered", &Metrics::messages_delivered},
      {"messages_lost", &Metrics::messages_lost},
      {"messages_duplicated", &Metrics::messages_duplicated},
      {"bytes_sent", &Metrics::bytes_sent},
      {"peer_suspect_transitions", &Metrics::peer_suspect_transitions},
      {"cdms_shed", &Metrics::cdms_shed},
      {"new_set_stubs_shed", &Metrics::new_set_stubs_shed},
      {"new_set_stubs_deferred", &Metrics::new_set_stubs_deferred},
      {"detections_deferred_backoff", &Metrics::detections_deferred_backoff},
      {"candidates_deprioritized", &Metrics::candidates_deprioritized},
      {"peers_evicted", &Metrics::peers_evicted},
      {"eviction_scions_dropped", &Metrics::eviction_scions_dropped},
      {"eviction_stubs_retired", &Metrics::eviction_stubs_retired},
      {"detections_aborted_eviction", &Metrics::detections_aborted_eviction},
      {"eviction_nacks_sent", &Metrics::eviction_nacks_sent},
      {"eviction_nacks_received", &Metrics::eviction_nacks_received},
      {"messages_rejected_evicted", &Metrics::messages_rejected_evicted},
      {"nss_solicits_sent", &Metrics::nss_solicits_sent},
      {"peer_health_slots", &Metrics::peer_health_slots},
      {"peer_health_slots_pruned", &Metrics::peer_health_slots_pruned},
      {"batches_sent", &Metrics::batches_sent},
      {"batch_singletons", &Metrics::batch_singletons},
      {"batched_messages", &Metrics::batched_messages},
      {"batch_flush_size", &Metrics::batch_flush_size},
      {"batch_flush_count", &Metrics::batch_flush_count},
      {"batch_flush_deadline", &Metrics::batch_flush_deadline},
      {"batch_flush_priority", &Metrics::batch_flush_priority},
      {"batch_flush_burst", &Metrics::batch_flush_burst},
      {"batch_flush_drain", &Metrics::batch_flush_drain},
      {"batch_bytes_saved", &Metrics::batch_bytes_saved},
      {"batches_received", &Metrics::batches_received},
      {"batch_messages_received", &Metrics::batch_messages_received},
      {"batches_poisoned", &Metrics::batches_poisoned},
      {"arena_acquires", &Metrics::arena_acquires},
      {"arena_reuses", &Metrics::arena_reuses},
      {"tcp_connects", &Metrics::tcp_connects},
      {"tcp_accepts", &Metrics::tcp_accepts},
      {"tcp_disconnects", &Metrics::tcp_disconnects},
      {"tcp_reconnect_backoffs", &Metrics::tcp_reconnect_backoffs},
      {"tcp_frames_sent", &Metrics::tcp_frames_sent},
      {"tcp_frames_received", &Metrics::tcp_frames_received},
      {"tcp_frames_rejected", &Metrics::tcp_frames_rejected},
      {"tcp_hello_sent", &Metrics::tcp_hello_sent},
      {"tcp_hello_received", &Metrics::tcp_hello_received},
      {"process_crashes", &Metrics::process_crashes},
      {"process_restarts", &Metrics::process_restarts},
      {"restarts_recovered", &Metrics::restarts_recovered},
      {"messages_dropped_crashed", &Metrics::messages_dropped_crashed},
      {"messages_stale_incarnation", &Metrics::messages_stale_incarnation},
  };
  return kFields;
}

/// The counter table in sorted name order — report() and the Prometheus
/// exposition must be deterministic regardless of declaration order.
const std::vector<Field>& sorted_fields() {
  static const std::vector<Field> kSorted = [] {
    std::vector<Field> v = fields();
    std::sort(v.begin(), v.end(), [](const Field& a, const Field& b) {
      return std::strcmp(a.name, b.name) < 0;
    });
    return v;
  }();
  return kSorted;
}

const std::vector<HistField>& hist_fields() {
  static const std::vector<HistField> kFields = [] {
    std::vector<HistField> v = {
        {"batch_flush_msgs", &Metrics::batch_flush_msgs},
        {"detection_lifetime_us", &Metrics::detection_lifetime_us},
        {"lgc_pause_us", &Metrics::lgc_pause_us},
        {"rmi_rtt_us", &Metrics::rmi_rtt_us},
        {"snapshot_capture_us", &Metrics::snapshot_capture_us},
        {"snapshot_persist_us", &Metrics::snapshot_persist_us},
        {"snapshot_summarize_us", &Metrics::snapshot_summarize_us},
        {"tcp_writeq_depth", &Metrics::tcp_writeq_depth},
    };
    std::sort(v.begin(), v.end(), [](const HistField& a, const HistField& b) {
      return std::strcmp(a.name, b.name) < 0;
    });
    return v;
  }();
  return kFields;
}

}  // namespace

void Metrics::merge(const Metrics& other) {
  for (const auto& f : fields()) {
    (this->*f.member).add((other.*f.member).get());
  }
  for (const auto& f : hist_fields()) {
    (this->*f.member).merge(other.*f.member);
  }
}

std::string Metrics::report(const std::string& prefix) const {
  std::ostringstream os;
  for (const auto& f : sorted_fields()) {
    const std::uint64_t v = (this->*f.member).get();
    if (v != 0) os << prefix << f.name << " = " << v << "\n";
  }
  for (const auto& f : hist_fields()) {
    const Histogram& h = this->*f.member;
    const std::uint64_t n = h.count();
    if (n == 0) continue;
    os << prefix << f.name << ": count=" << n << " p50~" << h.quantile(0.5)
       << " p99~" << h.quantile(0.99) << " mean=" << h.sum() / n << "\n";
  }
  return os.str();
}

void Metrics::reset() {
  for (const auto& f : fields()) (this->*f.member).reset();
  for (const auto& f : hist_fields()) (this->*f.member).reset();
}

void Metrics::for_each_counter(
    const std::function<void(const char*, std::uint64_t)>& fn) const {
  for (const auto& f : sorted_fields()) fn(f.name, (this->*f.member).get());
}

void Metrics::for_each_histogram(
    const std::function<void(const char*, const Histogram&)>& fn) const {
  for (const auto& f : hist_fields()) fn(f.name, this->*f.member);
}

}  // namespace adgc
