// Deterministic pseudo-random source.
//
// Everything stochastic in the library (network fault injection, workload
// generation, heuristics jitter) draws from an explicitly seeded Rng so that
// every test and benchmark run is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>

namespace adgc {

/// SplitMix64-seeded xoshiro-style generator wrapped with convenience
/// distributions. Cheap to copy; forkable for independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent stream; deterministic given this stream's state.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace adgc
