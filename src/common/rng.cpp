#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

namespace adgc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection-free enough for simulation purposes: use 128-bit
  // multiply-shift which has negligible bias for bounds << 2^64.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Avoid log(0).
  u = std::max(u, 1e-18);
  return -mean * std::log(u);
}

Rng Rng::fork() {
  Rng child(next_u64());
  return child;
}

}  // namespace adgc
