// Tunables for the runtime, the collectors and the simulated network.
//
// Times are in simulated microseconds (the deterministic simulator) or real
// microseconds (the threaded runtime); both runtimes interpret the same
// config.
#pragma once

#include <cstdint>
#include <string>

namespace adgc {

using SimTime = std::uint64_t;  // microseconds

/// Fault-injection and latency model of the network.
struct NetworkConfig {
  /// Mean one-way latency (exponentially distributed around this mean).
  SimTime mean_latency_us = 500;
  /// Fixed minimum latency added to every message.
  SimTime min_latency_us = 50;
  /// Probability a message is silently dropped.
  double loss_probability = 0.0;
  /// Probability a delivered message is delivered twice.
  double duplicate_probability = 0.0;
  /// When true, per-link FIFO order is preserved; when false, each message
  /// gets an independent latency draw and may overtake earlier ones.
  bool fifo_links = false;
};

/// Per-process collector scheduling and DCDA policy.
struct ProcessConfig {
  // --- acyclic DGC ---
  /// Arms the periodic LGC/snapshot/scan timers at start(). The model
  /// checker disables this entirely: its Explorer schedules every collector
  /// run as an explicit decision, and even a parked timer would jump the
  /// clock (and thus every grace/expiry guard) when executed.
  bool periodic_collectors_enabled = true;
  /// Period between local GC runs (each run also emits NewSetStubs).
  SimTime lgc_period_us = 20'000;
  /// AddScion handshake retry interval (message-loss tolerance).
  SimTime add_scion_retry_us = 5'000;
  /// Max AddScion retries before the export is abandoned (test hook; in
  /// production this would page an operator — losing the export leaks,
  /// never corrupts).
  int add_scion_max_retries = 20;

  // --- adaptive degradation (per-peer health, backoff, load shedding) ---
  /// Master switch. When off, every retry uses its fixed interval, no peer
  /// is ever suspected and nothing is shed — the pre-adaptive baseline the
  /// chaos harness compares against.
  bool adaptive_faults = true;
  /// Cap on exponentially backed-off retry delays (AddScion re-sends and
  /// NewSetStubs deferral to suspected peers). The base of each series is
  /// its fixed interval (`add_scion_retry_us`, `lgc_period_us`).
  SimTime backoff_cap_us = 200'000;
  /// Cap on the per-candidate detection re-launch backoff (base is
  /// `dcda_scan_period_us`, doubled per consecutive timeout).
  SimTime detection_backoff_cap_us = 4'000'000;
  /// EWMA smoothing factor for the per-peer ack/reply latency estimate.
  double health_ewma_alpha = 0.2;
  /// A peer is suspected after this many retry timers fired unanswered...
  std::uint32_t suspect_after_failures = 3;
  /// ...or, phi-accrual style, when it has been silent for more than
  /// `suspect_phi` × smoothed-RTT while messages to it are outstanding.
  double suspect_phi = 16.0;
  /// Lower bound on the RTT used by the accrual test (guards against a few
  /// lucky fast samples making the detector hair-triggered).
  SimTime suspect_rtt_floor_us = 2'000;
  /// Bound on the sender-side outgoing window per peer (messages sent since
  /// the peer was last heard from). Above it, CDMs to that peer are shed;
  /// above twice it, NewSetStubs are too. Invocations, replies and the
  /// AddScion handshake are never shed. 0 disables shedding.
  std::uint32_t peer_outstanding_limit = 128;

  // --- permanent-failure eviction ---
  /// Escalates sustained suspicion into committed death: a peer that has
  /// been continuously suspected — or that holds scions here and has been
  /// silent — for this long is evicted (its scions dropped, stubs toward it
  /// retired, detections crossing it aborted, transport/batcher state
  /// purged) and tombstoned by incarnation. Must sit well above the longest
  /// partition the deployment should ride out: a false positive degrades to
  /// a forced crash/restart of the accused peer, never to a dangling
  /// reference, but restarts are not free. 0 disables eviction entirely.
  SimTime peer_death_timeout_us = 0;
  /// Prunes peer-health slots with no send/hear activity for this long (and
  /// not currently suspected), bounding survivor memory under peer churn.
  /// 0 disables pruning.
  SimTime peer_health_idle_prune_us = 600'000'000;

  /// Grace period protecting a *pending* (never yet confirmed by its holder)
  /// scion from NewSetStubs deletion while the reference may still be in
  /// flight toward the holder.
  SimTime scion_pending_grace_us = 300'000;
  /// Owner-side expiry of never-confirmed scions, as a multiple of the
  /// grace period. Covers references whose delivery was lost outright (the
  /// would-be holder never learns of them, so no NewSetStubs will ever
  /// mention them). Relies on the standard bounded-message-lifetime
  /// assumption of reference-listing collectors.
  std::uint32_t scion_pending_expiry_factor = 10;

  // --- snapshots / summarization ---
  /// Period between snapshot + summarization passes.
  SimTime snapshot_period_us = 50'000;
  /// Which summarizer builds the DCDA's view (all equivalent; kScc is the
  /// production choice, kBfs the simple reference, kIncremental memoizes
  /// per-scion traversals across snapshots — the paper's "lazily and
  /// incrementally" mode, best on slowly-mutating heaps).
  enum class SummarizerKind { kBfs, kScc, kIncremental };
  SummarizerKind summarizer = SummarizerKind::kScc;
  /// Round-trip every snapshot through the binary serializer (exercises the
  /// paper's serialize-to-disk path and the codec; off for micro-benches).
  bool roundtrip_snapshots = true;
  /// When non-empty, every snapshot is also persisted here (the paper's
  /// snapshots-on-disk, §2.2) with bounded retention, and the process can
  /// recover its summarized view from disk after a restart.
  std::string snapshot_dir;
  /// Snapshot files kept per process when persisting.
  std::size_t snapshot_retain = 2;
  /// Run serialize → store-write → summarize off the mutator path: the
  /// periodic snapshot tick captures synchronously, hands the capture to the
  /// SnapshotPipeline, and the summary publishes back later while the
  /// detector keeps using the previous version (paper-safe: ICs guard
  /// against mutation, DCDA tolerates stale snapshots, §4). Direct
  /// take_snapshot() calls remain fully synchronous either way.
  bool snapshot_pipeline = true;
  /// Deterministic sim only: modeled delay between a pipelined snapshot
  /// request and its summary publish (the completion is a scheduled
  /// self-event, so traces stay a pure function of (config, seed)). The
  /// real runtimes publish when their background worker finishes instead.
  SimTime snapshot_pipeline_latency_us = 1'000;

  // --- DCDA ---
  /// Whether the cycle detector runs at all (Table 1 baseline turns the
  /// whole DGC off; ablations turn only the DCDA off).
  bool dcda_enabled = true;
  /// Period between candidate scans at each process.
  SimTime dcda_scan_period_us = 60'000;
  /// A scion becomes a cycle candidate only after its invocation counter has
  /// been stable for this long (the paper's "not invoked for a certain
  /// amount of time" heuristic).
  SimTime candidate_quarantine_us = 40'000;
  /// Ordering among eligible candidates when the in-flight budget can't
  /// take them all (the paper defers candidate selection to the literature;
  /// these are the classic options):
  ///   kOldestQuiet    — longest-untouched first (paper's §2.1 intuition)
  ///   kSmallestFanout — fewest outgoing stubs first (cheapest probes)
  ///   kRoundRobin     — rotate the start point per scan (no starvation)
  enum class CandidatePolicy { kOldestQuiet, kSmallestFanout, kRoundRobin };
  CandidatePolicy candidate_policy = CandidatePolicy::kOldestQuiet;
  /// Initiator-side detection timeout; a lost CDM merely delays collection.
  SimTime detection_timeout_us = 2'000'000;
  /// Hard cap on CDM hops (safety net against pathological graphs).
  std::uint32_t cdm_hop_limit = 4096;
  /// Max detections a process keeps in flight simultaneously.
  std::uint32_t max_inflight_detections = 64;
  /// §3.2 optimization: before forwarding a derived CDM, check the algebra
  /// for unmatched invocation counters and abort locally instead of paying
  /// another network hop ("race condition detection can be optimized if P1
  /// analyzes unmatched counters in the algebra it is about to send").
  /// Not required for safety; pure latency/traffic saving.
  bool early_ic_check = true;
  /// TEST-ONLY planted bug (model-checker self-test): treat every invocation
  /// counter as zero inside the DCDA, disabling rule 3, the algebra IC-match
  /// abort and the last-moment scion revalidation — i.e. run the detector as
  /// if the paper's counter protection did not exist. UNSAFE by design: with
  /// this on, the Fig. 2 mutator race produces a false cycle, which is
  /// exactly what the model checker's safety oracle must catch. Never enable
  /// outside the planted-bug self-test.
  bool dcda_unsafe_ignore_ic = false;
  /// Bounded best-effort cache of recently processed CDMs (by content hash).
  /// Duplicate CDMs — which arise combinatorially on densely mutually-linked
  /// cycles, since the same algebra can be reached along many branch
  /// orders — are dropped. Dropping is always safe (worst case a detection
  /// times out and is retried). 0 disables the cache.
  std::uint32_t cdm_dedup_cache_size = 4096;

  // --- control-plane batching ---
  /// Coalesce outbound control messages (CDMs, NewSetStubs, AddScion acks)
  /// into per-peer batches: one Envelope / frame header / CRC / write() per
  /// flush instead of per message. Invocations, replies and AddScion
  /// requests are never batched; sending one of those to a peer first
  /// flushes the peer's open batch so relative order is preserved.
  bool batching_enabled = true;
  /// Flush when a batch reaches this many messages...
  std::uint32_t batch_max_msgs = 32;
  /// ...or this many payload bytes (whichever comes first)...
  std::uint32_t batch_max_bytes = 16'384;
  /// ...or when the oldest queued message has waited this long. Bounds the
  /// extra latency batching may add to any control message.
  SimTime batch_flush_us = 200;

  // --- RMI ---
  /// Whether remote invocations send a reply message (replies also bump
  /// invocation counters, per the paper).
  bool send_replies = true;

  // --- instrumentation toggles (Table 1) ---
  /// When false the runtime skips all stub/scion bookkeeping; models the
  /// unmodified Rotor baseline of Table 1.
  bool dgc_enabled = true;

  // --- observability ---
  /// Capacity (events) of the per-process structured-trace ring buffer
  /// (detection spans, CDM hops, evictions, crash/restart...). Oldest
  /// events are overwritten when full. 0 disables tracing entirely — no
  /// ring is allocated and every record becomes a null-pointer no-op (the
  /// obs-off leg of the overhead benchmark).
  std::size_t trace_ring_capacity = 4096;
};

/// Whole-system configuration.
struct RuntimeConfig {
  NetworkConfig net;
  ProcessConfig proc;
  std::uint64_t seed = 42;

  std::string describe() const;
};

}  // namespace adgc
