// Minimal leveled logger.
//
// The library is silent by default (tests and benches would drown); scenarios
// and examples raise the level to watch the protocol run. Thread-safe: the
// threaded runtime logs from several worker threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace adgc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logger configuration.
class Log {
 public:
  static void set_level(LogLevel lvl);
  static LogLevel level();
  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// Emits one line; used through the ADGC_LOG macro.
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static std::mutex mu_;
};

const char* to_string(LogLevel lvl);

}  // namespace adgc

// Streams only evaluate when the level is enabled.
#define ADGC_LOG(lvl, expr)                                        \
  do {                                                             \
    if (::adgc::Log::enabled(lvl)) {                               \
      std::ostringstream adgc_log_os;                              \
      adgc_log_os << expr;                                         \
      ::adgc::Log::write(lvl, adgc_log_os.str());                  \
    }                                                              \
  } while (0)

#define ADGC_TRACE(expr) ADGC_LOG(::adgc::LogLevel::kTrace, expr)
#define ADGC_DEBUG(expr) ADGC_LOG(::adgc::LogLevel::kDebug, expr)
#define ADGC_INFO(expr) ADGC_LOG(::adgc::LogLevel::kInfo, expr)
#define ADGC_WARN(expr) ADGC_LOG(::adgc::LogLevel::kWarn, expr)
#define ADGC_ERROR(expr) ADGC_LOG(::adgc::LogLevel::kError, expr)
