#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace adgc {

void SampleStats::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sum_sq_ += v * v;
  sorted_valid_ = false;
}

void SampleStats::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleStats::min() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("stats: empty");
  return sorted_.front();
}

double SampleStats::max() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("stats: empty");
  return sorted_.back();
}

double SampleStats::mean() const {
  if (samples_.empty()) throw std::logic_error("stats: empty");
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ - n * m * m) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double SampleStats::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("stats: empty");
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::string SampleStats::summary() const {
  if (samples_.empty()) return "n=0";
  std::ostringstream os;
  os.precision(3);
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
     << " p95=" << percentile(95) << " max=" << max();
  return os.str();
}

}  // namespace adgc
