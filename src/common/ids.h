// Identifier types shared by every module of the ADGC library.
//
// Naming follows the paper (Veiga & Ferreira, IPDPS 2005):
//  * a *process* is one participant in the distributed system;
//  * an *object* lives in exactly one process (its owner);
//  * a *remote reference* is a stub (holder side) / scion (owner side) pair;
//    both sides share one RefId so that the DCDA algebra can cancel them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace adgc {

/// Identifies one process (site) in the distributed system.
using ProcessId = std::uint32_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = ~ProcessId{0};

/// Incarnation number of a process slot. Starts at 0 and is bumped by the
/// runtime every time the process is restarted after a crash; messages and
/// identifier spaces are stamped with it so state from a dead incarnation can
/// never leak into the recovered one.
using Incarnation = std::uint32_t;

/// Per-process object sequence number. Never reused within a process.
using ObjectSeq = std::uint64_t;

/// Sentinel for "no object".
inline constexpr ObjectSeq kNoObject = ~ObjectSeq{0};

/// Globally unique object identity: owner process + per-process sequence.
struct ObjectId {
  ProcessId owner = kNoProcess;
  ObjectSeq seq = kNoObject;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

/// Globally unique identity of a remote reference; shared by the stub at the
/// holder process and the scion at the owner process.
///
/// Layout: high 24 bits = creating process, low 40 bits = per-process counter.
/// The split is an implementation detail; RefIds are opaque to callers.
using RefId = std::uint64_t;

inline constexpr RefId kNoRef = ~RefId{0};

/// Builds a RefId unique across the system without coordination.
constexpr RefId make_ref_id(ProcessId creator, std::uint64_t counter) {
  return (static_cast<RefId>(creator) << 40) | (counter & ((RefId{1} << 40) - 1));
}

/// Extracts the creating process from a RefId (diagnostics only).
constexpr ProcessId ref_id_creator(RefId r) {
  return static_cast<ProcessId>(r >> 40);
}

/// Partitions the per-process id-counter space by incarnation so a restarted
/// process never reuses a RefId or ObjectSeq minted by a dead incarnation.
/// Also used to epoch-stamp NewSetStubs export sequences: a restarted
/// holder's first message sorts above everything the lost incarnation sent,
/// so receivers do not reject it as stale.
constexpr std::uint64_t incarnation_epoch(Incarnation inc, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(inc) << 40) | (seq & ((std::uint64_t{1} << 40) - 1));
}

/// Identifies one cycle detection (one candidate probe). The initiator
/// allocates these; only the initiator keeps per-detection state.
struct DetectionId {
  ProcessId initiator = kNoProcess;
  std::uint64_t seq = 0;

  friend bool operator==(const DetectionId&, const DetectionId&) = default;
  friend auto operator<=>(const DetectionId&, const DetectionId&) = default;
};

/// Human-readable renderings, used in logs and test failure messages.
std::string to_string(ObjectId id);
std::string to_string(DetectionId id);
std::string ref_to_string(RefId id);

}  // namespace adgc

template <>
struct std::hash<adgc::ObjectId> {
  std::size_t operator()(const adgc::ObjectId& id) const noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(id.owner) << 48) ^ id.seq;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

template <>
struct std::hash<adgc::DetectionId> {
  std::size_t operator()(const adgc::DetectionId& id) const noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(id.initiator) << 40) ^ id.seq;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};
