// CRC-32 (IEEE 802.3 polynomial, reflected) used by the TCP frame layer and
// anywhere else a cheap integrity check over a byte range is needed.
//
// Self-contained table-driven implementation: the toolchain image carries no
// zlib guarantee, and the frame format must not depend on an optional
// library. The result matches zlib's crc32() so externally captured frames
// can be checked with standard tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace adgc {

/// One-shot CRC-32 of `bytes` (initial value 0, standard pre/post-invert).
std::uint32_t crc32(std::span<const std::byte> bytes);

/// Incremental form: fold `bytes` into a running checksum. Start with
/// `crc = 0`, feed chunks in order, use the final value.
std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::byte> bytes);

}  // namespace adgc
