// Counters describing protocol activity.
//
// One Metrics instance per process plus one aggregate per runtime. Counters
// are atomics so the threaded runtime can bump them without locks; in the
// deterministic simulator they are simply uncontended.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "src/obs/histogram.h"

namespace adgc {

/// A relaxed-ordering counter. Copyable so Metrics snapshots can be taken.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : v_(other.get()) {}
  Counter& operator=(const Counter& other) {
    v_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// All protocol counters. Extend freely; report() prints non-zero entries.
struct Metrics {
  // Mutator / RMI.
  Counter invocations_sent;
  Counter invocations_received;
  Counter invocations_dropped;  // delivered for a ref with no live scion
  Counter replies_sent;
  Counter replies_received;
  Counter refs_exported;
  Counter refs_imported;

  // Acyclic DGC.
  Counter stubs_created;
  Counter stubs_deleted;
  Counter scions_created;
  Counter scions_deleted_acyclic;   // via NewSetStubs
  Counter scions_deleted_cyclic;    // via DCDA cycle-found
  Counter new_set_stubs_sent;
  Counter new_set_stubs_received;
  Counter add_scion_sent;
  Counter add_scion_retries;
  Counter add_scion_abandoned;  // handshake gave up after max retries

  // Local GC.
  Counter lgc_runs;
  Counter objects_allocated;
  Counter objects_reclaimed;

  // Snapshots.
  Counter snapshots_taken;
  Counter snapshot_bytes;
  Counter summarizations;
  Counter snapshots_coalesced;        // request while one in flight (pipeline)
  Counter snapshot_persist_failures;  // store write/publish failed (summary still published)

  // DCDA.
  Counter detections_started;
  Counter detections_cycle_found;
  Counter detections_aborted_ic;        // invocation-counter mismatch
  Counter detections_aborted_local;     // Local.Reach stub hit
  Counter detections_dropped_no_scion;  // CDM to scion absent from snapshot
  Counter detections_dropped_dup;       // derivation added nothing
  Counter cdms_deduped;                 // identical CDM seen recently
  Counter detections_timed_out;
  Counter detections_aborted_crash;     // in-flight when a peer crashed
  Counter cdms_sent;
  Counter cdms_received;
  Counter cdm_bytes;

  // Baseline (back-tracing) detector.
  Counter backtrace_requests;
  Counter backtrace_replies;
  Counter backtrace_cycles_found;

  // Baseline (global trace) collector.
  Counter gt_epochs_started;
  Counter gt_marks_sent;
  Counter gt_status_msgs;
  Counter gt_scions_deleted;

  // Network.
  Counter messages_sent;
  Counter messages_delivered;
  Counter messages_lost;
  Counter messages_duplicated;
  Counter bytes_sent;

  // Adaptive degradation (per-peer health, backoff, load shedding).
  Counter peer_suspect_transitions;     // healthy→suspected flips observed
  Counter cdms_shed;                    // CDM dropped at the sender (window full)
  Counter new_set_stubs_shed;           // NewSetStubs dropped at the sender
  Counter new_set_stubs_deferred;       // periodic NSS skipped (suspected peer backoff)
  Counter detections_deferred_backoff;  // candidate skipped (relaunch backoff)
  Counter candidates_deprioritized;     // candidate ranked last (suspected first hop)

  // Permanent-failure eviction.
  Counter peers_evicted;                // peers committed dead locally
  Counter eviction_scions_dropped;      // scions held by an evicted peer
  Counter eviction_stubs_retired;       // stubs toward an evicted peer
  Counter detections_aborted_eviction;  // in-flight detections torn down by eviction
  Counter eviction_nacks_sent;          // Evicted NACKs emitted at rejection
  Counter eviction_nacks_received;      // zombie side: told to restart
  Counter messages_rejected_evicted;    // traffic from a tombstoned incarnation
  Counter nss_solicits_sent;            // lease probes to silent scion holders
  Counter peer_health_slots;            // gauge: tracked peers after last LGC
  Counter peer_health_slots_pruned;     // idle slots reclaimed

  // Control-plane batching (per-peer coalescing of CDM / NSS / AddScionAck).
  Counter batches_sent;              // flushes that put a real batch (>=2) on the wire
  Counter batch_singletons;          // flushes degenerated to one plain message
  Counter batched_messages;          // control messages that entered a batch
  Counter batch_flush_size;          // flush reasons...
  Counter batch_flush_count;
  Counter batch_flush_deadline;
  Counter batch_flush_priority;      // invoke/reply/AddScion to same peer forced it
  Counter batch_flush_burst;         // end of a CDM scan/forward burst
  Counter batch_flush_drain;         // shutdown/drain flush
  Counter batch_bytes_saved;         // (n-1) * frame header per flushed batch
  Counter batches_received;
  Counter batch_messages_received;   // messages unpacked from received batches
  Counter batches_poisoned;          // batch dropped whole: some item undecodable
  Counter arena_acquires;            // batch buffers handed out by the arena
  Counter arena_reuses;              // ...of which satisfied from the free list

  // TCP transport (real-socket deployment).
  Counter tcp_connects;          // outbound connect() attempts
  Counter tcp_accepts;           // inbound connections accepted
  Counter tcp_disconnects;       // connections closed on error/EOF
  Counter tcp_reconnect_backoffs;  // reconnects deferred by the backoff series
  Counter tcp_frames_sent;
  Counter tcp_frames_received;
  Counter tcp_frames_rejected;   // framing errors (magic/version/CRC/length)
  Counter tcp_hello_sent;
  Counter tcp_hello_received;

  // Crash/restart fault model.
  Counter process_crashes;
  Counter process_restarts;
  Counter restarts_recovered;           // restart found a usable snapshot
  Counter messages_dropped_crashed;     // destination was down
  Counter messages_stale_incarnation;   // from/to a dead incarnation

  // Latency / size distributions (log-bucketed lock-free histograms; see
  // src/obs/histogram.h). Recorded at the hot spots of every runtime and
  // exported — alongside the counters — through the admin endpoint's
  // Prometheus /metrics exposition (src/obs/prom.h).
  Histogram rmi_rtt_us;               // invoke → reply round trip (Env clock)
  Histogram lgc_pause_us;             // run_lgc wall time (incl. NSS build)
  Histogram snapshot_capture_us;      // heap/table capture (always mutator-visible)
  Histogram snapshot_persist_us;      // serialize + store write (+roundtrip decode)
  Histogram snapshot_summarize_us;    // summarization wall time
  Histogram detection_lifetime_us;    // initiator-observed detection lifetime
  Histogram batch_flush_msgs;         // messages per control-plane batch flush
  Histogram tcp_writeq_depth;         // per-peer write queue depth at enqueue

  /// Adds every counter and histogram of `other` into this (aggregation
  /// across processes).
  void merge(const Metrics& other);

  /// Multi-line human-readable dump of the non-zero counters (sorted by
  /// name, deterministically) followed by the non-empty histograms.
  std::string report(const std::string& prefix = "") const;

  /// Zeroes every counter and histogram.
  void reset();

  /// Visits every counter as (name, value) in sorted name order.
  void for_each_counter(
      const std::function<void(const char*, std::uint64_t)>& fn) const;
  /// Visits every histogram as (name, histogram) in sorted name order.
  void for_each_histogram(
      const std::function<void(const char*, const Histogram&)>& fn) const;
};

}  // namespace adgc
