#include "src/rt/process.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/baseline/backtrace_detector.h"
#include "src/baseline/global_trace.h"
#include "src/dcda/candidates.h"
#include "src/lgc/mark_sweep.h"
#include "src/snapshot/snapshot.h"

namespace adgc {

Process::Process(ProcessId pid, const ProcessConfig& cfg, Env& env, Incarnation incarnation)
    : pid_(pid), cfg_(cfg), env_(env), incarnation_(incarnation) {
  if (incarnation_ > 0) {
    // Partition the identifier spaces by incarnation: the RefId counter field
    // is 40 bits wide (see make_ref_id), so the incarnation takes its top 8
    // bits; ObjectSeq is a full 64-bit space. Identifiers minted by a dead
    // incarnation can then never collide with the recovered one's.
    next_ref_counter_ = (std::uint64_t{incarnation_} << 32) + 1;
    heap_.set_next_seq_floor((std::uint64_t{incarnation_} << 40) + 1);
  }
  serializer_ = std::make_unique<BinarySerializer>();
  switch (cfg_.summarizer) {
    case ProcessConfig::SummarizerKind::kScc:
      summarizer_ = std::make_unique<SccSummarizer>();
      break;
    case ProcessConfig::SummarizerKind::kIncremental:
      summarizer_ = std::make_unique<IncrementalSummarizer>();
      break;
    case ProcessConfig::SummarizerKind::kBfs:
      summarizer_ = std::make_unique<BfsSummarizer>();
      break;
  }
  batcher_ = std::make_unique<Batcher>(cfg_, env_);
  Detector::Hooks hooks;
  hooks.send_cdm = [this](ProcessId dst, const CdmMsg& msg) { send(dst, msg); };
  hooks.cdm_burst_end = [this] {
    batcher_->flush_cdm_batches(Batcher::FlushReason::kBurst);
  };
  hooks.cycle_found = [this](DetectionId id, RefId candidate, std::uint64_t expected_ic) {
    on_cycle_found(id, candidate, expected_ic);
  };
  detector_ = std::make_unique<Detector>(pid_, cfg_, env_.metrics(), std::move(hooks));
  detector_->set_trace(env_.trace());
  backtracer_ = std::make_unique<BacktraceDetector>(*this, env_.metrics());
  gtrace_ = std::make_unique<GlobalTraceCollector>(*this, env_.metrics());
  if (!cfg_.snapshot_dir.empty()) {
    store_ = std::make_unique<SnapshotStore>(cfg_.snapshot_dir, cfg_.snapshot_retain);
  }
  pipeline_ = std::make_unique<SnapshotPipeline>(
      pid_, cfg_, env_, *serializer_, *summarizer_, store_.get(),
      [this](SnapshotPipeline::Stages s) { adopt_summary(std::move(s)); });
}

Process::~Process() = default;

void Process::start() {
  if (started_) return;
  started_ = true;
  if (!cfg_.periodic_collectors_enabled) return;
  // De-phase the periodic tasks across processes (deterministically).
  env_.schedule(env_.rng().below(cfg_.lgc_period_us) + 1, [this] { lgc_tick(); });
  env_.schedule(env_.rng().below(cfg_.snapshot_period_us) + 1, [this] { snapshot_tick(); });
  if (cfg_.dcda_enabled) {
    env_.schedule(env_.rng().below(cfg_.dcda_scan_period_us) + 1, [this] { dcda_tick(); });
  }
}

void Process::lgc_tick() {
  run_lgc();
  env_.schedule(cfg_.lgc_period_us, [this] { lgc_tick(); });
}

void Process::snapshot_tick() {
  request_snapshot();
  env_.schedule(cfg_.snapshot_period_us, [this] { snapshot_tick(); });
}

void Process::dcda_tick() {
  run_dcda_scan();
  env_.schedule(cfg_.dcda_scan_period_us, [this] { dcda_tick(); });
}

void Process::send(ProcessId dst, const MessagePayload& msg) {
  // Priority load shedding: when the outgoing window toward a *suspected*
  // peer is full, shed CDMs first, then NewSetStubs. Both protocols are
  // loss-tolerant (a shed CDM times out at the initiator and is retried; a
  // shed NSS is superseded by the next full-state re-send), so shedding can
  // only delay collection, never corrupt it. Invocations, replies and the
  // AddScion handshake are never shed.
  if (cfg_.adaptive_faults && cfg_.peer_outstanding_limit > 0) {
    const std::uint32_t window = peer_health_.outstanding(dst);
    if (window >= cfg_.peer_outstanding_limit && peer_health_.suspected(dst, env_.now())) {
      if (std::holds_alternative<CdmMsg>(msg)) {
        metrics().cdms_shed.add();
        ADGC_TRACE("P" << pid_ << " shedding CDM to suspected P" << dst);
        return;
      }
      if (window >= 2 * cfg_.peer_outstanding_limit &&
          std::holds_alternative<NewSetStubsMsg>(msg)) {
        metrics().new_set_stubs_shed.add();
        ADGC_TRACE("P" << pid_ << " shedding NewSetStubs to suspected P" << dst);
        return;
      }
    }
  }
  peer_health_.on_send(dst, env_.now());
  // Control-plane coalescing: batchable kinds (CDM, NewSetStubs,
  // AddScionAck) queue into the peer's open batch; anything else is
  // latency-critical and flushes that batch first, preserving the relative
  // order of control vs. subsequent priority traffic on the link.
  if (batcher_->offer(dst, msg)) return;
  batcher_->flush_peer(dst, Batcher::FlushReason::kPriority);
  env_.send(dst, msg);
}

// ---------------------------------------------------------------- mutator

ObjectSeq Process::create_object(std::size_t payload_bytes) {
  metrics().objects_allocated.add();
  return heap_.allocate(payload_bytes);
}

void Process::add_root(ObjectSeq seq) { heap_.add_root(seq); }
void Process::remove_root(ObjectSeq seq) { heap_.remove_root(seq); }

void Process::add_local_ref(ObjectSeq from, ObjectSeq to) { heap_.add_local_field(from, to); }

void Process::remove_local_ref(ObjectSeq from, ObjectSeq to) {
  heap_.remove_local_field(from, to);
}

void Process::remove_remote_ref(ObjectSeq from, RefId ref) {
  if (heap_.remove_remote_field(from, ref)) {
    if (StubEntry* stub = stubs_.find(ref); stub && stub->holders > 0) --stub->holders;
  }
}

std::uint64_t Process::invoke(ObjectSeq caller, RefId via, InvokeEffect effect,
                              std::vector<ArgRef> args, bool want_reply,
                              std::size_t payload_bytes) {
  StubEntry* stub = stubs_.find(via);
  if (!stub) throw std::invalid_argument("invoke: unknown reference");

  PendingInvoke inv;
  inv.call_id = next_call_id_++;
  inv.caller = caller;
  inv.via = via;
  inv.effect = effect;
  inv.payload_bytes = payload_bytes;
  inv.want_reply = want_reply;
  const ProcessId receiver = stub->target.owner;

  for (const ArgRef& arg : args) {
    if (arg.local != kNoObject) {
      inv.args.push_back(export_own_object(arg.local, receiver));
    } else {
      std::uint64_t hs = 0;
      inv.args.push_back(begin_third_party_export(arg.remote, receiver, inv.call_id, &hs));
      if (hs != 0) inv.waiting.insert(hs);
    }
  }

  const std::uint64_t id = inv.call_id;
  if (inv.waiting.empty()) {
    really_send_invoke(std::move(inv));
  } else {
    pending_invokes_.emplace(id, std::move(inv));
  }
  return id;
}

// ------------------------------------------------------------------ export

ExportedRef Process::export_own_object(ObjectSeq target, ProcessId holder) {
  if (!heap_.exists(target)) throw std::invalid_argument("export: no such object");
  ExportedRef out;
  out.ref = fresh_ref_id();
  out.target = ObjectId{pid_, target};
  if (cfg_.dgc_enabled) {
    scions_.ensure(out.ref, holder, target, env_.now());
    metrics().scions_created.add();
  }
  metrics().refs_exported.add();
  return out;
}

ExportedRef Process::begin_third_party_export(RefId held, ProcessId receiver,
                                              std::uint64_t call_id,
                                              std::uint64_t* handshake_out) {
  *handshake_out = 0;
  StubEntry* stub = stubs_.find(held);
  if (!stub) throw std::invalid_argument("export: reference not held");
  metrics().refs_exported.add();

  ExportedRef out;
  out.target = stub->target;
  if (stub->target.owner == receiver) {
    // The receiver owns the target: it will install a plain local field.
    out.ref = kNoRef;
    return out;
  }
  out.ref = fresh_ref_id();
  if (!cfg_.dgc_enabled) return out;

  Handshake hs;
  hs.id = next_handshake_++;
  hs.call_id = call_id;
  hs.owner = stub->target.owner;
  hs.pinned_stub = held;
  hs.msg.ref = out.ref;
  hs.msg.target_seq = stub->target.seq;
  hs.msg.holder = receiver;
  hs.msg.handshake = hs.id;
  hs.last_sent = env_.now();
  pin_stub(held);
  send(hs.owner, hs.msg);
  metrics().add_scion_sent.add();
  const std::uint64_t id = hs.id;
  handshakes_.emplace(id, std::move(hs));
  env_.schedule(handshake_retry_delay(0), [this, id] { retry_handshake(id); });
  *handshake_out = id;
  return out;
}

SimTime Process::handshake_retry_delay(int attempt) {
  if (!cfg_.adaptive_faults) return cfg_.add_scion_retry_us;
  return backoff_delay(cfg_.add_scion_retry_us, cfg_.backoff_cap_us, attempt, env_.rng());
}

void Process::retry_handshake(std::uint64_t id) {
  auto it = handshakes_.find(id);
  if (it == handshakes_.end()) return;  // already acked
  Handshake& hs = it->second;
  peer_health_.on_timeout(hs.owner, env_.now());
  if (++hs.retries > cfg_.add_scion_max_retries) {
    ADGC_ERROR("P" << pid_ << " abandoning export after " << hs.retries
                   << " AddScion retries (ref " << ref_to_string(hs.msg.ref) << ")");
    metrics().add_scion_abandoned.add();
    const std::uint64_t call_id = hs.call_id;
    unpin_stub(hs.pinned_stub);
    handshakes_.erase(it);
    abandon_invoke(call_id);
    return;
  }
  metrics().add_scion_retries.add();
  hs.last_sent = env_.now();
  send(hs.owner, hs.msg);
  env_.schedule(handshake_retry_delay(hs.retries), [this, id] { retry_handshake(id); });
}

void Process::abandon_invoke(std::uint64_t call_id) {
  auto it = pending_invokes_.find(call_id);
  if (it == pending_invokes_.end()) return;
  // Tear down any other handshakes of the same call.
  for (std::uint64_t hs_id : it->second.waiting) {
    auto hit = handshakes_.find(hs_id);
    if (hit != handshakes_.end()) {
      unpin_stub(hit->second.pinned_stub);
      handshakes_.erase(hit);
    }
  }
  pending_invokes_.erase(it);
}

void Process::maybe_flush_invoke(std::uint64_t call_id) {
  auto it = pending_invokes_.find(call_id);
  if (it == pending_invokes_.end() || !it->second.waiting.empty()) return;
  PendingInvoke inv = std::move(it->second);
  pending_invokes_.erase(it);
  really_send_invoke(std::move(inv));
}

void Process::really_send_invoke(PendingInvoke&& inv) {
  StubEntry* stub = stubs_.find(inv.via);
  if (!stub) {
    ADGC_WARN("P" << pid_ << " dropping invocation: reference vanished");
    return;
  }
  InvokeMsg msg;
  msg.ref = inv.via;
  if (cfg_.dgc_enabled) {
    ++stub->ic;
  }
  msg.ic = stub->ic;
  msg.target = stub->target;
  msg.caller = ObjectId{pid_, inv.caller};
  msg.effect = inv.effect;
  msg.args = std::move(inv.args);
  msg.payload.assign(inv.payload_bytes, std::byte{0});
  msg.want_reply = inv.want_reply && cfg_.send_replies;
  msg.call_id = inv.call_id;
  metrics().invocations_sent.add();
  if (msg.want_reply) {
    // Remember the send time: the reply is an RTT sample for the callee.
    while (inflight_calls_.size() >= 512) inflight_calls_.erase(inflight_calls_.begin());
    inflight_calls_.emplace(msg.call_id,
                            std::make_pair(stub->target.owner, env_.now()));
  }
  send(stub->target.owner, msg);
}

RefId Process::install_ref(ObjectSeq from, const ExportedRef& ref) {
  if (ref.target.owner == pid_) {
    heap_.add_local_field(from, ref.target.seq);
    return kNoRef;
  }
  const bool fresh = !stubs_.contains(ref.ref);
  StubEntry& stub = stubs_.ensure(ref.ref, ref.target, env_.now());
  if (fresh) {
    metrics().stubs_created.add();
    contacts_.insert(ref.target.owner);
  }
  ++stub.holders;
  heap_.add_remote_field(from, ref.ref);
  metrics().refs_imported.add();
  return ref.ref;
}

void Process::hold_existing_ref(ObjectSeq from, RefId ref) {
  StubEntry* stub = stubs_.find(ref);
  if (!stub) throw std::invalid_argument("hold_existing_ref: no such stub");
  ++stub->holders;
  heap_.add_remote_field(from, ref);
}

void Process::pin_stub(RefId ref) {
  if (++pinned_[ref] == 1) pinned_set_.insert(ref);
}

void Process::unpin_stub(RefId ref) {
  auto it = pinned_.find(ref);
  if (it == pinned_.end()) return;
  if (--it->second == 0) {
    pinned_.erase(it);
    pinned_set_.erase(ref);
  }
}

// --------------------------------------------------------------- delivery

void Process::deliver(const Envelope& envelope) {
  const ProcessId src = envelope.src;
  {
    // Track the highest incarnation ever seen per peer: it is the value an
    // eviction tombstones, so the zombie's current incarnation is rejected.
    auto [it, fresh] = peer_incs_.try_emplace(src, envelope.src_inc);
    if (!fresh && envelope.src_inc > it->second) it->second = envelope.src_inc;
  }
  if (const auto dead_inc = peer_health_.evicted_incarnation(src)) {
    if (envelope.src_inc <= *dead_inc) {
      metrics().messages_rejected_evicted.add();
      const bool inbound_nack =
          !envelope.bytes.empty() &&
          envelope.bytes[0] == static_cast<std::byte>(MessageTag::kEvictedNack);
      ADGC_DEBUG("P" << pid_ << " rejecting traffic from evicted P" << src
                     << " (inc " << envelope.src_inc << " <= tombstone "
                     << *dead_inc << ")");
      if (!inbound_nack) {
        // Tell the zombie it has been committed dead. Sent through the raw
        // Env, not Process::send — the NACK must not resurrect health or
        // batcher slots for a peer we just purged. Never NACK a NACK, or two
        // processes that evicted each other would ping-pong forever.
        EvictedNackMsg nack;
        nack.evicted_incarnation = envelope.src_inc;
        metrics().eviction_nacks_sent.add();
        env_.send(src, nack);
      }
      return;
    }
    // Strictly newer incarnation: the peer restarted as the NACK demanded.
    // Readmit it — its references re-enter through the AddScion handshake.
    peer_health_.clear_tombstone(src);
    ADGC_INFO("P" << pid_ << " readmits P" << src << " at incarnation "
                  << envelope.src_inc << " (tombstone lifted)");
  }
  // Any inbound traffic is a liveness signal for the sending peer.
  peer_health_.on_heard(envelope.src, env_.now());
  MessagePayload payload;
  try {
    payload = decode_message(envelope.bytes);
  } catch (const DecodeError& e) {
    ADGC_ERROR("P" << pid_ << " undecodable message from " << envelope.src << ": "
                   << e.what());
    return;
  }
  dispatch(envelope.src, payload);
}

void Process::dispatch(ProcessId src, const MessagePayload& payload) {
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, InvokeMsg>) {
          on_invoke(src, msg);
        } else if constexpr (std::is_same_v<T, ReplyMsg>) {
          on_reply(src, msg);
        } else if constexpr (std::is_same_v<T, NewSetStubsMsg>) {
          on_new_set_stubs(src, msg);
        } else if constexpr (std::is_same_v<T, AddScionMsg>) {
          on_add_scion(src, msg);
        } else if constexpr (std::is_same_v<T, AddScionAckMsg>) {
          on_add_scion_ack(src, msg);
        } else if constexpr (std::is_same_v<T, CdmMsg>) {
          on_cdm(src, msg);
        } else if constexpr (std::is_same_v<T, BacktraceRequestMsg>) {
          backtracer_->on_request(src, msg);
        } else if constexpr (std::is_same_v<T, BacktraceReplyMsg>) {
          backtracer_->on_reply(src, msg);
        } else if constexpr (std::is_same_v<T, GtStartMsg>) {
          gtrace_->on_start(src, msg);
        } else if constexpr (std::is_same_v<T, GtMarkMsg>) {
          gtrace_->on_mark(src, msg);
        } else if constexpr (std::is_same_v<T, GtPollMsg>) {
          gtrace_->on_poll(src, msg);
        } else if constexpr (std::is_same_v<T, GtStatusMsg>) {
          gtrace_->on_status(src, msg);
        } else if constexpr (std::is_same_v<T, GtFinishMsg>) {
          gtrace_->on_finish(src, msg);
        } else if constexpr (std::is_same_v<T, BatchMsg>) {
          on_batch(src, msg);
        } else if constexpr (std::is_same_v<T, EvictedNackMsg>) {
          on_evicted_nack(src, msg);
        } else if constexpr (std::is_same_v<T, NssSolicitMsg>) {
          on_nss_solicit(src);
        }
      },
      payload);
}

void Process::on_batch(ProcessId src, const BatchMsg& batch) {
  metrics().batches_received.add();
  // Unpack the whole batch BEFORE applying anything: if any item is
  // malformed (or a nested batch), the entire batch is dropped — a corrupt
  // slice must never apply a prefix of its messages.
  std::vector<MessagePayload> items;
  try {
    items = decode_batch_items(batch);
  } catch (const DecodeError& e) {
    metrics().batches_poisoned.add();
    ADGC_ERROR("P" << pid_ << " dropping poisoned batch from " << src << ": "
                   << e.what());
    return;
  }
  metrics().batch_messages_received.add(items.size());
  for (const MessagePayload& m : items) dispatch(src, m);
}

void Process::flush_batches() {
  batcher_->flush_all(Batcher::FlushReason::kDrain);
}

void Process::on_invoke(ProcessId src, const InvokeMsg& msg) {
  metrics().invocations_received.add();
  ScionEntry* scion = nullptr;
  if (cfg_.dgc_enabled) {
    scion = scions_.find(msg.ref);
    if (!scion) {
      // The scion was collected: the reference was dead. Never resurrect.
      metrics().invocations_dropped.add();
      ADGC_WARN("P" << pid_ << " invocation for collected scion "
                    << ref_to_string(msg.ref) << " from " << src);
      return;
    }
    if (msg.ic > scion->ic) {
      scion->ic = msg.ic;
      scion->last_ic_change = env_.now();
    }
    scion->confirmed = true;
  }

  const ObjectSeq target_seq = scion ? scion->target : msg.target.seq;
  HeapObject* obj = heap_.find(target_seq);
  if (!obj) {
    metrics().invocations_dropped.add();
    ADGC_WARN("P" << pid_ << " invocation for missing object " << target_seq);
    return;
  }
  obj->last_access = env_.now();

  switch (msg.effect) {
    case InvokeEffect::kTouch:
      break;
    case InvokeEffect::kPinRoot:
      heap_.add_root(target_seq);
      break;
    case InvokeEffect::kUnpinRoot:
      heap_.remove_root(target_seq);
      break;
    case InvokeEffect::kStoreArgs:
      for (const ExportedRef& arg : msg.args) {
        install_ref(target_seq, arg);
      }
      break;
    case InvokeEffect::kDropFields: {
      obj->local_fields.clear();
      for (RefId ref : obj->remote_fields) {
        if (StubEntry* stub = stubs_.find(ref); stub && stub->holders > 0) --stub->holders;
      }
      obj->remote_fields.clear();
      break;
    }
  }

  if (msg.want_reply && cfg_.send_replies) {
    ReplyMsg reply;
    reply.ref = msg.ref;
    reply.call_id = msg.call_id;
    if (scion) {
      ++scion->ic;
      scion->last_ic_change = env_.now();
      reply.ic = scion->ic;
    }
    metrics().replies_sent.add();
    send(src, reply);
  }
}

void Process::on_reply(ProcessId src, const ReplyMsg& msg) {
  metrics().replies_received.add();
  if (auto it = inflight_calls_.find(msg.call_id); it != inflight_calls_.end()) {
    if (it->second.first == src) {
      metrics().rmi_rtt_us.record(env_.now() - it->second.second);
      peer_health_.on_response(src, env_.now() - it->second.second, env_.now());
    }
    inflight_calls_.erase(it);
  }
  if (!cfg_.dgc_enabled) return;
  if (StubEntry* stub = stubs_.find(msg.ref); stub && msg.ic > stub->ic) {
    stub->ic = msg.ic;
  }
}

void Process::on_new_set_stubs(ProcessId src, const NewSetStubsMsg& msg) {
  metrics().new_set_stubs_received.add();
  const ApplyNssResult res =
      apply_new_set_stubs(scions_, src, msg, env_.now(), cfg_.scion_pending_grace_us);
  if (res.deleted > 0 || res.stale) {
    ADGC_DEBUG("P" << pid_ << " NSS from P" << src << " seq=" << msg.export_seq
                   << " live=" << msg.live.size() << " deleted=" << res.deleted
                   << (res.stale ? " STALE" : ""));
  }
  metrics().scions_deleted_acyclic.add(res.deleted);
}

void Process::on_add_scion(ProcessId src, const AddScionMsg& msg) {
  if (!heap_.exists(msg.target_seq)) {
    // The object is gone; the exporter's reference was already dead. No ack:
    // the exporter abandons after its retries.
    ADGC_WARN("P" << pid_ << " AddScion for missing object " << msg.target_seq);
    return;
  }
  const bool fresh = !scions_.contains(msg.ref);
  scions_.ensure(msg.ref, msg.holder, msg.target_seq, env_.now());
  if (fresh) metrics().scions_created.add();
  AddScionAckMsg ack;
  ack.ref = msg.ref;
  ack.handshake = msg.handshake;
  send(src, ack);
}

void Process::on_add_scion_ack(ProcessId src, const AddScionAckMsg& msg) {
  auto it = handshakes_.find(msg.handshake);
  if (it == handshakes_.end()) return;  // duplicate ack
  if (it->second.last_sent > 0 && src == it->second.owner) {
    peer_health_.on_response(src, env_.now() - it->second.last_sent, env_.now());
  }
  const std::uint64_t call_id = it->second.call_id;
  unpin_stub(it->second.pinned_stub);
  handshakes_.erase(it);
  auto pit = pending_invokes_.find(call_id);
  if (pit != pending_invokes_.end()) {
    pit->second.waiting.erase(msg.handshake);
    maybe_flush_invoke(call_id);
  }
}

void Process::on_cdm(ProcessId /*src*/, const CdmMsg& msg) {
  if (!cfg_.dcda_enabled) return;
  detector_->on_cdm(msg, env_.now());
}

void Process::on_cycle_found(DetectionId id, RefId candidate, std::uint64_t expected_ic) {
  detector_->finish(id, env_.now());
  ScionEntry* scion = scions_.find(candidate);
  if (!scion) return;  // already collected (e.g. parallel detection)
  // Last-moment revalidation: the mutator used the reference since the
  // snapshot the detection was based on. (Disabled — along with every other
  // IC comparison — by the model checker's planted-bug knob.)
  if (!cfg_.dcda_unsafe_ignore_ic && scion->ic != expected_ic) {
    metrics().detections_aborted_ic.add();
    return;
  }
  if (scion->target_root_reachable) {
    // The local GC has since seen the target from a root; be conservative.
    metrics().detections_aborted_local.add();
    return;
  }
  ADGC_INFO("P" << pid_ << " deleting scion " << ref_to_string(candidate)
                << " (distributed cycle)");
  scions_.erase(candidate);
  candidate_failures_.erase(candidate);
  candidate_not_before_.erase(candidate);
  metrics().detections_cycle_found.add();
  metrics().scions_deleted_cyclic.add();
}

// -------------------------------------------------------------- collectors

void Process::run_lgc() {
  // Wall-clock pause measurement feeds the lgc_pause_us histogram only
  // (observability, never a protocol decision). The trace event instead
  // carries the Env-clock delta: zero under the simulator, so the recorded
  // trace stays a pure function of (config, seed).
  const auto wall_start = std::chrono::steady_clock::now();
  const SimTime vt_start = env_.now();
  if (cfg_.dgc_enabled && cfg_.peer_death_timeout_us > 0) maybe_evict_peers();
  if (cfg_.peer_health_idle_prune_us > 0) {
    const std::size_t pruned =
        peer_health_.prune_idle(env_.now(), cfg_.peer_health_idle_prune_us);
    if (pruned > 0) metrics().peer_health_slots_pruned.add(pruned);
  }
  // Gauge semantics via reset+add: the table size as of this LGC.
  metrics().peer_health_slots.reset();
  metrics().peer_health_slots.add(peer_health_.size());
  if (cfg_.dgc_enabled) {
    // Expire never-confirmed scions whose reference demonstrably never
    // reached its holder (delivery lost; nobody will ever account for it).
    const SimTime expiry =
        cfg_.scion_pending_grace_us * cfg_.scion_pending_expiry_factor;
    std::vector<RefId> orphans;
    for (const auto& [ref, scion] : scions_) {
      if (!scion.confirmed && env_.now() >= scion.created_at + expiry) {
        orphans.push_back(ref);
      }
    }
    for (RefId ref : orphans) {
      ADGC_DEBUG("P" << pid_ << " expiring orphan pending scion " << ref_to_string(ref)
                     << " now=" << env_.now() << " expiry=" << expiry);
      scions_.erase(ref);
      metrics().scions_deleted_acyclic.add();
    }
  }
  const lgc::Result res = lgc::run(heap_, stubs_, scions_, pinned_set_, env_.now());
  metrics().lgc_runs.add();
  metrics().objects_reclaimed.add(res.objects_reclaimed);
  metrics().stubs_deleted.add(res.stubs_deleted);
  const auto pause_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  metrics().lgc_pause_us.record(pause_us);
  obs::emit(env_.trace(),
            {env_.now(), pid_, obs::EventType::kLgcRun, 0, 0,
             static_cast<std::uint64_t>(res.objects_reclaimed),
             static_cast<std::uint64_t>(env_.now() - vt_start)});
  if (!cfg_.dgc_enabled) return;
  // One stub-table pass builds the payload for every contact (the per-peer
  // batcher then coalesces each NSS with whatever control traffic is already
  // queued toward that peer).
  std::map<ProcessId, NewSetStubsMsg> all_nss =
      build_all_new_set_stubs(stubs_, contacts_);
  std::uint64_t nss_sent = 0;
  for (ProcessId dst : contacts_) {
    if (cfg_.adaptive_faults) {
      // Toward a suspected peer, space the periodic NSS re-sends out
      // exponentially instead of hammering every LGC period. NSS is an
      // idempotent full-state replacement, so deferral only delays acyclic
      // collection at the peer — it cannot lose state.
      NssGate& gate = nss_gates_[dst];
      if (peer_health_.suspected(dst, env_.now())) {
        if (env_.now() < gate.next_ok) {
          metrics().new_set_stubs_deferred.add();
          continue;
        }
        const SimTime spacing = backoff_delay(cfg_.lgc_period_us, cfg_.backoff_cap_us,
                                              static_cast<int>(gate.level), env_.rng());
        gate.next_ok = env_.now() + spacing;
        if (gate.level < 16) ++gate.level;
      } else {
        gate.level = 0;
        gate.next_ok = 0;
      }
    }
    // The export sequence is epoch-stamped with the incarnation so the first
    // message after a restart (local counter back at 1) still sorts above
    // everything the lost incarnation sent.
    NewSetStubsMsg& msg = all_nss.at(dst);
    msg.export_seq = incarnation_epoch(incarnation_, ++nss_seq_[dst]);
    metrics().new_set_stubs_sent.add();
    ++nss_sent;
    send(dst, msg);
  }
  if (nss_sent > 0) {
    obs::emit(env_.trace(),
              {env_.now(), pid_, obs::EventType::kNssRound, 0, 0, nss_sent, 0});
  }
}

SnapshotData Process::capture_for_snapshot(std::uint64_t* version_out,
                                           SimTime* vt_out) {
  const auto wall_start = std::chrono::steady_clock::now();
  const SimTime vt_start = env_.now();
  SnapshotData snap = capture_snapshot(pid_, env_.now(), heap_, stubs_, scions_);
  metrics().snapshots_taken.add();
  // Versions are assigned at capture, so a synchronous snapshot taken while
  // a pipelined one is in flight still sorts above it.
  const std::uint64_t version = ++snapshot_version_;
  metrics().snapshot_capture_us.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count()));
  obs::emit(env_.trace(), {env_.now(), pid_, obs::EventType::kSnapshot, 0, 0, version,
                           static_cast<std::uint64_t>(env_.now() - vt_start)});
  *version_out = version;
  *vt_out = vt_start;
  return snap;
}

void Process::adopt_summary(SnapshotPipeline::Stages s) {
  if (s.summary) {
    summary_ = s.summary;
    detector_->set_snapshot(summary_);
    metrics().summarizations.add();
  }
  obs::emit(env_.trace(),
            {env_.now(), pid_, obs::EventType::kSnapshotPublish,
             static_cast<std::uint8_t>(s.persisted ? 0 : 1), 0, s.version,
             static_cast<std::uint64_t>(env_.now() - s.requested_at)});
  // A request arrived while this pass was in flight: re-capture now, so the
  // coalesced request reflects everything up to this moment.
  if (pipeline_->consume_pending()) request_snapshot();
}

void Process::take_snapshot() {
  // Discard any in-flight pipeline pass: its (older-capture) result must not
  // publish over the one this call is about to install — and the wait also
  // keeps the summarizer/store single-threaded.
  pipeline_->cancel_in_flight();
  std::uint64_t version = 0;
  SimTime vt_start = 0;
  SnapshotData snap = capture_for_snapshot(&version, &vt_start);
  adopt_summary(pipeline_->run_now(std::move(snap), version, vt_start));
}

void Process::request_snapshot() {
  if (!cfg_.snapshot_pipeline) {
    take_snapshot();
    return;
  }
  if (pipeline_->in_flight()) {
    pipeline_->mark_pending();
    metrics().snapshots_coalesced.add();
    return;
  }
  std::uint64_t version = 0;
  SimTime vt_start = 0;
  SnapshotData snap = capture_for_snapshot(&version, &vt_start);
  pipeline_->submit(std::move(snap), version, vt_start);
}

bool Process::recover_summary_from_store() {
  if (!store_) return false;
  const auto stored = store_->read_latest(pid_);
  if (!stored) return false;
  SnapshotData snap;
  try {
    snap = serializer_->deserialize(stored->bytes);
  } catch (const DecodeError& e) {
    ADGC_ERROR("P" << pid_ << " stored snapshot undecodable: " << e.what());
    return false;
  }
  SummarizedGraph sum = summarizer_->summarize(snap);
  sum.version = stored->version;
  snapshot_version_ = std::max(snapshot_version_, stored->version);
  summary_ = std::make_shared<const SummarizedGraph>(std::move(sum));
  detector_->set_snapshot(summary_);
  ADGC_INFO("P" << pid_ << " recovered snapshot v" << stored->version << " from disk");
  return true;
}

bool Process::recover_from_store() {
  if (!store_) return false;
  const auto stored = store_->read_latest(pid_);
  if (!stored) return false;
  SnapshotData snap;
  try {
    snap = serializer_->deserialize(stored->bytes);
  } catch (const DecodeError& e) {
    ADGC_ERROR("P" << pid_ << " stored snapshot undecodable: " << e.what());
    return false;
  }
  restore_snapshot(snap, heap_, stubs_, scions_, env_.now());
  // Rebuild the NewSetStubs contact set from the restored stub table; owners
  // of references we no longer hold will expire the orphan scions themselves.
  for (const auto& [ref, stub] : stubs_) {
    (void)ref;
    contacts_.insert(stub.target.owner);
  }
  // The restored live state IS the state this snapshot describes, so handing
  // its summary to the detector keeps in-flight detections consistent.
  SummarizedGraph sum = summarizer_->summarize(snap);
  sum.version = stored->version;
  snapshot_version_ = std::max(snapshot_version_, stored->version);
  summary_ = std::make_shared<const SummarizedGraph>(std::move(sum));
  detector_->set_snapshot(summary_);
  ADGC_INFO("P" << pid_ << " (inc " << incarnation_ << ") recovered heap="
                << heap_.size() << " stubs=" << stubs_.size() << " scions="
                << scions_.size() << " from snapshot v" << stored->version);
  return true;
}

void Process::on_peer_crashed(ProcessId crashed) {
  // An open batch toward the crashed peer holds control messages addressed
  // to its dead incarnation; the delivery path would drop the envelope
  // whole, so discard it here and save the wire bytes.
  batcher_->discard_peer(crashed);
  if (cfg_.dcda_enabled) detector_->abort_for_crash(crashed, env_.now());
}

void Process::on_evicted_nack(ProcessId src, const EvictedNackMsg& msg) {
  metrics().eviction_nacks_received.add();
  // Only a NACK aimed at THIS incarnation matters; one addressed to a dead
  // predecessor was already answered by our restart.
  if (msg.evicted_incarnation != incarnation_ || self_evicted_) return;
  self_evicted_ = true;
  ADGC_ERROR("P" << pid_ << " (inc " << incarnation_ << ") was evicted by P" << src
                 << ": this incarnation is committed dead, restart required");
  if (self_evicted_hook_) self_evicted_hook_(src);
}

void Process::on_nss_solicit(ProcessId src) {
  if (!cfg_.dgc_enabled) return;
  // Answer unconditionally and immediately, bypassing the suspected-peer
  // NSS deferral gate: the solicitor is about to convict us on silence, and
  // an empty set is as meaningful an answer as a full one — it expires
  // every scion we no longer (or never) back, e.g. after we restarted from
  // a snapshot predating the stubs.
  std::map<ProcessId, NewSetStubsMsg> reply =
      build_all_new_set_stubs(stubs_, {src});
  NewSetStubsMsg& msg = reply.at(src);
  msg.export_seq = incarnation_epoch(incarnation_, ++nss_seq_[src]);
  metrics().new_set_stubs_sent.add();
  send(src, msg);
}

void Process::maybe_evict_peers() {
  const SimTime now = env_.now();
  const SimTime timeout = cfg_.peer_death_timeout_us;
  // Observation epoch: silence can only convict once we have been watching
  // for a full timeout (first call arms the clock — eviction always takes
  // at least two LGC passes, never fires on a cold start).
  if (evict_watch_since_ == 0) {
    evict_watch_since_ = now > 0 ? now : 1;
    return;
  }
  // Eviction proper requires sustained phi-accrual/failure suspicion for a
  // full timeout — silence alone never convicts, because silence cannot
  // distinguish a dead holder from one that restarted from a snapshot
  // predating our stubs (it legitimately never speaks to us again) or from
  // a partitioned-but-alive one. Scion holders silent past the timeout are
  // instead probed with NssSolicit: a live holder answers with its
  // authoritative (possibly empty) NewSetStubs, expiring any orphan scions
  // it no longer backs; a dead one leaves the probe unanswered, which
  // scores a timeout strike and pushes it into the suspicion escalation.
  std::set<ProcessId> holders;
  for (const auto& [ref, scion] : scions_) {
    (void)ref;
    if (scion.holder != kNoProcess) holders.insert(scion.holder);
  }
  std::set<ProcessId> candidates = peer_health_.known_peers();
  candidates.insert(holders.begin(), holders.end());
  for (ProcessId peer : candidates) {
    if (peer == pid_ || peer_health_.evicted_incarnation(peer)) continue;
    bool dead = false;
    if (peer_health_.suspected(peer, now)) {
      const SimTime since = peer_health_.suspected_since(peer);
      dead = since > 0 && now >= since + timeout;
    }
    if (!dead && holders.contains(peer)) {
      const SimTime heard = peer_health_.last_heard(peer);
      const SimTime baseline = std::max(heard, evict_watch_since_);
      if (now >= baseline + timeout) {
        const auto probe = nss_solicits_.find(peer);
        if (probe != nss_solicits_.end() && heard < probe->second) {
          // The previous probe went unanswered for a whole timeout: strike.
          peer_health_.on_timeout(peer, now);
        }
        metrics().nss_solicits_sent.add();
        send(peer, NssSolicitMsg{});
        nss_solicits_[peer] = now;
      }
    }
    if (dead) evict_peer(peer);
  }
}

void Process::evict_peer(ProcessId peer) {
  if (peer == pid_ || peer_health_.evicted_incarnation(peer)) return;
  const auto inc_it = peer_incs_.find(peer);
  const Incarnation inc = inc_it == peer_incs_.end() ? 0 : inc_it->second;
  peer_health_.record_eviction(peer, inc);
  metrics().peers_evicted.add();
  obs::emit(env_.trace(),
            {env_.now(), pid_, obs::EventType::kEviction, 0, peer, inc, 0});
  ADGC_ERROR("P" << pid_ << " commits P" << peer
                 << " permanently dead (tombstone inc " << inc << "): evicting");

  // 1. Scions held by the dead peer. Its tombstoned incarnation can never
  //    invoke again, and a fresh incarnation must re-export through the
  //    AddScion handshake (minting new RefIds), so dropping these lets the
  //    mark-sweep below reclaim everything only the dead peer kept alive.
  for (RefId ref : scions_.refs_from_holder(peer)) {
    scions_.erase(ref);
    candidate_failures_.erase(ref);
    candidate_not_before_.erase(ref);
    metrics().eviction_scions_dropped.add();
  }
  scions_.forget_holder(peer);

  // 2. In-flight detections: any CDM path may cross the dead peer and would
  //    then only expire by timeout. Abort them all (the crash rule) and
  //    re-quarantine still-existing candidates under the relaunch backoff.
  if (cfg_.dcda_enabled) {
    const auto aborted = detector_->abort_for_crash(peer, env_.now());
    metrics().detections_aborted_eviction.add(aborted.size());
    for (const auto& rec : aborted) {
      if (scions_.contains(rec.candidate)) note_detection_timeout(rec.candidate);
    }
  }

  // 3. Export handshakes whose owner is the dead peer can never be acked;
  //    abandon them — and the invocations waiting on them — now instead of
  //    grinding through the retry ladder.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> doomed;  // (handshake, call)
  for (const auto& [id, hs] : handshakes_) {
    if (hs.owner == peer) doomed.emplace_back(id, hs.call_id);
  }
  for (const auto& [id, call_id] : doomed) {
    auto it = handshakes_.find(id);
    if (it == handshakes_.end()) continue;  // sibling teardown got it first
    metrics().add_scion_abandoned.add();
    unpin_stub(it->second.pinned_stub);
    handshakes_.erase(it);
    abandon_invoke(call_id);
  }

  // 4. Stubs toward the dead peer: their targets died with it. Strip every
  //    holding field first so heap and reference listing stay exact, then
  //    retire the stub itself.
  std::vector<RefId> dead_refs;
  for (const auto& [ref, stub] : stubs_) {
    if (stub.target.owner == peer) dead_refs.push_back(ref);
  }
  for (RefId ref : dead_refs) {
    for (auto& [seq, obj] : heap_.objects()) {
      (void)seq;
      auto& rf = obj.remote_fields;
      rf.erase(std::remove(rf.begin(), rf.end(), ref), rf.end());
    }
    pinned_.erase(ref);
    pinned_set_.erase(ref);
    stubs_.erase(ref);
    metrics().eviction_stubs_retired.add();
    metrics().stubs_deleted.add();
  }

  // 5. Reference-listing and transport-side state toward the peer, so
  //    survivor memory stays bounded under churn.
  contacts_.erase(peer);
  nss_seq_.erase(peer);
  nss_gates_.erase(peer);
  nss_solicits_.erase(peer);
  for (auto it = inflight_calls_.begin(); it != inflight_calls_.end();) {
    it = it->second.first == peer ? inflight_calls_.erase(it) : ++it;
  }
  batcher_->discard_peer(peer);
  peer_health_.erase_peer(peer);
  if (peer_evicted_hook_) peer_evicted_hook_(peer);
}

void Process::note_detection_timeout(RefId candidate) {
  if (!cfg_.adaptive_faults) return;
  std::uint32_t& failures = candidate_failures_[candidate];
  if (failures < 20) ++failures;
  candidate_not_before_[candidate] =
      env_.now() + backoff_delay(cfg_.dcda_scan_period_us, cfg_.detection_backoff_cap_us,
                                 static_cast<int>(failures), env_.rng());
}

void Process::run_dcda_scan() {
  if (!cfg_.dcda_enabled) return;
  for (const auto& rec : detector_->expire(env_.now())) {
    note_detection_timeout(rec.candidate);
  }
  backtracer_->expire(env_.now(), cfg_.detection_timeout_us);
  CandidateHealthView health;
  health.peers = &peer_health_;
  health.not_before = &candidate_not_before_;
  const std::vector<RefId> cands = select_candidates(
      scions_, summary_.get(), detector_->manager(), cfg_, env_.now(), scan_seq_++,
      cfg_.adaptive_faults ? &health : nullptr,
      cfg_.adaptive_faults ? &env_.metrics() : nullptr);
  for (RefId c : cands) {
    detector_->start_detection(c, env_.now());
  }
  // Drop backoff state for scions that no longer exist (collected or expired).
  for (auto it = candidate_not_before_.begin(); it != candidate_not_before_.end();) {
    if (!scions_.contains(it->first)) {
      candidate_failures_.erase(it->first);
      it = candidate_not_before_.erase(it);
    } else {
      ++it;
    }
  }
}

void Process::start_backtrace(RefId candidate) { backtracer_->start(candidate); }

}  // namespace adgc
