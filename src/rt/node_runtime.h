// Standalone-node runtime: one ADGC Process per OS process, over real TCP.
//
// The third Env implementation (after the deterministic simulator and the
// in-memory threaded runtime). It hosts exactly ONE Process and bridges the
// TcpTransport's socket event loop onto the actor's single logical thread:
// the IO thread only enqueues work items; the node's own loop thread drains
// them, pumps wall-clock timers and is the only thread that ever touches
// the Process.
//
// Incarnation recovery across real process kills: the incarnation lives in
// a small file in `state_dir`. Every start reads it, bumps it and writes it
// back *before* going on the network, so a node that was kill-9'd comes
// back under a strictly higher incarnation no matter how it died. Peers
// learn the new incarnation from the connection hello and treat the bump as
// the crash notification (Process::on_peer_crashed), exactly as the
// in-memory runtimes' membership tables do. Envelope staleness filtering
// also mirrors them: inbound envelopes stamped with an older incarnation of
// the sender, or addressed to a dead incarnation of ours, are dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/net/tcp_transport.h"
#include "src/net/transport.h"
#include "src/rt/process.h"

namespace adgc {

class NodeRuntime {
 public:
  struct Options {
    ProcessId pid = 0;
    /// cfg.proc drives the collectors (periods are wall-clock microseconds
    /// here); cfg.net is ignored — latency/loss now come from a real kernel.
    RuntimeConfig cfg;
    std::string listen = "127.0.0.1:0";
    std::map<ProcessId, PeerAddr> peers;
    /// Directory for the incarnation file and (unless cfg.proc.snapshot_dir
    /// is set explicitly) the snapshot store. Empty = fully volatile node:
    /// incarnation 0 every start, no recovery.
    std::string state_dir;
    /// Per-peer transport write-queue bound (frames) before shedding.
    std::size_t peer_queue_limit = 512;
    /// Admin HTTP endpoint (/metrics, /healthz, /tracez) served from the
    /// transport's IO thread. Off by default; "host:port" with port 0 binds
    /// kernel-assigned (see admin_port()).
    bool admin_enabled = false;
    std::string admin_listen = "127.0.0.1:0";
  };

  explicit NodeRuntime(Options opts);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Binds the listen socket, recovers incarnation + snapshot state, starts
  /// the IO and loop threads and kicks off the periodic collectors.
  void start();

  /// Clean drain: stops the loop thread, then gives the transport up to
  /// `drain_us` to flush queued writes. Idempotent (the SIGTERM path).
  void stop(SimTime drain_us = 200'000);

  bool running() const { return running_.load(std::memory_order_acquire); }
  Incarnation incarnation() const { return incarnation_; }
  /// True once a peer answered this incarnation's traffic with an Evicted
  /// NACK: the cluster has declared us dead. The only safe move is to exit
  /// and restart under a fresh incarnation (tools/adgc_node does exactly
  /// that). Thread-safe.
  bool self_evicted() const { return self_evicted_.load(std::memory_order_acquire); }
  /// True when start() recovered state from a persisted snapshot.
  bool recovered() const { return recovered_; }
  std::uint16_t port() const { return transport_ ? transport_->port() : 0; }
  /// Actual admin endpoint port; 0 when disabled.
  std::uint16_t admin_port() const { return transport_ ? transport_->admin_port() : 0; }

  /// Runs `fn(process)` on the node's loop thread, asynchronously.
  void post(std::function<void(Process&)> fn);
  /// Same, but blocks the caller until the closure ran. Must not be called
  /// from the loop thread itself.
  void post_sync(std::function<void(Process&)> fn);

  /// Direct access; only safe after stop().
  Process& unsafe_proc() { return *proc_; }

  TcpTransport& transport() { return *transport_; }
  Metrics total_metrics();
  /// Retained structured-trace events of this node (adgc_node --trace-file).
  /// Thread-safe; empty when tracing is disabled.
  std::vector<obs::Event> trace_events() const;

 private:
  class NodeEnv;
  using WorkItem = std::variant<Envelope, std::function<void()>>;

  void loop();
  void enqueue(WorkItem item);
  Incarnation load_and_bump_incarnation();
  /// Serves one admin request; runs on the transport IO thread, so it only
  /// reads atomic metrics, the mutex-guarded health cache and the trace ring.
  obs::AdminResponse handle_admin(const obs::HttpRequest& req);
  /// Rebuilds the /healthz body from the Process's peer-health tracker; loop
  /// thread only (the tracker is actor state). Self-rescheduling.
  void refresh_health_cache();

  Options opts_;
  Incarnation incarnation_ = 0;
  bool recovered_ = false;
  Metrics net_metrics_;

  std::unique_ptr<NodeEnv> env_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<Process> proc_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkItem> queue_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> loop_stop_{false};
  std::atomic<bool> self_evicted_{false};

  /// /healthz body, refreshed periodically on the loop thread and served
  /// from the IO thread.
  mutable std::mutex health_mu_;
  std::string health_cache_ = "starting\n";
};

}  // namespace adgc
