// Real multi-threaded runtime: one OS thread per process, free-running.
//
// Demonstrates the paper's asynchrony claim under true concurrency: no
// barrier, no global clock — each process takes snapshots, runs its LGC and
// exchanges CDMs on its own wall-clock timers.
//
// Processes remain actors: all interaction with a Process goes through
// post()/post_sync(), which run the closure on that process's own thread.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/config.h"
#include "src/common/metrics.h"
#include "src/net/threaded_network.h"
#include "src/net/transport.h"
#include "src/rt/process.h"

namespace adgc {

class ThreadedRuntime {
 public:
  explicit ThreadedRuntime(std::size_t num_processes, RuntimeConfig cfg = {});
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  std::size_t size() const { return procs_.size(); }

  /// Runs `fn(process)` on the process's own thread, asynchronously. Skipped
  /// silently if the process is crashed when the closure comes up.
  void post(ProcessId pid, std::function<void(Process&)> fn);
  /// Same, but blocks the caller until the closure has run (or been skipped
  /// because the process is down).
  void post_sync(ProcessId pid, std::function<void(Process&)> fn);

  // ---- crash/restart fault injection ----
  /// Kills the process: volatile state and pending timers are discarded on
  /// its own thread; the network stops delivering to it; peers get
  /// on_peer_crashed. Blocks until the state is actually gone. Must be
  /// called from outside the worker threads (e.g. the test driver).
  void crash(ProcessId pid);
  /// Restarts a crashed process under the next incarnation, recovering from
  /// the persistent snapshot store. Blocks until the process is running.
  /// Returns true if a snapshot was recovered.
  bool restart(ProcessId pid);
  bool alive(ProcessId pid) const;
  Incarnation incarnation(ProcessId pid) const;

  /// Stops all worker threads (idempotent). After shutdown the processes
  /// can be inspected directly from the caller's thread.
  void shutdown();
  bool running() const { return !stopped_.load(); }

  /// Direct access; only safe after shutdown() (or from post closures).
  Process& unsafe_proc(ProcessId pid) { return *procs_.at(pid); }

  /// Network fault-injection surface (thread-safe: loss, duplication,
  /// link partitions can be flipped mid-run by a chaos driver).
  ThreadedNetwork& network() { return *network_; }

  Metrics total_metrics();

 private:
  class ThreadEnv;

  void worker(ProcessId pid);

  RuntimeConfig cfg_;
  Metrics net_metrics_;
  std::unique_ptr<ThreadedNetwork> network_;
  std::vector<std::unique_ptr<ThreadEnv>> envs_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopped_{false};
};

}  // namespace adgc
