// Deterministic discrete-event runtime.
//
// Owns N processes, the simulated network and one global event queue.
// Everything — message deliveries, collector timers — is an event; a run is
// a pure function of (configuration, seed, mutator script), which is what
// makes the safety/liveness test suite exhaustive and reproducible.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <variant>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/sim_network.h"
#include "src/net/transport.h"
#include "src/rt/process.h"

namespace adgc {

class Runtime {
 public:
  explicit Runtime(std::size_t num_processes, RuntimeConfig cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::size_t size() const { return procs_.size(); }
  Process& proc(ProcessId pid) { return *procs_.at(pid); }
  const Process& proc(ProcessId pid) const { return *procs_.at(pid); }

  SimTime now() const { return now_; }

  // ---- crash/restart fault injection ----
  /// Kills the process: its state is lost, queued timers and in-flight
  /// messages to/from it are discarded at execution time, and every other
  /// live process gets an on_peer_crashed notification (aborting in-flight
  /// detections that may have touched it).
  void crash(ProcessId pid);
  /// Brings a crashed process back under the next incarnation. It recovers
  /// heap + DGC tables + detector summary from the persistent snapshot store
  /// (config `snapshot_dir`); with no usable snapshot it cold-starts empty.
  /// Returns true if a snapshot was recovered.
  bool restart(ProcessId pid);
  bool alive(ProcessId pid) const { return procs_.at(pid) != nullptr; }
  Incarnation incarnation(ProcessId pid) const { return incarnations_.at(pid); }

  /// Executes every event scheduled in the next `duration` microseconds.
  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  /// Executes one event. Returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

  SimNetwork& network() { return *network_; }
  const RuntimeConfig& config() const { return cfg_; }

  /// Network-level counters (sends/losses/bytes).
  Metrics& net_metrics() { return net_metrics_; }
  /// Sum of all per-process counters plus the network's.
  Metrics total_metrics() const;

  // ---- convenience graph construction ----
  /// Creates a remote reference from object `from` to object `to` (their
  /// owners may be any two distinct processes). Returns the RefId.
  RefId link(ObjectId from, ObjectId to);
  /// Makes `from` hold an existing reference (shared proxy).
  void link_existing(ObjectId from, RefId ref) {
    proc(from.owner).hold_existing_ref(from.seq, ref);
  }

 private:
  struct TimerEvent {
    ProcessId owner;
    /// Incarnation of the owner when the timer was armed; `fn` captures that
    /// Process instance, so the timer is skipped if the owner has since
    /// crashed or been replaced by a newer incarnation.
    Incarnation inc;
    std::function<void()> fn;
  };
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break: total determinism
    std::variant<Envelope, TimerEvent> what;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class SimEnv;  // per-process Env implementation

  void push_at(SimTime when, std::variant<Envelope, TimerEvent> what);
  void execute(Event&& ev);

  RuntimeConfig cfg_;
  Rng rng_;
  SimTime now_ = 0;
  std::uint64_t next_event_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  Metrics net_metrics_;
  std::unique_ptr<SimNetwork> network_;
  std::vector<std::unique_ptr<SimEnv>> envs_;
  std::vector<std::unique_ptr<Process>> procs_;  // null slot = crashed
  std::vector<Incarnation> incarnations_;
};

}  // namespace adgc
