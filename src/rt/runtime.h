// Deterministic discrete-event runtime.
//
// Owns N processes, the simulated network and one global event queue.
// Everything — message deliveries, collector timers — is an event; a run is
// a pure function of (configuration, seed, mutator script), which is what
// makes the safety/liveness test suite exhaustive and reproducible.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <variant>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/sim_network.h"
#include "src/net/transport.h"
#include "src/rt/process.h"

namespace adgc {

class Runtime {
 public:
  explicit Runtime(std::size_t num_processes, RuntimeConfig cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::size_t size() const { return procs_.size(); }
  Process& proc(ProcessId pid) { return *procs_.at(pid); }
  const Process& proc(ProcessId pid) const { return *procs_.at(pid); }

  SimTime now() const { return now_; }

  /// Executes every event scheduled in the next `duration` microseconds.
  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  /// Executes one event. Returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

  SimNetwork& network() { return *network_; }
  const RuntimeConfig& config() const { return cfg_; }

  /// Network-level counters (sends/losses/bytes).
  Metrics& net_metrics() { return net_metrics_; }
  /// Sum of all per-process counters plus the network's.
  Metrics total_metrics() const;

  // ---- convenience graph construction ----
  /// Creates a remote reference from object `from` to object `to` (their
  /// owners may be any two distinct processes). Returns the RefId.
  RefId link(ObjectId from, ObjectId to);
  /// Makes `from` hold an existing reference (shared proxy).
  void link_existing(ObjectId from, RefId ref) {
    proc(from.owner).hold_existing_ref(from.seq, ref);
  }

 private:
  struct TimerEvent {
    ProcessId owner;
    std::function<void()> fn;
  };
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break: total determinism
    std::variant<Envelope, TimerEvent> what;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class SimEnv;  // per-process Env implementation

  void push_at(SimTime when, std::variant<Envelope, TimerEvent> what);
  void execute(Event&& ev);

  RuntimeConfig cfg_;
  Rng rng_;
  SimTime now_ = 0;
  std::uint64_t next_event_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  Metrics net_metrics_;
  std::unique_ptr<SimNetwork> network_;
  std::vector<std::unique_ptr<SimEnv>> envs_;
  std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace adgc
