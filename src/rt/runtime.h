// Deterministic discrete-event runtime.
//
// Owns N processes, the simulated network and one global event queue.
// Everything — message deliveries, collector timers — is an event; a run is
// a pure function of (configuration, seed, mutator script), which is what
// makes the safety/liveness test suite exhaustive and reproducible.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <variant>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/sim_network.h"
#include "src/net/transport.h"
#include "src/rt/process.h"

namespace adgc {

class Runtime {
 public:
  explicit Runtime(std::size_t num_processes, RuntimeConfig cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::size_t size() const { return procs_.size(); }
  Process& proc(ProcessId pid) { return *procs_.at(pid); }
  const Process& proc(ProcessId pid) const { return *procs_.at(pid); }

  SimTime now() const { return now_; }

  // ---- crash/restart fault injection ----
  /// Kills the process: its state is lost, queued timers and in-flight
  /// messages to/from it are discarded at execution time, and every other
  /// live process gets an on_peer_crashed notification (aborting in-flight
  /// detections that may have touched it).
  void crash(ProcessId pid);
  /// Brings a crashed process back under the next incarnation. It recovers
  /// heap + DGC tables + detector summary from the persistent snapshot store
  /// (config `snapshot_dir`); with no usable snapshot it cold-starts empty.
  /// Returns true if a snapshot was recovered.
  bool restart(ProcessId pid);
  bool alive(ProcessId pid) const { return procs_.at(pid) != nullptr; }
  Incarnation incarnation(ProcessId pid) const { return incarnations_.at(pid); }

  /// Executes every event scheduled in the next `duration` microseconds.
  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  /// Executes one event. Returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size() + list_.size(); }

  // ---- explicit scheduling (model-checking choice points) ----
  /// One schedulable event, as the model checker's Explorer sees it.
  struct PendingInfo {
    std::uint64_t id = 0;   // creation sequence number; stable handle
    SimTime when = 0;       // the time the normal scheduler would fire it
    bool is_message = false;
    ProcessId src = kNoProcess;  // kNoProcess for timers
    ProcessId dst = kNoProcess;  // timer: the owning process
    std::uint8_t tag = 0;        // MessageTag byte for messages, 0 for timers
  };
  /// Switches the runtime into explicit-schedule mode: events no longer fire
  /// in timestamp order under step()/run_until(); they accumulate in a
  /// pending list and the caller picks which to execute (or drop) by id.
  /// run_until() degrades to a pure clock advance. Any event already queued
  /// (e.g. the periodic collector timers armed by start()) migrates into the
  /// pending list. One-way switch.
  void enable_explicit_schedule();
  bool explicit_schedule() const { return explicit_; }
  /// The pending events, in creation order (deterministic).
  std::vector<PendingInfo> pending_infos() const;
  /// Executes the pending event `id` now; logical time advances to
  /// max(now, event time). Returns false if no such event is pending.
  bool execute_event(std::uint64_t id);
  /// Discards the pending event `id` without executing it (models message
  /// loss when it is an Envelope). Returns false if no such event is pending.
  bool drop_event(std::uint64_t id);
  /// Removes pending events the delivery path would ignore anyway (dead or
  /// stale-incarnation destination/owner), bumping the same drop counters
  /// execute() would. Keeps the choice space free of no-op decisions.
  std::size_t prune_stale_events();

  SimNetwork& network() { return *network_; }
  const RuntimeConfig& config() const { return cfg_; }

  /// Network-level counters (sends/losses/bytes).
  Metrics& net_metrics() { return net_metrics_; }
  /// Sum of all per-process counters plus the network's.
  Metrics total_metrics() const;
  /// All retained structured-trace events across processes, merged and
  /// sorted by timestamp (adgc_sim --obs-dump). Empty when tracing is off.
  std::vector<obs::Event> trace_events() const;

  // ---- convenience graph construction ----
  /// Creates a remote reference from object `from` to object `to` (their
  /// owners may be any two distinct processes). Returns the RefId.
  RefId link(ObjectId from, ObjectId to);
  /// Makes `from` hold an existing reference (shared proxy).
  void link_existing(ObjectId from, RefId ref) {
    proc(from.owner).hold_existing_ref(from.seq, ref);
  }

 private:
  struct TimerEvent {
    ProcessId owner;
    /// Incarnation of the owner when the timer was armed; `fn` captures that
    /// Process instance, so the timer is skipped if the owner has since
    /// crashed or been replaced by a newer incarnation.
    Incarnation inc;
    std::function<void()> fn;
  };
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break: total determinism
    std::variant<Envelope, TimerEvent> what;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class SimEnv;  // per-process Env implementation

  void push_at(SimTime when, std::variant<Envelope, TimerEvent> what);
  void execute(Event&& ev);
  /// True when execute() would discard the event without any effect.
  bool event_stale(const Event& ev) const;

  RuntimeConfig cfg_;
  Rng rng_;
  SimTime now_ = 0;
  std::uint64_t next_event_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  bool explicit_ = false;
  std::vector<Event> list_;  // pending events in explicit-schedule mode
  Metrics net_metrics_;
  std::unique_ptr<SimNetwork> network_;
  std::vector<std::unique_ptr<SimEnv>> envs_;
  std::vector<std::unique_ptr<Process>> procs_;  // null slot = crashed
  std::vector<Incarnation> incarnations_;
};

}  // namespace adgc
