#include "src/rt/threaded_runtime.h"

#include <chrono>
#include <future>
#include <queue>
#include <stdexcept>

namespace adgc {

namespace {
SimTime steady_us() {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count());
}
}  // namespace

/// Env bound to one worker thread. Timers live in a min-heap drained by the
/// worker loop; schedule() is only ever called from that same thread (the
/// Process is an actor), so no locking is needed.
class ThreadedRuntime::ThreadEnv final : public Env {
 public:
  ThreadEnv(ThreadedRuntime& rt, ProcessId pid, std::uint64_t seed)
      : rt_(rt), pid_(pid), rng_(seed), trace_(rt.cfg_.proc.trace_ring_capacity) {}

  SimTime now() const override { return steady_us(); }

  void send(ProcessId dst, const MessagePayload& msg) override {
    send_encoded(dst, encode_message(msg));
  }

  void send_encoded(ProcessId dst, std::vector<std::byte> bytes) override {
    Envelope env;
    env.src = pid_;
    env.dst = dst;
    env.bytes = std::move(bytes);
    rt_.network_->send(std::move(env));
  }

  void schedule(SimTime delay, std::function<void()> fn) override {
    timers_.push(Timer{now() + delay, next_timer_seq_++, std::move(fn)});
  }

  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }
  obs::TraceRing* trace() override { return trace_.enabled() ? &trace_ : nullptr; }

  /// Thread-safe: the snapshot pipeline's worker hands its completion back
  /// to the owning worker thread through the network's post queue.
  void post(std::function<void()> fn) override {
    rt_.network_->post(pid_, std::move(fn));
  }

  bool real_time() const override { return true; }

  /// Drops every pending timer (crash path; their closures capture the dying
  /// Process). Must run on the owning worker thread, like all timer access.
  void clear_timers() { timers_ = {}; }

  /// Fires every due timer; returns microseconds until the next one (or a
  /// default poll interval when none are queued).
  SimTime pump_timers() {
    const SimTime now_us = now();
    while (!timers_.empty() && timers_.top().deadline <= now_us) {
      // Copy out before pop: the callback may schedule more timers.
      auto fn = timers_.top().fn;
      timers_.pop();
      fn();
    }
    if (timers_.empty()) return 10'000;
    const SimTime next = timers_.top().deadline;
    const SimTime cur = now();
    return next > cur ? next - cur : 0;
  }

 private:
  struct Timer {
    SimTime deadline;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator<(const Timer& other) const {
      // priority_queue is a max-heap: invert.
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  ThreadedRuntime& rt_;
  ProcessId pid_;
  Rng rng_;
  Metrics metrics_;
  obs::TraceRing trace_;
  std::priority_queue<Timer> timers_;
  std::uint64_t next_timer_seq_ = 0;
};

ThreadedRuntime::ThreadedRuntime(std::size_t num_processes, RuntimeConfig cfg) : cfg_(cfg) {
  network_ = std::make_unique<ThreadedNetwork>(num_processes, cfg_.net, cfg_.seed,
                                               &net_metrics_);
  Rng seeder(cfg_.seed);
  for (std::size_t i = 0; i < num_processes; ++i) {
    envs_.push_back(std::make_unique<ThreadEnv>(*this, static_cast<ProcessId>(i),
                                                seeder.next_u64()));
    procs_.push_back(std::make_unique<Process>(static_cast<ProcessId>(i), cfg_.proc,
                                               *envs_.back()));
  }
  for (std::size_t i = 0; i < num_processes; ++i) {
    threads_.emplace_back([this, i] { worker(static_cast<ProcessId>(i)); });
    // Kick off the periodic collectors from the process's own thread.
    post(static_cast<ProcessId>(i), [](Process& p) { p.start(); });
  }
}

ThreadedRuntime::~ThreadedRuntime() { shutdown(); }

void ThreadedRuntime::worker(ProcessId pid) {
  ThreadEnv& env = *envs_.at(pid);
  while (!stopped_.load(std::memory_order_acquire)) {
    const SimTime wait = std::min<SimTime>(env.pump_timers(), 10'000);
    auto item = network_->poll(pid, wait);
    if (!item) continue;
    if (auto* envl = std::get_if<Envelope>(&*item)) {
      // procs_[pid] is written only from this thread (the posted crash /
      // restart closures), so the re-resolve each item is race-free.
      Process* proc = procs_.at(pid).get();
      if (!proc) {
        env.metrics().messages_dropped_crashed.add();
        continue;
      }
      if (envl->src_inc != network_->incarnation(envl->src) ||
          envl->dst_inc != network_->incarnation(pid)) {
        env.metrics().messages_stale_incarnation.add();
        continue;
      }
      env.metrics().messages_delivered.add();
      proc->deliver(*envl);
    } else {
      std::get<std::function<void()>>(*item)();
    }
  }
}

void ThreadedRuntime::post(ProcessId pid, std::function<void(Process&)> fn) {
  // Resolve the Process at execution time, on the worker thread: the pointer
  // captured at post time could dangle across a crash/restart.
  network_->post(pid, [this, pid, fn = std::move(fn)] {
    if (Process* proc = procs_.at(pid).get()) fn(*proc);
  });
}

void ThreadedRuntime::post_sync(ProcessId pid, std::function<void(Process&)> fn) {
  std::promise<void> done;
  auto fut = done.get_future();
  network_->post(pid, [this, pid, &fn, &done] {
    if (Process* proc = procs_.at(pid).get()) fn(*proc);
    done.set_value();
  });
  fut.wait();
}

void ThreadedRuntime::crash(ProcessId pid) {
  network_->set_down(pid, true);  // stop deliveries right away
  std::promise<void> done;
  auto fut = done.get_future();
  network_->post(pid, [this, pid, &done] {
    envs_.at(pid)->clear_timers();  // closures capture the dying Process
    procs_.at(pid).reset();
    envs_.at(pid)->metrics().process_crashes.add();
    obs::emit(envs_.at(pid)->trace(),
              {envs_.at(pid)->now(), pid, obs::EventType::kCrash, 0, pid, 0, 0});
    done.set_value();
  });
  fut.wait();
  for (ProcessId p = 0; p < static_cast<ProcessId>(size()); ++p) {
    if (p == pid) continue;
    post(p, [pid](Process& proc) { proc.on_peer_crashed(pid); });
  }
}

bool ThreadedRuntime::restart(ProcessId pid) {
  if (alive(pid)) throw std::logic_error("restart: process is alive");
  // Bump first so concurrent senders either stamp the old incarnation (their
  // message is dropped by the stale check) or the new one; then reopen the
  // network and construct the process on its own thread.
  const Incarnation inc = network_->bump_incarnation(pid);
  std::promise<bool> done;
  auto fut = done.get_future();
  network_->post(pid, [this, pid, inc, &done] {
    procs_.at(pid) = std::make_unique<Process>(pid, cfg_.proc, *envs_.at(pid), inc);
    const bool recovered = procs_.at(pid)->recover_from_store();
    envs_.at(pid)->metrics().process_restarts.add();
    if (recovered) envs_.at(pid)->metrics().restarts_recovered.add();
    obs::emit(envs_.at(pid)->trace(),
              {envs_.at(pid)->now(), pid, obs::EventType::kRestart, 0, pid, inc,
               recovered ? 1u : 0u});
    procs_.at(pid)->start();
    done.set_value(recovered);
  });
  network_->set_down(pid, false);
  return fut.get();
}

bool ThreadedRuntime::alive(ProcessId pid) const { return !network_->is_down(pid); }

Incarnation ThreadedRuntime::incarnation(ProcessId pid) const {
  return network_->incarnation(pid);
}

void ThreadedRuntime::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  network_->shutdown();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

Metrics ThreadedRuntime::total_metrics() {
  Metrics total;
  total.merge(net_metrics_);
  for (auto& env : envs_) total.merge(env->metrics());
  return total;
}

}  // namespace adgc
