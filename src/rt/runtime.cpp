#include "src/rt/runtime.h"

#include <utility>

namespace adgc {

class Runtime::SimEnv final : public Env {
 public:
  SimEnv(Runtime& rt, ProcessId pid, std::uint64_t seed) : rt_(rt), pid_(pid), rng_(seed) {}

  SimTime now() const override { return rt_.now_; }

  void send(ProcessId dst, const MessagePayload& msg) override {
    Envelope env;
    env.src = pid_;
    env.dst = dst;
    env.bytes = encode_message(msg);
    rt_.network_->send(rt_.now_, std::move(env));
  }

  void schedule(SimTime delay, std::function<void()> fn) override {
    rt_.push_at(rt_.now_ + delay, TimerEvent{pid_, std::move(fn)});
  }

  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

 private:
  Runtime& rt_;
  ProcessId pid_;
  Rng rng_;
  Metrics metrics_;
};

Runtime::Runtime(std::size_t num_processes, RuntimeConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  network_ = std::make_unique<SimNetwork>(
      cfg_.net, rng_.fork(),
      [this](SimTime when, Envelope env) { push_at(when, std::move(env)); },
      &net_metrics_);
  envs_.reserve(num_processes);
  procs_.reserve(num_processes);
  for (std::size_t i = 0; i < num_processes; ++i) {
    envs_.push_back(std::make_unique<SimEnv>(*this, static_cast<ProcessId>(i),
                                             rng_.next_u64()));
    procs_.push_back(std::make_unique<Process>(static_cast<ProcessId>(i), cfg_.proc,
                                               *envs_.back()));
  }
  for (auto& p : procs_) p->start();
}

Runtime::~Runtime() = default;

void Runtime::push_at(SimTime when, std::variant<Envelope, TimerEvent> what) {
  queue_.push(Event{when, next_event_seq_++, std::move(what)});
}

void Runtime::execute(Event&& ev) {
  now_ = ev.when;
  if (auto* env = std::get_if<Envelope>(&ev.what)) {
    net_metrics_.messages_delivered.add();
    procs_.at(env->dst)->deliver(*env);
  } else {
    std::get<TimerEvent>(ev.what).fn();
  }
}

bool Runtime::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  execute(std::move(ev));
  return true;
}

void Runtime::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    execute(std::move(ev));
  }
  now_ = std::max(now_, deadline);
}

void Runtime::run_for(SimTime duration) { run_until(now_ + duration); }

Metrics Runtime::total_metrics() const {
  Metrics total;
  total.merge(net_metrics_);
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    total.merge(const_cast<Runtime*>(this)->envs_[i]->metrics());
  }
  return total;
}

RefId Runtime::link(ObjectId from, ObjectId to) {
  const ExportedRef er = proc(to.owner).export_own_object(to.seq, from.owner);
  return proc(from.owner).install_ref(from.seq, er);
}

}  // namespace adgc
