#include "src/rt/runtime.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace adgc {

class Runtime::SimEnv final : public Env {
 public:
  SimEnv(Runtime& rt, ProcessId pid, std::uint64_t seed)
      : rt_(rt), pid_(pid), rng_(seed), trace_(rt.cfg_.proc.trace_ring_capacity) {}

  SimTime now() const override { return rt_.now_; }

  void send(ProcessId dst, const MessagePayload& msg) override {
    send_encoded(dst, encode_message(msg));
  }

  void send_encoded(ProcessId dst, std::vector<std::byte> bytes) override {
    Envelope env;
    env.src = pid_;
    env.dst = dst;
    env.src_inc = rt_.incarnations_[pid_];
    env.dst_inc = rt_.incarnations_[dst];
    env.bytes = std::move(bytes);
    rt_.network_->send(rt_.now_, std::move(env));
  }

  void schedule(SimTime delay, std::function<void()> fn) override {
    rt_.push_at(rt_.now_ + delay, TimerEvent{pid_, rt_.incarnations_[pid_], std::move(fn)});
  }

  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }
  obs::TraceRing* trace() override { return trace_.enabled() ? &trace_ : nullptr; }

 private:
  Runtime& rt_;
  ProcessId pid_;
  Rng rng_;
  Metrics metrics_;
  obs::TraceRing trace_;
};

Runtime::Runtime(std::size_t num_processes, RuntimeConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  network_ = std::make_unique<SimNetwork>(
      cfg_.net, rng_.fork(),
      [this](SimTime when, Envelope env) { push_at(when, std::move(env)); },
      &net_metrics_);
  envs_.reserve(num_processes);
  procs_.reserve(num_processes);
  incarnations_.assign(num_processes, 0);
  for (std::size_t i = 0; i < num_processes; ++i) {
    envs_.push_back(std::make_unique<SimEnv>(*this, static_cast<ProcessId>(i),
                                             rng_.next_u64()));
    procs_.push_back(std::make_unique<Process>(static_cast<ProcessId>(i), cfg_.proc,
                                               *envs_.back()));
  }
  for (auto& p : procs_) p->start();
}

void Runtime::crash(ProcessId pid) {
  if (!alive(pid)) throw std::logic_error("crash: process already down");
  procs_.at(pid).reset();  // volatile state gone; timers/messages die on the checks
  envs_.at(pid)->metrics().process_crashes.add();
  obs::emit(envs_.at(pid)->trace(),
            {now_, pid, obs::EventType::kCrash, 0, pid, 0, 0});
  for (auto& p : procs_) {
    if (p) p->on_peer_crashed(pid);
  }
}

bool Runtime::restart(ProcessId pid) {
  if (alive(pid)) throw std::logic_error("restart: process is alive");
  ++incarnations_.at(pid);
  procs_.at(pid) = std::make_unique<Process>(pid, cfg_.proc, *envs_.at(pid),
                                             incarnations_.at(pid));
  const bool recovered = procs_.at(pid)->recover_from_store();
  envs_.at(pid)->metrics().process_restarts.add();
  if (recovered) envs_.at(pid)->metrics().restarts_recovered.add();
  obs::emit(envs_.at(pid)->trace(),
            {now_, pid, obs::EventType::kRestart, 0, pid, incarnations_.at(pid),
             recovered ? 1u : 0u});
  procs_.at(pid)->start();
  return recovered;
}

Runtime::~Runtime() = default;

void Runtime::push_at(SimTime when, std::variant<Envelope, TimerEvent> what) {
  if (explicit_) {
    list_.push_back(Event{when, next_event_seq_++, std::move(what)});
  } else {
    queue_.push(Event{when, next_event_seq_++, std::move(what)});
  }
}

void Runtime::enable_explicit_schedule() {
  if (explicit_) return;
  explicit_ = true;
  // Migrate whatever the ordered scheduler already holds (the periodic
  // collector timers armed by start()) into the explicit pending list.
  while (!queue_.empty()) {
    list_.push_back(queue_.top());
    queue_.pop();
  }
}

std::vector<Runtime::PendingInfo> Runtime::pending_infos() const {
  std::vector<PendingInfo> out;
  out.reserve(list_.size());
  for (const Event& ev : list_) {
    PendingInfo info;
    info.id = ev.seq;
    info.when = ev.when;
    if (const auto* env = std::get_if<Envelope>(&ev.what)) {
      info.is_message = true;
      info.src = env->src;
      info.dst = env->dst;
      info.tag = env->bytes.empty() ? 0 : static_cast<std::uint8_t>(env->bytes[0]);
    } else {
      info.dst = std::get<TimerEvent>(ev.what).owner;
    }
    out.push_back(info);
  }
  return out;
}

bool Runtime::execute_event(std::uint64_t id) {
  for (auto it = list_.begin(); it != list_.end(); ++it) {
    if (it->seq != id) continue;
    Event ev = std::move(*it);
    list_.erase(it);
    execute(std::move(ev));
    return true;
  }
  return false;
}

bool Runtime::drop_event(std::uint64_t id) {
  for (auto it = list_.begin(); it != list_.end(); ++it) {
    if (it->seq != id) continue;
    if (std::holds_alternative<Envelope>(it->what)) net_metrics_.messages_lost.add();
    list_.erase(it);
    return true;
  }
  return false;
}

bool Runtime::event_stale(const Event& ev) const {
  if (const auto* env = std::get_if<Envelope>(&ev.what)) {
    return !alive(env->dst) || env->src_inc != incarnations_[env->src] ||
           env->dst_inc != incarnations_[env->dst];
  }
  const TimerEvent& timer = std::get<TimerEvent>(ev.what);
  return !alive(timer.owner) || timer.inc != incarnations_[timer.owner];
}

std::size_t Runtime::prune_stale_events() {
  std::size_t removed = 0;
  for (auto it = list_.begin(); it != list_.end();) {
    if (!event_stale(*it)) {
      ++it;
      continue;
    }
    if (const auto* env = std::get_if<Envelope>(&it->what)) {
      if (!alive(env->dst)) {
        net_metrics_.messages_dropped_crashed.add();
      } else {
        net_metrics_.messages_stale_incarnation.add();
      }
    }
    it = list_.erase(it);
    ++removed;
  }
  return removed;
}

void Runtime::execute(Event&& ev) {
  // max(): the explicit scheduler may fire events out of timestamp order;
  // logical time never runs backwards. (The ordered scheduler pops in
  // nondecreasing `when`, so there this is the plain assignment it was.)
  now_ = std::max(now_, ev.when);
  if (auto* env = std::get_if<Envelope>(&ev.what)) {
    if (!alive(env->dst)) {
      net_metrics_.messages_dropped_crashed.add();
      return;
    }
    // Incarnation check: a message from a dead incarnation reflects state the
    // restart rolled back; one addressed to a dead incarnation may name
    // identifiers the restarted process never knew. Drop both kinds.
    if (env->src_inc != incarnations_[env->src] ||
        env->dst_inc != incarnations_[env->dst]) {
      net_metrics_.messages_stale_incarnation.add();
      return;
    }
    net_metrics_.messages_delivered.add();
    procs_.at(env->dst)->deliver(*env);
  } else {
    TimerEvent& timer = std::get<TimerEvent>(ev.what);
    // Skip timers armed by a crashed or replaced incarnation: their closures
    // capture the destroyed Process instance.
    if (!alive(timer.owner) || timer.inc != incarnations_[timer.owner]) return;
    timer.fn();
  }
}

bool Runtime::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  execute(std::move(ev));
  return true;
}

void Runtime::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    execute(std::move(ev));
  }
  now_ = std::max(now_, deadline);
}

void Runtime::run_for(SimTime duration) { run_until(now_ + duration); }

Metrics Runtime::total_metrics() const {
  Metrics total;
  total.merge(net_metrics_);
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    total.merge(const_cast<Runtime*>(this)->envs_[i]->metrics());
  }
  return total;
}

std::vector<obs::Event> Runtime::trace_events() const {
  std::vector<obs::Event> all;
  for (const auto& env : envs_) {
    if (const obs::TraceRing* ring = const_cast<SimEnv*>(env.get())->trace()) {
      const std::vector<obs::Event> evs = ring->snapshot();
      all.insert(all.end(), evs.begin(), evs.end());
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const obs::Event& a, const obs::Event& b) {
    return a.ts < b.ts;
  });
  return all;
}

RefId Runtime::link(ObjectId from, ObjectId to) {
  const ExportedRef er = proc(to.owner).export_own_object(to.seq, from.owner);
  return proc(from.owner).install_ref(from.seq, er);
}

}  // namespace adgc
