#include "src/rt/node_runtime.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "src/common/log.h"
#include "src/obs/prom.h"

namespace adgc {

namespace {
SimTime steady_us() {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count());
}
}  // namespace

/// Env bound to the node's loop thread. Timers in a min-heap drained by the
/// loop; schedule() is only ever called from that thread (the Process is an
/// actor), so no locking.
class NodeRuntime::NodeEnv final : public Env {
 public:
  NodeEnv(NodeRuntime& rt, std::uint64_t seed)
      : rt_(rt), rng_(seed), trace_(rt.opts_.cfg.proc.trace_ring_capacity) {}

  SimTime now() const override { return steady_us(); }

  void send(ProcessId dst, const MessagePayload& msg) override {
    send_encoded(dst, encode_message(msg));
  }

  void send_encoded(ProcessId dst, std::vector<std::byte> bytes) override {
    Envelope env;
    env.src = rt_.opts_.pid;
    env.dst = dst;
    env.src_inc = rt_.incarnation_;
    env.dst_inc = rt_.transport_->last_known_incarnation(dst);
    env.bytes = std::move(bytes);
    rt_.transport_->send(std::move(env));
  }

  void schedule(SimTime delay, std::function<void()> fn) override {
    timers_.push(Timer{now() + delay, next_timer_seq_++, std::move(fn)});
  }

  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }
  obs::TraceRing* trace() override { return trace_.enabled() ? &trace_ : nullptr; }

  /// Thread-safe: the snapshot pipeline's worker hands its completion back
  /// to the node's loop thread through the work queue.
  void post(std::function<void()> fn) override {
    rt_.enqueue(std::move(fn));
  }

  bool real_time() const override { return true; }

  /// Fires every due timer; returns microseconds until the next one (or a
  /// default poll interval when none are queued).
  SimTime pump_timers() {
    const SimTime now_us = now();
    while (!timers_.empty() && timers_.top().deadline <= now_us) {
      auto fn = timers_.top().fn;  // copy before pop: fn may schedule more
      timers_.pop();
      fn();
    }
    if (timers_.empty()) return 10'000;
    const SimTime next = timers_.top().deadline;
    const SimTime cur = now();
    return next > cur ? next - cur : 0;
  }

 private:
  struct Timer {
    SimTime deadline;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator<(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  NodeRuntime& rt_;
  Rng rng_;
  Metrics metrics_;
  obs::TraceRing trace_;
  std::priority_queue<Timer> timers_;
  std::uint64_t next_timer_seq_ = 0;
};

NodeRuntime::NodeRuntime(Options opts) : opts_(std::move(opts)) {}

NodeRuntime::~NodeRuntime() { stop(0); }

Incarnation NodeRuntime::load_and_bump_incarnation() {
  if (opts_.state_dir.empty()) return 0;
  namespace fs = std::filesystem;
  const fs::path dir = opts_.state_dir;
  fs::create_directories(dir);
  const fs::path file = dir / ("incarnation_P" + std::to_string(opts_.pid));
  Incarnation inc = 0;
  if (std::ifstream in(file); in) {
    std::uint64_t stored = 0;
    if (in >> stored) inc = static_cast<Incarnation>(stored) + 1;
  }
  // Persist before touching the network: if we crash mid-start, the next
  // start bumps past this value, never below it.
  const fs::path tmp = file.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << inc << "\n";
  }
  fs::rename(tmp, file);
  return inc;
}

void NodeRuntime::start() {
  if (running_.load()) return;
  incarnation_ = load_and_bump_incarnation();

  RuntimeConfig cfg = opts_.cfg;
  if (cfg.proc.snapshot_dir.empty() && !opts_.state_dir.empty()) {
    cfg.proc.snapshot_dir =
        (std::filesystem::path(opts_.state_dir) / "snapshots").string();
  }
  opts_.cfg = cfg;

  // Bind addresses may use port 0 (kernel-assigned; the node announces the
  // actual ports). Peer-map entries stay strict.
  const PeerAddr listen = parse_peer_addr(opts_.listen, /*allow_port_zero=*/true);
  TcpTransport::Options topts;
  topts.self = opts_.pid;
  topts.incarnation = incarnation_;
  topts.listen_host = listen.host;
  topts.listen_port = listen.port;
  topts.peers = opts_.peers;
  topts.peer_queue_limit = opts_.peer_queue_limit;
  topts.seed = cfg.seed ^ (std::uint64_t{opts_.pid} << 32) ^ incarnation_;
  if (opts_.admin_enabled) {
    const PeerAddr admin = parse_peer_addr(opts_.admin_listen, /*allow_port_zero=*/true);
    topts.admin_enabled = true;
    topts.admin_host = admin.host;
    topts.admin_port = admin.port;
  }
  transport_ = std::make_unique<TcpTransport>(topts, net_metrics_);
  transport_->set_admin_handler(
      [this](const obs::HttpRequest& req) { return handle_admin(req); });
  transport_->set_deliver([this](Envelope&& env) { enqueue(std::move(env)); });
  transport_->set_peer_restart([this](ProcessId peer, Incarnation inc) {
    ADGC_INFO("node P" << opts_.pid << ": peer P" << peer
                       << " restarted under incarnation " << inc);
    enqueue(std::function<void()>([this, peer] { proc_->on_peer_crashed(peer); }));
  });
  transport_->set_connect_failed([this](ProcessId peer) {
    // Bridge onto the loop thread: a refused/unreachable connect counts as a
    // timed-out interaction for phi-accrual suspicion — it is the only
    // failure signal a SIGKILLed peer ever produces.
    enqueue(std::function<void()>([this, peer] {
      proc_->peer_health().on_timeout(peer, env_->now());
    }));
  });

  env_ = std::make_unique<NodeEnv>(
      *this, cfg.seed ^ (std::uint64_t{opts_.pid} * 0x9e3779b97f4a7c15ULL));
  proc_ = std::make_unique<Process>(opts_.pid, opts_.cfg.proc, *env_, incarnation_);
  proc_->set_peer_evicted_hook(
      [this](ProcessId peer) { transport_->drop_peer(peer); });
  proc_->set_self_evicted_hook([this](ProcessId) {
    self_evicted_.store(true, std::memory_order_release);
  });
  if (incarnation_ > 0) {
    recovered_ = proc_->recover_from_store();
    env_->metrics().process_restarts.add();
    if (recovered_) env_->metrics().restarts_recovered.add();
    obs::emit(env_->trace(),
              {env_->now(), opts_.pid, obs::EventType::kRestart, 0, opts_.pid,
               incarnation_, recovered_ ? 1u : 0u});
  }

  transport_->start();  // throws on bind failure, before any thread exists
  loop_stop_.store(false);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  post([](Process& p) { p.start(); });
  if (opts_.admin_enabled) {
    enqueue(std::function<void()>([this] { refresh_health_cache(); }));
  }
}

void NodeRuntime::stop(SimTime drain_us) {
  if (!running_.exchange(false)) return;
  loop_stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Loop thread is gone; hand any batched control messages to the transport
  // so the drain below can put them on the wire.
  if (proc_) proc_->flush_batches();
  if (transport_) transport_->stop(drain_us);
}

void NodeRuntime::enqueue(WorkItem item) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void NodeRuntime::post(std::function<void(Process&)> fn) {
  enqueue(std::function<void()>([this, fn = std::move(fn)] {
    if (proc_) fn(*proc_);
  }));
}

void NodeRuntime::post_sync(std::function<void(Process&)> fn) {
  if (!running_.load(std::memory_order_acquire)) {
    // Loop thread is gone (before start() or after stop()): nothing else
    // can touch the Process, so run inline instead of deadlocking on a
    // closure nobody will drain.
    if (proc_) fn(*proc_);
    return;
  }
  std::promise<void> done;
  auto fut = done.get_future();
  enqueue(std::function<void()>([this, &fn, &done] {
    if (proc_) fn(*proc_);
    done.set_value();
  }));
  fut.wait();
}

void NodeRuntime::loop() {
  while (!loop_stop_.load(std::memory_order_acquire)) {
    const SimTime wait = std::min<SimTime>(env_->pump_timers(), 10'000);
    WorkItem item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (queue_.empty()) {
        cv_.wait_for(lk, std::chrono::microseconds(wait), [this] {
          return !queue_.empty() || loop_stop_.load(std::memory_order_acquire);
        });
      }
      if (queue_.empty()) continue;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (auto* env = std::get_if<Envelope>(&item)) {
      // Staleness filtering, as in the in-memory runtimes but against the
      // hello-learned view: a message from a dead incarnation of the sender
      // reflects rolled-back state; one addressed to a dead incarnation of
      // us may reference identifiers this incarnation never knew.
      const Incarnation known = transport_->last_known_incarnation(env->src);
      const bool stale_src = known != kUnknownIncarnation && env->src_inc < known;
      const bool stale_dst =
          env->dst_inc != kUnknownIncarnation && env->dst_inc != incarnation_;
      if (stale_src || stale_dst) {
        env_->metrics().messages_stale_incarnation.add();
        continue;
      }
      env_->metrics().messages_delivered.add();
      proc_->deliver(*env);
    } else {
      std::get<std::function<void()>>(item)();
    }
  }
}

Metrics NodeRuntime::total_metrics() {
  Metrics total;
  total.merge(net_metrics_);
  if (env_) total.merge(env_->metrics());
  return total;
}

std::vector<obs::Event> NodeRuntime::trace_events() const {
  if (!env_) return {};
  if (const obs::TraceRing* ring = env_->trace()) return ring->snapshot();
  return {};
}

void NodeRuntime::refresh_health_cache() {
  // Loop thread: the only thread allowed to read the peer-health tracker.
  if (proc_) {
    const SimTime now = env_->now();
    PeerHealthTracker& health = proc_->peer_health();
    std::ostringstream os;
    os << "node P" << opts_.pid << " inc=" << incarnation_
       << (self_evicted() ? " SELF-EVICTED" : " ok") << "\n";
    os << "peers tracked=" << health.size()
       << " suspected=" << health.suspected_count()
       << " tombstones=" << health.eviction_tombstones().size() << "\n";
    for (ProcessId peer : health.known_peers()) {
      os << "peer P" << peer << " srtt_us=" << static_cast<std::uint64_t>(health.srtt_us(peer))
         << " failures=" << health.consecutive_failures(peer)
         << " outstanding=" << health.outstanding(peer)
         << " phi=" << health.phi(peer, now)
         << (health.suspected(peer, now) ? " SUSPECTED" : "") << "\n";
    }
    for (const auto& [peer, inc] : health.eviction_tombstones()) {
      os << "evicted P" << peer << " inc<=" << inc << "\n";
    }
    std::lock_guard<std::mutex> lk(health_mu_);
    health_cache_ = os.str();
  }
  env_->schedule(500'000, [this] { refresh_health_cache(); });
}

obs::AdminResponse NodeRuntime::handle_admin(const obs::HttpRequest& req) {
  obs::AdminResponse resp;
  if (req.target == "/metrics") {
    // Counters and histograms are atomics: summing them off-thread is safe.
    resp.body = obs::render_prometheus(total_metrics());
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (req.target == "/healthz") {
    if (self_evicted()) resp.status = 503;
    std::lock_guard<std::mutex> lk(health_mu_);
    resp.body = health_cache_;
  } else if (req.target == "/tracez") {
    std::ostringstream os;
    for (const obs::Event& ev : trace_events()) {
      os << ev.ts << " P" << ev.proc << " " << obs::to_string(ev.type);
      if (ev.type == obs::EventType::kDetectionAborted) {
        os << " reason=" << obs::to_string(static_cast<obs::AbortReason>(ev.arg));
      }
      os << " a32=" << ev.a32 << " a64=" << ev.a64 << " b64=" << ev.b64 << "\n";
    }
    resp.body = os.str();
    if (resp.body.empty()) resp.body = "trace ring empty or disabled\n";
  } else if (req.target == "/" || req.target == "/index.html") {
    resp.body = "adgc_node P" + std::to_string(opts_.pid) +
                "\n/metrics  Prometheus exposition\n/healthz  peer health\n"
                "/tracez   recent protocol events\n";
  } else {
    resp.status = 404;
    resp.body = "not found\n";
  }
  return resp;
}

}  // namespace adgc
