#include "src/rt/heap.h"

#include <algorithm>
#include <stdexcept>

namespace adgc {

ObjectSeq Heap::allocate(std::size_t payload_bytes) {
  const ObjectSeq seq = next_seq_++;
  HeapObject obj;
  obj.seq = seq;
  obj.payload.assign(payload_bytes, std::byte{0});
  objects_.emplace(seq, std::move(obj));
  return seq;
}

void Heap::adopt(HeapObject obj) {
  if (obj.seq == kNoObject) throw std::invalid_argument("adopt: object without seq");
  if (obj.seq >= next_seq_) next_seq_ = obj.seq + 1;
  const ObjectSeq seq = obj.seq;
  objects_.insert_or_assign(seq, std::move(obj));
}

void Heap::set_next_seq_floor(ObjectSeq floor) {
  if (floor > next_seq_) next_seq_ = floor;
}

HeapObject* Heap::find(ObjectSeq seq) {
  auto it = objects_.find(seq);
  return it == objects_.end() ? nullptr : &it->second;
}

const HeapObject* Heap::find(ObjectSeq seq) const {
  auto it = objects_.find(seq);
  return it == objects_.end() ? nullptr : &it->second;
}

void Heap::add_local_field(ObjectSeq from, ObjectSeq to) {
  HeapObject* obj = find(from);
  if (!obj) throw std::invalid_argument("add_local_field: no such source object");
  if (!exists(to)) throw std::invalid_argument("add_local_field: no such target object");
  obj->local_fields.push_back(to);
}

bool Heap::remove_local_field(ObjectSeq from, ObjectSeq to) {
  HeapObject* obj = find(from);
  if (!obj) return false;
  auto it = std::find(obj->local_fields.begin(), obj->local_fields.end(), to);
  if (it == obj->local_fields.end()) return false;
  obj->local_fields.erase(it);
  return true;
}

void Heap::add_remote_field(ObjectSeq from, RefId ref) {
  HeapObject* obj = find(from);
  if (!obj) throw std::invalid_argument("add_remote_field: no such source object");
  obj->remote_fields.push_back(ref);
}

bool Heap::remove_remote_field(ObjectSeq from, RefId ref) {
  HeapObject* obj = find(from);
  if (!obj) return false;
  auto it = std::find(obj->remote_fields.begin(), obj->remote_fields.end(), ref);
  if (it == obj->remote_fields.end()) return false;
  obj->remote_fields.erase(it);
  return true;
}

}  // namespace adgc
