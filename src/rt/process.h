// One participant of the distributed object system.
//
// A Process is an actor: every method must be called from its execution
// context (the simulator's event loop or its worker thread in the threaded
// runtime). It owns:
//   * the object heap and local roots (the mutator's world),
//   * the DGC tables (stubs/scions) and the reference-listing protocol,
//   * the local mark-sweep GC,
//   * periodic snapshotting + summarization,
//   * the DCDA detector,
//   * the baseline back-tracing detector (for comparison benches).
//
// Reference export model (stands in for Rotor/.NET remoting interception):
//   * exporting one of our own objects creates the scion locally, then hands
//     out an ExportedRef — always safe;
//   * re-exporting a reference we merely hold (third-party export) runs the
//     scion-first handshake: AddScion to the owner, retried until acked;
//     only then does the invocation carrying the reference leave. While the
//     handshake is pending the re-exported stub is pinned against our LGC.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/dcda/detector.h"
#include "src/dgc/reference_listing.h"
#include "src/dgc/scion_table.h"
#include "src/dgc/stub_table.h"
#include "src/net/batcher.h"
#include "src/net/peer_health.h"
#include "src/net/transport.h"
#include "src/rt/heap.h"
#include "src/snapshot/pipeline.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/snapshot_store.h"
#include "src/snapshot/summarizer.h"

namespace adgc {

class BacktraceDetector;
class GlobalTraceCollector;

/// An argument of a remote invocation: either one of our own objects (to be
/// exported) or a reference we hold (to be re-exported).
struct ArgRef {
  ObjectSeq local = kNoObject;
  RefId remote = kNoRef;

  static ArgRef own(ObjectSeq seq) { return {seq, kNoRef}; }
  static ArgRef held(RefId ref) { return {kNoObject, ref}; }
};

class Process {
 public:
  /// `incarnation` is 0 for the first start; restarts construct a fresh
  /// Process with the next incarnation, which partitions the RefId/ObjectSeq
  /// counter spaces so identifiers of the lost incarnation are never reused.
  Process(ProcessId pid, const ProcessConfig& cfg, Env& env, Incarnation incarnation = 0);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return pid_; }
  Incarnation incarnation() const { return incarnation_; }
  const ProcessConfig& config() const { return cfg_; }
  Metrics& metrics() { return env_.metrics(); }

  /// Kicks off the periodic LGC / snapshot / DCDA tasks. Call once after
  /// construction (the runtimes do).
  void start();

  // ---------- mutator API ----------
  ObjectSeq create_object(std::size_t payload_bytes = 0);
  void add_root(ObjectSeq seq);
  void remove_root(ObjectSeq seq);
  void add_local_ref(ObjectSeq from, ObjectSeq to);
  void remove_local_ref(ObjectSeq from, ObjectSeq to);
  /// Drops one occurrence of a held remote reference.
  void remove_remote_ref(ObjectSeq from, RefId ref);

  /// Asynchronous remote invocation through `via` (a reference this process
  /// holds). Arguments are exported per the model above; with third-party
  /// args the message leaves only after all AddScion handshakes complete.
  /// `payload_bytes` simulates marshalled by-value argument data.
  /// Returns the call id.
  std::uint64_t invoke(ObjectSeq caller, RefId via, InvokeEffect effect,
                       std::vector<ArgRef> args = {}, bool want_reply = true,
                       std::size_t payload_bytes = 0);

  // ---------- direct graph construction (scenario/test setup) ----------
  /// Exports local object `target` to `holder`: creates the scion here and
  /// returns the descriptor the holder can install. Models a reference that
  /// was handed out by an earlier, already-completed invocation.
  ExportedRef export_own_object(ObjectSeq target, ProcessId holder);
  /// Installs an exported reference into `from`'s fields (stub side).
  RefId install_ref(ObjectSeq from, const ExportedRef& ref);
  /// Adds another holder for a reference this process already has a stub
  /// for (two objects sharing one proxy, as in the paper's Fig. 4).
  void hold_existing_ref(ObjectSeq from, RefId ref);

  // ---------- collector driving (the runtimes call these on timers; tests
  // may call them directly for precise interleavings) ----------
  void run_lgc();
  /// Synchronous snapshot: capture, serialize, persist and summarize inline,
  /// publishing before returning. Cancels any in-flight pipeline pass first
  /// (its stale result is discarded), so tests and the model checker see
  /// deterministic, immediately-visible summaries.
  void take_snapshot();
  /// Pipelined snapshot: captures synchronously, then serializes/persists/
  /// summarizes off the critical path, publishing the summary back through
  /// an Env completion event (the detector keeps the previous version
  /// meanwhile). Single-in-flight: a request while one is in flight is
  /// coalesced (re-captured when the publish lands). Falls back to
  /// take_snapshot() when ProcessConfig::snapshot_pipeline is off. This is
  /// what the periodic snapshot tick drives.
  void request_snapshot();
  void run_dcda_scan();

  /// Restores the summarized snapshot from the persistent store (config
  /// `snapshot_dir`), e.g. after a restart. Returns false when nothing
  /// usable is on disk. Safe: a stale summary only delays detection (the
  /// IC rules reject anything the mutator has touched since).
  bool recover_summary_from_store();

  /// Full crash recovery: reloads heap, roots, stub and scion tables AND the
  /// detector's summary from the last persisted snapshot. Must be called on a
  /// freshly constructed Process (restart path) before start(). Returns false
  /// (leaving the process empty — a cold start) when nothing usable is on
  /// disk. The restored state is exactly the state the persisted snapshot
  /// describes, so in-flight CDMs derived from it stay consistent.
  bool recover_from_store();

  /// Membership notification: `crashed` went down. Aborts every in-flight
  /// detection this process initiated (its CDMs may have touched the crashed
  /// process); the periodic scan restarts surviving candidates later.
  void on_peer_crashed(ProcessId crashed);

  /// Commits `peer` permanently dead NOW: drops all scions it holds (the
  /// next mark-sweep reclaims whatever only it kept alive), retires all
  /// stubs toward it, aborts and re-quarantines in-flight detections,
  /// purges batcher/backoff/peer-health state, and installs an eviction
  /// tombstone at the highest incarnation ever heard from it. Normally
  /// driven by the peer_death_timeout escalation inside run_lgc; public so
  /// tests and operators can force an eviction. Idempotent.
  void evict_peer(ProcessId peer);

  /// True once a peer rejected this incarnation with an Evicted NACK. The
  /// only way forward is to stop and restart under a fresh incarnation;
  /// everything this process sends meanwhile is rejected by the evictor.
  bool self_evicted() const { return self_evicted_; }

  /// Fires (once) when the first Evicted NACK aimed at this incarnation
  /// arrives; `evictor` is the rejecting peer. The node runtime uses it to
  /// trigger an orderly exit-and-restart.
  void set_self_evicted_hook(std::function<void(ProcessId evictor)> fn) {
    self_evicted_hook_ = std::move(fn);
  }

  /// Fires after evict_peer() finished purging local state; the node
  /// runtime uses it to tear down the transport connection and its queues.
  void set_peer_evicted_hook(std::function<void(ProcessId peer)> fn) {
    peer_evicted_hook_ = std::move(fn);
  }

  /// Starts a baseline back-tracing detection on a scion (bench/tests).
  void start_backtrace(RefId candidate);

  // ---------- message entry point ----------
  void deliver(const Envelope& env);

  /// Flushes every open control-message batch (drain/shutdown path: queued
  /// CDMs/NSS/acks must reach the wire before the transport stops).
  void flush_batches();

  // ---------- introspection ----------
  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }
  const StubTable& stubs() const { return stubs_; }
  const ScionTable& scions() const { return scions_; }
  Detector& detector() { return *detector_; }
  const Detector& detector() const { return *detector_; }
  BacktraceDetector& backtracer() { return *backtracer_; }
  GlobalTraceCollector& gtrace() { return *gtrace_; }
  std::shared_ptr<const SummarizedGraph> current_summary() const { return summary_; }
  std::uint64_t snapshot_version() const { return snapshot_version_; }
  /// True while a pipelined snapshot is between capture and publish.
  bool snapshot_in_flight() const { return pipeline_ && pipeline_->in_flight(); }
  SimTime now() const { return env_.now(); }
  std::size_t pending_exports() const { return handshakes_.size(); }
  PeerHealthTracker& peer_health() { return peer_health_; }
  const PeerHealthTracker& peer_health() const { return peer_health_; }
  Batcher& batcher() { return *batcher_; }
  const Batcher& batcher() const { return *batcher_; }

 private:
  friend class BacktraceDetector;
  friend class GlobalTraceCollector;

  struct PendingInvoke {
    std::uint64_t call_id = 0;
    ObjectSeq caller = kNoObject;
    RefId via = kNoRef;
    InvokeEffect effect = InvokeEffect::kTouch;
    std::vector<ExportedRef> args;
    std::size_t payload_bytes = 0;
    std::set<std::uint64_t> waiting;  // outstanding handshake ids
    bool want_reply = true;
  };

  struct Handshake {
    std::uint64_t id = 0;
    std::uint64_t call_id = 0;   // the invocation waiting on this handshake
    AddScionMsg msg;
    ProcessId owner = kNoProcess;
    RefId pinned_stub = kNoRef;  // held stub pinned for the duration
    int retries = 0;
    SimTime last_sent = 0;       // RTT sample baseline for the ack
  };

  /// Per-contact NewSetStubs pacing toward a suspected peer: while the peer
  /// is suspected, periodic re-sends are spaced out exponentially instead of
  /// every LGC period (NSS is an idempotent full-state replacement, so
  /// deferral only delays acyclic collection).
  struct NssGate {
    std::uint32_t level = 0;
    SimTime next_ok = 0;
  };

  RefId fresh_ref_id() { return make_ref_id(pid_, next_ref_counter_++); }

  void send(ProcessId dst, const MessagePayload& msg);

  // Message handlers.
  void dispatch(ProcessId src, const MessagePayload& msg);
  void on_batch(ProcessId src, const BatchMsg& msg);
  void on_invoke(ProcessId src, const InvokeMsg& msg);
  void on_reply(ProcessId src, const ReplyMsg& msg);
  void on_new_set_stubs(ProcessId src, const NewSetStubsMsg& msg);
  void on_add_scion(ProcessId src, const AddScionMsg& msg);
  void on_add_scion_ack(ProcessId src, const AddScionAckMsg& msg);
  void on_cdm(ProcessId src, const CdmMsg& msg);
  void on_evicted_nack(ProcessId src, const EvictedNackMsg& msg);
  void on_nss_solicit(ProcessId src);

  /// Permanent-failure escalation, run at the top of every LGC: commits a
  /// peer dead after `peer_death_timeout_us` of sustained suspicion. Scion
  /// holders silent past the timeout are probed with NssSolicit first —
  /// their (possibly empty) NewSetStubs answer expires orphan scions, and
  /// an unanswered probe feeds the suspicion escalation instead of
  /// convicting on silence alone (see the comment in the definition).
  void maybe_evict_peers();

  // Export machinery.
  ExportedRef begin_third_party_export(RefId held, ProcessId receiver,
                                       std::uint64_t call_id, std::uint64_t* handshake_out);
  void retry_handshake(std::uint64_t id);
  /// Delay until retry number `attempt` of a handshake: exponential with
  /// deterministic jitter when adaptive, the fixed interval otherwise.
  SimTime handshake_retry_delay(int attempt);
  /// A detection for `candidate` timed out: exponentially back off its next
  /// launch (lossy/partitioned links should not be hammered at scan rate).
  void note_detection_timeout(RefId candidate);
  void abandon_invoke(std::uint64_t call_id);
  void maybe_flush_invoke(std::uint64_t call_id);
  void really_send_invoke(PendingInvoke&& inv);
  void pin_stub(RefId ref);
  void unpin_stub(RefId ref);

  // DCDA hook.
  void on_cycle_found(DetectionId id, RefId candidate, std::uint64_t expected_ic);

  /// Publish hop of both snapshot paths: installs the summary, hands it to
  /// the detector, and re-captures if a pipelined request was coalesced.
  void adopt_summary(SnapshotPipeline::Stages s);
  /// Shared head of both snapshot paths: captures and stamps the version.
  SnapshotData capture_for_snapshot(std::uint64_t* version_out, SimTime* vt_out);

  // Periodic task drivers.
  void lgc_tick();
  void snapshot_tick();
  void dcda_tick();

  ProcessId pid_;
  ProcessConfig cfg_;
  Env& env_;
  Incarnation incarnation_ = 0;

  Heap heap_;
  StubTable stubs_;
  ScionTable scions_;

  std::uint64_t next_ref_counter_ = 1;
  std::uint64_t next_call_id_ = 1;
  std::uint64_t next_handshake_ = 1;
  std::map<ProcessId, std::uint64_t> nss_seq_;  // NewSetStubs export sequence
  std::set<ProcessId> contacts_;                // processes that ever held our stubs' targets

  std::map<std::uint64_t, PendingInvoke> pending_invokes_;
  std::map<std::uint64_t, Handshake> handshakes_;
  PeerHealthTracker peer_health_{cfg_, env_.metrics()};
  std::unique_ptr<Batcher> batcher_;
  std::map<ProcessId, NssGate> nss_gates_;
  /// call_id → (callee, send time); RTT samples for replies. Bounded; calls
  /// whose reply never arrives age out by insertion order (ids ascend).
  std::map<std::uint64_t, std::pair<ProcessId, SimTime>> inflight_calls_;
  std::map<RefId, std::uint32_t> candidate_failures_;   // consecutive timeouts
  std::map<RefId, SimTime> candidate_not_before_;       // re-launch backoff
  std::map<RefId, std::uint32_t> pinned_;  // stub pin counts
  std::set<RefId> pinned_set_;             // cached key set for the LGC

  /// Highest incarnation ever seen (envelope src_inc) per peer: the value an
  /// eviction tombstones, so the zombie's *current* incarnation — not just
  /// some ancient one — is rejected.
  std::map<ProcessId, Incarnation> peer_incs_;
  /// When the eviction escalation started watching (first run_lgc with
  /// eviction enabled); the silence baseline for scion holders we have
  /// never heard from at all.
  SimTime evict_watch_since_ = 0;
  /// Scion-holder lease probes: when each silent holder was last sent an
  /// NssSolicit. An entry whose send time is newer than the holder's
  /// last_heard means the probe went unanswered — a timeout strike.
  std::map<ProcessId, SimTime> nss_solicits_;
  bool self_evicted_ = false;
  std::function<void(ProcessId)> self_evicted_hook_;
  std::function<void(ProcessId)> peer_evicted_hook_;

  std::unique_ptr<Serializer> serializer_;
  std::unique_ptr<Summarizer> summarizer_;
  std::unique_ptr<SnapshotStore> store_;  // null when persistence is off
  std::shared_ptr<const SummarizedGraph> summary_;
  std::uint64_t snapshot_version_ = 0;

  std::unique_ptr<Detector> detector_;
  std::unique_ptr<BacktraceDetector> backtracer_;
  std::unique_ptr<GlobalTraceCollector> gtrace_;
  /// Declared after the serializer/summarizer/store it borrows: destroyed
  /// first, which joins the background worker before its inputs die.
  std::unique_ptr<SnapshotPipeline> pipeline_;
  std::uint64_t scan_seq_ = 0;  // candidate round-robin cursor
  bool started_ = false;
};

}  // namespace adgc
