// Per-process object heap.
//
// Objects hold two kinds of outgoing references: local (ObjectSeq within the
// same process) and remote (RefId of a stub in the process's stub table).
// Fields are multisets — an object may hold the same reference twice, and
// removal removes one occurrence.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc {

struct HeapObject {
  ObjectSeq seq = kNoObject;
  std::vector<ObjectSeq> local_fields;
  std::vector<RefId> remote_fields;
  /// Simulated payload; serialized by snapshot serializers, so its size is
  /// what the serialization benchmarks measure.
  std::vector<std::byte> payload;
  /// Last time the object was the target of a (local or remote) access.
  SimTime last_access = 0;
};

class Heap {
 public:
  /// Allocates a fresh object with `payload_bytes` of (zeroed) payload.
  ObjectSeq allocate(std::size_t payload_bytes = 0);

  bool exists(ObjectSeq seq) const { return objects_.contains(seq); }
  HeapObject* find(ObjectSeq seq);
  const HeapObject* find(ObjectSeq seq) const;

  /// Removes the object outright (used by the sweep phase). The caller is
  /// responsible for stub holder bookkeeping.
  void remove(ObjectSeq seq) { objects_.erase(seq); }

  /// Reinstates an object under its original sequence number (snapshot
  /// recovery after a restart). Advances the allocator past it so sequence
  /// numbers are never reused within the process.
  void adopt(HeapObject obj);

  /// Raises the next allocation sequence to at least `floor`. Restarted
  /// processes call this with an incarnation-partitioned floor so objects
  /// allocated by the lost incarnation can never share a sequence number
  /// with new ones.
  void set_next_seq_floor(ObjectSeq floor);

  // --- roots ---
  void add_root(ObjectSeq seq) { roots_.insert(seq); }
  void remove_root(ObjectSeq seq) { roots_.erase(seq); }
  bool is_root(ObjectSeq seq) const { return roots_.contains(seq); }
  const std::set<ObjectSeq>& roots() const { return roots_; }

  // --- fields (multiset semantics; remove_* erases one occurrence) ---
  void add_local_field(ObjectSeq from, ObjectSeq to);
  bool remove_local_field(ObjectSeq from, ObjectSeq to);
  void add_remote_field(ObjectSeq from, RefId ref);
  bool remove_remote_field(ObjectSeq from, RefId ref);

  std::size_t size() const { return objects_.size(); }
  const std::unordered_map<ObjectSeq, HeapObject>& objects() const { return objects_; }
  std::unordered_map<ObjectSeq, HeapObject>& objects() { return objects_; }

 private:
  std::unordered_map<ObjectSeq, HeapObject> objects_;
  std::set<ObjectSeq> roots_;
  ObjectSeq next_seq_ = 1;
};

}  // namespace adgc
