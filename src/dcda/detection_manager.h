// Initiator-side detection bookkeeping.
//
// A key scalability property of the paper's DCDA: only the *initiator* of a
// detection keeps any state about it — intermediate processes are stateless
// (everything travels in the CDM). This manager is that state: one record
// per in-flight detection, expired by timeout so that lost CDMs merely delay
// collection.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc {

class DetectionManager {
 public:
  explicit DetectionManager(ProcessId pid) : pid_(pid) {}

  struct Record {
    DetectionId id;
    RefId candidate = kNoRef;
    SimTime started_at = 0;
    SimTime deadline = 0;
  };

  /// Starts a detection for `candidate` (must not have one active).
  DetectionId begin(RefId candidate, SimTime now, SimTime timeout);

  bool candidate_active(RefId candidate) const { return by_candidate_.contains(candidate); }
  bool active(DetectionId id) const { return records_.contains(id); }
  /// Record of an in-flight detection, or nullptr (for lifetime metrics at
  /// terminal events; the pointer is invalidated by any mutating call).
  const Record* find(DetectionId id) const {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }
  std::size_t in_flight() const { return records_.size(); }

  /// Ends a detection (cycle found, aborted, or any terminal CDM outcome
  /// observed at the initiator).
  void end(DetectionId id);

  /// Removes and returns every record whose deadline has passed.
  std::vector<Record> expire(SimTime now);

  /// Removes and returns every in-flight record (peer crash: a CDM of any
  /// detection may have touched the crashed process, so all are aborted —
  /// mirroring the paper's IC-mismatch abort, safety over progress).
  std::vector<Record> drain();

 private:
  ProcessId pid_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<DetectionId, Record> records_;
  std::unordered_map<RefId, DetectionId> by_candidate_;
};

}  // namespace adgc
