#include "src/dcda/algebra.h"

#include <algorithm>
#include <sstream>

#include "src/common/ids.h"

namespace adgc {

namespace {
auto lower_bound_ref(const std::vector<AlgebraElem>& v, RefId ref) {
  return std::lower_bound(v.begin(), v.end(), ref,
                          [](const AlgebraElem& e, RefId r) { return e.ref < r; });
}
}  // namespace

AlgebraSet::AlgebraSet(std::vector<AlgebraElem> elems) : elems_(std::move(elems)) {
  std::sort(elems_.begin(), elems_.end(),
            [](const AlgebraElem& a, const AlgebraElem& b) { return a.ref < b.ref; });
  elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
}

AlgebraSet::Insert AlgebraSet::insert(AlgebraElem e) {
  auto it = lower_bound_ref(elems_, e.ref);
  if (it != elems_.end() && it->ref == e.ref) {
    return it->ic == e.ic ? Insert::kPresent : Insert::kConflict;
  }
  elems_.insert(it, e);
  return Insert::kAdded;
}

bool AlgebraSet::contains(RefId ref) const { return find(ref) != nullptr; }

const AlgebraElem* AlgebraSet::find(RefId ref) const {
  auto it = lower_bound_ref(elems_, ref);
  if (it != elems_.end() && it->ref == ref) return &*it;
  return nullptr;
}

MatchResult match(const Algebra& alg) {
  MatchResult out;
  // Both inputs are sorted by ref: a single merge pass.
  const auto& s = alg.source.elems();
  const auto& t = alg.target.elems();
  std::size_t i = 0, j = 0;
  std::vector<AlgebraElem> rs, rt;
  while (i < s.size() && j < t.size()) {
    if (s[i].ref < t[j].ref) {
      rs.push_back(s[i++]);
    } else if (t[j].ref < s[i].ref) {
      rt.push_back(t[j++]);
    } else {
      if (s[i].ic != t[j].ic) out.ic_conflict = true;
      ++i;
      ++j;
    }
  }
  while (i < s.size()) rs.push_back(s[i++]);
  while (j < t.size()) rt.push_back(t[j++]);
  out.source = AlgebraSet(std::move(rs));
  out.target = AlgebraSet(std::move(rt));
  return out;
}

std::string Algebra::to_string() const {
  std::ostringstream os;
  os << "{{";
  for (std::size_t i = 0; i < source.elems().size(); ++i) {
    if (i) os << ", ";
    os << ref_to_string(source.elems()[i].ref) << "@" << source.elems()[i].ic;
  }
  os << "} -> {";
  for (std::size_t i = 0; i < target.elems().size(); ++i) {
    if (i) os << ", ";
    os << ref_to_string(target.elems()[i].ref) << "@" << target.elems()[i].ic;
  }
  os << "}}";
  return os.str();
}

Algebra algebra_from_msg(const CdmMsg& msg) {
  Algebra alg;
  alg.source = AlgebraSet(msg.source);
  alg.target = AlgebraSet(msg.target);
  return alg;
}

void algebra_to_msg(const Algebra& alg, CdmMsg& msg) {
  msg.source = alg.source.elems();
  msg.target = alg.target.elems();
}

}  // namespace adgc
