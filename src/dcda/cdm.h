// CDM helpers: pretty-printing and size accounting for metrics/benches.
#pragma once

#include <string>

#include "src/net/message.h"

namespace adgc {

/// Human-readable rendering of a CDM (logging, test diagnostics).
std::string describe(const CdmMsg& msg);

/// Encoded size in bytes (what the wire pays for this CDM).
std::size_t encoded_size(const CdmMsg& msg);

}  // namespace adgc
