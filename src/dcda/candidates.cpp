#include "src/dcda/candidates.h"

#include <algorithm>

namespace adgc {

std::vector<RefId> select_candidates(const ScionTable& scions, const SummarizedGraph* snap,
                                     const DetectionManager& manager,
                                     const ProcessConfig& cfg, SimTime now,
                                     std::uint64_t scan_seq,
                                     const CandidateHealthView* health,
                                     Metrics* metrics) {
  std::vector<RefId> out;
  if (!snap) return out;
  const std::size_t budget =
      cfg.max_inflight_detections > manager.in_flight()
          ? cfg.max_inflight_detections - manager.in_flight()
          : 0;
  if (budget == 0) return out;

  // Eligibility (identical for every policy).
  struct Eligible {
    RefId ref;
    SimTime last_ic_change;
    std::size_t fanout;
    bool suspect_hop = false;  // some first CDM hop crosses a suspected link
  };
  std::vector<Eligible> eligible;
  for (const auto& [ref, scion] : scions) {
    if (scion.target_root_reachable) continue;
    if (now < scion.last_ic_change + cfg.candidate_quarantine_us) continue;
    const ScionSummary* sum = snap->scion(ref);
    if (!sum || sum->ic != scion.ic) continue;
    if (sum->stubs_from.empty()) continue;
    if (manager.candidate_active(ref)) continue;
    if (health && health->not_before) {
      auto it = health->not_before->find(ref);
      if (it != health->not_before->end() && now < it->second) {
        if (metrics) metrics->detections_deferred_backoff.add();
        continue;
      }
    }
    Eligible e{ref, scion.last_ic_change, sum->stubs_from.size(), false};
    if (health && health->peers && cfg.adaptive_faults) {
      // A detection needs every branch to come back; one suspected first hop
      // is enough to make it a bad use of the in-flight budget right now.
      for (RefId stub_ref : sum->stubs_from) {
        const StubSummary* stub = snap->stub(stub_ref);
        if (stub && health->peers->suspected(stub->target.owner, now)) {
          e.suspect_hop = true;
          break;
        }
      }
      if (e.suspect_hop && metrics) metrics->candidates_deprioritized.add();
    }
    eligible.push_back(e);
  }
  if (eligible.empty()) return out;

  switch (cfg.candidate_policy) {
    case ProcessConfig::CandidatePolicy::kOldestQuiet:
      std::stable_sort(eligible.begin(), eligible.end(),
                       [](const Eligible& a, const Eligible& b) {
                         return a.last_ic_change < b.last_ic_change;
                       });
      break;
    case ProcessConfig::CandidatePolicy::kSmallestFanout:
      std::stable_sort(eligible.begin(), eligible.end(),
                       [](const Eligible& a, const Eligible& b) {
                         return a.fanout < b.fanout;
                       });
      break;
    case ProcessConfig::CandidatePolicy::kRoundRobin: {
      const std::size_t shift = static_cast<std::size_t>(scan_seq % eligible.size());
      std::rotate(eligible.begin(), eligible.begin() + static_cast<std::ptrdiff_t>(shift),
                  eligible.end());
      break;
    }
  }

  // Suspected-hop candidates sink below every healthy one (stable: the
  // policy order is preserved within each class). They are still taken when
  // the budget allows — deprioritized, never starved.
  std::stable_partition(eligible.begin(), eligible.end(),
                        [](const Eligible& e) { return !e.suspect_hop; });

  const std::size_t take = std::min(budget, eligible.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(eligible[i].ref);
  return out;
}

}  // namespace adgc
