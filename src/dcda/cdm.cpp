#include "src/dcda/cdm.h"

#include <sstream>

#include "src/common/ids.h"
#include "src/dcda/algebra.h"

namespace adgc {

std::string describe(const CdmMsg& msg) {
  std::ostringstream os;
  os << "CDM " << to_string(msg.detection) << " candidate=" << ref_to_string(msg.candidate)
     << " via=" << ref_to_string(msg.via) << "@" << msg.via_ic << " hops=" << msg.hops << " "
     << algebra_from_msg(msg).to_string();
  return os.str();
}

std::size_t encoded_size(const CdmMsg& msg) { return encode_message(msg).size(); }

}  // namespace adgc
