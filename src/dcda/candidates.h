// Cycle-candidate selection heuristic.
//
// The paper (§2.1) guesses that an object is part of a distributed garbage
// cycle when it is kept alive solely by remote references and has not been
// invoked for a while. Concretely, a scion qualifies when:
//   * its target was NOT reachable from local roots at the last LGC run;
//   * its invocation counter has been stable for the quarantine period;
//   * it appears in the current summarized snapshot with the same IC
//     (otherwise the snapshot is stale for it);
//   * it can reach at least one outgoing stub in the snapshot (a scion whose
//     subtree never leaves the process cannot close a distributed cycle);
//   * no detection is already in flight for it.
#pragma once

#include <map>
#include <vector>

#include "src/common/config.h"
#include "src/dcda/detection_manager.h"
#include "src/dgc/scion_table.h"
#include "src/net/peer_health.h"
#include "src/snapshot/snapshot.h"

namespace adgc {

/// Adaptive-degradation inputs to candidate selection (all optional).
/// Candidates whose first CDM hop would cross a suspected link are ranked
/// after all healthy ones — the in-flight budget is spent where CDMs have a
/// chance of arriving — and candidates whose previous detections timed out
/// are skipped entirely until their backoff deadline passes.
struct CandidateHealthView {
  PeerHealthTracker* peers = nullptr;  // non-const: suspected() updates state
  /// Per-candidate earliest re-launch time (exponential backoff after
  /// timeouts), maintained by the process.
  const std::map<RefId, SimTime>* not_before = nullptr;
};

/// `scan_seq` is a monotonically increasing per-process scan counter (used
/// by the round-robin policy to rotate its starting point).
std::vector<RefId> select_candidates(const ScionTable& scions, const SummarizedGraph* snap,
                                     const DetectionManager& manager,
                                     const ProcessConfig& cfg, SimTime now,
                                     std::uint64_t scan_seq = 0,
                                     const CandidateHealthView* health = nullptr,
                                     Metrics* metrics = nullptr);

}  // namespace adgc
