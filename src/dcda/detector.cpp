#include "src/dcda/detector.h"

#include <utility>

#include "src/common/log.h"
#include "src/dcda/cdm.h"

namespace adgc {

Detector::Detector(ProcessId pid, const ProcessConfig& cfg, Metrics& metrics, Hooks hooks)
    : pid_(pid), cfg_(cfg), metrics_(metrics), hooks_(std::move(hooks)), manager_(pid) {}

void Detector::set_snapshot(std::shared_ptr<const SummarizedGraph> snap) {
  snap_ = std::move(snap);
}

bool Detector::start_detection(RefId candidate, SimTime now) {
  if (!snap_) return false;
  if (manager_.candidate_active(candidate)) return false;
  if (manager_.in_flight() >= cfg_.max_inflight_detections) return false;
  const ScionSummary* scion = snap_->scion(candidate);
  if (!scion) return false;

  const DetectionId id = manager_.begin(candidate, now, cfg_.detection_timeout_us);
  metrics_.detections_started.add();
  obs::emit(trace_, {now, pid_, obs::EventType::kDetectionStart, 0, id.initiator,
                     id.seq, candidate});
  if (detection_started_) detection_started_(id, candidate);

  CdmMsg base;
  base.detection = id;
  base.candidate = candidate;
  base.hops = 0;

  // Alg_0 = {{candidate} → {}} — the candidate scion is the first dependency.
  Algebra delivered;  // nothing delivered yet: empty baseline
  Algebra alg;
  alg.source.insert({candidate, eff_ic(scion->ic)});

  const int sent = expand(base, *scion, delivered, std::move(alg));
  if (sent > 0 && hooks_.cdm_burst_end) hooks_.cdm_burst_end();
  if (sent == 0) {
    // Every branch was locally reachable, duplicate or absent: detection
    // over before it started.
    obs::emit(trace_, {now, pid_, obs::EventType::kDetectionAborted,
                       static_cast<std::uint8_t>(obs::AbortReason::kNoProgress),
                       id.initiator, id.seq, 0});
    manager_.end(id);
    return false;
  }
  ADGC_DEBUG("P" << pid_ << " started " << to_string(id) << " candidate="
                 << ref_to_string(candidate) << " branches=" << sent);
  return true;
}

bool Detector::seen_recently(const CdmMsg& msg) {
  if (cfg_.cdm_dedup_cache_size == 0) return false;
  // FNV-1a over the identifying content. The algebra sets are canonical
  // (sorted), so equal content hashes equally regardless of branch order.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(msg.detection.initiator);
  mix(msg.detection.seq);
  mix(msg.via);
  mix(msg.via_ic);
  for (const auto& e : msg.source) {
    mix(e.ref);
    mix(e.ic);
  }
  mix(0xA5A5A5A5ULL);  // set separator
  for (const auto& e : msg.target) {
    mix(e.ref);
    mix(e.ic);
  }
  if (!seen_.insert(h).second) return true;
  seen_order_.push_back(h);
  while (seen_order_.size() > cfg_.cdm_dedup_cache_size) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

void Detector::on_cdm(const CdmMsg& msg, SimTime now) {
  if (cfg_.dcda_unsafe_ignore_ic) {
    // Planted bug: erase every invocation counter before processing, so
    // rule 3, the match conflict and the early check all trivially pass —
    // the detector behaves as if the paper's counter protection were absent.
    CdmMsg stripped = msg;
    stripped.via_ic = 0;
    for (AlgebraElem& e : stripped.source) e.ic = 0;
    for (AlgebraElem& e : stripped.target) e.ic = 0;
    on_cdm_impl(stripped, now);
    return;
  }
  on_cdm_impl(msg, now);
}

void Detector::on_cdm_impl(const CdmMsg& msg, SimTime now) {
  metrics_.cdms_received.add();
  const auto abort_event = [&](obs::AbortReason why) {
    obs::emit(trace_, {now, pid_, obs::EventType::kDetectionAborted,
                       static_cast<std::uint8_t>(why), msg.detection.initiator,
                       msg.detection.seq, msg.hops});
  };
  if (!snap_) {
    metrics_.detections_dropped_no_scion.add();
    abort_event(obs::AbortReason::kNoScion);
    return;
  }
  if (seen_recently(msg)) {
    metrics_.cdms_deduped.add();
    return;
  }
  obs::emit(trace_, {now, pid_, obs::EventType::kCdmHop, 0, msg.detection.initiator,
                     msg.detection.seq, msg.hops});
  // Rule 1: the reference the CDM travelled along must have a scion in the
  // *current* summarized snapshot.
  const ScionSummary* scion = snap_->scion(msg.via);
  if (!scion) {
    metrics_.detections_dropped_no_scion.add();
    abort_event(obs::AbortReason::kNoScion);
    return;
  }
  // Rule 3: pairwise snapshot consistency — the sender-snapshot stub IC must
  // equal our snapshot scion IC, else an invocation crossed this reference
  // between the two snapshots.
  if (eff_ic(scion->ic) != msg.via_ic) {
    metrics_.detections_aborted_ic.add();
    abort_event(obs::AbortReason::kViaIc);
    ADGC_DEBUG("P" << pid_ << " aborts (via IC) " << describe(msg));
    return;
  }

  Algebra alg = algebra_from_msg(msg);
  const MatchResult m = match(alg);
  if (m.ic_conflict) {
    // §3.2 safety rule ii: same reference with different counters in the two
    // sets — mutator raced the detection.
    metrics_.detections_aborted_ic.add();
    abort_event(obs::AbortReason::kMatchIc);
    ADGC_DEBUG("P" << pid_ << " aborts (match IC) " << describe(msg));
    return;
  }
  if (m.cycle_found()) {
    // The whole traversed CDM-Graph cancelled out: it is a closed garbage
    // structure. The empty match may surface at ANY process on the cycle —
    // in the paper's §3.1 mutually-linked example it is P5, not the
    // initiator (steps 25-26). The arrival scion is part of the proven
    // set, so this process deletes it locally; the acyclic DGC unravels
    // the rest.
    const AlgebraElem* via = alg.source.find(msg.via);
    if (via == nullptr) {
      // Malformed: the reference we arrived through must have been a
      // (now cancelled) dependency. Never act on such a CDM.
      ADGC_WARN("P" << pid_ << " ignoring inconsistent cycle-found " << describe(msg));
      return;
    }
    ADGC_INFO("P" << pid_ << " cycle found: " << describe(msg));
    obs::emit(trace_, {now, pid_, obs::EventType::kDetectionMatched, 0,
                       msg.detection.initiator, msg.detection.seq, msg.hops});
    hooks_.cycle_found(msg.detection, msg.via, via->ic);
    return;
  }

  if (msg.hops >= cfg_.cdm_hop_limit) {
    ADGC_WARN("P" << pid_ << " dropping CDM at hop limit " << describe(msg));
    abort_event(obs::AbortReason::kHopLimit);
    return;
  }

  // Proceed with CDM-Graph construction: fold our snapshot in.
  const Algebra delivered = alg;
  if (alg.source.insert({scion->ref, eff_ic(scion->ic)}) == AlgebraSet::Insert::kConflict) {
    metrics_.detections_aborted_ic.add();
    abort_event(obs::AbortReason::kMatchIc);
    return;
  }
  const int sent = expand(msg, *scion, delivered, std::move(alg));
  if (sent > 0 && hooks_.cdm_burst_end) hooks_.cdm_burst_end();
}

int Detector::expand(const CdmMsg& base, const ScionSummary& scion, const Algebra& delivered,
                     Algebra alg) {
  int sent = 0;
  for (RefId stub_ref : scion.stubs_from) {
    const StubSummary* stub = snap_->stub(stub_ref);
    if (!stub) continue;  // snapshot internally inconsistent; be conservative
    if (stub->local_reach) {
      // The reference is held by a locally reachable object: whatever lies
      // beyond it is live. Negative result along this path.
      metrics_.detections_aborted_local.add();
      continue;
    }
    Algebra derived = alg;
    bool conflict = false;
    // Extra dependencies: every other scion converging on this stub must be
    // resolved before a cycle may be declared (§3.1 step 5).
    for (RefId dep : stub->scions_to) {
      const ScionSummary* dep_scion = snap_->scion(dep);
      if (!dep_scion) continue;
      if (derived.source.insert({dep, eff_ic(dep_scion->ic)}) ==
          AlgebraSet::Insert::kConflict) {
        conflict = true;
        break;
      }
    }
    if (!conflict && derived.target.insert({stub_ref, eff_ic(stub->ic)}) ==
                         AlgebraSet::Insert::kConflict) {
      conflict = true;
    }
    if (conflict) {
      metrics_.detections_aborted_ic.add();
      continue;
    }
    if (derived == delivered) {
      // The derivation adds no information: this branch already traced that
      // sub-cycle. Terminate it (ensures termination on mutually-linked
      // cycles, §3.1 step 15).
      metrics_.detections_dropped_dup.add();
      continue;
    }
    if (cfg_.early_ic_check && match(derived).ic_conflict) {
      // §3.2 optimization: the algebra we are about to send already carries
      // an unmatched counter pair — the detection is doomed; abort here
      // rather than at the next hop.
      metrics_.detections_aborted_ic.add();
      continue;
    }
    CdmMsg out = base;
    out.via = stub_ref;
    out.via_ic = eff_ic(stub->ic);
    out.hops = base.hops + 1;
    algebra_to_msg(derived, out);
    metrics_.cdms_sent.add();
    metrics_.cdm_bytes.add(encoded_size(out));
    hooks_.send_cdm(stub->target.owner, out);
    ++sent;
  }
  return sent;
}

std::vector<DetectionManager::Record> Detector::abort_for_crash(ProcessId crashed,
                                                                SimTime now) {
  std::vector<DetectionManager::Record> drained = manager_.drain();
  for (const auto& rec : drained) {
    metrics_.detections_aborted_crash.add();
    metrics_.detection_lifetime_us.record(now - rec.started_at);
    obs::emit(trace_, {now, pid_, obs::EventType::kDetectionAborted,
                       static_cast<std::uint8_t>(obs::AbortReason::kCrash),
                       rec.id.initiator, rec.id.seq, crashed});
    ADGC_DEBUG("P" << pid_ << " aborts " << to_string(rec.id) << " (P" << crashed
                   << " crashed)");
  }
  return drained;
}

std::vector<DetectionManager::Record> Detector::expire(SimTime now) {
  std::vector<DetectionManager::Record> expired = manager_.expire(now);
  for (const auto& rec : expired) {
    metrics_.detections_timed_out.add();
    metrics_.detection_lifetime_us.record(now - rec.started_at);
    obs::emit(trace_, {now, pid_, obs::EventType::kDetectionExpired, 0,
                       rec.id.initiator, rec.id.seq, now - rec.started_at});
    ADGC_DEBUG("P" << pid_ << " detection timed out: " << to_string(rec.id));
  }
  return expired;
}

void Detector::finish(DetectionId id, SimTime now) {
  if (const DetectionManager::Record* rec = manager_.find(id)) {
    metrics_.detection_lifetime_us.record(now - rec->started_at);
  }
  manager_.end(id);
}

}  // namespace adgc
