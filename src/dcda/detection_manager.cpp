#include "src/dcda/detection_manager.h"

namespace adgc {

DetectionId DetectionManager::begin(RefId candidate, SimTime now, SimTime timeout) {
  DetectionId id{pid_, next_seq_++};
  Record rec;
  rec.id = id;
  rec.candidate = candidate;
  rec.started_at = now;
  rec.deadline = now + timeout;
  records_.emplace(id, rec);
  by_candidate_.emplace(candidate, id);
  return id;
}

void DetectionManager::end(DetectionId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return;
  by_candidate_.erase(it->second.candidate);
  records_.erase(it);
}

std::vector<DetectionManager::Record> DetectionManager::drain() {
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  records_.clear();
  by_candidate_.clear();
  return out;
}

std::vector<DetectionManager::Record> DetectionManager::expire(SimTime now) {
  std::vector<Record> out;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.deadline <= now) {
      out.push_back(it->second);
      by_candidate_.erase(it->second.candidate);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace adgc
