// CDM algebra (paper §3).
//
// An algebra is two sets of {RefId, IC} elements:
//   source — compiled dependencies: every scion the CDM passed through plus
//            every extra converging scion (ScionsTo) discovered on the way;
//   target — every stub the CDM was forwarded along.
//
// *Matching* cancels elements present in both sets — a dependency (scion) is
// resolved once the detection traversed the very reference it represents
// (stub of the same RefId). Cancellation demands equal invocation counters:
// a mismatch means the mutator used that reference between the two process
// snapshots being combined, so the detection must abort (§3.2 safety rule ii).
//
// A cycle is proven when matching yields {{} → {}} on delivery.
#pragma once

#include <string>
#include <vector>

#include "src/net/message.h"

namespace adgc {

/// Sorted-unique element set keyed by RefId.
class AlgebraSet {
 public:
  AlgebraSet() = default;
  explicit AlgebraSet(std::vector<AlgebraElem> elems);

  /// Outcome of inserting an element.
  enum class Insert {
    kAdded,     // new element
    kPresent,   // identical element already there
    kConflict,  // same RefId, different IC — mutator activity detected
  };
  Insert insert(AlgebraElem e);

  bool contains(RefId ref) const;
  const AlgebraElem* find(RefId ref) const;
  std::size_t size() const { return elems_.size(); }
  bool empty() const { return elems_.empty(); }
  const std::vector<AlgebraElem>& elems() const { return elems_; }

  friend bool operator==(const AlgebraSet&, const AlgebraSet&) = default;

 private:
  std::vector<AlgebraElem> elems_;  // sorted by ref
};

struct Algebra {
  AlgebraSet source;
  AlgebraSet target;

  friend bool operator==(const Algebra&, const Algebra&) = default;

  std::string to_string() const;
};

/// Result of matching an algebra.
struct MatchResult {
  AlgebraSet source;     // unresolved dependencies
  AlgebraSet target;     // traversed stubs not (yet) depended upon
  bool ic_conflict = false;  // same RefId in both sets with different ICs

  bool cycle_found() const { return !ic_conflict && source.empty() && target.empty(); }
};

MatchResult match(const Algebra& alg);

/// Wire conversion.
Algebra algebra_from_msg(const CdmMsg& msg);
void algebra_to_msg(const Algebra& alg, CdmMsg& msg);

}  // namespace adgc
