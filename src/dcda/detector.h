// The Distributed Cycle Detection Algorithm engine — the paper's core
// contribution (§2, §3).
//
// One Detector per process. It works exclusively on the process's current
// *summarized snapshot* (never the live heap), exchanges CDMs with the
// detectors of other processes, and reports a proven cycle back to its
// process through a hook so the live scion can be revalidated and deleted.
//
// Statelessness: only the initiator of a detection holds state about it
// (the DetectionManager). Intermediate processes just transform CDMs.
//
// Termination/abort rules implemented (with the paper's numbering):
//  rule 1  — CDM whose `via` reference has no scion in the current snapshot
//            is discarded (snapshot not current enough / scion gone);
//  rule 3  — snapshot stub IC (carried in the CDM) differing from the
//            snapshot scion IC aborts the branch (mutation detected);
//  §3 §3.1 — a followed stub with Local.Reach terminates that branch
//            negatively; a derivation equal to the delivered algebra is
//            dropped (loop/branch termination, steps 15 of §3.1);
//  §3.2    — algebra matching with unequal ICs for one RefId aborts.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>

#include "src/common/config.h"
#include "src/common/ids.h"
#include "src/common/metrics.h"
#include "src/dcda/algebra.h"
#include "src/dcda/detection_manager.h"
#include "src/obs/trace.h"
#include "src/snapshot/snapshot.h"

namespace adgc {

class Detector {
 public:
  struct Hooks {
    /// Sends a CDM to the owner process of the stub being followed.
    std::function<void(ProcessId dst, const CdmMsg& msg)> send_cdm;
    /// A detection proved a cycle at this process: revalidate the live
    /// scion `victim` (exists, IC == expected_ic, target not root-reachable)
    /// and delete it. `victim` is the CDM's arrival scion — the empty match
    /// may surface at any process of the cycle (paper §3.1 steps 25-26),
    /// not only at the initiator.
    std::function<void(DetectionId id, RefId victim, std::uint64_t expected_ic)>
        cycle_found;
    /// Called after a complete CDM fan-out (a detection launch or the
    /// expansion of one delivered CDM) so the process can flush its
    /// control-message batcher: CDMs emitted within one burst coalesce into
    /// per-peer batches, but never wait out the batch deadline — batching
    /// must not add per-hop detection latency. Optional.
    std::function<void()> cdm_burst_end;
  };

  Detector(ProcessId pid, const ProcessConfig& cfg, Metrics& metrics, Hooks hooks);

  /// Installs a fresh summarized snapshot (atomically replaces the old one).
  void set_snapshot(std::shared_ptr<const SummarizedGraph> snap);
  const SummarizedGraph* snapshot() const { return snap_.get(); }

  /// Tries to start one detection for the given candidate scion.
  /// Returns true if CDMs were actually sent.
  bool start_detection(RefId candidate, SimTime now);

  /// Handles a delivered CDM.
  void on_cdm(const CdmMsg& msg, SimTime now);

  /// Expires timed-out detections (message-loss tolerance). Returns the
  /// expired records so the process can back off re-launching their
  /// candidates (a timeout usually means a lossy or partitioned link).
  std::vector<DetectionManager::Record> expire(SimTime now);

  /// A peer process crashed (or was evicted): aborts every in-flight
  /// detection this process initiated. Any of them may have a CDM touching
  /// the crashed process, and after its restart the restored tables no
  /// longer match the algebra those CDMs carry — the same reasoning as the
  /// paper's IC-mismatch abort. Surviving candidates are retried by the
  /// periodic detection scan; the drained records are returned so the
  /// eviction path can re-quarantine candidates under the relaunch backoff.
  std::vector<DetectionManager::Record> abort_for_crash(ProcessId crashed, SimTime now);

  /// Marks a detection finished at the initiator (cycle acted upon).
  /// Records the detection's lifetime into the metrics histogram.
  void finish(DetectionId id, SimTime now);

  /// Installs the structured-trace ring (Env::trace(); nullptr = disabled).
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

  DetectionManager& manager() { return manager_; }
  const DetectionManager& manager() const { return manager_; }

  /// Observer called right after a detection launches (model checker /
  /// instrumentation; optional, independent of the wiring Hooks).
  void set_detection_started(std::function<void(DetectionId, RefId)> fn) {
    detection_started_ = std::move(fn);
  }
  /// Oracle accessor: detections this process currently has in flight.
  std::size_t detections_in_flight() const { return manager_.in_flight(); }

 private:
  void on_cdm_impl(const CdmMsg& msg, SimTime now);

  /// The invocation counter as the detector sees it. Under the test-only
  /// `dcda_unsafe_ignore_ic` planted bug every counter collapses to zero,
  /// which disables all IC-based race protection at once.
  std::uint64_t eff_ic(std::uint64_t ic) const {
    return cfg_.dcda_unsafe_ignore_ic ? 0 : ic;
  }

  /// Follows every viable stub out of `scion`, deriving and sending CDMs.
  /// `delivered` is the algebra as it arrived (dup-check baseline); `alg`
  /// additionally contains the arrival scion. Returns #CDMs sent.
  int expand(const CdmMsg& base, const ScionSummary& scion, const Algebra& delivered,
             Algebra alg);

  /// Returns true if this exact CDM content was processed recently
  /// (bounded FIFO cache; duplicates are safe to drop).
  bool seen_recently(const CdmMsg& msg);

  ProcessId pid_;
  const ProcessConfig& cfg_;
  Metrics& metrics_;
  obs::TraceRing* trace_ = nullptr;
  Hooks hooks_;
  std::function<void(DetectionId, RefId)> detection_started_;
  DetectionManager manager_;
  std::shared_ptr<const SummarizedGraph> snap_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> seen_order_;
};

}  // namespace adgc
