// Counterexample shrinking: ddmin over decision traces.
//
// A violating trace found by search usually carries dozens of irrelevant
// decisions (deliveries and collector runs that do not participate in the
// bug). Delta debugging removes chunks of decreasing size, re-running the
// schedule through ReplayStrategy after each removal and keeping any
// reduction that still fails — converging on a 1-minimal trace where
// removing any single decision makes the violation disappear.
#pragma once

#include <cstddef>
#include <functional>

#include "src/mc/trace.h"

namespace adgc::mc {

struct ShrinkStats {
  std::size_t attempts = 0;    // candidate traces re-executed
  std::size_t reductions = 0;  // candidates that kept failing
};

/// Shrinks `failing` with respect to `still_fails` (typically: replay the
/// candidate and check it still reports a violation). `still_fails(failing)`
/// is assumed true. Stops at 1-minimality or after `max_attempts` replays.
Trace shrink_trace(const Trace& failing,
                   const std::function<bool(const Trace&)>& still_fails,
                   std::size_t max_attempts = 2000, ShrinkStats* stats = nullptr);

}  // namespace adgc::mc
