// Model-checking scenarios: small, fixed object graphs with a short mutator
// script whose every step is a schedulable choice point.
//
// A scenario is rebuilt from scratch on a fresh Runtime for every explored
// schedule, so a (scenario, seed, decision list) triple reproduces a run
// bit-for-bit. Most scenarios wrap the paper's figures (sim/scenarios.h);
// `race` is the Fig. 2 mutator-vs-DCDA race in its minimal three-process
// form — the scenario the planted-bug self-test runs on.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/common/config.h"
#include "src/rt/runtime.h"

namespace adgc::mc {

enum class ScenarioKind { kFig1, kFig3, kFig4, kFig5, kRace, kEvict };

const char* scenario_name(ScenarioKind kind);
std::optional<ScenarioKind> parse_scenario(const std::string& name);

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual ScenarioKind kind() const = 0;
  virtual std::size_t num_procs() const = 0;
  /// Builds the object graph on `rt` and takes one baseline snapshot per
  /// process (the DCDA needs an initial summarized view). Must be callable
  /// repeatedly, once per fresh Runtime.
  virtual void build(Runtime& rt) = 0;

  /// Number of scripted mutator steps. Step i may only run after step i-1
  /// (the Explorer offers them in order), but arbitrarily interleaved with
  /// every other choice.
  virtual std::size_t script_size() const = 0;
  virtual void apply_script(Runtime& rt, std::size_t step) = 0;
  /// The process whose mutator performs `step`. The Explorer only offers a
  /// script step while that process is alive and has never crashed — a
  /// crashed mutator's pending actions die with it (and a cold restart may
  /// have lost the very objects the step names).
  virtual ProcessId script_proc(std::size_t step) const = 0;

  /// Objects that must survive a fault-free schedule once the full script
  /// has run and the system has settled (completeness oracle input).
  virtual std::size_t expected_survivors() const = 0;

  /// Scenario-specific config overrides applied on top of mc_config().
  /// The evict scenario uses this to arm peer_death_timeout_us so the
  /// Explorer's LGC decisions double as eviction choice points.
  virtual void tune_config(RuntimeConfig&) const {}

  /// Whether the liveness/completeness oracle is decidable for fault-free
  /// schedules of this scenario. The evict scenario returns false: an
  /// eviction deliberately reclaims objects that are still reachable
  /// through the evicted peer, so only the safety oracles apply.
  virtual bool check_liveness() const { return true; }

  std::string name() const { return scenario_name(kind()); }
};

std::unique_ptr<Scenario> make_scenario(ScenarioKind kind);

/// The model checker's RuntimeConfig: every periodic collector pushed to
/// effective infinity (the Explorer schedules LGC/snapshot/scan explicitly),
/// zero quarantine so candidates are eligible immediately, adaptive backoff
/// and batching off (their timers would only bloat the choice space), a
/// finite detection timeout the settle phase can step over, and deterministic
/// minimum latency (the fate hook supplies per-message latency anyway).
RuntimeConfig mc_config(std::uint64_t seed);

/// Timer/event horizon: pending events at or beyond this timestamp are the
/// migrated far-future periodic timers, not real schedulable work.
inline constexpr SimTime kFarFuture = 100'000'000'000ULL;  // 1e11 us

}  // namespace adgc::mc
