// Decision traces: the compact record of one explored schedule.
//
// A schedule is fully determined by the ordered list of decisions the
// Explorer took at each choice point, so a trace plus the (deterministic)
// scenario/seed reproduces the run bit-for-bit. Decisions are recorded as
// *classes* — (kind, src, dst, tag) for deliveries, (kind, pid) for
// collector actions — rather than raw event ids, so a trace still replays
// after shrinking shifts the absolute event numbering.
//
// Binary format (versioned, little-endian, via common/bytes):
//   u32 magic 'MCTR' | u16 version | str scenario | u64 seed |
//   u32 max_steps | u8 unsafe_no_ic |
//   [v2+] u32 snapshot_pipeline_latency_us |
//   str note | u32 count | count × (u8 kind, u32 a, u32 b, u32 c)
//
// v1 traces decode with snapshot_pipeline_latency_us = 0 (pipeline off),
// which matches the semantics they were recorded under.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace adgc::mc {

enum class DecisionKind : std::uint8_t {
  kDeliver = 1,   // execute a pending event: a=src (0xffffffff: timer), b=dst, c=tag
  kDrop = 2,      // discard a pending message (loss): same keying as kDeliver
  kLgc = 3,       // run the local GC of process a
  kSnapshot = 4,  // take + summarize a snapshot at process a
  kScan = 5,      // run the DCDA candidate scan at process a
  kCrash = 6,     // crash process a
  kRestart = 7,   // restart process a
  kScript = 8,    // apply scripted mutator step a
};

/// Sentinel `src` for timer events in kDeliver/kDrop decisions.
inline constexpr std::uint32_t kTimerSrc = 0xffffffffu;

struct Decision {
  DecisionKind kind = DecisionKind::kDeliver;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;

  friend bool operator==(const Decision&, const Decision&) = default;
};

struct Trace {
  std::string scenario;       // scenario name the trace was recorded on
  std::uint64_t seed = 1;     // runtime seed (determinism anchor)
  std::uint32_t max_steps = 0;
  bool unsafe_no_ic = false;  // planted-bug knob state at record time
  // Sim-mode snapshot-pipeline publish latency (0 = pipeline off). When
  // non-zero, kSnapshot decisions only *request* a snapshot; the summary
  // publishes via a timer this many µs later, which the explorer schedules
  // like any other pending event (the publish-race choice point).
  std::uint32_t snapshot_pipeline_latency_us = 0;
  std::string note;           // free-form provenance ("found by dfs, shrunk ...")
  std::vector<Decision> decisions;

  friend bool operator==(const Trace&, const Trace&) = default;
};

std::vector<std::byte> encode_trace(const Trace& t);
/// Throws DecodeError on malformed/truncated/wrong-version input.
Trace decode_trace(std::span<const std::byte> bytes);

/// Returns false on I/O failure.
bool save_trace(const Trace& t, const std::string& path);
/// Empty optional on I/O or decode failure.
std::optional<Trace> load_trace(const std::string& path);

std::string describe(const Decision& d);
std::string describe(const Trace& t);  // multi-line human-readable dump

}  // namespace adgc::mc
