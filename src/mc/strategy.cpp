#include "src/mc/strategy.h"

#include <algorithm>

namespace adgc::mc {

// ---------------------------------------------------------------- DFS

bool DfsStrategy::begin_schedule() {
  cursor_ = 0;
  if (first_) {
    first_ = false;
    return true;
  }
  // Odometer advance: bump the deepest node that still has an untried
  // alternative (and, under a delay bound, budget to pay for it).
  while (!path_.empty()) {
    Node& n = path_.back();
    if (n.chosen + 1 < n.num && cost_ + 1 <= delay_bound_) {
      ++n.chosen;
      ++cost_;
      return true;
    }
    cost_ -= n.chosen;
    path_.pop_back();
  }
  exhausted_ = true;
  return false;
}

std::size_t DfsStrategy::pick(const std::vector<Decision>& choices, std::size_t) {
  if (choices.empty()) return kStopSchedule;
  if (cursor_ < path_.size()) {
    // Replaying the prefix that leads to the node being advanced. The choice
    // count is identical on a deterministic re-execution; clamp defensively.
    Node& n = path_[cursor_++];
    n.num = choices.size();
    if (n.chosen >= n.num) n.chosen = n.num - 1;
    return n.chosen;
  }
  // Fresh depth: take the default (index 0, cost 0) and remember the fanout.
  path_.push_back({0, choices.size()});
  ++cursor_;
  return 0;
}

void DfsStrategy::end_schedule(std::size_t) {
  // A schedule may end shallower than the previous one (fewer enabled
  // choices); drop the stale deeper suffix or the odometer would advance
  // nodes that were never reached this time.
  for (std::size_t i = cursor_; i < path_.size(); ++i) cost_ -= path_[i].chosen;
  path_.resize(cursor_);
}

// ---------------------------------------------------------------- PCT

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t decision_key(const Decision& d) {
  std::uint64_t k = static_cast<std::uint64_t>(d.kind);
  k = splitmix64(k ^ (static_cast<std::uint64_t>(d.a) << 32 | d.b));
  return splitmix64(k ^ d.c);
}
}  // namespace

PctStrategy::PctStrategy(std::uint64_t seed, std::uint32_t change_points,
                         std::uint32_t max_steps)
    : seed_(seed), change_points_(change_points), max_steps_(max_steps) {}

bool PctStrategy::begin_schedule() {
  salt_ = splitmix64(seed_ ^ (schedule_ * 0xd1342543de82ef95ULL));
  ++schedule_;
  bumps_ = 0;
  change_steps_.clear();
  for (std::uint32_t i = 0; i < change_points_ && max_steps_ > 0; ++i) {
    change_steps_.push_back(static_cast<std::uint32_t>(
        splitmix64(salt_ ^ (0xc0ffee00ULL + i)) % max_steps_));
  }
  std::sort(change_steps_.begin(), change_steps_.end());
  return true;  // the Explorer's schedule/time budgets bound the search
}

std::size_t PctStrategy::pick(const std::vector<Decision>& choices, std::size_t step) {
  if (choices.empty()) return kStopSchedule;
  bumps_ += static_cast<std::uint32_t>(
      std::count(change_steps_.begin(), change_steps_.end(), step));
  const std::uint64_t round_salt = splitmix64(salt_ ^ (0x51ed270bULL * (bumps_ + 1)));
  std::size_t best = 0;
  std::uint64_t best_prio = 0;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::uint64_t prio = splitmix64(round_salt ^ decision_key(choices[i]));
    if (i == 0 || prio > best_prio) {
      best = i;
      best_prio = prio;
    }
  }
  return best;
}

// ---------------------------------------------------------------- replay

bool ReplayStrategy::begin_schedule() {
  if (ran_) return false;
  ran_ = true;
  pos_ = 0;
  matched_ = 0;
  return true;
}

std::size_t ReplayStrategy::pick(const std::vector<Decision>& choices, std::size_t) {
  while (pos_ < trace_.decisions.size()) {
    const Decision& want = trace_.decisions[pos_];
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (choices[i] == want) {
        ++pos_;
        ++matched_;
        return i;
      }
    }
    ++pos_;  // entry not enabled here (removed by shrinking): skip it
  }
  return kStopSchedule;
}

}  // namespace adgc::mc
