#include "src/mc/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace adgc::mc {

namespace {
constexpr std::uint32_t kMagic = 0x4D435452;  // 'MCTR'
constexpr std::uint16_t kVersion = 2;
// Traces are decision lists of at most a few hundred entries; anything much
// larger is a corrupt count prefix, not a real trace.
constexpr std::uint32_t kMaxDecisions = 1u << 20;

const char* kind_name(DecisionKind k) {
  switch (k) {
    case DecisionKind::kDeliver: return "deliver";
    case DecisionKind::kDrop: return "drop";
    case DecisionKind::kLgc: return "lgc";
    case DecisionKind::kSnapshot: return "snapshot";
    case DecisionKind::kScan: return "scan";
    case DecisionKind::kCrash: return "crash";
    case DecisionKind::kRestart: return "restart";
    case DecisionKind::kScript: return "script";
  }
  return "?";
}
}  // namespace

std::vector<std::byte> encode_trace(const Trace& t) {
  ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(t.scenario);
  w.u64(t.seed);
  w.u32(t.max_steps);
  w.boolean(t.unsafe_no_ic);
  w.u32(t.snapshot_pipeline_latency_us);
  w.str(t.note);
  w.u32(static_cast<std::uint32_t>(t.decisions.size()));
  for (const Decision& d : t.decisions) {
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.u32(d.a);
    w.u32(d.b);
    w.u32(d.c);
  }
  return w.take();
}

Trace decode_trace(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kMagic) throw DecodeError("trace: bad magic");
  const std::uint16_t version = r.u16();
  if (version < 1 || version > kVersion) {
    throw DecodeError("trace: unsupported version");
  }
  Trace t;
  t.scenario = r.str();
  t.seed = r.u64();
  t.max_steps = r.u32();
  t.unsafe_no_ic = r.boolean();
  if (version >= 2) t.snapshot_pipeline_latency_us = r.u32();
  t.note = r.str();
  const std::uint32_t count = r.u32();
  if (count > kMaxDecisions) throw DecodeError("trace: absurd decision count");
  t.decisions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Decision d;
    const std::uint8_t kind = r.u8();
    if (kind < 1 || kind > 8) throw DecodeError("trace: bad decision kind");
    d.kind = static_cast<DecisionKind>(kind);
    d.a = r.u32();
    d.b = r.u32();
    d.c = r.u32();
    t.decisions.push_back(d);
  }
  r.expect_done();
  return t;
}

bool save_trace(const Trace& t, const std::string& path) {
  const std::vector<std::byte> bytes = encode_trace(t);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Trace> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  try {
    return decode_trace(std::as_bytes(std::span<const char>(raw)));
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::string describe(const Decision& d) {
  std::ostringstream os;
  os << kind_name(d.kind);
  switch (d.kind) {
    case DecisionKind::kDeliver:
    case DecisionKind::kDrop:
      if (d.a == kTimerSrc) {
        os << " timer@P" << d.b;
      } else {
        os << " P" << d.a << "->P" << d.b << " tag=" << d.c;
      }
      break;
    case DecisionKind::kScript:
      os << " step " << d.a;
      break;
    default:
      os << " P" << d.a;
      break;
  }
  return os.str();
}

std::string describe(const Trace& t) {
  std::ostringstream os;
  os << "trace scenario=" << t.scenario << " seed=" << t.seed
     << " max_steps=" << t.max_steps
     << (t.unsafe_no_ic ? " unsafe_no_ic" : "");
  if (t.snapshot_pipeline_latency_us != 0) {
    os << " pipeline_latency_us=" << t.snapshot_pipeline_latency_us;
  }
  os << " decisions=" << t.decisions.size() << "\n";
  if (!t.note.empty()) os << "  note: " << t.note << "\n";
  for (std::size_t i = 0; i < t.decisions.size(); ++i) {
    os << "  [" << i << "] " << describe(t.decisions[i]) << "\n";
  }
  return os.str();
}

}  // namespace adgc::mc
