#include "src/mc/scenario.h"

#include "src/sim/scenarios.h"

namespace adgc::mc {

namespace {

constexpr SimTime kNever = 1'000'000'000'000ULL;  // 1e12 us, >> kFarFuture

void baseline_snapshots(Runtime& rt) {
  for (ProcessId pid = 0; pid < rt.size(); ++pid) rt.proc(pid).take_snapshot();
}

// ---------------------------------------------------------------- fig1

class Fig1Scenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kFig1; }
  std::size_t num_procs() const override { return 4; }
  void build(Runtime& rt) override {
    fig_ = sim::build_fig1(rt, /*pin_w=*/true);
    baseline_snapshots(rt);
  }
  std::size_t script_size() const override { return 1; }
  void apply_script(Runtime& rt, std::size_t) override {
    rt.proc(fig_.w.owner).remove_root(fig_.w.seq);
  }
  ProcessId script_proc(std::size_t) const override { return fig_.w.owner; }
  std::size_t expected_survivors() const override { return 0; }

 private:
  sim::Fig1 fig_;
};

// ---------------------------------------------------------------- fig3

class Fig3Scenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kFig3; }
  std::size_t num_procs() const override { return 4; }
  void build(Runtime& rt) override {
    fig_ = sim::build_fig3(rt);
    baseline_snapshots(rt);
  }
  std::size_t script_size() const override { return 1; }
  void apply_script(Runtime& rt, std::size_t) override {
    rt.proc(fig_.A.owner).remove_root(fig_.A.seq);
  }
  ProcessId script_proc(std::size_t) const override { return fig_.A.owner; }
  std::size_t expected_survivors() const override { return 0; }

 private:
  sim::Fig3 fig_;
};

// ---------------------------------------------------------------- fig4

class Fig4Scenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kFig4; }
  std::size_t num_procs() const override { return 6; }
  void build(Runtime& rt) override {
    fig_ = sim::build_fig4(rt);
    baseline_snapshots(rt);
  }
  // Garbage from the start: the schedule space is pure collector/network
  // interleaving around two mutually-linked cycles.
  std::size_t script_size() const override { return 0; }
  void apply_script(Runtime&, std::size_t) override {}
  ProcessId script_proc(std::size_t) const override { return 0; }
  std::size_t expected_survivors() const override { return 0; }

 private:
  sim::Fig4 fig_;
};

// ---------------------------------------------------------------- fig5

class Fig5Scenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kFig5; }
  std::size_t num_procs() const override { return 5; }
  void build(Runtime& rt) override {
    fig_ = sim::build_fig5(rt);
    baseline_snapshots(rt);
  }
  std::size_t script_size() const override { return 3; }
  void apply_script(Runtime& rt, std::size_t step) override {
    switch (step) {
      case 0:  // bump F's counters through B's reference
        rt.proc(fig_.B.owner).invoke(fig_.B.seq, fig_.B_to_F, InvokeEffect::kTouch);
        break;
      case 1:  // export J to M: the root switch the detection must not miss
        rt.proc(fig_.F.owner).invoke(fig_.F.seq, fig_.F_to_M, InvokeEffect::kStoreArgs,
                                     {ArgRef::own(fig_.J.seq)});
        break;
      case 2:  // drop the old root path
        rt.proc(fig_.A.owner).remove_root(fig_.A.seq);
        break;
      default:
        break;
    }
  }
  ProcessId script_proc(std::size_t step) const override {
    switch (step) {
      case 0: return fig_.B.owner;
      case 1: return fig_.F.owner;
      default: return fig_.A.owner;
    }
  }
  // Everything but A stays reachable through P3's root → M → J.
  std::size_t expected_survivors() const override { return 7; }

 private:
  sim::Fig5 fig_;
};

// ---------------------------------------------------------------- race

// Fig. 2 in minimal form: cycle x_P0 → y_P1 → z_P2 → x_P0, x rooted. The
// script races a root switch (pin y via an invocation through x_to_y)
// against dropping x's root; with stale snapshots the combined views form a
// false garbage cycle that only the invocation counters reject.
class RaceScenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kRace; }
  std::size_t num_procs() const override { return 3; }
  void build(Runtime& rt) override {
    x_ = ObjectId{0, rt.proc(0).create_object()};
    y_ = ObjectId{1, rt.proc(1).create_object()};
    z_ = ObjectId{2, rt.proc(2).create_object()};
    x_to_y_ = rt.link(x_, y_);
    y_to_z_ = rt.link(y_, z_);
    z_to_x_ = rt.link(z_, x_);
    rt.proc(0).add_root(x_.seq);
    baseline_snapshots(rt);  // pre-mutation views: the stale S2/S3 of Fig. 2
  }
  std::size_t script_size() const override { return 2; }
  void apply_script(Runtime& rt, std::size_t step) override {
    if (step == 0) {
      rt.proc(0).invoke(x_.seq, x_to_y_, InvokeEffect::kPinRoot);
    } else {
      rt.proc(0).remove_root(x_.seq);
    }
  }
  ProcessId script_proc(std::size_t) const override { return 0; }
  // y is pinned as a root at P1 once the script ran: all three survive.
  std::size_t expected_survivors() const override { return 3; }

 private:
  ObjectId x_, y_, z_;
  RefId x_to_y_ = kNoRef, y_to_z_ = kNoRef, z_to_x_ = kNoRef;
};

// ---------------------------------------------------------------- evict

// Permanent-failure eviction in minimal form: P1 roots H which references X
// owned by P0, so P0 holds one scion whose holder is P1. tune_config arms a
// one-microsecond peer_death_timeout with a one-strike suspicion threshold,
// so a handful of kLgc decisions at P0 walk the whole escalation — arm the
// watch, solicit P1's NewSetStubs, score the unanswered probe as a strike,
// then convict the sustained suspicion into a committed eviction of P1,
// dropping the scion and tombstoning P1's incarnation. (Whether the probe
// goes unanswered is itself a scheduling choice: the Explorer decides the
// fate of the NssSolicit and of P1's answer.) The script keeps invoke/reply
// traffic from P1 in flight so the Explorer can deliver pre-eviction
// messages after the tombstone is in place (Evicted NACK path). Safety must
// hold throughout: eviction may only ever reclaim objects reachable through
// the evicted (tainted) peer, never anything rooted elsewhere.
class EvictScenario final : public Scenario {
 public:
  ScenarioKind kind() const override { return ScenarioKind::kEvict; }
  std::size_t num_procs() const override { return 2; }
  void build(Runtime& rt) override {
    x_ = ObjectId{0, rt.proc(0).create_object()};
    h_ = ObjectId{1, rt.proc(1).create_object()};
    h_to_x_ = rt.link(h_, x_);
    rt.proc(1).add_root(h_.seq);
    baseline_snapshots(rt);
  }
  std::size_t script_size() const override { return 2; }
  void apply_script(Runtime& rt, std::size_t) override {
    rt.proc(1).invoke(h_.seq, h_to_x_, InvokeEffect::kTouch, {},
                      /*want_reply=*/true);
  }
  ProcessId script_proc(std::size_t) const override { return 1; }
  // Fault-free without eviction both objects live — but the liveness gate
  // is off (check_liveness), so this is documentation, not an oracle input.
  std::size_t expected_survivors() const override { return 2; }
  void tune_config(RuntimeConfig& cfg) const override {
    cfg.proc.peer_death_timeout_us = 1;
    cfg.proc.suspect_after_failures = 1;  // one unanswered solicit convicts
  }
  bool check_liveness() const override { return false; }

 private:
  ObjectId x_, h_;
  RefId h_to_x_ = kNoRef;
};

}  // namespace

const char* scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kFig1: return "fig1";
    case ScenarioKind::kFig3: return "fig3";
    case ScenarioKind::kFig4: return "fig4";
    case ScenarioKind::kFig5: return "fig5";
    case ScenarioKind::kRace: return "race";
    case ScenarioKind::kEvict: return "evict";
  }
  return "?";
}

std::optional<ScenarioKind> parse_scenario(const std::string& name) {
  if (name == "fig1") return ScenarioKind::kFig1;
  if (name == "fig3") return ScenarioKind::kFig3;
  if (name == "fig4") return ScenarioKind::kFig4;
  if (name == "fig5") return ScenarioKind::kFig5;
  if (name == "race") return ScenarioKind::kRace;
  if (name == "evict") return ScenarioKind::kEvict;
  return std::nullopt;
}

std::unique_ptr<Scenario> make_scenario(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kFig1: return std::make_unique<Fig1Scenario>();
    case ScenarioKind::kFig3: return std::make_unique<Fig3Scenario>();
    case ScenarioKind::kFig4: return std::make_unique<Fig4Scenario>();
    case ScenarioKind::kFig5: return std::make_unique<Fig5Scenario>();
    case ScenarioKind::kRace: return std::make_unique<RaceScenario>();
    case ScenarioKind::kEvict: return std::make_unique<EvictScenario>();
  }
  return nullptr;
}

RuntimeConfig mc_config(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.net.min_latency_us = 10;
  cfg.net.mean_latency_us = 10;  // ignored: the Explorer's fate hook decides
  cfg.net.loss_probability = 0.0;
  cfg.net.duplicate_probability = 0.0;
  cfg.net.fifo_links = false;

  // The Explorer schedules every collector run as an explicit decision, so
  // the periodic timers are not armed at all. (Merely parking them with a
  // huge period is not enough: start() de-phases the first tick uniformly
  // over the period, which can land inside the exploration horizon — and
  // executing a far-future timer teleports the clock past every grace and
  // expiry guard.)
  cfg.proc.periodic_collectors_enabled = false;
  cfg.proc.lgc_period_us = kNever;
  cfg.proc.snapshot_period_us = kNever;
  cfg.proc.dcda_scan_period_us = kNever;
  cfg.proc.candidate_quarantine_us = 0;
  cfg.proc.scion_pending_grace_us = 10'000;
  cfg.proc.scion_pending_expiry_factor = 1'000'000;  // effectively never
  // Finite: the settle phase advances the clock past it so stuck detections
  // expire and the scan can relaunch survivors.
  cfg.proc.detection_timeout_us = 1'000'000;
  // Adaptive backoff would key off the (infinite) scan period, and batching
  // adds flush-deadline timers — both only pollute the choice space.
  cfg.proc.adaptive_faults = false;
  cfg.proc.batching_enabled = false;
  cfg.proc.roundtrip_snapshots = false;  // pure speed: the codec has own tests
  // Off by default so the existing trace corpus replays unchanged; the
  // Explorer re-enables it when ExplorerOptions::snapshot_pipeline_latency_us
  // is set, which adds the summary-publish timer as a choice point.
  cfg.proc.snapshot_pipeline = false;
  return cfg;
}

}  // namespace adgc::mc
