#include "src/mc/shrink.h"

#include <algorithm>

namespace adgc::mc {

namespace {
Trace without_range(const Trace& t, std::size_t begin, std::size_t end) {
  Trace out = t;
  out.decisions.erase(out.decisions.begin() + static_cast<std::ptrdiff_t>(begin),
                      out.decisions.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}
}  // namespace

Trace shrink_trace(const Trace& failing,
                   const std::function<bool(const Trace&)>& still_fails,
                   std::size_t max_attempts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;

  Trace cur = failing;
  std::size_t granularity = 2;
  while (cur.decisions.size() >= 2 && st.attempts < max_attempts) {
    const std::size_t size = cur.decisions.size();
    const std::size_t chunk = std::max<std::size_t>(1, (size + granularity - 1) / granularity);
    bool reduced = false;
    for (std::size_t begin = 0; begin < size && st.attempts < max_attempts;
         begin += chunk) {
      const std::size_t end = std::min(begin + chunk, size);
      if (end - begin == size) continue;  // never try the empty trace
      Trace candidate = without_range(cur, begin, end);
      ++st.attempts;
      if (still_fails(candidate)) {
        cur = std::move(candidate);
        ++st.reductions;
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;  // sizes shifted: restart the scan on the smaller trace
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // 1-minimal
      granularity = std::min(granularity * 2, cur.decisions.size());
    }
  }
  return cur;
}

}  // namespace adgc::mc
