// Invariant oracles shared by the model checker and the random sweeps.
//
// The safety oracle needs no shadow graph: a false collection always leaves
// a dangling edge at the frontier of the surviving live region — a rooted
// object gone, a local field pointing at nothing, a held reference with no
// stub entry, or a live-backed stub whose owner-side scion (or target
// object) has been dropped. BFS from the ground-truth roots and check every
// edge crossed; this is exact, cheap on scenario-sized heaps, and fires at
// the very step the protocol went wrong (which keeps counterexamples short).
#pragma once

#include <optional>
#include <string>
#include <unordered_set>

#include "src/rt/runtime.h"

namespace adgc::mc {

/// SAFETY: every edge out of the root-reachable region must be intact.
/// `tainted` (optional) lists processes that crashed at some point in the
/// run: references into them may legitimately dangle (crash = state loss),
/// so cross-process checks touching a tainted endpoint are skipped.
/// Returns a diagnostic string on violation, nullopt when the invariant
/// holds.
std::optional<std::string> check_reachable_intact(
    const Runtime& rt, const std::unordered_set<ProcessId>* tainted = nullptr);

/// SAFETY (external oracle): every object in `must_exist` still exists.
/// The random workload's shadow graph supplies `must_exist`; the model
/// checker's scenarios rely on check_reachable_intact instead.
std::optional<std::string> check_objects_exist(
    const Runtime& rt, const std::unordered_set<ObjectId>& must_exist);

/// LIVENESS/COMPLETENESS: no garbage remains — every existing object is
/// root-reachable. Only meaningful after the system has settled (mutation
/// stopped, messages drained, collectors run to quiescence).
std::optional<std::string> check_no_garbage(const Runtime& rt);

}  // namespace adgc::mc
