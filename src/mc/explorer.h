// The model checker's driver: one Explorer turns a (scenario, strategy,
// bounds) triple into a bounded search over schedules.
//
// Every schedule re-executes from scratch (stateless model checking): a
// fresh Runtime in explicit-schedule mode, the scenario graph rebuilt, and
// then a loop of up to `max_steps` choice points. At each point the Explorer
// enumerates the enabled decisions in a fixed deterministic order —
//   script step | pending deliveries | per-process lgc/snapshot/scan |
//   message drops (loss budget) | crash/restart (crash budget)
// — asks the strategy to pick, applies the decision, and runs the safety
// oracle. Schedules that took no fault decisions additionally settle to
// quiescence and run the liveness/completeness oracles.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/common/metrics.h"
#include "src/mc/oracles.h"
#include "src/mc/scenario.h"
#include "src/mc/strategy.h"
#include "src/mc/trace.h"

namespace adgc::mc {

struct ExplorerOptions {
  ScenarioKind scenario = ScenarioKind::kFig3;
  std::uint64_t seed = 1;
  std::uint32_t max_steps = 60;        // decisions per schedule
  std::uint64_t max_schedules = 10'000;
  std::uint64_t time_budget_ms = 0;    // wall clock; 0 = unlimited
  std::uint32_t loss_budget = 0;       // kDrop decisions allowed per schedule
  std::uint32_t crash_budget = 0;      // kCrash decisions allowed per schedule
  std::uint32_t collector_budget = 3;  // per process *and* per collector kind
  std::size_t max_choices = 64;        // enumeration cap per step
  bool check_liveness = true;
  std::uint32_t settle_rounds = 8;
  bool stop_on_violation = true;
  bool unsafe_no_ic = false;           // planted-bug knob (self-test only)
  // Non-zero turns the snapshot pipeline ON for explored schedules: kSnapshot
  // decisions request a snapshot whose summary publishes via a timer this
  // many sim-µs later, making the publish race detection as an ordinary
  // pending-event choice point. 0 (default) keeps snapshots synchronous so
  // existing corpora replay unchanged.
  std::uint32_t snapshot_pipeline_latency_us = 0;
};

/// What one executed schedule produced.
struct ScheduleOutcome {
  std::optional<std::string> violation;
  Trace trace;            // the decisions actually taken, replayable
  std::size_t steps = 0;  // == trace.decisions.size()
  Metrics metrics;        // aggregate runtime counters at schedule end
};

struct ExploreResult {
  std::uint64_t schedules = 0;
  std::uint64_t total_decisions = 0;
  bool exhausted = false;        // strategy ran out of schedules within bounds
  bool hit_time_budget = false;
  std::optional<ScheduleOutcome> failure;  // first violating schedule

  // Accumulated protocol activity across all schedules (search health:
  // a search that never starts a detection is not testing the DCDA).
  std::uint64_t detections_started = 0;
  std::uint64_t cycles_collected = 0;
  std::uint64_t detections_aborted_ic = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t peers_evicted = 0;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions opts) : opts_(std::move(opts)) {}

  const ExplorerOptions& options() const { return opts_; }

  /// Runs schedules driven by `strategy` until it is exhausted or a budget
  /// (schedules, wall clock) is hit — or a violation is found with
  /// stop_on_violation set.
  ExploreResult explore(ScheduleStrategy& strategy);

  /// Runs exactly one schedule (begin/end_schedule included).
  ScheduleOutcome run_one(ScheduleStrategy& strategy);

 private:
  ScheduleOutcome run_schedule(ScheduleStrategy& strategy);

  ExplorerOptions opts_;
};

/// Re-executes a recorded trace: options (scenario, seed, bounds, knob) are
/// reconstructed from the trace header, fault budgets from its decisions.
ScheduleOutcome replay_trace(const Trace& trace);

}  // namespace adgc::mc
