#include "src/mc/explorer.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/log.h"

namespace adgc::mc {

namespace {

/// Executes every schedulable pending event (creation order) until none are
/// left inside the horizon. Bounded defensively; with the periodic timers
/// parked beyond kFarFuture the fixpoint is small.
void drain(Runtime& rt) {
  for (int guard = 0; guard < 200'000; ++guard) {
    rt.prune_stale_events();
    bool fired = false;
    for (const Runtime::PendingInfo& pi : rt.pending_infos()) {
      if (pi.when >= kFarFuture) continue;
      ADGC_TRACE("mc drain: exec " << (pi.is_message ? "msg" : "timer") << " src="
                                   << pi.src << " dst=" << pi.dst << " tag="
                                   << static_cast<int>(pi.tag) << " when=" << pi.when);
      rt.execute_event(pi.id);
      fired = true;
      break;  // executing may enqueue/invalidate others: re-enumerate
    }
    if (!fired) return;
  }
}

std::size_t total_objects(const Runtime& rt) {
  std::size_t n = 0;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (rt.alive(pid)) n += rt.proc(pid).heap().size();
  }
  return n;
}

/// Deterministic quiescence: run the full collector pipeline on every
/// process, flushing the network in between and stepping the clock over the
/// detection timeout so stuck detections expire and relaunch. Stops early
/// once only `survivors` objects remain (the expected fixpoint).
void settle(Runtime& rt, std::uint32_t rounds, std::size_t survivors) {
  const SimTime hop = rt.config().proc.detection_timeout_us + 50'000;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    drain(rt);
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).run_lgc();
    }
    if (total_objects(rt) <= survivors) break;
    drain(rt);
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).take_snapshot();
    }
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).run_dcda_scan();
    }
    drain(rt);
    rt.run_until(rt.now() + hop);  // pure clock advance in explicit mode
  }
  drain(rt);
}

}  // namespace

ScheduleOutcome Explorer::run_schedule(ScheduleStrategy& strategy) {
  ScheduleOutcome out;
  const std::unique_ptr<Scenario> scenario = make_scenario(opts_.scenario);
  out.trace.scenario = scenario->name();
  out.trace.seed = opts_.seed;
  out.trace.max_steps = opts_.max_steps;
  out.trace.unsafe_no_ic = opts_.unsafe_no_ic;
  out.trace.snapshot_pipeline_latency_us = opts_.snapshot_pipeline_latency_us;

  RuntimeConfig cfg = mc_config(opts_.seed);
  scenario->tune_config(cfg);
  cfg.proc.dcda_unsafe_ignore_ic = opts_.unsafe_no_ic;
  if (opts_.snapshot_pipeline_latency_us > 0) {
    cfg.proc.snapshot_pipeline = true;
    cfg.proc.snapshot_pipeline_latency_us = opts_.snapshot_pipeline_latency_us;
  }
  Runtime rt(scenario->num_procs(), cfg);
  const SimTime lat = cfg.net.min_latency_us;
  rt.network().set_fate_hook(
      [lat](const Envelope&) { return SimNetwork::Fate{false, false, lat}; });
  rt.enable_explicit_schedule();
  scenario->build(rt);

  const std::size_t n = rt.size();
  std::size_t script_next = 0;
  std::uint32_t drops_used = 0;
  std::uint32_t crashes_used = 0;
  std::uint32_t evictions_seen = 0;
  std::vector<std::uint32_t> lgc_used(n, 0), snap_used(n, 0), scan_used(n, 0);
  std::unordered_set<ProcessId> tainted;

  std::vector<Decision> choices;
  std::vector<std::uint64_t> event_ids;  // parallel to choices; 0 = none

  for (std::uint32_t step = 0; step < opts_.max_steps; ++step) {
    rt.prune_stale_events();
    choices.clear();
    event_ids.clear();
    const std::vector<Runtime::PendingInfo> pending = rt.pending_infos();

    if (script_next < scenario->script_size()) {
      // A crashed mutator's scripted actions die with it: the step may name
      // objects or references a cold restart has lost.
      const ProcessId actor = scenario->script_proc(script_next);
      if (rt.alive(actor) && !tainted.contains(actor)) {
        choices.push_back({DecisionKind::kScript,
                           static_cast<std::uint32_t>(script_next), 0, 0});
        event_ids.push_back(0);
      }
    }
    for (const Runtime::PendingInfo& pi : pending) {
      if (pi.when >= kFarFuture) continue;
      choices.push_back({DecisionKind::kDeliver,
                         pi.is_message ? pi.src : kTimerSrc, pi.dst, pi.tag});
      event_ids.push_back(pi.id);
    }
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (!rt.alive(pid)) continue;
      if (lgc_used[pid] < opts_.collector_budget) {
        choices.push_back({DecisionKind::kLgc, pid, 0, 0});
        event_ids.push_back(0);
      }
      if (snap_used[pid] < opts_.collector_budget) {
        choices.push_back({DecisionKind::kSnapshot, pid, 0, 0});
        event_ids.push_back(0);
      }
      if (scan_used[pid] < opts_.collector_budget) {
        choices.push_back({DecisionKind::kScan, pid, 0, 0});
        event_ids.push_back(0);
      }
    }
    if (drops_used < opts_.loss_budget) {
      for (const Runtime::PendingInfo& pi : pending) {
        if (!pi.is_message || pi.when >= kFarFuture) continue;
        choices.push_back({DecisionKind::kDrop, pi.src, pi.dst, pi.tag});
        event_ids.push_back(pi.id);
      }
    }
    if (crashes_used < opts_.crash_budget) {
      for (ProcessId pid = 0; pid < n; ++pid) {
        choices.push_back({rt.alive(pid) ? DecisionKind::kCrash : DecisionKind::kRestart,
                           pid, 0, 0});
        event_ids.push_back(0);
      }
    }
    if (choices.size() > opts_.max_choices) {
      choices.resize(opts_.max_choices);
      event_ids.resize(opts_.max_choices);
    }
    if (choices.empty()) break;

    const std::size_t idx = strategy.pick(choices, step);
    if (idx == kStopSchedule) break;
    const Decision d = choices.at(idx);

    switch (d.kind) {
      case DecisionKind::kScript:
        scenario->apply_script(rt, script_next++);
        break;
      case DecisionKind::kDeliver:
        rt.execute_event(event_ids[idx]);
        break;
      case DecisionKind::kDrop:
        rt.drop_event(event_ids[idx]);
        ++drops_used;
        break;
      case DecisionKind::kLgc:
        rt.proc(d.a).run_lgc();
        ++lgc_used[d.a];
        break;
      case DecisionKind::kSnapshot:
        // With the pipeline on this only *requests* the snapshot; the
        // summary publish is a scheduled timer the explorer orders like any
        // other pending event. Pipeline off degrades to take_snapshot().
        rt.proc(d.a).request_snapshot();
        ++snap_used[d.a];
        break;
      case DecisionKind::kScan:
        rt.proc(d.a).run_dcda_scan();
        ++scan_used[d.a];
        break;
      case DecisionKind::kCrash:
        rt.crash(d.a);
        tainted.insert(d.a);
        ++crashes_used;
        break;
      case DecisionKind::kRestart:
        rt.restart(d.a);
        break;
    }
    out.trace.decisions.push_back(d);

    // An eviction is the protocol deliberately treating a peer as crashed:
    // its scions are dropped, so objects reachable only through it may be
    // reclaimed. Taint it exactly like a crash for the safety oracle.
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (!rt.alive(pid)) continue;
      for (const auto& [peer, inc] : rt.proc(pid).peer_health().eviction_tombstones()) {
        (void)inc;
        if (tainted.insert(peer).second) ++evictions_seen;
      }
    }

    if (auto v = check_reachable_intact(rt, &tainted)) {
      out.violation = std::move(v);
      break;
    }
  }
  out.steps = out.trace.decisions.size();

  // Liveness is only decidable on fault-free schedules: a dropped invoke
  // legitimately orphans a pending scion forever, a cold restart loses
  // roots, and an eviction severs live remote references on purpose — all
  // leave garbage the protocol is not required to reclaim in this horizon.
  if (!out.violation && opts_.check_liveness && scenario->check_liveness() &&
      drops_used == 0 && crashes_used == 0 && evictions_seen == 0) {
    while (script_next < scenario->script_size()) {
      scenario->apply_script(rt, script_next++);
    }
    settle(rt, opts_.settle_rounds, scenario->expected_survivors());
    if (auto v = check_reachable_intact(rt, &tainted)) {
      out.violation = std::move(v);
    } else if (auto g = check_no_garbage(rt)) {
      out.violation = std::move(g);
    } else if (total_objects(rt) != scenario->expected_survivors()) {
      out.violation = "LIVENESS: expected " +
                      std::to_string(scenario->expected_survivors()) +
                      " survivors after settle, found " +
                      std::to_string(total_objects(rt));
    }
  }

  out.metrics = rt.total_metrics();
  return out;
}

ScheduleOutcome Explorer::run_one(ScheduleStrategy& strategy) {
  strategy.begin_schedule();
  ScheduleOutcome out = run_schedule(strategy);
  strategy.end_schedule(out.steps);
  return out;
}

ExploreResult Explorer::explore(ScheduleStrategy& strategy) {
  ExploreResult res;
  const auto start = std::chrono::steady_clock::now();
  while (res.schedules < opts_.max_schedules) {
    if (opts_.time_budget_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (static_cast<std::uint64_t>(elapsed) >= opts_.time_budget_ms) {
        res.hit_time_budget = true;
        break;
      }
    }
    if (!strategy.begin_schedule()) {
      res.exhausted = true;
      break;
    }
    ScheduleOutcome out = run_schedule(strategy);
    strategy.end_schedule(out.steps);

    ++res.schedules;
    res.total_decisions += out.steps;
    res.detections_started += out.metrics.detections_started.get();
    res.cycles_collected += out.metrics.detections_cycle_found.get();
    res.detections_aborted_ic += out.metrics.detections_aborted_ic.get();
    res.messages_delivered += out.metrics.messages_delivered.get();
    res.peers_evicted += out.metrics.peers_evicted.get();

    if (out.violation) {
      if (!res.failure) res.failure = std::move(out);
      if (opts_.stop_on_violation) break;
    }
  }
  return res;
}

ScheduleOutcome replay_trace(const Trace& trace) {
  ExplorerOptions opts;
  const std::optional<ScenarioKind> kind = parse_scenario(trace.scenario);
  if (!kind) {
    ScheduleOutcome out;
    out.violation = "replay: unknown scenario '" + trace.scenario + "'";
    return out;
  }
  opts.scenario = *kind;
  opts.seed = trace.seed;
  opts.max_steps = trace.max_steps;
  opts.unsafe_no_ic = trace.unsafe_no_ic;
  opts.snapshot_pipeline_latency_us = trace.snapshot_pipeline_latency_us;
  // Fault budgets must admit every recorded fault decision; collector
  // budgets likewise (per process and kind).
  std::uint32_t collector_max = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> per_proc_kind;
  for (const Decision& d : trace.decisions) {
    switch (d.kind) {
      case DecisionKind::kDrop: ++opts.loss_budget; break;
      case DecisionKind::kCrash: ++opts.crash_budget; break;
      case DecisionKind::kLgc:
      case DecisionKind::kSnapshot:
      case DecisionKind::kScan: {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(d.kind) << 32) | d.a;
        collector_max = std::max(collector_max, ++per_proc_kind[key]);
        break;
      }
      default: break;
    }
  }
  opts.collector_budget = std::max(opts.collector_budget, collector_max);

  Explorer explorer(opts);
  ReplayStrategy strategy(trace);
  return explorer.run_one(strategy);
}

}  // namespace adgc::mc
