// Schedule strategies: who decides at each choice point.
//
// The Explorer enumerates the enabled decisions at every step and asks the
// strategy to pick one. Strategies are stateful across schedules:
//   * DfsStrategy      — exhaustive depth-first enumeration of the bounded
//                        schedule tree, optionally delay-bounded (the sum of
//                        picked indices measures how far a schedule deviates
//                        from the default order);
//   * PctStrategy      — probabilistic concurrency testing: deterministic
//                        hash priorities over decision classes with d
//                        priority-change points per schedule;
//   * ReplayStrategy   — replays a recorded trace by decision class,
//                        skipping entries whose event no longer exists (so
//                        shrunk traces still steer the run).
#pragma once

#include <cstdint>
#include <vector>

#include "src/mc/trace.h"

namespace adgc::mc {

/// pick() sentinel: end the current schedule here.
inline constexpr std::size_t kStopSchedule = static_cast<std::size_t>(-1);

class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;

  /// Prepares for one more schedule. Returns false when the strategy has
  /// exhausted its search space (the Explorer stops).
  virtual bool begin_schedule() = 0;
  /// Picks an index into `choices` (non-empty), or kStopSchedule.
  virtual std::size_t pick(const std::vector<Decision>& choices, std::size_t step) = 0;
  /// Called after each schedule with the number of decisions actually taken.
  virtual void end_schedule(std::size_t steps) { (void)steps; }
};

/// Exhaustive bounded DFS over the schedule tree. Each path node remembers
/// (chosen index, number of alternatives); begin_schedule advances the
/// deepest incrementable node like an odometer, and the replayed prefix
/// re-picks the recorded indices. With `delay_bound` set, only schedules
/// whose total deviation from the default order (sum of chosen indices) is
/// within the bound are generated — the classic delay-bounded search.
class DfsStrategy final : public ScheduleStrategy {
 public:
  explicit DfsStrategy(std::size_t delay_bound = static_cast<std::size_t>(-1))
      : delay_bound_(delay_bound) {}

  bool begin_schedule() override;
  std::size_t pick(const std::vector<Decision>& choices, std::size_t step) override;
  void end_schedule(std::size_t steps) override;

  /// True once begin_schedule has returned false: the bounded tree is fully
  /// enumerated (every schedule within the bounds was run).
  bool exhausted() const { return exhausted_; }

 private:
  struct Node {
    std::size_t chosen = 0;
    std::size_t num = 0;
  };
  std::vector<Node> path_;
  std::size_t cursor_ = 0;
  std::size_t cost_ = 0;  // sum of chosen indices along path_
  std::size_t delay_bound_;
  bool first_ = true;
  bool exhausted_ = false;
};

/// PCT-style randomized search: every decision class gets a deterministic
/// hash priority; the highest-priority enabled decision wins. Each schedule
/// re-derives the priority salt from (seed, schedule index), and `change_points`
/// pre-drawn steps per schedule re-randomize the salt mid-run — the
/// priority-change points that let PCT hit bugs of depth d+1.
class PctStrategy final : public ScheduleStrategy {
 public:
  PctStrategy(std::uint64_t seed, std::uint32_t change_points, std::uint32_t max_steps);

  bool begin_schedule() override;
  std::size_t pick(const std::vector<Decision>& choices, std::size_t step) override;

 private:
  std::uint64_t seed_;
  std::uint32_t change_points_;
  std::uint32_t max_steps_;
  std::uint64_t schedule_ = 0;
  std::uint64_t salt_ = 0;
  std::uint32_t bumps_ = 0;
  std::vector<std::uint32_t> change_steps_;
};

/// Replays a recorded trace: at each step the next unconsumed trace entry is
/// matched against the enabled choices by decision class; entries that match
/// nothing are skipped (shrinking removes decisions, which shifts what is
/// enabled downstream). Runs exactly one schedule; stops when the trace is
/// exhausted.
class ReplayStrategy final : public ScheduleStrategy {
 public:
  explicit ReplayStrategy(Trace trace) : trace_(std::move(trace)) {}

  bool begin_schedule() override;
  std::size_t pick(const std::vector<Decision>& choices, std::size_t step) override;

  /// Trace entries actually applied (diagnostics).
  std::size_t matched() const { return matched_; }

 private:
  Trace trace_;
  std::size_t pos_ = 0;
  std::size_t matched_ = 0;
  bool ran_ = false;
};

}  // namespace adgc::mc
