#include "src/mc/oracles.h"

#include <deque>
#include <sstream>

#include "src/sim/harness.h"

namespace adgc::mc {

namespace {
bool is_tainted(const std::unordered_set<ProcessId>* tainted, ProcessId pid) {
  return tainted != nullptr && tainted->contains(pid);
}
}  // namespace

std::optional<std::string> check_reachable_intact(
    const Runtime& rt, const std::unordered_set<ProcessId>* tainted) {
  std::unordered_set<ObjectId> visited;
  std::deque<ObjectId> frontier;

  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (!rt.alive(pid)) continue;
    for (ObjectSeq seq : rt.proc(pid).heap().roots()) {
      if (!rt.proc(pid).heap().exists(seq)) {
        std::ostringstream os;
        os << "SAFETY: rooted object " << to_string(ObjectId{pid, seq})
           << " was collected";
        return os.str();
      }
      if (visited.insert({pid, seq}).second) frontier.push_back({pid, seq});
    }
  }

  while (!frontier.empty()) {
    const ObjectId cur = frontier.front();
    frontier.pop_front();
    const Process& proc = rt.proc(cur.owner);
    const HeapObject* obj = proc.heap().find(cur.seq);
    if (!obj) continue;  // unreachable: insertion guaranteed existence
    for (ObjectSeq next : obj->local_fields) {
      if (!proc.heap().exists(next)) {
        std::ostringstream os;
        os << "SAFETY: live " << to_string(cur) << " holds local field to collected "
           << to_string(ObjectId{cur.owner, next});
        return os.str();
      }
      if (visited.insert({cur.owner, next}).second) {
        frontier.push_back({cur.owner, next});
      }
    }
    for (RefId ref : obj->remote_fields) {
      const StubEntry* stub = proc.stubs().find(ref);
      if (!stub) {
        std::ostringstream os;
        os << "SAFETY: live " << to_string(cur) << " holds remote ref "
           << ref_to_string(ref) << " with no stub entry";
        return os.str();
      }
      const ProcessId owner = stub->target.owner;
      // Crash-tainted endpoints may legitimately dangle: a crash loses the
      // owner's tables (or rolled them back to an older snapshot).
      if (owner >= rt.size() || !rt.alive(owner) || is_tainted(tainted, owner) ||
          is_tainted(tainted, cur.owner)) {
        continue;
      }
      const Process& owner_proc = rt.proc(owner);
      if (!owner_proc.scions().contains(ref)) {
        std::ostringstream os;
        os << "SAFETY: scion " << ref_to_string(ref) << " at P" << owner
           << " dropped while live " << to_string(cur) << " still holds the stub";
        return os.str();
      }
      if (!owner_proc.heap().exists(stub->target.seq)) {
        std::ostringstream os;
        os << "SAFETY: remotely referenced " << to_string(stub->target)
           << " was collected under live holder " << to_string(cur);
        return os.str();
      }
      if (visited.insert(stub->target).second) frontier.push_back(stub->target);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_objects_exist(
    const Runtime& rt, const std::unordered_set<ObjectId>& must_exist) {
  for (const ObjectId& id : must_exist) {
    if (id.owner >= rt.size() || !rt.alive(id.owner)) continue;
    if (!rt.proc(id.owner).heap().exists(id.seq)) {
      std::ostringstream os;
      os << "SAFETY: oracle-live " << to_string(id) << " was collected";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_no_garbage(const Runtime& rt) {
  const std::unordered_set<ObjectId> live = sim::global_live_set(rt);
  std::size_t total = 0;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (rt.alive(pid)) total += rt.proc(pid).heap().size();
  }
  if (total == live.size()) return std::nullopt;
  // Name one surviving garbage object for the diagnostic.
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (!rt.alive(pid)) continue;
    for (const auto& [seq, obj] : rt.proc(pid).heap().objects()) {
      (void)obj;
      if (!live.contains({pid, seq})) {
        std::ostringstream os;
        os << "LIVENESS: " << (total - live.size()) << " garbage object(s) remain, e.g. "
           << to_string(ObjectId{pid, seq});
        return os.str();
      }
    }
  }
  return std::nullopt;  // unreachable
}

}  // namespace adgc::mc
