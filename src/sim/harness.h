// Experiment harness: global-reachability oracle, canned configurations and
// settle helpers shared by tests, benches and examples.
#pragma once

#include <unordered_set>

#include "src/common/config.h"
#include "src/rt/runtime.h"

namespace adgc::sim {

/// True global liveness, computed outside the protocol: BFS from every
/// process's roots across local fields and remote references. This is the
/// oracle the collectors are judged against.
std::unordered_set<ObjectId> global_live_set(const Runtime& rt);

struct GlobalStats {
  std::size_t total_objects = 0;
  std::size_t live_objects = 0;
  std::size_t garbage_objects = 0;  // exist but unreachable: not yet collected
  std::size_t stubs = 0;
  std::size_t scions = 0;
};

GlobalStats global_stats(const Runtime& rt);

/// Configuration with all periodic collector tasks pushed effectively to
/// infinity: tests drive run_lgc/take_snapshot/run_dcda_scan by hand for
/// precise interleavings, while the network still delivers normally.
RuntimeConfig manual_config(std::uint64_t seed = 42);

/// Fast automatic configuration: short collector periods, low latency.
/// Good default for integration tests and examples.
RuntimeConfig fast_config(std::uint64_t seed = 42);

/// Runs everything (LGC → NewSetStubs → snapshot → DCDA scan) on every
/// process, manually, for `rounds` rounds, flushing the network in between.
/// Only meaningful with manual_config. `flush_us` bounds message latency.
void settle_manual(Runtime& rt, int rounds, SimTime flush_us = 50'000);

}  // namespace adgc::sim
