// Multi-process cluster harness: forks N adgc_node binaries on localhost,
// plants the Fig. 3 ring across them (each node runs its own slice of the
// deterministic ClusterPlant script), drops the ring anchor's root, and
// asserts that DCDA reclaims the now-garbage cross-process cycle over real
// TCP — optionally SIGKILLing one cycle member mid-detection and restarting
// it to exercise incarnation recovery end-to-end.
//
// The harness is the parent process. It never speaks the wire protocol
// itself; all observation happens through the nodes' machine-readable
// status lines on stdout ("NODE id=.. chain_live=.. sentinel_live=.. ...").
// Control actions are plain POSIX: fork/exec, SIGKILL, SIGTERM, waitpid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adgc::sim {

struct ClusterHarnessOptions {
  /// Path to the adgc_node binary (required).
  std::string node_bin;
  std::size_t nodes = 3;
  std::size_t objs_per_node = 3;
  /// SIGKILL node 1 after the root drop and restart it (incarnation
  /// recovery leg). Requires nodes >= 2.
  bool kill_restart = true;
  /// SIGKILL node 1 after the root drop and NEVER restart it: the survivors
  /// must evict the dead peer and reclaim every stub/scion toward it within
  /// the timeout budget. Requires peer_death_timeout_ms > 0; overrides
  /// kill_restart.
  bool kill_forever = false;
  /// SIGSTOP node 1 after the root drop, wait until the survivors evicted
  /// it and cleaned up, then SIGCONT it: the zombie's stale-incarnation
  /// traffic must be rejected with an Evicted NACK (node exits with code 3),
  /// after which the harness respawns it and the fresh incarnation must
  /// recover and re-integrate until the whole cluster is clean. Requires
  /// peer_death_timeout_ms > 0; overrides kill_restart and kill_forever.
  bool zombie = false;
  /// Passed to every node as --peer-death-timeout-ms when > 0. Must exceed
  /// any transient silence of the run (here: comfortably above the status/
  /// collector periods) and stay well under timeout_ms.
  std::uint64_t peer_death_timeout_ms = 0;
  /// Overall wall-clock budget before the harness declares failure.
  std::uint64_t timeout_ms = 90'000;
  /// Scratch directory for incarnation files + snapshots (required; the
  /// harness creates per-node subdirectories inside it).
  std::string state_dir;
  std::uint64_t seed = 1;
  /// Node 0 drops the ring anchor's root this long after starting.
  std::uint64_t drop_root_after_ms = 1'200;
  bool verbose = false;
  /// When > 0, node i serves its admin endpoint on admin_base_port + i and
  /// the harness scrapes /metrics + /healthz from every surviving node just
  /// before the clean shutdown, failing the run unless the Prometheus
  /// exposition parses and the key counters are non-zero. 0 = admin off.
  std::uint16_t admin_base_port = 0;
  /// When set, every node is passed --trace-file=<dir>/node<i>.trace so it
  /// dumps its binary structured-event trace on clean shutdown; the harness
  /// verifies the files exist and are non-empty (adgc_trace converts them).
  std::string obs_dump_dir;
};

struct ClusterResult {
  bool ok = false;
  /// Human-readable reason when !ok.
  std::string failure;
  /// Observability: did the restarted node report snapshot recovery?
  bool victim_recovered = false;
  /// Eviction legs: some survivor reported peers_evicted >= 1.
  bool victim_evicted = false;
  /// Zombie leg: the resumed stale incarnation exited with the Evicted-NACK
  /// status (3) after printing NODE-EVICTED.
  bool zombie_nacked = false;
  /// admin_base_port leg: every surviving node's /metrics scrape validated.
  bool metrics_scraped = false;
  std::uint64_t elapsed_ms = 0;
};

/// Runs the full scenario; blocks until success, failure, or timeout.
/// Always reaps every child it spawned before returning.
ClusterResult run_cluster(const ClusterHarnessOptions& opts);

}  // namespace adgc::sim
