// Randomized mutator workloads with a shadow oracle.
//
// The ShadowGraph mirrors every mutation the workload performs, outside the
// collectors' reach. At any instant, every shadow-live object must still
// exist in the runtime heaps (safety), and once mutation stops and the
// collectors settle, the runtime must hold exactly the shadow-live objects
// (completeness). Property tests sweep seeds over this contract.
//
// The workload only performs synchronously-visible mutations (direct graph
// edits plus kTouch invocations for invocation-counter churn), so the shadow
// is exact even under message loss.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/runtime.h"

namespace adgc::sim {

class ShadowGraph {
 public:
  void add_object(ObjectId id);
  /// Forgets an object entirely (crash rollback lost it).
  void remove_object(ObjectId id);
  void add_root(ObjectId id);
  void remove_root(ObjectId id);
  void add_edge(ObjectId from, ObjectId to);
  void remove_edge(ObjectId from, ObjectId to);  // one occurrence
  /// Replaces the object's out-edges wholesale (crash-recovery resync).
  void set_edges(ObjectId id, std::vector<ObjectId> outs);

  std::unordered_set<ObjectId> live() const;
  std::size_t num_objects() const { return out_.size(); }

 private:
  std::unordered_map<ObjectId, std::vector<ObjectId>> out_;
  std::unordered_set<ObjectId> roots_;
};

struct WorkloadParams {
  std::size_t initial_objects_per_proc = 8;
  double p_create = 0.18;
  double p_add_local_edge = 0.22;
  double p_add_remote_edge = 0.16;
  double p_remove_edge = 0.20;
  double p_toggle_root = 0.10;
  double p_invoke = 0.14;  // kTouch through a random held reference
  std::size_t max_objects = 4000;
  /// When true, a fraction of remote-edge creations go through the real RMI
  /// path (kStoreArgs invocation with an own-object export) instead of the
  /// direct link() shortcut, exercising scion-first handshakes and stub
  /// installation. Requires a loss-free network: the workload flushes after
  /// each RMI so the shadow stays exact.
  bool use_rmi_edges = false;
  /// Flush window after each RMI-created edge (simulated µs).
  SimTime rmi_flush_us = 30'000;
};

/// Drives random mutations against a Runtime while mirroring them in a
/// ShadowGraph.
class RandomWorkload {
 public:
  RandomWorkload(Runtime& rt, WorkloadParams params, std::uint64_t seed);

  /// Performs one random mutator operation (and flushes nothing — callers
  /// interleave rt.run_for as they wish).
  void step();
  void steps(std::size_t n);

  const ShadowGraph& shadow() const { return shadow_; }

  /// Verifies that every shadow-live object still exists in the runtime.
  /// Returns the first missing object, or nullopt if all present.
  std::optional<ObjectId> find_safety_violation() const;

  /// After the collectors settled: true iff the runtime holds exactly the
  /// shadow-live objects (no garbage left, nothing live lost).
  bool converged() const;

  /// Reconciles the shadow with `pid`'s state right after a crash/restart:
  /// the restart rolled the process back to its last persisted snapshot, so
  /// objects, edges and roots it owned are re-read from the restored heap,
  /// and references broken by the rollback (stub without a scion, or scion
  /// whose holder-side state was lost) are dropped on both sides — modeling
  /// an application that discards references it learns are dead. Call once
  /// per restart, before the next step().
  void sync_after_restart(ProcessId pid);

 private:
  struct Edge {
    ObjectId from, to;
    RefId ref = kNoRef;  // kNoRef for local edges
  };

  ObjectId random_object(ProcessId pid);
  ObjectId random_object_any();

  void op_create();
  void op_add_local_edge();
  void op_add_remote_edge();
  void op_remove_edge();
  void op_toggle_root();
  void op_invoke();
  /// Creates a remote edge via a real kStoreArgs invocation (own export).
  void op_rmi_store_edge();

  Runtime& rt_;
  WorkloadParams params_;
  Rng rng_;
  ShadowGraph shadow_;
  std::vector<std::vector<ObjectSeq>> objects_;  // per process, ever created
  std::vector<Edge> edges_;
  std::unordered_set<ObjectId> rooted_;
};

}  // namespace adgc::sim
