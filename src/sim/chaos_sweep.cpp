#include "src/sim/chaos_sweep.h"

#include <filesystem>
#include <sstream>
#include <vector>

#include "src/common/log.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc::sim {

namespace {

constexpr std::size_t kProcs = 6;

std::filesystem::path sweep_dir(const ChaosSweepParams& p) {
  if (!p.snapshot_dir.empty()) return p.snapshot_dir;
  std::ostringstream name;
  name << "adgc_chaos_sweep_" << p.seed;
  return std::filesystem::temp_directory_path() / name.str();
}

std::vector<ObjectId> fig3_objects(const Fig3& f) {
  return {f.A, f.B, f.C, f.D, f.F, f.G, f.H, f.J, f.O, f.M, f.K, f.Q, f.R, f.S};
}

std::vector<ObjectId> fig4_objects(const Fig4& f) {
  return {f.D, f.F, f.K, f.T, f.V, f.Y, f.ZB, f.ZD};
}

}  // namespace

ChaosSweepResult run_chaos_sweep(const ChaosSweepParams& p) {
  const std::filesystem::path dir = sweep_dir(p);
  std::filesystem::remove_all(dir);  // stale state from an aborted run

  RuntimeConfig cfg = fast_config(p.seed);
  cfg.proc.batching_enabled = p.batching;
  cfg.proc.snapshot_pipeline = p.snapshot_pipeline;
  cfg.proc.peer_death_timeout_us = p.peer_death_timeout_us;
  if (p.with_crashes) cfg.proc.snapshot_dir = dir.string();

  ChaosSweepResult res;
  {
    Runtime rt(kProcs, cfg);
    const Fig3 fig3 = build_fig3(rt);
    const Fig4 fig4 = build_fig4(rt);
    // Fig. 4 is garbage from the moment it is built; pin one object on its
    // cycle so it stays live through the warmup and is released together
    // with Fig. 3's root when the storm is about to start.
    rt.proc(fig4.F.owner).add_root(fig4.F.seq);

    // Live sentinel ring: rooted L_p holds a remote reference to the
    // unrooted N_{p+1}, whose survival therefore rests entirely on the
    // cross-process stub/scion pair — exactly the state a lossy, partitioned
    // and crashing network tries hardest to corrupt.
    std::vector<ObjectId> L, N;
    for (ProcessId pid = 0; pid < kProcs; ++pid) {
      L.push_back(ObjectId{pid, rt.proc(pid).create_object()});
      N.push_back(ObjectId{pid, rt.proc(pid).create_object()});
      rt.proc(pid).add_root(L.back().seq);
    }
    for (ProcessId pid = 0; pid < kProcs; ++pid) {
      rt.link(L[pid], N[(pid + 1) % kProcs]);
    }

    // Fault-free warmup: every process snapshots the full structure.
    rt.run_for(p.warmup_us);

    // Make everything planted garbage, and give the owners a few snapshot
    // periods to persist the root drops before the first crash can hit.
    rt.proc(fig3.A.owner).remove_root(fig3.A.seq);
    rt.proc(fig4.F.owner).remove_root(fig4.F.seq);
    rt.run_for(50'000);

    // The storm. Per slice: one bidirectional link partition (rotating so
    // every ring link is blocked once) on top of sustained loss, duplication
    // and reordering; optionally one crash+restart.
    rt.network().set_loss_probability(p.loss_probability);
    rt.network().set_duplicate_probability(p.duplicate_probability);
    for (std::size_t slice = 0; slice < p.slices; ++slice) {
      const ProcessId a = static_cast<ProcessId>(slice % kProcs);
      const ProcessId b = static_cast<ProcessId>((slice + 1) % kProcs);
      rt.network().set_link_blocked(a, b, true);
      rt.network().set_link_blocked(b, a, true);
      if (p.with_crashes) {
        // Crash a process on the far side of the current partition.
        const ProcessId victim = static_cast<ProcessId>((slice + 3) % kProcs);
        rt.crash(victim);
        ++res.crashes;
        rt.run_for(p.down_us);
        if (rt.restart(victim)) ++res.recovered;
        rt.run_for(p.slice_us - p.down_us);
      } else {
        rt.run_for(p.slice_us);
      }
      rt.network().set_link_blocked(a, b, false);
      rt.network().set_link_blocked(b, a, false);
    }

    // Faults lift; the system must converge.
    rt.network().set_loss_probability(0.0);
    rt.network().set_duplicate_probability(0.0);
    rt.run_for(p.settle_us);

    // Verdicts against the planted-structure oracle: every object of both
    // figures must be gone (completeness), every sentinel must survive
    // (safety — load shedding and backoff may only ever delay collection).
    res.cycles_collected = true;
    std::ostringstream detail;
    for (const ObjectId id : fig3_objects(fig3)) {
      if (rt.proc(id.owner).heap().exists(id.seq)) {
        res.cycles_collected = false;
        detail << "uncollected fig3 " << to_string(id) << "; ";
      }
    }
    for (const ObjectId id : fig4_objects(fig4)) {
      if (rt.proc(id.owner).heap().exists(id.seq)) {
        res.cycles_collected = false;
        detail << "uncollected fig4 " << to_string(id) << "; ";
      }
    }
    for (ProcessId pid = 0; pid < kProcs; ++pid) {
      if (!rt.proc(pid).heap().exists(L[pid].seq) ||
          !rt.proc(pid).heap().exists(N[pid].seq)) {
        res.live_lost = true;
        detail << "sentinel lost on P" << pid << "; ";
      }
    }
    const Metrics total = rt.total_metrics();
    res.messages_lost = total.messages_lost.get();
    res.suspect_transitions = total.peer_suspect_transitions.get();
    res.cdms_shed = total.cdms_shed.get();
    res.new_set_stubs_shed = total.new_set_stubs_shed.get();
    res.detections_deferred = total.detections_deferred_backoff.get();
    res.add_scion_abandoned = total.add_scion_abandoned.get();
    res.detail = detail.str();
  }

  std::filesystem::remove_all(dir);
  return res;
}

namespace {

/// One comparison leg: a 12-process garbage ring under sustained loss, plus
/// a periodic third-party re-export (the AddScion retry path) driven from
/// P0. The CDM hop limit is set below the ring length, so no detection can
/// ever complete: both legs sit in the *persistent*-failure regime — a
/// garbage structure beyond the hop budget, every launch timing out — which
/// is exactly where fixed-interval relaunching hammers the network and
/// exponential backoff pays off. (Eventual collection is the chaos sweep's
/// business, not this harness's; here the cycle staying uncollected keeps
/// the two legs statistically comparable for the whole run.)
/// Returns the runtime's total metrics after `run_us`.
Metrics backoff_leg(std::uint64_t seed, double loss, SimTime run_us, bool adaptive) {
  constexpr std::size_t kRingProcs = 12;
  RuntimeConfig cfg = fast_config(seed);
  cfg.proc.adaptive_faults = adaptive;
  cfg.proc.cdm_hop_limit = kRingProcs - 4;  // detections always time out
  Runtime rt(kRingProcs, cfg);
  const Ring ring = build_ring(rt, kRingProcs, 1, /*pin_first=*/true);

  // Handshake workload: X0 (rooted on P0) holds references to Xa on P10 and
  // Xb on P11; every period P0 invokes Xa passing the Xb reference as a
  // third-party argument — a scion-first AddScion handshake toward P11 that
  // must be retried under loss.
  const ObjectId X0{0, rt.proc(0).create_object()};
  const ObjectId Xa{10, rt.proc(10).create_object()};
  const ObjectId Xb{11, rt.proc(11).create_object()};
  rt.proc(0).add_root(X0.seq);
  rt.proc(10).add_root(Xa.seq);
  rt.proc(11).add_root(Xb.seq);
  const RefId via = rt.link(X0, Xa);
  const RefId held = rt.link(X0, Xb);

  rt.run_for(50'000);  // build-out settles fault-free
  rt.proc(0).remove_root(ring.anchors[0].seq);  // the ring becomes garbage
  rt.network().set_loss_probability(loss);
  const SimTime invoke_period = 20'000;
  for (SimTime t = 0; t < run_us; t += invoke_period) {
    rt.proc(0).invoke(X0.seq, via, InvokeEffect::kTouch, {ArgRef::held(held)},
                      /*want_reply=*/true);
    rt.run_for(invoke_period);
  }
  return rt.total_metrics();
}

}  // namespace

BackoffComparison run_backoff_comparison(std::uint64_t seed, double loss, SimTime run_us) {
  BackoffComparison out;
  // Hop-limit CDM drops are this scenario's working condition, not an
  // anomaly; don't let their per-message warnings flood the output.
  const LogLevel saved = Log::level();
  if (saved < LogLevel::kError) Log::set_level(LogLevel::kError);
  const Metrics adaptive = backoff_leg(seed, loss, run_us, /*adaptive=*/true);
  const Metrics fixed = backoff_leg(seed, loss, run_us, /*adaptive=*/false);
  Log::set_level(saved);
  out.adaptive_retry_messages = adaptive.add_scion_retries.get() + adaptive.cdms_sent.get();
  out.fixed_retry_messages = fixed.add_scion_retries.get() + fixed.cdms_sent.get();
  out.adaptive_total_messages = adaptive.messages_sent.get();
  out.fixed_total_messages = fixed.messages_sent.get();
  return out;
}

}  // namespace adgc::sim
