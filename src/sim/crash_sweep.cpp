#include "src/sim/crash_sweep.h"

#include <filesystem>
#include <sstream>
#include <vector>

#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc::sim {

namespace {

std::filesystem::path sweep_dir(const CrashSweepParams& p) {
  if (!p.snapshot_dir.empty()) return p.snapshot_dir;
  std::ostringstream name;
  name << "adgc_crash_sweep_" << p.seed;
  return std::filesystem::temp_directory_path() / name.str();
}

}  // namespace

CrashSweepResult run_crash_sweep(const CrashSweepParams& p) {
  const std::filesystem::path dir = sweep_dir(p);
  std::filesystem::remove_all(dir);  // stale state from an aborted run

  RuntimeConfig cfg = fast_config(p.seed);
  cfg.proc.snapshot_dir = dir.string();

  CrashSweepResult res;
  {
    Runtime rt(4, cfg);
    const Fig3 fig = build_fig3(rt);

    // Live sentinel ring: rooted L_p holds a remote reference to the
    // unrooted N_{p+1}, whose survival therefore rests entirely on the
    // cross-process stub/scion pair — the state crashes try hardest to lose.
    std::vector<ObjectId> L, N;
    for (ProcessId pid = 0; pid < 4; ++pid) {
      L.push_back(ObjectId{pid, rt.proc(pid).create_object()});
      N.push_back(ObjectId{pid, rt.proc(pid).create_object()});
      rt.proc(pid).add_root(L.back().seq);
    }
    for (ProcessId pid = 0; pid < 4; ++pid) {
      rt.link(L[pid], N[(pid + 1) % 4]);
    }

    // Warm up with the structure intact so every process has it durably
    // snapshotted, then make the Fig. 3 structure garbage.
    rt.run_for(p.warmup_us);
    rt.proc(0).remove_root(fig.A.seq);

    // Crash and restart each process once, mid-run: half a phase in, the
    // detectors are busy probing the now-garbage cycle.
    for (ProcessId victim = 0; victim < 4; ++victim) {
      rt.run_for(p.phase_us / 2);
      rt.crash(victim);
      ++res.crashes;
      rt.run_for(p.down_us);
      if (rt.restart(victim)) ++res.recovered;
      rt.run_for(p.phase_us / 2);
    }

    rt.run_for(p.settle_us);

    // Verdicts. The whole Fig. 3 structure (cycle + its local attachments +
    // the dropped root path) must be gone; every sentinel must survive.
    const std::vector<ObjectId> cycle = {fig.A, fig.B, fig.C, fig.D, fig.F,
                                         fig.G, fig.H, fig.J, fig.O, fig.M,
                                         fig.K, fig.Q, fig.R, fig.S};
    res.cycle_collected = true;
    std::ostringstream detail;
    for (ObjectId id : cycle) {
      if (rt.proc(id.owner).heap().exists(id.seq)) {
        res.cycle_collected = false;
        detail << "uncollected garbage " << to_string(id) << "; ";
      }
    }
    for (ProcessId pid = 0; pid < 4; ++pid) {
      if (!rt.proc(pid).heap().exists(L[pid].seq) ||
          !rt.proc(pid).heap().exists(N[pid].seq)) {
        res.live_lost = true;
        detail << "sentinel lost on P" << pid << "; ";
      }
    }
    res.stale_dropped = rt.net_metrics().messages_stale_incarnation.get();
    res.detail = detail.str();
  }

  std::filesystem::remove_all(dir);
  return res;
}

}  // namespace adgc::sim
