#include "src/sim/scenarios.h"

#include <stdexcept>

namespace adgc::sim {

namespace {
ObjectId make(Runtime& rt, ProcessId pid) {
  return ObjectId{pid, rt.proc(pid).create_object()};
}
}  // namespace

Fig3 build_fig3(Runtime& rt) {
  if (rt.size() < 4) throw std::invalid_argument("fig3 needs 4 processes");
  const ProcessId P1 = 0, P2 = 1, P3 = 2, P4 = 3;
  Fig3 f;
  f.A = make(rt, P1);
  f.B = make(rt, P1);
  f.C = make(rt, P1);
  f.D = make(rt, P1);
  f.F = make(rt, P2);
  f.G = make(rt, P2);
  f.H = make(rt, P2);
  f.J = make(rt, P2);
  f.O = make(rt, P3);
  f.M = make(rt, P3);
  f.K = make(rt, P3);
  f.Q = make(rt, P4);
  f.R = make(rt, P4);
  f.S = make(rt, P4);

  // P1: A → B (the old root path), D → C → B.
  rt.proc(P1).add_local_ref(f.A.seq, f.B.seq);
  rt.proc(P1).add_local_ref(f.D.seq, f.C.seq);
  rt.proc(P1).add_local_ref(f.C.seq, f.B.seq);
  rt.proc(P1).add_root(f.A.seq);

  // P2: F → H, F → G, G → H, H → J (the paper's internal references).
  rt.proc(P2).add_local_ref(f.F.seq, f.H.seq);
  rt.proc(P2).add_local_ref(f.F.seq, f.G.seq);
  rt.proc(P2).add_local_ref(f.G.seq, f.H.seq);
  rt.proc(P2).add_local_ref(f.H.seq, f.J.seq);

  // P4: Q → R → S.
  rt.proc(P4).add_local_ref(f.Q.seq, f.R.seq);
  rt.proc(P4).add_local_ref(f.R.seq, f.S.seq);

  // P3: O → M → K.
  rt.proc(P3).add_local_ref(f.O.seq, f.M.seq);
  rt.proc(P3).add_local_ref(f.M.seq, f.K.seq);

  // Remote ring: B→F, J→Q, S→O, K→D.
  f.B_to_F = rt.link(f.B, f.F);
  f.J_to_Q = rt.link(f.J, f.Q);
  f.S_to_O = rt.link(f.S, f.O);
  f.K_to_D = rt.link(f.K, f.D);
  return f;
}

Ring build_ring(Runtime& rt, std::size_t n_procs, std::size_t objs_per_proc,
                bool pin_first) {
  if (rt.size() < n_procs || n_procs < 2 || objs_per_proc < 1) {
    throw std::invalid_argument("bad ring parameters");
  }
  Ring ring;
  std::vector<ObjectId> tails;
  for (ProcessId pid = 0; pid < n_procs; ++pid) {
    ObjectId head = make(rt, pid);
    ObjectId cur = head;
    for (std::size_t i = 1; i < objs_per_proc; ++i) {
      ObjectId next = make(rt, pid);
      rt.proc(pid).add_local_ref(cur.seq, next.seq);
      cur = next;
    }
    ring.heads.push_back(head);
    tails.push_back(cur);
  }
  for (ProcessId pid = 0; pid < n_procs; ++pid) {
    const ProcessId next = static_cast<ProcessId>((pid + 1) % n_procs);
    ring.ring_refs.push_back(rt.link(tails[pid], ring.heads[next]));
  }
  if (pin_first) {
    ObjectId anchor = make(rt, 0);
    rt.proc(0).add_local_ref(anchor.seq, ring.heads[0].seq);
    rt.proc(0).add_root(anchor.seq);
    ring.anchors.push_back(anchor);
  }
  return ring;
}

Fig4 build_fig4(Runtime& rt) {
  if (rt.size() < 6) throw std::invalid_argument("fig4 needs 6 processes");
  const ProcessId P1 = 0, P2 = 1, P3 = 2, P4 = 3, P5 = 4, P6 = 5;
  Fig4 f;
  f.D = make(rt, P1);
  f.F = make(rt, P2);
  f.K = make(rt, P3);
  f.T = make(rt, P4);
  f.V = make(rt, P5);
  f.Y = make(rt, P5);
  f.ZB = make(rt, P6);
  f.ZD = make(rt, P6);

  // P6: ZB → ZD locally.
  rt.proc(P6).add_local_ref(f.ZB.seq, f.ZD.seq);

  // Remote references. V and Y share ONE reference to T (same proxy).
  f.F_to_V = rt.link(f.F, f.V);
  f.F_to_K = rt.link(f.F, f.K);
  f.VY_to_T = rt.link(f.V, f.T);
  rt.link_existing(f.Y, f.VY_to_T);
  f.T_to_D = rt.link(f.T, f.D);
  f.D_to_F = rt.link(f.D, f.F);
  f.K_to_ZB = rt.link(f.K, f.ZB);
  f.ZD_to_Y = rt.link(f.ZD, f.Y);
  return f;
}

Fig1 build_fig1(Runtime& rt, bool pin_w) {
  if (rt.size() < 4) throw std::invalid_argument("fig1 needs 4 processes");
  const ProcessId P1 = 0, P2 = 1, P3 = 2, P4 = 3;
  Fig1 f;
  f.x = make(rt, P1);
  f.y = make(rt, P2);
  f.z = make(rt, P3);
  f.w = make(rt, P4);
  f.x_to_y = rt.link(f.x, f.y);
  f.y_to_z = rt.link(f.y, f.z);
  f.z_to_x = rt.link(f.z, f.x);
  f.w_to_x = rt.link(f.w, f.x);
  if (pin_w) rt.proc(P4).add_root(f.w.seq);
  return f;
}

Fig5 build_fig5(Runtime& rt) {
  if (rt.size() < 5) throw std::invalid_argument("fig5 needs 5 processes");
  const ProcessId P1 = 0, P2 = 1, P3 = 2, P4 = 3, P5 = 4;
  Fig5 f;
  f.A = make(rt, P1);
  f.B = make(rt, P1);
  f.D = make(rt, P1);
  f.F = make(rt, P2);
  f.J = make(rt, P2);
  f.M = make(rt, P3);
  f.T = make(rt, P4);
  f.V = make(rt, P5);

  // P1: root → A → B, D → B.
  rt.proc(P1).add_local_ref(f.A.seq, f.B.seq);
  rt.proc(P1).add_local_ref(f.D.seq, f.B.seq);
  rt.proc(P1).add_root(f.A.seq);

  // P2: F → J.
  rt.proc(P2).add_local_ref(f.F.seq, f.J.seq);

  // P3: M is a root (it will receive the exported reference to J).
  rt.proc(P3).add_root(f.M.seq);

  // Remote references: the cycle ... → F → J → V → T → D → (B →) F.
  f.B_to_F = rt.link(f.B, f.F);
  f.J_to_V = rt.link(f.J, f.V);
  f.V_to_T = rt.link(f.V, f.T);
  f.T_to_D = rt.link(f.T, f.D);
  // F holds a reference to M so the scripted mutation can export J to P3.
  f.F_to_M = rt.link(f.F, f.M);
  return f;
}

}  // namespace adgc::sim
