#include "src/sim/harness.h"

#include <deque>

namespace adgc::sim {

std::unordered_set<ObjectId> global_live_set(const Runtime& rt) {
  std::unordered_set<ObjectId> live;
  std::deque<ObjectId> frontier;

  // Crashed processes contribute nothing: their roots and heaps are gone.
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (!rt.alive(pid)) continue;
    for (ObjectSeq seq : rt.proc(pid).heap().roots()) {
      ObjectId id{pid, seq};
      if (rt.proc(pid).heap().exists(seq) && live.insert(id).second) {
        frontier.push_back(id);
      }
    }
  }

  while (!frontier.empty()) {
    const ObjectId cur = frontier.front();
    frontier.pop_front();
    const Process& proc = rt.proc(cur.owner);
    const HeapObject* obj = proc.heap().find(cur.seq);
    if (!obj) continue;
    for (ObjectSeq next : obj->local_fields) {
      ObjectId id{cur.owner, next};
      if (proc.heap().exists(next) && live.insert(id).second) frontier.push_back(id);
    }
    for (RefId ref : obj->remote_fields) {
      const StubEntry* stub = proc.stubs().find(ref);
      if (!stub) continue;
      const ObjectId id = stub->target;
      if (id.owner < rt.size() && rt.alive(id.owner) &&
          rt.proc(id.owner).heap().exists(id.seq) && live.insert(id).second) {
        frontier.push_back(id);
      }
    }
  }
  return live;
}

GlobalStats global_stats(const Runtime& rt) {
  GlobalStats st;
  const auto live = global_live_set(rt);
  st.live_objects = live.size();
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    if (!rt.alive(pid)) continue;
    st.total_objects += rt.proc(pid).heap().size();
    st.stubs += rt.proc(pid).stubs().size();
    st.scions += rt.proc(pid).scions().size();
  }
  st.garbage_objects = st.total_objects - st.live_objects;
  return st;
}

RuntimeConfig manual_config(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.net.min_latency_us = 10;
  cfg.net.mean_latency_us = 100;
  // Push every periodic task out of the way; tests drive the collectors.
  const SimTime never = 1'000'000'000'000ULL;  // ~11.5 simulated days
  cfg.proc.lgc_period_us = never;
  cfg.proc.snapshot_period_us = never;
  cfg.proc.dcda_scan_period_us = never;
  cfg.proc.candidate_quarantine_us = 0;
  cfg.proc.scion_pending_grace_us = 10'000;
  // Owner-side orphan expiry assumes holders run their LGC regularly; in
  // manual mode tests suspend the LGC for arbitrary stretches, so the
  // timer-based expiry must be effectively off (grace-based deletion via
  // NewSetStubs still applies).
  cfg.proc.scion_pending_expiry_factor = 1'000'000;
  cfg.proc.detection_timeout_us = never;
  return cfg;
}

RuntimeConfig fast_config(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.net.min_latency_us = 10;
  cfg.net.mean_latency_us = 200;
  cfg.proc.lgc_period_us = 5'000;
  cfg.proc.snapshot_period_us = 12'000;
  cfg.proc.dcda_scan_period_us = 15'000;
  cfg.proc.candidate_quarantine_us = 10'000;
  cfg.proc.scion_pending_grace_us = 60'000;
  cfg.proc.detection_timeout_us = 500'000;
  cfg.proc.add_scion_retry_us = 3'000;
  return cfg;
}

void settle_manual(Runtime& rt, int rounds, SimTime flush_us) {
  for (int r = 0; r < rounds; ++r) {
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).run_lgc();
    }
    rt.run_for(flush_us);
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).take_snapshot();
    }
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      if (rt.alive(pid)) rt.proc(pid).run_dcda_scan();
    }
    rt.run_for(flush_us);
  }
}

}  // namespace adgc::sim
