// Composed chaos harness — the graceful-degradation acceptance sweep.
//
// Six processes carry the paper's Fig. 3 cycle (P1..P4), the Fig. 4 pair of
// mutually-linked cycles (P1..P6, pinned live until the storm begins) and a
// ring of live sentinels (a rooted object per process holding a remote
// reference to an unrooted object on the next process). After the planted
// structures are made garbage, the harness composes every fault the system
// claims to tolerate: probabilistic loss and duplication, reordering (the
// network's independent latency draws), a rotating bidirectional link
// partition, and a crash/restart rotation. When the faults lift, the system
// must have collected every planted cycle and must never have touched a
// sentinel — safety under degradation, completeness after it.
//
// Also provides the adaptive-vs-fixed backoff comparison: the same scenario
// under sustained loss, run once with the adaptive-degradation layer and
// once with fixed-interval retries, counting retry traffic for both.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/config.h"

namespace adgc::sim {

struct ChaosSweepParams {
  std::uint64_t seed = 1;
  /// Fault-storm intensity.
  double loss_probability = 0.10;
  double duplicate_probability = 0.05;
  /// Fault-free run before the roots are dropped (the structures must be
  /// durably snapshotted before the crash rotation may begin).
  SimTime warmup_us = 400'000;
  /// One storm slice: a bidirectional link partition rotates every slice and
  /// (when enabled) one process is crashed and restarted per slice. Six
  /// slices — every link blocked once, every process crashed once.
  SimTime slice_us = 400'000;
  std::size_t slices = 6;
  /// Crash/restart rotation during the storm.
  bool with_crashes = true;
  SimTime down_us = 50'000;
  /// Control-plane batching (per-peer coalescing of CDMs / NewSetStubs /
  /// AddScion acks). Both wire shapes must pass the same oracles; the
  /// differential leg in test_chaos_sweep runs one seed each way.
  bool batching = true;
  /// Asynchronous snapshot pipeline (periodic snapshots publish their
  /// summary after `snapshot_pipeline_latency_us`, detector reads the stale
  /// one meanwhile). Both modes must pass the same oracles; the differential
  /// leg in test_chaos_sweep runs one seed each way.
  bool snapshot_pipeline = true;
  /// Fault-free settle after the storm; must exceed the largest detection
  /// backoff (`detection_backoff_cap_us`) so deferred candidates re-launch.
  SimTime settle_us = 12'000'000;
  /// Permanent-failure eviction window (ProcessConfig::peer_death_timeout_us;
  /// 0 keeps eviction off). When enabled it must exceed every transient
  /// silence the storm produces — partitions, crash downtime — or a live
  /// peer gets falsely evicted and its sentinel scion dropped (live_lost).
  SimTime peer_death_timeout_us = 0;
  /// Snapshot-store directory; empty = unique directory under system temp.
  std::string snapshot_dir;
};

struct ChaosSweepResult {
  bool cycles_collected = false;  // every Fig. 3 AND Fig. 4 object reclaimed
  bool live_lost = false;         // some sentinel object was collected
  std::size_t crashes = 0;
  std::size_t recovered = 0;      // restarts that found a usable snapshot
  // Degradation-layer observability (end-of-storm totals).
  std::uint64_t messages_lost = 0;
  std::uint64_t suspect_transitions = 0;
  std::uint64_t cdms_shed = 0;
  std::uint64_t new_set_stubs_shed = 0;
  std::uint64_t detections_deferred = 0;
  std::uint64_t add_scion_abandoned = 0;
  std::string detail;             // human-readable diagnosis on failure

  bool ok() const { return cycles_collected && !live_lost; }
};

/// Runs one composed-fault sweep; deterministic in `params.seed`.
ChaosSweepResult run_chaos_sweep(const ChaosSweepParams& params);

/// Adaptive-vs-fixed retry traffic under sustained loss. Both runs share the
/// seed, scenario and duration; only `adaptive_faults` differs.
struct BackoffComparison {
  /// Retry/probe traffic: AddScion re-sends + CDMs launched and forwarded.
  std::uint64_t adaptive_retry_messages = 0;
  std::uint64_t fixed_retry_messages = 0;
  /// All messages put on the wire.
  std::uint64_t adaptive_total_messages = 0;
  std::uint64_t fixed_total_messages = 0;

  bool adaptive_reduced() const {
    return adaptive_retry_messages < fixed_retry_messages;
  }
};

BackoffComparison run_backoff_comparison(std::uint64_t seed, double loss = 0.30,
                                         SimTime run_us = 6'000'000);

}  // namespace adgc::sim
