// Scripted crash/restart sweep — the fault-tolerance acceptance harness.
//
// Four processes carry the paper's Fig. 3 distributed garbage cycle plus a
// ring of live sentinels (a rooted object per process holding a remote
// reference to an unrooted object on the next process, so every sentinel's
// survival depends on cross-process DGC state). After the cycle is made
// garbage, every process is crashed and restarted once, mid-detection; the
// system must still collect the whole cycle and must never collect a
// sentinel. Swept over seeds by tests and the adgc_sim tool.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/config.h"

namespace adgc::sim {

struct CrashSweepParams {
  std::uint64_t seed = 1;
  /// Directory for the persistent snapshot stores (one subtree per run;
  /// removed afterwards). Empty = a unique directory under the system temp.
  std::string snapshot_dir;
  /// Mutation-free run before the root drop: enough snapshot periods that
  /// every process has the full structure durably on disk.
  SimTime warmup_us = 400'000;
  /// Run time on each side of a crash (≫ snapshot period, so the root drop
  /// and subsequent DGC progress are persisted before the next crash).
  SimTime phase_us = 800'000;
  /// How long a crashed process stays down before restarting.
  SimTime down_us = 50'000;
  /// Final settle time after the last restart.
  SimTime settle_us = 10'000'000;
};

struct CrashSweepResult {
  bool cycle_collected = false;  // every Fig. 3 object reclaimed
  bool live_lost = false;        // some sentinel object was collected
  std::size_t crashes = 0;
  std::size_t recovered = 0;     // restarts that found a usable snapshot
  std::uint64_t stale_dropped = 0;  // messages dropped by incarnation checks
  std::string detail;            // human-readable diagnosis on failure

  bool ok() const { return cycle_collected && !live_lost; }
};

/// Runs one sweep; deterministic in `params.seed`.
CrashSweepResult run_crash_sweep(const CrashSweepParams& params);

}  // namespace adgc::sim
