#include "src/sim/eviction_sweep.h"

#include <sstream>
#include <vector>

#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc::sim {

EvictionSweepResult run_eviction_sweep(const EvictionSweepParams& p) {
  RuntimeConfig cfg = fast_config(p.seed);
  cfg.proc.peer_death_timeout_us = p.peer_death_timeout_us;

  Runtime rt(p.procs, cfg);
  const std::size_t n = p.procs;
  const ProcessId victim = p.victim;

  // The garbage-to-be: one ring segment per process, anchored at P0.
  const Ring ring = build_ring(rt, n, /*objs_per_proc=*/1, /*pin_first=*/true);

  // Live sentinel ring: rooted L_p → unrooted N_{p+1}. The refs double as
  // the invocation workload's path, so every process builds request/reply
  // history with its successor — the history phi-accrual suspicion needs.
  std::vector<ObjectId> L, N;
  std::vector<RefId> sentinel_refs;
  for (ProcessId pid = 0; pid < n; ++pid) {
    L.push_back(ObjectId{pid, rt.proc(pid).create_object()});
    N.push_back(ObjectId{pid, rt.proc(pid).create_object()});
    rt.proc(pid).add_root(L.back().seq);
  }
  for (ProcessId pid = 0; pid < n; ++pid) {
    sentinel_refs.push_back(
        rt.link(L[pid], N[(pid + 1) % n]));
  }

  // One round of sentinel invocations from every live process whose ref
  // still exists (eviction retires the stub toward the victim; invoking a
  // gone ref would throw).
  const auto invoke_round = [&] {
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (!rt.alive(pid)) continue;
      if (!rt.proc(pid).stubs().contains(sentinel_refs[pid])) continue;
      rt.proc(pid).invoke(L[pid].seq, sentinel_refs[pid], InvokeEffect::kTouch,
                          {}, /*want_reply=*/true);
    }
  };

  // Fault-free build-out with workload.
  for (SimTime t = 0; t < p.warmup_us; t += p.invoke_period_us) {
    invoke_round();
    rt.run_for(p.invoke_period_us);
  }

  // The ring becomes garbage; shortly after, the victim dies forever.
  rt.proc(0).remove_root(ring.anchors[0].seq);
  rt.run_for(100'000);
  rt.crash(victim);

  for (SimTime t = 0; t < p.run_us; t += p.invoke_period_us) {
    invoke_round();
    rt.run_for(p.invoke_period_us);
  }

  // Verdicts.
  EvictionSweepResult res;
  std::ostringstream detail;

  res.stranded_reclaimed = true;
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (!rt.alive(pid)) continue;
    for (const auto& [ref, stub] : rt.proc(pid).stubs()) {
      if (stub.target.owner == victim) {
        res.stranded_reclaimed = false;
        detail << "P" << pid << " still holds stub " << ref_to_string(ref)
               << " toward dead P" << victim << "; ";
      }
    }
    for (const auto& [ref, scion] : rt.proc(pid).scions()) {
      if (scion.holder == victim) {
        res.stranded_reclaimed = false;
        detail << "P" << pid << " still holds scion " << ref_to_string(ref)
               << " from dead P" << victim << "; ";
      }
    }
    if (ring.heads[pid].owner == pid &&
        rt.proc(pid).heap().exists(ring.heads[pid].seq)) {
      res.stranded_reclaimed = false;
      detail << "ring object " << to_string(ring.heads[pid]) << " uncollected; ";
    }
  }

  res.sentinels_intact = true;
  const ProcessId orphaned = static_cast<ProcessId>((victim + 1) % n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (!rt.alive(pid)) continue;
    if (!rt.proc(pid).heap().exists(L[pid].seq)) {
      res.sentinels_intact = false;
      detail << "rooted sentinel lost on P" << pid << "; ";
    }
    // N_{victim+1}'s only keeper was the victim: it must be reclaimed, not
    // preserved. Everywhere else the keeper is alive and rooted.
    const bool n_alive = rt.proc(pid).heap().exists(N[pid].seq);
    if (pid == orphaned ? n_alive : !n_alive) {
      res.sentinels_intact = false;
      detail << "sentinel N on P" << pid << (n_alive ? " kept alive" : " lost")
             << " wrongly; ";
    }
  }

  const Metrics total = rt.total_metrics();
  res.peers_evicted = total.peers_evicted.get();
  res.eviction_stubs_retired = total.eviction_stubs_retired.get();
  res.eviction_scions_dropped = total.eviction_scions_dropped.get();
  if (res.peers_evicted == 0) detail << "no eviction fired; ";
  res.detail = detail.str();
  return res;
}

}  // namespace adgc::sim
