#include "src/sim/cluster_harness.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/admin_http.h"
#include "src/obs/prom.h"

namespace adgc::sim {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Picks a free localhost TCP port by binding port 0 and reading back what
/// the kernel assigned. The port is released again before the node binds
/// it — a classic TOCTOU, but on a quiet localhost the reuse window is
/// negligible and the node fails loudly (bind error, nonzero exit) if lost.
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

/// Latest parsed state of one node, built from its status lines.
struct NodeView {
  std::uint64_t t_ms = 0;
  bool recovered = false;
  std::size_t chain_live = SIZE_MAX;  // unknown until first status line
  bool sentinel_live = true;
  std::uint64_t snaps = 0;
  std::size_t stubs = SIZE_MAX;   // unknown until first status line
  std::size_t scions = SIZE_MAX;  // unknown until first status line
  std::uint64_t evictions = 0;    // peers this node evicted
  bool planted = false;
  bool root_dropped = false;
  bool saw_status = false;
  bool evicted_exit = false;  // node printed NODE-EVICTED (NACKed off)
};

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string line_buf;
  std::vector<std::string> argv;  // kept for the restart leg
  NodeView view;
  bool exited = false;
  int exit_status = 0;
};

std::map<std::string, std::string> parse_kv(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos) kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

std::uint64_t kv_u64(const std::map<std::string, std::string>& kv, const char* key) {
  auto it = kv.find(key);
  return it == kv.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

void apply_line(Child& c, const std::string& line, bool verbose) {
  if (verbose) std::fprintf(stderr, "[cluster] %s\n", line.c_str());
  const auto kv = parse_kv(line);
  if (line.rfind("NODE ", 0) == 0 || line.rfind("NODE-EXIT ", 0) == 0) {
    c.view.saw_status = true;
    c.view.t_ms = kv_u64(kv, "t_ms");
    c.view.recovered = kv_u64(kv, "recovered") != 0;
    c.view.chain_live = static_cast<std::size_t>(kv_u64(kv, "chain_live"));
    c.view.sentinel_live = kv_u64(kv, "sentinel_live") != 0;
    c.view.snaps = kv_u64(kv, "snaps");
    c.view.stubs = static_cast<std::size_t>(kv_u64(kv, "stubs"));
    c.view.scions = static_cast<std::size_t>(kv_u64(kv, "scions"));
    c.view.evictions = kv_u64(kv, "evictions");
  } else if (line.rfind("NODE-PLANTED", 0) == 0) {
    c.view.planted = true;
  } else if (line.rfind("NODE-ROOT-DROPPED", 0) == 0) {
    c.view.root_dropped = true;
  } else if (line.rfind("NODE-EVICTED", 0) == 0) {
    c.view.evicted_exit = true;
  }
}

/// Spawns one node; stdout goes to a pipe (returned in child.out_fd),
/// stderr is inherited from the harness.
bool spawn(Child& c, std::string* err) {
  int fds[2];
  if (::pipe(fds) != 0) {
    *err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    *err = std::string("fork: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(c.argv.size() + 1);
    for (auto& a : c.argv) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    std::_Exit(127);
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  c.pid = pid;
  c.out_fd = fds[0];
  c.exited = false;
  c.exit_status = 0;
  c.line_buf.clear();
  return true;
}

/// Drains any complete lines from every live child's pipe (non-blocking).
void pump_output(std::vector<Child>& children, bool verbose) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i].out_fd >= 0) {
      pfds.push_back(pollfd{children[i].out_fd, POLLIN, 0});
      idx.push_back(i);
    }
  }
  if (pfds.empty()) return;
  if (::poll(pfds.data(), pfds.size(), 50) <= 0) return;
  char buf[4096];
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    if (!(pfds[k].revents & (POLLIN | POLLHUP))) continue;
    Child& c = children[idx[k]];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.line_buf.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = c.line_buf.find('\n')) != std::string::npos) {
          apply_line(c, c.line_buf.substr(0, nl), verbose);
          c.line_buf.erase(0, nl + 1);
        }
        continue;
      }
      if (n == 0) {  // EOF: child closed stdout (exited or exiting)
        ::close(c.out_fd);
        c.out_fd = -1;
      }
      break;  // n == 0, or n < 0 with EAGAIN/any error
    }
  }
}

void reap(std::vector<Child>& children) {
  for (auto& c : children) {
    if (c.pid < 0 || c.exited) continue;
    int status = 0;
    const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
      c.exited = true;
      c.exit_status = status;
    }
  }
}

void kill_all(std::vector<Child>& children, int sig) {
  for (auto& c : children) {
    if (c.pid >= 0 && !c.exited) ::kill(c.pid, sig);
  }
}

/// Blocks (bounded) until every child exited; SIGKILLs stragglers.
void wait_all(std::vector<Child>& children, std::uint64_t budget_ms) {
  const std::uint64_t deadline = now_ms() + budget_ms;
  for (;;) {
    pump_output(children, false);
    reap(children);
    bool all = true;
    for (auto& c : children) {
      if (c.pid >= 0 && !c.exited) all = false;
    }
    if (all) break;
    if (now_ms() >= deadline) {
      kill_all(children, SIGKILL);
      for (auto& c : children) {
        if (c.pid >= 0 && !c.exited) {
          int status = 0;
          ::waitpid(c.pid, &status, 0);
          c.exited = true;
          c.exit_status = status;
        }
      }
      break;
    }
  }
  for (auto& c : children) {
    if (c.out_fd >= 0) {
      ::close(c.out_fd);
      c.out_fd = -1;
    }
  }
}

/// Scrapes one live node's admin endpoint and validates it end-to-end:
/// /healthz answers, /metrics parses as Prometheus exposition text, the
/// counters a participating node cannot avoid bumping are non-zero, and at
/// least 5 of the latency/size histograms are exported. Returns "" on
/// success, a failure description otherwise.
std::string scrape_admin(std::size_t node, std::uint16_t port) {
  const auto tag = [&](const std::string& why) {
    return "admin scrape of node " + std::to_string(node) + " (port " +
           std::to_string(port) + "): " + why;
  };
  if (!obs::http_get("127.0.0.1", port, "/healthz")) {
    return tag("/healthz did not answer 200");
  }
  const auto body = obs::http_get("127.0.0.1", port, "/metrics");
  if (!body) return tag("/metrics did not answer 200");
  std::map<std::string, double> samples;
  std::string perr;
  if (!obs::parse_prometheus(*body, &samples, &perr)) {
    return tag("exposition does not parse: " + perr);
  }
  for (const char* key : {"adgc_messages_sent_total", "adgc_snapshots_taken_total",
                          "adgc_tcp_frames_sent_total"}) {
    const auto it = samples.find(key);
    if (it == samples.end()) return tag(std::string(key) + " missing");
    if (it->second <= 0) return tag(std::string(key) + " is zero");
  }
  int histograms = 0;
  for (const char* key :
       {"adgc_rmi_rtt_us_count", "adgc_lgc_pause_us_count",
        "adgc_snapshot_capture_us_count", "adgc_detection_lifetime_us_count",
        "adgc_batch_flush_msgs_count", "adgc_tcp_writeq_depth_count"}) {
    if (samples.contains(key)) ++histograms;
  }
  if (histograms < 5) {
    return tag("only " + std::to_string(histograms) + " histograms exported");
  }
  return "";
}

std::string describe(const std::vector<Child>& children) {
  std::ostringstream out;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const NodeView& v = children[i].view;
    out << " node" << i << "{t_ms=" << v.t_ms << " chain_live="
        << (v.chain_live == SIZE_MAX ? -1 : static_cast<long>(v.chain_live))
        << " sentinel=" << v.sentinel_live << " snaps=" << v.snaps
        << " stubs=" << (v.stubs == SIZE_MAX ? -1 : static_cast<long>(v.stubs))
        << " scions=" << (v.scions == SIZE_MAX ? -1 : static_cast<long>(v.scions))
        << " evictions=" << v.evictions << " recovered=" << v.recovered
        << " exited=" << children[i].exited << "}";
  }
  return out.str();
}

}  // namespace

ClusterResult run_cluster(const ClusterHarnessOptions& opts) {
  ClusterResult res;
  if (opts.node_bin.empty() || opts.state_dir.empty()) {
    res.failure = "node_bin and state_dir are required";
    return res;
  }
  if (opts.nodes < 2) {
    res.failure = "need at least 2 nodes";
    return res;
  }
  const bool zombie = opts.zombie;
  const bool kill_forever = !zombie && opts.kill_forever;
  const bool kill_restart = !zombie && !kill_forever && opts.kill_restart;
  if ((zombie || kill_forever) && opts.peer_death_timeout_ms == 0) {
    res.failure = "kill_forever/zombie require peer_death_timeout_ms > 0";
    return res;
  }
  std::filesystem::create_directories(opts.state_dir);
  if (!opts.obs_dump_dir.empty()) {
    std::filesystem::create_directories(opts.obs_dump_dir);
  }

  // Pre-pick one listen port per node so every node can be handed the full
  // peer address map up front.
  std::vector<std::uint16_t> ports(opts.nodes);
  for (auto& p : ports) {
    p = pick_free_port();
    if (p == 0) {
      res.failure = "could not allocate a localhost port";
      return res;
    }
  }
  std::ostringstream peers;
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    if (i) peers << ",";
    peers << i << "=127.0.0.1:" << ports[i];
  }

  std::vector<Child> children(opts.nodes);
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    Child& c = children[i];
    c.argv = {
        opts.node_bin,
        "--id=" + std::to_string(i),
        "--listen=127.0.0.1:" + std::to_string(ports[i]),
        "--peers=" + peers.str(),
        "--state-dir=" + opts.state_dir + "/node" + std::to_string(i),
        "--seed=" + std::to_string(opts.seed + i),
        "--plant-ring=" + std::to_string(opts.nodes) + ":" +
            std::to_string(opts.objs_per_node),
        "--drop-root-after-ms=" + std::to_string(opts.drop_root_after_ms),
        "--status-every-ms=100",
    };
    if (opts.peer_death_timeout_ms > 0) {
      c.argv.push_back("--peer-death-timeout-ms=" +
                       std::to_string(opts.peer_death_timeout_ms));
    }
    if (opts.admin_base_port > 0) {
      c.argv.push_back("--admin-port=" +
                       std::to_string(opts.admin_base_port + i));
    }
    if (!opts.obs_dump_dir.empty()) {
      c.argv.push_back("--trace-file=" + opts.obs_dump_dir + "/node" +
                       std::to_string(i) + ".trace");
    }
    if (opts.verbose) c.argv.push_back("--verbose");
    if (!spawn(c, &res.failure)) {
      kill_all(children, SIGKILL);
      wait_all(children, 5'000);
      return res;
    }
  }

  const bool has_victim = kill_restart || kill_forever || zombie;
  const std::size_t victim = has_victim ? 1 : SIZE_MAX;
  enum class Phase {
    kWaitKillPoint,
    kWaitSurvivorsClean,  // zombie: victim stopped; survivors must evict+drain
    kWaitZombieExit,      // zombie: victim resumed; must be NACKed off (exit 3)
    kWaitRestart,
    kWaitCollected,
  } phase = has_victim ? Phase::kWaitKillPoint : Phase::kWaitCollected;
  bool victim_gone_forever = false;  // kill_forever: dead by our hand, stays dead
  const std::uint64_t start = now_ms();
  const std::uint64_t deadline = start + opts.timeout_ms;
  std::string fail;

  // A node's stranded-state drain verdict: planted cycle slice reclaimed,
  // sentinel intact, and (eviction legs) zero stubs and scions left.
  const auto node_clean = [&](std::size_t i) {
    const NodeView& v = children[i].view;
    if (!v.saw_status || v.chain_live != 0 || !v.sentinel_live) return false;
    if (kill_forever || zombie) {
      if (v.stubs != 0 || v.scions != 0) return false;
    }
    return true;
  };
  const auto any_eviction = [&] {
    for (std::size_t i = 0; i < opts.nodes; ++i) {
      if (i != victim && children[i].view.evictions >= 1) return true;
    }
    return false;
  };

  while (now_ms() < deadline) {
    pump_output(children, opts.verbose);
    reap(children);

    // Safety tripwire: the rooted sentinel must never die, on any node.
    for (std::size_t i = 0; i < opts.nodes; ++i) {
      if (children[i].view.saw_status && !children[i].view.sentinel_live) {
        fail = "sentinel reclaimed on node " + std::to_string(i) +
               " (over-collection):" + describe(children);
        break;
      }
    }
    if (!fail.empty()) break;

    // A node exiting before it was asked to is a failure (bind error, bad
    // flag, crash) — except the victim where its death is the experiment:
    // right after our own SIGKILL, permanently in the kill-forever leg, and
    // the expected NACK-driven exit of the resumed zombie.
    for (std::size_t i = 0; i < opts.nodes; ++i) {
      const bool victim_exit_expected =
          i == victim && (phase == Phase::kWaitRestart || victim_gone_forever ||
                          phase == Phase::kWaitZombieExit);
      if (children[i].exited && !victim_exit_expected) {
        fail = "node " + std::to_string(i) + " exited prematurely (status " +
               std::to_string(children[i].exit_status) + "):" + describe(children);
        break;
      }
    }
    if (!fail.empty()) break;

    if (phase == Phase::kWaitKillPoint) {
      // Strike once the cycle is garbage (root dropped) and the victim has a
      // snapshot covering its planted slice — the most adversarial moment:
      // detection is in flight, and recovery must resurrect enough state
      // for it to finish.
      if (children[0].view.root_dropped && children[victim].view.snaps >= 1) {
        if (zombie) {
          // Freeze, don't kill: the process keeps every socket and its
          // in-memory state, and will resume believing it is still a
          // cluster member — the perfect zombie.
          ::kill(children[victim].pid, SIGSTOP);
          phase = Phase::kWaitSurvivorsClean;
          continue;
        }
        ::kill(children[victim].pid, SIGKILL);
        int status = 0;
        ::waitpid(children[victim].pid, &status, 0);
        children[victim].exited = true;
        if (children[victim].out_fd >= 0) {
          ::close(children[victim].out_fd);
          children[victim].out_fd = -1;
        }
        if (kill_forever) {
          victim_gone_forever = true;
          phase = Phase::kWaitCollected;
          continue;
        }
        children[victim].view = NodeView{};  // fresh view for the new life
        if (!spawn(children[victim], &fail)) break;
        phase = Phase::kWaitRestart;
      }
    } else if (phase == Phase::kWaitSurvivorsClean) {
      bool clean = any_eviction();
      for (std::size_t i = 0; clean && i < opts.nodes; ++i) {
        if (i != victim && !node_clean(i)) clean = false;
      }
      if (clean) {
        res.victim_evicted = true;
        ::kill(children[victim].pid, SIGCONT);
        phase = Phase::kWaitZombieExit;
      }
    } else if (phase == Phase::kWaitZombieExit) {
      if (children[victim].exited) {
        const int st = children[victim].exit_status;
        if (!WIFEXITED(st) || WEXITSTATUS(st) != 3 ||
            !children[victim].view.evicted_exit) {
          fail = "resumed zombie did not exit on the Evicted NACK (status " +
                 std::to_string(st) + "):" + describe(children);
          break;
        }
        res.zombie_nacked = true;
        if (children[victim].out_fd >= 0) {
          ::close(children[victim].out_fd);
          children[victim].out_fd = -1;
        }
        children[victim].view = NodeView{};  // fresh view for the new life
        if (!spawn(children[victim], &fail)) break;
        phase = Phase::kWaitRestart;
      }
    } else if (phase == Phase::kWaitRestart) {
      if (children[victim].view.saw_status) {
        if (!children[victim].view.recovered) {
          fail = "restarted node did not recover from its snapshot:" +
                 describe(children);
          break;
        }
        res.victim_recovered = true;
        phase = Phase::kWaitCollected;
      }
    } else {  // kWaitCollected
      bool done = true;
      for (std::size_t i = 0; i < opts.nodes; ++i) {
        if (i == victim && victim_gone_forever) continue;  // dead, by design
        if (!node_clean(i)) done = false;
      }
      if (done && kill_forever && !any_eviction()) done = false;
      if (done) {
        if (kill_forever || zombie) res.victim_evicted = true;
        // Scrape leg: with the cluster converged but still alive, every
        // surviving node's admin endpoint must serve a valid exposition.
        if (opts.admin_base_port > 0) {
          for (std::size_t i = 0; i < opts.nodes; ++i) {
            if (i == victim && victim_gone_forever) continue;
            const std::string why = scrape_admin(
                i, static_cast<std::uint16_t>(opts.admin_base_port + i));
            if (!why.empty()) {
              fail = why;
              break;
            }
          }
          if (!fail.empty()) break;
          res.metrics_scraped = true;
        }
        // Clean shutdown: SIGTERM everyone alive, expect exit code 0.
        kill_all(children, SIGTERM);
        wait_all(children, 10'000);
        for (std::size_t i = 0; i < opts.nodes; ++i) {
          if (i == victim && victim_gone_forever) continue;  // died by SIGKILL
          const int st = children[i].exit_status;
          if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) {
            fail = "node " + std::to_string(i) + " did not drain cleanly (status " +
                   std::to_string(st) + ")";
          }
          if (!children[i].view.sentinel_live) {
            fail = "sentinel dead in final report of node " + std::to_string(i);
          }
        }
        // Trace-dump leg: every node that drained cleanly must have written
        // a non-empty binary trace (adgc_node --trace-file on the SIGTERM
        // path).
        if (fail.empty() && !opts.obs_dump_dir.empty()) {
          for (std::size_t i = 0; i < opts.nodes; ++i) {
            if (i == victim && victim_gone_forever) continue;
            const std::filesystem::path p =
                std::filesystem::path(opts.obs_dump_dir) /
                ("node" + std::to_string(i) + ".trace");
            std::error_code ec;
            if (std::filesystem::file_size(p, ec) == 0 || ec) {
              fail = "node " + std::to_string(i) +
                     " left no trace dump at " + p.string();
              break;
            }
          }
        }
        res.ok = fail.empty();
        res.failure = fail;
        res.elapsed_ms = now_ms() - start;
        return res;
      }
    }
  }

  if (fail.empty()) fail = "timeout waiting for cycle reclamation:" + describe(children);
  kill_all(children, SIGKILL);
  wait_all(children, 5'000);
  res.failure = fail;
  res.elapsed_ms = now_ms() - start;
  return res;
}

}  // namespace adgc::sim
