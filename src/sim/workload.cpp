#include "src/sim/workload.h"

#include <algorithm>
#include <deque>

namespace adgc::sim {

// ------------------------------------------------------------- ShadowGraph

void ShadowGraph::add_object(ObjectId id) { out_.try_emplace(id); }

void ShadowGraph::remove_object(ObjectId id) {
  out_.erase(id);
  roots_.erase(id);
}

void ShadowGraph::set_edges(ObjectId id, std::vector<ObjectId> outs) {
  out_[id] = std::move(outs);
}

void ShadowGraph::add_root(ObjectId id) { roots_.insert(id); }
void ShadowGraph::remove_root(ObjectId id) { roots_.erase(id); }

void ShadowGraph::add_edge(ObjectId from, ObjectId to) { out_[from].push_back(to); }

void ShadowGraph::remove_edge(ObjectId from, ObjectId to) {
  auto it = out_.find(from);
  if (it == out_.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), to);
  if (pos != it->second.end()) it->second.erase(pos);
}

std::unordered_set<ObjectId> ShadowGraph::live() const {
  std::unordered_set<ObjectId> live;
  std::deque<ObjectId> frontier;
  for (ObjectId r : roots_) {
    if (out_.contains(r) && live.insert(r).second) frontier.push_back(r);
  }
  while (!frontier.empty()) {
    const ObjectId cur = frontier.front();
    frontier.pop_front();
    auto it = out_.find(cur);
    if (it == out_.end()) continue;
    for (ObjectId next : it->second) {
      if (out_.contains(next) && live.insert(next).second) frontier.push_back(next);
    }
  }
  return live;
}

// ----------------------------------------------------------- RandomWorkload

RandomWorkload::RandomWorkload(Runtime& rt, WorkloadParams params, std::uint64_t seed)
    : rt_(rt), params_(params), rng_(seed), objects_(rt.size()) {
  for (ProcessId pid = 0; pid < rt_.size(); ++pid) {
    for (std::size_t i = 0; i < params_.initial_objects_per_proc; ++i) {
      const ObjectSeq seq = rt_.proc(pid).create_object();
      objects_[pid].push_back(seq);
      const ObjectId id{pid, seq};
      shadow_.add_object(id);
      // Root half of the initial population so there is something to reach.
      if (i % 2 == 0) {
        rt_.proc(pid).add_root(seq);
        shadow_.add_root(id);
        rooted_.insert(id);
      }
    }
  }
}

ObjectId RandomWorkload::random_object(ProcessId pid) {
  const auto& v = objects_[pid];
  return ObjectId{pid, v[rng_.below(v.size())]};
}

ObjectId RandomWorkload::random_object_any() {
  const auto pid = static_cast<ProcessId>(rng_.below(rt_.size()));
  return random_object(pid);
}

void RandomWorkload::step() {
  const double roll = rng_.uniform();
  double acc = params_.p_create;
  if (roll < acc) return op_create();
  acc += params_.p_add_local_edge;
  if (roll < acc) return op_add_local_edge();
  acc += params_.p_add_remote_edge;
  if (roll < acc) return op_add_remote_edge();
  acc += params_.p_remove_edge;
  if (roll < acc) return op_remove_edge();
  acc += params_.p_toggle_root;
  if (roll < acc) return op_toggle_root();
  return op_invoke();
}

void RandomWorkload::steps(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

void RandomWorkload::op_create() {
  if (shadow_.num_objects() >= params_.max_objects) return;
  const auto pid = static_cast<ProcessId>(rng_.below(rt_.size()));
  const ObjectSeq seq = rt_.proc(pid).create_object();
  objects_[pid].push_back(seq);
  const ObjectId id{pid, seq};
  shadow_.add_object(id);
  // New objects start rooted (a real allocator returns them to a live
  // variable); a later toggle_root may release them.
  rt_.proc(pid).add_root(seq);
  shadow_.add_root(id);
  rooted_.insert(id);
}

void RandomWorkload::op_add_local_edge() {
  const auto live = shadow_.live();
  if (live.empty()) return;
  // Source must be live (the mutator can only write into reachable objects);
  // target may be any object that still exists.
  std::vector<ObjectId> live_vec(live.begin(), live.end());
  const ObjectId from = live_vec[rng_.below(live_vec.size())];
  ObjectId to = random_object(from.owner);
  if (!rt_.proc(from.owner).heap().exists(to.seq)) return;  // already collected
  rt_.proc(from.owner).add_local_ref(from.seq, to.seq);
  shadow_.add_edge(from, to);
  edges_.push_back({from, to, kNoRef});
}

void RandomWorkload::op_add_remote_edge() {
  if (params_.use_rmi_edges && rng_.chance(0.5)) {
    op_rmi_store_edge();
    return;
  }
  const auto live = shadow_.live();
  if (live.empty()) return;
  std::vector<ObjectId> live_vec(live.begin(), live.end());
  const ObjectId from = live_vec[rng_.below(live_vec.size())];
  // Prefer a live target: only live targets can legitimately be exported
  // (someone must have been able to name them).
  const ObjectId to = live_vec[rng_.below(live_vec.size())];
  if (to.owner == from.owner) {
    rt_.proc(from.owner).add_local_ref(from.seq, to.seq);
    shadow_.add_edge(from, to);
    edges_.push_back({from, to, kNoRef});
    return;
  }
  const RefId ref = rt_.link(from, to);
  shadow_.add_edge(from, to);
  edges_.push_back({from, to, ref});
}

void RandomWorkload::op_remove_edge() {
  if (edges_.empty()) return;
  // Pick a random edge whose source is still live (the mutator must be able
  // to reach the field it clears).
  const auto live = shadow_.live();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t i = rng_.below(edges_.size());
    const Edge e = edges_[i];
    if (!live.contains(e.from)) continue;
    if (e.ref == kNoRef) {
      rt_.proc(e.from.owner).remove_local_ref(e.from.seq, e.to.seq);
    } else {
      rt_.proc(e.from.owner).remove_remote_ref(e.from.seq, e.ref);
    }
    shadow_.remove_edge(e.from, e.to);
    edges_[i] = edges_.back();
    edges_.pop_back();
    return;
  }
}

void RandomWorkload::op_toggle_root() {
  if (!rooted_.empty() && rng_.chance(0.6)) {
    // Drop a root.
    std::vector<ObjectId> v(rooted_.begin(), rooted_.end());
    const ObjectId id = v[rng_.below(v.size())];
    rt_.proc(id.owner).remove_root(id.seq);
    shadow_.remove_root(id);
    rooted_.erase(id);
    return;
  }
  const auto live = shadow_.live();
  if (live.empty()) return;
  std::vector<ObjectId> v(live.begin(), live.end());
  const ObjectId id = v[rng_.below(v.size())];
  rt_.proc(id.owner).add_root(id.seq);
  shadow_.add_root(id);
  rooted_.insert(id);
}

void RandomWorkload::op_invoke() {
  if (edges_.empty()) return;
  const auto live = shadow_.live();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t i = rng_.below(edges_.size());
    const Edge& e = edges_[i];
    if (e.ref == kNoRef || !live.contains(e.from)) continue;
    rt_.proc(e.from.owner).invoke(e.from.seq, e.ref, InvokeEffect::kTouch);
    return;
  }
}

void RandomWorkload::op_rmi_store_edge() {
  // Pick a remote edge e (the invocation channel) whose source is live, and
  // an own object x of the invoking process to export into e.to's fields.
  const auto live = shadow_.live();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t i = rng_.below(edges_.size() + 1);
    if (i == edges_.size()) break;  // occasional no-op keeps distribution soft
    const Edge e = edges_[i];
    if (e.ref == kNoRef || !live.contains(e.from)) continue;

    // Choose a live object owned by the invoking process.
    const ProcessId owner = e.from.owner;
    ObjectId arg{kNoProcess, kNoObject};
    for (int k = 0; k < 8; ++k) {
      const ObjectId cand = random_object(owner);
      if (live.contains(cand)) {
        arg = cand;
        break;
      }
    }
    if (arg.seq == kNoObject) return;

    rt_.proc(owner).invoke(e.from.seq, e.ref, InvokeEffect::kStoreArgs,
                           {ArgRef::own(arg.seq)});
    // Flush so the install is visible and the shadow stays exact.
    rt_.run_for(params_.rmi_flush_us);

    // Locate the installed reference at the receiver to make it removable.
    const Process& recv = rt_.proc(e.to.owner);
    const HeapObject* obj = recv.heap().find(e.to.seq);
    RefId installed = kNoRef;
    if (obj) {
      for (RefId ref : obj->remote_fields) {
        const StubEntry* stub = recv.stubs().find(ref);
        if (!stub || stub->target != arg) continue;
        // Every export mints a fresh RefId; skip refs already tracked so a
        // repeated (e.to → arg) edge maps to its own reference.
        const bool tracked = std::any_of(edges_.begin(), edges_.end(), [&](const Edge& t) {
          return t.ref == ref && t.from == e.to;
        });
        if (!tracked) installed = ref;
      }
    }
    if (installed == kNoRef) return;  // invocation raced away; no edge, no shadow
    shadow_.add_edge(e.to, arg);
    edges_.push_back({e.to, arg, installed});
    return;
  }
}

void RandomWorkload::sync_after_restart(ProcessId pid) {
  const Process& proc = rt_.proc(pid);
  const Heap& heap = proc.heap();

  // Objects the rollback lost vanish from the shadow; dangling shadow edges
  // toward them are ignored by ShadowGraph::live().
  for (ObjectSeq seq : objects_[pid]) {
    const ObjectId id{pid, seq};
    if (!heap.exists(seq)) {
      shadow_.remove_object(id);
      rooted_.erase(id);
    }
  }

  // Incoming references whose scion the rollback lost are broken: drop the
  // holder-side field too (the application discards a dead reference).
  std::erase_if(edges_, [&](const Edge& e) {
    if (e.from.owner == pid) return true;  // re-derived from the heap below
    if (e.to.owner != pid || e.ref == kNoRef) return false;
    if (proc.scions().contains(e.ref) && heap.exists(e.to.seq)) return false;
    if (rt_.alive(e.from.owner)) {
      rt_.proc(e.from.owner).remove_remote_ref(e.from.seq, e.ref);
    }
    shadow_.remove_edge(e.from, e.to);
    return true;
  });

  // Re-derive the restored objects' edges and root status from the heap.
  for (ObjectSeq seq : objects_[pid]) {
    if (!heap.exists(seq)) continue;
    const ObjectId id{pid, seq};
    const HeapObject* obj = heap.find(seq);
    std::vector<ObjectId> outs;
    for (ObjectSeq t : obj->local_fields) {
      outs.push_back(ObjectId{pid, t});
      edges_.push_back({id, ObjectId{pid, t}, kNoRef});
    }
    // Outgoing remote references: a restored stub whose scion the owner has
    // meanwhile deleted (it acted on this process's pre-crash messages) is
    // broken — drop it instead of resurrecting it.
    std::vector<RefId> broken;
    for (RefId ref : obj->remote_fields) {
      const StubEntry* stub = proc.stubs().find(ref);
      if (!stub) continue;
      const ProcessId owner = stub->target.owner;
      if (!rt_.alive(owner) || !rt_.proc(owner).scions().contains(ref)) {
        broken.push_back(ref);
        continue;
      }
      outs.push_back(stub->target);
      edges_.push_back({id, stub->target, ref});
    }
    for (RefId ref : broken) rt_.proc(pid).remove_remote_ref(seq, ref);
    shadow_.set_edges(id, std::move(outs));
    if (heap.is_root(seq)) {
      shadow_.add_root(id);
      rooted_.insert(id);
    } else {
      shadow_.remove_root(id);
      rooted_.erase(id);
    }
  }
}

std::optional<ObjectId> RandomWorkload::find_safety_violation() const {
  for (ObjectId id : shadow_.live()) {
    if (!rt_.proc(id.owner).heap().exists(id.seq)) return id;
  }
  return std::nullopt;
}

bool RandomWorkload::converged() const {
  if (find_safety_violation()) return false;
  const auto live = shadow_.live();
  std::size_t total = 0;
  for (ProcessId pid = 0; pid < rt_.size(); ++pid) {
    total += rt_.proc(pid).heap().size();
  }
  return total == live.size();
}

}  // namespace adgc::sim
