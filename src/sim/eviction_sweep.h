// Permanent-failure eviction sweep — the dead-peer reclamation acceptance
// harness.
//
// Six processes carry a distributed garbage ring (one segment per process)
// plus a ring of live sentinels (rooted L_p holding a remote reference to
// the unrooted N_{p+1}). A periodic invocation workload flows along the
// sentinel ring so every process has an interaction history with its
// neighbours. Then the ring's anchor root is dropped and one process is
// crashed FOREVER — no restart, no notification beyond the crash event the
// runtime already emits.
//
// Without eviction the victim's neighbours are stuck: the scion the victim
// held pins a ring segment forever, and the stub toward the victim sits in
// the survivor's tables for the rest of the run. With
// `peer_death_timeout_us` set, sustained suspicion (the neighbour invoking
// into the void) and the scion-holder lease (the victim owes a NewSetStubs
// every LGC period and stays silent) both escalate into eviction, after
// which every stranded stub and scion must drain in bounded time — while
// the sentinels on the survivors stay untouched.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/config.h"
#include "src/common/ids.h"

namespace adgc::sim {

struct EvictionSweepParams {
  std::uint64_t seed = 1;
  std::size_t procs = 6;
  /// The process killed forever. Keep it off 0 (the ring anchor's owner).
  ProcessId victim = 2;
  /// Eviction window (ProcessConfig::peer_death_timeout_us).
  SimTime peer_death_timeout_us = 1'000'000;
  /// Fault-free build-out before the anchor root drops.
  SimTime warmup_us = 400'000;
  /// Post-crash run; must cover peer_death_timeout plus a few LGC/NSS
  /// rounds for the reclamation cascade to drain.
  SimTime run_us = 5'000'000;
  /// Sentinel-ring invocation period (builds the interaction history that
  /// feeds suspicion).
  SimTime invoke_period_us = 50'000;
};

struct EvictionSweepResult {
  /// No survivor still holds a stub toward the victim or a scion from it,
  /// and every ring object on a survivor was reclaimed.
  bool stranded_reclaimed = false;
  /// Rooted sentinels survived everywhere; the kept sentinels survived on
  /// every process except the victim's successor (whose only keeper WAS the
  /// victim — reclaiming it is the point, not a safety violation).
  bool sentinels_intact = false;
  std::uint64_t peers_evicted = 0;
  std::uint64_t eviction_stubs_retired = 0;
  std::uint64_t eviction_scions_dropped = 0;
  std::string detail;  // human-readable diagnosis on failure

  bool ok() const {
    return stranded_reclaimed && sentinels_intact && peers_evicted >= 1;
  }
};

/// Runs one kill-forever sweep; deterministic in `params.seed`.
EvictionSweepResult run_eviction_sweep(const EvictionSweepParams& params);

}  // namespace adgc::sim
