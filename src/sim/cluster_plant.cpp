#include "src/sim/cluster_plant.h"

#include <stdexcept>

namespace adgc::sim {

void ClusterPlant::plant_local(Process& p, ProcessId pid) const {
  if (nodes < 2 || objs_per_node < 1) throw std::invalid_argument("bad plant shape");
  if (p.incarnation() != 0) {
    throw std::logic_error("plant_local on a restarted node (state is recovered)");
  }

  // Chain 1..K. Sequences must come out as the script predicts — a node
  // whose heap was not empty cannot participate.
  ObjectSeq prev = kNoObject;
  for (std::size_t i = 0; i < objs_per_node; ++i) {
    const ObjectSeq seq = p.create_object();
    if (seq != static_cast<ObjectSeq>(i + 1)) {
      throw std::logic_error("plant_local: unexpected object sequence");
    }
    if (prev != kNoObject) p.add_local_ref(prev, seq);
    prev = seq;
  }

  // Export the head to the previous node in the ring. First export of this
  // incarnation → RefId is make_ref_id(pid, 1), which is exactly what the
  // holder's script installs.
  const ExportedRef exported = p.export_own_object(head_seq(), prev_of(pid));
  if (exported.ref != ring_ref_exported_by(pid)) {
    throw std::logic_error("plant_local: unexpected exported RefId");
  }

  // Install the next node's head reference at our tail (its owner's script
  // creates the matching scion on its side).
  ExportedRef inbound;
  inbound.ref = ring_ref_exported_by(next_of(pid));
  inbound.target = ObjectId{next_of(pid), 1 /* its head_seq */};
  p.install_ref(tail_seq(), inbound);

  // The rooted sentinel: if any collector ever reclaims this, safety broke.
  const ObjectSeq sentinel = p.create_object();
  if (sentinel != sentinel_seq()) throw std::logic_error("plant_local: sentinel seq");
  p.add_root(sentinel);

  // Node 0 pins the ring alive through the anchor until the test drops it.
  if (pid == 0) {
    const ObjectSeq anchor = p.create_object();
    if (anchor != anchor_seq()) throw std::logic_error("plant_local: anchor seq");
    p.add_local_ref(anchor, head_seq());
    p.add_root(anchor);
  }
}

void ClusterPlant::drop_anchor_root(Process& p) const {
  p.remove_root(anchor_seq());
}

std::size_t ClusterPlant::chain_live(const Process& p) const {
  std::size_t live = 0;
  for (std::size_t i = 0; i < objs_per_node; ++i) {
    if (p.heap().exists(static_cast<ObjectSeq>(i + 1))) ++live;
  }
  return live;
}

bool ClusterPlant::sentinel_live(const Process& p) const {
  return p.heap().exists(sentinel_seq());
}

}  // namespace adgc::sim
