// The paper's figures as reusable graph builders.
//
// Each builder constructs the exact object graph of the corresponding figure
// on a Runtime and returns the identities tests/benches need. Object and
// process names follow the paper.
#pragma once

#include "src/rt/runtime.h"

namespace adgc::sim {

/// Fig. 3 — a simple distributed garbage cycle over four processes:
///   {F,H,J}_P2 → {Q,R,S}_P4 → {O,M,K}_P3 → {D,C,B}_P1 → F_P2
/// plus G internal to P2 and A in P1 (the former root path). On return,
/// A is pinned by P1's root; drop it to turn the whole structure into
/// garbage. Processes used: P1=0, P2=1, P3=2, P4=3.
struct Fig3 {
  ObjectId A, B, C, D;  // P1
  ObjectId F, G, H, J;  // P2
  ObjectId O, M, K;     // P3
  ObjectId Q, R, S;     // P4
  RefId B_to_F, J_to_Q, S_to_O, K_to_D;
};
Fig3 build_fig3(Runtime& rt);

/// Generalized Fig. 3: a garbage ring spanning `n_procs` processes with
/// `objs_per_proc` chained objects in each. Returns the scion RefIds of the
/// ring (one per process) in ring order; entry 0 is the natural candidate.
struct Ring {
  std::vector<ObjectId> heads;        // first object of each process segment
  std::vector<ObjectId> anchors;      // root-pinned anchor per process (optional)
  std::vector<RefId> ring_refs;       // refs closing the ring, ring order
};
Ring build_ring(Runtime& rt, std::size_t n_procs, std::size_t objs_per_proc,
                bool pin_first = true);

/// Fig. 4 — two mutually-linked distributed cycles over six processes:
///   left:  F_P2 → V_P5 → T_P4 → D_P1 → F_P2
///   right: F_P2 → K_P3 → ZB_P6 → ZD_P6 → Y_P5 → T_P4 → D_P1 → F_P2
/// V and Y share the *same* reference (one proxy) to T_P4.
/// Processes: P1=0, P2=1, P3=2, P4=3, P5=4, P6=5.
struct Fig4 {
  ObjectId D;         // P1
  ObjectId F;         // P2
  ObjectId K;         // P3
  ObjectId T;         // P4
  ObjectId V, Y;      // P5
  ObjectId ZB, ZD;    // P6
  RefId F_to_V, F_to_K, VY_to_T, T_to_D, D_to_F, K_to_ZB, ZD_to_Y;
};
Fig4 build_fig4(Runtime& rt);

/// Fig. 1 — a three-process cycle (x_P1 → y_P2 → z_P3 → x_P1) plus an extra
/// converging reference w_P4 → x_P1 (the dependency that must be resolved
/// before the cycle may be declared garbage).
struct Fig1 {
  ObjectId x, y, z, w;
  RefId x_to_y, y_to_z, z_to_x, w_to_x;
};
Fig1 build_fig1(Runtime& rt, bool pin_w);

/// Fig. 5 — the mutator–DCDA race graph (five processes carry the action):
///   cycle F_P2 → V_P5 → T_P4 → D_P1 → F_P2, where P1 additionally has
///   root → A → B, D → B, and B holds the stub to F (Local.Reach = true);
///   P2 has F → J, J holds the stub to V; F also holds a stub to M_P3
///   (used by the scripted mutation to export J to P3).
struct Fig5 {
  ObjectId A, B, D;  // P1
  ObjectId F, J;     // P2
  ObjectId M;        // P3
  ObjectId T;        // P4
  ObjectId V;        // P5
  RefId B_to_F, J_to_V, V_to_T, T_to_D, F_to_M;
};
Fig5 build_fig5(Runtime& rt);

}  // namespace adgc::sim
