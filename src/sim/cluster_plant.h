// Deterministic cross-process graph plant for the TCP cluster.
//
// The in-sim scenario builders (sim/scenarios.h) construct figures by
// reaching into every Process of one Runtime. Across real OS processes
// there is no such omniscient hand — instead, each node executes its OWN
// slice of a fixed plant script, and the script exploits the determinism of
// identifier minting: a freshly started node (incarnation 0) allocates
// object sequences 1, 2, 3, … and exports references make_ref_id(pid, 1),
// make_ref_id(pid, 2), … So every node can compute, without any message,
// the exact ObjectId/RefId that every other node's slice produces, and
// install stubs for references whose scions the owner creates on its side
// of the script.
//
// The planted structure is the paper's Fig. 3 generalized to N nodes (the
// same shape build_ring() plants in-sim): node i owns a local chain of K
// objects; its tail holds a remote reference to node (i+1)'s head; node 0
// additionally pins the ring through a rooted anchor. Every node also roots
// a local sentinel that must survive everything (the over-collection
// tripwire). Dropping the anchor's root turns the whole N-process ring into
// a distributed garbage cycle that only DCDA can reclaim — now across real
// sockets.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/ids.h"
#include "src/rt/process.h"

namespace adgc::sim {

struct ClusterPlant {
  std::size_t nodes = 3;
  std::size_t objs_per_node = 3;

  // ---- the fixed layout (valid for incarnation-0 nodes) ----
  ObjectSeq head_seq() const { return 1; }
  ObjectSeq tail_seq() const { return static_cast<ObjectSeq>(objs_per_node); }
  /// Rooted sentinel every node keeps forever.
  ObjectSeq sentinel_seq() const { return static_cast<ObjectSeq>(objs_per_node + 1); }
  /// Root-pinned ring anchor; exists on node 0 only.
  ObjectSeq anchor_seq() const { return static_cast<ObjectSeq>(objs_per_node + 2); }
  /// The reference closing the ring out of node `holder`: exported by the
  /// next node over, installed at `holder`'s tail.
  ProcessId next_of(ProcessId pid) const {
    return static_cast<ProcessId>((pid + 1) % nodes);
  }
  ProcessId prev_of(ProcessId pid) const {
    return static_cast<ProcessId>((pid + nodes - 1) % nodes);
  }
  RefId ring_ref_exported_by(ProcessId exporter) const {
    return make_ref_id(exporter, 1);
  }

  /// Executes node `pid`'s slice of the script. Must run on a freshly
  /// started Process (incarnation 0, empty heap) — recovered nodes already
  /// carry the planted state in their snapshot.
  void plant_local(Process& p, ProcessId pid) const;

  /// Drops the ring anchor's root (node 0 only): the whole ring becomes a
  /// distributed garbage cycle.
  void drop_anchor_root(Process& p) const;

  /// How many of this node's chain objects still exist (the reclamation
  /// progress gauge; 0 = this node's slice of the cycle was collected).
  std::size_t chain_live(const Process& p) const;

  /// True while the rooted sentinel exists (must always hold).
  bool sentinel_live(const Process& p) const;
};

}  // namespace adgc::sim
