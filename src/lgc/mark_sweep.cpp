#include "src/lgc/mark_sweep.h"

#include <vector>

namespace adgc::lgc {

std::unordered_set<ObjectSeq> reach_from(const Heap& heap,
                                         const std::vector<ObjectSeq>& seeds) {
  std::unordered_set<ObjectSeq> marked;
  std::vector<ObjectSeq> stack;
  for (ObjectSeq s : seeds) {
    if (heap.exists(s) && marked.insert(s).second) stack.push_back(s);
  }
  while (!stack.empty()) {
    const ObjectSeq cur = stack.back();
    stack.pop_back();
    const HeapObject* obj = heap.find(cur);
    for (ObjectSeq next : obj->local_fields) {
      if (heap.exists(next) && marked.insert(next).second) stack.push_back(next);
    }
  }
  return marked;
}

Result run(Heap& heap, StubTable& stubs, ScionTable& scions,
           const std::set<RefId>& pinned_stubs, SimTime now) {
  Result res;
  res.objects_before = heap.size();

  // Mark 1: from local roots only (defines Local.Reach and the candidate
  // heuristic's "locally reachable" notion).
  std::vector<ObjectSeq> root_seeds(heap.roots().begin(), heap.roots().end());
  res.root_reachable = reach_from(heap, root_seeds);

  // Mark 2: full liveness = roots ∪ scion targets.
  std::vector<ObjectSeq> full_seeds = root_seeds;
  for (const auto& [ref, scion] : scions) {
    full_seeds.push_back(scion.target);
  }
  const std::unordered_set<ObjectSeq> live = reach_from(heap, full_seeds);

  // Sweep.
  std::vector<ObjectSeq> dead;
  dead.reserve(heap.size() - live.size());
  for (const auto& [seq, obj] : heap.objects()) {
    if (!live.contains(seq)) dead.push_back(seq);
  }
  for (ObjectSeq seq : dead) heap.remove(seq);
  res.objects_reclaimed = dead.size();

  // Recompute stub holder counts and Local.Reach from the surviving heap.
  for (auto& [ref, stub] : stubs) {
    stub.holders = 0;
    stub.local_reach = false;
  }
  for (const auto& [seq, obj] : heap.objects()) {
    const bool from_root = res.root_reachable.contains(seq);
    for (RefId ref : obj.remote_fields) {
      if (StubEntry* stub = stubs.find(ref)) {
        ++stub->holders;
        stub->local_reach = stub->local_reach || from_root;
      }
    }
  }

  // Delete orphaned stubs (unless pinned by an in-flight export).
  std::vector<RefId> doomed;
  for (const auto& [ref, stub] : stubs) {
    if (stub.holders == 0 && !pinned_stubs.contains(ref)) doomed.push_back(ref);
  }
  for (RefId ref : doomed) stubs.erase(ref);
  res.stubs_deleted = doomed.size();

  // Refresh the candidate heuristic's view of scion targets.
  for (auto& [ref, scion] : scions) {
    scion.target_root_reachable = res.root_reachable.contains(scion.target);
    (void)now;
  }

  return res;
}

}  // namespace adgc::lgc
