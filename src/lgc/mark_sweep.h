// Local garbage collector: precise mark-sweep over one process's heap.
//
// Contract with the distributed collector (paper §4):
//  * scions act as GC roots — objects protected by an incoming remote
//    reference survive even when locally unreachable;
//  * the LGC reports which stubs survived and whether they are reachable
//    from *local* roots (the DCDA's Local.Reach bit), and whether each
//    scion's target is root-reachable (the candidate heuristic);
//  * stubs with no surviving holder are deleted — the caller then announces
//    the new stub set via NewSetStubs.
//
// `pinned_stubs` are references currently being exported through the
// scion-first handshake: they must survive (and count as live for
// NewSetStubs) even if no heap object holds them anymore.
#pragma once

#include <set>
#include <unordered_set>

#include "src/common/config.h"
#include "src/dgc/scion_table.h"
#include "src/dgc/stub_table.h"
#include "src/rt/heap.h"

namespace adgc::lgc {

struct Result {
  std::size_t objects_before = 0;
  std::size_t objects_reclaimed = 0;
  std::size_t stubs_deleted = 0;
  /// Objects reachable from local roots only (no scions), post-sweep.
  std::unordered_set<ObjectSeq> root_reachable;
};

Result run(Heap& heap, StubTable& stubs, ScionTable& scions,
           const std::set<RefId>& pinned_stubs, SimTime now);

/// Mark phase only: the set of objects transitively reachable from `seeds`
/// through local fields. Shared with the summarizer and the oracle.
std::unordered_set<ObjectSeq> reach_from(const Heap& heap,
                                         const std::vector<ObjectSeq>& seeds);

}  // namespace adgc::lgc
