// adgc_trace — converts binary structured-event traces to Chrome trace JSON.
//
//   adgc_trace [--out=FILE] trace1.bin [trace2.bin ...]
//
// Inputs are the files written by `adgc_node --trace-file` or
// `adgc_sim --obs-dump` (one per process, or one merged file). Events from
// all inputs are merged, sorted by timestamp and emitted as one Chrome
// trace-event JSON document on stdout (or --out=FILE), loadable in Perfetto
// or chrome://tracing: detections render as async spans with an instant per
// CDM hop; crashes, restarts, evictions and collector passes render as
// instants on their process track.
//
// Exit status: 0 on success, 1 on unreadable/undecodable input, 2 on usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/obs/trace.h"
#include "tools/cli_flags.h"

using namespace adgc;

namespace {

constexpr cli::FlagSpec kTraceFlags[] = {
    {"--out", "FILE", "write the JSON here instead of stdout"},
};
constexpr std::size_t kNumTraceFlags = sizeof(kTraceFlags) / sizeof(kTraceFlags[0]);

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  cli::print_usage_line(out, argv0, "trace1.bin [trace2.bin ...]", kTraceFlags,
                        kNumTraceFlags);
  cli::print_flag_help(out, kTraceFlags, kNumTraceFlags);
  std::exit(code);
}

bool read_file(const std::string& path, std::vector<std::byte>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  out->resize(raw.size());
  std::memcpy(out->data(), raw.data(), raw.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::parse_flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else if (cli::parse_flag(argv[i], "--out", &v)) {
      out_path = v;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0], 2);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) usage(argv[0], 2);

  std::vector<obs::Event> all;
  for (const std::string& path : inputs) {
    std::vector<std::byte> bytes;
    if (!read_file(path, &bytes)) {
      std::fprintf(stderr, "adgc_trace: cannot read %s\n", path.c_str());
      return 1;
    }
    try {
      const std::vector<obs::Event> events = obs::parse_trace(bytes);
      all.insert(all.end(), events.begin(), events.end());
    } catch (const DecodeError& e) {
      std::fprintf(stderr, "adgc_trace: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const obs::Event& a, const obs::Event& b) {
    return a.ts < b.ts;
  });

  const std::string json = obs::to_chrome_json(all);
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "adgc_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
  }
  std::fprintf(stderr, "adgc_trace: %zu events from %zu file(s)\n", all.size(),
               inputs.size());
  return 0;
}
