// Shared command-line flag machinery for the adgc_* tools.
//
// Each tool declares one FlagSpec table; both its `usage:` synopsis and the
// per-flag help text are generated from that table, so the two can never
// drift apart (and the --name=value parsing convention is identical across
// adgc_sim, adgc_node and adgc_mc).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace adgc::cli {

struct FlagSpec {
  const char* name;  // "--steps"
  const char* arg;   // metavariable ("N"); nullptr for boolean flags
  const char* help;  // help text; '\n' breaks continuation lines
};

/// Parses "--name" / "--name=value". Returns true when `arg` is this flag,
/// leaving the value (or "" for the bare form) in *value.
inline bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// One "[--flag=ARG]" token for the synopsis.
inline std::string synopsis_token(const FlagSpec& f) {
  std::string tok = "[";
  tok += f.name;
  if (f.arg) {
    tok += '=';
    tok += f.arg;
  }
  tok += ']';
  return tok;
}

/// Prints "usage: <argv0> <head> [--a=X] [--b] ..." wrapped at ~78 columns,
/// continuation lines aligned under the first token. `head` (may be "")
/// carries required positional/mode syntax that is not table-driven.
inline void print_usage_line(std::FILE* out, const char* argv0, const char* head,
                             const FlagSpec* flags, std::size_t n,
                             const char* lead = "usage: ") {
  std::string line = lead;
  line += argv0;
  const std::size_t indent = line.size() + 1;
  if (head && *head) {
    line += ' ';
    line += head;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::string tok = synopsis_token(flags[i]);
    if (line.size() + 1 + tok.size() > 78) {
      std::fprintf(out, "%s\n", line.c_str());
      line.assign(indent, ' ');
      line += tok;
    } else {
      line += ' ';
      line += tok;
    }
  }
  std::fprintf(out, "%s\n", line.c_str());
}

/// Prints the two-column per-flag help generated from the table.
inline void print_flag_help(std::FILE* out, const FlagSpec* flags, std::size_t n) {
  std::size_t width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t w = std::strlen(flags[i].name);
    if (flags[i].arg) w += 1 + std::strlen(flags[i].arg);
    if (w > width) width = w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::string left = flags[i].name;
    if (flags[i].arg) {
      left += '=';
      left += flags[i].arg;
    }
    std::fprintf(out, "  %-*s ", static_cast<int>(width), left.c_str());
    const char* help = flags[i].help;
    bool first = true;
    while (*help) {
      const char* nl = std::strchr(help, '\n');
      const std::size_t len = nl ? static_cast<std::size_t>(nl - help)
                                 : std::strlen(help);
      if (!first) std::fprintf(out, "  %-*s ", static_cast<int>(width), "");
      std::fwrite(help, 1, len, out);
      std::fputc('\n', out);
      first = false;
      help += len + (nl ? 1 : 0);
    }
    if (first) std::fputc('\n', out);
  }
}

}  // namespace adgc::cli
