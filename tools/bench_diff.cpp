// Compares a benchmark JSON report (bench::JsonReport output) against a
// checked-in baseline and fails on regressions. Used by the CI benchmark
// gate; also handy locally:
//
//   bench_diff bench/baselines/BENCH_table1_rmi.json build/BENCH_table1_rmi.json
//
// Exit codes: 0 ok, 1 regression detected, 2 usage/parse error.
//
// The parser reads exactly the rigid format JsonReport emits (one row per
// line, numeric fields only) — not general JSON, on purpose: no dependency,
// and any format drift fails loudly.
//
// Gate classes, chosen by field name:
//   * wire counts (msgs_per_rmi, bytes_per_rmi, messages, cdms, cdm_bytes):
//     current must be <= baseline * 1.02 — ANY real increase in per-RMI
//     message cost is a regression; the 2% headroom absorbs TCP retry
//     nondeterminism only.
//   * *reduction_pct: must not drop more than 5 points below baseline
//     (the batching win must persist).
//   * p50_ratio: must stay <= max(1.05, baseline * 1.10) — batching may
//     not cost more than 5% latency over unbatched.
//   * collected: must not drop below baseline (1 → 0 means a bench ring
//     stopped collecting).
//   * obs_overhead_pct: must stay <= 5 — the observability plane (trace
//     ring + event stamping) may not cost more than 5% on the RMI series,
//     regardless of what the baseline measured (docs/OBSERVABILITY.md).
//   * snapshot_sync_speedup: must stay >= 5 — the asynchronous snapshot
//     pipeline must keep mutator-visible snapshot cost at least 5x below
//     the synchronous path, regardless of what the baseline measured
//     (docs/DESIGN.md snapshot-pipeline section).
//   * persist_failures: must stay <= baseline (0 in every baseline) — a
//     bench leg that starts failing store publishes is a broken store, not
//     noise.
//   * *_ms wall-clock latencies: current <= max(baseline * 1.20,
//     baseline + 10ms) — the 20% latency gate, with an absolute floor so
//     micro-times on shared runners don't flap (a 30ms bench jitters by
//     25% on a busy machine; a 300ms one doesn't).
//   * identity fields (calls, batching, processes, objs): must match
//     exactly; a mismatch means the bench changed shape and the baseline
//     needs a refresh.
//   * anything else: informational (printed, never gating).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string series;
  std::vector<std::pair<std::string, double>> fields;
};

struct Report {
  std::string bench;
  std::vector<Row> rows;
};

bool parse_report(const std::string& path, Report* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::size_t at = line.find("\"bench\":");
    if (at != std::string::npos) {
      const std::size_t q1 = line.find('"', at + 8);
      const std::size_t q2 = q1 == std::string::npos ? q1 : line.find('"', q1 + 1);
      if (q2 != std::string::npos) out->bench = line.substr(q1 + 1, q2 - q1 - 1);
      continue;
    }
    at = line.find("{\"series\":");
    if (at == std::string::npos) continue;
    Row row;
    std::size_t q1 = line.find('"', at + 10);
    std::size_t q2 = q1 == std::string::npos ? q1 : line.find('"', q1 + 1);
    if (q2 == std::string::npos) {
      std::fprintf(stderr, "bench_diff: malformed row in %s: %s\n", path.c_str(),
                   line.c_str());
      return false;
    }
    row.series = line.substr(q1 + 1, q2 - q1 - 1);
    std::size_t pos = q2 + 1;
    while ((q1 = line.find('"', pos)) != std::string::npos) {
      q2 = line.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      const std::string key = line.substr(q1 + 1, q2 - q1 - 1);
      const std::size_t colon = line.find(':', q2);
      if (colon == std::string::npos) break;
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + colon + 1, &end);
      if (end == line.c_str() + colon + 1) {
        std::fprintf(stderr, "bench_diff: non-numeric field %s in %s\n", key.c_str(),
                     path.c_str());
        return false;
      }
      row.fields.emplace_back(key, value);
      pos = static_cast<std::size_t>(end - line.c_str());
    }
    out->rows.push_back(std::move(row));
  }
  if (out->rows.empty()) {
    std::fprintf(stderr, "bench_diff: no rows found in %s\n", path.c_str());
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class Gate {
  kIdentity,
  kCount,
  kReduction,
  kP50Ratio,
  kCollected,
  kObsOverhead,
  kPipelineSpeedup,
  kWallMs,
  kInfo
};

Gate classify(const std::string& name) {
  if (name == "calls" || name == "batching" || name == "processes" || name == "objs" ||
      name == "pipeline" || name == "snapshots") {
    return Gate::kIdentity;
  }
  if (name == "msgs_per_rmi" || name == "bytes_per_rmi" || name == "messages" ||
      name == "cdms" || name == "cdm_bytes" || name == "persist_failures") {
    return Gate::kCount;
  }
  if (ends_with(name, "reduction_pct")) return Gate::kReduction;
  if (name == "p50_ratio") return Gate::kP50Ratio;
  if (name == "collected") return Gate::kCollected;
  if (name == "obs_overhead_pct") return Gate::kObsOverhead;
  if (name == "snapshot_sync_speedup") return Gate::kPipelineSpeedup;
  if (ends_with(name, "_ms")) return Gate::kWallMs;
  return Gate::kInfo;
}

struct Verdict {
  bool regression = false;
  std::string detail;  // empty when the field is within bounds
};

Verdict check(Gate gate, double base, double cur) {
  char buf[160];
  Verdict v;
  switch (gate) {
    case Gate::kIdentity:
      if (base != cur) {
        std::snprintf(buf, sizeof buf,
                      "identity field changed (%.6g -> %.6g): bench shape differs, "
                      "refresh the baseline",
                      base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kCount:
      if (cur > base * 1.02) {
        std::snprintf(buf, sizeof buf, "wire cost up %.1f%% (%.6g -> %.6g)",
                      (cur - base) / base * 100.0, base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kReduction:
      if (cur < base - 5.0) {
        std::snprintf(buf, sizeof buf, "reduction dropped %.1f points (%.6g -> %.6g)",
                      base - cur, base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kP50Ratio:
      if (cur > std::fmax(1.05, base * 1.10)) {
        std::snprintf(buf, sizeof buf, "batched p50 worse than 5%% bound (%.6g -> %.6g)",
                      base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kCollected:
      if (cur < base) {
        std::snprintf(buf, sizeof buf, "collection stopped succeeding (%.6g -> %.6g)",
                      base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kObsOverhead:
      if (cur > 5.0) {
        std::snprintf(buf, sizeof buf,
                      "observability overhead above the 5%% budget (%.6g%% -> %.6g%%)",
                      base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kPipelineSpeedup:
      if (cur < 5.0) {
        std::snprintf(buf, sizeof buf,
                      "snapshot pipeline speedup below the 5x floor (%.6gx -> %.6gx)",
                      base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kWallMs:
      if (cur > std::fmax(base * 1.20, base + 10.0)) {
        std::snprintf(buf, sizeof buf, "latency up %.1f%% (%.6g ms -> %.6g ms)",
                      (cur - base) / base * 100.0, base, cur);
        v = {true, buf};
      }
      break;
    case Gate::kInfo:
      break;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <baseline.json> <current.json>\n", argv[0]);
    return 2;
  }
  Report baseline, current;
  if (!parse_report(argv[1], &baseline) || !parse_report(argv[2], &current)) return 2;
  if (baseline.bench != current.bench) {
    std::fprintf(stderr, "bench_diff: comparing different benches (%s vs %s)\n",
                 baseline.bench.c_str(), current.bench.c_str());
    return 2;
  }

  // Rows match by (series, occurrence index): the benches emit rows in a
  // fixed order, so the pairing is stable.
  std::map<std::string, std::vector<const Row*>> base_rows, cur_rows;
  for (const Row& r : baseline.rows) base_rows[r.series].push_back(&r);
  for (const Row& r : current.rows) cur_rows[r.series].push_back(&r);

  int regressions = 0;
  std::printf("bench_diff: %s (%zu baseline rows, %zu current rows)\n",
              baseline.bench.c_str(), baseline.rows.size(), current.rows.size());
  for (const auto& [series, rows] : base_rows) {
    const auto it = cur_rows.find(series);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (it == cur_rows.end() || i >= it->second.size()) {
        std::printf("  REGRESSION %s[%zu]: row missing from current report\n",
                    series.c_str(), i);
        ++regressions;
        continue;
      }
      const Row& b = *rows[i];
      const Row& c = *it->second[i];
      for (const auto& [key, base_val] : b.fields) {
        double cur_val = 0;
        bool found = false;
        for (const auto& [ck, cv] : c.fields) {
          if (ck == key) {
            cur_val = cv;
            found = true;
            break;
          }
        }
        if (!found) {
          std::printf("  REGRESSION %s[%zu].%s: field missing from current report\n",
                      series.c_str(), i, key.c_str());
          ++regressions;
          continue;
        }
        const Gate gate = classify(key);
        const Verdict v = check(gate, base_val, cur_val);
        if (v.regression) {
          std::printf("  REGRESSION %s[%zu].%s: %s\n", series.c_str(), i, key.c_str(),
                      v.detail.c_str());
          ++regressions;
        } else if (gate != Gate::kInfo) {
          std::printf("  ok  %s[%zu].%s: %.6g -> %.6g\n", series.c_str(), i,
                      key.c_str(), base_val, cur_val);
        }
      }
    }
  }
  if (regressions > 0) {
    std::printf("bench_diff: %d regression(s). If the change is intentional, refresh\n"
                "the baseline: run the bench and copy its BENCH_*.json over\n"
                "bench/baselines/ (see .github/workflows/ci.yml bench job).\n",
                regressions);
    return 1;
  }
  std::printf("bench_diff: no regressions\n");
  return 0;
}
