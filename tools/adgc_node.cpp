// adgc_node — standalone ADGC node: one collector process over real TCP.
//
// Runs one ADGC Process on the NodeRuntime (wall-clock timers, TCP frames
// to its peers), mirroring adgc_sim's workload/crash flags where they make
// sense for a single node of a real cluster.
//
//   adgc_node --id=N --listen=host:port --peers=0=h:p,1=h:p,...
//             [--state-dir=DIR] [--seed=S] [--run-ms=T]
//             [--plant-ring=NODES:OBJS] [--drop-root-after-ms=T]
//             [--crash-at-ms=T] [--status-every-ms=T]
//             [--lgc-ms=T] [--snapshot-ms=T] [--dcda-ms=T]
//             [--quarantine-ms=T] [--detect-timeout-ms=T] [--verbose]
//
//   --plant-ring        this node's slice of the deterministic Fig. 3 ring
//                       (see src/sim/cluster_plant.h); skipped automatically
//                       when the node recovered from a snapshot (restart).
//   --drop-root-after-ms  node 0 drops the ring anchor's root after this
//                       delay, turning the ring into distributed garbage.
//   --crash-at-ms       hard-kill hook for the crash-sweep fault model:
//                       _exit(137) without any drain, indistinguishable
//                       from kill -9 for everyone else.
//   --run-ms=0          run until SIGTERM/SIGINT (the default).
//
// Status lines (machine-readable, one per --status-every-ms) go to stdout:
//   NODE id=.. inc=.. t_ms=.. recovered=.. objects=.. chain_live=..
//        sentinel_live=.. stubs=.. scions=.. cycles=.. snaps=..
// A final "NODE-EXIT ..." line is printed on the clean SIGTERM drain path.
// Exit status: 0 on clean drain, 2 on usage errors, 3 when the cluster
// evicted this incarnation (a NODE-EVICTED line precedes the exit; the
// supervisor should simply respawn — the incarnation file bumps on start).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "src/common/log.h"
#include "src/rt/node_runtime.h"
#include "src/sim/cluster_plant.h"
#include "tools/cli_flags.h"

using namespace adgc;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  ProcessId id = kNoProcess;
  std::string listen;
  std::map<ProcessId, PeerAddr> peers;
  std::string state_dir;
  std::uint64_t seed = 1;
  SimTime run_ms = 0;  // 0 = until signal
  std::optional<sim::ClusterPlant> plant;
  SimTime drop_root_after_ms = 0;  // 0 = never
  SimTime crash_at_ms = 0;         // 0 = never
  SimTime status_every_ms = 200;
  // Collector tuning (wall-clock ms; defaults fit a localhost cluster).
  SimTime lgc_ms = 25, snapshot_ms = 60, dcda_ms = 80, quarantine_ms = 50;
  SimTime detect_timeout_ms = 2000;
  SimTime peer_death_timeout_ms = 0;  // 0 = eviction disabled
  bool batching = true;
  SimTime batch_flush_us = 0;  // 0 = keep the config default
  bool snapshot_pipeline = true;
  bool verbose = false;
  bool admin = false;
  std::uint16_t admin_port = 0;       // 0 = kernel-assigned
  SimTime stats_interval_ms = 0;      // 0 = no periodic stats line
  std::string trace_file;             // dump the trace ring here at exit
};

using cli::parse_flag;

// Single source of truth for the optional flags: the usage synopsis and the
// flag help below are both generated from this table.
constexpr cli::FlagSpec kNodeFlags[] = {
    {"--state-dir", "DIR", "persistent snapshot directory (restart recovery)"},
    {"--seed", "S", "RNG seed (default 1)"},
    {"--run-ms", "T", "wall-clock run time; 0 = until SIGTERM/SIGINT (default)"},
    {"--plant-ring", "NODES:OBJS",
     "this node's slice of the deterministic Fig. 3 ring;\n"
     "skipped automatically after a snapshot recovery"},
    {"--drop-root-after-ms", "T",
     "node 0 drops the ring anchor's root after this delay,\n"
     "turning the ring into distributed garbage (default: never)"},
    {"--crash-at-ms", "T",
     "hard-kill hook: _exit(137) without any drain,\n"
     "indistinguishable from kill -9 (default: never)"},
    {"--status-every-ms", "T", "status-line period on stdout (default 200)"},
    {"--lgc-ms", "T", "local GC period (default 25)"},
    {"--snapshot-ms", "T", "snapshot + summarize period (default 60)"},
    {"--dcda-ms", "T", "DCDA candidate-scan period (default 80)"},
    {"--quarantine-ms", "T", "candidate quarantine (default 50)"},
    {"--detect-timeout-ms", "T", "initiator-side detection timeout (default 2000)"},
    {"--peer-death-timeout-ms", "T",
     "sustained-suspicion window before a peer is evicted\n"
     "as permanently dead (default 0 = never evict);\n"
     "must exceed the longest partition you expect to survive"},
    {"--no-batching", nullptr,
     "one transport message per control message\n"
     "instead of per-peer batch frames"},
    {"--batch-flush-us", "T",
     "batch flush deadline (wall-clock us): the most\n"
     "latency batching may add to a control message\n"
     "(default: the config default)"},
    {"--no-snapshot-pipeline", nullptr,
     "serialize, persist and summarize each periodic snapshot\n"
     "synchronously on the actor thread instead of on the\n"
     "per-node background worker (default: pipeline on)"},
    {"--admin-port", "P",
     "serve the admin HTTP endpoint (/metrics, /healthz,\n"
     "/tracez) on 127.0.0.1:P; 0 binds a kernel-assigned\n"
     "port, announced by an ADMIN status line"},
    {"--stats-interval-ms", "T",
     "periodic one-line STATS log of the key counters and\n"
     "latency quantiles (default 0 = off)"},
    {"--trace-file", "FILE",
     "write the binary structured-event trace here on clean\n"
     "exit (convert with adgc_trace)"},
    {"--verbose", nullptr, "info-level logs"},
};
constexpr std::size_t kNumNodeFlags = sizeof(kNodeFlags) / sizeof(kNodeFlags[0]);

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  cli::print_usage_line(out, argv0, "--id=N --listen=host:port --peers=0=h:p,1=h:p,...",
                        kNodeFlags, kNumNodeFlags);
  std::fprintf(out, "\nflags (--batch-flush-us default: %llu):\n",
               static_cast<unsigned long long>(ProcessConfig{}.batch_flush_us));
  cli::print_flag_help(out, kNodeFlags, kNumNodeFlags);
  std::exit(code);
}

std::map<ProcessId, PeerAddr> parse_peers(const std::string& spec) {
  std::map<ProcessId, PeerAddr> peers;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--peers entry must be id=host:port: '" + entry + "'");
    }
    const ProcessId pid =
        static_cast<ProcessId>(std::strtoul(entry.substr(0, eq).c_str(), nullptr, 10));
    peers[pid] = parse_peer_addr(entry.substr(eq + 1));
    pos = comma + 1;
  }
  return peers;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else if (parse_flag(argv[i], "--id", &v)) {
      opt.id = static_cast<ProcessId>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--listen", &v)) {
      opt.listen = v;
    } else if (parse_flag(argv[i], "--peers", &v)) {
      opt.peers = parse_peers(v);
    } else if (parse_flag(argv[i], "--state-dir", &v)) {
      opt.state_dir = v;
    } else if (parse_flag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--run-ms", &v)) {
      opt.run_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--plant-ring", &v)) {
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos) usage(argv[0], 2);
      sim::ClusterPlant plant;
      plant.nodes = std::strtoull(v.substr(0, colon).c_str(), nullptr, 10);
      plant.objs_per_node = std::strtoull(v.substr(colon + 1).c_str(), nullptr, 10);
      if (plant.nodes < 2 || plant.objs_per_node < 1) usage(argv[0], 2);
      opt.plant = plant;
    } else if (parse_flag(argv[i], "--drop-root-after-ms", &v)) {
      opt.drop_root_after_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--crash-at-ms", &v)) {
      opt.crash_at_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--status-every-ms", &v)) {
      opt.status_every_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--lgc-ms", &v)) {
      opt.lgc_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--snapshot-ms", &v)) {
      opt.snapshot_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--dcda-ms", &v)) {
      opt.dcda_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--quarantine-ms", &v)) {
      opt.quarantine_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--detect-timeout-ms", &v)) {
      opt.detect_timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--peer-death-timeout-ms", &v)) {
      opt.peer_death_timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--no-batching", &v)) {
      opt.batching = false;
    } else if (parse_flag(argv[i], "--no-snapshot-pipeline", &v)) {
      opt.snapshot_pipeline = false;
    } else if (parse_flag(argv[i], "--batch-flush-us", &v)) {
      opt.batch_flush_us = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.batch_flush_us == 0) usage(argv[0], 2);
    } else if (parse_flag(argv[i], "--admin-port", &v)) {
      opt.admin = true;
      opt.admin_port = static_cast<std::uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--stats-interval-ms", &v)) {
      opt.stats_interval_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--trace-file", &v)) {
      opt.trace_file = v;
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0], 2);
    }
  }
  if (opt.id == kNoProcess || opt.listen.empty()) usage(argv[0], 2);
  if (opt.plant && opt.id >= opt.plant->nodes) {
    std::fprintf(stderr, "--id is outside the --plant-ring node count\n");
    std::exit(2);
  }
  return opt;
}

struct Status {
  std::size_t objects = 0, chain_live = 0, stubs = 0, scions = 0;
  bool sentinel_live = true;
  std::uint64_t cycles = 0, snaps = 0, evictions = 0;
};

Status collect(NodeRuntime& node, const std::optional<sim::ClusterPlant>& plant) {
  Status st;
  node.post_sync([&](Process& p) {
    st.objects = p.heap().size();
    st.stubs = p.stubs().size();
    st.scions = p.scions().size();
    if (plant) {
      st.chain_live = plant->chain_live(p);
      st.sentinel_live = plant->sentinel_live(p);
    }
    st.cycles = p.metrics().scions_deleted_cyclic.get();
    st.snaps = p.metrics().snapshots_taken.get();
    st.evictions = p.metrics().peers_evicted.get();
  });
  return st;
}

void print_status(const char* tag, const Options& opt, NodeRuntime& node, SimTime t_ms) {
  const Status st = collect(node, opt.plant);
  std::printf("%s id=%u inc=%u t_ms=%llu recovered=%d objects=%zu chain_live=%zu "
              "sentinel_live=%d stubs=%zu scions=%zu cycles=%llu snaps=%llu "
              "evictions=%llu\n",
              tag, opt.id, node.incarnation(),
              static_cast<unsigned long long>(t_ms), node.recovered() ? 1 : 0,
              st.objects, st.chain_live, st.sentinel_live ? 1 : 0, st.stubs, st.scions,
              static_cast<unsigned long long>(st.cycles),
              static_cast<unsigned long long>(st.snaps),
              static_cast<unsigned long long>(st.evictions));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.verbose) Log::set_level(LogLevel::kInfo);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  NodeRuntime::Options nopts;
  nopts.pid = opt.id;
  nopts.listen = opt.listen;
  nopts.peers = opt.peers;
  nopts.state_dir = opt.state_dir;
  if (opt.admin) {
    nopts.admin_enabled = true;
    nopts.admin_listen = "127.0.0.1:" + std::to_string(opt.admin_port);
  }
  nopts.cfg.seed = opt.seed;
  nopts.cfg.proc.lgc_period_us = opt.lgc_ms * 1000;
  nopts.cfg.proc.snapshot_period_us = opt.snapshot_ms * 1000;
  nopts.cfg.proc.dcda_scan_period_us = opt.dcda_ms * 1000;
  nopts.cfg.proc.candidate_quarantine_us = opt.quarantine_ms * 1000;
  nopts.cfg.proc.detection_timeout_us = opt.detect_timeout_ms * 1000;
  nopts.cfg.proc.peer_death_timeout_us = opt.peer_death_timeout_ms * 1000;
  nopts.cfg.proc.batching_enabled = opt.batching;
  if (opt.batch_flush_us > 0) nopts.cfg.proc.batch_flush_us = opt.batch_flush_us;
  nopts.cfg.proc.snapshot_pipeline = opt.snapshot_pipeline;
  // Keep the per-candidate relaunch backoff short relative to the harness
  // timeout: a detection aborted by a peer crash must retry briskly.
  nopts.cfg.proc.detection_backoff_cap_us = 1'000'000;
  nopts.cfg.proc.scion_pending_grace_us = 2'000'000;

  NodeRuntime node(std::move(nopts));
  try {
    node.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adgc_node: start failed: %s\n", e.what());
    return 1;
  }
  if (opt.admin) {
    std::printf("ADMIN id=%u port=%u\n", opt.id, node.admin_port());
    std::fflush(stdout);
  }

  if (opt.plant && !node.recovered()) {
    const sim::ClusterPlant plant = *opt.plant;
    const ProcessId id = opt.id;
    node.post_sync([&plant, id](Process& p) { plant.plant_local(p, id); });
    std::printf("NODE-PLANTED id=%u nodes=%zu objs=%zu\n", id, plant.nodes,
                plant.objs_per_node);
    std::fflush(stdout);
  }

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&] {
    return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                    std::chrono::steady_clock::now() - started)
                                    .count());
  };

  // Periodic one-line stats: counters + latency quantiles out of the atomic
  // metrics (safe to read off-thread).
  const auto print_stats = [&](SimTime t) {
    Metrics m = node.total_metrics();
    std::printf("STATS id=%u t_ms=%llu msgs=%llu cdms_sent=%llu detections=%llu "
                "cycles=%llu rmi_p50_us=%.0f rmi_p99_us=%.0f lgc_p99_us=%.0f "
                "batch_p50=%.0f\n",
                opt.id, static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(m.messages_delivered.get()),
                static_cast<unsigned long long>(m.cdms_sent.get()),
                static_cast<unsigned long long>(m.detections_started.get()),
                static_cast<unsigned long long>(m.scions_deleted_cyclic.get()),
                static_cast<double>(m.rmi_rtt_us.quantile(0.5)),
                static_cast<double>(m.rmi_rtt_us.quantile(0.99)),
                static_cast<double>(m.lgc_pause_us.quantile(0.99)),
                static_cast<double>(m.batch_flush_msgs.quantile(0.5)));
    std::fflush(stdout);
  };
  const auto dump_trace = [&] {
    if (opt.trace_file.empty()) return;
    const std::vector<obs::Event> events = node.trace_events();
    const std::vector<std::byte> bytes = obs::serialize_trace(events);
    if (std::FILE* f = std::fopen(opt.trace_file.c_str(), "wb")) {
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
      std::printf("TRACE id=%u file=%s events=%zu\n", opt.id, opt.trace_file.c_str(),
                  events.size());
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "adgc_node: cannot write %s\n", opt.trace_file.c_str());
    }
  };

  bool root_dropped = false;
  SimTime next_status_ms = opt.status_every_ms;
  SimTime next_stats_ms = opt.stats_interval_ms;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const SimTime t = elapsed_ms();
    if (opt.crash_at_ms > 0 && t >= opt.crash_at_ms) {
      // The kill-9 hook: no drain, no flush, no destructors.
      std::_Exit(137);
    }
    if (!root_dropped && opt.plant && opt.id == 0 && opt.drop_root_after_ms > 0 &&
        t >= opt.drop_root_after_ms && !node.recovered()) {
      const sim::ClusterPlant plant = *opt.plant;
      node.post_sync([&plant](Process& p) { plant.drop_anchor_root(p); });
      root_dropped = true;
      std::printf("NODE-ROOT-DROPPED id=%u t_ms=%llu\n", opt.id,
                  static_cast<unsigned long long>(t));
      std::fflush(stdout);
    }
    if (node.self_evicted()) {
      // The cluster declared this incarnation dead and NACKed our traffic.
      // Continuing would only feed rejected frames; restart under a fresh
      // incarnation (our supervisor respawns us, the incarnation file bumps).
      std::printf("NODE-EVICTED id=%u inc=%u t_ms=%llu\n", opt.id, node.incarnation(),
                  static_cast<unsigned long long>(t));
      std::fflush(stdout);
      node.stop(0);
      return 3;
    }
    if (opt.status_every_ms > 0 && t >= next_status_ms) {
      print_status("NODE", opt, node, t);
      next_status_ms = t + opt.status_every_ms;
    }
    if (opt.stats_interval_ms > 0 && t >= next_stats_ms) {
      print_stats(t);
      next_stats_ms = t + opt.stats_interval_ms;
    }
    if (opt.run_ms > 0 && t >= opt.run_ms) break;
  }

  // Clean drain: stop the collectors, flush queued frames, report, exit 0.
  dump_trace();
  node.stop();
  print_status("NODE-EXIT", opt, node, elapsed_ms());
  return 0;
}
