// adgc_sim — command-line experiment driver.
//
// Runs a randomized distributed mutator workload on the simulated runtime
// with the full collector stack, then reports convergence and protocol
// metrics. Useful for exploring configurations without writing code.
//
//   adgc_sim [--procs=N] [--seed=S] [--loss=P] [--dup=P]
//            [--steps=K] [--rounds=R] [--settle-ms=T]
//            [--summarizer=bfs|scc] [--no-dcda] [--rmi-edges]
//            [--crash-every=R] [--verbose]
//   adgc_sim --chaos [--seed=S] [--loss=P] [--dup=P]
//   adgc_sim --compare-backoff [--seed=S] [--loss=P]
//
// --crash-every=R crashes and restarts a rotating victim process every R
// workload rounds (with persistent snapshots on, so restarts recover); the
// shadow oracle is resynced to the rolled-back state after each restart.
//
// --chaos runs the composed chaos sweep (loss + duplication + reordering +
// rotating partitions + crash rotation over planted Fig. 3/Fig. 4 cycles);
// --compare-backoff runs the same scenario under sustained loss with the
// adaptive-degradation layer on and off and reports the retry traffic of
// both (the graceful-degradation acceptance numbers).
//
// Exit status: 0 if the run converged (no garbage left, no live object
// lost), 1 otherwise — usable as a soak-test in CI loops.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/log.h"
#include "src/obs/trace.h"
#include "src/sim/chaos_sweep.h"
#include "src/sim/harness.h"
#include "src/sim/workload.h"
#include "tools/cli_flags.h"

using namespace adgc;

namespace {

struct Options {
  std::size_t procs = 4;
  std::uint64_t seed = 1;
  double loss = 0.0;
  double dup = 0.0;
  int steps = 20;
  int rounds = 40;
  SimTime settle_ms = 30'000;
  bool use_scc = true;
  bool dcda = true;
  bool rmi_edges = false;
  int crash_every = 0;  // 0 = no fault injection
  bool batching = true;
  SimTime batch_flush_us = 0;  // 0 = keep the config default
  bool snapshot_pipeline = true;
  SimTime snapshot_pipeline_latency_us = 0;  // 0 = keep the config default
  bool chaos = false;
  std::uint64_t peer_death_timeout_ms = 0;  // --chaos only; 0 = eviction off
  bool compare_backoff = false;
  bool verbose = false;
  std::string obs_dump;  // empty = no trace dump
};

using cli::parse_flag;

// The single source of truth for the workload-mode flags: both the usage
// synopsis and the --help flag table are generated from this.
constexpr cli::FlagSpec kWorkloadFlags[] = {
    {"--procs", "N", "number of simulated processes (default 4, min 2)"},
    {"--seed", "S", "RNG seed; runs are a pure function of it (default 1)"},
    {"--loss", "P", "message-loss probability in [0,1) (default 0)"},
    {"--dup", "P", "message-duplication probability in [0,1) (default 0)"},
    {"--steps", "K", "mutator steps per round (default 20)"},
    {"--rounds", "R", "workload rounds before settling (default 40)"},
    {"--settle-ms", "T", "simulated settle time after mutation stops (default 30000)"},
    {"--summarizer", "X", "snapshot summarizer: bfs or scc (default scc)"},
    {"--no-dcda", nullptr, "disable the cycle detector (acyclic DGC only)"},
    {"--rmi-edges", nullptr,
     "mutate references through RMI side effects; needs --loss=0\n"
     "so the shadow oracle stays exact"},
    {"--crash-every", "R",
     "crash+restart a rotating victim every R rounds, with\n"
     "persistent snapshots so restarts recover; the shadow\n"
     "oracle is resynced to the rolled-back state (default off)"},
    {"--no-batching", nullptr,
     "send every control message (CDM, NewSetStubs, AddScion\n"
     "ack) as its own transport message instead of coalescing\n"
     "per-peer batch frames (default: batching on)"},
    {"--batch-flush-us", "T",
     "batch flush deadline in simulated microseconds -- the\n"
     "most latency batching may add to a control message\n"
     "(default: the config default); ignored under --no-batching"},
    {"--no-snapshot-pipeline", nullptr,
     "publish each periodic snapshot's summary synchronously\n"
     "instead of deferring serialization, persistence and\n"
     "summarization off the mutator path (default: pipeline on)"},
    {"--snapshot-pipeline-latency-us", "T",
     "simulated delay between a pipelined snapshot capture and\n"
     "its summary publish (default: the config default);\n"
     "ignored under --no-snapshot-pipeline"},
    {"--obs-dump", "FILE",
     "write the merged structured-event trace of all processes\n"
     "to FILE in the binary format adgc_trace converts to\n"
     "Chrome trace JSON (docs/OBSERVABILITY.md)"},
    {"--verbose", nullptr, "per-round progress and info-level logs"},
};
constexpr std::size_t kNumWorkloadFlags =
    sizeof(kWorkloadFlags) / sizeof(kWorkloadFlags[0]);

constexpr cli::FlagSpec kChaosFlags[] = {
    {"--seed", "S", ""}, {"--loss", "P", ""}, {"--dup", "P", ""},
    {"--no-batching", nullptr, ""}, {"--no-snapshot-pipeline", nullptr, ""},
    {"--peer-death-timeout-ms", "T", ""},
};
constexpr cli::FlagSpec kBackoffFlags[] = {
    {"--seed", "S", ""}, {"--loss", "P", ""},
};

void print_usage(std::FILE* out, const char* argv0) {
  cli::print_usage_line(out, argv0, "", kWorkloadFlags, kNumWorkloadFlags);
  cli::print_usage_line(out, argv0, "--chaos", kChaosFlags,
                        sizeof(kChaosFlags) / sizeof(kChaosFlags[0]), "       ");
  cli::print_usage_line(out, argv0, "--compare-backoff", kBackoffFlags,
                        sizeof(kBackoffFlags) / sizeof(kBackoffFlags[0]), "       ");
  std::fprintf(out, "       %s --help\n", argv0);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0);
  std::fprintf(stderr, "unknown or invalid flags; see --help for details\n");
  std::exit(2);
}

[[noreturn]] void help(const char* argv0) {
  print_usage(stdout, argv0);
  std::printf(
      "\n"
      "Runs a randomized distributed mutator workload on the simulated runtime\n"
      "with the full collector stack, then reports convergence and protocol\n"
      "metrics. Exit status 0 iff the run converged (no garbage left, no live\n"
      "object lost) -- usable as a soak test in CI loops.\n"
      "\n"
      "workload mode flags (--batch-flush-us default: %llu):\n",
      static_cast<unsigned long long>(ProcessConfig{}.batch_flush_us));
  cli::print_flag_help(stdout, kWorkloadFlags, kNumWorkloadFlags);
  std::printf(
      "\n"
      "alternate modes (exclusive with the workload flags above):\n"
      "  --chaos           composed chaos sweep: loss + duplication + reordering +\n"
      "                    rotating partitions + crash rotation over planted\n"
      "                    Fig. 3 / Fig. 4 cycles; exit 0 iff every planted cycle\n"
      "                    is reclaimed and no live object is lost\n"
      "  --compare-backoff run the sustained-loss scenario with the adaptive\n"
      "                    degradation layer on and off and report the retry\n"
      "                    traffic of both; exit 0 iff adaptive reduced retries\n"
      "\n"
      "Unknown flags are an error (exit 2). For the real-TCP multi-process\n"
      "driver see adgc_node and cluster_harness (docs/DEPLOY.md); for the\n"
      "model-checking schedule explorer see adgc_mc (docs/MODEL_CHECKING.md).\n");
  std::exit(0);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--procs", &v)) {
      opt.procs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--loss", &v)) {
      opt.loss = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--dup", &v)) {
      opt.dup = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--steps", &v)) {
      opt.steps = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--rounds", &v)) {
      opt.rounds = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--settle-ms", &v)) {
      opt.settle_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--summarizer", &v)) {
      if (v == "bfs") {
        opt.use_scc = false;
      } else if (v == "scc") {
        opt.use_scc = true;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--no-dcda", &v)) {
      opt.dcda = false;
    } else if (parse_flag(argv[i], "--crash-every", &v)) {
      opt.crash_every = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--no-batching", &v)) {
      opt.batching = false;
    } else if (parse_flag(argv[i], "--batch-flush-us", &v)) {
      opt.batch_flush_us = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.batch_flush_us == 0) usage(argv[0]);
    } else if (parse_flag(argv[i], "--no-snapshot-pipeline", &v)) {
      opt.snapshot_pipeline = false;
    } else if (parse_flag(argv[i], "--snapshot-pipeline-latency-us", &v)) {
      opt.snapshot_pipeline_latency_us = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.snapshot_pipeline_latency_us == 0) usage(argv[0]);
    } else if (parse_flag(argv[i], "--rmi-edges", &v)) {
      opt.rmi_edges = true;
    } else if (parse_flag(argv[i], "--chaos", &v)) {
      opt.chaos = true;
    } else if (parse_flag(argv[i], "--peer-death-timeout-ms", &v)) {
      opt.peer_death_timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--compare-backoff", &v)) {
      opt.compare_backoff = true;
    } else if (parse_flag(argv[i], "--obs-dump", &v)) {
      opt.obs_dump = v;
      if (opt.obs_dump.empty()) usage(argv[0]);
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      opt.verbose = true;
    } else if (parse_flag(argv[i], "--help", &v) ||
               std::strcmp(argv[i], "-h") == 0) {
      help(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.procs < 2 || opt.steps < 0 || opt.rounds < 0) usage(argv[0]);
  if (opt.rmi_edges && opt.loss > 0) {
    std::fprintf(stderr, "--rmi-edges requires --loss=0 (shadow oracle exactness)\n");
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.verbose) Log::set_level(LogLevel::kInfo);

  if (opt.chaos) {
    sim::ChaosSweepParams cp;
    cp.seed = opt.seed;
    cp.batching = opt.batching;
    cp.snapshot_pipeline = opt.snapshot_pipeline;
    if (opt.loss > 0) cp.loss_probability = opt.loss;
    if (opt.dup > 0) cp.duplicate_probability = opt.dup;
    cp.peer_death_timeout_us = opt.peer_death_timeout_ms * 1000;
    std::printf(
        "chaos sweep: seed=%llu loss=%.2f dup=%.2f slices=%zu crashes=%s "
        "batching=%s pipeline=%s eviction=%s\n",
        static_cast<unsigned long long>(cp.seed), cp.loss_probability,
        cp.duplicate_probability, cp.slices, cp.with_crashes ? "on" : "off",
        cp.batching ? "on" : "off", cp.snapshot_pipeline ? "on" : "off",
        cp.peer_death_timeout_us > 0 ? "on" : "off");
    const sim::ChaosSweepResult res = sim::run_chaos_sweep(cp);
    std::printf("  crashes=%zu recovered=%zu messages_lost=%llu\n", res.crashes,
                res.recovered, static_cast<unsigned long long>(res.messages_lost));
    std::printf("  suspects=%llu cdms_shed=%llu nss_shed=%llu deferred=%llu "
                "abandoned_handshakes=%llu\n",
                static_cast<unsigned long long>(res.suspect_transitions),
                static_cast<unsigned long long>(res.cdms_shed),
                static_cast<unsigned long long>(res.new_set_stubs_shed),
                static_cast<unsigned long long>(res.detections_deferred),
                static_cast<unsigned long long>(res.add_scion_abandoned));
    if (!res.ok()) {
      std::printf("CHAOS FAILED: %s\n", res.detail.c_str());
      return 1;
    }
    std::printf("CHAOS OK: all planted cycles reclaimed, no live object lost.\n");
    return 0;
  }

  if (opt.compare_backoff) {
    const double loss = opt.loss > 0 ? opt.loss : 0.30;
    std::printf("backoff comparison: seed=%llu loss=%.2f\n",
                static_cast<unsigned long long>(opt.seed), loss);
    const sim::BackoffComparison cmp = sim::run_backoff_comparison(opt.seed, loss);
    std::printf("  adaptive: retry_messages=%llu total_messages=%llu\n",
                static_cast<unsigned long long>(cmp.adaptive_retry_messages),
                static_cast<unsigned long long>(cmp.adaptive_total_messages));
    std::printf("  fixed:    retry_messages=%llu total_messages=%llu\n",
                static_cast<unsigned long long>(cmp.fixed_retry_messages),
                static_cast<unsigned long long>(cmp.fixed_total_messages));
    std::printf(cmp.adaptive_reduced()
                    ? "adaptive backoff reduced retry traffic.\n"
                    : "adaptive backoff did NOT reduce retry traffic.\n");
    return cmp.adaptive_reduced() ? 0 : 1;
  }

  RuntimeConfig cfg = sim::fast_config(opt.seed);
  cfg.net.loss_probability = opt.loss;
  cfg.net.duplicate_probability = opt.dup;
  cfg.proc.dcda_enabled = opt.dcda;
  cfg.proc.batching_enabled = opt.batching;
  if (opt.batch_flush_us > 0) cfg.proc.batch_flush_us = opt.batch_flush_us;
  cfg.proc.snapshot_pipeline = opt.snapshot_pipeline;
  if (opt.snapshot_pipeline_latency_us > 0) {
    cfg.proc.snapshot_pipeline_latency_us = opt.snapshot_pipeline_latency_us;
  }
  cfg.proc.summarizer = opt.use_scc ? ProcessConfig::SummarizerKind::kScc
                                    : ProcessConfig::SummarizerKind::kBfs;
  std::filesystem::path crash_dir;
  if (opt.crash_every > 0) {
    crash_dir = std::filesystem::temp_directory_path() /
                ("adgc_sim_crash_" + std::to_string(opt.seed));
    std::filesystem::remove_all(crash_dir);
    cfg.proc.snapshot_dir = crash_dir.string();
  }
  Runtime rt(opt.procs, cfg);

  sim::WorkloadParams wp;
  wp.use_rmi_edges = opt.rmi_edges;
  sim::RandomWorkload workload(rt, wp, opt.seed * 31 + 7);

  std::printf("adgc_sim: %s\n", cfg.describe().c_str());
  std::printf("workload: %d rounds x %d steps, rmi_edges=%s\n", opt.rounds, opt.steps,
              opt.rmi_edges ? "on" : "off");

  ProcessId next_victim = 0;
  for (int round = 0; round < opt.rounds; ++round) {
    workload.steps(static_cast<std::size_t>(opt.steps));
    rt.run_for(15'000);
    if (opt.crash_every > 0 && (round + 1) % opt.crash_every == 0) {
      const ProcessId victim = next_victim;
      next_victim = static_cast<ProcessId>((next_victim + 1) % opt.procs);
      rt.crash(victim);
      rt.run_for(20'000);
      const bool recovered = rt.restart(victim);
      workload.sync_after_restart(victim);
      if (opt.verbose) {
        std::printf("round %d: crashed+restarted P%u (inc %u, %s)\n", round, victim,
                    rt.incarnation(victim), recovered ? "recovered" : "cold start");
      }
    }
    if (auto violation = workload.find_safety_violation()) {
      std::printf("SAFETY VIOLATION at round %d: live %s was collected\n", round,
                  to_string(*violation).c_str());
      return 1;
    }
  }

  std::printf("mutation done; settling for %llu ms (simulated)...\n",
              static_cast<unsigned long long>(opt.settle_ms));
  rt.run_for(opt.settle_ms * 1000);

  const sim::GlobalStats st = sim::global_stats(rt);
  const auto live = workload.shadow().live();
  const Metrics totals = rt.total_metrics();
  std::printf("final: objects=%zu oracle-live=%zu garbage=%zu stubs=%zu scions=%zu\n",
              st.total_objects, live.size(), st.garbage_objects, st.stubs, st.scions);
  std::printf("degradation: abandoned_handshakes=%llu suspects=%llu cdms_shed=%llu "
              "nss_shed=%llu\n",
              static_cast<unsigned long long>(totals.add_scion_abandoned.get()),
              static_cast<unsigned long long>(totals.peer_suspect_transitions.get()),
              static_cast<unsigned long long>(totals.cdms_shed.get()),
              static_cast<unsigned long long>(totals.new_set_stubs_shed.get()));
  std::printf("\nprotocol metrics:\n%s", totals.report("  ").c_str());

  if (!opt.obs_dump.empty()) {
    const std::vector<obs::Event> events = rt.trace_events();
    const std::vector<std::byte> bytes = obs::serialize_trace(events);
    std::ofstream out(opt.obs_dump, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.obs_dump.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("TRACE file=%s events=%zu\n", opt.obs_dump.c_str(), events.size());
  }

  if (!crash_dir.empty()) std::filesystem::remove_all(crash_dir);
  if (!workload.converged()) {
    std::printf("\nNOT CONVERGED (garbage left or live objects missing)\n");
    return 1;
  }
  std::printf("\nCONVERGED: heap == oracle live set on every process.\n");
  return 0;
}
