// cluster_harness — end-to-end multi-process test driver.
//
//   cluster_harness --node-bin=PATH [--nodes=N] [--objs=K] [--no-kill]
//                   [--kill-forever | --zombie] [--peer-death-timeout-ms=T]
//                   [--timeout-ms=T] [--state-dir=DIR] [--seed=S] [--verbose]
//                   [--admin-base-port=P] [--obs-dump=DIR]
//
// Forks N adgc_node processes on localhost, plants the Fig. 3 ring across
// them, drops the anchor root, SIGKILLs node 1 mid-detection and restarts
// it (unless --no-kill), and waits for DCDA to reclaim the cross-process
// cycle. Exit 0 on success, 1 on failure — suitable as a ctest entry.
//
// Eviction legs (both default --peer-death-timeout-ms to 2500 when unset):
//   --kill-forever  SIGKILL node 1 permanently; the survivors must evict it
//                   and drain every stranded stub/scion.
//   --zombie        SIGSTOP node 1, wait for the survivors to evict it and
//                   clean up, SIGCONT it; the stale incarnation must be
//                   NACKed off (exit 3), then respawn and re-integrate.
//
// Observability legs (docs/OBSERVABILITY.md):
//   --admin-base-port=P  node i serves its admin endpoint on P+i; once the
//                        cluster converges, the harness scrapes /metrics and
//                        /healthz from every surviving node and fails unless
//                        the Prometheus exposition parses with non-zero key
//                        counters and >=5 histograms.
//   --obs-dump=DIR       each node writes DIR/node<i>.trace (binary trace,
//                        convertible with adgc_trace) on clean shutdown; the
//                        harness fails if a surviving node leaves none.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>

#include "src/sim/cluster_harness.h"

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s --node-bin=PATH [--nodes=N] [--objs=K] [--no-kill]\n"
               "          [--kill-forever | --zombie] [--peer-death-timeout-ms=T]\n"
               "          [--timeout-ms=T] [--state-dir=DIR] [--seed=S] [--verbose]\n"
               "          [--admin-base-port=P] [--obs-dump=DIR]\n",
               argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  adgc::sim::ClusterHarnessOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else if (parse_flag(argv[i], "--node-bin", &v)) {
      opts.node_bin = v;
    } else if (parse_flag(argv[i], "--nodes", &v)) {
      opts.nodes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--objs", &v)) {
      opts.objs_per_node = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--no-kill", &v)) {
      opts.kill_restart = false;
    } else if (parse_flag(argv[i], "--kill-forever", &v)) {
      opts.kill_forever = true;
    } else if (parse_flag(argv[i], "--zombie", &v)) {
      opts.zombie = true;
    } else if (parse_flag(argv[i], "--peer-death-timeout-ms", &v)) {
      opts.peer_death_timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--timeout-ms", &v)) {
      opts.timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--state-dir", &v)) {
      opts.state_dir = v;
    } else if (parse_flag(argv[i], "--seed", &v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--admin-base-port", &v)) {
      opts.admin_base_port =
          static_cast<std::uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--obs-dump", &v)) {
      opts.obs_dump_dir = v;
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      opts.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0], 2);
    }
  }
  if (opts.node_bin.empty()) usage(argv[0], 2);
  if ((opts.kill_forever || opts.zombie) && opts.peer_death_timeout_ms == 0) {
    // Comfortably above the nodes' collector/status periods, far below the
    // harness timeout.
    opts.peer_death_timeout_ms = 2'500;
  }

  if (opts.state_dir.empty()) {
    // Unique scratch dir per run so parallel ctest invocations never share
    // incarnation files or snapshots.
    std::random_device rd;
    opts.state_dir = (std::filesystem::temp_directory_path() /
                      ("adgc_cluster_" + std::to_string(rd()) + "_" +
                       std::to_string(::getpid())))
                         .string();
  }

  // Honor the soak multiplier the CI nightly uses to widen the cluster.
  if (const char* soak = std::getenv("ADGC_SOAK_MULTIPLIER")) {
    const unsigned long mult = std::strtoul(soak, nullptr, 10);
    if (mult > 1) {
      opts.nodes *= mult;
      opts.timeout_ms *= mult;
    }
  }

  std::printf("cluster_harness: nodes=%zu objs=%zu kill_restart=%d kill_forever=%d "
              "zombie=%d peer_death_timeout_ms=%llu state_dir=%s\n",
              opts.nodes, opts.objs_per_node, opts.kill_restart ? 1 : 0,
              opts.kill_forever ? 1 : 0, opts.zombie ? 1 : 0,
              static_cast<unsigned long long>(opts.peer_death_timeout_ms),
              opts.state_dir.c_str());
  std::fflush(stdout);

  const adgc::sim::ClusterResult res = adgc::sim::run_cluster(opts);
  std::error_code ec;
  std::filesystem::remove_all(opts.state_dir, ec);

  if (!res.ok) {
    std::fprintf(stderr, "cluster_harness: FAIL: %s\n", res.failure.c_str());
    return 1;
  }
  std::printf("cluster_harness: OK elapsed_ms=%llu victim_recovered=%d "
              "victim_evicted=%d zombie_nacked=%d metrics_scraped=%d\n",
              static_cast<unsigned long long>(res.elapsed_ms),
              res.victim_recovered ? 1 : 0, res.victim_evicted ? 1 : 0,
              res.zombie_nacked ? 1 : 0, res.metrics_scraped ? 1 : 0);
  return 0;
}
