// adgc_mc — systematic schedule exploration (model checking) driver.
//
// Explores bounded schedules of a scenario with every nondeterministic
// choice (delivery order, message loss, collector timing, crash points)
// under Explorer control, checking the safety oracle after every decision
// and the liveness/completeness oracles after fault-free schedules settle.
//
// Exit status: 0 = explored clean (or replay matched --expect),
//              1 = violation found (trace printed, saved with --trace-out),
//              2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>

#include "src/common/log.h"
#include "src/mc/explorer.h"
#include "src/mc/shrink.h"
#include "tools/cli_flags.h"

using namespace adgc;

namespace {

constexpr cli::FlagSpec kFlags[] = {
    {"--strategy", "S", "search strategy: dfs (exhaustive bounded depth-first),\n"
                        "delay (delay-bounded dfs; bound = --preemptions), pct\n"
                        "(randomized priorities with --preemptions change points),\n"
                        "replay (re-execute --trace-in) (default dfs)"},
    {"--scenario", "X", "fig1 | fig3 | fig4 | fig5 | race | evict (default fig3)"},
    {"--steps", "N", "max decisions per schedule (default 60)"},
    {"--schedules", "N", "max schedules to explore (default 10000)"},
    {"--preemptions", "N", "delay bound (delay) / priority change points (pct)\n"
                           "(default 3)"},
    {"--seed", "S", "determinism anchor: runtime + pct priorities (default 1)"},
    {"--loss-budget", "N", "message-drop decisions offered per schedule (default 0)"},
    {"--crash-budget", "N", "crash decisions offered per schedule (default 0)"},
    {"--collector-budget", "N", "lgc/snapshot/scan runs per process per schedule\n"
                                "(default 3)"},
    {"--trace-out", "FILE", "write the (shrunk) violating trace here"},
    {"--trace-in", "FILE", "trace to replay (with --strategy=replay)"},
    {"--record", "N", "record mode: explore N schedules and write the N-th\n"
                      "one's trace to --trace-out whether it violates or not\n"
                      "(corpus check-in; exit 1 iff it violates)"},
    {"--expect", "E", "replay expectation: clean | violation (default clean);\n"
                      "exit 0 iff the replay matches"},
    {"--shrink", nullptr, "delta-debug a found violation to a minimal trace"},
    {"--no-liveness", nullptr, "skip the settle + completeness phase (safety only)"},
    {"--unsafe-no-ic", nullptr, "planted bug: run the DCDA with invocation counters\n"
                                "ignored (self-test; violations are expected)"},
    {"--pipeline-latency-us", "T",
     "turn the async snapshot pipeline ON for explored schedules:\n"
     "kSnapshot decisions request a snapshot whose summary\n"
     "publishes via a timer T sim-us later — a pending event the\n"
     "explorer orders like any other, adding the detection-vs-\n"
     "publish race as a choice point (default 0 = synchronous)"},
    {"--time-budget-ms", "T", "wall-clock bound for the exploration (default none)"},
    {"--log", "L", "runtime log level while exploring/replaying:\n"
                   "trace | debug | info | warn (default off)"},
    {"--verbose", nullptr, "print per-violation trace dumps"},
};
constexpr std::size_t kNumFlags = sizeof(kFlags) / sizeof(kFlags[0]);

struct Options {
  std::string strategy = "dfs";
  mc::ExplorerOptions ex;
  std::uint32_t preemptions = 3;
  std::string trace_out;
  std::string trace_in;
  std::uint64_t record = 0;
  bool expect_violation = false;
  bool shrink = false;
  bool verbose = false;
};

void print_usage(std::FILE* out, const char* argv0) {
  cli::print_usage_line(out, argv0, "", kFlags, kNumFlags);
}

[[noreturn]] void usage(const char* argv0, const char* why = nullptr) {
  if (why) std::fprintf(stderr, "%s\n", why);
  print_usage(stderr, argv0);
  std::fprintf(stderr, "see --help for details\n");
  std::exit(2);
}

[[noreturn]] void help(const char* argv0) {
  print_usage(stdout, argv0);
  std::printf(
      "\n"
      "Systematic schedule exploration over the deterministic runtime: the\n"
      "Explorer controls every choice point (message delivery order, loss,\n"
      "LGC/snapshot/scan timing, crash/restart points) and checks the safety\n"
      "oracle after every decision; fault-free schedules also settle and run\n"
      "the liveness/completeness oracles. Violations are emitted as compact\n"
      "binary decision traces that replay deterministically (docs/\n"
      "MODEL_CHECKING.md).\n"
      "\n");
  cli::print_flag_help(stdout, kFlags, kNumFlags);
  std::printf(
      "\nexamples:\n"
      "  %s --strategy=dfs --scenario=fig3 --steps=60 --schedules=10000\n"
      "  %s --strategy=pct --scenario=fig4 --preemptions=3 --seed=7\n"
      "  %s --strategy=replay --trace-in=bug.trace --expect=violation\n",
      argv0, argv0, argv0);
  std::exit(0);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::parse_flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0) {
      help(argv[0]);
    } else if (cli::parse_flag(argv[i], "--strategy", &v)) {
      opt.strategy = v;
    } else if (cli::parse_flag(argv[i], "--scenario", &v)) {
      const auto kind = mc::parse_scenario(v);
      if (!kind) usage(argv[0], "unknown scenario");
      opt.ex.scenario = *kind;
    } else if (cli::parse_flag(argv[i], "--steps", &v)) {
      opt.ex.max_steps = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--schedules", &v)) {
      opt.ex.max_schedules = std::strtoull(v.c_str(), nullptr, 10);
    } else if (cli::parse_flag(argv[i], "--preemptions", &v)) {
      opt.preemptions = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--seed", &v)) {
      opt.ex.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (cli::parse_flag(argv[i], "--loss-budget", &v)) {
      opt.ex.loss_budget = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--crash-budget", &v)) {
      opt.ex.crash_budget = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--collector-budget", &v)) {
      opt.ex.collector_budget =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--trace-out", &v)) {
      opt.trace_out = v;
    } else if (cli::parse_flag(argv[i], "--trace-in", &v)) {
      opt.trace_in = v;
    } else if (cli::parse_flag(argv[i], "--record", &v)) {
      opt.record = std::strtoull(v.c_str(), nullptr, 10);
    } else if (cli::parse_flag(argv[i], "--expect", &v)) {
      if (v == "violation") {
        opt.expect_violation = true;
      } else if (v != "clean") {
        usage(argv[0], "--expect must be clean or violation");
      }
    } else if (cli::parse_flag(argv[i], "--shrink", &v)) {
      opt.shrink = true;
    } else if (cli::parse_flag(argv[i], "--no-liveness", &v)) {
      opt.ex.check_liveness = false;
    } else if (cli::parse_flag(argv[i], "--unsafe-no-ic", &v)) {
      opt.ex.unsafe_no_ic = true;
    } else if (cli::parse_flag(argv[i], "--pipeline-latency-us", &v)) {
      opt.ex.snapshot_pipeline_latency_us =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (cli::parse_flag(argv[i], "--time-budget-ms", &v)) {
      opt.ex.time_budget_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (cli::parse_flag(argv[i], "--log", &v)) {
      if (v == "trace") {
        Log::set_level(LogLevel::kTrace);
      } else if (v == "debug") {
        Log::set_level(LogLevel::kDebug);
      } else if (v == "info") {
        Log::set_level(LogLevel::kInfo);
      } else if (v == "warn") {
        Log::set_level(LogLevel::kWarn);
      } else {
        usage(argv[0], "--log must be trace, debug, info or warn");
      }
    } else if (cli::parse_flag(argv[i], "--verbose", &v)) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (opt.strategy == "replay" && opt.trace_in.empty()) {
    usage(argv[0], "--strategy=replay requires --trace-in");
  }
  if (opt.strategy != "dfs" && opt.strategy != "delay" && opt.strategy != "pct" &&
      opt.strategy != "replay") {
    usage(argv[0], "unknown strategy");
  }
  return opt;
}

int run_replay(const Options& opt) {
  const auto trace = mc::load_trace(opt.trace_in);
  if (!trace) {
    std::fprintf(stderr, "adgc_mc: cannot load trace '%s'\n", opt.trace_in.c_str());
    return 2;
  }
  std::printf("replaying %s", mc::describe(*trace).c_str());
  const mc::ScheduleOutcome out = mc::replay_trace(*trace);
  if (out.violation) {
    std::printf("replay: VIOLATION: %s\n", out.violation->c_str());
  } else {
    std::printf("replay: clean (%zu decisions applied)\n", out.steps);
  }
  const bool matched = out.violation.has_value() == opt.expect_violation;
  std::printf("replay %s expectation (%s)\n", matched ? "matches" : "DOES NOT match",
              opt.expect_violation ? "violation" : "clean");
  return matched ? 0 : 1;
}

int run_record(const Options& opt, mc::ScheduleStrategy& strategy) {
  mc::Explorer explorer(opt.ex);
  mc::ScheduleOutcome out;
  for (std::uint64_t i = 0; i < opt.record; ++i) out = explorer.run_one(strategy);
  out.trace.note = "recorded " + opt.strategy + " schedule #" + std::to_string(opt.record);
  if (out.violation) {
    std::printf("recorded schedule VIOLATES: %s\n", out.violation->c_str());
  } else {
    std::printf("recorded schedule is clean (%zu decisions)\n", out.steps);
  }
  std::printf("%s", mc::describe(out.trace).c_str());
  if (!opt.trace_out.empty()) {
    if (!mc::save_trace(out.trace, opt.trace_out)) {
      std::fprintf(stderr, "adgc_mc: cannot write %s\n", opt.trace_out.c_str());
      return 2;
    }
    std::printf("trace written to %s\n", opt.trace_out.c_str());
  }
  return out.violation ? 1 : 0;
}

int run_explore(const Options& opt) {
  std::unique_ptr<mc::ScheduleStrategy> strategy;
  if (opt.strategy == "dfs") {
    strategy = std::make_unique<mc::DfsStrategy>();
  } else if (opt.strategy == "delay") {
    strategy = std::make_unique<mc::DfsStrategy>(opt.preemptions);
  } else {
    strategy =
        std::make_unique<mc::PctStrategy>(opt.ex.seed, opt.preemptions, opt.ex.max_steps);
  }
  if (opt.record > 0) return run_record(opt, *strategy);

  mc::Explorer explorer(opt.ex);
  std::printf("adgc_mc: strategy=%s scenario=%s steps=%u schedules=%llu seed=%llu "
              "loss_budget=%u crash_budget=%u pipeline_latency_us=%u%s\n",
              opt.strategy.c_str(), mc::scenario_name(opt.ex.scenario), opt.ex.max_steps,
              static_cast<unsigned long long>(opt.ex.max_schedules),
              static_cast<unsigned long long>(opt.ex.seed), opt.ex.loss_budget,
              opt.ex.crash_budget, opt.ex.snapshot_pipeline_latency_us,
              opt.ex.unsafe_no_ic ? " UNSAFE-NO-IC" : "");

  const auto t0 = std::chrono::steady_clock::now();
  mc::ExploreResult res = explorer.explore(*strategy);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  std::printf("explored %llu schedules / %llu decisions in %lld ms%s%s\n",
              static_cast<unsigned long long>(res.schedules),
              static_cast<unsigned long long>(res.total_decisions),
              static_cast<long long>(ms), res.exhausted ? " (search exhausted)" : "",
              res.hit_time_budget ? " (time budget hit)" : "");
  std::printf("protocol activity: detections=%llu cycles_collected=%llu "
              "ic_aborts=%llu deliveries=%llu evictions=%llu\n",
              static_cast<unsigned long long>(res.detections_started),
              static_cast<unsigned long long>(res.cycles_collected),
              static_cast<unsigned long long>(res.detections_aborted_ic),
              static_cast<unsigned long long>(res.messages_delivered),
              static_cast<unsigned long long>(res.peers_evicted));

  if (!res.failure) {
    std::printf("no violation found.\n");
    return 0;
  }

  mc::Trace trace = res.failure->trace;
  trace.note = "found by " + opt.strategy;
  std::printf("VIOLATION: %s\n", res.failure->violation->c_str());
  if (opt.shrink) {
    mc::ShrinkStats st;
    trace = mc::shrink_trace(
        trace, [](const mc::Trace& t) { return mc::replay_trace(t).violation.has_value(); },
        2000, &st);
    trace.note += ", shrunk " + std::to_string(res.failure->trace.decisions.size()) +
                  " -> " + std::to_string(trace.decisions.size()) + " decisions";
    std::printf("shrunk %zu -> %zu decisions (%zu replays)\n",
                res.failure->trace.decisions.size(), trace.decisions.size(), st.attempts);
  }
  if (opt.verbose || opt.shrink) std::printf("%s", mc::describe(trace).c_str());
  if (!opt.trace_out.empty()) {
    if (mc::save_trace(trace, opt.trace_out)) {
      std::printf("trace written to %s\n", opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "adgc_mc: cannot write %s\n", opt.trace_out.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  return opt.strategy == "replay" ? run_replay(opt) : run_explore(opt);
}
