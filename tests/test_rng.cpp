// Unit tests for the deterministic random source.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace adgc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) ++hits[rng.below(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // each bucket near 1000
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 50'000; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / 50'000, 100.0, 5.0);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(19), b(19);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
  // Parent and child streams differ.
  Rng c(19);
  Rng fc = c.fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (fc.next_u64() == c.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace adgc
