// Soak tests: larger, longer randomized runs than test_property_random —
// more processes, more mutation, mixed fault injection, and both
// summarizer families — checking the same two invariants (safety
// continuously, completeness after settling).
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/harness.h"
#include "src/sim/workload.h"

namespace adgc {
namespace {

/// Nightly CI scales the soak up without a rebuild: ADGC_SOAK_MULTIPLIER=N
/// multiplies every run's mutation rounds.
int soak_multiplier() {
  const char* env = std::getenv("ADGC_SOAK_MULTIPLIER");
  if (!env) return 1;
  const int m = std::atoi(env);
  return m > 0 ? m : 1;
}

struct SoakParams {
  std::uint64_t seed;
  std::size_t procs;
  double loss;
  int rounds;
  ProcessConfig::SummarizerKind summarizer;
  bool fifo;
};

class Soak : public ::testing::TestWithParam<SoakParams> {};

TEST_P(Soak, LongRunConverges) {
  const SoakParams p = GetParam();
  RuntimeConfig cfg = sim::fast_config(p.seed);
  cfg.net.loss_probability = p.loss;
  cfg.net.duplicate_probability = p.loss / 2;
  cfg.net.fifo_links = p.fifo;
  cfg.proc.summarizer = p.summarizer;
  Runtime rt(p.procs, cfg);

  sim::WorkloadParams wp;
  wp.initial_objects_per_proc = 8;
  wp.max_objects = 1500;
  sim::RandomWorkload w(rt, wp, p.seed * 104729 + 3);

  const int rounds = p.rounds * soak_multiplier();
  for (int round = 0; round < rounds; ++round) {
    w.steps(30);
    rt.run_for(20'000);
    if (round % 10 == 0) {
      const auto violation = w.find_safety_violation();
      ASSERT_FALSE(violation.has_value())
          << "SAFETY: " << to_string(*violation) << " seed=" << p.seed
          << " round=" << round;
    }
  }

  rt.run_for(p.loss > 0 ? 80'000'000 : 30'000'000);
  const auto violation = w.find_safety_violation();
  ASSERT_FALSE(violation.has_value()) << "SAFETY post-settle";
  EXPECT_TRUE(w.converged()) << "COMPLETENESS seed=" << p.seed;

  // Sanity: the run actually exercised the cyclic machinery.
  const Metrics m = rt.total_metrics();
  EXPECT_GT(m.detections_started.get(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mixed, Soak,
    ::testing::Values(
        SoakParams{31, 8, 0.0, 80, ProcessConfig::SummarizerKind::kScc, false},
        SoakParams{32, 10, 0.05, 60, ProcessConfig::SummarizerKind::kScc, false},
        SoakParams{33, 6, 0.0, 100, ProcessConfig::SummarizerKind::kIncremental, false},
        SoakParams{34, 6, 0.10, 60, ProcessConfig::SummarizerKind::kBfs, true},
        SoakParams{35, 12, 0.0, 50, ProcessConfig::SummarizerKind::kIncremental, true}));

}  // namespace
}  // namespace adgc
