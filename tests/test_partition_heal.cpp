// Partition-heal: a link on the garbage cycle is blocked while detection is
// running. While partitioned, detections must abort cleanly (time out; no
// cycle ever declared, nothing reclaimed); after the partition heals, the
// cycle must be reclaimed. Exercised on both the deterministic simulator and
// the free-running threaded runtime.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/rt/runtime.h"
#include "src/rt/threaded_runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

TEST(PartitionHeal, SimDetectionAbortsCleanlyThenCollects) {
  RuntimeConfig cfg = sim::fast_config(11);
  Runtime rt(4, cfg);
  const sim::Fig3 fig = sim::build_fig3(rt);

  // Safety sentinel straddling the link that will be blocked: rooted L on
  // P2 holds the only reference keeping N on P4 alive.
  const ObjectId L{1, rt.proc(1).create_object()};
  const ObjectId N{3, rt.proc(3).create_object()};
  rt.proc(1).add_root(L.seq);
  rt.link(L, N);

  rt.run_for(400'000);  // fault-free warmup: snapshots everywhere

  // Partition the P2↔P4 link. Every CDM traverse of the Fig. 3 loop must
  // cross it (J_P2 → Q_P4), so no detection launched from here on can
  // complete. Then make the cycle garbage: detections start, run into the
  // partition, and must abort by timeout — nothing else.
  rt.network().set_link_blocked(1, 3, true);
  rt.network().set_link_blocked(3, 1, true);
  rt.proc(fig.A.owner).remove_root(fig.A.seq);
  rt.run_for(2'000'000);

  const Metrics mid = rt.total_metrics();
  EXPECT_GT(mid.detections_started.get(), 0u);
  EXPECT_GT(mid.detections_timed_out.get(), 0u) << "no clean abort observed";
  EXPECT_EQ(mid.detections_cycle_found.get(), 0u)
      << "detection completed across a blocked link";
  // Aborting must not reclaim: the cycle (and the sentinel) are intact.
  EXPECT_TRUE(rt.proc(fig.F.owner).heap().exists(fig.F.seq));
  EXPECT_TRUE(rt.proc(3).heap().exists(N.seq));

  // Heal. Relaunch backoff may defer the next attempt (detection cap is
  // seconds in fast_config), so settle generously.
  rt.network().set_link_blocked(1, 3, false);
  rt.network().set_link_blocked(3, 1, false);
  rt.run_for(15'000'000);

  for (const ObjectId id : {fig.A, fig.B, fig.C, fig.D, fig.F, fig.G, fig.H,
                            fig.J, fig.O, fig.M, fig.K, fig.Q, fig.R, fig.S}) {
    EXPECT_FALSE(rt.proc(id.owner).heap().exists(id.seq))
        << "uncollected after heal: " << to_string(id);
  }
  EXPECT_TRUE(rt.proc(3).heap().exists(N.seq)) << "sentinel lost";
  EXPECT_GE(rt.total_metrics().detections_cycle_found.get(), 1u);
}

void sleep_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

TEST(PartitionHeal, ThreadedDetectionAbortsCleanlyThenCollects) {
  RuntimeConfig cfg;
  cfg.seed = 12;
  cfg.proc.lgc_period_us = 3'000;
  cfg.proc.snapshot_period_us = 7'000;
  cfg.proc.dcda_scan_period_us = 9'000;
  cfg.proc.candidate_quarantine_us = 5'000;
  cfg.proc.scion_pending_grace_us = 50'000;
  cfg.proc.detection_timeout_us = 150'000;
  cfg.proc.add_scion_retry_us = 5'000;
  ThreadedRuntime rt(3, cfg);

  // Ring a(P0)→b(P1)→c(P2)→a behind a rooted anchor at P0 (objects stay
  // rooted during construction; the LGCs are free-running).
  std::vector<ObjectSeq> objs(3);
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) {
      objs[pid] = p.create_object();
      p.add_root(objs[pid]);
    });
  }
  ObjectSeq anchor = 0;
  rt.post_sync(0, [&](Process& p) {
    anchor = p.create_object();
    p.add_root(anchor);
    p.add_local_ref(anchor, objs[0]);
  });
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const ProcessId next = (pid + 1) % 3;
    ExportedRef er;
    rt.post_sync(next, [&](Process& p) { er = p.export_own_object(objs[next], pid); });
    rt.post_sync(pid, [&](Process& p) { p.install_ref(objs[pid], er); });
  }
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) { p.remove_root(objs[pid]); });
  }
  sleep_ms(100);  // construction settles; everything snapshot-covered

  // Partition P1↔P2 (a CDM hop of the ring), then release the ring. Any
  // detection now launched runs into the block and must time out cleanly.
  rt.network().set_link_blocked(1, 2, true);
  rt.network().set_link_blocked(2, 1, true);
  rt.post_sync(0, [&](Process& p) { p.remove_root(anchor); });

  // Wait for at least one clean abort (free-running: poll, don't assume).
  bool timed_out = false;
  for (int i = 0; i < 100 && !timed_out; ++i) {
    sleep_ms(50);
    timed_out = rt.total_metrics().detections_timed_out.get() > 0;
  }
  EXPECT_TRUE(timed_out) << "no detection aborted under partition";
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
  for (ProcessId pid = 0; pid < 3; ++pid) {
    bool alive = false;
    rt.post_sync(pid, [&, pid](Process& p) { alive = p.heap().exists(objs[pid]); });
    EXPECT_TRUE(alive) << "partition abort reclaimed live-looking P" << pid;
  }

  // Heal; the ring must now be reclaimed.
  rt.network().set_link_blocked(1, 2, false);
  rt.network().set_link_blocked(2, 1, false);
  bool collected = false;
  for (int i = 0; i < 200 && !collected; ++i) {
    sleep_ms(50);
    std::size_t total = 0;
    for (ProcessId pid = 0; pid < 3; ++pid) {
      rt.post_sync(pid, [&](Process& p) { total += p.heap().size(); });
    }
    collected = (total == 0);  // anchor was unrooted too: everything goes
  }
  EXPECT_TRUE(collected) << "ring not reclaimed after heal";
  rt.shutdown();
  EXPECT_GE(rt.total_metrics().detections_cycle_found.get(), 1u);
}

}  // namespace
}  // namespace adgc
