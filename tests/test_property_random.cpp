// Property-based tests: the collector's two fundamental properties over
// randomized distributed mutator workloads, swept across seeds, process
// counts, and network fault levels (parameterized gtest).
//
//   SAFETY       — at no point is a (shadow-oracle) live object missing.
//   COMPLETENESS — once mutation stops, the runtime converges to exactly
//                  the live set: every garbage object (acyclic, cyclic or
//                  hybrid) is reclaimed, and stubs/scions drain accordingly.
#include <gtest/gtest.h>

#include <tuple>

#include "src/mc/explorer.h"
#include "src/mc/oracles.h"
#include "src/mc/strategy.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"
#include "src/sim/workload.h"

namespace adgc {
namespace {

struct PropertyParams {
  std::uint64_t seed;
  std::size_t procs;
  double loss;
  int mutation_rounds;
  bool rmi_edges = false;  // create some edges through real invocations
};

class CollectorProperties : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(CollectorProperties, SafetyAndCompleteness) {
  const PropertyParams p = GetParam();
  RuntimeConfig cfg = sim::fast_config(p.seed);
  cfg.net.loss_probability = p.loss;
  cfg.net.duplicate_probability = p.loss / 3;
  Runtime rt(p.procs, cfg);

  sim::WorkloadParams wp;
  wp.initial_objects_per_proc = 6;
  wp.use_rmi_edges = p.rmi_edges;
  sim::RandomWorkload w(rt, wp, p.seed * 7919 + 1);

  // Phase 1: mutate while the collectors run. Safety checked continuously,
  // both against the shadow oracle (expected live set) and — on loss-free
  // runs — with the model checker's structural frontier check (no dangling
  // edge out of the root-reachable region). Duplicated deliveries can
  // legitimately resurrect a stub after its reference was surrendered, so
  // the structural check only applies when the network cannot duplicate.
  for (int round = 0; round < p.mutation_rounds; ++round) {
    w.steps(20);
    rt.run_for(15'000);
    const auto violation = w.find_safety_violation();
    ASSERT_FALSE(violation.has_value())
        << "SAFETY: live " << to_string(*violation) << " collected; seed=" << p.seed
        << " procs=" << p.procs << " loss=" << p.loss << " round=" << round;
    if (p.loss == 0.0) {
      const auto frontier = mc::check_reachable_intact(rt);
      ASSERT_FALSE(frontier.has_value())
          << *frontier << "; seed=" << p.seed << " round=" << round;
    }
  }

  // Phase 2: mutation stops; collectors must converge. Under loss this can
  // take many protocol rounds (timeouts + retries), so be generous.
  const SimTime settle = p.loss > 0 ? 60'000'000 : 20'000'000;
  rt.run_for(settle);

  const auto violation = w.find_safety_violation();
  ASSERT_FALSE(violation.has_value()) << "SAFETY post-settle: " << to_string(*violation);
  if (p.loss == 0.0) {
    const auto frontier = mc::check_reachable_intact(rt);
    ASSERT_FALSE(frontier.has_value()) << *frontier << " (post-settle); seed=" << p.seed;
    const auto garbage = mc::check_no_garbage(rt);
    EXPECT_FALSE(garbage.has_value()) << *garbage << "; seed=" << p.seed;
  }

  const auto live = w.shadow().live();
  std::size_t total = 0;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) total += rt.proc(pid).heap().size();
  EXPECT_EQ(total, live.size())
      << "COMPLETENESS: " << (total - live.size()) << " garbage objects remain; seed="
      << p.seed << " procs=" << p.procs << " loss=" << p.loss;
}

INSTANTIATE_TEST_SUITE_P(
    CleanNetwork, CollectorProperties,
    ::testing::Values(PropertyParams{1, 2, 0.0, 30}, PropertyParams{2, 3, 0.0, 30},
                      PropertyParams{3, 4, 0.0, 40}, PropertyParams{4, 6, 0.0, 40},
                      PropertyParams{5, 8, 0.0, 30}, PropertyParams{6, 3, 0.0, 60},
                      PropertyParams{7, 5, 0.0, 50}, PropertyParams{8, 4, 0.0, 25}));

INSTANTIATE_TEST_SUITE_P(
    LossyNetwork, CollectorProperties,
    ::testing::Values(PropertyParams{11, 3, 0.05, 25}, PropertyParams{12, 4, 0.10, 25},
                      PropertyParams{13, 5, 0.15, 20}, PropertyParams{14, 3, 0.25, 20}));

// Edges created through real RMI (scion-first handshakes, stub installs)
// instead of the direct construction shortcut. Loss-free: the shadow oracle
// requires deterministic delivery of the invocation effects.
INSTANTIATE_TEST_SUITE_P(
    RmiEdges, CollectorProperties,
    ::testing::Values(PropertyParams{21, 3, 0.0, 25, true},
                      PropertyParams{22, 4, 0.0, 30, true},
                      PropertyParams{23, 6, 0.0, 25, true},
                      PropertyParams{24, 4, 0.0, 40, true}));

// A focused adversarial property: randomized *invocation churn* on a fixed
// garbage-to-be cycle while snapshots/detections fire freely. The cycle must
// survive exactly as long as it is invoked from a rooted object, and be
// collected afterwards.
class ChurnRace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnRace, InvocationChurnNeverCausesFalseCollection) {
  const std::uint64_t seed = GetParam();
  Runtime rt(4, sim::fast_config(seed));
  // driver(P0, rooted) → ring head; ring spans P0..P3.
  const sim::Ring ring = sim::build_ring(rt, 4, 2, /*pin_first=*/false);
  const ObjectSeq driver = rt.proc(0).create_object();
  rt.proc(0).add_root(driver);
  const RefId to_head = rt.link(ObjectId{0, driver}, ring.heads[1]);

  Rng rng(seed);
  // Churn: invoke into the ring at random moments; the ring stays live via
  // the driver's reference the whole time.
  for (int i = 0; i < 60; ++i) {
    rt.proc(0).invoke(driver, to_head, InvokeEffect::kTouch);
    rt.run_for(5'000 + rng.below(20'000));
    ASSERT_TRUE(rt.proc(1).heap().exists(ring.heads[1].seq)) << "i=" << i;
  }
  // Release and settle: now it is garbage and must go.
  rt.proc(0).remove_remote_ref(driver, to_head);
  rt.run_for(20'000'000);
  std::size_t total = 0;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) total += rt.proc(pid).heap().size();
  EXPECT_EQ(total, 1u);  // only the driver object remains
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnRace, ::testing::Values(101, 202, 303, 404, 505));

// PCT schedule sweep: the same properties, but over *systematically*
// perturbed schedules instead of the simulator's single random one. Ten
// seeds of randomized-priority exploration on the adversarial scenarios;
// the Explorer checks the shared safety oracle after every decision and
// the completeness oracle after each schedule settles.
class PctSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PctSweep, RandomPrioritySchedulesHoldBothProperties) {
  const std::uint64_t seed = GetParam();
  for (const mc::ScenarioKind scenario :
       {mc::ScenarioKind::kRace, mc::ScenarioKind::kFig3}) {
    mc::ExplorerOptions opts;
    opts.scenario = scenario;
    opts.seed = seed;
    opts.max_steps = 16;
    opts.max_schedules = 60;
    mc::Explorer explorer(opts);
    mc::PctStrategy strategy(seed, /*change_points=*/3, opts.max_steps);
    const mc::ExploreResult res = explorer.explore(strategy);
    EXPECT_FALSE(res.failure.has_value())
        << mc::scenario_name(scenario) << " seed " << seed << ": "
        << *res.failure->violation;
  }
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, PctSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace adgc
