// The real multi-threaded runtime: one OS thread per process, wall-clock
// timers, concurrent mailboxes. Verifies that the collectors deliver the
// same guarantees under true asynchrony (the paper's headline claim).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/rt/threaded_runtime.h"

namespace adgc {
namespace {

RuntimeConfig threaded_config(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  // Millisecond-scale collector periods: tests complete in a second or two.
  cfg.proc.lgc_period_us = 3'000;
  cfg.proc.snapshot_period_us = 7'000;
  cfg.proc.dcda_scan_period_us = 9'000;
  cfg.proc.candidate_quarantine_us = 5'000;
  cfg.proc.scion_pending_grace_us = 50'000;
  cfg.proc.detection_timeout_us = 300'000;
  cfg.proc.add_scion_retry_us = 5'000;
  return cfg;
}

void sleep_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

std::size_t total_objects(ThreadedRuntime& rt) {
  std::size_t total = 0;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    rt.post_sync(pid, [&](Process& p) { total += p.heap().size(); });
  }
  return total;
}

TEST(Threaded, StartStopClean) {
  ThreadedRuntime rt(3, threaded_config(1));
  sleep_ms(50);
  rt.shutdown();
  // LGC ran on every process.
  EXPECT_GE(rt.total_metrics().lgc_runs.get(), 3u);
}

TEST(Threaded, AcyclicCollectionUnderConcurrency) {
  ThreadedRuntime rt(2, threaded_config(2));
  ObjectSeq a = 0, b = 0;
  rt.post_sync(0, [&](Process& p) {
    a = p.create_object();
    p.add_root(a);
  });
  // b is temporarily rooted until the export pins it with a scion — the
  // free-running LGC may otherwise sweep it between the two post_syncs.
  rt.post_sync(1, [&](Process& p) {
    b = p.create_object();
    p.add_root(b);
  });

  // Export b to a (two-step through the actors).
  ExportedRef er;
  rt.post_sync(1, [&](Process& p) { er = p.export_own_object(b, 0); });
  RefId ref = kNoRef;
  rt.post_sync(0, [&](Process& p) { ref = p.install_ref(a, er); });
  rt.post_sync(1, [&](Process& p) { p.remove_root(b); });

  sleep_ms(150);
  bool b_alive = false;
  rt.post_sync(1, [&](Process& p) { b_alive = p.heap().exists(b); });
  EXPECT_TRUE(b_alive) << "scion must pin b";

  rt.post_sync(0, [&](Process& p) { p.remove_remote_ref(a, ref); });
  sleep_ms(400);
  rt.post_sync(1, [&](Process& p) { b_alive = p.heap().exists(b); });
  EXPECT_FALSE(b_alive) << "reference-listing must reclaim b";
  rt.shutdown();
}

TEST(Threaded, DistributedCycleCollected) {
  ThreadedRuntime rt(3, threaded_config(3));
  // Build ring a(P0)→b(P1)→c(P2)→a with a rooted anchor at P0. Objects are
  // temporarily rooted during construction (the LGCs are free-running).
  std::vector<ObjectSeq> objs(3);
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) {
      objs[pid] = p.create_object();
      p.add_root(objs[pid]);
    });
  }
  ObjectSeq anchor = 0;
  rt.post_sync(0, [&](Process& p) {
    anchor = p.create_object();
    p.add_root(anchor);
    p.add_local_ref(anchor, objs[0]);
  });
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const ProcessId next = (pid + 1) % 3;
    ExportedRef er;
    rt.post_sync(next, [&](Process& p) { er = p.export_own_object(objs[next], pid); });
    rt.post_sync(pid, [&](Process& p) { p.install_ref(objs[pid], er); });
  }
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) { p.remove_root(objs[pid]); });
  }

  sleep_ms(200);
  EXPECT_EQ(total_objects(rt), 4u) << "nothing collected while rooted";

  rt.post_sync(0, [&](Process& p) { p.remove_root(anchor); });

  // Poll for convergence (free-running threads; no global clock).
  bool collected = false;
  for (int i = 0; i < 100 && !collected; ++i) {
    sleep_ms(50);
    collected = (total_objects(rt) == 0);
  }
  EXPECT_TRUE(collected) << "distributed cycle not reclaimed under threads";
  EXPECT_GE(rt.total_metrics().detections_cycle_found.get(), 1u);
  rt.shutdown();
}

TEST(Threaded, MutationChurnIsSafe) {
  ThreadedRuntime rt(3, threaded_config(4));
  // A rooted driver at P0 invokes into a 3-process ring continuously while
  // the collectors run; the ring must survive the whole time.
  std::vector<ObjectSeq> objs(3);
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) {
      objs[pid] = p.create_object();
      p.add_root(objs[pid]);  // temporary, for construction
    });
  }
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const ProcessId next = (pid + 1) % 3;
    ExportedRef er;
    rt.post_sync(next, [&](Process& p) { er = p.export_own_object(objs[next], pid); });
    rt.post_sync(pid, [&](Process& p) { p.install_ref(objs[pid], er); });
  }
  ObjectSeq driver = 0;
  RefId to_ring = kNoRef;
  ExportedRef er;
  rt.post_sync(1, [&](Process& p) { er = p.export_own_object(objs[1], 0); });
  rt.post_sync(0, [&](Process& p) {
    driver = p.create_object();
    p.add_root(driver);
    to_ring = p.install_ref(driver, er);
  });
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) { p.remove_root(objs[pid]); });
  }

  for (int i = 0; i < 30; ++i) {
    rt.post_sync(0, [&](Process& p) { p.invoke(driver, to_ring, InvokeEffect::kTouch); });
    sleep_ms(10);
    bool alive = false;
    rt.post_sync(1, [&](Process& p) { alive = p.heap().exists(objs[1]); });
    ASSERT_TRUE(alive) << "iteration " << i;
  }

  // Release: ring becomes garbage and is eventually collected.
  rt.post_sync(0, [&](Process& p) { p.remove_remote_ref(driver, to_ring); });
  bool collected = false;
  for (int i = 0; i < 100 && !collected; ++i) {
    sleep_ms(50);
    collected = (total_objects(rt) == 1);  // only the driver remains
  }
  EXPECT_TRUE(collected);
  rt.shutdown();
}

TEST(Threaded, LossyNetworkStillConverges) {
  RuntimeConfig cfg = threaded_config(5);
  cfg.net.loss_probability = 0.10;
  ThreadedRuntime rt(3, cfg);
  std::vector<ObjectSeq> objs(3);
  // Root the objects during construction so the free-running LGCs cannot
  // reclaim them mid-build; unroot afterwards.
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) {
      objs[pid] = p.create_object();
      p.add_root(objs[pid]);
    });
  }
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const ProcessId next = (pid + 1) % 3;
    ExportedRef er;
    rt.post_sync(next, [&](Process& p) { er = p.export_own_object(objs[next], pid); });
    rt.post_sync(pid, [&](Process& p) { p.install_ref(objs[pid], er); });
  }
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.post_sync(pid, [&, pid](Process& p) { p.remove_root(objs[pid]); });
  }
  // Unrooted ring: pure distributed garbage under 10% loss.
  bool collected = false;
  for (int i = 0; i < 200 && !collected; ++i) {
    sleep_ms(50);
    collected = (total_objects(rt) == 0);
  }
  EXPECT_TRUE(collected);
  rt.shutdown();
  EXPECT_GT(rt.total_metrics().messages_lost.get(), 0u);
}

TEST(Threaded, ShutdownIsIdempotent) {
  ThreadedRuntime rt(2, threaded_config(6));
  rt.shutdown();
  rt.shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace adgc
