// NodeRuntime integration tests: full ADGC Process stacks talking over real
// localhost TCP inside one test binary. Covers acyclic reference-listing
// collection, the deterministic cluster plant, DCDA cycle reclamation
// across sockets, and incarnation recovery through a runtime restart.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "src/rt/node_runtime.h"
#include "src/sim/cluster_plant.h"

namespace adgc {
namespace {

using namespace std::chrono_literals;

RuntimeConfig fast_cfg(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.proc.lgc_period_us = 20'000;
  cfg.proc.snapshot_period_us = 40'000;
  cfg.proc.dcda_scan_period_us = 60'000;
  cfg.proc.candidate_quarantine_us = 30'000;
  cfg.proc.detection_timeout_us = 1'000'000;
  cfg.proc.detection_backoff_cap_us = 500'000;
  cfg.proc.scion_pending_grace_us = 1'000'000;
  return cfg;
}

std::uint16_t reserve_port() {
  Metrics m;
  TcpTransport::Options o;
  o.self = 99;
  TcpTransport probe(o, m);
  probe.start();
  const std::uint16_t port = probe.port();
  probe.stop(0);
  return port;
}

PeerAddr local(std::uint16_t port) { return PeerAddr{"127.0.0.1", port}; }

/// Polls `pred` (executed on the node's loop thread) until true or timeout.
bool eventually(NodeRuntime& node, std::function<bool(Process&)> pred,
                std::chrono::milliseconds timeout = 15'000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    bool ok = false;
    node.post_sync([&](Process& p) { ok = pred(p); });
    if (ok) return true;
    std::this_thread::sleep_for(20ms);
  }
  return false;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("adgc_node_rt_" + std::to_string(::testing::UnitTest::GetInstance()
                                                 ->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(NodeRuntime, AcyclicRemoteReferenceKeepsTargetThenDropCollects) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, local(p0)}, {1, local(p1)}};

  NodeRuntime::Options o0;
  o0.pid = 0;
  o0.cfg = fast_cfg(1);
  o0.listen = "127.0.0.1:" + std::to_string(p0);
  o0.peers = peers;
  NodeRuntime::Options o1 = o0;
  o1.pid = 1;
  o1.cfg = fast_cfg(2);
  o1.listen = "127.0.0.1:" + std::to_string(p1);

  NodeRuntime n0(std::move(o0)), n1(std::move(o1));
  n0.start();
  n1.start();

  // Owner (node 1) exports an object to node 0; node 0 roots a holder
  // object carrying the remote reference.
  ObjectSeq target = kNoObject;
  n1.post_sync([&](Process& p) { target = p.create_object(); });
  ExportedRef exported;
  n1.post_sync([&](Process& p) { exported = p.export_own_object(target, 0); });

  ObjectSeq holder = kNoObject;
  n0.post_sync([&](Process& p) {
    holder = p.create_object();
    p.add_root(holder);
    p.install_ref(holder, exported);
  });

  // The remote reference (scion) must keep the target alive across many
  // LGC+NSS rounds.
  std::this_thread::sleep_for(500ms);
  bool alive = false;
  n1.post_sync([&](Process& p) { alive = p.heap().exists(target); });
  EXPECT_TRUE(alive) << "remotely referenced object was over-collected";

  // Dropping the holder root lets node 0's LGC retire the stub; the next
  // NewSetStubs round retires the scion; node 1's LGC frees the target.
  n0.post_sync([&](Process& p) { p.remove_root(holder); });
  EXPECT_TRUE(eventually(n1, [&](Process& p) { return !p.heap().exists(target); }))
      << "acyclic garbage did not get collected across TCP";

  n0.stop();
  n1.stop();
}

TEST(NodeRuntime, PlantedRingIsReclaimedByDcdaAcrossProcesses) {
  constexpr std::size_t kNodes = 3;
  sim::ClusterPlant plant;
  plant.nodes = kNodes;
  plant.objs_per_node = 2;

  std::uint16_t ports[kNodes];
  std::map<ProcessId, PeerAddr> peers;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ports[i] = reserve_port();
    peers[static_cast<ProcessId>(i)] = local(ports[i]);
  }
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    NodeRuntime::Options o;
    o.pid = static_cast<ProcessId>(i);
    o.cfg = fast_cfg(10 + i);
    o.listen = "127.0.0.1:" + std::to_string(ports[i]);
    o.peers = peers;
    nodes.push_back(std::make_unique<NodeRuntime>(std::move(o)));
    nodes.back()->start();
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    const ProcessId pid = static_cast<ProcessId>(i);
    nodes[i]->post_sync([&](Process& p) { plant.plant_local(p, pid); });
  }

  // Rooted ring: nothing may be collected while the anchor pins it.
  std::this_thread::sleep_for(600ms);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i]->post_sync([&](Process& p) {
      EXPECT_EQ(plant.chain_live(p), plant.objs_per_node) << "node " << i;
      EXPECT_TRUE(plant.sentinel_live(p)) << "node " << i;
    });
  }

  // Cut the anchor: the ring is now a cross-process garbage cycle that only
  // DCDA can find.
  nodes[0]->post_sync([&](Process& p) { plant.drop_anchor_root(p); });
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(eventually(*nodes[i],
                           [&](Process& p) { return plant.chain_live(p) == 0; },
                           30'000ms))
        << "node " << i << " still holds its slice of the garbage ring";
    nodes[i]->post_sync(
        [&](Process& p) { EXPECT_TRUE(plant.sentinel_live(p)) << "node " << i; });
  }
  for (auto& n : nodes) n->stop();
}

TEST(NodeRuntime, IncarnationBumpsAcrossRestartsAndRecoversState) {
  TempDir dir;
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, local(p0)}, {1, local(p1)}};

  auto opts = [&](ProcessId pid, std::uint16_t port) {
    NodeRuntime::Options o;
    o.pid = pid;
    o.cfg = fast_cfg(20 + pid);
    o.listen = "127.0.0.1:" + std::to_string(port);
    o.peers = peers;
    o.state_dir = (dir.path / ("node" + std::to_string(pid))).string();
    return o;
  };

  NodeRuntime peer(opts(0, p0));
  peer.start();
  EXPECT_EQ(peer.incarnation(), 0u);

  ObjectSeq kept = kNoObject;
  {
    NodeRuntime n(opts(1, p1));
    n.start();
    EXPECT_EQ(n.incarnation(), 0u);
    EXPECT_FALSE(n.recovered());
    n.post_sync([&](Process& p) {
      kept = p.create_object();
      p.add_root(kept);
    });
    // Wait for at least one snapshot to hit the store.
    EXPECT_TRUE(eventually(
        n, [](Process& p) { return p.metrics().snapshots_taken.get() >= 1; }));
    n.stop();
  }
  {
    // Same state_dir: the next life must come back under a higher
    // incarnation and resurrect the rooted object from the snapshot.
    NodeRuntime n(opts(1, p1));
    n.start();
    EXPECT_GE(n.incarnation(), 1u);
    EXPECT_TRUE(n.recovered());
    bool alive = false;
    n.post_sync([&](Process& p) { alive = p.heap().exists(kept); });
    EXPECT_TRUE(alive) << "rooted object lost across restart";

    // The peer learns the new incarnation from the hello exchange of any
    // connection. Force one by sending the restarted node a frame.
    Envelope poke;
    poke.src = 0;
    poke.dst = 1;
    poke.src_inc = peer.incarnation();
    poke.dst_inc = kUnknownIncarnation;
    poke.bytes = encode_message(MessagePayload{ReplyMsg{}});
    peer.transport().send(poke);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (peer.transport().last_known_incarnation(1) == kUnknownIncarnation ||
           peer.transport().last_known_incarnation(1) < n.incarnation()) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(20ms);
    }
    EXPECT_EQ(peer.transport().last_known_incarnation(1), n.incarnation());
    n.stop();
  }
  peer.stop();
}

}  // namespace
}  // namespace adgc
