// Unit tests for the CDM algebra, including the exact reductions of the
// paper's §3 walkthrough (steps 1-26) and the §3.1 mutually-linked example.
#include <gtest/gtest.h>

#include "src/dcda/algebra.h"

namespace adgc {
namespace {

AlgebraElem e(std::uint64_t ref, std::uint64_t ic = 0) { return {ref, ic}; }

TEST(AlgebraSet, InsertMaintainsSortedUnique) {
  AlgebraSet s;
  EXPECT_EQ(s.insert(e(5)), AlgebraSet::Insert::kAdded);
  EXPECT_EQ(s.insert(e(1)), AlgebraSet::Insert::kAdded);
  EXPECT_EQ(s.insert(e(3)), AlgebraSet::Insert::kAdded);
  EXPECT_EQ(s.insert(e(3)), AlgebraSet::Insert::kPresent);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.elems()[0].ref, 1u);
  EXPECT_EQ(s.elems()[1].ref, 3u);
  EXPECT_EQ(s.elems()[2].ref, 5u);
}

TEST(AlgebraSet, InsertDetectsIcConflict) {
  AlgebraSet s;
  s.insert(e(7, 1));
  EXPECT_EQ(s.insert(e(7, 2)), AlgebraSet::Insert::kConflict);
  // The original element is untouched.
  EXPECT_EQ(s.find(7)->ic, 1u);
}

TEST(AlgebraSet, ConstructorNormalizes) {
  AlgebraSet s({e(9), e(2), e(9), e(4)});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_TRUE(s.contains(9));
}

TEST(AlgebraMatch, DisjointSetsDontReduce) {
  // Step 6: Matching({{F}→{Q}}) = {{F}→{Q}}, no cycle.
  Algebra a;
  a.source.insert(e(100));  // F_P2
  a.target.insert(e(200));  // Q_P4
  const MatchResult m = match(a);
  EXPECT_FALSE(m.ic_conflict);
  EXPECT_FALSE(m.cycle_found());
  EXPECT_EQ(m.source.size(), 1u);
  EXPECT_EQ(m.target.size(), 1u);
}

TEST(AlgebraMatch, PaperWalkthroughFig3) {
  // Refs: F=1, Q=2, O=3, D=4.
  // Step 13: Matching({{F,Q}→{Q,O}}) = {{F}→{O}}.
  {
    Algebra a;
    a.source = AlgebraSet({e(1), e(2)});
    a.target = AlgebraSet({e(2), e(3)});
    const MatchResult m = match(a);
    EXPECT_FALSE(m.cycle_found());
    ASSERT_EQ(m.source.size(), 1u);
    EXPECT_EQ(m.source.elems()[0].ref, 1u);
    ASSERT_EQ(m.target.size(), 1u);
    EXPECT_EQ(m.target.elems()[0].ref, 3u);
  }
  // Step 19: Matching({{F,Q,O}→{Q,O,D}}) = {{F}→{D}}.
  {
    Algebra a;
    a.source = AlgebraSet({e(1), e(2), e(3)});
    a.target = AlgebraSet({e(2), e(3), e(4)});
    const MatchResult m = match(a);
    EXPECT_FALSE(m.cycle_found());
    EXPECT_EQ(m.source.elems()[0].ref, 1u);
    EXPECT_EQ(m.target.elems()[0].ref, 4u);
  }
  // Step 25: Matching({{F,Q,O,D}→{Q,O,D,F}}) = {{}→{}} — cycle found.
  {
    Algebra a;
    a.source = AlgebraSet({e(1), e(2), e(3), e(4)});
    a.target = AlgebraSet({e(2), e(3), e(4), e(1)});
    const MatchResult m = match(a);
    EXPECT_TRUE(m.cycle_found());
  }
}

TEST(AlgebraMatch, MutualCyclesLeaveDependency) {
  // §3.1 step 10: Matching(Alg_4a) = {{Y_P5}→{}} — unresolved dependency.
  // Refs: F=1, V=2, Y=3, T=4, D=5.
  Algebra a;
  a.source = AlgebraSet({e(1), e(2), e(3), e(4), e(5)});
  a.target = AlgebraSet({e(2), e(4), e(5), e(1)});
  const MatchResult m = match(a);
  EXPECT_FALSE(m.cycle_found());
  ASSERT_EQ(m.source.size(), 1u);
  EXPECT_EQ(m.source.elems()[0].ref, 3u);  // Y_P5
  EXPECT_TRUE(m.target.empty());
}

TEST(AlgebraMatch, IcMismatchAborts) {
  // §3.2 step 7: {{F,x}} vs {{F,x+1}} → abort, no cycle.
  Algebra a;
  a.source = AlgebraSet({e(1, 5)});
  a.target = AlgebraSet({e(1, 6)});
  const MatchResult m = match(a);
  EXPECT_TRUE(m.ic_conflict);
  EXPECT_FALSE(m.cycle_found());
}

TEST(AlgebraMatch, IcEqualCancels) {
  Algebra a;
  a.source = AlgebraSet({e(1, 5)});
  a.target = AlgebraSet({e(1, 5)});
  EXPECT_TRUE(match(a).cycle_found());
}

TEST(AlgebraMatch, EmptyAlgebraIsVacuouslyCycle) {
  // Never produced by the detector (candidate always seeds source), but the
  // algebra itself is total.
  Algebra a;
  EXPECT_TRUE(match(a).cycle_found());
}

TEST(Algebra, EqualityIsStructural) {
  Algebra a, b;
  a.source.insert(e(1, 2));
  a.target.insert(e(3, 4));
  b.source.insert(e(1, 2));
  b.target.insert(e(3, 4));
  EXPECT_EQ(a, b);
  b.target.insert(e(5, 6));
  EXPECT_NE(a, b);
}

TEST(Algebra, MsgRoundTrip) {
  Algebra a;
  a.source = AlgebraSet({e(10, 1), e(20, 2)});
  a.target = AlgebraSet({e(30, 3)});
  CdmMsg msg;
  algebra_to_msg(a, msg);
  const Algebra back = algebra_from_msg(msg);
  EXPECT_EQ(a, back);
}

TEST(Algebra, ToStringRendersBothSets) {
  Algebra a;
  a.source.insert(e(make_ref_id(1, 2), 7));
  const std::string s = a.to_string();
  EXPECT_NE(s.find("ref(1:2)@7"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace
}  // namespace adgc
