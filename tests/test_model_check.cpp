// Model-checking harness: trace codec, strategies, oracles, bounded
// exploration of the paper's scenarios, the planted-bug self-test (search →
// shrink → deterministic replay), and the checked-in counterexample corpus.
//
// Bounds are tier-1 sized; ADGC_SOAK_MULTIPLIER (CI nightly) scales the
// schedule budgets up without changing the assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/mc/explorer.h"
#include "src/mc/oracles.h"
#include "src/mc/shrink.h"
#include "src/sim/harness.h"

namespace adgc::mc {
namespace {

std::uint64_t soak_mult() {
  const char* env = std::getenv("ADGC_SOAK_MULTIPLIER");
  if (!env) return 1;
  const std::uint64_t m = std::strtoull(env, nullptr, 10);
  return m > 0 ? m : 1;
}

// ---------------------------------------------------------------- trace codec

TEST(McTrace, RoundTripsThroughCodec) {
  Trace t;
  t.scenario = "fig3";
  t.seed = 99;
  t.max_steps = 60;
  t.unsafe_no_ic = true;
  t.snapshot_pipeline_latency_us = 250;
  t.note = "hand-made";
  t.decisions = {
      {DecisionKind::kScript, 0, 0, 0},
      {DecisionKind::kDeliver, 1, 2, 3},
      {DecisionKind::kDeliver, kTimerSrc, 0, 0},
      {DecisionKind::kDrop, 2, 0, 9},
      {DecisionKind::kLgc, 0, 0, 0},
      {DecisionKind::kSnapshot, 1, 0, 0},
      {DecisionKind::kScan, 2, 0, 0},
      {DecisionKind::kCrash, 3, 0, 0},
      {DecisionKind::kRestart, 3, 0, 0},
  };
  const std::vector<std::byte> bytes = encode_trace(t);
  const Trace back = decode_trace(bytes);
  EXPECT_EQ(back, t);
}

TEST(McTrace, DecodesVersion1WithPipelineOff) {
  // A v1 trace (recorded before the pipeline latency field existed) must
  // decode with snapshot_pipeline_latency_us = 0 — the semantics it was
  // recorded under.
  ByteWriter w;
  w.u32(0x4D435452);  // 'MCTR'
  w.u16(1);
  w.str("fig3");
  w.u64(7);
  w.u32(20);
  w.boolean(false);
  w.str("legacy");
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(DecisionKind::kLgc));
  w.u32(0);
  w.u32(0);
  w.u32(0);
  const Trace t = decode_trace(w.take());
  EXPECT_EQ(t.scenario, "fig3");
  EXPECT_EQ(t.seed, 7u);
  EXPECT_EQ(t.snapshot_pipeline_latency_us, 0u);
  ASSERT_EQ(t.decisions.size(), 1u);
  EXPECT_EQ(t.decisions[0].kind, DecisionKind::kLgc);
}

TEST(McTrace, RejectsCorruptInput) {
  Trace t;
  t.scenario = "race";
  t.decisions = {{DecisionKind::kDeliver, 0, 1, 2}};
  std::vector<std::byte> bytes = encode_trace(t);

  std::vector<std::byte> bad_magic = bytes;
  bad_magic[0] ^= std::byte{0xff};
  EXPECT_THROW(decode_trace(bad_magic), DecodeError);

  std::vector<std::byte> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW(decode_trace(truncated), DecodeError);

  std::vector<std::byte> bad_kind = bytes;
  bad_kind[bytes.size() - 13] = std::byte{0x77};  // the decision's kind byte
  EXPECT_THROW(decode_trace(bad_kind), DecodeError);

  EXPECT_THROW(decode_trace(std::span<const std::byte>{}), DecodeError);
}

TEST(McTrace, SaveLoadFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "adgc_mc_trace_test.trace";
  Trace t;
  t.scenario = "fig4";
  t.max_steps = 12;
  t.decisions = {{DecisionKind::kLgc, 1, 0, 0}, {DecisionKind::kScan, 1, 0, 0}};
  ASSERT_TRUE(save_trace(t, path.string()));
  const auto back = load_trace(path.string());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  std::filesystem::remove(path);
  EXPECT_FALSE(load_trace(path.string()).has_value());
}

// ---------------------------------------------------------------- oracles

TEST(McOracles, CleanWorldPasses) {
  Runtime rt(2, sim::manual_config(7));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.link(a, b);
  EXPECT_FALSE(check_reachable_intact(rt).has_value());
  EXPECT_FALSE(check_no_garbage(rt).has_value());
  EXPECT_FALSE(check_objects_exist(rt, {a, b}).has_value());
}

TEST(McOracles, DetectsCollectedLiveObject) {
  Runtime rt(2, sim::manual_config(7));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.link(a, b);
  // Simulate a false collection: the remotely-held target vanishes.
  rt.proc(1).heap().remove(b.seq);
  const auto violation = check_reachable_intact(rt);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("SAFETY"), std::string::npos);
  EXPECT_TRUE(check_objects_exist(rt, {b}).has_value());
}

TEST(McOracles, DetectsLeftoverGarbage) {
  Runtime rt(2, sim::manual_config(7));
  const ObjectId a{0, rt.proc(0).create_object()};
  (void)a;  // unrooted: garbage from birth
  const auto violation = check_no_garbage(rt);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("LIVENESS"), std::string::npos);
}

// ---------------------------------------------------------------- exploration

TEST(McExplore, DfsFig3BoundedIsViolationFree) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kFig3;
  opts.max_steps = 14;
  opts.max_schedules = 150 * soak_mult();
  DfsStrategy dfs;
  Explorer ex(opts);
  const ExploreResult res = ex.explore(dfs);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
  EXPECT_GT(res.schedules, 0u);
  EXPECT_GT(res.cycles_collected, 0u) << "search never exercised the DCDA";
}

TEST(McExplore, DfsFig1BoundedIsViolationFree) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kFig1;
  opts.max_steps = 12;
  opts.max_schedules = 100 * soak_mult();
  DfsStrategy dfs;
  Explorer ex(opts);
  const ExploreResult res = ex.explore(dfs);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
}

TEST(McExplore, DelayBoundedDfsRaceIsViolationFree) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kRace;
  opts.max_steps = 16;
  opts.max_schedules = 200 * soak_mult();
  DfsStrategy delay_bounded(/*delay_bound=*/2);
  Explorer ex(opts);
  const ExploreResult res = ex.explore(delay_bounded);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
  // With the counters on, the Fig. 2 race must be caught by rule 3 in at
  // least one explored schedule.
  EXPECT_GT(res.detections_aborted_ic + res.cycles_collected, 0u);
}

TEST(McExplore, PctFig4SeedsAreViolationFree) {
  for (std::uint64_t seed : {11ull, 12ull}) {
    ExplorerOptions opts;
    opts.scenario = ScenarioKind::kFig4;
    opts.seed = seed;
    opts.max_steps = 30;
    opts.max_schedules = 40 * soak_mult();
    PctStrategy pct(seed, /*change_points=*/3, opts.max_steps);
    Explorer ex(opts);
    const ExploreResult res = ex.explore(pct);
    EXPECT_FALSE(res.failure.has_value())
        << "seed " << seed << ": " << res.failure->violation.value_or("") << "\n"
        << describe(res.failure->trace);
  }
}

TEST(McExplore, PctFig5SeedsAreViolationFree) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    ExplorerOptions opts;
    opts.scenario = ScenarioKind::kFig5;
    opts.seed = seed;
    opts.max_steps = 30;
    opts.max_schedules = 40 * soak_mult();
    PctStrategy pct(seed, /*change_points=*/3, opts.max_steps);
    Explorer ex(opts);
    const ExploreResult res = ex.explore(pct);
    EXPECT_FALSE(res.failure.has_value())
        << "seed " << seed << ": " << res.failure->violation.value_or("") << "\n"
        << describe(res.failure->trace);
  }
}

TEST(McExplore, LossBudgetSafetyHolds) {
  // One message drop allowed anywhere: safety must hold on every schedule
  // (liveness is not checked on faulted schedules — a dropped invoke may
  // legitimately leave garbage pinned by a pending scion).
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kRace;
  opts.max_steps = 14;
  opts.max_schedules = 200 * soak_mult();
  opts.loss_budget = 1;
  DfsStrategy dfs;
  Explorer ex(opts);
  const ExploreResult res = ex.explore(dfs);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
}

TEST(McExplore, CrashBudgetSafetyHolds) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kFig3;
  opts.max_steps = 12;
  opts.max_schedules = 120 * soak_mult();
  opts.crash_budget = 1;
  PctStrategy pct(5, 2, opts.max_steps);
  Explorer ex(opts);
  const ExploreResult res = ex.explore(pct);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
}

TEST(McExplore, DfsIsDeterministic) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kRace;
  opts.max_steps = 10;
  opts.max_schedules = 60;
  auto run = [&] {
    DfsStrategy dfs;
    Explorer ex(opts);
    return ex.explore(dfs);
  };
  const ExploreResult a = run();
  const ExploreResult b = run();
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.total_decisions, b.total_decisions);
  EXPECT_EQ(a.detections_started, b.detections_started);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

// With the pipeline on, a kSnapshot decision only requests the snapshot;
// the summary publish is a pending timer the explorer orders against
// everything else — detections race summary publication as a first-class
// choice point. Safety and (fault-free) completeness must hold across the
// enlarged schedule space.
TEST(McExplore, PublishRaceDfsIsViolationFree) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kRace;
  opts.max_steps = 16;
  opts.max_schedules = 200 * soak_mult();
  opts.snapshot_pipeline_latency_us = 50;
  DfsStrategy dfs;
  Explorer ex(opts);
  const ExploreResult res = ex.explore(dfs);
  EXPECT_FALSE(res.failure.has_value())
      << res.failure->violation.value_or("") << "\n"
      << describe(res.failure->trace);
  EXPECT_GT(res.schedules, 0u);
}

TEST(McExplore, PublishRaceTraceReplaysIdentically) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kFig3;
  opts.max_steps = 14;
  opts.snapshot_pipeline_latency_us = 100;
  PctStrategy pct(31, /*change_points=*/3, opts.max_steps);
  Explorer ex(opts);
  const ScheduleOutcome out = ex.run_one(pct);
  ASSERT_FALSE(out.violation.has_value()) << *out.violation;
  // The latency knob travels in the trace header, so the schedule replays
  // under the same pipeline semantics it was recorded under.
  EXPECT_EQ(out.trace.snapshot_pipeline_latency_us, 100u);
  const Trace decoded = decode_trace(encode_trace(out.trace));
  EXPECT_EQ(decoded, out.trace);
  const ScheduleOutcome replayed = replay_trace(decoded);
  EXPECT_FALSE(replayed.violation.has_value()) << *replayed.violation;
  EXPECT_EQ(replayed.trace.decisions, out.trace.decisions);
}

// ------------------------------------------------------- planted-bug self-test

// The harness must be able to FIND a real protocol bug: with invocation
// counters disabled (the planted bug), the Fig. 2 race yields a false cycle
// and the safety oracle fires; the trace shrinks to a minimal counterexample
// that replays deterministically — and replays CLEAN once the counters are
// back on, with the race caught by rule 3 instead.
TEST(McSelfTest, PlantedBugIsFoundShrunkAndReplayable) {
  ExplorerOptions opts;
  opts.scenario = ScenarioKind::kRace;
  opts.max_steps = 20;
  opts.max_schedules = 3000;
  opts.unsafe_no_ic = true;
  DfsStrategy dfs;
  Explorer ex(opts);
  const ExploreResult res = ex.explore(dfs);
  ASSERT_TRUE(res.failure.has_value())
      << "planted bug not found in " << res.schedules << " schedules";
  ASSERT_TRUE(res.failure->violation.has_value());
  EXPECT_NE(res.failure->violation->find("SAFETY"), std::string::npos);

  // Shrink to a minimal counterexample.
  ShrinkStats st;
  const Trace minimal = shrink_trace(
      res.failure->trace,
      [](const Trace& t) { return replay_trace(t).violation.has_value(); }, 2000, &st);
  EXPECT_LE(minimal.decisions.size(), 20u) << describe(minimal);
  EXPECT_LE(minimal.decisions.size(), res.failure->trace.decisions.size());
  EXPECT_GT(st.attempts, 0u);

  // Deterministic replay: twice, same violation.
  const ScheduleOutcome r1 = replay_trace(minimal);
  const ScheduleOutcome r2 = replay_trace(minimal);
  ASSERT_TRUE(r1.violation.has_value()) << describe(minimal);
  ASSERT_TRUE(r2.violation.has_value());
  EXPECT_EQ(*r1.violation, *r2.violation);
  EXPECT_EQ(r1.trace, r2.trace);

  // Same schedule with the counters back on: the protocol defends itself —
  // no violation, and the race is rejected by an IC abort.
  Trace fixed = minimal;
  fixed.unsafe_no_ic = false;
  const ScheduleOutcome guarded = replay_trace(fixed);
  EXPECT_FALSE(guarded.violation.has_value())
      << "counters on, still violated: " << *guarded.violation;
  EXPECT_GE(guarded.metrics.detections_aborted_ic.get(), 1u)
      << "expected the planted race to be caught by rule 3";
}

// ---------------------------------------------------------------- corpus

// Checked-in regression corpus: recorded minimal traces replay with the
// outcome their header declares (unsafe_no_ic traces must still violate,
// clean traces must stay clean).
TEST(McCorpus, RecordedTracesReplayAsRecorded) {
  const std::filesystem::path dir = ADGC_MC_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u) << "corpus too small";
  for (const auto& file : files) {
    const auto trace = load_trace(file.string());
    ASSERT_TRUE(trace.has_value()) << file;
    const ScheduleOutcome out = replay_trace(*trace);
    if (trace->unsafe_no_ic) {
      EXPECT_TRUE(out.violation.has_value())
          << file << ": planted-bug trace no longer reproduces\n"
          << describe(*trace);
    } else {
      EXPECT_FALSE(out.violation.has_value())
          << file << ": " << out.violation.value_or("") << "\n" << describe(*trace);
    }
  }
}

}  // namespace
}  // namespace adgc::mc
