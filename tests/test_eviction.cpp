// Permanent-failure eviction tests.
//
// The fault model extension (docs/FAULT_MODEL.md): sustained suspicion past
// `peer_death_timeout` commits a peer dead locally — every scion it held is
// dropped, every stub toward it retired, and an incarnation tombstone
// rejects its stale traffic with an Evicted NACK until a strictly newer
// incarnation shows up. The properties checked here:
//   * tombstones record the highest evicted incarnation and outlive the
//     peer's health slot; idle slots are pruned, suspected ones retained;
//   * the sticky suspected count falls again when a peer recovers;
//   * evict_peer() purges stubs, scions and the health slot in one step,
//     and the stranded garbage it unpins is reclaimed by the next LGC;
//   * a zombie (evicted but still running) is NACKed into self_evicted and
//     a fresh incarnation is readmitted and fully functional;
//   * a silent dead peer is evicted automatically after the timeout;
//   * the multi-seed ring sweep reclaims every stranded stub/scion in
//     bounded time without touching live sentinels;
//   * the model checker finds no safety violation in the evict scenario's
//     schedule space while actually exercising evictions.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/common/metrics.h"
#include "src/mc/explorer.h"
#include "src/mc/strategy.h"
#include "src/net/peer_health.h"
#include "src/sim/eviction_sweep.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

std::string snap_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("adgc_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

class TombstoneTest : public ::testing::Test {
 protected:
  ProcessConfig cfg;
  Metrics metrics;
  PeerHealthTracker tracker{cfg, metrics};
};

TEST_F(TombstoneTest, KeepsHighestIncarnationAndOutlivesSlot) {
  tracker.on_heard(1, 100);
  tracker.record_eviction(1, 3);
  ASSERT_TRUE(tracker.evicted_incarnation(1).has_value());
  EXPECT_EQ(*tracker.evicted_incarnation(1), 3u);

  // Dropping the health slot must not drop the tombstone: the slot is
  // bookkeeping, the tombstone is a safety commitment.
  tracker.erase_peer(1);
  EXPECT_FALSE(tracker.known_peers().contains(1));
  ASSERT_TRUE(tracker.evicted_incarnation(1).has_value());

  tracker.record_eviction(1, 2);  // stale re-eviction: ignored
  EXPECT_EQ(*tracker.evicted_incarnation(1), 3u);
  tracker.record_eviction(1, 5);
  EXPECT_EQ(*tracker.evicted_incarnation(1), 5u);

  tracker.clear_tombstone(1);
  EXPECT_FALSE(tracker.evicted_incarnation(1).has_value());
}

TEST_F(TombstoneTest, SuspectedCountFallsOnRecovery) {
  for (std::uint32_t i = 0; i < cfg.suspect_after_failures; ++i) {
    tracker.on_timeout(1, 100 + i);
  }
  ASSERT_TRUE(tracker.suspected(1, 200));
  EXPECT_EQ(tracker.suspected_count(), 1u);
  EXPECT_EQ(tracker.suspected_since(1), 200u);

  // Any sign of life clears the sticky flag immediately — no re-query of
  // suspected() needed for the count (and the death-timeout clock) to fall.
  tracker.on_heard(1, 300);
  EXPECT_EQ(tracker.suspected_count(), 0u);
  EXPECT_EQ(tracker.suspected_since(1), 0u);
}

TEST_F(TombstoneTest, IdleSlotsPrunedSuspectedRetained) {
  tracker.on_send(1, 1000);
  tracker.on_send(2, 1000);
  for (std::uint32_t i = 0; i < cfg.suspect_after_failures; ++i) {
    tracker.on_timeout(2, 1100 + i);
  }
  ASSERT_TRUE(tracker.suspected(2, 1200));
  ASSERT_EQ(tracker.size(), 2u);

  // Peer 1 has been idle for far longer than the bound; peer 2 is just as
  // idle but suspected — a suspected slot is evidence, not garbage.
  EXPECT_EQ(tracker.prune_idle(10'000'000, 1'000'000), 1u);
  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_TRUE(tracker.known_peers().contains(2));
}

/// Rooted holder at P0 with a remote reference to an unrooted target at P1.
struct LiveRef {
  ObjectId holder_obj;
  ObjectId target_obj;
  RefId ref = kNoRef;
};

LiveRef build_live_ref(Runtime& rt, ProcessId holder, ProcessId owner) {
  LiveRef lr;
  lr.holder_obj = ObjectId{holder, rt.proc(holder).create_object()};
  lr.target_obj = ObjectId{owner, rt.proc(owner).create_object()};
  rt.proc(holder).add_root(lr.holder_obj.seq);
  lr.ref = rt.link(lr.holder_obj, lr.target_obj);
  return lr;
}

TEST(Eviction, EvictPurgesBothDirectionsAndUnpinsGarbage) {
  RuntimeConfig cfg = sim::fast_config(11);
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt, 0, 1);
  rt.run_for(300'000);
  ASSERT_TRUE(rt.proc(0).stubs().contains(lr.ref));
  ASSERT_TRUE(rt.proc(1).scions().contains(lr.ref));

  // Holder side: evicting the owner retires the stub and tombstones it.
  rt.proc(0).evict_peer(1);
  EXPECT_FALSE(rt.proc(0).stubs().contains(lr.ref));
  EXPECT_TRUE(rt.proc(0).peer_health().evicted_incarnation(1).has_value());
  EXPECT_EQ(rt.proc(0).metrics().peers_evicted.get(), 1u);
  EXPECT_GE(rt.proc(0).metrics().eviction_stubs_retired.get(), 1u);
  EXPECT_FALSE(rt.proc(0).peer_health().known_peers().contains(1));

  // Owner side: evicting the holder drops its scion, leaving the unrooted
  // target to the next LGC — the stranded garbage is actually reclaimed.
  rt.proc(1).evict_peer(0);
  EXPECT_FALSE(rt.proc(1).scions().contains(lr.ref));
  EXPECT_GE(rt.proc(1).metrics().eviction_scions_dropped.get(), 1u);
  rt.run_for(500'000);
  EXPECT_FALSE(rt.proc(1).heap().exists(lr.target_obj.seq))
      << "dropping the evicted holder's scion must unpin the target";
}

TEST(Eviction, ZombieIsNackedAndFreshIncarnationReadmitted) {
  RuntimeConfig cfg = sim::fast_config(12);
  cfg.proc.snapshot_dir = snap_dir("evict_readmit");
  Runtime rt(2, cfg);
  // P1 roots H -> X owned by P0; X is also rooted at P0 so eviction drops
  // only the scion, not the object (a false positive must cost the evicted
  // peer its incarnation, never the owner its live data).
  const LiveRef lr = build_live_ref(rt, 1, 0);
  rt.proc(0).add_root(lr.target_obj.seq);
  rt.run_for(500'000);  // handshake done, snapshots durable

  rt.proc(0).evict_peer(1);
  EXPECT_FALSE(rt.proc(1).self_evicted());

  // The zombie keeps talking (periodic NSS, plus an explicit invoke): every
  // message is rejected and the NACK tells it to restart.
  rt.proc(1).invoke(lr.holder_obj.seq, lr.ref, InvokeEffect::kTouch);
  rt.run_for(400'000);
  EXPECT_TRUE(rt.proc(1).self_evicted());
  EXPECT_GE(rt.proc(0).metrics().messages_rejected_evicted.get(), 1u);
  EXPECT_GE(rt.proc(0).metrics().eviction_nacks_sent.get(), 1u);
  EXPECT_GE(rt.proc(1).metrics().eviction_nacks_received.get(), 1u);
  EXPECT_TRUE(rt.proc(0).peer_health().evicted_incarnation(1).has_value());

  // Restart under a fresh incarnation: its first message clears the
  // tombstone and the pair is fully functional again.
  rt.crash(1);
  ASSERT_TRUE(rt.restart(1));
  rt.run_for(1'000'000);
  EXPECT_FALSE(rt.proc(1).self_evicted());
  EXPECT_FALSE(rt.proc(0).peer_health().evicted_incarnation(1).has_value())
      << "a strictly newer incarnation must be readmitted";

  const LiveRef fresh = build_live_ref(rt, 1, 0);
  const auto received_before = rt.proc(0).metrics().invocations_received.get();
  rt.proc(1).invoke(fresh.holder_obj.seq, fresh.ref, InvokeEffect::kTouch);
  rt.run_for(200'000);
  EXPECT_GT(rt.proc(0).metrics().invocations_received.get(), received_before);
}

TEST(Eviction, SilentDeadPeerEvictedAfterTimeout) {
  RuntimeConfig cfg = sim::fast_config(21);
  cfg.proc.peer_death_timeout_us = 400'000;
  Runtime rt(2, cfg);
  // Both directions: P0 holds a stub toward P1 AND a scion held by P1, so
  // the crash strands state on both tables of the survivor.
  const LiveRef out = build_live_ref(rt, 0, 1);
  const LiveRef in = build_live_ref(rt, 1, 0);
  rt.run_for(400'000);
  ASSERT_TRUE(rt.proc(0).stubs().contains(out.ref));
  ASSERT_TRUE(rt.proc(0).scions().contains(in.ref));

  rt.crash(1);  // forever
  rt.run_for(3'000'000);

  EXPECT_GE(rt.proc(0).metrics().peers_evicted.get(), 1u);
  EXPECT_TRUE(rt.proc(0).peer_health().evicted_incarnation(1).has_value());
  EXPECT_FALSE(rt.proc(0).stubs().contains(out.ref))
      << "stub toward the dead peer never retired";
  EXPECT_FALSE(rt.proc(0).scions().contains(in.ref))
      << "scion held by the dead peer never dropped";
  EXPECT_FALSE(rt.proc(0).heap().exists(in.target_obj.seq))
      << "object kept alive only by the dead peer's scion never reclaimed";
  // The eviction also released the victim's health slot (gauge falls to 0).
  EXPECT_EQ(rt.proc(0).metrics().peer_health_slots.get(), 0u);
}

class EvictionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvictionSweep, StrandedStateReclaimedWithinBound) {
  sim::EvictionSweepParams p;
  p.seed = GetParam();
  const sim::EvictionSweepResult res = sim::run_eviction_sweep(p);
  EXPECT_TRUE(res.ok()) << "seed=" << p.seed << ": " << res.detail;
  EXPECT_GE(res.peers_evicted, 1u);
  EXPECT_GE(res.eviction_stubs_retired + res.eviction_scions_dropped, 1u);
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, EvictionSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// Exhaustive delay-bounded search over the armed-eviction scenario: every
// schedule deviating from the default order by at most the bound is run —
// that envelope covers all interleavings of the NssSolicit probes, the
// holder's (possibly empty) NewSetStubs answers, script invokes and
// collector runs. The full eviction escalation (arm watch → solicit →
// strike → convict, four LGC decisions spaced by clock-advancing
// deliveries) costs more deviation than the bound, so eviction commits are
// asserted by the randomized deep search below; here the value is the
// exhaustiveness: the search must complete the whole bounded tree without
// a safety violation.
TEST(EvictionMc, DelayBoundedSearchIsExhaustivelySafe) {
  mc::ExplorerOptions opts;
  opts.scenario = mc::ScenarioKind::kEvict;
  opts.seed = 1;
  opts.max_steps = 20;
  opts.max_schedules = 15'000;
  opts.collector_budget = 6;
  mc::Explorer explorer(opts);
  mc::DfsStrategy dfs(/*delay_bound=*/4);
  const mc::ExploreResult res = explorer.explore(dfs);
  EXPECT_FALSE(res.failure.has_value())
      << "violation: " << *res.failure->violation;
  EXPECT_TRUE(dfs.exhausted()) << "bound not fully enumerated; raise max_schedules";
}

// Randomized deep schedules: PCT reaches past the delay bound and must both
// commit evictions (a sweep that never evicts is not testing the subsystem)
// and deliver pre-eviction traffic after the tombstone is in place — the
// Evicted-NACK path — without ever tripping the safety oracle.
TEST(EvictionMc, RandomizedSchedulesCommitEvictionsSafely) {
  mc::ExplorerOptions opts;
  opts.scenario = mc::ScenarioKind::kEvict;
  opts.seed = 7;
  opts.max_steps = 50;
  opts.max_schedules = 400;
  opts.collector_budget = 8;
  mc::Explorer explorer(opts);
  mc::PctStrategy pct(opts.seed, /*change_points=*/3, opts.max_steps);
  const mc::ExploreResult res = explorer.explore(pct);
  EXPECT_FALSE(res.failure.has_value())
      << "violation: " << *res.failure->violation;
  EXPECT_GT(res.peers_evicted, 0u) << "the search never exercised an eviction";
}

}  // namespace
}  // namespace adgc
