// Tests for the global-trace baseline collector ("GC the world"):
// correctness on the paper's shapes, the conservative mutation guards, and
// its characteristic weakness — one unreachable member stalls the epoch.
#include <gtest/gtest.h>

#include "src/baseline/global_trace.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

std::vector<ProcessId> all_members(const Runtime& rt) {
  std::vector<ProcessId> m;
  for (ProcessId pid = 0; pid < rt.size(); ++pid) m.push_back(pid);
  return m;
}

TEST(GlobalTrace, CollectsDistributedCycle) {
  Runtime rt(4, sim::manual_config(61));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);

  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  // All four ring scions die at once (the hallmark of a global trace).
  EXPECT_EQ(rt.total_metrics().gt_scions_deleted.get(), 4u);

  sim::settle_manual(rt, 6);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(GlobalTrace, KeepsLiveObjects) {
  Runtime rt(4, sim::manual_config(62));
  const sim::Fig3 fig = sim::build_fig3(rt);  // A rooted
  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  EXPECT_EQ(rt.total_metrics().gt_scions_deleted.get(), 0u);
  sim::settle_manual(rt, 4);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 14u);
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.F.seq));
}

TEST(GlobalTrace, CollectsMutualCyclesInOneEpoch) {
  Runtime rt(6, sim::manual_config(63));
  sim::build_fig4(rt);  // garbage from the start
  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  EXPECT_EQ(rt.total_metrics().gt_scions_deleted.get(), 7u);
  sim::settle_manual(rt, 6);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(GlobalTrace, MixedLiveAndGarbage) {
  Runtime rt(4, sim::manual_config(64));
  const sim::Fig1 live = sim::build_fig1(rt, /*pin_w=*/true);   // cycle kept by w
  // Plus a second, unreachable cycle between P1 and P2.
  const ObjectId g1{0, rt.proc(0).create_object()};
  const ObjectId g2{1, rt.proc(1).create_object()};
  rt.link(g1, g2);
  rt.link(g2, g1);

  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  sim::settle_manual(rt, 6);
  EXPECT_TRUE(rt.proc(0).heap().exists(live.x.seq));
  EXPECT_FALSE(rt.proc(0).heap().exists(g1.seq));
  EXPECT_FALSE(rt.proc(1).heap().exists(g2.seq));
}

TEST(GlobalTrace, MutationGuardsAreConservative) {
  Runtime rt(4, sim::manual_config(65));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);

  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  // Invoke through a ring reference WHILE the trace is running: its scion's
  // counter changes during the epoch, so it must survive this epoch.
  rt.proc(0).invoke(fig.B.seq, fig.B_to_F, InvokeEffect::kTouch);
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  EXPECT_TRUE(rt.proc(1).scions().contains(fig.B_to_F));

  // A later quiet epoch collects it.
  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  sim::settle_manual(rt, 6);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(GlobalTrace, PartitionedMemberStallsTheWorld) {
  // The §5 critique, demonstrated: P3 is unreachable; the epoch never
  // terminates, and NOTHING is collected — even garbage entirely outside
  // P3. The DCDA in the same situation collects the P0/P1 cycle fine.
  Runtime rt(4, sim::manual_config(66));
  const ObjectId g1{0, rt.proc(0).create_object()};
  const ObjectId g2{1, rt.proc(1).create_object()};
  rt.link(g1, g2);
  rt.link(g2, g1);

  for (ProcessId pid = 0; pid < 4; ++pid) {
    rt.network().set_link_blocked(pid, 3, true);
    rt.network().set_link_blocked(3, pid, true);
  }
  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(2'000'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 0u);
  EXPECT_TRUE(rt.proc(0).gtrace().coordinating()) << "epoch should still be stuck";
  EXPECT_TRUE(rt.proc(0).heap().exists(g1.seq));

  // The DCDA is indifferent to P3's absence.
  for (ProcessId pid = 0; pid < 3; ++pid) {
    rt.proc(pid).run_lgc();
    rt.proc(pid).take_snapshot();
  }
  rt.run_for(50'000);
  const auto snap = rt.proc(1).current_summary();
  ASSERT_NE(snap, nullptr);
  RefId candidate = kNoRef;
  for (const auto& [ref, sc] : rt.proc(1).scions()) candidate = ref;
  ASSERT_NE(candidate, kNoRef);
  ASSERT_TRUE(rt.proc(1).detector().start_detection(candidate, rt.now()));
  rt.run_for(200'000);
  sim::settle_manual(rt, 4);
  EXPECT_FALSE(rt.proc(0).heap().exists(g1.seq)) << "DCDA should have collected it";

  rt.proc(0).gtrace().abort_epoch();
  EXPECT_FALSE(rt.proc(0).gtrace().coordinating());
}

TEST(GlobalTrace, SecondEpochRefusedWhileRunning) {
  Runtime rt(3, sim::manual_config(67));
  rt.run_for(30'000);  // let construction-time timestamps age past epoch_start
  ASSERT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  EXPECT_FALSE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).gtrace().completed_epochs(), 1u);
  // And a new one can start after completion.
  EXPECT_TRUE(rt.proc(0).gtrace().start_epoch(all_members(rt)));
}

}  // namespace
}  // namespace adgc
