// Tests for graph summarization: hand-built snapshots with known relations,
// BFS/SCC equivalence on random graphs, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/snapshot/summarizer.h"

namespace adgc {
namespace {

// Small builder for SnapshotData by hand.
struct SnapBuilder {
  SnapshotData snap;
  ObjectSeq next = 1;

  SnapBuilder() {
    snap.pid = 0;
    snap.taken_at = 0;
  }
  ObjectSeq obj() {
    SnapshotData::Obj o;
    o.seq = next++;
    snap.objects.push_back(o);
    return o.seq;
  }
  SnapshotData::Obj& find(ObjectSeq s) {
    for (auto& o : snap.objects) {
      if (o.seq == s) return o;
    }
    throw std::logic_error("no such obj");
  }
  void edge(ObjectSeq a, ObjectSeq b) { find(a).local_fields.push_back(b); }
  void root(ObjectSeq a) { snap.roots.push_back(a); }
  RefId stub(ObjectSeq holder, RefId ref, std::uint64_t ic = 0) {
    find(holder).remote_fields.push_back(ref);
    if (std::none_of(snap.stubs.begin(), snap.stubs.end(),
                     [&](const auto& s) { return s.ref == ref; })) {
      snap.stubs.push_back({ref, ObjectId{1, 1}, ic});
    }
    return ref;
  }
  RefId scion(ObjectSeq target, RefId ref, std::uint64_t ic = 0) {
    snap.scions.push_back({ref, /*holder=*/2, target, ic});
    return ref;
  }
};

TEST(Summarizer, StubsFromFollowsLocalEdges) {
  SnapBuilder b;
  const ObjectSeq f = b.obj(), g = b.obj(), h = b.obj(), j = b.obj();
  b.edge(f, h);
  b.edge(f, g);
  b.edge(g, h);
  b.edge(h, j);
  const RefId stub_q = b.stub(j, make_ref_id(0, 10));
  const RefId scion_f = b.scion(f, make_ref_id(9, 1));

  for (Summarizer* s :
       {static_cast<Summarizer*>(new BfsSummarizer),
        static_cast<Summarizer*>(new SccSummarizer)}) {
    const SummarizedGraph sum = s->summarize(b.snap);
    const ScionSummary* sc = sum.scion(scion_f);
    ASSERT_NE(sc, nullptr) << s->name();
    EXPECT_EQ(sc->stubs_from, std::vector<RefId>{stub_q}) << s->name();
    const StubSummary* st = sum.stub(stub_q);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->scions_to, std::vector<RefId>{scion_f}) << s->name();
    EXPECT_FALSE(st->local_reach);
    delete s;
  }
}

TEST(Summarizer, LocalReachFromRoots) {
  SnapBuilder b;
  const ObjectSeq a = b.obj(), c = b.obj();
  b.root(a);
  const RefId r1 = b.stub(a, make_ref_id(0, 1));
  const RefId r2 = b.stub(c, make_ref_id(0, 2));

  BfsSummarizer s;
  const SummarizedGraph sum = s.summarize(b.snap);
  EXPECT_TRUE(sum.stub(r1)->local_reach);
  EXPECT_FALSE(sum.stub(r2)->local_reach);
}

TEST(Summarizer, ScionUnreachableStubExcluded) {
  SnapBuilder b;
  const ObjectSeq x = b.obj(), y = b.obj();
  const RefId rx = b.stub(x, make_ref_id(0, 1));
  const RefId ry = b.stub(y, make_ref_id(0, 2));
  const RefId sc = b.scion(x, make_ref_id(9, 1));

  BfsSummarizer s;
  const SummarizedGraph sum = s.summarize(b.snap);
  EXPECT_EQ(sum.scion(sc)->stubs_from, std::vector<RefId>{rx});
  EXPECT_TRUE(sum.stub(ry)->scions_to.empty());
}

TEST(Summarizer, CyclicLocalGraph) {
  // a ↔ b cycle inside the process, both reaching a stub.
  SnapBuilder b;
  const ObjectSeq a = b.obj(), c = b.obj();
  b.edge(a, c);
  b.edge(c, a);
  const RefId r = b.stub(c, make_ref_id(0, 1));
  const RefId s1 = b.scion(a, make_ref_id(9, 1));
  const RefId s2 = b.scion(c, make_ref_id(9, 2));

  SccSummarizer s;
  const SummarizedGraph sum = s.summarize(b.snap);
  EXPECT_EQ(sum.scion(s1)->stubs_from, std::vector<RefId>{r});
  EXPECT_EQ(sum.scion(s2)->stubs_from, std::vector<RefId>{r});
  const auto& deps = sum.stub(r)->scions_to;
  EXPECT_EQ(deps.size(), 2u);
}

TEST(Summarizer, SharedStubMultipleScions) {
  // Two disjoint chains, both converging on the same stub (Fig. 4's V/Y→T).
  SnapBuilder b;
  const ObjectSeq v = b.obj(), y = b.obj();
  const RefId t = make_ref_id(0, 7);
  b.stub(v, t);
  b.stub(y, t);
  const RefId sv = b.scion(v, make_ref_id(9, 1));
  const RefId sy = b.scion(y, make_ref_id(9, 2));

  for (Summarizer* s :
       {static_cast<Summarizer*>(new BfsSummarizer),
        static_cast<Summarizer*>(new SccSummarizer)}) {
    const SummarizedGraph sum = s->summarize(b.snap);
    auto deps = sum.stub(t)->scions_to;
    std::sort(deps.begin(), deps.end());
    std::vector<RefId> want = {sv, sy};
    std::sort(want.begin(), want.end());
    EXPECT_EQ(deps, want) << s->name();
    delete s;
  }
}

TEST(Summarizer, DanglingScionTargetIsEmpty) {
  SnapBuilder b;
  const RefId sc = b.scion(/*target=*/999, make_ref_id(9, 1));
  BfsSummarizer bfs;
  SccSummarizer scc;
  EXPECT_TRUE(bfs.summarize(b.snap).scion(sc)->stubs_from.empty());
  EXPECT_TRUE(scc.summarize(b.snap).scion(sc)->stubs_from.empty());
}

TEST(Summarizer, IcAndHolderCopied) {
  SnapBuilder b;
  const ObjectSeq a = b.obj();
  const RefId st = b.stub(a, make_ref_id(0, 1), /*ic=*/5);
  const RefId sc = b.scion(a, make_ref_id(9, 1), /*ic=*/7);
  BfsSummarizer s;
  const SummarizedGraph sum = s.summarize(b.snap);
  EXPECT_EQ(sum.stub(st)->ic, 5u);
  EXPECT_EQ(sum.scion(sc)->ic, 7u);
  EXPECT_EQ(sum.scion(sc)->holder, 2u);
}

TEST(Summarizer, EmptySnapshot) {
  SnapshotData snap;
  BfsSummarizer bfs;
  SccSummarizer scc;
  EXPECT_TRUE(bfs.summarize(snap).scions.empty());
  EXPECT_TRUE(scc.summarize(snap).stubs.empty());
}

// ---- property sweep: BFS and SCC summaries are identical on random graphs.

struct SummarizerEquivParams {
  std::uint64_t seed;
  std::size_t objects;
  double edge_prob;
};

class SummarizerEquiv : public ::testing::TestWithParam<SummarizerEquivParams> {};

SnapshotData random_snapshot(Rng& rng, std::size_t n, double edge_prob) {
  SnapshotData snap;
  snap.pid = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    snap.objects.push_back(o);
  }
  for (auto& o : snap.objects) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (rng.chance(edge_prob)) o.local_fields.push_back(j);
    }
  }
  // Roots, stubs, scions over random objects.
  const std::size_t nroots = 1 + rng.below(3);
  for (std::size_t i = 0; i < nroots; ++i) snap.roots.push_back(1 + rng.below(n));
  const std::size_t nstubs = rng.below(n / 2 + 1);
  for (std::size_t i = 0; i < nstubs; ++i) {
    const RefId ref = make_ref_id(0, i + 1);
    snap.stubs.push_back({ref, ObjectId{1, i}, rng.below(5)});
    snap.objects[rng.below(n)].remote_fields.push_back(ref);
    if (rng.chance(0.3)) snap.objects[rng.below(n)].remote_fields.push_back(ref);
  }
  const std::size_t nscions = rng.below(n / 2 + 1);
  for (std::size_t i = 0; i < nscions; ++i) {
    snap.scions.push_back(
        {make_ref_id(9, i + 1), static_cast<ProcessId>(1 + rng.below(4)),
         1 + rng.below(n), rng.below(5)});
  }
  return snap;
}

bool summaries_equal(const SummarizedGraph& a, const SummarizedGraph& b) {
  if (a.scions.size() != b.scions.size() || a.stubs.size() != b.stubs.size()) return false;
  for (const auto& [ref, sa] : a.scions) {
    const ScionSummary* sb = b.scion(ref);
    if (!sb || sa.ic != sb->ic || sa.stubs_from != sb->stubs_from) return false;
  }
  for (const auto& [ref, ta] : a.stubs) {
    const StubSummary* tb = b.stub(ref);
    if (!tb || ta.ic != tb->ic || ta.local_reach != tb->local_reach ||
        ta.scions_to != tb->scions_to) {
      return false;
    }
  }
  return true;
}

TEST_P(SummarizerEquiv, BfsEqualsScc) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  for (int iter = 0; iter < 10; ++iter) {
    const SnapshotData snap = random_snapshot(rng, p.objects, p.edge_prob);
    BfsSummarizer bfs;
    SccSummarizer scc;
    const SummarizedGraph a = bfs.summarize(snap);
    const SummarizedGraph b = scc.summarize(snap);
    EXPECT_TRUE(summaries_equal(a, b)) << "seed=" << p.seed << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SummarizerEquiv,
    ::testing::Values(SummarizerEquivParams{1, 5, 0.3}, SummarizerEquivParams{2, 12, 0.15},
                      SummarizerEquivParams{3, 30, 0.08}, SummarizerEquivParams{4, 30, 0.02},
                      SummarizerEquivParams{5, 80, 0.03}, SummarizerEquivParams{6, 80, 0.3},
                      SummarizerEquivParams{7, 200, 0.01},
                      SummarizerEquivParams{8, 200, 0.05}));

}  // namespace
}  // namespace adgc
