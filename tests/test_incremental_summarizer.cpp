// Incremental summarizer: memo reuse/invalidation rules, and equivalence
// with the stateless summarizers across randomized mutation sequences.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/snapshot/summarizer.h"

namespace adgc {
namespace {

bool summaries_equal(const SummarizedGraph& a, const SummarizedGraph& b) {
  if (a.scions.size() != b.scions.size() || a.stubs.size() != b.stubs.size()) return false;
  for (const auto& [ref, sa] : a.scions) {
    const ScionSummary* sb = b.scion(ref);
    if (!sb || sa.ic != sb->ic || sa.stubs_from != sb->stubs_from) return false;
  }
  for (const auto& [ref, ta] : a.stubs) {
    const StubSummary* tb = b.stub(ref);
    if (!tb || ta.ic != tb->ic || ta.local_reach != tb->local_reach ||
        ta.scions_to != tb->scions_to) {
      return false;
    }
  }
  return true;
}

// Small mutable world whose snapshots feed both summarizers.
struct World {
  Heap heap;
  StubTable stubs;
  ScionTable scions;

  SnapshotData snap() const { return capture_snapshot(0, 0, heap, stubs, scions); }
};

TEST(Incremental, FirstCallComputesEverything) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_local_field(a, b);
  w.stubs.ensure(make_ref_id(0, 1), ObjectId{1, 1}, 0);
  w.heap.add_remote_field(b, make_ref_id(0, 1));
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);

  IncrementalSummarizer inc;
  const SummarizedGraph g = inc.summarize(w.snap());
  EXPECT_EQ(inc.last_recomputed(), 1u);
  EXPECT_EQ(inc.last_reused(), 0u);
  EXPECT_EQ(g.scion(make_ref_id(9, 1))->stubs_from,
            std::vector<RefId>{make_ref_id(0, 1)});
}

TEST(Incremental, UnchangedSnapshotReusesMemo) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());
  inc.summarize(w.snap());
  EXPECT_EQ(inc.last_recomputed(), 0u);
  EXPECT_EQ(inc.last_reused(), 1u);
}

TEST(Incremental, ChangeInVisitedRegionInvalidates) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_local_field(a, b);
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  // Mutate a visited object: new outgoing stub from b.
  w.stubs.ensure(make_ref_id(0, 5), ObjectId{1, 1}, 0);
  w.heap.add_remote_field(b, make_ref_id(0, 5));
  const SummarizedGraph g = inc.summarize(w.snap());
  EXPECT_EQ(inc.last_recomputed(), 1u);
  EXPECT_EQ(g.scion(make_ref_id(9, 1))->stubs_from,
            std::vector<RefId>{make_ref_id(0, 5)});
}

TEST(Incremental, ChangeOutsideVisitedRegionReuses) {
  World w;
  const ObjectSeq a = w.heap.allocate();  // scion region
  const ObjectSeq z = w.heap.allocate();  // unrelated
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  const ObjectSeq z2 = w.heap.allocate();
  w.heap.add_local_field(z, z2);  // touch only the unrelated region
  inc.summarize(w.snap());
  EXPECT_EQ(inc.last_recomputed(), 0u);
  EXPECT_EQ(inc.last_reused(), 1u);
}

TEST(Incremental, DeletedVisitedObjectInvalidates) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_local_field(a, b);
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  w.heap.remove_local_field(a, b);
  w.heap.remove(b);
  inc.summarize(w.snap());
  EXPECT_EQ(inc.last_recomputed(), 1u);
}

TEST(Incremental, VanishedStubInvalidatesMemo) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const RefId r = make_ref_id(0, 1);
  w.stubs.ensure(r, ObjectId{1, 1}, 0);
  w.heap.add_remote_field(a, r);
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  // The stub disappears but the object's fields still name it (dangling
  // reference, as after a stub-table-only change).
  w.stubs.erase(r);
  const SummarizedGraph g = inc.summarize(w.snap());
  EXPECT_TRUE(g.scion(make_ref_id(9, 1))->stubs_from.empty());
}

TEST(Incremental, AppearedStubRestoresEdgeOnReuse) {
  // Regression: a remote field whose stub-table entry *appears* between
  // snapshots leaves every visited object's fingerprint unchanged, so the
  // memo is (correctly) reused — but a memo that filtered the stub set at
  // record time silently dropped the new StubsFrom edge, understating the
  // scion's support and letting the DCDA misjudge a live cycle as garbage.
  World w;
  const ObjectSeq a = w.heap.allocate();
  const RefId r = make_ref_id(0, 1);
  w.heap.add_remote_field(a, r);  // dangling: no stub entry yet
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  const SummarizedGraph g1 = inc.summarize(w.snap());
  EXPECT_TRUE(g1.scion(make_ref_id(9, 1))->stubs_from.empty());

  // The stub materializes with no heap mutation at all (e.g. the field was
  // written ahead of the NewSetStubs exchange that registers the stub).
  w.stubs.ensure(r, ObjectId{1, 1}, 0);
  const SummarizedGraph g2 = inc.summarize(w.snap());
  EXPECT_EQ(inc.last_reused(), 1u) << "no object changed: memo must be reused";
  EXPECT_EQ(g2.scion(make_ref_id(9, 1))->stubs_from, std::vector<RefId>{r});
}

TEST(Incremental, NewScionComputed) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  const ObjectSeq b = w.heap.allocate();
  w.scions.ensure(make_ref_id(9, 2), 9, b, 0);
  inc.summarize(w.snap());
  // b is a new object → also in the changed set; the new scion computes,
  // the old one reuses.
  EXPECT_EQ(inc.last_recomputed(), 1u);
  EXPECT_EQ(inc.last_reused(), 1u);
}

TEST(Incremental, IcOnlyChangesReuseButRefreshIcs) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  auto& sc = w.scions.ensure(make_ref_id(9, 1), 9, a, 0);
  IncrementalSummarizer inc;
  inc.summarize(w.snap());

  sc.ic = 42;  // invocation counters change without structural mutation
  const SummarizedGraph g = inc.summarize(w.snap());
  EXPECT_EQ(inc.last_reused(), 1u);
  EXPECT_EQ(g.scion(make_ref_id(9, 1))->ic, 42u);
}

// --- equivalence sweep: incremental vs BFS over random mutation traces ---

class IncrementalEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalEquiv, MatchesStatelessAcrossMutations) {
  Rng rng(GetParam());
  World w;
  std::vector<ObjectSeq> objs;
  for (int i = 0; i < 20; ++i) objs.push_back(w.heap.allocate());
  for (int i = 0; i < 6; ++i) {
    w.stubs.ensure(make_ref_id(0, static_cast<std::uint64_t>(i + 1)),
                   ObjectId{1, static_cast<ObjectSeq>(i)}, 0);
  }
  for (int i = 0; i < 6; ++i) {
    w.scions.ensure(make_ref_id(9, static_cast<std::uint64_t>(i + 1)), 9,
                    objs[static_cast<std::size_t>(i)], 0);
  }
  w.heap.add_root(objs[0]);

  IncrementalSummarizer inc;
  BfsSummarizer bfs;
  for (int round = 0; round < 30; ++round) {
    // Random structural mutations — including stub-table-only churn, which
    // must be reflected by reused memos (the appearing-stub regression).
    for (int m = 0; m < 4; ++m) {
      const auto op = rng.below(6);
      const ObjectSeq from = objs[rng.below(objs.size())];
      if (op == 0) {
        w.heap.add_local_field(from, objs[rng.below(objs.size())]);
      } else if (op == 1) {
        HeapObject* o = w.heap.find(from);
        if (o && !o->local_fields.empty()) {
          w.heap.remove_local_field(from, o->local_fields[0]);
        }
      } else if (op == 2) {
        w.heap.add_remote_field(from, make_ref_id(0, 1 + rng.below(6)));
      } else if (op == 3) {
        HeapObject* o = w.heap.find(from);
        if (o && !o->remote_fields.empty()) {
          w.heap.remove_remote_field(from, o->remote_fields[0]);
        }
      } else if (op == 4) {
        const std::uint64_t k = 1 + rng.below(6);
        w.stubs.ensure(make_ref_id(0, k),
                       ObjectId{1, static_cast<ObjectSeq>(k)}, 0);
      } else {
        w.stubs.erase(make_ref_id(0, 1 + rng.below(6)));
      }
    }
    // Random IC churn.
    if (rng.chance(0.5)) {
      auto it = w.scions.begin();
      std::advance(it, static_cast<long>(rng.below(w.scions.size())));
      it->second.ic += 1;
    }
    const SnapshotData snap = w.snap();
    const SummarizedGraph a = inc.summarize(snap);
    const SummarizedGraph b = bfs.summarize(snap);
    ASSERT_TRUE(summaries_equal(a, b)) << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquiv,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- end-to-end: the full collector stack with the incremental summarizer.

TEST(Incremental, EndToEndCollection) {
  RuntimeConfig cfg = sim::fast_config(99);
  cfg.proc.summarizer = ProcessConfig::SummarizerKind::kIncremental;
  Runtime rt(4, cfg);
  const auto ring = sim::global_stats(rt);
  (void)ring;
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.link(a, b);
  rt.link(b, c);
  rt.link(c, a);
  rt.run_for(300'000);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  rt.proc(0).remove_root(a.seq);
  rt.run_for(3'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

}  // namespace
}  // namespace adgc
