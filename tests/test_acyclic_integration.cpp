// Acyclic distributed GC end-to-end: reference-listing collects acyclic
// distributed garbage, scions pin objects, chains across processes unravel,
// and the DCDA is unnecessary for (and not triggered by) acyclic shapes.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

TEST(Acyclic, RemoteReferencePinsObject) {
  Runtime rt(2, sim::fast_config(1));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.link(a, b);
  // b has no local root at P1; only the scion keeps it.
  rt.run_for(1'000'000);
  EXPECT_TRUE(rt.proc(1).heap().exists(b.seq));
}

TEST(Acyclic, DroppingLastStubCollectsRemoteObject) {
  Runtime rt(2, sim::fast_config(2));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  const RefId ref = rt.link(a, b);
  rt.run_for(500'000);
  ASSERT_TRUE(rt.proc(1).heap().exists(b.seq));

  rt.proc(0).remove_remote_ref(a.seq, ref);
  rt.run_for(1'000'000);
  EXPECT_FALSE(rt.proc(1).heap().exists(b.seq));
  EXPECT_EQ(rt.proc(1).scions().size(), 0u);
  EXPECT_EQ(rt.proc(0).stubs().size(), 0u);
}

TEST(Acyclic, ChainAcrossProcessesUnravels) {
  // root→a(P0)→b(P1)→c(P2)→d(P3); dropping the root collects all four,
  // one reference-listing round per hop.
  Runtime rt(4, sim::fast_config(3));
  std::vector<ObjectId> objs;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    objs.push_back(ObjectId{pid, rt.proc(pid).create_object()});
  }
  rt.proc(0).add_root(objs[0].seq);
  for (int i = 0; i < 3; ++i) rt.link(objs[i], objs[i + 1]);
  rt.run_for(500'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 4u);

  rt.proc(0).remove_root(objs[0].seq);
  rt.run_for(2'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
  // No cycle detection was needed for acyclic garbage.
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
}

TEST(Acyclic, DiamondSharingCollectsOnlyWhenBothDropped) {
  // a(P0) and b(P1) both reference c(P2).
  Runtime rt(3, sim::fast_config(4));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  const RefId ra = rt.link(a, c);
  const RefId rb = rt.link(b, c);
  rt.run_for(500'000);

  rt.proc(0).remove_remote_ref(a.seq, ra);
  rt.run_for(1'000'000);
  EXPECT_TRUE(rt.proc(2).heap().exists(c.seq)) << "b still holds c";

  rt.proc(1).remove_remote_ref(b.seq, rb);
  rt.run_for(1'000'000);
  EXPECT_FALSE(rt.proc(2).heap().exists(c.seq));
}

TEST(Acyclic, SharedStubSingleScion) {
  // Two objects of P0 hold the SAME reference to b: one scion at P1; it
  // dies only when both holders are gone.
  Runtime rt(2, sim::fast_config(5));
  const ObjectId a1{0, rt.proc(0).create_object()};
  const ObjectId a2{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a1.seq);
  rt.proc(0).add_root(a2.seq);
  const RefId ref = rt.link(a1, b);
  rt.proc(0).hold_existing_ref(a2.seq, ref);
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(1).scions().size(), 1u);

  rt.proc(0).remove_root(a1.seq);
  rt.run_for(1'000'000);
  EXPECT_TRUE(rt.proc(1).heap().exists(b.seq));

  rt.proc(0).remove_root(a2.seq);
  rt.run_for(1'000'000);
  EXPECT_FALSE(rt.proc(1).heap().exists(b.seq));
}

TEST(Acyclic, LocalGarbageWithStubsReleasesRemote) {
  // A locally-unreachable subgraph at P0 holds the only reference to b:
  // P0's LGC reclaims the subgraph, the next NewSetStubs round releases b.
  Runtime rt(2, sim::fast_config(6));
  const ObjectId junk{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.link(junk, b);  // junk has no root at all
  rt.run_for(2'000'000);
  EXPECT_FALSE(rt.proc(0).heap().exists(junk.seq));
  EXPECT_FALSE(rt.proc(1).heap().exists(b.seq));
}

TEST(Acyclic, SelfScionHarmless) {
  // Exporting one's own object to oneself (degenerate) must not wedge.
  Runtime rt(2, sim::fast_config(7));
  const ObjectId a{0, rt.proc(0).create_object()};
  rt.proc(0).add_root(a.seq);
  const ExportedRef er = rt.proc(0).export_own_object(a.seq, /*holder=*/0);
  (void)er;
  rt.run_for(1'500'000);
  EXPECT_TRUE(rt.proc(0).heap().exists(a.seq));
}

TEST(Acyclic, StressManySmallExports) {
  // 200 objects exported P0→P1 then half dropped: exactly the dropped half
  // is collected.
  Runtime rt(2, sim::fast_config(8));
  const ObjectId holder{1, rt.proc(1).create_object()};
  rt.proc(1).add_root(holder.seq);
  std::vector<std::pair<ObjectSeq, RefId>> items;
  for (int i = 0; i < 200; ++i) {
    const ObjectSeq o = rt.proc(0).create_object();
    const RefId ref = rt.link(holder, ObjectId{0, o});
    items.emplace_back(o, ref);
  }
  rt.run_for(500'000);
  EXPECT_EQ(rt.proc(0).heap().size(), 200u);

  for (int i = 0; i < 200; i += 2) {
    rt.proc(1).remove_remote_ref(holder.seq, items[i].second);
  }
  rt.run_for(2'000'000);
  EXPECT_EQ(rt.proc(0).heap().size(), 100u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rt.proc(0).heap().exists(items[i].first), i % 2 == 1) << i;
  }
}

}  // namespace
}  // namespace adgc
