// Frame codec tests: round-trips, incremental decoding, and — most
// importantly — the rejection paths. A TCP byte stream that desynchronizes
// must poison the decoder (the connection gets dropped), never yield a
// half-garbage frame.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/crc32.h"
#include "src/net/frame.h"

namespace adgc {
namespace {

Frame sample_data_frame() {
  CdmMsg cdm;
  cdm.detection = DetectionId{7, 3};
  cdm.candidate = make_ref_id(7, 1);
  cdm.via = make_ref_id(2, 9);
  cdm.via_ic = 42;
  cdm.hops = 3;
  cdm.source = {{make_ref_id(1, 1), 5}, {make_ref_id(1, 2), 6}};
  cdm.target = {{make_ref_id(2, 9), 42}};

  Frame f;
  f.kind = FrameKind::kData;
  f.src = 7;
  f.dst = 2;
  f.src_inc = 4;
  f.dst_inc = 1;
  f.payload = encode_message(MessagePayload{cdm});
  return f;
}

/// Feeds `bytes` and expects exactly one healthy frame back.
Frame decode_one(const std::vector<std::byte>& bytes) {
  FrameDecoder dec;
  dec.feed(bytes);
  auto got = dec.next();
  EXPECT_TRUE(got.has_value());
  EXPECT_FALSE(dec.failed()) << dec.error_detail();
  EXPECT_FALSE(dec.next().has_value());  // nothing extra buffered
  return got.value_or(Frame{});
}

TEST(FrameCodec, DataFrameRoundTrip) {
  const Frame f = sample_data_frame();
  const Frame got = decode_one(encode_frame(f));
  EXPECT_EQ(got.kind, FrameKind::kData);
  EXPECT_EQ(got.src, f.src);
  EXPECT_EQ(got.dst, f.dst);
  EXPECT_EQ(got.src_inc, f.src_inc);
  EXPECT_EQ(got.dst_inc, f.dst_inc);
  EXPECT_EQ(got.payload, f.payload);
  // The payload survives all the way to the message layer.
  const MessagePayload msg = decode_message(got.payload);
  EXPECT_STREQ(message_kind(msg), "Cdm");
}

TEST(FrameCodec, HelloFrameRoundTrip) {
  const Frame got = decode_one(encode_hello_frame(11, 5));
  EXPECT_EQ(got.kind, FrameKind::kHello);
  EXPECT_EQ(got.src, 11u);
  EXPECT_EQ(got.src_inc, 5u);
  EXPECT_TRUE(got.payload.empty());
}

TEST(FrameCodec, EnvelopeHelperMatchesFields) {
  Envelope env;
  env.src = 3;
  env.dst = 9;
  env.src_inc = 2;
  env.dst_inc = kUnknownIncarnation;
  env.bytes = encode_message(MessagePayload{ReplyMsg{make_ref_id(9, 1), 10, 77}});
  const Frame got = decode_one(encode_data_frame(env));
  EXPECT_EQ(got.src, 3u);
  EXPECT_EQ(got.dst, 9u);
  EXPECT_EQ(got.src_inc, 2u);
  EXPECT_EQ(got.dst_inc, kUnknownIncarnation);
  EXPECT_EQ(got.payload, env.bytes);
}

TEST(FrameCodec, ByteAtATimeFeed) {
  const auto bytes = encode_frame(sample_data_frame());
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed({&bytes[i], 1});
    EXPECT_FALSE(dec.next().has_value()) << "frame complete too early at " << i;
    ASSERT_FALSE(dec.failed()) << dec.error_detail();
  }
  dec.feed({&bytes[bytes.size() - 1], 1});
  const auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, sample_data_frame().payload);
}

TEST(FrameCodec, BackToBackFramesInOneFeed) {
  auto bytes = encode_hello_frame(1, 0);
  const auto second = encode_frame(sample_data_frame());
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameDecoder dec;
  dec.feed(bytes);
  const auto a = dec.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, FrameKind::kHello);
  const auto b = dec.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->kind, FrameKind::kData);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, TruncatedStreamYieldsNothingButStaysHealthy) {
  const auto bytes = encode_frame(sample_data_frame());
  FrameDecoder dec;
  dec.feed({bytes.data(), bytes.size() - 7});
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.failed());  // truncation = "need more", not corruption
}

TEST(FrameCodec, GarbagePoisonsWithBadMagic) {
  std::vector<std::byte> junk(64, std::byte{0x5a});
  FrameDecoder dec;
  dec.feed(junk);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadMagic);
  EXPECT_NE(dec.error_detail(), "");
  // Poisoned for good: even valid bytes afterwards yield nothing.
  dec.feed(encode_hello_frame(1, 0));
  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameCodec, CrcMismatchRejected) {
  auto bytes = encode_frame(sample_data_frame());
  bytes.back() ^= std::byte{0x01};  // flip one payload bit
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadCrc);
}

TEST(FrameCodec, HeaderCorruptionSurfacesAsCrcOrLengthError) {
  // Corrupting the stored payload length desynchronizes the stream; the
  // decoder must refuse (oversize) or mismatch CRC — never hand out a frame.
  auto bytes = encode_frame(sample_data_frame());
  bytes[24] = std::byte{0xff};  // length field, little-endian low byte
  bytes[25] = std::byte{0xff};
  bytes[26] = std::byte{0xff};
  bytes[27] = std::byte{0x7f};
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
}

TEST(FrameCodec, FutureVersionRejectedGracefully) {
  auto bytes = encode_frame(sample_data_frame());
  bytes[4] = std::byte{0xff};  // version field
  bytes[5] = std::byte{0x00};
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadVersion);
}

TEST(FrameCodec, UnknownKindRejected) {
  auto bytes = encode_frame(sample_data_frame());
  bytes[6] = std::byte{0x77};  // kind field
  bytes[7] = std::byte{0x77};
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadKind);
}

TEST(FrameCodec, OversizedLengthRejectedBeforeBuffering) {
  // A length just past the cap must poison immediately from the header
  // alone — the decoder may not wait for (or try to allocate) the payload.
  Frame f;
  f.kind = FrameKind::kData;
  f.payload.resize(16);
  auto bytes = encode_frame(f);
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&bytes[24], &huge, sizeof(huge));
  FrameDecoder dec;
  dec.feed({bytes.data(), kFrameHeaderSize});  // header only
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
}

TEST(FrameCodec, EmptyPayloadDataFrameOk) {
  Frame f;
  f.kind = FrameKind::kData;
  f.src = 1;
  f.dst = 2;
  const Frame got = decode_one(encode_frame(f));
  EXPECT_TRUE(got.payload.empty());
}

TEST(FrameCodec, PeekTagClassifiesWithoutDecoding) {
  const auto cdm = encode_message(MessagePayload{CdmMsg{}});
  const auto nss = encode_message(MessagePayload{NewSetStubsMsg{}});
  const auto inv = encode_message(MessagePayload{InvokeMsg{}});
  EXPECT_EQ(peek_message_tag(cdm), static_cast<std::uint8_t>(MessageTag::kCdm));
  EXPECT_TRUE(is_cdm_payload(cdm));
  EXPECT_FALSE(is_cdm_payload(nss));
  EXPECT_TRUE(is_new_set_stubs_payload(nss));
  EXPECT_FALSE(is_new_set_stubs_payload(inv));
  EXPECT_EQ(peek_message_tag({}), 0u);
}

std::vector<std::byte> sample_batch_payload() {
  BatchMsg batch;
  batch.items.push_back(encode_message(MessagePayload{AddScionAckMsg{make_ref_id(1, 1), 9}}));
  batch.items.push_back(encode_message(MessagePayload{NewSetStubsMsg{3, {make_ref_id(0, 4)}}}));
  return encode_message(MessagePayload{batch});
}

TEST(FrameCodec, BatchFrameRoundTrip) {
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.bytes = sample_batch_payload();
  ASSERT_TRUE(is_batch_payload(env.bytes));
  // encode_data_frame must classify the payload as a batch frame.
  const Frame got = decode_one(encode_data_frame(env));
  EXPECT_EQ(got.kind, FrameKind::kBatch);
  EXPECT_EQ(got.payload, env.bytes);
  const MessagePayload msg = decode_message(got.payload);
  EXPECT_STREQ(message_kind(msg), "Batch");
  EXPECT_EQ(decode_batch_items(std::get<BatchMsg>(msg)).size(), 2u);
}

TEST(FrameCodec, NonBatchPayloadStaysDataFrame) {
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.bytes = encode_message(MessagePayload{ReplyMsg{make_ref_id(2, 1), 1, 5}});
  EXPECT_FALSE(is_batch_payload(env.bytes));
  const Frame got = decode_one(encode_data_frame(env));
  EXPECT_EQ(got.kind, FrameKind::kData);
}

TEST(FrameCodec, BatchPayloadValidation) {
  auto good = sample_batch_payload();
  EXPECT_TRUE(validate_batch_payload(good));
  EXPECT_FALSE(validate_batch_payload({})) << "empty payload";
  EXPECT_FALSE(validate_batch_payload({good.data(), 4})) << "shorter than header";
  // Zero item count.
  auto zero = good;
  zero[1] = zero[2] = zero[3] = zero[4] = std::byte{0};
  EXPECT_FALSE(validate_batch_payload(zero));
  // Truncated mid-item: the nested lengths no longer tile the payload.
  EXPECT_FALSE(validate_batch_payload({good.data(), good.size() - 3}));
  // Trailing garbage past the last item.
  auto trailing = good;
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(validate_batch_payload(trailing));
}

TEST(FrameCodec, CorruptInnerLengthPoisonsBatchFrame) {
  // The frame CRC covers the payload, so a plain bit flip is caught there.
  // To test the structural check we corrupt the inner length FIRST and then
  // frame it — a malicious/buggy sender producing a self-consistent frame
  // whose nested lengths lie must still be refused, as kBadBatch.
  auto payload = sample_batch_payload();
  payload[5] = std::byte{0xff};  // first item's length: absurdly large
  payload[6] = std::byte{0xff};
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.bytes = payload;
  FrameDecoder dec;
  dec.feed(encode_data_frame(env));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadBatch);
  EXPECT_NE(dec.error_detail(), "");
  // Poisoned: the stream is dead even for subsequent healthy frames.
  dec.feed(encode_hello_frame(1, 0));
  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameCodec, BatchFrameCrcStillChecked) {
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.bytes = sample_batch_payload();
  auto bytes = encode_data_frame(env);
  bytes.back() ^= std::byte{0x01};
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadCrc);
}

TEST(Crc32, MatchesKnownVectors) {
  // The standard IEEE 802.3 check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::byte> bytes(9);
  std::memcpy(bytes.data(), s, 9);
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
  // Incremental == one-shot.
  const std::uint32_t inc = crc32_update(crc32_update(0, {bytes.data(), 4}),
                                         {bytes.data() + 4, 5});
  EXPECT_EQ(inc, 0xCBF43926u);
}

}  // namespace
}  // namespace adgc
