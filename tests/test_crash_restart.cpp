// Crash/restart fault-tolerance tests.
//
// The fault model (docs/FAULT_MODEL.md): a crash loses all volatile state;
// a restart rolls the process back to its last persisted snapshot under a
// new incarnation. The properties checked here:
//   * live remote references survive a crash/restart of either endpoint;
//   * a distributed garbage cycle spanning a crashed-and-restarted process
//     is still eventually collected;
//   * messages from/to a dead incarnation are dropped and can never delete
//     state the rollback resurrected;
//   * a cold restart (no snapshot store) leaves the rest of the system
//     functional;
//   * the scripted crash sweep (every process crashed once mid-detection)
//     collects the Fig. 3 cycle and never collects a live sentinel, across
//     seeds;
//   * the threaded runtime supports the same crash/restart cycle under real
//     concurrency.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/rt/threaded_runtime.h"
#include "src/sim/crash_sweep.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

/// Fresh per-test snapshot directory under the gtest temp root.
std::string snap_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("adgc_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Rooted object at P0 holding a remote reference to an unrooted object at
/// P1 — the target's survival depends entirely on the stub/scion pair.
struct LiveRef {
  ObjectId holder_obj;  // rooted, at P0
  ObjectId target_obj;  // unrooted, at P1
  RefId ref = kNoRef;
};

LiveRef build_live_ref(Runtime& rt) {
  LiveRef lr;
  lr.holder_obj = ObjectId{0, rt.proc(0).create_object()};
  lr.target_obj = ObjectId{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(lr.holder_obj.seq);
  lr.ref = rt.link(lr.holder_obj, lr.target_obj);
  return lr;
}

TEST(CrashRestart, LiveRefSurvivesOwnerRestart) {
  RuntimeConfig cfg = sim::fast_config(7);
  cfg.proc.snapshot_dir = snap_dir("owner_restart");
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt);

  rt.run_for(500'000);  // many snapshot periods: state durable on both sides
  rt.crash(1);
  rt.run_for(40'000);
  EXPECT_TRUE(rt.restart(1));  // recovered from disk
  rt.run_for(2'000'000);

  ASSERT_TRUE(rt.proc(1).heap().exists(lr.target_obj.seq))
      << "owner restart lost the target of a live remote reference";
  EXPECT_TRUE(rt.proc(1).scions().contains(lr.ref));
  EXPECT_TRUE(rt.proc(0).stubs().contains(lr.ref));

  // The reference is still usable.
  const auto received_before = rt.total_metrics().invocations_received.get();
  rt.proc(0).invoke(lr.holder_obj.seq, lr.ref, InvokeEffect::kTouch);
  rt.run_for(100'000);
  EXPECT_GT(rt.total_metrics().invocations_received.get(), received_before);
  EXPECT_EQ(rt.total_metrics().invocations_dropped.get(), 0u);
}

TEST(CrashRestart, LiveRefSurvivesHolderRestart) {
  RuntimeConfig cfg = sim::fast_config(8);
  cfg.proc.snapshot_dir = snap_dir("holder_restart");
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt);

  rt.run_for(500'000);
  rt.crash(0);
  rt.run_for(40'000);
  EXPECT_TRUE(rt.restart(0));
  rt.run_for(2'000'000);

  // The restored holder still lists the reference in its NewSetStubs, so the
  // scion — and with it the target — must stay alive.
  ASSERT_TRUE(rt.proc(1).heap().exists(lr.target_obj.seq))
      << "holder restart lost a live remote reference target";
  EXPECT_TRUE(rt.proc(0).stubs().contains(lr.ref));
  EXPECT_TRUE(rt.proc(0).heap().is_root(lr.holder_obj.seq));
  EXPECT_EQ(rt.incarnation(0), 1u);
}

TEST(CrashRestart, CycleThroughRestartedProcessStillCollected) {
  RuntimeConfig cfg = sim::fast_config(9);
  cfg.proc.snapshot_dir = snap_dir("cycle_restart");
  Runtime rt(4, cfg);
  const sim::Fig3 fig = sim::build_fig3(rt);

  rt.run_for(400'000);
  rt.proc(0).remove_root(fig.A.seq);
  // Let detections get going on the now-garbage cycle, then yank one of the
  // cycle's processes out from under them.
  rt.run_for(100'000);
  rt.crash(2);
  rt.run_for(50'000);
  EXPECT_TRUE(rt.restart(2));
  rt.run_for(15'000'000);

  for (ObjectId id : {fig.B, fig.F, fig.J, fig.Q, fig.S, fig.O, fig.K, fig.D}) {
    EXPECT_FALSE(rt.proc(id.owner).heap().exists(id.seq))
        << "cycle object " << to_string(id) << " survived settling";
  }
  EXPECT_GT(rt.total_metrics().detections_cycle_found.get(), 0u);
}

TEST(CrashRestart, StaleIncarnationNssCannotDeleteResurrectedState) {
  RuntimeConfig cfg = sim::manual_config(10);
  cfg.proc.snapshot_dir = snap_dir("stale_nss");
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt);

  // Confirm the scion, then persist both sides.
  rt.proc(0).run_lgc();
  rt.run_for(50'000);
  ASSERT_TRUE(rt.proc(1).scions().find(lr.ref)->confirmed);
  rt.proc(0).take_snapshot();
  rt.proc(1).take_snapshot();

  // Post-snapshot mutation: drop the reference and emit the NewSetStubs that
  // no longer lists it — then crash before it is delivered. The restart rolls
  // P0 back to holding the reference, so that in-flight message now describes
  // state that never happened; applying it would strand the restored stub.
  rt.proc(0).remove_remote_ref(lr.holder_obj.seq, lr.ref);
  rt.proc(0).run_lgc();
  rt.proc(0).flush_batches();  // NSS leaves the NIC before the crash lands
  rt.crash(0);
  EXPECT_TRUE(rt.restart(0));
  EXPECT_TRUE(rt.proc(0).stubs().contains(lr.ref));  // rollback resurrected it

  rt.run_for(200'000);  // the stale NewSetStubs comes up for delivery

  EXPECT_GE(rt.net_metrics().messages_stale_incarnation.get(), 1u)
      << "the dead incarnation's message should have been dropped";
  ASSERT_TRUE(rt.proc(1).scions().contains(lr.ref))
      << "stale NewSetStubs from a dead incarnation deleted a scion";
  EXPECT_TRUE(rt.proc(1).heap().exists(lr.target_obj.seq));
}

TEST(CrashRestart, ColdRestartWithoutStoreLeavesSystemFunctional) {
  RuntimeConfig cfg = sim::fast_config(11);  // no snapshot_dir: nothing persisted
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt);

  rt.run_for(200'000);
  rt.crash(1);
  EXPECT_FALSE(rt.alive(1));
  rt.run_for(40'000);
  EXPECT_FALSE(rt.restart(1));  // nothing to recover
  EXPECT_TRUE(rt.alive(1));
  EXPECT_EQ(rt.proc(1).heap().size(), 0u);

  // The holder's stub now dangles; invocations through it are dropped, never
  // resurrected, and the rest of the system keeps running.
  rt.proc(0).invoke(lr.holder_obj.seq, lr.ref, InvokeEffect::kTouch);
  rt.run_for(3'000'000);
  EXPECT_GT(rt.total_metrics().invocations_dropped.get(), 0u);
  EXPECT_TRUE(rt.proc(0).heap().exists(lr.holder_obj.seq));
  const auto live = sim::global_live_set(rt);
  EXPECT_TRUE(live.contains(lr.holder_obj));
}

TEST(CrashRestart, RestartedIncarnationNeverReusesIdentifiers) {
  RuntimeConfig cfg = sim::fast_config(12);
  cfg.proc.snapshot_dir = snap_dir("id_reuse");
  Runtime rt(2, cfg);
  const LiveRef lr = build_live_ref(rt);
  const ObjectSeq pre_crash_seq = lr.target_obj.seq;

  rt.run_for(300'000);
  rt.crash(1);
  rt.run_for(20'000);
  EXPECT_TRUE(rt.restart(1));

  // Objects and references minted by the new incarnation live in a disjoint
  // identifier range.
  const ObjectSeq fresh = rt.proc(1).create_object();
  EXPECT_GT(fresh, pre_crash_seq);
  EXPECT_GE(fresh, ObjectSeq{1} << 40);
  const ObjectId fresh_id{1, fresh};
  rt.proc(1).add_root(fresh);
  const ObjectId holder2{0, rt.proc(0).create_object()};
  rt.proc(0).add_root(holder2.seq);
  const RefId new_ref = rt.link(holder2, fresh_id);
  EXPECT_NE(new_ref, lr.ref);
  EXPECT_GE(new_ref & ((RefId{1} << 40) - 1), RefId{1} << 32);
}

// ------------------------------------------------- acceptance: crash sweep

class CrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashSweep, CollectsCycleNeverLosesLiveObjects) {
  sim::CrashSweepParams p;
  p.seed = GetParam();
  p.snapshot_dir = snap_dir("sweep_" + std::to_string(p.seed));
  const sim::CrashSweepResult res = sim::run_crash_sweep(p);
  EXPECT_TRUE(res.cycle_collected) << res.detail;
  EXPECT_FALSE(res.live_lost) << res.detail;
  EXPECT_EQ(res.crashes, 4u);
  EXPECT_EQ(res.recovered, 4u) << "some restart failed to recover its snapshot";
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, CrashSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ------------------------------------------------------- threaded runtime

TEST(CrashRestartThreaded, CrashAndRecoverUnderRealConcurrency) {
  RuntimeConfig cfg;
  cfg.seed = 13;
  cfg.proc.lgc_period_us = 10'000;
  cfg.proc.snapshot_period_us = 15'000;
  cfg.proc.dcda_scan_period_us = 20'000;
  cfg.proc.snapshot_dir = snap_dir("threaded_crash");
  ThreadedRuntime rt(3, cfg);

  ObjectSeq holder_seq = 0, target_seq = 0;
  rt.post_sync(1, [&](Process& p) { target_seq = p.create_object(); });
  ExportedRef exported;
  rt.post_sync(1, [&](Process& p) { exported = p.export_own_object(target_seq, 0); });
  rt.post_sync(0, [&](Process& p) {
    holder_seq = p.create_object();
    p.add_root(holder_seq);
    p.install_ref(holder_seq, exported);
  });
  // Force a durable snapshot of the owner, then kill it.
  rt.post_sync(1, [](Process& p) { p.take_snapshot(); });

  rt.crash(1);
  EXPECT_FALSE(rt.alive(1));
  // Posting to a crashed process is silently skipped, not a crash.
  rt.post_sync(1, [](Process&) { FAIL() << "ran a closure on a dead process"; });

  EXPECT_TRUE(rt.restart(1));
  EXPECT_TRUE(rt.alive(1));
  EXPECT_EQ(rt.incarnation(1), 1u);

  bool exists = false, has_scion = false;
  rt.post_sync(1, [&](Process& p) {
    exists = p.heap().exists(target_seq);
    has_scion = p.scions().contains(exported.ref);
  });
  EXPECT_TRUE(exists) << "restart lost the exported object";
  EXPECT_TRUE(has_scion);

  // The reference still works from the holder's side.
  rt.post_sync(0, [&](Process& p) {
    p.invoke(holder_seq, exported.ref, InvokeEffect::kTouch);
  });
  rt.shutdown();
  EXPECT_EQ(rt.total_metrics().process_crashes.get(), 1u);
  EXPECT_EQ(rt.total_metrics().process_restarts.get(), 1u);
  EXPECT_EQ(rt.total_metrics().restarts_recovered.get(), 1u);
}

}  // namespace
}  // namespace adgc
