// Composed chaos: sustained loss + duplication + reordering + rotating link
// partitions + crash rotation, with the planted-structure oracle asserting
// safety (no sentinel lost) and completeness (all planted cycles reclaimed)
// per seed — plus the backoff-vs-fixed retry-traffic comparison.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/chaos_sweep.h"

namespace adgc {
namespace {

/// Nightly CI scales the sweep without a rebuild: ADGC_SOAK_MULTIPLIER=N
/// appends N extra batches of 10 seeds each.
int soak_multiplier() {
  const char* env = std::getenv("ADGC_SOAK_MULTIPLIER");
  if (!env) return 1;
  const int m = std::atoi(env);
  return m > 0 ? m : 1;
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, SurvivesComposedFaults) {
  sim::ChaosSweepParams p;
  p.seed = GetParam();
  const sim::ChaosSweepResult res = sim::run_chaos_sweep(p);
  EXPECT_FALSE(res.live_lost) << "SAFETY seed=" << p.seed << ": " << res.detail;
  EXPECT_TRUE(res.cycles_collected)
      << "COMPLETENESS seed=" << p.seed << ": " << res.detail;
  EXPECT_EQ(res.crashes, res.recovered) << "a restart failed to recover";
  EXPECT_GT(res.messages_lost, 0u) << "the storm did not actually bite";
}

// The acceptance bar: ≥10 seeds at 10% loss / 5% duplication with rotating
// partitions and crashes.
INSTANTIATE_TEST_SUITE_P(TenSeeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ChaosSweep, NightlyExtraSeeds) {
  const int extra_batches = soak_multiplier() - 1;
  for (int b = 0; b < extra_batches; ++b) {
    for (std::uint64_t s = 0; s < 10; ++s) {
      sim::ChaosSweepParams p;
      p.seed = 1000 + static_cast<std::uint64_t>(b) * 10 + s;
      const sim::ChaosSweepResult res = sim::run_chaos_sweep(p);
      ASSERT_TRUE(res.ok()) << "seed=" << p.seed << ": " << res.detail;
    }
  }
}

// Batching changes the wire shape of the whole control plane (CDMs,
// NewSetStubs and AddScion acks ride in per-peer batch frames that are
// dropped whole on corruption or stale incarnations). The degradation
// oracles must hold in both wire shapes; one seed each way keeps the
// differential cheap — the TenSeeds sweep above already runs the
// default-on shape across ten seeds.
TEST(ChaosSweep, DegradationOraclesHoldWithAndWithoutBatching) {
  for (const bool batching : {true, false}) {
    sim::ChaosSweepParams p;
    p.seed = 3;
    p.batching = batching;
    const sim::ChaosSweepResult res = sim::run_chaos_sweep(p);
    EXPECT_FALSE(res.live_lost)
        << "SAFETY batching=" << batching << ": " << res.detail;
    EXPECT_TRUE(res.cycles_collected)
        << "COMPLETENESS batching=" << batching << ": " << res.detail;
    EXPECT_EQ(res.crashes, res.recovered) << "batching=" << batching;
    EXPECT_GT(res.messages_lost, 0u) << "batching=" << batching;
  }
}

// The asynchronous snapshot pipeline defers every periodic summary publish
// by snapshot_pipeline_latency_us, so detections run against a view one
// publish older than the synchronous path would install — exactly the stale
// views §4's IC rules are built to reject. The degradation oracles must hold
// with the pipeline on and off; one seed each way keeps the differential
// cheap (TenSeeds above already storms the default-on shape).
TEST(ChaosSweep, DegradationOraclesHoldWithAndWithoutPipeline) {
  for (const bool pipeline : {true, false}) {
    sim::ChaosSweepParams p;
    p.seed = 7;
    p.snapshot_pipeline = pipeline;
    const sim::ChaosSweepResult res = sim::run_chaos_sweep(p);
    EXPECT_FALSE(res.live_lost)
        << "SAFETY snapshot_pipeline=" << pipeline << ": " << res.detail;
    EXPECT_TRUE(res.cycles_collected)
        << "COMPLETENESS snapshot_pipeline=" << pipeline << ": " << res.detail;
    EXPECT_EQ(res.crashes, res.recovered) << "snapshot_pipeline=" << pipeline;
    EXPECT_GT(res.messages_lost, 0u) << "snapshot_pipeline=" << pipeline;
  }
}

// Permanent-failure eviction armed during the same storm must be a no-op:
// a peer_death_timeout comfortably above every transient silence the sweep
// injects (partitions and crash downtime are both well under a second) may
// never fire a false eviction, so the safety and completeness oracles must
// hold exactly as in the eviction-disabled baseline.
TEST(ChaosSweep, EvictionArmedMatchesDisabledBaseline) {
  for (const SimTime timeout_us : {SimTime{0}, SimTime{5'000'000}}) {
    sim::ChaosSweepParams p;
    p.seed = 5;
    p.peer_death_timeout_us = timeout_us;
    const sim::ChaosSweepResult res = sim::run_chaos_sweep(p);
    EXPECT_FALSE(res.live_lost)
        << "SAFETY eviction_timeout_us=" << timeout_us << ": " << res.detail;
    EXPECT_TRUE(res.cycles_collected)
        << "COMPLETENESS eviction_timeout_us=" << timeout_us << ": " << res.detail;
    EXPECT_EQ(res.crashes, res.recovered) << "eviction_timeout_us=" << timeout_us;
  }
}

class BackoffComparisonTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackoffComparisonTest, AdaptiveSendsFewerRetries) {
  const sim::BackoffComparison c = sim::run_backoff_comparison(GetParam());
  EXPECT_TRUE(c.adaptive_reduced())
      << "adaptive retries=" << c.adaptive_retry_messages
      << " (total=" << c.adaptive_total_messages << ")"
      << " vs fixed retries=" << c.fixed_retry_messages
      << " (total=" << c.fixed_total_messages << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackoffComparisonTest,
                         ::testing::Values(1, 4, 7));

}  // namespace
}  // namespace adgc
