// Fault tolerance: the paper claims the algorithm tolerates message loss —
// lost CDMs/NewSetStubs only delay collection, never corrupt it. These tests
// run the full protocol under loss, duplication and partitions.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

RuntimeConfig lossy_config(std::uint64_t seed, double loss, double dup) {
  RuntimeConfig cfg = sim::fast_config(seed);
  cfg.net.loss_probability = loss;
  cfg.net.duplicate_probability = dup;
  return cfg;
}

class FaultSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(FaultSweep, CycleStillCollectedUnderLoss) {
  const auto [seed, loss] = GetParam();
  Runtime rt(4, lossy_config(seed, loss, loss / 2));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.run_for(300'000);
  rt.proc(0).remove_root(fig.A.seq);
  // Loss delays things; give it generous time.
  rt.run_for(20'000'000);
  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 0u) << "seed=" << seed << " loss=" << loss;
  EXPECT_GT(rt.total_metrics().messages_lost.get(), 0u);
}

TEST_P(FaultSweep, LiveObjectsSurviveLoss) {
  const auto [seed, loss] = GetParam();
  Runtime rt(4, lossy_config(seed + 100, loss, loss));
  const sim::Fig3 fig = sim::build_fig3(rt);
  // Root stays: nothing may ever be collected, no matter what gets lost.
  rt.run_for(10'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 14u);
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.F.seq));
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, FaultSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(0.05, 0.15, 0.30)));

TEST(FaultTolerance, DuplicatedMessagesAreIdempotent) {
  RuntimeConfig cfg = sim::fast_config(31);
  cfg.net.duplicate_probability = 0.5;
  Runtime rt(4, cfg);
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.run_for(300'000);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  rt.proc(0).remove_root(fig.A.seq);
  rt.run_for(8'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
  EXPECT_GT(rt.total_metrics().messages_duplicated.get(), 0u);
}

TEST(FaultTolerance, PartitionDelaysButNeverCorrupts) {
  Runtime rt(4, sim::fast_config(32));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.run_for(300'000);

  // Partition P3↔P4 both ways, then drop the root: the CDM path is broken,
  // collection cannot complete across the cut...
  rt.network().set_link_blocked(2, 3, true);
  rt.network().set_link_blocked(3, 2, true);
  rt.proc(0).remove_root(fig.A.seq);
  rt.run_for(5'000'000);
  // ...but nothing incorrect happened: either the ring is still fully
  // present or only partially unravelled; objects with reachable scions
  // remain. F (the head of P2's segment) must still exist because its
  // scion can only die after B dies, which needs the full ring collected.
  EXPECT_GT(sim::global_stats(rt).total_objects, 0u);

  // Heal: everything is collected.
  rt.network().set_link_blocked(2, 3, false);
  rt.network().set_link_blocked(3, 2, false);
  rt.run_for(20'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(FaultTolerance, AddScionRetriesThroughLoss) {
  RuntimeConfig cfg = sim::fast_config(33);
  cfg.net.loss_probability = 0.4;
  Runtime rt(3, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  rt.proc(2).add_root(c.seq);
  const RefId a_to_b = rt.link(a, b);
  const RefId a_to_c = rt.link(a, c);

  // Third-party export under 40% loss: must eventually complete.
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::held(a_to_c)},
                    /*want_reply=*/false);
  rt.run_for(10'000'000);
  const HeapObject* bo = rt.proc(1).heap().find(b.seq);
  ASSERT_NE(bo, nullptr);
  // Either the handshake completed and b holds the ref, or (rarely, if the
  // invocation itself was lost after handshake) nothing broke. Check safety:
  // c is alive regardless.
  EXPECT_TRUE(rt.proc(2).heap().exists(c.seq));
  if (!bo->remote_fields.empty()) {
    EXPECT_GE(rt.total_metrics().add_scion_retries.get(), 0u);
    const ScionEntry* sc = rt.proc(2).scions().find(bo->remote_fields[0]);
    ASSERT_NE(sc, nullptr);
    EXPECT_EQ(sc->holder, 1u);
  }
}

TEST(FaultTolerance, LostInvocationLeavesPendingScionCollectable) {
  // The AddScion handshake completes but the invocation carrying the
  // reference is lost: the pending scion must be reclaimed after its grace
  // period rather than leak forever.
  RuntimeConfig cfg = sim::fast_config(34);
  Runtime rt(3, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  rt.proc(2).add_root(c.seq);
  const RefId a_to_b = rt.link(a, b);
  const RefId a_to_c = rt.link(a, c);

  // Let the handshake complete, then block P0→P1 so the invocation is lost.
  rt.network().set_link_blocked(0, 1, true);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::held(a_to_c)},
                    /*want_reply=*/false);
  rt.run_for(500'000);  // handshake to P2 done; invocation dropped at P0→P1
  rt.network().set_link_blocked(0, 1, false);

  // The orphan scion at P2 (holder P1, never confirmed) must eventually go.
  rt.run_for(5'000'000);
  std::size_t scions_for_p1 = rt.proc(2).scions().refs_from_holder(1).size();
  EXPECT_EQ(scions_for_p1, 0u);
  // c itself survives via a's original reference.
  EXPECT_TRUE(rt.proc(2).heap().exists(c.seq));
}

TEST(FaultTolerance, CdmLossOnlyDelaysDetection) {
  // Force the very first detection's CDMs to be lost, then heal.
  Runtime rt(4, sim::fast_config(35));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.run_for(200'000);
  rt.network().set_loss_probability(1.0);  // total blackout
  rt.proc(0).remove_root(fig.A.seq);
  rt.run_for(1'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 13u);  // A died locally

  rt.network().set_loss_probability(0.0);
  rt.run_for(10'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
  EXPECT_GE(rt.total_metrics().detections_timed_out.get(), 1u);
}

}  // namespace
}  // namespace adgc
