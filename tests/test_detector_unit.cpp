// Detector unit tests: a single Detector instance driven with hand-built
// snapshots and CDMs, with hooks captured in-memory. Exercises every
// termination/abort rule in isolation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/dcda/detector.h"

namespace adgc {
namespace {

struct Capture {
  struct Sent {
    ProcessId dst;
    CdmMsg msg;
  };
  std::vector<Sent> sent;
  std::vector<std::pair<RefId, std::uint64_t>> cycles;  // (candidate, ic)
};

class DetectorUnit : public ::testing::Test {
 protected:
  DetectorUnit() {
    cfg.detection_timeout_us = 1000;
    cfg.cdm_hop_limit = 16;
    Detector::Hooks hooks;
    hooks.send_cdm = [this](ProcessId dst, const CdmMsg& msg) {
      cap.sent.push_back({dst, msg});
    };
    hooks.cycle_found = [this](DetectionId, RefId c, std::uint64_t ic) {
      cap.cycles.emplace_back(c, ic);
    };
    det = std::make_unique<Detector>(/*pid=*/0, cfg, metrics, hooks);
  }

  // Installs a snapshot with one scion (ref S) leading to stubs.
  void install(std::vector<ScionSummary> scions, std::vector<StubSummary> stubs) {
    auto snap = std::make_shared<SummarizedGraph>();
    snap->pid = 0;
    for (auto& s : scions) snap->scions.emplace(s.ref, std::move(s));
    for (auto& s : stubs) snap->stubs.emplace(s.ref, std::move(s));
    det->set_snapshot(std::move(snap));
  }

  ProcessConfig cfg;
  Metrics metrics;
  Capture cap;
  std::unique_ptr<Detector> det;

  const RefId S = make_ref_id(0, 1);   // scion at this process
  const RefId T = make_ref_id(5, 2);   // outgoing stub
  const RefId T2 = make_ref_id(5, 3);  // second outgoing stub
};

TEST_F(DetectorUnit, StartWithoutSnapshotFails) {
  EXPECT_FALSE(det->start_detection(S, 0));
  EXPECT_EQ(metrics.detections_started.get(), 0u);
}

TEST_F(DetectorUnit, StartUnknownScionFails) {
  install({}, {});
  EXPECT_FALSE(det->start_detection(S, 0));
}

TEST_F(DetectorUnit, StartSendsCdmPerViableStub) {
  install({{S, /*ic=*/3, /*holder=*/7, /*target=*/1, {T, T2}}},
          {{T, 1, ObjectId{2, 1}, false, {S}}, {T2, 2, ObjectId{3, 1}, false, {S}}});
  EXPECT_TRUE(det->start_detection(S, 0));
  ASSERT_EQ(cap.sent.size(), 2u);
  EXPECT_EQ(cap.sent[0].dst, 2u);
  EXPECT_EQ(cap.sent[1].dst, 3u);
  // Alg_1 = {{S} → {T}} with snapshot ICs, via = the stub followed.
  const CdmMsg& m = cap.sent[0].msg;
  EXPECT_EQ(m.candidate, S);
  EXPECT_EQ(m.via, T);
  EXPECT_EQ(m.via_ic, 1u);
  EXPECT_EQ(m.hops, 1u);
  ASSERT_EQ(m.source.size(), 1u);
  EXPECT_EQ(m.source[0].ref, S);
  EXPECT_EQ(m.source[0].ic, 3u);
  ASSERT_EQ(m.target.size(), 1u);
  EXPECT_EQ(m.target[0].ref, T);
}

TEST_F(DetectorUnit, LocallyReachableStubTerminatesBranch) {
  install({{S, 0, 7, 1, {T, T2}}},
          {{T, 0, ObjectId{2, 1}, /*local_reach=*/true, {S}},
           {T2, 0, ObjectId{3, 1}, false, {S}}});
  EXPECT_TRUE(det->start_detection(S, 0));
  EXPECT_EQ(cap.sent.size(), 1u);  // only T2
  EXPECT_EQ(metrics.detections_aborted_local.get(), 1u);
}

TEST_F(DetectorUnit, AllBranchesLocalEndsDetection) {
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, true, {S}}});
  EXPECT_FALSE(det->start_detection(S, 0));
  EXPECT_EQ(det->manager().in_flight(), 0u);
}

TEST_F(DetectorUnit, DuplicateCandidateRefused) {
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  EXPECT_TRUE(det->start_detection(S, 0));
  EXPECT_FALSE(det->start_detection(S, 0));
  EXPECT_EQ(metrics.detections_started.get(), 1u);
}

TEST_F(DetectorUnit, CdmForUnknownScionDropped) {
  install({}, {});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;  // no such scion in snapshot
  det->on_cdm(msg, 0);
  EXPECT_EQ(metrics.detections_dropped_no_scion.get(), 1u);
  EXPECT_TRUE(cap.sent.empty());
}

TEST_F(DetectorUnit, CdmViaIcMismatchAborts) {
  install({{S, /*ic=*/4, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 3;  // stale stub-side counter
  msg.source = {{make_ref_id(3, 9), 0}};
  msg.target = {{S, 3}};
  det->on_cdm(msg, 0);
  EXPECT_EQ(metrics.detections_aborted_ic.get(), 1u);
  EXPECT_TRUE(cap.sent.empty());
}

TEST_F(DetectorUnit, MatchIcConflictAborts) {
  install({{S, 4, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 4;
  // Same ref in both sets with different ICs.
  msg.source = {{make_ref_id(3, 9), 1}};
  msg.target = {{make_ref_id(3, 9), 2}, {S, 4}};
  det->on_cdm(msg, 0);
  EXPECT_EQ(metrics.detections_aborted_ic.get(), 1u);
}

TEST_F(DetectorUnit, CycleFoundInvokesHookWithCandidateIc) {
  install({{S, 4, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  // Simulate the CDM coming home: source and target cancel entirely.
  CdmMsg msg;
  msg.detection = {0, 1};  // we are pid 0 == initiator
  msg.candidate = S;
  msg.via = S;
  msg.via_ic = 4;
  msg.source = {{S, 4}, {T, 9}};
  msg.target = {{S, 4}, {T, 9}};
  det->on_cdm(msg, 0);
  ASSERT_EQ(cap.cycles.size(), 1u);
  EXPECT_EQ(cap.cycles[0].first, S);
  EXPECT_EQ(cap.cycles[0].second, 4u);
}

TEST_F(DetectorUnit, CycleFoundAtNonInitiatorActsOnArrivalScion) {
  // §3.1 steps 25-26: the empty match may surface away from the initiator;
  // the receiving process deletes its own arrival scion.
  install({{S, 4, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {9, 1};  // initiated elsewhere
  msg.candidate = make_ref_id(9, 5);
  msg.via = S;
  msg.via_ic = 4;
  msg.source = {{make_ref_id(9, 5), 1}, {S, 4}, {T, 9}};
  msg.target = {{make_ref_id(9, 5), 1}, {S, 4}, {T, 9}};
  det->on_cdm(msg, 0);
  ASSERT_EQ(cap.cycles.size(), 1u);
  EXPECT_EQ(cap.cycles[0].first, S);
  EXPECT_EQ(cap.cycles[0].second, 4u);
}

TEST_F(DetectorUnit, CycleFoundWithForeignViaIgnored) {
  // A matching-empty CDM whose via reference is not among the cancelled
  // dependencies is malformed and must not be acted upon.
  install({{S, 4, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {9, 1};
  msg.candidate = make_ref_id(9, 5);
  msg.via = S;
  msg.via_ic = 4;
  msg.source = {{make_ref_id(9, 5), 1}};
  msg.target = {{make_ref_id(9, 5), 1}};
  det->on_cdm(msg, 0);
  EXPECT_TRUE(cap.cycles.empty());
}

TEST_F(DetectorUnit, HopLimitDropsCdm) {
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 0;
  msg.hops = cfg.cdm_hop_limit;
  msg.source = {{make_ref_id(3, 9), 0}};
  msg.target = {{S, 0}};
  det->on_cdm(msg, 0);
  EXPECT_TRUE(cap.sent.empty());
}

TEST_F(DetectorUnit, DerivationEqualToDeliveredIsDropped) {
  // Arrival scion and its one stub are both already in the algebra:
  // expansion adds nothing, so the branch must die (paper §3.1 step 15).
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 0;
  msg.hops = 3;
  msg.source = {{make_ref_id(3, 9), 0}, {S, 0}};
  msg.target = {{T, 0}};
  det->on_cdm(msg, 0);
  EXPECT_TRUE(cap.sent.empty());
  EXPECT_EQ(metrics.detections_dropped_dup.get(), 1u);
}

TEST_F(DetectorUnit, ExtraDependenciesEnterSourceSet) {
  const RefId S2 = make_ref_id(0, 8);  // converging scion (ScionsTo)
  install({{S, 0, 7, 1, {T}}, {S2, 6, 8, 2, {T}}},
          {{T, 0, ObjectId{2, 1}, false, {S, S2}}});
  EXPECT_TRUE(det->start_detection(S, 0));
  ASSERT_EQ(cap.sent.size(), 1u);
  const CdmMsg& m = cap.sent[0].msg;
  ASSERT_EQ(m.source.size(), 2u);  // S and S2, sorted by ref
  EXPECT_EQ(m.source[0].ref, S);
  EXPECT_EQ(m.source[1].ref, S2);
  EXPECT_EQ(m.source[1].ic, 6u);
}

TEST_F(DetectorUnit, EarlyIcCheckAbortsBeforeForwarding) {
  // §3.2 optimization: the derived algebra would carry {T, ic=5} in target
  // while the delivered source already holds {T, ic=4} (from the remote
  // snapshot) — unmatched counters. With the check on, no CDM is sent.
  cfg.early_ic_check = true;
  cfg.cdm_dedup_cache_size = 0;  // we re-deliver the same CDM below
  install({{S, 0, 7, 1, {T}}}, {{T, /*ic=*/5, ObjectId{2, 1}, false, {}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 0;
  msg.hops = 1;
  msg.source = {{make_ref_id(3, 9), 0}, {T, 4}};  // T as a dependency, old IC
  msg.target = {{S, 0}};
  det->on_cdm(msg, 0);
  EXPECT_TRUE(cap.sent.empty());
  EXPECT_EQ(metrics.detections_aborted_ic.get(), 1u);

  // With the check off, the CDM is forwarded and the conflict would be
  // caught at the next hop instead (same safety, one hop later).
  cfg.early_ic_check = false;
  det->on_cdm(msg, 0);
  EXPECT_EQ(cap.sent.size(), 1u);
}

TEST_F(DetectorUnit, DuplicateCdmContentDeduped) {
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 0;
  msg.hops = 1;
  msg.source = {{make_ref_id(3, 9), 0}};
  msg.target = {{S, 0}};
  det->on_cdm(msg, 0);
  EXPECT_EQ(cap.sent.size(), 1u);
  det->on_cdm(msg, 0);  // network duplicate
  EXPECT_EQ(cap.sent.size(), 1u);
  EXPECT_EQ(metrics.cdms_deduped.get(), 1u);

  // A different detection id with the same algebra is NOT a duplicate.
  msg.detection = {3, 2};
  det->on_cdm(msg, 0);
  EXPECT_EQ(cap.sent.size(), 2u);
}

TEST_F(DetectorUnit, DedupCacheDisabled) {
  cfg.cdm_dedup_cache_size = 0;
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  CdmMsg msg;
  msg.detection = {3, 1};
  msg.candidate = make_ref_id(3, 9);
  msg.via = S;
  msg.via_ic = 0;
  msg.hops = 1;
  msg.source = {{make_ref_id(3, 9), 0}};
  msg.target = {{S, 0}};
  det->on_cdm(msg, 0);
  det->on_cdm(msg, 0);
  EXPECT_EQ(cap.sent.size(), 2u);
  EXPECT_EQ(metrics.cdms_deduped.get(), 0u);
}

TEST_F(DetectorUnit, TimeoutExpiresDetection) {
  install({{S, 0, 7, 1, {T}}}, {{T, 0, ObjectId{2, 1}, false, {S}}});
  EXPECT_TRUE(det->start_detection(S, 0));
  EXPECT_EQ(det->manager().in_flight(), 1u);
  det->expire(cfg.detection_timeout_us - 1);
  EXPECT_EQ(det->manager().in_flight(), 1u);
  det->expire(cfg.detection_timeout_us);
  EXPECT_EQ(det->manager().in_flight(), 0u);
  EXPECT_EQ(metrics.detections_timed_out.get(), 1u);
  // The candidate can be probed again afterwards.
  EXPECT_TRUE(det->start_detection(S, cfg.detection_timeout_us));
}

TEST_F(DetectorUnit, InflightCapRespected) {
  cfg.max_inflight_detections = 2;
  std::vector<ScionSummary> scions;
  std::vector<StubSummary> stubs;
  for (int i = 0; i < 4; ++i) {
    const RefId sc = make_ref_id(0, 10 + i);
    const RefId st = make_ref_id(5, 10 + i);
    scions.push_back({sc, 0, 7, static_cast<ObjectSeq>(i), {st}});
    stubs.push_back({st, 0, ObjectId{2, static_cast<ObjectSeq>(i)}, false, {sc}});
  }
  install(std::move(scions), std::move(stubs));
  EXPECT_TRUE(det->start_detection(make_ref_id(0, 10), 0));
  EXPECT_TRUE(det->start_detection(make_ref_id(0, 11), 0));
  EXPECT_FALSE(det->start_detection(make_ref_id(0, 12), 0));
}

}  // namespace
}  // namespace adgc
