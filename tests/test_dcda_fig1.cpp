// The paper's Fig. 1: a converging remote reference (w_P4 → x_P1) is an
// extra dependency of the cycle x→y→z→x. While unresolved it must prevent
// detection; once the acyclic DGC clears it, the cycle is collectable.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

using sim::build_fig1;
using sim::Fig1;

void snapshot_all(Runtime& rt) {
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    rt.proc(pid).run_lgc();
    rt.proc(pid).take_snapshot();
  }
  rt.run_for(30'000);
}

TEST(DcdaFig1, LiveDependencyBlocksDetection) {
  Runtime rt(4, sim::manual_config(5));
  const Fig1 fig = build_fig1(rt, /*pin_w=*/true);
  snapshot_all(rt);

  // Probe every scion of the cycle; x has two incoming scions (z's and w's),
  // so every CDM returning to P1 carries an unresolved dependency.
  rt.proc(1).detector().start_detection(fig.x_to_y, rt.now());
  rt.proc(2).detector().start_detection(fig.y_to_z, rt.now());
  rt.proc(0).detector().start_detection(fig.z_to_x, rt.now());
  rt.run_for(300'000);

  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
  sim::settle_manual(rt, 6);
  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 4u);  // x, y, z, w all alive
  EXPECT_EQ(st.garbage_objects, 0u);
}

TEST(DcdaFig1, GarbageDependencyResolvesThroughAcyclicDgc) {
  Runtime rt(4, sim::manual_config(6));
  const Fig1 fig = build_fig1(rt, /*pin_w=*/false);
  // w is garbage from the start: the whole structure is hybrid garbage
  // (an acyclic branch w→x converging on a pure cycle).
  snapshot_all(rt);

  // While w's stub still exists, the dependency is real: detection of the
  // cycle via x's scion from z must not conclude.
  rt.proc(0).detector().start_detection(fig.z_to_x, rt.now());
  rt.run_for(200'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);

  // One acyclic round: P4's LGC kills w and its stub; NewSetStubs deletes
  // the w→x scion at P1.
  rt.proc(3).run_lgc();
  rt.run_for(50'000);
  EXPECT_FALSE(rt.proc(0).scions().contains(fig.w_to_x));

  // Fresh snapshots now show a clean cycle; detection succeeds.
  snapshot_all(rt);
  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.x_to_y, rt.now()));
  rt.run_for(200'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 1u);

  sim::settle_manual(rt, 6);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(DcdaFig1, StaleSnapshotStillSafe) {
  // P1's snapshot still contains the w→x scion even after the acyclic DGC
  // removed it: detections based on the stale snapshot keep the dependency
  // and must simply not conclude (conservative, no unsafety), until a fresh
  // snapshot is taken.
  Runtime rt(4, sim::manual_config(8));
  const Fig1 fig = build_fig1(rt, /*pin_w=*/false);
  snapshot_all(rt);  // snapshot BEFORE w's stub disappears

  rt.proc(3).run_lgc();  // w dies; scion w→x deleted at P1
  rt.run_for(50'000);
  ASSERT_FALSE(rt.proc(0).scions().contains(fig.w_to_x));

  // Old snapshot at P1 still lists the scion as a dependency.
  rt.proc(1).detector().start_detection(fig.x_to_y, rt.now());
  rt.run_for(200'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);

  // The objects are still there (conservative).
  EXPECT_TRUE(rt.proc(0).heap().exists(fig.x.seq));

  // Refresh and retry from another entry point (the first detection is
  // still nominally in flight at P2 under the manual config): concludes.
  snapshot_all(rt);
  ASSERT_TRUE(rt.proc(2).detector().start_detection(fig.y_to_z, rt.now()));
  rt.run_for(200'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 1u);
}

TEST(DcdaFig1, AutomaticHybridCollection) {
  Runtime rt(4, sim::fast_config(9));
  build_fig1(rt, /*pin_w=*/false);
  rt.run_for(3'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(DcdaFig1, DependencyDroppedThenCycleStaysIfRooted) {
  // Even after w disappears, a root on any cycle member keeps everything.
  Runtime rt(4, sim::fast_config(10));
  const Fig1 fig = build_fig1(rt, /*pin_w=*/false);
  rt.proc(1).add_root(fig.y.seq);
  rt.run_for(3'000'000);
  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 3u);  // x, y, z; w collected
  EXPECT_EQ(st.garbage_objects, 0u);
}

}  // namespace
}  // namespace adgc
