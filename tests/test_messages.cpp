// Wire codec round-trip tests for every message type, plus malformed-input
// rejection.
#include <gtest/gtest.h>

#include "src/net/message.h"

namespace adgc {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const auto bytes = encode_message(MessagePayload{msg});
  const MessagePayload decoded = decode_message(bytes);
  const T* out = std::get_if<T>(&decoded);
  EXPECT_NE(out, nullptr) << "decoded to a different alternative";
  return out ? *out : T{};
}

TEST(Messages, InvokeRoundTrip) {
  InvokeMsg m;
  m.ref = make_ref_id(1, 5);
  m.ic = 42;
  m.target = ObjectId{2, 7};
  m.caller = ObjectId{1, 3};
  m.effect = InvokeEffect::kStoreArgs;
  m.args = {{make_ref_id(1, 6), ObjectId{3, 9}}, {kNoRef, ObjectId{2, 1}}};
  m.want_reply = true;
  m.call_id = 77;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, InvokeEmptyArgs) {
  InvokeMsg m;
  m.ref = make_ref_id(9, 1);
  m.effect = InvokeEffect::kTouch;
  m.want_reply = false;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, ReplyRoundTrip) {
  ReplyMsg m;
  m.ref = make_ref_id(4, 4);
  m.ic = 1234567890123ULL;
  m.call_id = 55;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, NewSetStubsRoundTrip) {
  NewSetStubsMsg m;
  m.export_seq = 17;
  m.live = {make_ref_id(0, 1), make_ref_id(0, 2), make_ref_id(5, 900)};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, NewSetStubsEmpty) {
  NewSetStubsMsg m;
  m.export_seq = 1;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, AddScionRoundTrip) {
  AddScionMsg m;
  m.ref = make_ref_id(3, 14);
  m.target_seq = 159;
  m.holder = 26;
  m.handshake = 535;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, AddScionAckRoundTrip) {
  AddScionAckMsg m;
  m.ref = make_ref_id(2, 71);
  m.handshake = 828;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, CdmRoundTrip) {
  CdmMsg m;
  m.detection = DetectionId{2, 99};
  m.candidate = make_ref_id(2, 1);
  m.via = make_ref_id(3, 7);
  m.via_ic = 4;
  m.hops = 12;
  m.source = {{make_ref_id(2, 1), 4}, {make_ref_id(4, 2), 0}};
  m.target = {{make_ref_id(3, 7), 4}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, BacktraceRoundTrip) {
  BacktraceRequestMsg rq;
  rq.trace_id = 7;
  rq.req_id = 13;
  rq.subject_ref = make_ref_id(1, 1);
  rq.visited = {make_ref_id(1, 1), make_ref_id(2, 2)};
  rq.depth = 3;
  EXPECT_EQ(round_trip(rq), rq);

  BacktraceReplyMsg rp;
  rp.trace_id = 7;
  rp.req_id = 13;
  rp.reachable = true;
  EXPECT_EQ(round_trip(rp), rp);
}

TEST(Messages, GlobalTraceRoundTrips) {
  GtStartMsg st;
  st.epoch = 3;
  st.epoch_start = 123456789;
  EXPECT_EQ(round_trip(st), st);

  GtMarkMsg mk;
  mk.epoch = 3;
  mk.ref = make_ref_id(7, 8);
  EXPECT_EQ(round_trip(mk), mk);

  GtPollMsg pl;
  pl.epoch = 3;
  pl.poll_seq = 11;
  EXPECT_EQ(round_trip(pl), pl);

  GtStatusMsg su;
  su.epoch = 3;
  su.poll_seq = 11;
  su.marks_sent = 100;
  su.marks_processed = 99;
  EXPECT_EQ(round_trip(su), su);

  GtFinishMsg fi;
  fi.epoch = 3;
  EXPECT_EQ(round_trip(fi), fi);
}

TEST(Messages, UnknownTagRejected) {
  std::vector<std::byte> bytes = {std::byte{0xEE}};
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, EmptyBufferRejected) {
  EXPECT_THROW(decode_message(std::vector<std::byte>{}), DecodeError);
}

TEST(Messages, TruncatedRejected) {
  InvokeMsg m;
  m.ref = make_ref_id(1, 5);
  auto bytes = encode_message(MessagePayload{m});
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::vector<std::byte> trunc(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_message(trunc), DecodeError) << "cut=" << cut;
  }
}

TEST(Messages, TrailingGarbageRejected) {
  ReplyMsg m;
  m.ref = make_ref_id(1, 1);
  auto bytes = encode_message(MessagePayload{m});
  bytes.push_back(std::byte{0});
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, BadInvokeEffectRejected) {
  InvokeMsg m;
  m.ref = make_ref_id(1, 5);
  auto bytes = encode_message(MessagePayload{m});
  // The effect byte sits after tag(1)+ref(8)+ic(8)+target(12)+caller(12).
  bytes[1 + 8 + 8 + 12 + 12] = std::byte{200};
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, KindNames) {
  EXPECT_STREQ(message_kind(MessagePayload{InvokeMsg{}}), "Invoke");
  EXPECT_STREQ(message_kind(MessagePayload{CdmMsg{}}), "Cdm");
  EXPECT_STREQ(message_kind(MessagePayload{NewSetStubsMsg{}}), "NewSetStubs");
  EXPECT_STREQ(message_kind(MessagePayload{BatchMsg{}}), "Batch");
}

BatchMsg sample_batch() {
  CdmMsg cdm;
  cdm.detection = DetectionId{3, 9};
  cdm.candidate = make_ref_id(3, 1);
  NewSetStubsMsg nss;
  nss.export_seq = 5;
  nss.live = {make_ref_id(0, 1), make_ref_id(0, 2)};
  AddScionAckMsg ack;
  ack.ref = make_ref_id(4, 4);
  ack.handshake = 77;
  BatchMsg batch;
  batch.items.push_back(encode_message(MessagePayload{cdm}));
  batch.items.push_back(encode_message(MessagePayload{nss}));
  batch.items.push_back(encode_message(MessagePayload{ack}));
  return batch;
}

TEST(Messages, BatchRoundTrip) {
  const BatchMsg batch = sample_batch();
  EXPECT_EQ(round_trip(batch), batch);
  const auto items = decode_batch_items(batch);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_STREQ(message_kind(items[0]), "Cdm");
  EXPECT_STREQ(message_kind(items[1]), "NewSetStubs");
  EXPECT_STREQ(message_kind(items[2]), "AddScionAck");
  EXPECT_EQ(std::get<AddScionAckMsg>(items[2]).handshake, 77u);
}

TEST(Messages, EmptyBatchRejected) {
  // tag + count=0: a batch must carry at least one item.
  std::vector<std::byte> bytes = {std::byte{14}, std::byte{0}, std::byte{0},
                                  std::byte{0}, std::byte{0}};
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, BatchTruncationRejected) {
  const auto bytes = encode_message(MessagePayload{sample_batch()});
  for (std::size_t cut = 1; cut < bytes.size(); cut += 5) {
    std::vector<std::byte> trunc(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_message(trunc), DecodeError) << "cut=" << cut;
  }
}

TEST(Messages, BatchHugeCountRejected) {
  // Item count far beyond what the remaining bytes could hold must be
  // refused up front, before any per-item allocation.
  auto bytes = encode_message(MessagePayload{sample_batch()});
  bytes[1] = std::byte{0xff};
  bytes[2] = std::byte{0xff};
  bytes[3] = std::byte{0xff};
  bytes[4] = std::byte{0x7f};
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, NestedBatchRejected) {
  BatchMsg inner;
  inner.items.push_back(encode_message(MessagePayload{ReplyMsg{}}));
  BatchMsg outer;
  outer.items.push_back(encode_message(MessagePayload{inner}));
  const auto bytes = encode_message(MessagePayload{outer});
  EXPECT_THROW(decode_message(bytes), DecodeError);
  // decode_batch_items applies the same rule when handed a hand-built batch.
  EXPECT_THROW(decode_batch_items(outer), DecodeError);
}

TEST(Messages, BatchEmptyItemRejected) {
  // tag + count=1 + item length 0.
  std::vector<std::byte> bytes = {std::byte{14}, std::byte{1}, std::byte{0},
                                  std::byte{0},  std::byte{0}, std::byte{0},
                                  std::byte{0},  std::byte{0}, std::byte{0}};
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Messages, BatchItemGarbagePoisonsWholeBatch) {
  BatchMsg batch = sample_batch();
  batch.items[1][0] = std::byte{0xEE};  // unknown tag inside item 1
  EXPECT_THROW(decode_batch_items(batch), DecodeError)
      << "a corrupt item must poison the whole batch, not skip it";
}

}  // namespace
}  // namespace adgc
