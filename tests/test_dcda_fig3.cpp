// The paper's Fig. 3 walkthrough (§3): a simple distributed garbage cycle
// over four processes, traced step by step with manual collector driving,
// plus the automatic end-to-end variant.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

using sim::build_fig3;
using sim::Fig3;

class DcdaFig3 : public ::testing::Test {
 protected:
  DcdaFig3() : rt(4, sim::manual_config(11)) {}

  Runtime rt;
};

TEST_F(DcdaFig3, SummarizationMatchesPaper) {
  const Fig3 fig = build_fig3(rt);
  auto& p2 = rt.proc(1);
  p2.run_lgc();
  p2.take_snapshot();
  const auto snap = p2.current_summary();
  ASSERT_NE(snap, nullptr);

  // Scion(F_P2).StubsFrom == {Q_P4}; Stub(Q_P4).ScionsTo == {F_P2},
  // Local.Reach == false (the paper's summarized-graph example).
  const ScionSummary* scion_f = snap->scion(fig.B_to_F);
  ASSERT_NE(scion_f, nullptr);
  ASSERT_EQ(scion_f->stubs_from.size(), 1u);
  EXPECT_EQ(scion_f->stubs_from[0], fig.J_to_Q);

  const StubSummary* stub_q = snap->stub(fig.J_to_Q);
  ASSERT_NE(stub_q, nullptr);
  EXPECT_FALSE(stub_q->local_reach);
  ASSERT_EQ(stub_q->scions_to.size(), 1u);
  EXPECT_EQ(stub_q->scions_to[0], fig.B_to_F);
}

TEST_F(DcdaFig3, RootedCycleIsNeverCollected) {
  const Fig3 fig = build_fig3(rt);
  sim::settle_manual(rt, 8);
  // A is still a root: every object must survive, and the candidate F_P2
  // must never be selected (its path is locally reachable through A→B).
  for (ProcessId pid = 0; pid < 4; ++pid) {
    EXPECT_GT(rt.proc(pid).heap().size(), 0u) << "process " << pid;
  }
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.F.seq));
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
}

TEST_F(DcdaFig3, ManualDetectionFindsCycle) {
  const Fig3 fig = build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);

  // One LGC round everywhere: A is reclaimed at P1 (locally unreachable and
  // no scion protects it), the ring survives via its scions.
  for (ProcessId pid = 0; pid < 4; ++pid) rt.proc(pid).run_lgc();
  rt.run_for(20'000);
  EXPECT_FALSE(rt.proc(0).heap().exists(fig.A.seq));
  EXPECT_TRUE(rt.proc(0).heap().exists(fig.B.seq));

  // Snapshot everywhere, then probe the candidate F_P2 (the paper's choice).
  for (ProcessId pid = 0; pid < 4; ++pid) rt.proc(pid).take_snapshot();
  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.B_to_F, rt.now()));

  // The CDM travels P2 → P4 → P3 → P1 → P2 (4 hops).
  rt.run_for(100'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 1u);
  // The candidate scion must be gone.
  EXPECT_FALSE(rt.proc(1).scions().contains(fig.B_to_F));
  // Exactly 4 CDMs were needed for this ring.
  EXPECT_EQ(rt.total_metrics().cdms_sent.get(), 4u);

  // The acyclic DGC unravels the rest.
  sim::settle_manual(rt, 8);
  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 0u);
  EXPECT_EQ(st.stubs, 0u);
  EXPECT_EQ(st.scions, 0u);
}

TEST_F(DcdaFig3, DetectionFromEveryEntryPoint) {
  // Any of the four ring scions works as the candidate.
  const Fig3 fig = build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  for (ProcessId pid = 0; pid < 4; ++pid) rt.proc(pid).run_lgc();
  rt.run_for(20'000);
  for (ProcessId pid = 0; pid < 4; ++pid) rt.proc(pid).take_snapshot();

  struct Entry {
    ProcessId pid;
    RefId ref;
  };
  const Entry entries[] = {
      {1, fig.B_to_F}, {3, fig.J_to_Q}, {2, fig.S_to_O}, {0, fig.K_to_D}};
  // Start from S_to_O's owner: scion for O lives at P3 (pid 2).
  for (const Entry& e : entries) {
    Runtime fresh(4, sim::manual_config(100 + e.pid));
    const Fig3 g = build_fig3(fresh);
    fresh.proc(0).remove_root(g.A.seq);
    for (ProcessId pid = 0; pid < 4; ++pid) fresh.proc(pid).run_lgc();
    fresh.run_for(20'000);
    for (ProcessId pid = 0; pid < 4; ++pid) fresh.proc(pid).take_snapshot();
    const RefId ref = e.ref == fig.B_to_F   ? g.B_to_F
                      : e.ref == fig.J_to_Q ? g.J_to_Q
                      : e.ref == fig.S_to_O ? g.S_to_O
                                            : g.K_to_D;
    ASSERT_TRUE(fresh.proc(e.pid).detector().start_detection(ref, fresh.now()))
        << "entry " << e.pid;
    fresh.run_for(100'000);
    EXPECT_EQ(fresh.total_metrics().detections_cycle_found.get(), 1u)
        << "entry " << e.pid;
    sim::settle_manual(fresh, 8);
    EXPECT_EQ(sim::global_stats(fresh).total_objects, 0u) << "entry " << e.pid;
  }
}

TEST(DcdaFig3Auto, EndToEndAutomatic) {
  Runtime rt(4, sim::fast_config(21));
  const Fig3 fig = build_fig3(rt);
  rt.run_for(200'000);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);

  rt.proc(0).remove_root(fig.A.seq);
  rt.run_for(3'000'000);

  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 0u) << "garbage ring not reclaimed";
  EXPECT_EQ(st.scions, 0u);
  EXPECT_EQ(st.stubs, 0u);
  EXPECT_GE(rt.total_metrics().detections_cycle_found.get(), 1u);
}

}  // namespace
}  // namespace adgc
