// Tests for the baseline back-tracing cycle detector (Maheshwari-Liskov
// style), and a head-to-head sanity check against the DCDA.
#include <gtest/gtest.h>

#include "src/baseline/backtrace_detector.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

void snapshot_all(Runtime& rt) {
  for (ProcessId pid = 0; pid < rt.size(); ++pid) {
    rt.proc(pid).run_lgc();
    rt.proc(pid).take_snapshot();
  }
  rt.run_for(30'000);
}

TEST(Backtrace, DetectsSimpleCycle) {
  Runtime rt(4, sim::manual_config(81));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  rt.proc(1).start_backtrace(fig.B_to_F);
  rt.run_for(300'000);

  const Metrics m = rt.total_metrics();
  EXPECT_EQ(m.backtrace_cycles_found.get(), 1u);
  EXPECT_FALSE(rt.proc(1).scions().contains(fig.B_to_F));

  sim::settle_manual(rt, 8);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(Backtrace, RootedCycleReportsReachable) {
  Runtime rt(4, sim::manual_config(82));
  const sim::Fig3 fig = sim::build_fig3(rt);  // A rooted
  snapshot_all(rt);

  rt.proc(1).start_backtrace(fig.B_to_F);
  rt.run_for(300'000);
  EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 0u);
  EXPECT_TRUE(rt.proc(1).scions().contains(fig.B_to_F));
}

TEST(Backtrace, ConvergingDependencyTraced) {
  // Fig. 1 shape: the back-trace must follow BOTH scions into x.
  {
    Runtime rt(4, sim::manual_config(83));
    const sim::Fig1 fig = sim::build_fig1(rt, /*pin_w=*/true);
    snapshot_all(rt);
    rt.proc(1).start_backtrace(fig.x_to_y);
    rt.run_for(300'000);
    // w is rooted: reachable, nothing deleted.
    EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 0u);
  }
  {
    Runtime rt(4, sim::manual_config(84));
    const sim::Fig1 fig = sim::build_fig1(rt, /*pin_w=*/false);
    // Three rounds: reclaim w and its stub (acyclic DGC), let the pending
    // w→x scion age past its grace and be dropped by NewSetStubs, then
    // refresh P1's snapshot so the dead dependency is gone.
    snapshot_all(rt);
    snapshot_all(rt);
    snapshot_all(rt);
    rt.proc(1).start_backtrace(fig.x_to_y);
    rt.run_for(300'000);
    EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 1u);
  }
}

TEST(Backtrace, MutualCyclesDetected) {
  Runtime rt(6, sim::manual_config(85));
  const sim::Fig4 fig = sim::build_fig4(rt);
  snapshot_all(rt);
  rt.proc(1).start_backtrace(fig.D_to_F);
  rt.run_for(500'000);
  EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 1u);
  sim::settle_manual(rt, 10);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(Backtrace, IntermediateStateIsHeldAndDrains) {
  // The §5 drawback made measurable: during the trace, intermediate
  // processes hold per-trace records; after completion they drain.
  Runtime rt(4, sim::manual_config(86));
  const sim::Fig1 fig = sim::build_fig1(rt, /*pin_w=*/false);
  snapshot_all(rt);
  rt.proc(1).start_backtrace(fig.x_to_y);
  rt.run_for(500'000);
  for (ProcessId pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(rt.proc(pid).backtracer().state_records(), 0u) << "pid " << pid;
  }
}

TEST(Backtrace, MutationInvalidatesTrace) {
  // The scion is invoked mid-trace: the final revalidation must refuse.
  Runtime rt(4, sim::manual_config(87));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  rt.proc(1).start_backtrace(fig.B_to_F);
  // Immediately touch the reference (before replies return).
  rt.proc(0).invoke(fig.B.seq, fig.B_to_F, InvokeEffect::kTouch);
  rt.run_for(300'000);
  // Trace concluded but the IC changed → no deletion.
  EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 0u);
  EXPECT_TRUE(rt.proc(1).scions().contains(fig.B_to_F));
}

TEST(Backtrace, ExpiredTraceStateDrains) {
  Runtime rt(4, sim::manual_config(88));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  // Cut a link so the trace can never complete.
  rt.network().set_link_blocked(1, 0, true);  // P2→P1 (requests toward P1)
  rt.proc(1).start_backtrace(fig.B_to_F);
  rt.run_for(300'000);
  for (ProcessId pid = 0; pid < 4; ++pid) {
    rt.proc(pid).backtracer().expire(rt.now(), /*max_age=*/1);
    EXPECT_EQ(rt.proc(pid).backtracer().state_records(), 0u);
  }
}

TEST(Backtrace, HeadToHeadWithDcda) {
  // Both detectors must agree on the Fig. 3 verdicts; the baseline takes
  // two messages per hop (request+reply) where the DCDA takes one.
  Runtime rt(4, sim::manual_config(89));
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  rt.proc(1).start_backtrace(fig.B_to_F);
  rt.run_for(300'000);
  const std::uint64_t bt_msgs = rt.total_metrics().backtrace_requests.get() +
                                rt.total_metrics().backtrace_replies.get();

  Runtime rt2(4, sim::manual_config(90));
  const sim::Fig3 fig2 = sim::build_fig3(rt2);
  rt2.proc(0).remove_root(fig2.A.seq);
  snapshot_all(rt2);
  rt2.proc(1).detector().start_detection(fig2.B_to_F, rt2.now());
  rt2.run_for(300'000);
  const std::uint64_t dcda_msgs = rt2.total_metrics().cdms_sent.get();

  EXPECT_EQ(rt.total_metrics().backtrace_cycles_found.get(), 1u);
  EXPECT_EQ(rt2.total_metrics().detections_cycle_found.get(), 1u);
  EXPECT_GT(bt_msgs, dcda_msgs);
}

}  // namespace
}  // namespace adgc
