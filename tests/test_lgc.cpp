// Unit tests for the local mark-sweep collector and its DGC contract.
#include <gtest/gtest.h>

#include "src/lgc/mark_sweep.h"

namespace adgc {
namespace {

struct World {
  Heap heap;
  StubTable stubs;
  ScionTable scions;
  std::set<RefId> pinned;

  lgc::Result gc() { return lgc::run(heap, stubs, scions, pinned, 0); }
};

TEST(Lgc, CollectsUnreachable) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  const ObjectSeq c = w.heap.allocate();
  w.heap.add_root(a);
  w.heap.add_local_field(a, b);

  const auto res = w.gc();
  EXPECT_EQ(res.objects_reclaimed, 1u);
  EXPECT_TRUE(w.heap.exists(a));
  EXPECT_TRUE(w.heap.exists(b));
  EXPECT_FALSE(w.heap.exists(c));
}

TEST(Lgc, CollectsLocalCycles) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_local_field(a, b);
  w.heap.add_local_field(b, a);
  const auto res = w.gc();
  EXPECT_EQ(res.objects_reclaimed, 2u);
  EXPECT_EQ(w.heap.size(), 0u);
}

TEST(Lgc, ScionsActAsRoots) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_local_field(a, b);
  w.scions.ensure(make_ref_id(9, 1), /*holder=*/9, a, 0);

  const auto res = w.gc();
  EXPECT_EQ(res.objects_reclaimed, 0u);
  EXPECT_TRUE(w.heap.exists(a));
  EXPECT_TRUE(w.heap.exists(b));
  // But the scion-kept objects are not root-reachable.
  EXPECT_FALSE(res.root_reachable.contains(a));
}

TEST(Lgc, DeletingScionFreesSubtree) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const RefId ref = make_ref_id(9, 1);
  w.scions.ensure(ref, 9, a, 0);
  w.gc();
  EXPECT_TRUE(w.heap.exists(a));
  w.scions.erase(ref);
  w.gc();
  EXPECT_FALSE(w.heap.exists(a));
}

TEST(Lgc, OrphanedStubsDeleted) {
  World w;
  const ObjectSeq a = w.heap.allocate();  // will die
  const RefId ref = make_ref_id(0, 1);
  w.stubs.ensure(ref, ObjectId{1, 5}, 0);
  w.heap.add_remote_field(a, ref);

  const auto res = w.gc();
  EXPECT_EQ(res.objects_reclaimed, 1u);
  EXPECT_EQ(res.stubs_deleted, 1u);
  EXPECT_FALSE(w.stubs.contains(ref));
}

TEST(Lgc, PinnedStubsSurviveWithoutHolders) {
  World w;
  const RefId ref = make_ref_id(0, 1);
  w.stubs.ensure(ref, ObjectId{1, 5}, 0);
  w.pinned.insert(ref);
  const auto res = w.gc();
  EXPECT_EQ(res.stubs_deleted, 0u);
  EXPECT_TRUE(w.stubs.contains(ref));
  w.pinned.clear();
  w.gc();
  EXPECT_FALSE(w.stubs.contains(ref));
}

TEST(Lgc, LocalReachFlagComputed) {
  World w;
  // root → a → (stub r1); scion-kept s → (stub r2).
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq s = w.heap.allocate();
  w.heap.add_root(a);
  const RefId r1 = make_ref_id(0, 1), r2 = make_ref_id(0, 2);
  w.stubs.ensure(r1, ObjectId{1, 1}, 0);
  w.stubs.ensure(r2, ObjectId{2, 1}, 0);
  w.heap.add_remote_field(a, r1);
  w.heap.add_remote_field(s, r2);
  w.scions.ensure(make_ref_id(9, 9), 9, s, 0);

  w.gc();
  EXPECT_TRUE(w.stubs.find(r1)->local_reach);
  EXPECT_FALSE(w.stubs.find(r2)->local_reach);
}

TEST(Lgc, SharedStubLocalReachIsAnyHolder) {
  World w;
  const ObjectSeq a = w.heap.allocate();  // root-reachable holder
  const ObjectSeq s = w.heap.allocate();  // scion-kept holder
  w.heap.add_root(a);
  w.scions.ensure(make_ref_id(9, 9), 9, s, 0);
  const RefId r = make_ref_id(0, 1);
  w.stubs.ensure(r, ObjectId{1, 1}, 0);
  w.heap.add_remote_field(a, r);
  w.heap.add_remote_field(s, r);

  w.gc();
  EXPECT_TRUE(w.stubs.find(r)->local_reach);
  EXPECT_EQ(w.stubs.find(r)->holders, 2u);
}

TEST(Lgc, ScionTargetRootReachableFlag) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();
  w.heap.add_root(a);
  w.heap.add_local_field(a, b);
  const RefId ra = make_ref_id(9, 1), rb = make_ref_id(9, 2);
  w.scions.ensure(ra, 9, b, 0);  // target root-reachable via a
  const ObjectSeq c = w.heap.allocate();
  w.scions.ensure(rb, 9, c, 0);  // target only scion-reachable

  w.gc();
  EXPECT_TRUE(w.scions.find(ra)->target_root_reachable);
  EXPECT_FALSE(w.scions.find(rb)->target_root_reachable);
}

TEST(Lgc, HolderCountsRecomputed) {
  World w;
  const ObjectSeq a = w.heap.allocate();
  const ObjectSeq b = w.heap.allocate();  // dies
  w.heap.add_root(a);
  const RefId r = make_ref_id(0, 1);
  w.stubs.ensure(r, ObjectId{1, 1}, 0);
  // Corrupt the incremental count on purpose; the LGC must fix it.
  w.stubs.find(r)->holders = 99;
  w.heap.add_remote_field(a, r);
  w.heap.add_remote_field(b, r);

  w.gc();
  EXPECT_EQ(w.stubs.find(r)->holders, 1u);
}

TEST(Lgc, ReachFromHelper) {
  Heap h;
  const ObjectSeq a = h.allocate();
  const ObjectSeq b = h.allocate();
  const ObjectSeq c = h.allocate();
  h.add_local_field(a, b);
  const auto reach = lgc::reach_from(h, {a});
  EXPECT_TRUE(reach.contains(a));
  EXPECT_TRUE(reach.contains(b));
  EXPECT_FALSE(reach.contains(c));
  EXPECT_TRUE(lgc::reach_from(h, {}).empty());
  EXPECT_TRUE(lgc::reach_from(h, {kNoObject}).empty());
}

TEST(Lgc, EmptyHeapIsFine) {
  World w;
  const auto res = w.gc();
  EXPECT_EQ(res.objects_before, 0u);
  EXPECT_EQ(res.objects_reclaimed, 0u);
}

}  // namespace
}  // namespace adgc
