// Unit tests for metrics, config rendering and the log level gate.
#include <gtest/gtest.h>

#include "src/common/config.h"
#include "src/common/log.h"
#include "src/common/metrics.h"

namespace adgc {
namespace {

TEST(Metrics, CountersStartAtZero) {
  Metrics m;
  EXPECT_EQ(m.cdms_sent.get(), 0u);
  EXPECT_EQ(m.objects_allocated.get(), 0u);
}

TEST(Metrics, AddAccumulates) {
  Metrics m;
  m.cdms_sent.add();
  m.cdms_sent.add(41);
  EXPECT_EQ(m.cdms_sent.get(), 42u);
  m.cdms_sent.reset();
  EXPECT_EQ(m.cdms_sent.get(), 0u);
}

TEST(Metrics, MergeSumsEveryField) {
  Metrics a, b;
  a.cdms_sent.add(10);
  a.messages_lost.add(1);
  b.cdms_sent.add(5);
  b.detections_started.add(7);
  a.merge(b);
  EXPECT_EQ(a.cdms_sent.get(), 15u);
  EXPECT_EQ(a.messages_lost.get(), 1u);
  EXPECT_EQ(a.detections_started.get(), 7u);
  // b untouched.
  EXPECT_EQ(b.cdms_sent.get(), 5u);
}

TEST(Metrics, ReportListsOnlyNonZero) {
  Metrics m;
  m.cdms_sent.add(3);
  m.scions_created.add(2);
  const std::string rep = m.report("> ");
  EXPECT_NE(rep.find("> cdms_sent = 3"), std::string::npos);
  EXPECT_NE(rep.find("> scions_created = 2"), std::string::npos);
  EXPECT_EQ(rep.find("messages_lost"), std::string::npos);
}

TEST(Metrics, ResetZeroesEverything) {
  Metrics m;
  m.cdms_sent.add(3);
  m.gt_marks_sent.add(9);
  m.reset();
  EXPECT_TRUE(m.report().empty());
}

TEST(Metrics, CopyTakesSnapshot) {
  Metrics m;
  m.invocations_sent.add(4);
  const Metrics copy = m;
  m.invocations_sent.add(1);
  EXPECT_EQ(copy.invocations_sent.get(), 4u);
  EXPECT_EQ(m.invocations_sent.get(), 5u);
}

TEST(Config, DescribeMentionsKeyKnobs) {
  RuntimeConfig cfg;
  cfg.seed = 99;
  cfg.net.loss_probability = 0.25;
  cfg.proc.dcda_enabled = false;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("seed=99"), std::string::npos);
  EXPECT_NE(d.find("loss=0.25"), std::string::npos);
  EXPECT_NE(d.find("dcda=off"), std::string::npos);
}

TEST(Log, LevelGateWorks) {
  const LogLevel before = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kTrace);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  Log::set_level(before);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace adgc
