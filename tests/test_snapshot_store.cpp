// Persistent snapshot store: round trips, retention, corruption handling,
// atomic publish, and end-to-end recovery of a process's summarized view.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/snapshot/snapshot_store.h"

namespace adgc {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() {
    dir_ = fs::temp_directory_path() /
           ("adgc_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~StoreTest() override { fs::remove_all(dir_); }

  static std::vector<std::byte> blob(std::initializer_list<int> vals) {
    std::vector<std::byte> out;
    for (int v : vals) out.push_back(static_cast<std::byte>(v));
    return out;
  }

  fs::path dir_;
};

TEST_F(StoreTest, WriteReadRoundTrip) {
  SnapshotStore store(dir_);
  const auto payload = blob({1, 2, 3, 4, 5});
  store.write(3, 7, payload);
  const auto back = store.read_latest(3);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->bytes, payload);
}

TEST_F(StoreTest, LatestVersionWins) {
  SnapshotStore store(dir_, /*retain=*/5);
  store.write(1, 1, blob({1}));
  store.write(1, 3, blob({3}));
  store.write(1, 2, blob({2}));
  const auto back = store.read_latest(1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 3u);
}

TEST_F(StoreTest, RetentionPrunesOldest) {
  SnapshotStore store(dir_, /*retain=*/2);
  for (std::uint64_t v = 1; v <= 5; ++v) store.write(0, v, blob({static_cast<int>(v)}));
  const auto vs = store.versions(0);
  EXPECT_EQ(vs, (std::vector<std::uint64_t>{4, 5}));
}

TEST_F(StoreTest, ProcessesAreIndependent) {
  SnapshotStore store(dir_);
  store.write(0, 1, blob({10}));
  store.write(1, 9, blob({20}));
  EXPECT_EQ(store.read_latest(0)->bytes, blob({10}));
  EXPECT_EQ(store.read_latest(1)->bytes, blob({20}));
  EXPECT_FALSE(store.read_latest(7).has_value());
}

TEST_F(StoreTest, CorruptLatestFallsBackToOlder) {
  SnapshotStore store(dir_, 5);
  store.write(2, 1, blob({1, 1}));
  const fs::path newest = store.write(2, 2, blob({2, 2}));
  // Flip a payload byte: checksum must fail, older version must be used.
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  const auto back = store.read_latest(2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 1u);
  EXPECT_GE(store.corrupt_skipped(), 1u);
}

TEST_F(StoreTest, TruncatedFileSkipped) {
  SnapshotStore store(dir_, 5);
  const fs::path p = store.write(4, 1, blob({1, 2, 3, 4, 5, 6, 7, 8}));
  fs::resize_file(p, fs::file_size(p) - 4);
  EXPECT_FALSE(store.read_latest(4).has_value());
  EXPECT_GE(store.corrupt_skipped(), 1u);
}

TEST_F(StoreTest, EmptyPayloadOk) {
  SnapshotStore store(dir_);
  store.write(0, 1, {});
  const auto back = store.read_latest(0);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->bytes.empty());
}

// ---- fault paths: failed publish, malformed names, cache semantics ----

TEST_F(StoreTest, FailedPublishThrowsAndSkipsPrune) {
  SnapshotStore store(dir_, /*retain=*/2);
  store.write(1, 1, blob({1}));
  store.write(1, 2, blob({2}));
  // Force the atomic rename-publish to fail: a *directory* squats on the
  // target path, so rename(file, dir) errors out.
  fs::create_directory(dir_ / "snapshot_p1_v00000000000000000003.bin");
  EXPECT_THROW(store.write(1, 3, blob({3})), std::runtime_error);
  // The failure must not fall through to prune(): both published versions
  // survive and remain readable.
  EXPECT_EQ(store.versions(1), (std::vector<std::uint64_t>{1, 2}));
  const auto back = store.read_latest(1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 2u);
  // The temp file was cleaned up, not leaked.
  std::size_t tmps = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".tmp") ++tmps;
  }
  EXPECT_EQ(tmps, 0u);
}

TEST_F(StoreTest, MalformedNamesDoNotAliasVersionZero) {
  // Regression: strtoull("garbage") == 0, so this name used to be listed as
  // version 0 of process 1 — and read_latest would then try to open the
  // (nonexistent) canonical path for v0.
  fs::create_directories(dir_);
  { std::ofstream(dir_ / "snapshot_p1_vgarbage.bin") << "junk"; }
  { std::ofstream(dir_ / "snapshot_p1_v.bin") << "junk"; }
  { std::ofstream(dir_ / "snapshot_p1_v123456789012345678901.bin") << "junk"; }
  { std::ofstream(dir_ / "notes.txt") << "unrelated"; }
  SnapshotStore store(dir_, 5);
  EXPECT_TRUE(store.versions(1).empty());
  EXPECT_FALSE(store.read_latest(1).has_value());
  EXPECT_GE(store.malformed_skipped(), 3u);
  // Valid writes still work alongside the junk.
  store.write(1, 5, blob({5}));
  EXPECT_EQ(store.versions(1), (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(store.read_latest(1)->version, 5u);
}

TEST_F(StoreTest, UnpublishedTmpFilesAreInvisible) {
  // A crash between write and rename leaves a .tmp behind; recovery must
  // only ever observe published versions.
  fs::create_directories(dir_);
  { std::ofstream(dir_ / "snapshot_p2_v00000000000000000009.bin.tmp") << "partial"; }
  SnapshotStore store(dir_, 5);
  EXPECT_TRUE(store.versions(2).empty());
  EXPECT_FALSE(store.read_latest(2).has_value());
  EXPECT_EQ(store.malformed_skipped(), 0u) << ".tmp is expected, not malformed";
}

TEST_F(StoreTest, VersionListIsCachedAfterInitialScan) {
  SnapshotStore store(dir_, 5);
  store.write(0, 1, blob({1}));
  EXPECT_EQ(store.versions(0), (std::vector<std::uint64_t>{1}));
  // Files dropped in externally after the scan are not observed: the store
  // owns its directory and never rescans on write() (that was the per-write
  // O(dir) cost this cache removes).
  { std::ofstream(dir_ / "snapshot_p0_v00000000000000000099.bin") << "ext"; }
  store.write(0, 2, blob({2}));
  EXPECT_EQ(store.versions(0), (std::vector<std::uint64_t>{1, 2}));
}

// ---- end-to-end: processes persist snapshots and recover their view ----

TEST_F(StoreTest, ProcessPersistsAndRecovers) {
  RuntimeConfig cfg = sim::manual_config(77);
  cfg.proc.snapshot_dir = dir_.string();
  Runtime rt(2, cfg);

  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  const RefId ref = rt.link(a, b);
  rt.proc(1).run_lgc();
  rt.proc(1).take_snapshot();
  ASSERT_NE(rt.proc(1).current_summary(), nullptr);

  // A "restarted" runtime over the same store directory: before taking any
  // snapshot of its own, P1 recovers its summarized view from disk.
  Runtime rt2(2, cfg);
  EXPECT_EQ(rt2.proc(1).current_summary(), nullptr);
  ASSERT_TRUE(rt2.proc(1).recover_summary_from_store());
  const auto snap = rt2.proc(1).current_summary();
  ASSERT_NE(snap, nullptr);
  EXPECT_NE(snap->scion(ref), nullptr) << "recovered summary must contain the scion";
}

TEST_F(StoreTest, RecoveryWithoutStoreFails) {
  Runtime rt(2, sim::manual_config(78));  // no snapshot_dir configured
  EXPECT_FALSE(rt.proc(0).recover_summary_from_store());
}

TEST_F(StoreTest, PeriodicSnapshotsRespectRetention) {
  RuntimeConfig cfg = sim::fast_config(79);
  cfg.proc.snapshot_dir = dir_.string();
  cfg.proc.snapshot_retain = 3;
  Runtime rt(2, cfg);
  rt.proc(0).create_object();
  rt.run_for(300'000);  // many snapshot periods
  SnapshotStore probe(dir_, 3);
  const auto vs = probe.versions(0);
  EXPECT_LE(vs.size(), 3u);
  EXPECT_GE(vs.size(), 1u);
}

}  // namespace
}  // namespace adgc
