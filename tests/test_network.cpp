// Tests for the simulated network (fault injection, determinism, FIFO mode)
// and the deterministic runtime's event machinery.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/sim_network.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

struct Delivery {
  SimTime when;
  Envelope env;
};

struct NetFixture {
  NetworkConfig cfg;
  std::vector<Delivery> deliveries;
  Metrics metrics;

  SimNetwork make(std::uint64_t seed = 1) {
    return SimNetwork(
        cfg, Rng(seed),
        [this](SimTime when, Envelope env) { deliveries.push_back({when, std::move(env)}); },
        &metrics);
  }

  static Envelope env(ProcessId src, ProcessId dst) {
    Envelope e;
    e.src = src;
    e.dst = dst;
    e.bytes = encode_message(MessagePayload{ReplyMsg{}});
    return e;
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  NetFixture f;
  f.cfg.min_latency_us = 100;
  auto net = f.make();
  net.send(1000, NetFixture::env(0, 1));
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_GE(f.deliveries[0].when, 1100u);
  EXPECT_EQ(f.metrics.messages_sent.get(), 1u);
}

TEST(SimNetwork, TotalLossDropsEverything) {
  NetFixture f;
  f.cfg.loss_probability = 1.0;
  auto net = f.make();
  for (int i = 0; i < 20; ++i) net.send(0, NetFixture::env(0, 1));
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.metrics.messages_lost.get(), 20u);
}

TEST(SimNetwork, LossRateApproximatelyRespected) {
  NetFixture f;
  f.cfg.loss_probability = 0.3;
  auto net = f.make(7);
  for (int i = 0; i < 2000; ++i) net.send(0, NetFixture::env(0, 1));
  const double rate = static_cast<double>(f.metrics.messages_lost.get()) / 2000.0;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(SimNetwork, DuplicationDeliversTwice) {
  NetFixture f;
  f.cfg.duplicate_probability = 1.0;
  auto net = f.make();
  net.send(0, NetFixture::env(0, 1));
  EXPECT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.metrics.messages_duplicated.get(), 1u);
}

TEST(SimNetwork, PartitionBlocksDirectionally) {
  NetFixture f;
  auto net = f.make();
  net.set_link_blocked(0, 1, true);
  net.send(0, NetFixture::env(0, 1));
  EXPECT_TRUE(f.deliveries.empty());
  net.send(0, NetFixture::env(1, 0));  // reverse direction still open
  EXPECT_EQ(f.deliveries.size(), 1u);
  net.set_link_blocked(0, 1, false);
  net.send(0, NetFixture::env(0, 1));
  EXPECT_EQ(f.deliveries.size(), 2u);
}

TEST(SimNetwork, FifoModePreservesOrder) {
  NetFixture f;
  f.cfg.fifo_links = true;
  f.cfg.mean_latency_us = 10'000;  // huge variance without FIFO
  auto net = f.make(3);
  for (int i = 0; i < 50; ++i) net.send(static_cast<SimTime>(i), NetFixture::env(0, 1));
  ASSERT_EQ(f.deliveries.size(), 50u);
  for (std::size_t i = 1; i < f.deliveries.size(); ++i) {
    EXPECT_GT(f.deliveries[i].when, f.deliveries[i - 1].when);
  }
}

TEST(SimNetwork, NonFifoCanReorder) {
  NetFixture f;
  f.cfg.fifo_links = false;
  f.cfg.mean_latency_us = 10'000;
  auto net = f.make(3);
  for (int i = 0; i < 50; ++i) net.send(static_cast<SimTime>(i), NetFixture::env(0, 1));
  bool reordered = false;
  for (std::size_t i = 1; i < f.deliveries.size(); ++i) {
    if (f.deliveries[i].when < f.deliveries[i - 1].when) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(SimNetwork, SameSeedSameSchedule) {
  NetFixture a, b;
  a.cfg.loss_probability = b.cfg.loss_probability = 0.2;
  a.cfg.duplicate_probability = b.cfg.duplicate_probability = 0.1;
  auto na = a.make(99);
  auto nb = b.make(99);
  for (int i = 0; i < 100; ++i) {
    na.send(static_cast<SimTime>(i * 10), NetFixture::env(0, 1));
    nb.send(static_cast<SimTime>(i * 10), NetFixture::env(0, 1));
  }
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].when, b.deliveries[i].when);
  }
}

// ---- runtime-level determinism: identical seeds → identical evolution ----

TEST(Runtime, FullyDeterministicFromSeed) {
  auto run = [](std::uint64_t seed) {
    RuntimeConfig cfg = sim::fast_config(seed);
    cfg.net.loss_probability = 0.1;
    Runtime rt(4, cfg);
    const ObjectId a{0, rt.proc(0).create_object()};
    const ObjectId b{1, rt.proc(1).create_object()};
    const ObjectId c{2, rt.proc(2).create_object()};
    rt.proc(0).add_root(a.seq);
    const RefId r1 = rt.link(a, b);
    rt.link(b, c);
    rt.link(c, a);
    rt.proc(0).invoke(a.seq, r1, InvokeEffect::kTouch);
    rt.run_for(2'000'000);
    const Metrics m = rt.total_metrics();
    return std::tuple{m.messages_sent.get(), m.messages_lost.get(),
                      m.cdms_sent.get(), sim::global_stats(rt).total_objects};
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));  // and seeds actually matter
}

TEST(Runtime, TimeAdvancesMonotonically) {
  Runtime rt(2, sim::fast_config(1));
  const SimTime t0 = rt.now();
  rt.run_for(1000);
  EXPECT_GE(rt.now(), t0 + 1000);
  rt.run_for(0);
  EXPECT_GE(rt.now(), t0 + 1000);
}

TEST(Runtime, StepExecutesOneEvent) {
  Runtime rt(2, sim::fast_config(2));
  // The periodic timers guarantee a non-empty queue.
  EXPECT_GT(rt.pending_events(), 0u);
  const std::size_t before = rt.pending_events();
  rt.step();
  // One popped; it may have scheduled successors, so only a weak bound.
  EXPECT_GE(rt.pending_events() + 1, before);
}

TEST(Runtime, LinkValidatesOwnership) {
  Runtime rt(2, sim::fast_config(3));
  const ObjectId a{0, rt.proc(0).create_object()};
  EXPECT_THROW(rt.link(a, ObjectId{1, 999}), std::invalid_argument);
}

}  // namespace
}  // namespace adgc
