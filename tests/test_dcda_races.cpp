// Mutator–DCDA races: the paper's Fig. 2 (inconsistent independent
// snapshots) and Fig. 5 (root switched onto an already-visited process
// behind the detection's back). Safety comes from the invocation counters;
// these tests script the exact adversarial interleavings.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

void lgc_and_snapshot(Runtime& rt, ProcessId pid) {
  rt.proc(pid).run_lgc();
  rt.proc(pid).take_snapshot();
}

void snapshot_all(Runtime& rt) {
  for (ProcessId pid = 0; pid < rt.size(); ++pid) lgc_and_snapshot(rt, pid);
  rt.run_for(30'000);
}

// ---------------------------------------------------------------- Fig. 2

struct Fig2World {
  Runtime rt{3, sim::manual_config(33)};
  ObjectId x, y, z;
  RefId x_to_y, y_to_z, z_to_x;

  Fig2World() {
    x = ObjectId{0, rt.proc(0).create_object()};
    y = ObjectId{1, rt.proc(1).create_object()};
    z = ObjectId{2, rt.proc(2).create_object()};
    x_to_y = rt.link(x, y);
    y_to_z = rt.link(y, z);
    z_to_x = rt.link(z, x);
    rt.proc(0).add_root(x.seq);
  }
};

TEST(DcdaFig2, InconsistentSnapshotsNeverYieldFalseCycle) {
  Fig2World w;
  Runtime& rt = w.rt;
  snapshot_all(rt);  // S1(old), S2, S3 — the pre-mutation views

  // Mutator (Fig. 2-b): P1 invokes y (creating a local root at P2 for y),
  // then deletes its own root to x. Then P1 re-snapshots (S1).
  rt.proc(0).invoke(w.x.seq, w.x_to_y, InvokeEffect::kPinRoot);
  rt.run_for(30'000);  // invocation + reply complete
  ASSERT_TRUE(rt.proc(1).heap().is_root(w.y.seq));
  rt.proc(0).remove_root(w.x.seq);
  lgc_and_snapshot(rt, 0);  // S1 taken after the invocation

  // DCDA now combines P2's OLD snapshot with P1's NEW one — the paper's
  // Fig. 2-c view, which looks like a garbage cycle. Probe it.
  ASSERT_TRUE(rt.proc(1).detector().start_detection(w.x_to_y, rt.now()));
  rt.run_for(300'000);

  const Metrics m = rt.total_metrics();
  EXPECT_EQ(m.detections_cycle_found.get(), 0u) << "false cycle detected!";
  EXPECT_GE(m.detections_aborted_ic.get(), 1u) << "race not caught by counters";

  // Everything is still alive (y is a root at P2 now).
  sim::settle_manual(rt, 6);
  EXPECT_TRUE(rt.proc(0).heap().exists(w.x.seq));
  EXPECT_TRUE(rt.proc(1).heap().exists(w.y.seq));
  EXPECT_TRUE(rt.proc(2).heap().exists(w.z.seq));
}

TEST(DcdaFig2, FreshSnapshotsAlsoSafe) {
  // With up-to-date snapshots everywhere the candidate path is locally
  // reachable at P2 (y is rooted): detection terminates negatively.
  Fig2World w;
  Runtime& rt = w.rt;
  rt.proc(0).invoke(w.x.seq, w.x_to_y, InvokeEffect::kPinRoot);
  rt.run_for(30'000);
  rt.proc(0).remove_root(w.x.seq);
  snapshot_all(rt);

  rt.proc(1).detector().start_detection(w.x_to_y, rt.now());
  rt.run_for(300'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
  EXPECT_TRUE(rt.proc(0).heap().exists(w.x.seq));
}

TEST(DcdaFig2, CycleCollectsOnceMutationSettles) {
  // Same interleaving but the root is NOT switched (no kPinRoot): the first
  // detection aborts on the IC mismatch, a later one (fresh snapshots)
  // succeeds — "detections for real cycles are never aborted" once views
  // agree (§3.2).
  Fig2World w;
  Runtime& rt = w.rt;
  snapshot_all(rt);

  rt.proc(0).invoke(w.x.seq, w.x_to_y, InvokeEffect::kTouch);  // counter churn
  rt.run_for(30'000);
  rt.proc(0).remove_root(w.x.seq);
  lgc_and_snapshot(rt, 0);

  // Stale-P2-view probe: aborted by counters.
  rt.proc(1).detector().start_detection(w.x_to_y, rt.now());
  rt.run_for(300'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
  EXPECT_GE(rt.total_metrics().detections_aborted_ic.get(), 1u);

  // Fresh views: succeeds (probe from another entry; the aborted detection
  // is still nominally in flight for x_to_y under the manual config).
  snapshot_all(rt);
  ASSERT_TRUE(rt.proc(2).detector().start_detection(w.y_to_z, rt.now()));
  rt.run_for(300'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 1u);
  sim::settle_manual(rt, 6);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

// ---------------------------------------------------------------- Fig. 5

TEST(DcdaFig5, RootSwitchBehindDetectionIsCaught) {
  Runtime rt(5, sim::manual_config(55));
  const sim::Fig5 fig = sim::build_fig5(rt);
  snapshot_all(rt);  // pre-mutation views; Local.Reach(B→F stub) = true at P1

  // Mutator events 1..11 (abridged to their reachability effects):
  //  * P1 invokes through B's reference to F (bumps F's counters);
  //  * P2's F exports J to P3's M (M now keeps the cycle reachable);
  //  * P1's A loses the root path.
  rt.proc(0).invoke(fig.B.seq, fig.B_to_F, InvokeEffect::kTouch);
  rt.run_for(30'000);
  rt.proc(1).invoke(fig.F.seq, fig.F_to_M, InvokeEffect::kStoreArgs,
                    {ArgRef::own(fig.J.seq)});
  rt.run_for(60'000);  // handshake + invocation + reply
  // M must now hold a reference to J.
  ASSERT_EQ(rt.proc(2).heap().find(fig.M.seq)->remote_fields.size(), 1u);
  rt.proc(0).remove_root(fig.A.seq);

  // P1 refreshes its snapshot AFTER the root erasure (event 11 ≺ iii):
  // its stub to F is no longer locally reachable.
  lgc_and_snapshot(rt, 0);

  // Detection at P2 with P2's OLD snapshot: would trace the whole "cycle"
  // without ever seeing a local root — the counters must abort it.
  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.B_to_F, rt.now()));
  rt.run_for(400'000);

  const Metrics m = rt.total_metrics();
  EXPECT_EQ(m.detections_cycle_found.get(), 0u) << "Fig. 5 race not caught";
  EXPECT_GE(m.detections_aborted_ic.get(), 1u);

  // The structure is genuinely alive through P3's root → M → J.
  sim::settle_manual(rt, 8);
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.F.seq));
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.J.seq));
  EXPECT_TRUE(rt.proc(4).heap().exists(fig.V.seq));
  EXPECT_TRUE(rt.proc(3).heap().exists(fig.T.seq));
  EXPECT_TRUE(rt.proc(0).heap().exists(fig.D.seq));
  EXPECT_TRUE(rt.proc(0).heap().exists(fig.B.seq));
}

TEST(DcdaFig5, FreshViewsSeeTheNewDependency) {
  // After every process re-snapshots, the J scion (held by P3's M) shows up
  // as an unresolved dependency: still no false cycle.
  Runtime rt(5, sim::manual_config(56));
  const sim::Fig5 fig = sim::build_fig5(rt);
  snapshot_all(rt);
  rt.proc(1).invoke(fig.F.seq, fig.F_to_M, InvokeEffect::kStoreArgs,
                    {ArgRef::own(fig.J.seq)});
  rt.run_for(60'000);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.B_to_F, rt.now()));
  rt.run_for(400'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.J.seq));
}

TEST(DcdaFig5, CollectsOnceTrulyGarbage) {
  // Full lifecycle: race (abort), then M drops its reference, then the
  // cycle is real garbage and is reclaimed.
  Runtime rt(5, sim::manual_config(57));
  const sim::Fig5 fig = sim::build_fig5(rt);
  snapshot_all(rt);
  rt.proc(1).invoke(fig.F.seq, fig.F_to_M, InvokeEffect::kStoreArgs,
                    {ArgRef::own(fig.J.seq)});
  rt.run_for(60'000);
  rt.proc(0).remove_root(fig.A.seq);
  snapshot_all(rt);

  // M drops the reference to J; the acyclic DGC clears the J scion.
  HeapObject* m_obj = rt.proc(2).heap().find(fig.M.seq);
  ASSERT_NE(m_obj, nullptr);
  ASSERT_EQ(m_obj->remote_fields.size(), 1u);
  const RefId m_to_j = m_obj->remote_fields[0];
  rt.proc(2).remove_remote_ref(fig.M.seq, m_to_j);
  rt.proc(2).run_lgc();
  rt.run_for(50'000);
  EXPECT_FALSE(rt.proc(1).scions().contains(m_to_j));

  snapshot_all(rt);
  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.B_to_F, rt.now()));
  rt.run_for(400'000);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 1u);

  sim::settle_manual(rt, 8);
  const sim::GlobalStats st = sim::global_stats(rt);
  // Only M (P3's root) survives.
  EXPECT_EQ(st.total_objects, 1u);
  EXPECT_TRUE(rt.proc(2).heap().exists(fig.M.seq));
}

TEST(DcdaFig5, AutomaticRuntimeHandlesTheRace) {
  // Under fully automatic timers with aggressive scanning, the same story:
  // never a false collection while M holds the cycle, full collection after.
  Runtime rt(5, sim::fast_config(58));
  const sim::Fig5 fig = sim::build_fig5(rt);
  rt.run_for(100'000);
  rt.proc(1).invoke(fig.F.seq, fig.F_to_M, InvokeEffect::kStoreArgs,
                    {ArgRef::own(fig.J.seq)});
  rt.run_for(100'000);
  rt.proc(0).remove_root(fig.A.seq);
  rt.run_for(3'000'000);
  // Alive through M.
  EXPECT_TRUE(rt.proc(1).heap().exists(fig.F.seq));
  EXPECT_TRUE(rt.proc(0).heap().exists(fig.D.seq));

  HeapObject* m_obj = rt.proc(2).heap().find(fig.M.seq);
  ASSERT_NE(m_obj, nullptr);
  ASSERT_FALSE(m_obj->remote_fields.empty());
  rt.proc(2).remove_remote_ref(fig.M.seq, m_obj->remote_fields[0]);
  rt.run_for(4'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 1u);  // M only
}

}  // namespace
}  // namespace adgc
