// Unit tests for the cycle-candidate selection heuristic.
#include <gtest/gtest.h>

#include <memory>

#include "src/dcda/candidates.h"

namespace adgc {
namespace {

class Candidates : public ::testing::Test {
 protected:
  Candidates() : manager(0) {
    cfg.candidate_quarantine_us = 100;
    cfg.max_inflight_detections = 8;
  }

  // Adds a live scion + matching snapshot entry. Returns the ref.
  RefId add(std::uint64_t ic, bool root_reach, SimTime last_change,
            bool in_snapshot = true, bool has_stubs = true,
            std::uint64_t snap_ic_delta = 0) {
    const RefId ref = make_ref_id(1, next_++);
    auto& sc = scions.ensure(ref, /*holder=*/1, /*target=*/next_, /*now=*/0);
    sc.ic = ic;
    sc.target_root_reachable = root_reach;
    sc.last_ic_change = last_change;
    if (in_snapshot) {
      ScionSummary sum;
      sum.ref = ref;
      sum.ic = ic + snap_ic_delta;
      sum.target = next_;
      if (has_stubs) sum.stubs_from.push_back(make_ref_id(2, next_));
      snap.scions.emplace(ref, std::move(sum));
    }
    return ref;
  }

  ProcessConfig cfg;
  ScionTable scions;
  SummarizedGraph snap;
  DetectionManager manager;
  std::uint64_t next_ = 1;
};

TEST_F(Candidates, QuietUnreachableScionSelected) {
  const RefId ref = add(/*ic=*/3, /*root_reach=*/false, /*last_change=*/0);
  const auto out = select_candidates(scions, &snap, manager, cfg, /*now=*/200);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], ref);
}

TEST_F(Candidates, RootReachableExcluded) {
  add(3, /*root_reach=*/true, 0);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
}

TEST_F(Candidates, QuarantineNotElapsedExcluded) {
  add(3, false, /*last_change=*/150);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
  EXPECT_EQ(select_candidates(scions, &snap, manager, cfg, 250).size(), 1u);
}

TEST_F(Candidates, MissingFromSnapshotExcluded) {
  add(3, false, 0, /*in_snapshot=*/false);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
}

TEST_F(Candidates, StaleSnapshotIcExcluded) {
  add(3, false, 0, true, true, /*snap_ic_delta=*/1);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
}

TEST_F(Candidates, NoOutgoingStubsExcluded) {
  add(3, false, 0, true, /*has_stubs=*/false);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
}

TEST_F(Candidates, ActiveDetectionExcluded) {
  const RefId ref = add(3, false, 0);
  manager.begin(ref, 0, 1000);
  EXPECT_TRUE(select_candidates(scions, &snap, manager, cfg, 200).empty());
  manager.end(DetectionId{0, 1});
  EXPECT_EQ(select_candidates(scions, &snap, manager, cfg, 200).size(), 1u);
}

TEST_F(Candidates, NullSnapshotYieldsNothing) {
  add(3, false, 0);
  EXPECT_TRUE(select_candidates(scions, nullptr, manager, cfg, 200).empty());
}

TEST_F(Candidates, BudgetCapsSelection) {
  cfg.max_inflight_detections = 3;
  for (int i = 0; i < 10; ++i) add(1, false, 0);
  EXPECT_EQ(select_candidates(scions, &snap, manager, cfg, 200).size(), 3u);
  manager.begin(make_ref_id(9, 9), 0, 1000);
  EXPECT_EQ(select_candidates(scions, &snap, manager, cfg, 200).size(), 2u);
}

TEST_F(Candidates, OldestQuietOrdersByLastChange) {
  cfg.candidate_policy = ProcessConfig::CandidatePolicy::kOldestQuiet;
  cfg.max_inflight_detections = 2;
  const RefId young = add(1, false, /*last_change=*/90);
  const RefId old1 = add(1, false, /*last_change=*/10);
  const RefId old2 = add(1, false, /*last_change=*/50);
  const auto out = select_candidates(scions, &snap, manager, cfg, /*now=*/500);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], old1);
  EXPECT_EQ(out[1], old2);
  (void)young;
}

TEST_F(Candidates, SmallestFanoutPrefersCheapProbes) {
  cfg.candidate_policy = ProcessConfig::CandidatePolicy::kSmallestFanout;
  cfg.max_inflight_detections = 1;
  const RefId wide = add(1, false, 0);
  snap.scions.at(wide).stubs_from.push_back(make_ref_id(2, 100));
  snap.scions.at(wide).stubs_from.push_back(make_ref_id(2, 101));
  const RefId narrow = add(1, false, 0);
  const auto out = select_candidates(scions, &snap, manager, cfg, 500);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], narrow);
}

TEST_F(Candidates, RoundRobinRotates) {
  cfg.candidate_policy = ProcessConfig::CandidatePolicy::kRoundRobin;
  cfg.max_inflight_detections = 1;
  const RefId a = add(1, false, 0);
  const RefId b = add(1, false, 0);
  const RefId c = add(1, false, 0);
  const auto first = select_candidates(scions, &snap, manager, cfg, 500, /*scan=*/0);
  const auto second = select_candidates(scions, &snap, manager, cfg, 500, /*scan=*/1);
  const auto third = select_candidates(scions, &snap, manager, cfg, 500, /*scan=*/2);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_EQ(third.size(), 1u);
  // Three consecutive scans cover all three candidates.
  std::set<RefId> covered = {first[0], second[0], third[0]};
  EXPECT_EQ(covered, (std::set<RefId>{a, b, c}));
}

TEST(DetectionManager, BeginEndExpire) {
  DetectionManager m(4);
  const DetectionId a = m.begin(make_ref_id(0, 1), /*now=*/0, /*timeout=*/100);
  const DetectionId b = m.begin(make_ref_id(0, 2), 50, 100);
  EXPECT_EQ(a.initiator, 4u);
  EXPECT_NE(a.seq, b.seq);
  EXPECT_TRUE(m.active(a));
  EXPECT_TRUE(m.candidate_active(make_ref_id(0, 1)));
  EXPECT_EQ(m.in_flight(), 2u);

  const auto expired = m.expire(100);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, a);
  EXPECT_FALSE(m.candidate_active(make_ref_id(0, 1)));

  m.end(b);
  EXPECT_EQ(m.in_flight(), 0u);
  m.end(b);  // idempotent
}

}  // namespace
}  // namespace adgc
