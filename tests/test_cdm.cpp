// CDM helper coverage plus extra cycle-shape integration cases that do not
// fit the canonical figures: overlapping cycles sharing a full segment,
// self-loops through two processes, and long chains feeding a cycle.
#include <gtest/gtest.h>

#include "src/dcda/cdm.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

TEST(CdmHelpers, DescribeRendersEverything) {
  CdmMsg msg;
  msg.detection = {3, 9};
  msg.candidate = make_ref_id(3, 1);
  msg.via = make_ref_id(4, 2);
  msg.via_ic = 7;
  msg.hops = 5;
  msg.source = {{make_ref_id(3, 1), 0}};
  msg.target = {{make_ref_id(4, 2), 7}};
  const std::string s = describe(msg);
  EXPECT_NE(s.find("det(3:9)"), std::string::npos);
  EXPECT_NE(s.find("candidate=ref(3:1)"), std::string::npos);
  EXPECT_NE(s.find("via=ref(4:2)@7"), std::string::npos);
  EXPECT_NE(s.find("hops=5"), std::string::npos);
}

TEST(CdmHelpers, EncodedSizeGrowsWithAlgebra) {
  CdmMsg small;
  small.detection = {0, 1};
  const std::size_t base = encoded_size(small);
  CdmMsg big = small;
  for (std::uint64_t i = 0; i < 16; ++i) {
    big.source.push_back({make_ref_id(0, i), i});
    big.target.push_back({make_ref_id(1, i), i});
  }
  EXPECT_GT(encoded_size(big), base + 16 * 2 * 16 - 1);
}

// ---- extra cycle shapes, end-to-end ----

TEST(CycleShapes, TwoProcessPingPong) {
  // The minimal distributed cycle: a(P0) ⇄ b(P1).
  Runtime rt(2, sim::fast_config(41));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.link(a, b);
  rt.link(b, a);
  rt.run_for(3'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(CycleShapes, OverlappingCyclesSharedSegment) {
  // Two cycles sharing the segment b→c (all distinct processes):
  //   a → b → c → a    and    d → b → c → d
  Runtime rt(4, sim::fast_config(42));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  const ObjectId d{3, rt.proc(3).create_object()};
  rt.link(a, b);
  rt.link(b, c);
  rt.link(c, a);
  rt.link(c, d);
  rt.link(d, b);
  rt.run_for(6'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(CycleShapes, LongTailFeedingCycle) {
  // Acyclic chain of 5 processes feeding a 3-process cycle: hybrid garbage,
  // collected outside-in (reference listing eats the tail, DCDA the cycle).
  Runtime rt(8, sim::fast_config(43));
  std::vector<ObjectId> tail;
  for (ProcessId pid = 0; pid < 5; ++pid) {
    tail.push_back(ObjectId{pid, rt.proc(pid).create_object()});
  }
  for (int i = 0; i < 4; ++i) rt.link(tail[i], tail[i + 1]);
  std::vector<ObjectId> cyc;
  for (ProcessId pid = 5; pid < 8; ++pid) {
    cyc.push_back(ObjectId{pid, rt.proc(pid).create_object()});
  }
  rt.link(cyc[0], cyc[1]);
  rt.link(cyc[1], cyc[2]);
  rt.link(cyc[2], cyc[0]);
  rt.link(tail[4], cyc[0]);

  // Rooted at the head of the tail: everything lives.
  rt.proc(0).add_root(tail[0].seq);
  rt.run_for(500'000);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 8u);

  rt.proc(0).remove_root(tail[0].seq);
  rt.run_for(10'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(CycleShapes, CycleWithInternalShortcuts) {
  // A 4-process ring plus chords (extra refs across the ring) — multiple
  // overlapping cycles through the same objects.
  Runtime rt(4, sim::fast_config(44));
  std::vector<ObjectId> o;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    o.push_back(ObjectId{pid, rt.proc(pid).create_object()});
  }
  for (int i = 0; i < 4; ++i) rt.link(o[static_cast<std::size_t>(i)],
                                      o[static_cast<std::size_t>((i + 1) % 4)]);
  rt.link(o[0], o[2]);  // chords
  rt.link(o[2], o[0]);
  rt.link(o[1], o[3]);
  rt.run_for(8'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

TEST(CycleShapes, SelfCycleWithinProcessPlusRemoteEdge) {
  // Local cycle at P0 holding a remote ref to P1; plain LGC + reference
  // listing suffice (no DCDA needed); ensure the DCDA does not interfere.
  Runtime rt(2, sim::fast_config(45));
  const ObjectSeq a = rt.proc(0).create_object();
  const ObjectSeq a2 = rt.proc(0).create_object();
  rt.proc(0).add_local_ref(a, a2);
  rt.proc(0).add_local_ref(a2, a);
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.link(ObjectId{0, a2}, b);
  rt.run_for(3'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
  EXPECT_EQ(rt.total_metrics().detections_cycle_found.get(), 0u);
}

}  // namespace
}  // namespace adgc
