// Per-peer control-message batching: flush triggers (count, size, deadline,
// priority, burst, drain), singleton stripping, arena reuse, epoch-guarded
// deadline timers, and the fault-tolerance contract — a batch from a dead
// incarnation is dropped whole, an open batch dies with its process, and a
// batch toward a crashed peer is discarded without touching the wire.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/net/batcher.h"
#include "src/net/message.h"
#include "src/rt/runtime.h"
#include "src/rt/threaded_runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

AddScionAckMsg ack(std::uint64_t handshake) {
  AddScionAckMsg m;
  m.ref = make_ref_id(1, handshake);
  m.handshake = handshake;
  return m;
}

/// Fresh per-test snapshot directory under the gtest temp root.
std::string snap_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("adgc_batch_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

NewSetStubsMsg big_nss(std::size_t refs) {
  NewSetStubsMsg m;
  m.export_seq = 1;
  for (std::size_t i = 0; i < refs; ++i) m.live.push_back(make_ref_id(2, i + 1));
  return m;
}

/// Minimal Env: records every outbound buffer, holds timers until the test
/// advances the clock. Overrides send_encoded so the recorded bytes are
/// exactly what the batcher flushed, framing included.
class FakeEnv final : public Env {
 public:
  struct Sent {
    ProcessId dst;
    std::vector<std::byte> bytes;
  };

  SimTime now() const override { return now_; }

  void send(ProcessId dst, const MessagePayload& msg) override {
    sent.push_back({dst, encode_message(msg)});
  }
  void send_encoded(ProcessId dst, std::vector<std::byte> bytes) override {
    sent.push_back({dst, std::move(bytes)});
  }
  void schedule(SimTime delay, std::function<void()> fn) override {
    timers.push_back({now_ + delay, std::move(fn)});
  }
  Rng& rng() override { return rng_; }
  Metrics& metrics() override { return metrics_; }

  /// Fires every timer due at or before `t`, in deadline order.
  void advance_to(SimTime t) {
    now_ = t;
    // Timers may schedule more timers; loop until quiescent.
    for (bool fired = true; fired;) {
      fired = false;
      for (std::size_t i = 0; i < timers.size(); ++i) {
        if (timers[i].deadline <= now_ && !timers[i].done) {
          timers[i].done = true;
          timers[i].fn();
          fired = true;
        }
      }
    }
  }

  struct Timer {
    SimTime deadline;
    std::function<void()> fn;
    bool done = false;
  };

  std::vector<Sent> sent;
  std::vector<Timer> timers;

 private:
  SimTime now_ = 0;
  Rng rng_{1};
  Metrics metrics_;
};

class BatcherUnit : public ::testing::Test {
 protected:
  BatcherUnit() : batcher(cfg, env) {
    cfg.batch_max_msgs = 3;
    cfg.batch_max_bytes = 4096;
    cfg.batch_flush_us = 200;
  }

  /// Decodes a recorded flush as a batch and returns its items.
  std::vector<MessagePayload> items_of(const FakeEnv::Sent& s) {
    const MessagePayload msg = decode_message(s.bytes);
    const BatchMsg* batch = std::get_if<BatchMsg>(&msg);
    EXPECT_NE(batch, nullptr) << "flush was not batch-framed";
    if (!batch) return {};
    return decode_batch_items(*batch);
  }

  ProcessConfig cfg;
  FakeEnv env;
  Batcher batcher;
};

TEST_F(BatcherUnit, BatchableKinds) {
  EXPECT_TRUE(Batcher::batchable(MessagePayload{CdmMsg{}}));
  EXPECT_TRUE(Batcher::batchable(MessagePayload{NewSetStubsMsg{}}));
  EXPECT_TRUE(Batcher::batchable(MessagePayload{AddScionAckMsg{}}));
  EXPECT_FALSE(Batcher::batchable(MessagePayload{InvokeMsg{}}));
  EXPECT_FALSE(Batcher::batchable(MessagePayload{ReplyMsg{}}));
  EXPECT_FALSE(Batcher::batchable(MessagePayload{AddScionMsg{}}));
  EXPECT_FALSE(Batcher::batchable(MessagePayload{BacktraceRequestMsg{}}));
  // A batch is not itself batchable: no nesting.
  EXPECT_FALSE(Batcher::batchable(MessagePayload{BatchMsg{}}));
}

TEST_F(BatcherUnit, CountThresholdFlush) {
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(2)}));
  EXPECT_EQ(env.sent.size(), 0u) << "flushed below the count threshold";
  EXPECT_EQ(batcher.queued(1), 2u);
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(3)}));

  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].dst, 1u);
  EXPECT_EQ(batcher.open_batches(), 0u);
  const auto items = items_of(env.sent[0]);
  ASSERT_EQ(items.size(), 3u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto* got = std::get_if<AddScionAckMsg>(&items[i]);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->handshake, i + 1);
  }
  EXPECT_EQ(env.metrics().batch_flush_count.get(), 1u);
  EXPECT_EQ(env.metrics().batches_sent.get(), 1u);
  EXPECT_EQ(env.metrics().batched_messages.get(), 3u);
  EXPECT_GT(env.metrics().batch_bytes_saved.get(), 0u);
}

TEST_F(BatcherUnit, SizeThresholdFlush) {
  cfg.batch_max_bytes = 256;
  cfg.batch_max_msgs = 100;  // keep the count threshold out of the way
  // Each NSS below is ~90 bytes encoded; the third pushes past 256.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(batcher.offer(1, MessagePayload{big_nss(10)}));
  }
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.metrics().batch_flush_size.get(), 1u);
  EXPECT_EQ(items_of(env.sent[0]).size(), 3u);
}

TEST_F(BatcherUnit, DeadlineFlushAndSingletonStrip) {
  EXPECT_TRUE(batcher.offer(2, MessagePayload{ack(7)}));
  env.advance_to(cfg.batch_flush_us - 1);
  EXPECT_EQ(env.sent.size(), 0u) << "deadline fired early";
  env.advance_to(cfg.batch_flush_us);

  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.metrics().batch_flush_deadline.get(), 1u);
  // A lone message is stripped back to its plain encoding: the wire sees an
  // AddScionAck, not a one-item batch.
  const MessagePayload msg = decode_message(env.sent[0].bytes);
  const auto* got = std::get_if<AddScionAckMsg>(&msg);
  ASSERT_NE(got, nullptr) << "singleton was not stripped of batch framing";
  EXPECT_EQ(got->handshake, 7u);
  EXPECT_EQ(env.metrics().batch_singletons.get(), 1u);
  EXPECT_EQ(env.metrics().batches_sent.get(), 0u);
  EXPECT_EQ(env.metrics().batch_bytes_saved.get(), 0u);
}

TEST_F(BatcherUnit, StaleDeadlineDoesNotFlushReopenedBatch) {
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));
  batcher.flush_peer(1, Batcher::FlushReason::kPriority);
  ASSERT_EQ(env.sent.size(), 1u);

  // Re-open toward the same peer LATER, so the two deadlines are distinct;
  // when the FIRST batch's deadline fires, the epoch guard must keep it
  // from flushing the new batch early.
  env.advance_to(cfg.batch_flush_us / 2);  // nothing due yet
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(2)}));
  env.advance_to(cfg.batch_flush_us);  // first deadline due, second not yet
  EXPECT_EQ(batcher.queued(1), 1u) << "stale deadline flushed the new batch";
  EXPECT_EQ(env.sent.size(), 1u);

  // The new batch's own deadline still works.
  env.advance_to(cfg.batch_flush_us / 2 + cfg.batch_flush_us);
  EXPECT_EQ(env.sent.size(), 2u);
}

TEST_F(BatcherUnit, FlushAllDrainsEveryPeer) {
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));
  EXPECT_TRUE(batcher.offer(2, MessagePayload{ack(2)}));
  EXPECT_TRUE(batcher.offer(2, MessagePayload{ack(3)}));
  EXPECT_EQ(batcher.open_batches(), 2u);
  batcher.flush_all(Batcher::FlushReason::kDrain);
  EXPECT_EQ(batcher.open_batches(), 0u);
  EXPECT_EQ(env.sent.size(), 2u);
  EXPECT_EQ(env.metrics().batch_flush_drain.get(), 2u);
}

TEST_F(BatcherUnit, CdmFlushTouchesOnlyCdmBearingBatches) {
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));       // no CDM
  EXPECT_TRUE(batcher.offer(2, MessagePayload{CdmMsg{}}));     // CDM
  EXPECT_TRUE(batcher.offer(2, MessagePayload{ack(2)}));       // rides along
  batcher.flush_cdm_batches(Batcher::FlushReason::kBurst);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].dst, 2u);
  EXPECT_EQ(items_of(env.sent[0]).size(), 2u);
  EXPECT_EQ(batcher.queued(1), 1u) << "CDM-free batch flushed by burst";
  EXPECT_EQ(env.metrics().batch_flush_burst.get(), 1u);
}

TEST_F(BatcherUnit, DiscardPeerDropsBatchWithoutSending) {
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(2)}));
  batcher.discard_peer(1);
  EXPECT_EQ(batcher.open_batches(), 0u);
  EXPECT_EQ(env.sent.size(), 0u);
  // The discarded buffer returns to the arena: the next batch reuses it.
  EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(3)}));
  EXPECT_EQ(env.metrics().arena_reuses.get(), 1u);
}

TEST_F(BatcherUnit, ArenaReusesFlushedCapacity) {
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(1)}));
    EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(2)}));
    batcher.flush_peer(1, Batcher::FlushReason::kDrain);
  }
  EXPECT_EQ(env.metrics().arena_acquires.get(), 4u);
  // Flushed buffers leave with the Envelope, but note_capacity teaches the
  // arena the working size; after the discard-free steady state at least the
  // reserve hint must have grown past the default.
  EXPECT_GE(env.sent.size(), 4u);
}

TEST_F(BatcherUnit, DisabledBatchingPassesThrough) {
  cfg.batching_enabled = false;
  EXPECT_FALSE(batcher.offer(1, MessagePayload{ack(1)}));
  EXPECT_FALSE(batcher.offer(1, MessagePayload{CdmMsg{}}));
  EXPECT_EQ(batcher.open_batches(), 0u);
  EXPECT_EQ(env.sent.size(), 0u);
}

TEST_F(BatcherUnit, SplitAcrossThresholdKeepsEveryMessage) {
  for (std::uint64_t i = 1; i <= 7; ++i) {
    EXPECT_TRUE(batcher.offer(1, MessagePayload{ack(i)}));
  }
  batcher.flush_all(Batcher::FlushReason::kDrain);
  std::size_t total = 0;
  std::vector<bool> seen(8, false);
  for (const auto& s : env.sent) {
    const MessagePayload msg = decode_message(s.bytes);
    if (const auto* batch = std::get_if<BatchMsg>(&msg)) {
      for (const auto& item : decode_batch_items(*batch)) {
        seen[std::get<AddScionAckMsg>(item).handshake] = true;
        ++total;
      }
    } else {
      seen[std::get<AddScionAckMsg>(msg).handshake] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, 7u);
  for (std::uint64_t i = 1; i <= 7; ++i) EXPECT_TRUE(seen[i]) << "lost ack " << i;
}

// ---------------------------------------------------------------------------
// Integration: the batcher inside Process under the simulated runtime.
// ---------------------------------------------------------------------------

TEST(BatcherSim, DeadlineFlushDeliversNewSetStubs) {
  Runtime rt(2, sim::manual_config(21));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  const RefId ref = rt.link(a, b);

  rt.proc(0).run_lgc();  // NSS toward P1 enters the batcher
  rt.run_for(50'000);    // deadline (batch_flush_us) fires in sim time
  EXPECT_TRUE(rt.proc(1).scions().find(ref)->confirmed)
      << "batched NewSetStubs never reached the owner";
  EXPECT_GE(rt.total_metrics().batch_flush_deadline.get(), 1u);
  // Lone NSS rides as a stripped singleton, not a batch frame.
  EXPECT_GE(rt.total_metrics().batch_singletons.get(), 1u);
}

TEST(BatcherSim, PriorityInvokeFlushesOpenBatchFirst) {
  Runtime rt(2, sim::manual_config(22));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  const RefId ref = rt.link(a, b);
  rt.run_for(10'000);

  rt.proc(0).run_lgc();  // opens a batch toward P1 (NSS queued)
  ASSERT_EQ(rt.proc(0).batcher().queued(1), 1u);
  // The invocation is latency-critical and unbatchable: it must force the
  // open batch out first so per-link order is preserved.
  rt.proc(0).invoke(a.seq, ref, InvokeEffect::kTouch);
  EXPECT_EQ(rt.proc(0).batcher().queued(1), 0u);
  EXPECT_GE(rt.total_metrics().batch_flush_priority.get(), 1u);

  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).scions().find(ref)->confirmed);
  EXPECT_EQ(rt.proc(1).scions().find(ref)->ic, 2u);
}

TEST(BatcherSim, InFlightBatchFromDeadIncarnationDroppedWhole) {
  RuntimeConfig cfg = sim::manual_config(23);
  cfg.proc.snapshot_dir = snap_dir("stale");
  Runtime rt(2, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(0).take_snapshot();  // restart needs something to recover

  // Hand-queue a multi-message batch and put it on the wire, then crash the
  // sender before delivery. The restarted incarnation invalidates the
  // envelope's stamp, so the WHOLE batch must vanish — no item may apply.
  rt.proc(0).batcher().offer(1, MessagePayload{ack(1001)});
  rt.proc(0).batcher().offer(1, MessagePayload{ack(1002)});
  rt.proc(0).flush_batches();
  rt.crash(0);
  EXPECT_TRUE(rt.restart(0));
  rt.run_for(200'000);

  EXPECT_GE(rt.net_metrics().messages_stale_incarnation.get(), 1u)
      << "the dead incarnation's batch was delivered";
  EXPECT_EQ(rt.total_metrics().batches_received.get(), 0u);
  EXPECT_EQ(rt.total_metrics().batch_messages_received.get(), 0u)
      << "items from a stale batch leaked through";
}

TEST(BatcherSim, OpenBatchDiesWithCrashNoDuplicateApplication) {
  RuntimeConfig cfg = sim::manual_config(24);
  cfg.proc.snapshot_dir = snap_dir("crash");
  Runtime rt(2, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(0).take_snapshot();

  // Queue without flushing: the batch is volatile Process state.
  rt.proc(0).batcher().offer(1, MessagePayload{ack(2001)});
  rt.proc(0).batcher().offer(1, MessagePayload{ack(2002)});
  ASSERT_EQ(rt.proc(0).batcher().queued(1), 2u);
  rt.crash(0);
  EXPECT_TRUE(rt.restart(0));
  rt.run_for(200'000);

  // Nothing was ever wired, so nothing may arrive — batched control traffic
  // is loss-tolerant, never retransmitted from a recovered incarnation.
  EXPECT_EQ(rt.total_metrics().batch_messages_received.get(), 0u);
  EXPECT_EQ(rt.proc(0).batcher().open_batches(), 0u);
}

TEST(BatcherSim, PeerCrashDiscardsOpenBatchTowardIt) {
  RuntimeConfig cfg = sim::manual_config(25);
  cfg.proc.snapshot_dir = snap_dir("peercrash");
  Runtime rt(2, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  rt.proc(0).add_root(a.seq);

  rt.proc(0).batcher().offer(1, MessagePayload{ack(3001)});
  ASSERT_EQ(rt.proc(0).batcher().open_batches(), 1u);
  rt.crash(1);  // peers get on_peer_crashed
  EXPECT_EQ(rt.proc(0).batcher().open_batches(), 0u)
      << "batch toward the crashed peer not discarded";
}

TEST(BatcherSim, DisabledConfigMatchesUnbatchedWire) {
  RuntimeConfig cfg = sim::manual_config(26);
  cfg.proc.batching_enabled = false;
  Runtime rt(2, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);
  const RefId ref = rt.link(a, b);

  rt.proc(0).run_lgc();
  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).scions().find(ref)->confirmed);
  EXPECT_EQ(rt.total_metrics().batches_sent.get(), 0u);
  EXPECT_EQ(rt.total_metrics().batch_singletons.get(), 0u);
  EXPECT_EQ(rt.total_metrics().batched_messages.get(), 0u);
}

// ---------------------------------------------------------------------------
// Integration: wall-clock deadline under the threaded runtime.
// ---------------------------------------------------------------------------

TEST(BatcherThreaded, WallClockDeadlineFlush) {
  RuntimeConfig cfg;
  cfg.seed = 31;
  // Keep the periodic collectors quiet; this test drives the batcher alone.
  cfg.proc.lgc_period_us = 10'000'000;
  cfg.proc.snapshot_period_us = 10'000'000;
  cfg.proc.dcda_scan_period_us = 10'000'000;
  cfg.proc.batch_flush_us = 10'000;  // 10ms wall-clock deadline
  ThreadedRuntime rt(2, cfg);

  // An unknown-handshake ack is ignored by the receiver; what matters is
  // that the wall-clock timer pushes it out without any other traffic.
  rt.post_sync(0, [](Process& p) {
    p.batcher().offer(1, MessagePayload{ack(4001)});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::size_t open = 1;
  rt.post_sync(0, [&](Process& p) { open = p.batcher().open_batches(); });
  rt.shutdown();

  EXPECT_EQ(open, 0u) << "wall-clock deadline never flushed the batch";
  EXPECT_GE(rt.total_metrics().batch_flush_deadline.get(), 1u);
  EXPECT_GE(rt.total_metrics().batch_singletons.get(), 1u);
}

}  // namespace
}  // namespace adgc
