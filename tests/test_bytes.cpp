// Unit tests for the binary buffer reader/writer.
#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace adgc {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RoundTripCompositeIds) {
  ByteWriter w;
  w.object_id(ObjectId{7, 42});
  w.detection_id(DetectionId{3, 99});

  ByteReader r(w.data());
  EXPECT_EQ(r.object_id(), (ObjectId{7, 42}));
  EXPECT_EQ(r.detection_id(), (DetectionId{3, 99}));
  r.expect_done();
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  ByteWriter w;
  w.str("hello world");
  w.str("");
  const std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{255}};
  w.bytes(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(Bytes, TruncatedLengthPrefixThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(Bytes, HugeLengthPrefixRejected) {
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Bytes, ExpectDoneCatchesTrailing) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u64(1);
  w.u64(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 16u);
  r.u64();
  EXPECT_EQ(r.remaining(), 8u);
  r.u64();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Ids, RefIdPacksCreator) {
  const RefId r = make_ref_id(123, 456);
  EXPECT_EQ(ref_id_creator(r), 123u);
  const RefId r2 = make_ref_id(123, 457);
  EXPECT_NE(r, r2);
}

TEST(Ids, ToStringIsHumanReadable) {
  EXPECT_EQ(to_string(ObjectId{1, 2}), "obj(1:2)");
  EXPECT_EQ(to_string(DetectionId{3, 4}), "det(3:4)");
  EXPECT_EQ(ref_to_string(kNoRef), "ref(none)");
  EXPECT_EQ(ref_to_string(make_ref_id(5, 6)), "ref(5:6)");
}

}  // namespace
}  // namespace adgc
