// Unit tests for the acyclic reference-listing protocol: NewSetStubs
// construction/application, confirmation state machine, staleness and grace.
#include <gtest/gtest.h>

#include "src/dgc/reference_listing.h"

namespace adgc {
namespace {

constexpr SimTime kGrace = 1000;

TEST(ReferenceListing, BuildFiltersByOwner) {
  StubTable stubs;
  stubs.ensure(make_ref_id(0, 1), ObjectId{1, 10}, 0);
  stubs.ensure(make_ref_id(0, 2), ObjectId{2, 20}, 0);
  stubs.ensure(make_ref_id(0, 3), ObjectId{1, 30}, 0);

  const NewSetStubsMsg msg = build_new_set_stubs(stubs, /*owner=*/1, /*seq=*/5);
  EXPECT_EQ(msg.export_seq, 5u);
  EXPECT_EQ(msg.live.size(), 2u);
}

TEST(ReferenceListing, ConfirmedScionDeletedWhenUnlisted) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  auto& sc = scions.ensure(ref, /*holder=*/3, /*target=*/7, /*now=*/0);
  sc.confirmed = true;

  NewSetStubsMsg msg;
  msg.export_seq = 1;  // empty live set
  const auto res = apply_new_set_stubs(scions, 3, msg, /*now=*/10, kGrace);
  EXPECT_FALSE(res.stale);
  EXPECT_EQ(res.deleted, 1u);
  EXPECT_FALSE(scions.contains(ref));
}

TEST(ReferenceListing, ListedScionBecomesConfirmed) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  scions.ensure(ref, 3, 7, 0);

  NewSetStubsMsg msg;
  msg.export_seq = 1;
  msg.live = {ref};
  const auto res = apply_new_set_stubs(scions, 3, msg, 10, kGrace);
  EXPECT_EQ(res.confirmed, 1u);
  EXPECT_TRUE(scions.find(ref)->confirmed);
  EXPECT_EQ(res.deleted, 0u);
}

TEST(ReferenceListing, PendingScionProtectedWithinGrace) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  scions.ensure(ref, 3, 7, /*now=*/0);

  NewSetStubsMsg msg;
  msg.export_seq = 1;
  const auto res = apply_new_set_stubs(scions, 3, msg, /*now=*/kGrace - 1, kGrace);
  EXPECT_EQ(res.deleted, 0u);
  EXPECT_TRUE(scions.contains(ref));
}

TEST(ReferenceListing, PendingScionCollectedAfterGrace) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  scions.ensure(ref, 3, 7, 0);

  NewSetStubsMsg msg;
  msg.export_seq = 1;
  const auto res = apply_new_set_stubs(scions, 3, msg, /*now=*/kGrace + 1, kGrace);
  EXPECT_EQ(res.deleted, 1u);
}

TEST(ReferenceListing, StaleMessageRejected) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  auto& sc = scions.ensure(ref, 3, 7, 0);
  sc.confirmed = true;

  NewSetStubsMsg newer;
  newer.export_seq = 10;
  newer.live = {ref};
  EXPECT_FALSE(apply_new_set_stubs(scions, 3, newer, 5, kGrace).stale);

  NewSetStubsMsg older;  // reordered: computed before, delivered after
  older.export_seq = 4;  // does NOT list the ref
  const auto res = apply_new_set_stubs(scions, 3, older, 6, kGrace);
  EXPECT_TRUE(res.stale);
  EXPECT_TRUE(scions.contains(ref));
}

TEST(ReferenceListing, DuplicateMessageIdempotent) {
  ScionTable scions;
  const RefId ref = make_ref_id(3, 1);
  scions.ensure(ref, 3, 7, 0).confirmed = true;

  NewSetStubsMsg msg;
  msg.export_seq = 2;
  msg.live = {ref};
  EXPECT_FALSE(apply_new_set_stubs(scions, 3, msg, 1, kGrace).stale);
  EXPECT_TRUE(apply_new_set_stubs(scions, 3, msg, 2, kGrace).stale);  // dup
  EXPECT_TRUE(scions.contains(ref));
}

TEST(ReferenceListing, OnlyMatchingHolderAffected) {
  ScionTable scions;
  const RefId r3 = make_ref_id(3, 1);
  const RefId r4 = make_ref_id(4, 1);
  scions.ensure(r3, 3, 7, 0).confirmed = true;
  scions.ensure(r4, 4, 7, 0).confirmed = true;

  NewSetStubsMsg msg;
  msg.export_seq = 1;  // empty: deletes everything from holder 3 only
  apply_new_set_stubs(scions, 3, msg, 10, kGrace);
  EXPECT_FALSE(scions.contains(r3));
  EXPECT_TRUE(scions.contains(r4));
}

TEST(ReferenceListing, ExportSeqPerHolder) {
  ScionTable scions;
  EXPECT_TRUE(scions.accept_export_seq(1, 5));
  EXPECT_TRUE(scions.accept_export_seq(2, 3));  // independent counter
  EXPECT_FALSE(scions.accept_export_seq(1, 5));
  EXPECT_TRUE(scions.accept_export_seq(1, 6));
}

TEST(ScionTable, RefsFromHolder) {
  ScionTable scions;
  scions.ensure(make_ref_id(1, 1), 1, 10, 0);
  scions.ensure(make_ref_id(1, 2), 1, 11, 0);
  scions.ensure(make_ref_id(2, 1), 2, 12, 0);
  EXPECT_EQ(scions.refs_from_holder(1).size(), 2u);
  EXPECT_EQ(scions.refs_from_holder(2).size(), 1u);
  EXPECT_TRUE(scions.refs_from_holder(9).empty());
}

TEST(StubTable, LiveRefsByOwnerGroups) {
  StubTable stubs;
  stubs.ensure(make_ref_id(0, 1), ObjectId{1, 1}, 0);
  stubs.ensure(make_ref_id(0, 2), ObjectId{1, 2}, 0);
  stubs.ensure(make_ref_id(0, 3), ObjectId{2, 1}, 0);
  const auto groups = stubs.live_refs_by_owner();
  EXPECT_EQ(groups.at(1).size(), 2u);
  EXPECT_EQ(groups.at(2).size(), 1u);
}

TEST(StubTable, EnsureIsIdempotent) {
  StubTable stubs;
  auto& a = stubs.ensure(make_ref_id(0, 1), ObjectId{1, 1}, 5);
  a.ic = 42;
  auto& b = stubs.ensure(make_ref_id(0, 1), ObjectId{1, 1}, 9);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.ic, 42u);
  EXPECT_EQ(b.created_at, 5u);
}

}  // namespace
}  // namespace adgc
