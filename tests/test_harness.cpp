// Tests for the experiment harness: the global-reachability oracle, the
// scenario builders' structural invariants, and the canned configs.
#include <gtest/gtest.h>

#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

TEST(Oracle, EmptyRuntime) {
  Runtime rt(2, sim::manual_config(1));
  EXPECT_TRUE(sim::global_live_set(rt).empty());
  const auto st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 0u);
  EXPECT_EQ(st.garbage_objects, 0u);
}

TEST(Oracle, FollowsLocalAndRemoteEdges) {
  Runtime rt(2, sim::manual_config(2));
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId a2{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId dead{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(0).add_local_ref(a.seq, a2.seq);
  rt.link(a2, b);

  const auto live = sim::global_live_set(rt);
  EXPECT_TRUE(live.contains(a));
  EXPECT_TRUE(live.contains(a2));
  EXPECT_TRUE(live.contains(b));
  EXPECT_FALSE(live.contains(dead));
  const auto st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 4u);
  EXPECT_EQ(st.live_objects, 3u);
  EXPECT_EQ(st.garbage_objects, 1u);
}

TEST(Oracle, SeesThroughDistributedCycles) {
  Runtime rt(3, sim::manual_config(3));
  const sim::Ring ring = sim::build_ring(rt, 3, 2, /*pin_first=*/true);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  rt.proc(0).remove_root(ring.anchors[0].seq);
  const auto st = sim::global_stats(rt);
  // Anchor + 6 ring objects all garbage now.
  EXPECT_EQ(st.garbage_objects, st.total_objects);
}

TEST(Scenarios, Fig3Shape) {
  Runtime rt(4, sim::manual_config(4));
  const sim::Fig3 fig = sim::build_fig3(rt);
  // 14 objects, 4 remote refs, every object live while A is rooted.
  const auto st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 14u);
  EXPECT_EQ(st.stubs, 4u);
  EXPECT_EQ(st.scions, 4u);
  EXPECT_EQ(st.garbage_objects, 0u);
  // The four refs are pairwise distinct.
  std::set<RefId> refs = {fig.B_to_F, fig.J_to_Q, fig.S_to_O, fig.K_to_D};
  EXPECT_EQ(refs.size(), 4u);
}

TEST(Scenarios, Fig4Shape) {
  Runtime rt(6, sim::manual_config(5));
  const sim::Fig4 fig = sim::build_fig4(rt);
  const auto st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 8u);
  EXPECT_EQ(st.garbage_objects, 8u);  // garbage from the start
  // V and Y share the same stub entry.
  const StubEntry* stub = rt.proc(4).stubs().find(fig.VY_to_T);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->holders, 2u);
  EXPECT_EQ(st.scions, 7u);  // 8 remote refs but V/Y share one
}

TEST(Scenarios, Fig1PinControlsLiveness) {
  {
    Runtime rt(4, sim::manual_config(6));
    sim::build_fig1(rt, /*pin_w=*/true);
    EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  }
  {
    Runtime rt(4, sim::manual_config(7));
    sim::build_fig1(rt, /*pin_w=*/false);
    EXPECT_EQ(sim::global_stats(rt).garbage_objects, 4u);
  }
}

TEST(Scenarios, Fig5StartsLive) {
  Runtime rt(5, sim::manual_config(8));
  const sim::Fig5 fig = sim::build_fig5(rt);
  const auto live = sim::global_live_set(rt);
  // Everything reachable: A root covers the cycle; M is its own root.
  EXPECT_TRUE(live.contains(fig.F));
  EXPECT_TRUE(live.contains(fig.V));
  EXPECT_TRUE(live.contains(fig.M));
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
}

TEST(Scenarios, RingParameterValidation) {
  Runtime rt(2, sim::manual_config(9));
  EXPECT_THROW(sim::build_ring(rt, 5, 1), std::invalid_argument);  // too few procs
  EXPECT_THROW(sim::build_ring(rt, 1, 1), std::invalid_argument);
  EXPECT_THROW(sim::build_ring(rt, 2, 0), std::invalid_argument);
}

TEST(Scenarios, RingSpansAllProcesses) {
  Runtime rt(5, sim::manual_config(10));
  const sim::Ring ring = sim::build_ring(rt, 5, 4);
  EXPECT_EQ(ring.heads.size(), 5u);
  EXPECT_EQ(ring.ring_refs.size(), 5u);
  for (ProcessId pid = 0; pid < 5; ++pid) {
    EXPECT_GE(rt.proc(pid).heap().size(), 4u) << pid;
  }
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
}

TEST(Configs, ManualConfigSuppressesTimers) {
  Runtime rt(2, sim::manual_config(11));
  rt.proc(0).create_object();  // unrooted garbage
  rt.run_for(5'000'000);
  // No LGC ever ran on its own.
  EXPECT_EQ(rt.total_metrics().lgc_runs.get(), 0u);
  EXPECT_EQ(rt.proc(0).heap().size(), 1u);
}

TEST(Configs, FastConfigRunsEverything) {
  Runtime rt(2, sim::fast_config(12));
  rt.proc(0).create_object();  // unrooted garbage
  rt.run_for(200'000);
  const Metrics m = rt.total_metrics();
  EXPECT_GT(m.lgc_runs.get(), 0u);
  EXPECT_GT(m.snapshots_taken.get(), 0u);
  EXPECT_EQ(rt.proc(0).heap().size(), 0u);
}

TEST(Configs, SettleManualDrivesFullRounds) {
  Runtime rt(3, sim::manual_config(13));
  const sim::Ring ring = sim::build_ring(rt, 3, 2, /*pin_first=*/false);
  (void)ring;
  EXPECT_EQ(sim::global_stats(rt).total_objects, 6u);
  sim::settle_manual(rt, 10);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u);
}

}  // namespace
}  // namespace adgc
