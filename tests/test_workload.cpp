// Tests for the random-workload driver and its shadow oracle.
#include <gtest/gtest.h>

#include "src/sim/harness.h"
#include "src/sim/workload.h"

namespace adgc {
namespace {

using sim::RandomWorkload;
using sim::ShadowGraph;
using sim::WorkloadParams;

TEST(ShadowGraph, LivenessFollowsRootsAndEdges) {
  ShadowGraph g;
  const ObjectId a{0, 1}, b{0, 2}, c{1, 1};
  g.add_object(a);
  g.add_object(b);
  g.add_object(c);
  g.add_root(a);
  g.add_edge(a, b);
  auto live = g.live();
  EXPECT_TRUE(live.contains(a));
  EXPECT_TRUE(live.contains(b));
  EXPECT_FALSE(live.contains(c));

  g.add_edge(b, c);
  EXPECT_TRUE(g.live().contains(c));
  g.remove_edge(b, c);
  EXPECT_FALSE(g.live().contains(c));
  g.remove_root(a);
  EXPECT_TRUE(g.live().empty());
}

TEST(ShadowGraph, MultiEdgeSemantics) {
  ShadowGraph g;
  const ObjectId a{0, 1}, b{0, 2};
  g.add_object(a);
  g.add_object(b);
  g.add_root(a);
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.remove_edge(a, b);  // one occurrence removed, edge remains
  EXPECT_TRUE(g.live().contains(b));
  g.remove_edge(a, b);
  EXPECT_FALSE(g.live().contains(b));
}

TEST(ShadowGraph, CyclesStayLiveWhileRooted) {
  ShadowGraph g;
  const ObjectId a{0, 1}, b{1, 1};
  g.add_object(a);
  g.add_object(b);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_TRUE(g.live().empty());
  g.add_root(a);
  EXPECT_EQ(g.live().size(), 2u);
}

TEST(Workload, MirrorsRuntimeExactly) {
  Runtime rt(3, sim::fast_config(91));
  RandomWorkload w(rt, WorkloadParams{}, /*seed=*/91);
  // Interleave mutation and protocol progress; the shadow-live set must
  // always be a subset of the existing heap objects.
  for (int round = 0; round < 40; ++round) {
    w.steps(25);
    rt.run_for(20'000);
    const auto violation = w.find_safety_violation();
    EXPECT_FALSE(violation.has_value())
        << "live object " << to_string(*violation) << " was collected (round "
        << round << ")";
  }
}

TEST(Workload, ShadowCountsAreSane) {
  Runtime rt(2, sim::fast_config(92));
  WorkloadParams params;
  params.initial_objects_per_proc = 4;
  RandomWorkload w(rt, params, 92);
  EXPECT_EQ(w.shadow().num_objects(), 8u);
  w.steps(200);
  EXPECT_GE(w.shadow().num_objects(), 8u);
}

}  // namespace
}  // namespace adgc
