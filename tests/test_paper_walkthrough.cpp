// Literal replay of the paper's §3 walkthrough (steps 1-26) and the §3.1
// mutually-linked variant, with four/six detached Detector instances and
// hand-shuttled CDMs, asserting the exact algebra at every hop.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/dcda/detector.h"

namespace adgc {
namespace {

// A little rig: one detector per "process", with capture-and-shuttle hooks.
class Rig {
 public:
  explicit Rig(std::size_t n) {
    cfg_.detection_timeout_us = 1'000'000;
    for (ProcessId pid = 0; pid < n; ++pid) {
      metrics_.push_back(std::make_unique<Metrics>());
      Detector::Hooks hooks;
      hooks.send_cdm = [this](ProcessId dst, const CdmMsg& msg) {
        outbox_.push_back({dst, msg});
      };
      hooks.cycle_found = [this](DetectionId, RefId victim, std::uint64_t ic) {
        cycles_.emplace_back(victim, ic);
      };
      detectors_.push_back(
          std::make_unique<Detector>(pid, cfg_, *metrics_.back(), hooks));
    }
  }

  void install(ProcessId pid, std::vector<ScionSummary> scions,
               std::vector<StubSummary> stubs) {
    auto snap = std::make_shared<SummarizedGraph>();
    snap->pid = pid;
    for (auto& s : scions) snap->scions.emplace(s.ref, std::move(s));
    for (auto& s : stubs) snap->stubs.emplace(s.ref, std::move(s));
    detectors_[pid]->set_snapshot(std::move(snap));
  }

  Detector& det(ProcessId pid) { return *detectors_[pid]; }

  struct Sent {
    ProcessId dst;
    CdmMsg msg;
  };
  /// Drains the outbox (the CDMs produced by the last action).
  std::vector<Sent> take() { return std::exchange(outbox_, {}); }
  /// Delivers one CDM to its destination detector.
  void deliver(const Sent& s) { detectors_[s.dst]->on_cdm(s.msg, 0); }

  const std::vector<std::pair<RefId, std::uint64_t>>& cycles() const { return cycles_; }

 private:
  ProcessConfig cfg_;
  std::vector<std::unique_ptr<Metrics>> metrics_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<Sent> outbox_;
  std::vector<std::pair<RefId, std::uint64_t>> cycles_;
};

std::vector<RefId> refs_of(const std::vector<AlgebraElem>& v) {
  std::vector<RefId> out;
  for (const auto& e : v) out.push_back(e.ref);
  return out;
}

// Process ids: P1=0, P2=1, P3=2, P4=3 (P5=4, P6=5 in the §3.1 variant).
TEST(PaperWalkthrough, Section3SimpleCycle) {
  // Reference names as in the paper: the scion at a process is named by the
  // object it protects.
  const RefId F = make_ref_id(1, 1);  // scion at P2, stub at P1
  const RefId Q = make_ref_id(3, 1);  // scion at P4, stub at P2
  const RefId O = make_ref_id(2, 1);  // scion at P3, stub at P4
  const RefId D = make_ref_id(0, 1);  // scion at P1, stub at P3

  Rig rig(4);
  rig.install(1, {{F, 0, 0, 1, {Q}}}, {{Q, 0, ObjectId{3, 1}, false, {F}}});
  rig.install(3, {{Q, 0, 1, 1, {O}}}, {{O, 0, ObjectId{2, 1}, false, {Q}}});
  rig.install(2, {{O, 0, 3, 1, {D}}}, {{D, 0, ObjectId{0, 1}, false, {O}}});
  rig.install(0, {{D, 0, 2, 1, {F}}}, {{F, 0, ObjectId{1, 1}, false, {D}}});

  // Steps 1-4: P2 chooses F as candidate; Alg_1 = {{F} → {Q}}, sent to P4.
  ASSERT_TRUE(rig.det(1).start_detection(F, 0));
  auto sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 3u);
  EXPECT_EQ(refs_of(sent[0].msg.source), std::vector<RefId>{F});
  EXPECT_EQ(refs_of(sent[0].msg.target), std::vector<RefId>{Q});

  // Steps 5-11: deliver at P4; Alg_2 = {{F,Q} → {Q,O}}, sent to P3.
  rig.deliver(sent[0]);
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 2u);
  EXPECT_EQ(refs_of(sent[0].msg.source), (std::vector<RefId>{F, Q}));
  {
    // Step 13 is about the *matching*: {{F} → {O}}.
    const MatchResult m = match(algebra_from_msg(sent[0].msg));
    EXPECT_EQ(refs_of(m.source.elems()), std::vector<RefId>{F});
    EXPECT_EQ(refs_of(m.target.elems()), std::vector<RefId>{O});
    EXPECT_FALSE(m.cycle_found());
  }

  // Steps 12-17: deliver at P3; Alg_3 = {{F,Q,O} → {Q,O,D}}, sent to P1.
  rig.deliver(sent[0]);
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 0u);
  EXPECT_EQ(refs_of(sent[0].msg.source), (std::vector<RefId>{D, F, Q, O}).size() == 4
                ? refs_of(sent[0].msg.source)  // sorted by RefId; just check set
                : refs_of(sent[0].msg.source));
  {
    std::vector<RefId> src = refs_of(sent[0].msg.source);
    std::sort(src.begin(), src.end());
    std::vector<RefId> want = {F, Q, O};
    std::sort(want.begin(), want.end());
    EXPECT_EQ(src, want);
  }

  // Steps 18-23: deliver at P1; Alg_4 = {{F,Q,O,D} → {Q,O,D,F}}, sent to P2.
  rig.deliver(sent[0]);
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 1u);
  {
    std::vector<RefId> src = refs_of(sent[0].msg.source);
    std::vector<RefId> tgt = refs_of(sent[0].msg.target);
    std::sort(src.begin(), src.end());
    std::sort(tgt.begin(), tgt.end());
    EXPECT_EQ(src, tgt);  // the two sets coincide: the loop is closed
    EXPECT_EQ(src.size(), 4u);
  }

  // Steps 24-26: deliver at P2; Matching = {{} → {}}; Cycle Found = true.
  rig.deliver(sent[0]);
  EXPECT_TRUE(rig.take().empty());
  ASSERT_EQ(rig.cycles().size(), 1u);
  EXPECT_EQ(rig.cycles()[0].first, F);
}

TEST(PaperWalkthrough, Section31MutualCycles) {
  // Fig. 4 references: F (scion at P2), V and Y (scions at P5), T (scion at
  // P4, stub shared by V and Y at P5), D (scion at P1), K (scion at P3),
  // ZB (scion at P6).
  const RefId F = make_ref_id(1, 1);
  const RefId V = make_ref_id(4, 1);
  const RefId Y = make_ref_id(4, 2);
  const RefId T = make_ref_id(3, 1);
  const RefId D = make_ref_id(0, 1);
  const RefId K = make_ref_id(2, 1);
  const RefId ZB = make_ref_id(5, 1);

  Rig rig(6);
  rig.install(1, {{F, 0, 0, 1, {V, K}}},
              {{V, 0, ObjectId{4, 1}, false, {F}}, {K, 0, ObjectId{2, 1}, false, {F}}});
  rig.install(4, {{V, 0, 1, 1, {T}}, {Y, 0, 5, 2, {T}}},
              {{T, 0, ObjectId{3, 1}, false, {V, Y}}});
  rig.install(3, {{T, 0, 4, 1, {D}}}, {{D, 0, ObjectId{0, 1}, false, {T}}});
  rig.install(0, {{D, 0, 3, 1, {F}}}, {{F, 0, ObjectId{1, 1}, false, {D}}});
  rig.install(2, {{K, 0, 1, 1, {ZB}}}, {{ZB, 0, ObjectId{5, 1}, false, {K}}});
  rig.install(5, {{ZB, 0, 2, 1, {Y}}}, {{Y, 0, ObjectId{4, 2}, false, {ZB}}});

  // Steps 1-3: two derivations leave P2 (one toward P5, one toward P3).
  ASSERT_TRUE(rig.det(1).start_detection(F, 0));
  auto sent = rig.take();
  ASSERT_EQ(sent.size(), 2u);

  // Follow only the P5 branch (Alg_1a), as the paper does.
  const auto branch_a =
      sent[0].dst == 4 ? sent[0] : sent[1];
  ASSERT_EQ(branch_a.dst, 4u);

  // Steps 4-6 at P5: ScionsTo(T) adds the extra dependency Y.
  rig.deliver(branch_a);
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  {
    std::vector<RefId> src = refs_of(sent[0].msg.source);
    EXPECT_TRUE(std::find(src.begin(), src.end(), Y) != src.end())
        << "Y_P5 must be accounted as an extra dependency (step 5)";
  }

  // Steps 7-8: P4 then P1, arriving back at P2.
  rig.deliver(sent[0]);  // at P4
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  rig.deliver(sent[0]);  // at P1
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  ASSERT_EQ(sent[0].dst, 1u);

  // Steps 9-11: Matching(Alg_4a) = {{Y} → {}} — no cycle yet.
  {
    const MatchResult m = match(algebra_from_msg(sent[0].msg));
    EXPECT_FALSE(m.cycle_found());
    EXPECT_EQ(refs_of(m.source.elems()), std::vector<RefId>{Y});
    EXPECT_TRUE(m.target.empty());
  }

  // Steps 12-15: P2 re-expands; the V-branch derivation equals the arrival
  // algebra and is dropped; only the K-branch (toward P3) continues.
  rig.deliver(sent[0]);
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u) << "the already-traced branch must be terminated";
  EXPECT_EQ(sent[0].dst, 2u);
  EXPECT_EQ(sent[0].msg.via, K);

  // Steps 16-24: P3 → P6 → P5.
  rig.deliver(sent[0]);  // at P3
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 5u);
  rig.deliver(sent[0]);  // at P6
  sent = rig.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst, 4u);
  EXPECT_EQ(sent[0].msg.via, Y);

  // Steps 25-26: at P5, Matching = {{} → {}} — Cycle Found = true.
  rig.deliver(sent[0]);
  ASSERT_EQ(rig.cycles().size(), 1u);
  EXPECT_EQ(rig.cycles()[0].first, Y) << "the arrival scion at P5 is deleted";
}

}  // namespace
}  // namespace adgc
