// Unit tests for the per-process heap.
#include <gtest/gtest.h>

#include "src/rt/heap.h"

namespace adgc {
namespace {

TEST(Heap, AllocateAssignsFreshSeqs) {
  Heap h;
  const ObjectSeq a = h.allocate();
  const ObjectSeq b = h.allocate();
  EXPECT_NE(a, b);
  EXPECT_TRUE(h.exists(a));
  EXPECT_TRUE(h.exists(b));
  EXPECT_EQ(h.size(), 2u);
}

TEST(Heap, SeqsNeverReused) {
  Heap h;
  const ObjectSeq a = h.allocate();
  h.remove(a);
  const ObjectSeq b = h.allocate();
  EXPECT_NE(a, b);
  EXPECT_FALSE(h.exists(a));
}

TEST(Heap, PayloadSized) {
  Heap h;
  const ObjectSeq a = h.allocate(128);
  EXPECT_EQ(h.find(a)->payload.size(), 128u);
}

TEST(Heap, RootsSetSemantics) {
  Heap h;
  const ObjectSeq a = h.allocate();
  h.add_root(a);
  h.add_root(a);
  EXPECT_TRUE(h.is_root(a));
  EXPECT_EQ(h.roots().size(), 1u);
  h.remove_root(a);
  EXPECT_FALSE(h.is_root(a));
}

TEST(Heap, LocalFieldsMultiset) {
  Heap h;
  const ObjectSeq a = h.allocate();
  const ObjectSeq b = h.allocate();
  h.add_local_field(a, b);
  h.add_local_field(a, b);
  EXPECT_EQ(h.find(a)->local_fields.size(), 2u);
  EXPECT_TRUE(h.remove_local_field(a, b));
  EXPECT_EQ(h.find(a)->local_fields.size(), 1u);
  EXPECT_TRUE(h.remove_local_field(a, b));
  EXPECT_FALSE(h.remove_local_field(a, b));
}

TEST(Heap, RemoteFieldsMultiset) {
  Heap h;
  const ObjectSeq a = h.allocate();
  const RefId r = make_ref_id(1, 1);
  h.add_remote_field(a, r);
  h.add_remote_field(a, r);
  EXPECT_EQ(h.find(a)->remote_fields.size(), 2u);
  EXPECT_TRUE(h.remove_remote_field(a, r));
  EXPECT_TRUE(h.remove_remote_field(a, r));
  EXPECT_FALSE(h.remove_remote_field(a, r));
}

TEST(Heap, AddFieldValidatesEndpoints) {
  Heap h;
  const ObjectSeq a = h.allocate();
  EXPECT_THROW(h.add_local_field(a, 999), std::invalid_argument);
  EXPECT_THROW(h.add_local_field(999, a), std::invalid_argument);
  EXPECT_THROW(h.add_remote_field(999, make_ref_id(0, 0)), std::invalid_argument);
}

TEST(Heap, SelfReferenceAllowed) {
  Heap h;
  const ObjectSeq a = h.allocate();
  h.add_local_field(a, a);
  EXPECT_EQ(h.find(a)->local_fields.size(), 1u);
}

TEST(Heap, FindMissingReturnsNull) {
  Heap h;
  EXPECT_EQ(h.find(42), nullptr);
  const Heap& ch = h;
  EXPECT_EQ(ch.find(42), nullptr);
}

}  // namespace
}  // namespace adgc
