// The paper's Fig. 4 (§3.1): mutually-linked distributed cycles across six
// processes, with V and Y sharing one reference to T. Exercises extra
// dependencies (ScionsTo), the branch-termination rule, and full reclamation.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

using sim::build_fig4;
using sim::Fig4;

class DcdaFig4 : public ::testing::Test {
 protected:
  DcdaFig4() : rt(6, sim::manual_config(42)) {}

  void snapshot_all() {
    for (ProcessId pid = 0; pid < 6; ++pid) {
      rt.proc(pid).run_lgc();
      rt.proc(pid).take_snapshot();
    }
  }

  Runtime rt;
};

TEST_F(DcdaFig4, SummaryHasSharedStubDependencies) {
  const Fig4 fig = build_fig4(rt);
  snapshot_all();
  const auto snap = rt.proc(4).current_summary();  // P5
  ASSERT_NE(snap, nullptr);
  // ScionsTo(stub T) at P5 must contain both the V scion and the Y scion.
  const StubSummary* stub_t = snap->stub(fig.VY_to_T);
  ASSERT_NE(stub_t, nullptr);
  EXPECT_EQ(stub_t->scions_to.size(), 2u);
  // Scion(F→V) reaches stub T only; Scion(ZD→Y) reaches stub T only.
  const ScionSummary* scion_v = snap->scion(fig.F_to_V);
  ASSERT_NE(scion_v, nullptr);
  EXPECT_EQ(scion_v->stubs_from, std::vector<RefId>{fig.VY_to_T});
}

TEST_F(DcdaFig4, DetectionTerminatesAndFindsCycles) {
  const Fig4 fig = build_fig4(rt);
  snapshot_all();

  // Start at the paper's candidate: the scion of F at P2 (ref D_to_F).
  ASSERT_TRUE(rt.proc(1).detector().start_detection(fig.D_to_F, rt.now()));
  rt.run_for(300'000);

  const Metrics m = rt.total_metrics();
  // The walkthrough needs two passes around the pair of cycles; at least
  // one derivation must have been dropped as adding no information
  // (termination rule, step 15), and the detection must conclude.
  EXPECT_GE(m.detections_cycle_found.get(), 1u);
  EXPECT_GE(m.detections_dropped_dup.get(), 1u);
  // CDM count stays small (no infinite looping).
  EXPECT_LE(m.cdms_sent.get(), 32u);

  // Let the acyclic collector unravel; then probe any surviving scions.
  sim::settle_manual(rt, 10);
  const sim::GlobalStats st = sim::global_stats(rt);
  EXPECT_EQ(st.total_objects, 0u) << "both mutually-linked cycles reclaimed";
  EXPECT_EQ(st.scions, 0u);
}

TEST_F(DcdaFig4, AutomaticReclamation) {
  Runtime auto_rt(6, sim::fast_config(7));
  build_fig4(auto_rt);
  auto_rt.run_for(4'000'000);
  const sim::GlobalStats st = sim::global_stats(auto_rt);
  EXPECT_EQ(st.total_objects, 0u);
  EXPECT_EQ(st.scions, 0u);
  EXPECT_EQ(st.stubs, 0u);
}

TEST_F(DcdaFig4, PinnedAnywhereSurvivesEverywhere) {
  // Root any single object of the two linked cycles: nothing may be
  // collected, from any entry point.
  for (int variant = 0; variant < 4; ++variant) {
    Runtime vrt(6, sim::manual_config(50 + variant));
    const Fig4 g = build_fig4(vrt);
    const ObjectId pin = variant == 0   ? g.F
                         : variant == 1 ? g.Y
                         : variant == 2 ? g.ZD
                                        : g.T;
    vrt.proc(pin.owner).add_root(pin.seq);
    for (ProcessId pid = 0; pid < 6; ++pid) {
      vrt.proc(pid).run_lgc();
      vrt.proc(pid).take_snapshot();
    }
    // Probe every scion in the system.
    for (ProcessId pid = 0; pid < 6; ++pid) {
      std::vector<RefId> refs;
      for (const auto& [ref, sc] : vrt.proc(pid).scions()) refs.push_back(ref);
      for (RefId ref : refs) vrt.proc(pid).detector().start_detection(ref, vrt.now());
    }
    vrt.run_for(300'000);
    sim::settle_manual(vrt, 6);
    EXPECT_EQ(vrt.total_metrics().detections_cycle_found.get(), 0u)
        << "variant " << variant;
    const sim::GlobalStats st = sim::global_stats(vrt);
    EXPECT_EQ(st.garbage_objects, 0u) << "variant " << variant;
    EXPECT_EQ(st.total_objects, 8u) << "variant " << variant;
  }
}

TEST(DcdaRings, GeneralizedRingsCollect) {
  // Rings of growing span: detection must complete for each.
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    Runtime rt(n, sim::fast_config(60 + n));
    const sim::Ring ring = sim::build_ring(rt, n, /*objs_per_proc=*/3);
    rt.run_for(200'000);
    EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
    rt.proc(0).remove_root(ring.anchors[0].seq);
    rt.run_for(static_cast<SimTime>(4'000'000 + n * 1'000'000));
    const sim::GlobalStats st = sim::global_stats(rt);
    EXPECT_EQ(st.total_objects, 0u) << "ring n=" << n;
  }
}

}  // namespace
}  // namespace adgc
