// Remote invocation machinery: invocation counters, reference export/import
// (own-object and third-party with the scion-first handshake), invoke
// effects, replies, and the Table-1 DGC-off mode.
#include <gtest/gtest.h>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

class Rmi : public ::testing::Test {
 protected:
  Rmi() : rt(3, sim::manual_config(71)) {
    a = ObjectId{0, rt.proc(0).create_object()};
    b = ObjectId{1, rt.proc(1).create_object()};
    c = ObjectId{2, rt.proc(2).create_object()};
    rt.proc(0).add_root(a.seq);
    rt.proc(1).add_root(b.seq);
    rt.proc(2).add_root(c.seq);
    a_to_b = rt.link(a, b);
  }

  Runtime rt;
  ObjectId a, b, c;
  RefId a_to_b;
};

TEST_F(Rmi, InvocationBumpsCountersBothSides) {
  const auto ic0_stub = rt.proc(0).stubs().find(a_to_b)->ic;
  const auto ic0_scion = rt.proc(1).scions().find(a_to_b)->ic;
  EXPECT_EQ(ic0_stub, ic0_scion);

  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kTouch);
  rt.run_for(50'000);  // call + reply

  const auto ic1_stub = rt.proc(0).stubs().find(a_to_b)->ic;
  const auto ic1_scion = rt.proc(1).scions().find(a_to_b)->ic;
  // Call bumps once, reply bumps once: +2 total, both sides agree again.
  EXPECT_EQ(ic1_stub, ic0_stub + 2);
  EXPECT_EQ(ic1_scion, ic1_stub);
}

TEST_F(Rmi, InvocationConfirmsScion) {
  EXPECT_FALSE(rt.proc(1).scions().find(a_to_b)->confirmed);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kTouch);
  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).scions().find(a_to_b)->confirmed);
}

TEST_F(Rmi, NoReplyModeBumpsOnce) {
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kTouch, {}, /*want_reply=*/false);
  rt.run_for(50'000);
  EXPECT_EQ(rt.proc(0).stubs().find(a_to_b)->ic, 1u);
  EXPECT_EQ(rt.proc(1).scions().find(a_to_b)->ic, 1u);
  EXPECT_EQ(rt.total_metrics().replies_sent.get(), 0u);
}

TEST_F(Rmi, PinAndUnpinRootEffects) {
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kPinRoot);
  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).heap().is_root(b.seq));
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kUnpinRoot);
  rt.run_for(50'000);
  EXPECT_FALSE(rt.proc(1).heap().is_root(b.seq));
}

TEST_F(Rmi, ExportOwnObjectCreatesScionEagerly) {
  // a invokes b, passing a fresh object of P0 as argument.
  const ObjectSeq arg = rt.proc(0).create_object();
  rt.proc(0).add_root(arg);  // keep it alive at the source
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::own(arg)});
  // Scion exists at P0 immediately (before any message flows).
  bool found = false;
  for (const auto& [ref, sc] : rt.proc(0).scions()) {
    if (sc.target == arg && sc.holder == 1) found = true;
  }
  EXPECT_TRUE(found);

  rt.run_for(50'000);
  // b now holds a remote field to the exported object.
  const HeapObject* bo = rt.proc(1).heap().find(b.seq);
  ASSERT_EQ(bo->remote_fields.size(), 1u);
  const StubEntry* stub = rt.proc(1).stubs().find(bo->remote_fields[0]);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->target, (ObjectId{0, arg}));
}

TEST_F(Rmi, ThirdPartyExportRunsHandshake) {
  // a holds a ref to b and a ref to c; it passes the c-reference to b.
  const RefId a_to_c = rt.link(a, c);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::held(a_to_c)});
  // The invocation is parked until C acks the AddScion.
  EXPECT_EQ(rt.proc(0).pending_exports(), 1u);
  rt.run_for(100'000);
  EXPECT_EQ(rt.proc(0).pending_exports(), 0u);

  // b now holds a new reference to c, and c has a scion for holder P1.
  const HeapObject* bo = rt.proc(1).heap().find(b.seq);
  ASSERT_EQ(bo->remote_fields.size(), 1u);
  const RefId new_ref = bo->remote_fields[0];
  EXPECT_NE(new_ref, a_to_c);  // fresh reference identity
  const ScionEntry* sc = rt.proc(2).scions().find(new_ref);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->holder, 1u);
  EXPECT_EQ(sc->target, c.seq);
  EXPECT_EQ(rt.total_metrics().add_scion_sent.get(), 1u);
}

TEST_F(Rmi, ThirdPartyExportToTargetOwnerBecomesLocal) {
  // a passes its b-reference TO b itself: b should get a local self-field.
  const RefId another = rt.link(a, b);  // second ref a→b
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::held(another)});
  rt.run_for(50'000);
  const HeapObject* bo = rt.proc(1).heap().find(b.seq);
  ASSERT_EQ(bo->local_fields.size(), 1u);
  EXPECT_EQ(bo->local_fields[0], b.seq);
  EXPECT_TRUE(bo->remote_fields.empty());
  // No handshake was needed.
  EXPECT_EQ(rt.total_metrics().add_scion_sent.get(), 0u);
}

TEST_F(Rmi, HandshakePinsStubAgainstLgc) {
  const RefId a_to_c = rt.link(a, c);
  // Block the link to C so the AddScion can't be delivered yet.
  rt.network().set_link_blocked(0, 2, true);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kStoreArgs, {ArgRef::held(a_to_c)});
  // The mutator immediately drops its own reference to c.
  rt.proc(0).remove_remote_ref(a.seq, a_to_c);
  rt.proc(0).run_lgc();
  // The stub must survive: it is pinned by the in-flight export.
  EXPECT_TRUE(rt.proc(0).stubs().contains(a_to_c));

  rt.network().set_link_blocked(0, 2, false);
  rt.run_for(200'000);  // retries go through, handshake completes
  EXPECT_EQ(rt.proc(0).pending_exports(), 0u);
  rt.proc(0).run_lgc();
  EXPECT_FALSE(rt.proc(0).stubs().contains(a_to_c));  // unpinned, unheld

  // b's imported reference keeps c alive even though a dropped everything.
  rt.run_for(100'000);
  for (ProcessId pid = 0; pid < 3; ++pid) rt.proc(pid).run_lgc();
  rt.run_for(100'000);
  EXPECT_TRUE(rt.proc(2).heap().exists(c.seq));
  const HeapObject* bo = rt.proc(1).heap().find(b.seq);
  ASSERT_EQ(bo->remote_fields.size(), 1u);
}

TEST_F(Rmi, DropFieldsEffect) {
  const ObjectSeq extra = rt.proc(1).create_object();
  rt.proc(1).add_local_ref(b.seq, extra);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kDropFields);
  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).heap().find(b.seq)->local_fields.empty());
}

TEST_F(Rmi, InvokeUnknownRefThrows) {
  EXPECT_THROW(rt.proc(0).invoke(a.seq, make_ref_id(9, 9), InvokeEffect::kTouch),
               std::invalid_argument);
}

TEST_F(Rmi, InvocationForCollectedScionDropped) {
  // Forcefully delete the scion, then invoke: the receiver must drop it and
  // never resurrect the object.
  const_cast<ScionTable&>(rt.proc(1).scions()).erase(a_to_b);
  rt.proc(0).invoke(a.seq, a_to_b, InvokeEffect::kTouch);
  rt.run_for(50'000);
  EXPECT_EQ(rt.total_metrics().invocations_dropped.get(), 1u);
}

TEST(RmiDgcOff, NoDgcBookkeeping) {
  RuntimeConfig cfg = sim::manual_config(72);
  cfg.proc.dgc_enabled = false;
  cfg.proc.dcda_enabled = false;
  Runtime rt(2, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.proc(1).add_root(b.seq);

  const RefId ref = rt.link(a, b);
  // No scion was created.
  EXPECT_EQ(rt.proc(1).scions().size(), 0u);
  // Invocations still work (the message carries the endpoint id).
  rt.proc(0).invoke(a.seq, ref, InvokeEffect::kPinRoot);
  rt.run_for(50'000);
  EXPECT_TRUE(rt.proc(1).heap().is_root(b.seq));
  // No counters maintained.
  EXPECT_EQ(rt.proc(0).stubs().find(ref)->ic, 0u);
  // LGC never emits NewSetStubs.
  rt.proc(0).run_lgc();
  rt.run_for(50'000);
  EXPECT_EQ(rt.total_metrics().new_set_stubs_sent.get(), 0u);
}

}  // namespace
}  // namespace adgc
