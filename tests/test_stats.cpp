// Unit tests for the sample-statistics accumulator.
#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace adgc {
namespace {

TEST(Stats, BasicMoments) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Stats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(Stats, SingleSample) {
  SampleStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyThrows) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_EQ(s.summary(), "n=0");
}

TEST(Stats, AddAfterQueryResorts) {
  SampleStats s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
}

TEST(Stats, SummaryFormat) {
  SampleStats s;
  s.add(1);
  s.add(3);
  const std::string out = s.summary();
  EXPECT_NE(out.find("n=2"), std::string::npos);
  EXPECT_NE(out.find("mean=2"), std::string::npos);
}

TEST(Stats, PercentileClamped) {
  SampleStats s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 5.0);
}

}  // namespace
}  // namespace adgc
