// Integration tests for the real-socket transport: two (or three)
// TcpTransport instances in one test process, talking over localhost TCP.
// Everything here runs against kernel sockets — no simulated network.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/net/tcp_transport.h"

namespace adgc {
namespace {

using namespace std::chrono_literals;

/// Thread-safe mailbox collecting everything a transport delivers.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Envelope> got;
  std::vector<std::pair<ProcessId, Incarnation>> restarts;

  void deliver(Envelope&& env) {
    std::lock_guard<std::mutex> lk(mu);
    got.push_back(std::move(env));
    cv.notify_all();
  }
  void restart(ProcessId peer, Incarnation inc) {
    std::lock_guard<std::mutex> lk(mu);
    restarts.emplace_back(peer, inc);
    cv.notify_all();
  }
  /// Waits until `pred` holds (under the lock) or the deadline passes.
  template <typename Pred>
  bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, pred);
  }
};

Envelope make_env(ProcessId src, ProcessId dst, std::uint64_t call_id,
                  Incarnation src_inc = 0,
                  Incarnation dst_inc = kUnknownIncarnation) {
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.src_inc = src_inc;
  env.dst_inc = dst_inc;
  env.bytes = encode_message(MessagePayload{ReplyMsg{make_ref_id(dst, 1), 1, call_id}});
  return env;
}

std::uint64_t call_id_of(const Envelope& env) {
  return std::get<ReplyMsg>(decode_message(env.bytes)).call_id;
}

struct Node {
  Metrics metrics;
  Mailbox mail;
  std::unique_ptr<TcpTransport> tp;

  void open(ProcessId self, Incarnation inc, std::map<ProcessId, PeerAddr> peers,
            std::size_t queue_limit = 512) {
    TcpTransport::Options o;
    o.self = self;
    o.incarnation = inc;
    o.listen_port = 0;
    o.peers = std::move(peers);
    o.peer_queue_limit = queue_limit;
    o.reconnect_base_us = 10'000;
    o.reconnect_cap_us = 100'000;
    o.seed = 42 + self;
    tp = std::make_unique<TcpTransport>(o, metrics);
    tp->set_deliver([this](Envelope&& env) { mail.deliver(std::move(env)); });
    tp->set_peer_restart(
        [this](ProcessId peer, Incarnation inc2) { mail.restart(peer, inc2); });
    tp->start();
  }
};

PeerAddr local(std::uint16_t port) { return PeerAddr{"127.0.0.1", port}; }

TEST(ParsePeerAddr, AcceptsHostPortRejectsJunk) {
  const PeerAddr a = parse_peer_addr("10.1.2.3:9000");
  EXPECT_EQ(a.host, "10.1.2.3");
  EXPECT_EQ(a.port, 9000);
  EXPECT_THROW(parse_peer_addr("nocolon"), std::invalid_argument);
  EXPECT_THROW(parse_peer_addr("host:"), std::invalid_argument);
  EXPECT_THROW(parse_peer_addr(":123"), std::invalid_argument);
  EXPECT_THROW(parse_peer_addr("host:notaport"), std::invalid_argument);
  EXPECT_THROW(parse_peer_addr("host:99999"), std::invalid_argument);
}

/// Grabs a kernel-assigned free port by probing with a short-lived listener.
std::uint16_t reserve_port() {
  Metrics m;
  TcpTransport::Options o;
  o.self = 99;
  TcpTransport probe(o, m);
  probe.start();
  const std::uint16_t port = probe.port();
  probe.stop(0);
  return port;
}

void open_pinned(Node& n, ProcessId self, std::uint16_t port,
                 std::map<ProcessId, PeerAddr> peers, Incarnation inc = 0,
                 std::size_t queue_limit = 512) {
  TcpTransport::Options o;
  o.self = self;
  o.incarnation = inc;
  o.listen_port = port;
  o.peers = std::move(peers);
  o.peer_queue_limit = queue_limit;
  o.reconnect_base_us = 10'000;
  o.reconnect_cap_us = 100'000;
  o.seed = 42 + self;
  n.tp = std::make_unique<TcpTransport>(o, n.metrics);
  n.tp->set_deliver([&n](Envelope&& env) { n.mail.deliver(std::move(env)); });
  n.tp->set_peer_restart(
      [&n](ProcessId peer, Incarnation i) { n.mail.restart(peer, i); });
  n.tp->start();
}

TEST(TcpTransport, RoundTripBothDirections) {
  const std::uint16_t pa = reserve_port(), pb = reserve_port();
  Node a, b;
  open_pinned(a, 0, pa, {{1, local(pb)}});
  open_pinned(b, 1, pb, {{0, local(pa)}});

  a.tp->send(make_env(0, 1, 111));
  ASSERT_TRUE(b.mail.wait_for([&] { return b.mail.got.size() >= 1; }));
  EXPECT_EQ(call_id_of(b.mail.got[0]), 111u);
  EXPECT_EQ(b.mail.got[0].src, 0u);

  b.tp->send(make_env(1, 0, 222));
  ASSERT_TRUE(a.mail.wait_for([&] { return a.mail.got.size() >= 1; }));
  EXPECT_EQ(call_id_of(a.mail.got[0]), 222u);

  // Hellos flowed in both directions; incarnations learned.
  EXPECT_EQ(a.tp->last_known_incarnation(1), 0u);
  EXPECT_EQ(b.tp->last_known_incarnation(0), 0u);
  EXPECT_GE(a.metrics.tcp_hello_received.get() + b.metrics.tcp_hello_received.get(), 2u);
}

TEST(TcpTransport, QueuesUntilPeerComesUpThenFlushes) {
  // Destination not listening yet: sends must queue, survive the failed
  // connection attempts, and flush once the peer appears.
  const std::uint16_t pa = reserve_port(), pb = reserve_port();

  Node a;
  open_pinned(a, 0, pa, {{1, local(pb)}});
  for (std::uint64_t i = 0; i < 5; ++i) a.tp->send(make_env(0, 1, 1000 + i));
  std::this_thread::sleep_for(100ms);  // let a few connect attempts fail

  Node late;
  open_pinned(late, 1, pb, {{0, local(pa)}});

  ASSERT_TRUE(late.mail.wait_for([&] { return late.mail.got.size() >= 5; }, 10'000ms));
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(call_id_of(late.mail.got[i]), 1000 + i);  // FIFO preserved
  }
  EXPECT_GE(a.metrics.tcp_reconnect_backoffs.get(), 1u);
}

TEST(TcpTransport, ShedsCdmsFirstUnderBackpressureNeverCritical) {
  // No listener at the far end: everything queues. With a tiny queue bound,
  // CDMs past the bound are shed, NSS past twice the bound, and critical
  // traffic (replies) is kept regardless.
  const std::uint16_t dead_port = reserve_port();
  Node a;
  a.open(0, 0, {{1, local(dead_port)}}, /*queue_limit=*/4);

  auto send_kind = [&](MessagePayload msg, int n) {
    for (int i = 0; i < n; ++i) {
      Envelope env;
      env.src = 0;
      env.dst = 1;
      env.dst_inc = kUnknownIncarnation;
      env.bytes = encode_message(msg);
      a.tp->send(env);
    }
  };
  send_kind(MessagePayload{CdmMsg{}}, 20);
  send_kind(MessagePayload{NewSetStubsMsg{}}, 20);
  send_kind(MessagePayload{ReplyMsg{}}, 50);

  // Give the IO thread time to ingest the inbox.
  std::this_thread::sleep_for(200ms);
  EXPECT_GE(a.metrics.cdms_shed.get(), 1u);
  EXPECT_GE(a.metrics.new_set_stubs_shed.get(), 1u);
  a.tp->stop(0);
}

TEST(TcpTransport, HelloIncarnationBumpFiresPeerRestart) {
  Node a;
  a.open(0, 0, {});
  const std::uint16_t pa = a.tp->port();

  Metrics m1;
  Mailbox mb1;
  {
    TcpTransport::Options o;
    o.self = 1;
    o.incarnation = 0;
    o.peers = {{0, local(pa)}};
    o.seed = 5;
    TcpTransport first_life(o, m1);
    first_life.start();
    first_life.send(make_env(1, 0, 1, /*src_inc=*/0));
    ASSERT_TRUE(a.mail.wait_for([&] { return a.mail.got.size() >= 1; }));
    EXPECT_EQ(a.tp->last_known_incarnation(1), 0u);
    first_life.stop(0);
  }
  // Same peer id reappears under a higher incarnation → restart callback.
  {
    TcpTransport::Options o;
    o.self = 1;
    o.incarnation = 3;
    o.peers = {{0, local(pa)}};
    o.seed = 6;
    TcpTransport second_life(o, m1);
    second_life.start();
    second_life.send(make_env(1, 0, 2, /*src_inc=*/3));
    ASSERT_TRUE(a.mail.wait_for([&] {
      return !a.mail.restarts.empty();
    }));
    EXPECT_EQ(a.mail.restarts[0].first, 1u);
    EXPECT_EQ(a.mail.restarts[0].second, 3u);
    EXPECT_EQ(a.tp->last_known_incarnation(1), 3u);
    second_life.stop(0);
  }
}

TEST(TcpTransport, GarbageOnTheWireIsRejectedNotDelivered) {
  // A rogue client pushing non-frame bytes must be disconnected after the
  // reject counter bumps; real peers are unaffected.
  Node a;
  a.open(0, 0, {});
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(a.tp->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char junk[] = "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, 0), 0);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (a.metrics.tcp_frames_rejected.get() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(a.metrics.tcp_frames_rejected.get(), 1u);
  EXPECT_TRUE(a.mail.got.empty());
  ::close(fd);
}

TEST(TcpTransport, ThreeNodeAllToAll) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port(), p2 = reserve_port();
  const std::map<ProcessId, PeerAddr> all = {
      {0, local(p0)}, {1, local(p1)}, {2, local(p2)}};
  Node n0, n1, n2;
  open_pinned(n0, 0, p0, all);
  open_pinned(n1, 1, p1, all);
  open_pinned(n2, 2, p2, all);

  Node* nodes[3] = {&n0, &n1, &n2};
  for (ProcessId s = 0; s < 3; ++s) {
    for (ProcessId d = 0; d < 3; ++d) {
      if (s != d) nodes[s]->tp->send(make_env(s, d, 100 * s + d));
    }
  }
  for (ProcessId d = 0; d < 3; ++d) {
    ASSERT_TRUE(nodes[d]->mail.wait_for([&] { return nodes[d]->mail.got.size() >= 2; }))
        << "node " << d << " got " << nodes[d]->mail.got.size();
  }
}

}  // namespace
}  // namespace adgc
