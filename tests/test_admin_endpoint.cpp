// Admin endpoint integration tests.
//
// The in-process half starts NodeRuntimes with the admin HTTP server on and
// scrapes /metrics, /healthz and /tracez through real sockets. The
// out-of-process half forks the actual adgc_node binary (path injected by
// CMake as ADGC_NODE_BIN), reads its ADMIN/STATS status lines, curls the
// live endpoint and SIGTERMs it — the closest thing to production that can
// run inside ctest.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/admin_http.h"
#include "src/obs/prom.h"
#include "src/rt/node_runtime.h"

namespace adgc {
namespace {

using namespace std::chrono_literals;

RuntimeConfig fast_cfg(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.proc.lgc_period_us = 20'000;
  cfg.proc.snapshot_period_us = 40'000;
  cfg.proc.dcda_scan_period_us = 60'000;
  return cfg;
}

std::uint16_t reserve_port() {
  Metrics m;
  TcpTransport::Options o;
  o.self = 99;
  TcpTransport probe(o, m);
  probe.start();
  const std::uint16_t port = probe.port();
  probe.stop(0);
  return port;
}

TEST(AdminEndpoint, ServesMetricsHealthAndTrace) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, {"127.0.0.1", p0}},
                                               {1, {"127.0.0.1", p1}}};
  NodeRuntime::Options o0;
  o0.pid = 0;
  o0.cfg = fast_cfg(1);
  o0.listen = "127.0.0.1:" + std::to_string(p0);
  o0.peers = peers;
  o0.admin_enabled = true;
  NodeRuntime::Options o1 = o0;
  o1.pid = 1;
  o1.cfg = fast_cfg(2);
  o1.listen = "127.0.0.1:" + std::to_string(p1);

  NodeRuntime n0(std::move(o0)), n1(std::move(o1));
  n0.start();
  n1.start();
  const std::uint16_t admin = n0.admin_port();
  ASSERT_GT(admin, 0) << "admin endpoint did not bind";

  // Generate cross-node traffic so the RMI counters and histograms move.
  ObjectSeq target = kNoObject;
  n1.post_sync([&](Process& p) { target = p.create_object(); });
  ExportedRef exported;
  n1.post_sync([&](Process& p) { exported = p.export_own_object(target, 0); });
  n0.post_sync([&](Process& p) {
    const ObjectSeq holder = p.create_object();
    p.add_root(holder);
    const RefId via = p.install_ref(holder, exported);
    p.invoke(holder, via, InvokeEffect::kTouch);
  });
  std::this_thread::sleep_for(400ms);

  const auto metrics = obs::http_get("127.0.0.1", admin, "/metrics");
  ASSERT_TRUE(metrics.has_value()) << "/metrics did not answer 200";
  std::map<std::string, double> samples;
  std::string err;
  ASSERT_TRUE(obs::parse_prometheus(*metrics, &samples, &err)) << err;
  EXPECT_GT(samples.at("adgc_messages_sent_total"), 0.0);
  EXPECT_GT(samples.at("adgc_tcp_frames_sent_total"), 0.0);
  EXPECT_GT(samples.at("adgc_snapshots_taken_total"), 0.0);
  EXPECT_GT(samples.at("adgc_rmi_rtt_us_count"), 0.0);
  int histograms = 0;
  for (const char* h : {"adgc_rmi_rtt_us_count", "adgc_lgc_pause_us_count",
                        "adgc_snapshot_capture_us_count",
                        "adgc_detection_lifetime_us_count",
                        "adgc_batch_flush_msgs_count", "adgc_tcp_writeq_depth_count"}) {
    if (samples.contains(h)) ++histograms;
  }
  EXPECT_GE(histograms, 5);

  const auto health = obs::http_get("127.0.0.1", admin, "/healthz");
  ASSERT_TRUE(health.has_value()) << "/healthz did not answer 200";
  EXPECT_NE(health->find("node P0"), std::string::npos) << *health;

  const auto trace = obs::http_get("127.0.0.1", admin, "/tracez");
  ASSERT_TRUE(trace.has_value()) << "/tracez did not answer 200";
  EXPECT_NE(trace->find("snapshot"), std::string::npos) << *trace;

  // Unknown targets are a 404 (http_get folds non-200 to nullopt).
  EXPECT_FALSE(obs::http_get("127.0.0.1", admin, "/nope").has_value());

  // The ring off (capacity 0) keeps /tracez serving, with an explanation.
  NodeRuntime::Options o2;
  o2.pid = 7;
  o2.cfg = fast_cfg(3);
  o2.cfg.proc.trace_ring_capacity = 0;
  o2.listen = "127.0.0.1:0";
  o2.admin_enabled = true;
  NodeRuntime n2(std::move(o2));
  n2.start();
  const auto empty_trace = obs::http_get("127.0.0.1", n2.admin_port(), "/tracez");
  ASSERT_TRUE(empty_trace.has_value());
  EXPECT_NE(empty_trace->find("disabled"), std::string::npos);
  n2.stop();

  n0.stop();
  n1.stop();
}

#ifdef ADGC_NODE_BIN

/// One forked adgc_node with its stdout on a pipe.
struct NodeProc {
  pid_t pid = -1;
  int out_fd = -1;
  std::string buf;

  bool spawn(const std::vector<std::string>& args) {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    out_fd = fds[0];
    return true;
  }

  /// Reads stdout until a line starting with `prefix` appears; returns it.
  std::string wait_for_line(const std::string& prefix,
                            std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      char chunk[4096];
      const ssize_t n = ::read(out_fd, chunk, sizeof(chunk));
      if (n > 0) buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      while (pos < buf.size()) {
        std::size_t nl = buf.find('\n', pos);
        if (nl == std::string::npos) break;
        const std::string line = buf.substr(pos, nl - pos);
        if (line.rfind(prefix, 0) == 0) return line;
        pos = nl + 1;
      }
      buf.erase(0, pos);
      std::this_thread::sleep_for(20ms);
    }
    return "";
  }

  int terminate() {
    if (pid < 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (out_fd >= 0) ::close(out_fd);
    pid = -1;
    return status;
  }

  ~NodeProc() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    if (out_fd >= 0) ::close(out_fd);
  }
};

TEST(AdminEndpoint, RealNodeBinaryServesScrapes) {
  NodeProc node;
  ASSERT_TRUE(node.spawn({ADGC_NODE_BIN, "--id=0", "--listen=127.0.0.1:0",
                          "--admin-port=0", "--stats-interval-ms=100",
                          "--status-every-ms=100"}));

  const std::string admin_line = node.wait_for_line("ADMIN ", 10'000ms);
  ASSERT_FALSE(admin_line.empty()) << "node never announced its admin port";
  const std::size_t eq = admin_line.rfind("port=");
  ASSERT_NE(eq, std::string::npos) << admin_line;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(admin_line.c_str() + eq + 5, nullptr, 10));
  ASSERT_GT(port, 0);

  const auto metrics = obs::http_get("127.0.0.1", port, "/metrics");
  ASSERT_TRUE(metrics.has_value()) << "/metrics scrape of the real node failed";
  std::map<std::string, double> samples;
  std::string err;
  ASSERT_TRUE(obs::parse_prometheus(*metrics, &samples, &err)) << err;
  EXPECT_TRUE(samples.contains("adgc_lgc_runs_total"));
  EXPECT_TRUE(samples.contains("adgc_rmi_rtt_us_count"));

  const auto health = obs::http_get("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(health.has_value()) << "/healthz scrape of the real node failed";

  // --stats-interval-ms must produce the one-line STATS log.
  const std::string stats_line = node.wait_for_line("STATS ", 10'000ms);
  ASSERT_FALSE(stats_line.empty()) << "node never printed a STATS line";
  EXPECT_NE(stats_line.find("rmi_p99_us="), std::string::npos) << stats_line;

  const int status = node.terminate();
  EXPECT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0) << "node did not drain cleanly on SIGTERM";
}

#endif  // ADGC_NODE_BIN

}  // namespace
}  // namespace adgc
