// Asynchronous snapshot pipeline: deferred publication in the deterministic
// simulator, single-in-flight coalescing, cancellation by the synchronous
// path and by crash, and background publication on the threaded runtime.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/rt/runtime.h"
#include "src/rt/threaded_runtime.h"
#include "src/sim/harness.h"

namespace adgc {
namespace {

RuntimeConfig pipelined_config(std::uint64_t seed) {
  RuntimeConfig cfg = sim::manual_config(seed);
  cfg.proc.snapshot_pipeline = true;
  cfg.proc.snapshot_pipeline_latency_us = 1'000;
  return cfg;
}

// ---- deterministic simulator ----

TEST(SnapshotPipelineSim, PublishIsDeferredByLatency) {
  Runtime rt(2, pipelined_config(1));
  rt.proc(0).create_object();

  rt.proc(0).request_snapshot();
  EXPECT_TRUE(rt.proc(0).snapshot_in_flight());
  EXPECT_EQ(rt.proc(0).current_summary(), nullptr)
      << "the summary must not be visible before the publish event";

  rt.run_for(2'000);
  EXPECT_FALSE(rt.proc(0).snapshot_in_flight());
  const auto sum = rt.proc(0).current_summary();
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->version, 1u);
}

TEST(SnapshotPipelineSim, DetectorKeepsPreviousSummaryWhileInFlight) {
  Runtime rt(2, pipelined_config(2));
  rt.proc(0).create_object();
  rt.proc(0).take_snapshot();  // synchronous: v1 visible immediately
  const auto v1 = rt.proc(0).current_summary();
  ASSERT_NE(v1, nullptr);

  rt.proc(0).create_object();
  rt.proc(0).request_snapshot();
  EXPECT_EQ(rt.proc(0).current_summary(), v1)
      << "stale view must stay installed until the new one publishes";
  rt.run_for(2'000);
  EXPECT_EQ(rt.proc(0).current_summary()->version, 2u);
}

TEST(SnapshotPipelineSim, BurstCoalescesToOneFollowUp) {
  Runtime rt(2, pipelined_config(3));
  rt.proc(0).create_object();

  rt.proc(0).request_snapshot();       // captures v1, in flight
  rt.proc(0).request_snapshot();       // coalesced
  rt.proc(0).request_snapshot();       // coalesced (still one pending bit)
  const Metrics mid = rt.total_metrics();
  EXPECT_EQ(mid.snapshots_taken.get(), 1u);
  EXPECT_EQ(mid.snapshots_coalesced.get(), 2u);

  // v1 publishes at +latency, the coalesced follow-up re-captures then (v2)
  // and publishes one latency later.
  rt.run_for(10'000);
  const Metrics done = rt.total_metrics();
  EXPECT_EQ(done.snapshots_taken.get(), 2u);
  EXPECT_EQ(done.summarizations.get(), 2u);
  ASSERT_NE(rt.proc(0).current_summary(), nullptr);
  EXPECT_EQ(rt.proc(0).current_summary()->version, 2u);
  EXPECT_FALSE(rt.proc(0).snapshot_in_flight());
}

TEST(SnapshotPipelineSim, SynchronousTakeCancelsInFlightPublish) {
  Runtime rt(2, pipelined_config(4));
  rt.proc(0).create_object();

  rt.proc(0).request_snapshot();  // v1 in flight
  rt.proc(0).take_snapshot();     // v2, published immediately
  ASSERT_NE(rt.proc(0).current_summary(), nullptr);
  EXPECT_EQ(rt.proc(0).current_summary()->version, 2u);

  // The stale v1 publish event must be discarded, not clobber v2.
  rt.run_for(10'000);
  EXPECT_EQ(rt.proc(0).current_summary()->version, 2u);
  EXPECT_EQ(rt.total_metrics().summarizations.get(), 1u)
      << "only the synchronous pass may publish";
  EXPECT_FALSE(rt.proc(0).snapshot_in_flight());
}

TEST(SnapshotPipelineSim, CrashDiscardsInFlightPublish) {
  Runtime rt(2, pipelined_config(5));
  rt.proc(0).create_object();
  rt.proc(0).request_snapshot();
  rt.crash(0);
  rt.run_for(10'000);  // the orphaned publish event must be a no-op
  EXPECT_FALSE(rt.restart(0)) << "no snapshot store: nothing to recover";
  EXPECT_EQ(rt.proc(0).current_summary(), nullptr)
      << "nothing was ever published for the crashed incarnation";
  rt.proc(0).request_snapshot();
  rt.run_for(2'000);
  ASSERT_NE(rt.proc(0).current_summary(), nullptr);
}

TEST(SnapshotPipelineSim, PipelineOffDegradesToSynchronous) {
  RuntimeConfig cfg = sim::manual_config(6);
  cfg.proc.snapshot_pipeline = false;
  Runtime rt(2, cfg);
  rt.proc(0).create_object();
  rt.proc(0).request_snapshot();
  EXPECT_FALSE(rt.proc(0).snapshot_in_flight());
  ASSERT_NE(rt.proc(0).current_summary(), nullptr);
  EXPECT_EQ(rt.proc(0).current_summary()->version, 1u);
}

TEST(SnapshotPipelineSim, TracesAreSeedDeterministic) {
  // With the pipeline on, the full periodic stack (including deferred
  // publishes racing detections) must stay a pure function of (config, seed).
  auto run = [] {
    RuntimeConfig cfg = sim::fast_config(77);
    cfg.proc.snapshot_pipeline = true;
    cfg.proc.snapshot_pipeline_latency_us = 2'500;
    Runtime rt(3, cfg);
    const ObjectId a{0, rt.proc(0).create_object()};
    const ObjectId b{1, rt.proc(1).create_object()};
    const ObjectId c{2, rt.proc(2).create_object()};
    rt.proc(0).add_root(a.seq);
    rt.link(a, b);
    rt.link(b, c);
    rt.link(c, a);
    rt.run_for(400'000);
    rt.proc(0).remove_root(a.seq);
    rt.run_for(2'000'000);
    return rt.trace_events();
  };
  const auto t1 = run();
  const auto t2 = run();
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1.empty());
}

TEST(SnapshotPipelineSim, CollectionCompletesWithPipelineOn) {
  RuntimeConfig cfg = sim::fast_config(8);
  cfg.proc.snapshot_pipeline = true;
  cfg.proc.snapshot_pipeline_latency_us = 3'000;
  Runtime rt(3, cfg);
  const ObjectId a{0, rt.proc(0).create_object()};
  const ObjectId b{1, rt.proc(1).create_object()};
  const ObjectId c{2, rt.proc(2).create_object()};
  rt.proc(0).add_root(a.seq);
  rt.link(a, b);
  rt.link(b, c);
  rt.link(c, a);
  rt.run_for(300'000);
  EXPECT_EQ(sim::global_stats(rt).garbage_objects, 0u);
  rt.proc(0).remove_root(a.seq);
  rt.run_for(3'000'000);
  EXPECT_EQ(sim::global_stats(rt).total_objects, 0u)
      << "stale-view detection must still reclaim the cycle";
}

// ---- threaded runtime: real background worker ----

RuntimeConfig threaded_pipelined_config(std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  // Collectors driven by hand; only the pipeline worker runs concurrently.
  cfg.proc.periodic_collectors_enabled = false;
  cfg.proc.snapshot_pipeline = true;
  return cfg;
}

TEST(SnapshotPipelineThreaded, PublishesOffTheActorThread) {
  ThreadedRuntime rt(2, threaded_pipelined_config(10));
  rt.post_sync(0, [](Process& p) {
    p.create_object();
    p.request_snapshot();
  });
  // Poll through the actor until the background pass publishes.
  std::shared_ptr<const SummarizedGraph> sum;
  for (int i = 0; i < 200 && !sum; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rt.post_sync(0, [&](Process& p) { sum = p.current_summary(); });
  }
  ASSERT_NE(sum, nullptr) << "background pipeline never published";
  EXPECT_EQ(sum->version, 1u);
  bool in_flight = true;
  rt.post_sync(0, [&](Process& p) { in_flight = p.snapshot_in_flight(); });
  EXPECT_FALSE(in_flight);
  EXPECT_EQ(rt.total_metrics().summarizations.get(), 1u);
  rt.shutdown();
}

TEST(SnapshotPipelineThreaded, BurstCoalesces) {
  ThreadedRuntime rt(2, threaded_pipelined_config(11));
  rt.post_sync(0, [](Process& p) {
    p.create_object();
    for (int i = 0; i < 5; ++i) p.request_snapshot();
  });
  std::uint64_t version = 0;
  for (int i = 0; i < 200 && version < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rt.post_sync(0, [&](Process& p) {
      if (auto s = p.current_summary()) version = s->version;
    });
  }
  // One initial capture + one coalesced follow-up, not five passes.
  EXPECT_EQ(version, 2u);
  const Metrics m = rt.total_metrics();
  EXPECT_EQ(m.snapshots_taken.get(), 2u);
  EXPECT_EQ(m.snapshots_coalesced.get(), 4u);
  rt.shutdown();
}

TEST(SnapshotPipelineThreaded, CrashMidFlightIsClean) {
  ThreadedRuntime rt(2, threaded_pipelined_config(12));
  rt.post_sync(0, [](Process& p) {
    for (int i = 0; i < 50; ++i) p.create_object();
    p.request_snapshot();
  });
  // Destroying the Process joins the worker and poisons its completion; the
  // already-queued publish closure must degrade to a no-op.
  rt.crash(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(rt.restart(0)) << "no snapshot store: nothing to recover";
  std::uint64_t heap = 1;
  rt.post_sync(0, [&](Process& p) { heap = p.heap().size(); });
  EXPECT_EQ(heap, 0u) << "cold restart: no snapshot store configured";
  rt.shutdown();
}

TEST(SnapshotPipelineThreaded, SynchronousTakeSupersedesInFlight) {
  ThreadedRuntime rt(2, threaded_pipelined_config(13));
  std::uint64_t version = 0;
  rt.post_sync(0, [&](Process& p) {
    p.create_object();
    p.request_snapshot();  // background pass for v1
    p.take_snapshot();     // waits it out, publishes v2 immediately
    version = p.current_summary()->version;
  });
  EXPECT_EQ(version, 2u);
  // Give any stale completion a chance to land (it must be discarded).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rt.post_sync(0, [&](Process& p) { version = p.current_summary()->version; });
  EXPECT_EQ(version, 2u);
  rt.shutdown();
}

}  // namespace
}  // namespace adgc
