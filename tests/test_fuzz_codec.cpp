// Fuzz-style robustness tests for the wire codec and snapshot
// deserializers: random garbage, random truncations and random single-byte
// corruptions of valid encodings must either decode to *something* or throw
// DecodeError — never crash, hang, or allocate absurdly.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/message.h"
#include "src/snapshot/serializer.h"

namespace adgc {
namespace {

std::vector<MessagePayload> sample_messages() {
  std::vector<MessagePayload> out;
  InvokeMsg inv;
  inv.ref = make_ref_id(1, 2);
  inv.ic = 3;
  inv.target = {2, 4};
  inv.caller = {1, 9};
  inv.effect = InvokeEffect::kStoreArgs;
  inv.args = {{make_ref_id(1, 3), {3, 8}}};
  inv.payload.assign(64, std::byte{7});
  out.emplace_back(inv);

  ReplyMsg rep;
  rep.ref = make_ref_id(4, 1);
  rep.ic = 17;
  out.emplace_back(rep);

  NewSetStubsMsg nss;
  nss.export_seq = 5;
  nss.live = {make_ref_id(0, 1), make_ref_id(0, 2)};
  out.emplace_back(nss);

  AddScionMsg add;
  add.ref = make_ref_id(2, 2);
  add.target_seq = 11;
  add.holder = 6;
  out.emplace_back(add);

  CdmMsg cdm;
  cdm.detection = {1, 2};
  cdm.candidate = make_ref_id(1, 1);
  cdm.via = make_ref_id(2, 2);
  cdm.source = {{make_ref_id(1, 1), 0}, {make_ref_id(3, 3), 1}};
  cdm.target = {{make_ref_id(2, 2), 0}};
  out.emplace_back(cdm);

  BacktraceRequestMsg bt;
  bt.trace_id = 9;
  bt.req_id = 10;
  bt.subject_ref = make_ref_id(0, 5);
  bt.visited = {make_ref_id(0, 5), make_ref_id(1, 6)};
  out.emplace_back(bt);

  GtStatusMsg gs;
  gs.epoch = 2;
  gs.marks_sent = 100;
  out.emplace_back(gs);
  return out;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> bytes(rng.below(200));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.below(256));
    try {
      const MessagePayload m = decode_message(bytes);
      // If it decoded, re-encoding must succeed (the decoder only accepts
      // well-formed content).
      (void)encode_message(m);
    } catch (const DecodeError&) {
      // expected for almost all inputs
    }
  }
}

TEST_P(CodecFuzz, TruncationsOfValidMessages) {
  Rng rng(GetParam() + 1000);
  for (const MessagePayload& msg : sample_messages()) {
    const auto bytes = encode_message(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<std::byte> trunc(bytes.begin(),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_THROW(decode_message(trunc), DecodeError)
          << message_kind(msg) << " cut=" << cut;
    }
  }
}

TEST_P(CodecFuzz, SingleByteCorruptions) {
  Rng rng(GetParam() + 2000);
  for (const MessagePayload& msg : sample_messages()) {
    const auto bytes = encode_message(msg);
    for (int iter = 0; iter < 200; ++iter) {
      auto mutated = bytes;
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<std::byte>(rng.below(256));
      try {
        const MessagePayload m = decode_message(mutated);
        (void)encode_message(m);  // decoded → must be internally consistent
      } catch (const DecodeError&) {
      }
    }
  }
}

TEST_P(CodecFuzz, SnapshotDeserializersSurviveGarbage) {
  Rng rng(GetParam() + 3000);
  NaiveSerializer naive;
  BinarySerializer binary;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::byte> bytes(rng.below(400));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.below(256));
    EXPECT_THROW(binary.deserialize(bytes), DecodeError) << iter;
    try {
      (void)naive.deserialize(bytes);
    } catch (const DecodeError&) {
    }
  }
}

TEST_P(CodecFuzz, SnapshotTruncations) {
  Rng rng(GetParam() + 4000);
  SnapshotData snap;
  snap.pid = 1;
  for (ObjectSeq i = 1; i <= 10; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    if (i > 1) o.local_fields.push_back(i - 1);
    o.payload.assign(8, std::byte{static_cast<unsigned char>(i)});
    snap.objects.push_back(std::move(o));
  }
  snap.stubs.push_back({make_ref_id(1, 1), {2, 2}, 3});
  snap.scions.push_back({make_ref_id(2, 1), 3, 4, 5});

  BinarySerializer binary;
  const auto bytes = binary.serialize(snap);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t cut = 1 + rng.below(bytes.size() - 1);
    std::vector<std::byte> trunc(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(binary.deserialize(trunc), DecodeError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace adgc
