// Unit tests for the observability plane: log-bucketed histograms, the
// bounded trace ring and its binary/Chrome-JSON codecs, the admin HTTP
// request parser, and the Prometheus exposition renderer/parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/metrics.h"
#include "src/obs/admin_http.h"
#include "src/obs/histogram.h"
#include "src/obs/prom.h"
#include "src/obs/trace.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/workload.h"

namespace adgc {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
  // Bucket b holds values of bit width b: [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  // The tail bucket absorbs everything too wide to index.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucket_le(0), 0u);
  EXPECT_EQ(Histogram::bucket_le(1), 1u);
  EXPECT_EQ(Histogram::bucket_le(2), 3u);
  EXPECT_EQ(Histogram::bucket_le(3), 7u);
  EXPECT_EQ(Histogram::bucket_le(Histogram::kBuckets - 1), ~std::uint64_t{0});
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(3), 4u);
  // Every value lands in the bucket whose [lo, le] range contains it.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull, 65'536ull, 1'000'000ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_lo(b));
    EXPECT_LE(v, Histogram::bucket_le(b));
  }
}

TEST(Histogram, RecordCountSum) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(1'000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1'010u);
  EXPECT_EQ(h.bucket(0), 1u);                         // the zero
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 2u);   // both fives
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, QuantileInterpolatesWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(100);   // all in [64, 127]
  for (int i = 0; i < 10; ++i) h.record(10'000);  // tail in [8192, 16383]
  // p50 must land in the bucket holding the bulk.
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);
  // p99+ must land in the tail bucket.
  const std::uint64_t p99 = h.quantile(0.995);
  EXPECT_GE(p99, 8'192u);
  EXPECT_LE(p99, 16'383u);
  EXPECT_EQ(Histogram().quantile(0.5), 0u);  // empty histogram
}

TEST(Histogram, MergeAndCopy) {
  Histogram a, b;
  a.record(3);
  b.record(3);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 306u);
  EXPECT_EQ(a.bucket(Histogram::bucket_of(3)), 2u);
  const Histogram copy = a;
  a.record(1);
  EXPECT_EQ(copy.count(), 3u);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Metrics, HistogramsRideThroughMergeAndReport) {
  Metrics m;
  m.rmi_rtt_us.record(250);
  m.rmi_rtt_us.record(800);
  Metrics agg;
  agg.merge(m);
  EXPECT_EQ(agg.rmi_rtt_us.count(), 2u);
  const std::string rep = agg.report();
  EXPECT_NE(rep.find("rmi_rtt_us"), std::string::npos);
  // Empty histograms stay out of the human-readable report.
  EXPECT_EQ(rep.find("lgc_pause_us"), std::string::npos);
  agg.reset();
  EXPECT_EQ(agg.rmi_rtt_us.count(), 0u);
}

// --------------------------------------------------------------- trace ring

obs::Event ev(SimTime ts, ProcessId proc, obs::EventType t, std::uint64_t a64 = 0) {
  obs::Event e;
  e.ts = ts;
  e.proc = proc;
  e.type = t;
  e.a64 = a64;
  return e;
}

TEST(TraceRing, RecordsUpToCapacityThenWrapsOldestFirst) {
  obs::TraceRing ring(4);
  EXPECT_TRUE(ring.enabled());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(ev(i, 0, obs::EventType::kLgcRun, i));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);
  const std::vector<obs::Event> evs = ring.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first: timestamps 6, 7, 8, 9.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].ts, 6 + i);
    EXPECT_EQ(evs[i].a64, 6 + i);
  }
}

TEST(TraceRing, CapacityZeroDisablesRecording) {
  obs::TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.record(ev(1, 0, obs::EventType::kCrash));
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  obs::emit(nullptr, ev(1, 0, obs::EventType::kCrash));  // null-safe, no crash
}

TEST(Trace, BinaryRoundTrip) {
  std::vector<obs::Event> in;
  obs::Event full;
  full.ts = 123'456'789;
  full.proc = 7;
  full.type = obs::EventType::kDetectionAborted;
  full.arg = static_cast<std::uint8_t>(obs::AbortReason::kViaIc);
  full.a32 = 42;
  full.a64 = ~std::uint64_t{0};
  full.b64 = 0xdeadbeefcafe;
  in.push_back(full);
  in.push_back(ev(1, 0, obs::EventType::kSnapshot, 3));
  const std::vector<std::byte> bytes = obs::serialize_trace(in);
  const std::vector<obs::Event> out = obs::parse_trace(bytes);
  EXPECT_EQ(in, out);
  EXPECT_TRUE(obs::parse_trace(obs::serialize_trace({})).empty());
}

TEST(Trace, ParseRejectsMalformedInput) {
  const std::vector<obs::Event> one = {ev(5, 1, obs::EventType::kCrash)};
  std::vector<std::byte> bytes = obs::serialize_trace(one);
  // Truncated payload.
  std::vector<std::byte> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW(obs::parse_trace(truncated), DecodeError);
  // Corrupt magic.
  std::vector<std::byte> bad_magic = bytes;
  bad_magic[0] = std::byte{0xff};
  EXPECT_THROW(obs::parse_trace(bad_magic), DecodeError);
  // Count larger than the payload.
  std::vector<std::byte> bad_count = bytes;
  bad_count[6] = std::byte{9};
  EXPECT_THROW(obs::parse_trace(bad_count), DecodeError);
  EXPECT_THROW(obs::parse_trace({}), DecodeError);
}

TEST(Trace, ChromeJsonRendersDetectionSpans) {
  std::vector<obs::Event> evs;
  obs::Event start = ev(10, 0, obs::EventType::kDetectionStart, 1);
  start.a32 = 0;
  start.b64 = 99;
  evs.push_back(start);
  obs::Event hop = ev(20, 1, obs::EventType::kCdmHop, 1);
  hop.a32 = 0;
  hop.b64 = 1;
  evs.push_back(hop);
  obs::Event matched = ev(30, 0, obs::EventType::kDetectionMatched, 1);
  matched.a32 = 0;
  evs.push_back(matched);
  const std::string json = obs::to_chrome_json(evs);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Async begin/end pair keyed by the detection, plus the hop instant.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"d0:1\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"matched\""), std::string::npos);
  // Track metadata for both processes.
  EXPECT_NE(json.find("\"name\":\"P0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"P1\""), std::string::npos);
}

TEST(Trace, SimTraceIsDeterministic) {
  const auto run = [] {
    RuntimeConfig cfg = sim::fast_config(17);
    Runtime rt(3, cfg);
    sim::WorkloadParams wp;
    sim::RandomWorkload workload(rt, wp, 41);
    for (int round = 0; round < 4; ++round) {
      workload.steps(15);
      rt.run_for(20'000);
    }
    return rt.trace_events();
  };
  const std::vector<obs::Event> a = run();
  const std::vector<obs::Event> b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------------- http parser

TEST(HttpParser, ParsesSimpleGet) {
  obs::HttpRequest req;
  std::size_t consumed = 0;
  const std::string raw = "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\nleftover";
  EXPECT_EQ(obs::parse_http_request(raw, &req, &consumed), obs::HttpParse::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(req.minor_version, 0);
  EXPECT_EQ(raw.substr(consumed), "leftover");
}

TEST(HttpParser, AcceptsBareLfAndHttp11) {
  obs::HttpRequest req;
  std::size_t consumed = 0;
  EXPECT_EQ(obs::parse_http_request("GET /healthz HTTP/1.1\n\n", &req, &consumed),
            obs::HttpParse::kOk);
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.minor_version, 1);
}

TEST(HttpParser, NeedsMoreUntilBlankLine) {
  obs::HttpRequest req;
  std::size_t consumed = 0;
  EXPECT_EQ(obs::parse_http_request("GET /metrics HTTP/1.0\r\nHost:", &req, &consumed),
            obs::HttpParse::kNeedMore);
}

TEST(HttpParser, RejectsGarbageAndOversizedInput) {
  obs::HttpRequest req;
  std::size_t consumed = 0;
  EXPECT_EQ(obs::parse_http_request("NOT AN HTTP REQUEST\r\n\r\n", &req, &consumed),
            obs::HttpParse::kBad);
  const std::string long_target(obs::kMaxTargetBytes + 1, 'a');
  EXPECT_EQ(obs::parse_http_request("GET /" + long_target + " HTTP/1.0\r\n\r\n",
                                    &req, &consumed),
            obs::HttpParse::kBad);
  const std::string oversized(obs::kMaxRequestBytes + 1, 'x');
  EXPECT_EQ(obs::parse_http_request(oversized, &req, &consumed),
            obs::HttpParse::kBad);
}

TEST(HttpResponse, CarriesStatusTypeAndLength) {
  const std::string resp = obs::http_response(200, "text/plain", "hello\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(resp.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\nhello\n"), std::string::npos);
}

// --------------------------------------------------------------- prometheus

TEST(Prometheus, RenderIsParseableAndComplete) {
  Metrics m;
  m.cdms_sent.add(12);
  m.rmi_rtt_us.record(100);
  m.rmi_rtt_us.record(100'000);
  const std::string text = obs::render_prometheus(m);
  std::map<std::string, double> samples;
  std::string err;
  ASSERT_TRUE(obs::parse_prometheus(text, &samples, &err)) << err;
  EXPECT_EQ(samples.at("adgc_cdms_sent_total"), 12.0);
  // Zero-valued counters are still exported for scrape consumers.
  EXPECT_EQ(samples.at("adgc_messages_lost_total"), 0.0);
  // The table-size gauge carries no _total suffix.
  EXPECT_TRUE(samples.contains("adgc_peer_health_slots"));
  EXPECT_FALSE(samples.contains("adgc_peer_health_slots_total"));
  // Histogram triplet with cumulative buckets.
  EXPECT_EQ(samples.at("adgc_rmi_rtt_us_count"), 2.0);
  EXPECT_EQ(samples.at("adgc_rmi_rtt_us_sum"), 100'100.0);
  EXPECT_EQ(samples.at("adgc_rmi_rtt_us_bucket{le=\"+Inf\"}"), 2.0);
  EXPECT_EQ(samples.at("adgc_rmi_rtt_us_bucket{le=\"127\"}"), 1.0);
  // All histograms export their series even when empty.
  for (const char* h : {"adgc_rmi_rtt_us_count", "adgc_lgc_pause_us_count",
                        "adgc_snapshot_capture_us_count",
                        "adgc_snapshot_persist_us_count",
                        "adgc_snapshot_summarize_us_count",
                        "adgc_detection_lifetime_us_count",
                        "adgc_batch_flush_msgs_count", "adgc_tcp_writeq_depth_count"}) {
    EXPECT_TRUE(samples.contains(h)) << h;
  }
}

TEST(Prometheus, RenderOrderIsDeterministic) {
  Metrics a, b;
  a.cdms_sent.add(3);
  b.cdms_sent.add(3);
  EXPECT_EQ(obs::render_prometheus(a), obs::render_prometheus(b));
  // Counter names arrive in sorted order from for_each_counter.
  std::vector<std::string> names;
  a.for_each_counter([&](const char* name, std::uint64_t) { names.push_back(name); });
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  names.clear();
  a.for_each_histogram([&](const char* name, const Histogram&) {
    names.push_back(name);
  });
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Prometheus, ParserRejectsMalformedLines) {
  std::map<std::string, double> samples;
  std::string err;
  EXPECT_FALSE(obs::parse_prometheus("metric_without_value\n", &samples, &err));
  EXPECT_FALSE(obs::parse_prometheus("name{unterminated 1\n", &samples, &err));
  EXPECT_FALSE(obs::parse_prometheus("x 1.2.3\n", &samples, &err));
  EXPECT_FALSE(obs::parse_prometheus("# BOGUS comment\n", &samples, &err));
  EXPECT_TRUE(obs::parse_prometheus("# TYPE x counter\nx 4\n", &samples, &err));
  EXPECT_EQ(samples.at("x"), 4.0);
}

}  // namespace
}  // namespace adgc
