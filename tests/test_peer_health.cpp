// Unit tests for the per-peer health tracker and the jittered exponential
// backoff underneath the adaptive-degradation layer.
#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/net/peer_health.h"

namespace adgc {
namespace {

class PeerHealthTest : public ::testing::Test {
 protected:
  ProcessConfig cfg;
  Metrics metrics;
  PeerHealthTracker tracker{cfg, metrics};
};

TEST_F(PeerHealthTest, FreshPeerIsHealthy) {
  EXPECT_FALSE(tracker.suspected(1, 1'000'000));
  EXPECT_EQ(tracker.outstanding(1), 0u);
  EXPECT_EQ(tracker.consecutive_failures(1), 0u);
  EXPECT_DOUBLE_EQ(tracker.srtt_us(1), 0.0);
}

TEST_F(PeerHealthTest, EwmaFoldsRttSamples) {
  tracker.on_response(1, 1000, 10);
  EXPECT_DOUBLE_EQ(tracker.srtt_us(1), 1000.0);  // first sample taken whole
  tracker.on_response(1, 2000, 20);
  // alpha = 0.2: 0.2*2000 + 0.8*1000 = 1200.
  EXPECT_DOUBLE_EQ(tracker.srtt_us(1), 1200.0);
}

TEST_F(PeerHealthTest, ConsecutiveTimeoutsSuspect) {
  for (std::uint32_t i = 0; i < cfg.suspect_after_failures - 1; ++i) {
    tracker.on_timeout(1, 100 * (i + 1));
    EXPECT_FALSE(tracker.suspected(1, 100 * (i + 1)));
  }
  tracker.on_timeout(1, 1000);
  EXPECT_TRUE(tracker.suspected(1, 1000));
  EXPECT_EQ(metrics.peer_suspect_transitions.get(), 1u);
  // The transition counter counts edges, not verdicts.
  EXPECT_TRUE(tracker.suspected(1, 1100));
  EXPECT_EQ(metrics.peer_suspect_transitions.get(), 1u);
}

TEST_F(PeerHealthTest, AnySignOfLifeClearsSuspicion) {
  for (int i = 0; i < 5; ++i) tracker.on_timeout(1, 100);
  ASSERT_TRUE(tracker.suspected(1, 500));
  tracker.on_heard(1, 600);
  EXPECT_FALSE(tracker.suspected(1, 700));
  EXPECT_EQ(metrics.peer_suspect_transitions.get(), 1u);
  // Suspecting again is a new transition.
  for (int i = 0; i < 5; ++i) tracker.on_timeout(1, 800);
  EXPECT_TRUE(tracker.suspected(1, 900));
  EXPECT_EQ(metrics.peer_suspect_transitions.get(), 2u);
}

TEST_F(PeerHealthTest, AccrualSuspectsSilentPeerOnlyWhileContacting) {
  // Establish an RTT baseline and a last-heard time.
  tracker.on_response(1, 1000, 1000);
  // Idle peer: no outstanding traffic, arbitrarily long silence is fine.
  EXPECT_FALSE(tracker.suspected(1, 1'000'000'000));
  // Outstanding traffic + silence beyond phi * max(srtt, floor) suspects.
  tracker.on_send(1, 1000);
  const double srtt = std::max(tracker.srtt_us(1),
                               static_cast<double>(cfg.suspect_rtt_floor_us));
  const SimTime limit = 1000 + static_cast<SimTime>(cfg.suspect_phi * srtt);
  EXPECT_FALSE(tracker.suspected(1, limit));     // at the bound: not yet
  EXPECT_TRUE(tracker.suspected(1, limit + 1));  // past it: suspected
}

TEST_F(PeerHealthTest, NeverHeardPeerSuspectedOnlyByTimeouts) {
  // A peer that was down from the start: we send and send but it never
  // answers. Phi accrual stays off — there is no observed RTT to accrue
  // against, and suspecting every cold peer on a clock delays collection —
  // so suspicion comes from the explicit retry-timeout half instead.
  for (int i = 0; i < 1000; ++i) tracker.on_send(1, 5000);
  EXPECT_EQ(tracker.outstanding(1), 1000u);
  EXPECT_FALSE(tracker.suspected(1, 1'000'000'000));
  EXPECT_DOUBLE_EQ(tracker.phi(1, 1'000'000'000), 0.0);
  for (std::uint32_t i = 0; i < cfg.suspect_after_failures; ++i) {
    tracker.on_timeout(1, 6000 + i);
  }
  EXPECT_TRUE(tracker.suspected(1, 7000));
}

TEST_F(PeerHealthTest, IdleGapDoesNotCountAsSilence) {
  // Heard long ago, then idle (nothing outstanding), then we resume
  // sending at a wall-clock time far past last_heard. Silence must accrue
  // from the resume, not across the idle gap — otherwise every first send
  // after an idle period instantly suspects the peer under wall clocks.
  tracker.on_response(1, 1000, 1000);
  tracker.on_send(1, 500'000'000);  // resume after ~500s idle
  EXPECT_FALSE(tracker.suspected(1, 500'000'001));
  const double srtt = std::max(tracker.srtt_us(1),
                               static_cast<double>(cfg.suspect_rtt_floor_us));
  const SimTime limit = 500'000'000 + static_cast<SimTime>(cfg.suspect_phi * srtt);
  EXPECT_FALSE(tracker.suspected(1, limit));
  EXPECT_TRUE(tracker.suspected(1, limit + 1));
}

TEST_F(PeerHealthTest, OutstandingWindowResetsOnLife) {
  for (int i = 0; i < 10; ++i) tracker.on_send(1, 10);
  EXPECT_EQ(tracker.outstanding(1), 10u);
  tracker.on_heard(1, 50);
  EXPECT_EQ(tracker.outstanding(1), 0u);
  // The next send opens a fresh accrual window at its own timestamp.
  tracker.on_send(1, 60);
  EXPECT_DOUBLE_EQ(tracker.phi(1, 60), 0.0);
}

TEST_F(PeerHealthTest, PhiDiagnostics) {
  EXPECT_DOUBLE_EQ(tracker.phi(1, 100), 0.0);  // never contacted
  tracker.on_response(1, 4000, 1000);          // srtt 4000 > floor 2000
  tracker.on_send(1, 1000);
  EXPECT_DOUBLE_EQ(tracker.phi(1, 9000), 2.0);  // 8000us silence / 4000us srtt
}

TEST(BackoffDelayTest, GrowsExponentiallyWithinJitterBounds) {
  Rng rng(7);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const SimTime d = SimTime{1000} << attempt;
    for (int i = 0; i < 200; ++i) {
      const SimTime delay = backoff_delay(1000, 1'000'000, attempt, rng);
      EXPECT_GE(delay, d / 2) << "attempt " << attempt;
      EXPECT_LT(delay, d) << "attempt " << attempt;
    }
  }
}

TEST(BackoffDelayTest, CapsAtConfiguredCeiling) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const SimTime delay = backoff_delay(1000, 8000, 30, rng);
    EXPECT_GE(delay, 4000u);
    EXPECT_LT(delay, 8000u);
  }
}

TEST(BackoffDelayTest, DeterministicForSameRngState) {
  Rng a(99), b(99);
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(backoff_delay(500, 100'000, attempt, a),
              backoff_delay(500, 100'000, attempt, b));
  }
}

TEST(BackoffDelayTest, ZeroBaseStillMakesProgress) {
  Rng rng(1);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_GE(backoff_delay(0, 1000, attempt, rng), 1u);
  }
}

}  // namespace
}  // namespace adgc
