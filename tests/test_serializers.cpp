// Serializer tests: lossless round-trips for both implementations on hand
// graphs and randomized snapshots, corruption rejection, and the expected
// cost ordering (naive ≫ binary — the paper's Rotor vs .NET comparison).
#include <gtest/gtest.h>

#include <chrono>

#include "src/common/rng.h"
#include "src/snapshot/serializer.h"

namespace adgc {
namespace {

bool snapshots_equal(const SnapshotData& a, const SnapshotData& b) {
  if (a.pid != b.pid || a.taken_at != b.taken_at || a.roots != b.roots) return false;
  if (a.objects.size() != b.objects.size()) return false;
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    const auto& x = a.objects[i];
    const auto& y = b.objects[i];
    if (x.seq != y.seq || x.local_fields != y.local_fields ||
        x.remote_fields != y.remote_fields || x.payload != y.payload) {
      return false;
    }
  }
  if (a.stubs.size() != b.stubs.size() || a.scions.size() != b.scions.size()) return false;
  for (std::size_t i = 0; i < a.stubs.size(); ++i) {
    if (a.stubs[i].ref != b.stubs[i].ref || a.stubs[i].target != b.stubs[i].target ||
        a.stubs[i].ic != b.stubs[i].ic) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scions.size(); ++i) {
    if (a.scions[i].ref != b.scions[i].ref || a.scions[i].holder != b.scions[i].holder ||
        a.scions[i].target != b.scions[i].target || a.scions[i].ic != b.scions[i].ic) {
      return false;
    }
  }
  return true;
}

SnapshotData sample_snapshot(Rng& rng, std::size_t n_objects) {
  SnapshotData snap;
  snap.pid = 3;
  snap.taken_at = 123456;
  for (std::size_t i = 1; i <= n_objects; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    const std::size_t edges = rng.below(4);
    for (std::size_t k = 0; k < edges; ++k) o.local_fields.push_back(1 + rng.below(n_objects));
    if (rng.chance(0.4)) o.remote_fields.push_back(make_ref_id(3, i));
    const std::size_t pay = rng.below(32);
    for (std::size_t k = 0; k < pay; ++k) {
      o.payload.push_back(static_cast<std::byte>(rng.below(256)));
    }
    snap.objects.push_back(std::move(o));
  }
  snap.roots = {1, 2};
  for (std::size_t i = 1; i <= n_objects; ++i) {
    if (i % 3 == 0) snap.stubs.push_back({make_ref_id(3, i), ObjectId{4, i}, i});
    if (i % 4 == 0) {
      snap.scions.push_back({make_ref_id(5, i), static_cast<ProcessId>(i % 7), i, i * 2});
    }
  }
  return snap;
}

class SerializerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerRoundTrip, BothLossless) {
  Rng rng(GetParam());
  const SnapshotData snap = sample_snapshot(rng, 20 + rng.below(60));
  for (const Serializer* s : {static_cast<const Serializer*>(new NaiveSerializer),
                              static_cast<const Serializer*>(new BinarySerializer)}) {
    const auto bytes = s->serialize(snap);
    const SnapshotData back = s->deserialize(bytes);
    EXPECT_TRUE(snapshots_equal(snap, back)) << s->name();
    delete s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Serializers, EmptySnapshot) {
  SnapshotData snap;
  snap.pid = 0;
  NaiveSerializer naive;
  BinarySerializer binary;
  EXPECT_TRUE(snapshots_equal(snap, naive.deserialize(naive.serialize(snap))));
  EXPECT_TRUE(snapshots_equal(snap, binary.deserialize(binary.serialize(snap))));
}

TEST(Serializers, BinaryRejectsBadMagic) {
  BinarySerializer binary;
  SnapshotData snap;
  auto bytes = binary.serialize(snap);
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(binary.deserialize(bytes), DecodeError);
}

TEST(Serializers, BinaryRejectsTruncation) {
  BinarySerializer binary;
  Rng rng(9);
  const SnapshotData snap = sample_snapshot(rng, 10);
  auto bytes = binary.serialize(snap);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(binary.deserialize(bytes), DecodeError);
}

TEST(Serializers, NaiveRejectsGarbage) {
  NaiveSerializer naive;
  const std::string junk = "this is not a snapshot\n";
  const auto* p = reinterpret_cast<const std::byte*>(junk.data());
  EXPECT_THROW(naive.deserialize(std::span(p, junk.size())), DecodeError);
}

TEST(Serializers, NaiveRejectsBadHexPayload) {
  NaiveSerializer naive;
  SnapshotData snap;
  snap.objects.push_back({1, {}, {}, {std::byte{0xAB}}});
  auto bytes = naive.serialize(snap);
  // Corrupt a hex digit of the payload.
  std::string text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  const auto pos = text.find("payload ab");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 8] = 'z';
  const auto* p = reinterpret_cast<const std::byte*>(text.data());
  EXPECT_THROW(naive.deserialize(std::span(p, text.size())), DecodeError);
}

TEST(Serializers, CostOrderingHolds) {
  // The paper's serialization story: the reflective/text serializer is at
  // least an order of magnitude slower than the binary one on dummy-object
  // graphs. Keep the graph modest so the test stays fast.
  Rng rng(11);
  SnapshotData snap = sample_snapshot(rng, 4000);
  NaiveSerializer naive;
  BinarySerializer binary;

  const auto t0 = std::chrono::steady_clock::now();
  const auto nb = naive.serialize(snap);
  const auto t1 = std::chrono::steady_clock::now();
  const auto bb = binary.serialize(snap);
  const auto t2 = std::chrono::steady_clock::now();

  const auto naive_us = std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0);
  const auto binary_us = std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1);
  EXPECT_GT(naive_us.count(), binary_us.count())
      << "naive=" << naive_us.count() << "us binary=" << binary_us.count() << "us";
  // Binary is also more compact.
  EXPECT_LT(bb.size(), nb.size());
}

}  // namespace
}  // namespace adgc
