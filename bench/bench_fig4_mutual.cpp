// Fig. 4 generalized — mutually-linked distributed cycles.
//
// The paper's Fig. 4 is two cycles sharing objects across six processes.
// Generalization: L cycles (petals) all passing through one hub object, so
// every petal's reachability depends on every other petal's scion. Reports
// CDM traffic, derivation-duplicate drops (the §3.1 termination rule) and
// reclamation time as L grows.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

/// Builds L petal cycles through a hub at P0: hub → head_i(P(1+i·2)) →
/// tail_i(P(2+i·2)) → hub. Each petal spans two dedicated processes.
struct Flower {
  ObjectId hub;
  std::vector<RefId> petal_refs;
};

Flower build_flower(Runtime& rt, std::size_t petals) {
  Flower f;
  f.hub = ObjectId{0, rt.proc(0).create_object()};
  // Temporary root while building.
  rt.proc(0).add_root(f.hub.seq);
  for (std::size_t i = 0; i < petals; ++i) {
    const ProcessId pa = static_cast<ProcessId>(1 + i * 2);
    const ProcessId pb = static_cast<ProcessId>(2 + i * 2);
    const ObjectId head{pa, rt.proc(pa).create_object()};
    const ObjectId tail{pb, rt.proc(pb).create_object()};
    f.petal_refs.push_back(rt.link(f.hub, head));
    rt.link(head, tail);
    rt.link(tail, f.hub);
  }
  return f;
}

struct MutualResult {
  std::uint64_t cdms = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t cycle_founds = 0;
  SimTime reclaim_us = 0;
  bool collected = false;
};

MutualResult run_flower(std::size_t petals, std::uint64_t seed,
                        std::uint32_t dedup_cache = 4096) {
  RuntimeConfig cfg = sim::fast_config(seed);
  cfg.proc.cdm_dedup_cache_size = dedup_cache;
  Runtime rt(1 + 2 * petals, cfg);
  const Flower f = build_flower(rt, petals);
  rt.run_for(200'000);
  const Metrics before = rt.total_metrics();
  rt.proc(0).remove_root(f.hub.seq);
  const SimTime dropped = rt.now();

  MutualResult res;
  const SimTime deadline = dropped + 120'000'000;
  while (rt.now() < deadline) {
    rt.run_for(10'000);
    if (sim::global_stats(rt).total_objects == 0) {
      res.collected = true;
      break;
    }
  }
  const Metrics after = rt.total_metrics();
  res.cdms = after.cdms_sent.get() - before.cdms_sent.get();
  res.dup_drops = after.detections_dropped_dup.get() - before.detections_dropped_dup.get();
  res.cycle_founds =
      after.detections_cycle_found.get() - before.detections_cycle_found.get();
  res.reclaim_us = rt.now() - dropped;
  return res;
}

MutualResult run_paper_fig4(std::uint64_t seed) {
  Runtime rt(6, sim::fast_config(seed));
  sim::build_fig4(rt);  // garbage from the start
  const Metrics before = rt.total_metrics();
  MutualResult res;
  const SimTime deadline = rt.now() + 60'000'000;
  while (rt.now() < deadline) {
    rt.run_for(10'000);
    if (sim::global_stats(rt).total_objects == 0) {
      res.collected = true;
      break;
    }
  }
  const Metrics after = rt.total_metrics();
  res.cdms = after.cdms_sent.get() - before.cdms_sent.get();
  res.dup_drops = after.detections_dropped_dup.get() - before.detections_dropped_dup.get();
  res.cycle_founds =
      after.detections_cycle_found.get() - before.detections_cycle_found.get();
  res.reclaim_us = rt.now();
  return res;
}

void BM_MutualCycles(benchmark::State& state) {
  const auto petals = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flower(petals, seed++));
  }
}
BENCHMARK(BM_MutualCycles)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::header(
      "Fig. 4 — the paper's exact mutually-linked cycles (6 processes)");
  std::printf("%-10s %10s %14s %14s %14s %10s\n", "variant", "CDMs", "dup-drops",
              "cycle-founds", "reclaim (ms)", "status");
  const MutualResult paper = run_paper_fig4(4242);
  std::printf("%-10s %10llu %14llu %14llu %14.1f %10s\n", "fig4",
              static_cast<unsigned long long>(paper.cdms),
              static_cast<unsigned long long>(paper.dup_drops),
              static_cast<unsigned long long>(paper.cycle_founds),
              paper.reclaim_us / 1000.0, paper.collected ? "collected" : "TIMEOUT");

  bench::header(
      "Fig. 4 generalized — L mutually-linked cycles through one hub\n"
      "(every petal's scion is a dependency of every other petal's cycle)");
  std::printf("%-4s %-6s %10s %14s %14s %14s %10s\n", "L", "procs", "CDMs",
              "dup-drops", "cycle-founds", "reclaim (ms)", "status");
  for (std::size_t petals : {1u, 2u, 3u, 4u, 6u}) {
    const MutualResult r = run_flower(petals, 300 + petals);
    std::printf("%-4zu %-6zu %10llu %14llu %14llu %14.1f %10s\n", petals,
                1 + 2 * petals, static_cast<unsigned long long>(r.cdms),
                static_cast<unsigned long long>(r.dup_drops),
                static_cast<unsigned long long>(r.cycle_founds), r.reclaim_us / 1000.0,
                r.collected ? "collected" : "TIMEOUT");
  }
  std::printf("\nShape: CDM traffic grows super-linearly with L (each probe must\n"
              "resolve all sibling-petal dependencies) while the dup-drop rule\n"
              "keeps every probe finite — no detection ever loops.\n");

  bench::header(
      "Ablation — seen-CDM dedup cache on densely linked cycles\n"
      "(identical algebras reached along different branch orders)");
  std::printf("%-4s %-8s %12s %14s %14s %10s\n", "L", "cache", "CDMs", "dup-drops",
              "reclaim (ms)", "status");
  for (std::size_t petals : {3u, 4u, 5u}) {
    for (std::uint32_t cache : {0u, 4096u}) {
      const MutualResult r = run_flower(petals, 900 + petals, cache);
      std::printf("%-4zu %-8s %12llu %14llu %14.1f %10s\n", petals,
                  cache ? "on" : "off", static_cast<unsigned long long>(r.cdms),
                  static_cast<unsigned long long>(r.dup_drops), r.reclaim_us / 1000.0,
                  r.collected ? "collected" : "TIMEOUT");
    }
  }
  return 0;
}
