// Fig. 1 quantified — converging dependencies.
//
// A distributed cycle with D extra inbound references (each from its own
// process). While any dependency's holder is live the cycle must survive;
// after all holders drop their references, the acyclic DGC clears the
// dependencies and the DCDA reclaims the cycle. Reports detection traffic
// and reclamation latency as D grows.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

struct DepResult {
  std::uint64_t cdms = 0;
  std::uint64_t cycle_founds_while_held = 0;  // MUST be 0
  SimTime reclaim_us = 0;
  bool collected = false;
};

DepResult run_deps(std::size_t deps, std::uint64_t seed) {
  const std::size_t ring_procs = 3;
  Runtime rt(ring_procs + deps, sim::fast_config(seed));
  // Ring across processes 0..2, unrooted (garbage but for the dependencies).
  const sim::Ring ring = sim::build_ring(rt, ring_procs, 2, /*pin_first=*/false);
  // D extra holders, each rooted in its own process, pointing at the head.
  std::vector<std::pair<ObjectSeq, RefId>> holders;
  for (std::size_t d = 0; d < deps; ++d) {
    const ProcessId pid = static_cast<ProcessId>(ring_procs + d);
    const ObjectSeq w = rt.proc(pid).create_object();
    rt.proc(pid).add_root(w);
    holders.emplace_back(w, rt.link(ObjectId{pid, w}, ring.heads[0]));
  }

  rt.run_for(2'000'000);  // plenty of scans while dependencies are live
  DepResult res;
  res.cycle_founds_while_held = rt.total_metrics().detections_cycle_found.get();
  const Metrics before = rt.total_metrics();

  // Drop every dependency.
  for (std::size_t d = 0; d < deps; ++d) {
    const ProcessId pid = static_cast<ProcessId>(ring_procs + d);
    rt.proc(pid).remove_remote_ref(holders[d].first, holders[d].second);
  }
  const SimTime released = rt.now();
  const SimTime deadline = released + 60'000'000;
  while (rt.now() < deadline) {
    rt.run_for(10'000);
    std::size_t ring_objs = 0;
    for (ProcessId pid = 0; pid < ring_procs; ++pid) {
      ring_objs += rt.proc(pid).heap().size();
    }
    if (ring_objs == 0) {
      res.collected = true;
      break;
    }
  }
  const Metrics after = rt.total_metrics();
  res.cdms = after.cdms_sent.get() - before.cdms_sent.get();
  res.reclaim_us = rt.now() - released;
  return res;
}

void BM_Dependencies(benchmark::State& state) {
  const auto deps = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_deps(deps, seed++));
  }
}
BENCHMARK(BM_Dependencies)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::header(
      "Fig. 1 — extra dependencies converging on a distributed cycle\n"
      "(cycle must never be collected while a dependency holder lives)");
  std::printf("%-4s %18s %10s %14s %10s\n", "D", "false-collections", "CDMs",
              "reclaim (ms)", "status");
  // D=0 is the control (garbage from the start; collected in the hold
  // phase), so the "while held" audit only applies for D >= 1.
  for (std::size_t d : {1u, 2u, 4u, 8u, 16u}) {
    const DepResult r = run_deps(d, 700 + d);
    std::printf("%-4zu %18llu %10llu %14.1f %10s\n", d,
                static_cast<unsigned long long>(r.cycle_founds_while_held),
                static_cast<unsigned long long>(r.cdms), r.reclaim_us / 1000.0,
                r.collected ? "collected" : "TIMEOUT");
  }
  std::printf("\nShape: zero false collections at every D; reclamation after release\n"
              "is one acyclic round (dependency scions die) plus one detection.\n");
  return 0;
}
