// Ablation — §3 "Graph Summarization".
//
// The paper argues summarization is what keeps cycle detection cheap: the
// DCDA never touches the object graph, only scion/stub relations. This
// bench quantifies (a) the cost of producing the summary with the two
// implementations (per-scion BFS vs SCC condensation + bitset DP), and
// (b) how small the summary is relative to the snapshot it replaces.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/snapshot/serializer.h"
#include "src/snapshot/summarizer.h"

namespace adgc {
namespace {

/// Random process snapshot: n objects, avg `degree` local out-edges, and
/// `refs` stubs + `refs` scions attached to random objects.
SnapshotData random_snapshot(std::size_t n, double degree, std::size_t refs,
                             std::uint64_t seed) {
  Rng rng(seed);
  SnapshotData snap;
  snap.pid = 0;
  snap.objects.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    snap.objects.push_back(std::move(o));
  }
  const auto edges = static_cast<std::size_t>(degree * static_cast<double>(n));
  for (std::size_t e = 0; e < edges; ++e) {
    snap.objects[rng.below(n)].local_fields.push_back(1 + rng.below(n));
  }
  snap.roots = {1 + rng.below(n), 1 + rng.below(n)};
  for (std::size_t r = 0; r < refs; ++r) {
    const RefId ref = make_ref_id(0, r + 1);
    snap.stubs.push_back({ref, ObjectId{1, r}, 0});
    snap.objects[rng.below(n)].remote_fields.push_back(ref);
    snap.scions.push_back({make_ref_id(9, r + 1), 1, 1 + rng.below(n), 0});
  }
  return snap;
}

void BM_Summarize(benchmark::State& state) {
  const bool scc = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto refs = static_cast<std::size_t>(state.range(2));
  const SnapshotData snap = random_snapshot(n, 2.0, refs, 42);
  BfsSummarizer bfs;
  SccSummarizer sccs;
  Summarizer& s = scc ? static_cast<Summarizer&>(sccs)
                            : static_cast<Summarizer&>(bfs);
  for (auto _ : state) {
    auto out = s.summarize(snap);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(scc ? "scc" : "bfs") + " n=" + std::to_string(n) +
                 " refs=" + std::to_string(refs));
}
BENCHMARK(BM_Summarize)
    ->ArgsProduct({{0, 1}, {1'000, 10'000}, {16, 128}})
    ->Unit(benchmark::kMillisecond);

double measure_ms(Summarizer& s, const SnapshotData& snap, int reps = 3) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    bench::Stopwatch sw;
    auto out = s.summarize(snap);
    benchmark::DoNotOptimize(out);
    best = std::min(best, sw.ms());
  }
  return best;
}

std::size_t summary_footprint(const SummarizedGraph& g) {
  std::size_t bytes = 0;
  for (const auto& [ref, s] : g.scions) {
    bytes += sizeof(s) + s.stubs_from.size() * sizeof(RefId);
  }
  for (const auto& [ref, s] : g.stubs) {
    bytes += sizeof(s) + s.scions_to.size() * sizeof(RefId);
  }
  return bytes;
}

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::header(
      "Ablation — graph summarization cost and compression\n"
      "(per-scion BFS vs SCC condensation; summary size vs snapshot size)");
  std::printf("%-8s %-6s %12s %12s %10s %14s %14s\n", "objects", "refs", "bfs (ms)",
              "scc (ms)", "speedup", "snap bytes", "summary bytes");
  BfsSummarizer bfs;
  SccSummarizer scc;
  BinarySerializer ser;
  for (std::size_t n : {1'000u, 5'000u, 20'000u, 50'000u}) {
    for (std::size_t refs : {16u, 64u, 256u}) {
      const SnapshotData snap = random_snapshot(n, 2.0, refs, 77);
      const double tb = measure_ms(bfs, snap);
      const double ts = measure_ms(scc, snap);
      const std::size_t snap_bytes = ser.serialize(snap).size();
      const std::size_t sum_bytes = summary_footprint(scc.summarize(snap));
      std::printf("%-8zu %-6zu %12.2f %12.2f %9.1fx %14zu %14zu\n", n, refs, tb, ts,
                  tb / ts, snap_bytes, sum_bytes);
    }
  }
  std::printf("\nShape: BFS cost grows with scions x edges; SCC is near-linear in\n"
              "edges. The summary is orders of magnitude smaller than the\n"
              "snapshot — the paper's point: the DCDA works on a tiny residue.\n");

  bench::header(
      "Ablation — incremental re-summarization on a slowly-mutating heap\n"
      "(the paper's \"lazily and incrementally\" mode: after the first full\n"
      " pass, only scions whose visited region changed are re-traversed)");
  std::printf("%-8s %-10s %14s %14s %14s %12s\n", "objects", "mutated/rd", "full (ms)",
              "incr (ms)", "recomputed", "reused");
  for (std::size_t n : {5'000u, 20'000u}) {
    for (std::size_t mutations : {0u, 2u, 16u}) {
      SnapshotData snap = random_snapshot(n, 2.0, 64, 123);
      IncrementalSummarizer inc;
      BfsSummarizer full;
      inc.summarize(snap);  // warm the memo
      Rng rng(5);
      double full_ms = 0, inc_ms = 0;
      std::size_t recomputed = 0, reused = 0;
      const int rounds = 5;
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t m = 0; m < mutations; ++m) {
          auto& obj = snap.objects[rng.below(snap.objects.size())];
          obj.local_fields.push_back(1 + rng.below(n));
        }
        {
          bench::Stopwatch sw;
          auto out = full.summarize(snap);
          benchmark::DoNotOptimize(out);
          full_ms += sw.ms();
        }
        {
          bench::Stopwatch sw;
          auto out = inc.summarize(snap);
          benchmark::DoNotOptimize(out);
          inc_ms += sw.ms();
        }
        recomputed += inc.last_recomputed();
        reused += inc.last_reused();
      }
      std::printf("%-8zu %-10zu %14.2f %14.2f %14zu %12zu\n", n, mutations,
                  full_ms / rounds, inc_ms / rounds, recomputed / rounds,
                  reused / rounds);
    }
  }
  std::printf("\nShape: on DENSE random graphs every scion visits half the heap, so\n"
              "almost any mutation invalidates most memos and the memo overhead\n"
              "loses to a plain pass — quantifying when NOT to use it.\n");

  bench::header(
      "Same ablation on a clustered heap (disjoint scion regions — the\n"
      "realistic shape: each remote object owns a bounded subgraph)");
  std::printf("%-8s %-10s %14s %14s %14s %12s\n", "objects", "mutated/rd", "full (ms)",
              "incr (ms)", "recomputed", "reused");
  for (std::size_t n : {5'000u, 20'000u}) {
    for (std::size_t mutations : {0u, 2u, 16u}) {
      // 64 disjoint chains, one scion each.
      const std::size_t clusters = 64;
      const std::size_t span = n / clusters;
      SnapshotData snap;
      snap.pid = 0;
      for (std::size_t i = 1; i <= n; ++i) {
        SnapshotData::Obj o;
        o.seq = i;
        if (i % span != 0 && i < n) o.local_fields.push_back(i + 1);
        snap.objects.push_back(std::move(o));
      }
      snap.roots = {1};
      for (std::size_t c = 0; c < clusters; ++c) {
        const RefId ref = make_ref_id(0, c + 1);
        snap.stubs.push_back({ref, ObjectId{1, c}, 0});
        snap.objects[c * span + span / 2].remote_fields.push_back(ref);
        snap.scions.push_back({make_ref_id(9, c + 1), 1, c * span + 1, 0});
      }

      IncrementalSummarizer inc;
      BfsSummarizer full;
      inc.summarize(snap);
      Rng rng(5);
      double full_ms = 0, inc_ms = 0;
      std::size_t recomputed = 0, reused = 0;
      const int rounds = 5;
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t m = 0; m < mutations; ++m) {
          // Mutations stay within their cluster (locality, as real apps).
          const std::size_t idx = rng.below(snap.objects.size());
          const std::size_t base = (idx / span) * span;
          snap.objects[idx].local_fields.push_back(base + 1 + rng.below(span));
        }
        {
          bench::Stopwatch sw;
          auto out = full.summarize(snap);
          benchmark::DoNotOptimize(out);
          full_ms += sw.ms();
        }
        {
          bench::Stopwatch sw;
          auto out = inc.summarize(snap);
          benchmark::DoNotOptimize(out);
          inc_ms += sw.ms();
        }
        recomputed += inc.last_recomputed();
        reused += inc.last_reused();
      }
      std::printf("%-8zu %-10zu %14.2f %14.2f %14zu %12zu\n", n, mutations,
                  full_ms / rounds, inc_ms / rounds, recomputed / rounds,
                  reused / rounds);
    }
  }
  std::printf("\nShape: disjoint regions → a mutation invalidates at most its own\n"
              "cluster's memo; incremental re-summarization beats the full pass by\n"
              "the cluster count, as the paper's lazily-incremental mode intends.\n");
  return 0;
}
