// Fig. 3 generalized — cost of detecting and reclaiming a simple
// distributed garbage cycle as a function of the number of processes it
// spans.
//
// The paper's Fig. 3 is the 4-process instance. For each ring size we
// report: CDMs sent, CDM bytes, total protocol messages, and the simulated
// time from root-drop to full reclamation. The shape to observe: one CDM
// per inter-process edge for the successful probe (linear in N), detection
// time linear in N (one network hop per edge), plus the acyclic DGC's
// unravelling rounds.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

struct RingResult {
  std::uint64_t cdms = 0;
  std::uint64_t cdm_bytes = 0;
  std::uint64_t messages = 0;
  SimTime reclaim_us = 0;   // simulated time from root-drop to empty
  bool collected = false;
};

RingResult run_ring(std::size_t n_procs, std::size_t objs_per_proc, std::uint64_t seed) {
  Runtime rt(n_procs, sim::fast_config(seed));
  const sim::Ring ring = sim::build_ring(rt, n_procs, objs_per_proc);
  rt.run_for(200'000);
  const Metrics before = rt.total_metrics();

  rt.proc(0).remove_root(ring.anchors[0].seq);
  const SimTime dropped = rt.now();
  RingResult res;
  // Step until empty (or give up).
  const SimTime deadline = dropped + 60'000'000;
  while (rt.now() < deadline) {
    rt.run_for(10'000);
    if (sim::global_stats(rt).total_objects == 0) {
      res.collected = true;
      break;
    }
  }
  const Metrics after = rt.total_metrics();
  res.cdms = after.cdms_sent.get() - before.cdms_sent.get();
  res.cdm_bytes = after.cdm_bytes.get() - before.cdm_bytes.get();
  res.messages = after.messages_sent.get() - before.messages_sent.get();
  res.reclaim_us = rt.now() - dropped;
  return res;
}

void BM_RingDetection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_ring(n, 3, seed++));
  }
}
BENCHMARK(BM_RingDetection)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::JsonReport report("fig3_cycle");
  bench::header(
      "Fig. 3 generalized — simple distributed cycle, ring of N processes\n"
      "(paper walkthrough: 4 processes, 4 CDMs for the successful probe)");
  std::printf("%-4s %-6s %10s %12s %12s %14s %10s\n", "N", "objs", "CDMs",
              "CDM bytes", "messages", "reclaim (ms)", "status");
  for (std::size_t n : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    const RingResult r = run_ring(n, 3, 100 + n);
    std::printf("%-4zu %-6zu %10llu %12llu %12llu %14.1f %10s\n", n, n * 3,
                static_cast<unsigned long long>(r.cdms),
                static_cast<unsigned long long>(r.cdm_bytes),
                static_cast<unsigned long long>(r.messages),
                r.reclaim_us / 1000.0, r.collected ? "collected" : "TIMEOUT");
    report.add("ring_width", {{"processes", static_cast<double>(n)},
                              {"objs", static_cast<double>(n * 3)},
                              {"cdms", static_cast<double>(r.cdms)},
                              {"cdm_bytes", static_cast<double>(r.cdm_bytes)},
                              {"messages", static_cast<double>(r.messages)},
                              {"reclaim_ms", r.reclaim_us / 1000.0},
                              {"collected", r.collected ? 1.0 : 0.0}});
  }

  bench::header("Fig. 3 — per-process segment size sweep (N = 4 fixed)");
  std::printf("%-8s %10s %12s %14s %10s\n", "objs/P", "CDMs", "CDM bytes",
              "reclaim (ms)", "status");
  for (std::size_t objs : {1u, 3u, 10u, 30u, 100u}) {
    const RingResult r = run_ring(4, objs, 200 + objs);
    std::printf("%-8zu %10llu %12llu %14.1f %10s\n", objs,
                static_cast<unsigned long long>(r.cdms),
                static_cast<unsigned long long>(r.cdm_bytes), r.reclaim_us / 1000.0,
                r.collected ? "collected" : "TIMEOUT");
  }
  std::printf("\nNote: CDM count exceeds the N of the final successful probe because\n"
              "earlier probes run while the ring is still rooted and terminate\n"
              "negatively (Local.Reach), exactly as in the paper's design.\n");

  bench::header(
      "Fig. 3 — reclamation latency distribution across seeds (sim ms)\n"
      "(root-drop to empty heaps; dominated by the scan/snapshot cadence)");
  std::printf("%-4s %-50s\n", "N", "reclaim latency (ms)");
  for (std::size_t n : {2u, 4u, 8u}) {
    SampleStats lat;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      const RingResult r = run_ring(n, 3, 1000 + n * 100 + seed);
      if (r.collected) lat.add(static_cast<double>(r.reclaim_us) / 1000.0);
    }
    std::printf("%-4zu %-50s\n", n, lat.summary().c_str());
  }
  return 0;
}
